// A rebalancing market that runs every hour: two buyers compete for one
// seller bottleneck, round after round, and learn how to bid from their
// own realized utilities. Shows the §4 repeated-game API and why the
// choice of mechanism changes what players learn.
//
//   $ ./examples/repeated_market
#include <cstdio>
#include <string>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/repeated.hpp"

using namespace musketeer;

int main() {
  // Each round, buyers 0 and 1 want rebalancing through seller 2's
  // bottleneck channel with player 3; valuations resample every round.
  const core::GameSampler market = [](util::Rng& rng) {
    core::Game game(4);
    game.add_edge(2, 3, 8, -rng.uniform_real(0.0005, 0.002), 0.0);
    game.add_edge(3, 0, 10, 0.0, rng.uniform_real(0.015, 0.035));
    game.add_edge(0, 2, 10, 0.0, 0.0);
    game.add_edge(3, 1, 10, 0.0, rng.uniform_real(0.015, 0.035));
    game.add_edge(1, 2, 10, 0.0, 0.0);
    return game;
  };

  core::RepeatedConfig config;
  config.rounds = 600;
  config.persistence = 0.9;  // demand usually survives a lost round

  const core::M3DoubleAuction m3;
  const core::M4DelayedAuction m4(10.0);

  std::printf("Repeated rebalancing market: 2 adaptive buyers, %d rounds, "
              "persistence %.1f\n\n",
              config.rounds, config.persistence);
  for (const core::Mechanism* mech :
       {static_cast<const core::Mechanism*>(&m3),
        static_cast<const core::Mechanism*>(&m4)}) {
    util::Rng rng(2026);
    const core::RepeatedResult result =
        core::run_repeated_game(*mech, market, {0, 1}, config, rng);
    std::printf("%s:\n", std::string(mech->name()).c_str());
    std::printf("  learned shading factors: buyer0 x%.2f, buyer1 x%.2f\n",
                result.learned_shading[0], result.learned_shading[1]);
    std::printf("  welfare achieved vs all-truthful: %.1f%%\n",
                100.0 * result.welfare_ratio);
    std::printf("  total buyer utilities: %.3f / %.3f coins\n\n",
                result.total_utility[0], result.total_utility[1]);
  }
  std::printf("Under the first-price-style M3, buyers learn to shade their\n"
              "bids (and the market loses the trades that shading kills);\n"
              "under M4 the delay bonus makes per-trade utility independent\n"
              "of the bid, so honest bidding survives repetition.\n");
  return 0;
}
