// A day in the life of a Lightning-like network: skewed payment traffic
// depletes channels hour by hour; Musketeer (M3) rebalances on the hour,
// and we compare throughput against leaving the network alone.
//
//   $ ./examples/lightning_day
#include <cstdio>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "util/table.hpp"

using namespace musketeer;

int main() {
  sim::SimulationConfig config;
  config.num_nodes = 120;
  config.ba_attachment = 2;       // scale-free, Lightning-like
  config.epochs = 24;             // one epoch per hour
  config.payments_per_epoch = 400;
  config.workload.zipf_exponent = 0.9;  // merchants receive most traffic
  config.workload.amount_min = 1;
  config.workload.amount_max = 40;
  config.seed = 20260706;

  const auto musketeer_mech =
      sim::make_strategy(sim::Strategy::kM3DoubleAuction);
  const sim::SimulationResult with =
      sim::run_simulation(config, musketeer_mech.get());
  const sim::SimulationResult without = sim::run_simulation(config, nullptr);

  util::Table table({"hour", "success% (musketeer)", "success% (none)",
                     "depleted% (musketeer)", "depleted% (none)",
                     "rebalanced coins"});
  for (std::size_t h = 0; h < with.epochs.size(); ++h) {
    const auto& m = with.epochs[h];
    const auto& n = without.epochs[h];
    table.add_row({util::fmt_int(static_cast<long long>(h)),
                   util::fmt_double(100.0 * m.success_rate(), 1),
                   util::fmt_double(100.0 * n.success_rate(), 1),
                   util::fmt_double(100.0 * m.depleted_fraction, 1),
                   util::fmt_double(100.0 * n.depleted_fraction, 1),
                   util::fmt_int(static_cast<long long>(m.rebalanced_volume))});
  }
  std::printf("One simulated day on a %d-node scale-free PCN "
              "(%d payments/hour):\n\n",
              config.num_nodes, config.payments_per_epoch);
  table.print();
  std::printf("\noverall success: musketeer %.1f%% vs none %.1f%%\n",
              100.0 * with.overall_success_rate(),
              100.0 * without.overall_success_rate());
  std::printf("volume delivered: musketeer %lld vs none %lld coins\n",
              static_cast<long long>(with.total_volume_succeeded()),
              static_cast<long long>(without.total_volume_succeeded()));
  return 0;
}
