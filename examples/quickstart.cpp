// Quickstart: build a small rebalancing game, run the M4 delayed double
// auction, and inspect the priced cycles.
//
//   $ ./examples/quickstart
//
// The scenario mirrors the paper's running example: Alice's channel with
// Bob is depleted; Carol routes for a small fee; Dave routes for free.
#include <cstdio>

#include "core/m4_delayed.hpp"
#include "core/properties.hpp"

using namespace musketeer;

int main() {
  // Players: 0 = Alice, 1 = Bob, 2 = Carol, 3 = Dave.
  const char* names[] = {"Alice", "Bob", "Carol", "Dave"};
  core::Game game(4);

  // Alice's channel with Bob is depleted: she wants up to 30 coins to
  // flow from Bob's side to hers and bids 3% per coin for it.
  game.add_edge(/*from=*/1, /*to=*/0, /*capacity=*/30, /*tail=*/0.0,
                /*head=*/0.03);
  // Alice forwards her own liquidity toward Carol (no self-fee).
  game.add_edge(0, 2, 25, 0.0, 0.0);
  // Carol forwards 40 coins Carol -> Bob, charging a 0.5% routing fee.
  game.add_edge(2, 1, 40, -0.005, 0.0);
  // Dave offers a second, free return path Alice -> Dave -> Bob.
  game.add_edge(0, 3, 20, 0.0, 0.0);
  game.add_edge(3, 1, 20, 0.0, 0.0);

  const core::M4DelayedAuction mechanism(/*delay_factor=*/2.0);
  const core::Outcome outcome = mechanism.run_truthful(game);

  std::printf("Musketeer quickstart: %zu rebalancing cycle(s)\n\n",
              outcome.cycles.size());
  for (std::size_t i = 0; i < outcome.cycles.size(); ++i) {
    const core::PricedCycle& pc = outcome.cycles[i];
    std::printf("cycle %zu: %lld coins around [", i,
                static_cast<long long>(pc.cycle.amount));
    for (std::size_t j = 0; j < pc.cycle.edges.size(); ++j) {
      const core::GameEdge& e = game.edge(pc.cycle.edges[j]);
      std::printf("%s->%s%s", names[e.from], names[e.to],
                  j + 1 < pc.cycle.edges.size() ? ", " : "");
    }
    std::printf("], released at t=%.3f\n", pc.release_time);
    for (const core::PlayerPrice& p : pc.prices) {
      std::printf("  %-6s %s %.4f coins\n", names[p.player],
                  p.price >= 0 ? "pays    " : "receives",
                  p.price >= 0 ? p.price : -p.price);
    }
  }

  const auto balance = core::check_cyclic_budget_balance(outcome);
  const auto rationality = core::check_individual_rationality(game, outcome);
  std::printf("\ncyclic budget balance: max |sum of cycle prices| = %.2e\n",
              balance.max_cycle_imbalance);
  std::printf("individual rationality: min per-cycle utility   = %.4f\n",
              rationality.min_cycle_utility);
  std::printf("realized social welfare: %.4f coins\n",
              outcome.realized_welfare(game));
  return 0;
}
