// Compare the paper's four mechanisms side by side on one mid-size
// rebalancing game: welfare achieved, fees collected, property margins,
// and (for M4) the delay cost.
//
//   $ ./examples/auction_comparison
#include <cstdio>
#include <memory>

#include "core/m1_fixed_fee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/properties.hpp"
#include "gen/game_gen.hpp"
#include "util/table.hpp"

using namespace musketeer;

int main() {
  util::Rng rng(99);
  gen::GameConfig config;
  config.depleted_share = 0.3;
  config.seller_max = 0.003;
  const core::Game game = gen::random_ba_game(60, 2, config, rng);
  const core::BidVector bids = game.truthful_bids();

  std::printf("Random Lightning-like game: %d players, %d channel edges\n\n",
              game.num_players(), game.num_edges());

  struct Entry {
    std::unique_ptr<core::Mechanism> mechanism;
  };
  std::vector<std::unique_ptr<core::Mechanism>> mechanisms;
  mechanisms.push_back(std::make_unique<core::M1FixedFee>(0.001, 3.0));
  mechanisms.push_back(std::make_unique<core::M2Vcg>());
  mechanisms.push_back(std::make_unique<core::M3DoubleAuction>());
  mechanisms.push_back(std::make_unique<core::M4DelayedAuction>(2.0));

  util::Table table({"mechanism", "welfare", "volume", "cycles",
                     "buyer fees", "max |cycle budget|", "min cycle utility",
                     "max delay"});
  for (const auto& mechanism : mechanisms) {
    const core::Outcome outcome = mechanism->run(game, bids);
    const auto balance = core::check_cyclic_budget_balance(outcome);
    const auto rationality =
        core::check_individual_rationality(game, outcome);
    double fees = 0.0, max_delay = 0.0;
    for (const core::PricedCycle& pc : outcome.cycles) {
      for (const core::PlayerPrice& p : pc.prices) {
        if (p.price > 0) fees += p.price;
      }
      max_delay = std::max(max_delay, pc.release_time);
    }
    table.add_row({std::string(mechanism->name()),
                   util::fmt_double(outcome.realized_welfare(game), 4),
                   util::fmt_int(flow::total_volume(outcome.circulation)),
                   util::fmt_int(static_cast<long long>(outcome.cycles.size())),
                   util::fmt_double(fees, 4),
                   util::format("%.1e", balance.max_cycle_imbalance),
                   util::fmt_double(rationality.min_cycle_utility, 5),
                   util::fmt_double(max_delay, 3)});
  }
  table.print();
  std::printf(
      "\nReading guide: M3/M4 maximize bid-weighted welfare over all\n"
      "participants; M2 ignores seller costs (welfare under true\n"
      "valuations can dip); M1's fixed fees admit only cycles with at\n"
      "most k indifferent edges per depleted edge. Budget imbalance ~0\n"
      "everywhere: all four are cyclic budget balanced.\n");
  return 0;
}
