// Privacy-preserving submission, Hide & Seek style: users secret-share
// their liquidity and bids to a delegate committee; no single delegate
// learns anything, yet the committee's joint computation produces
// exactly the same rebalancing as a trusted coordinator would.
//
//   $ ./examples/private_rebalancing
#include <cstdio>
#include <string>

#include "core/delegates.hpp"
#include "core/m3_double_auction.hpp"

using namespace musketeer;

int main() {
  // The same 4-player scenario as examples/quickstart.
  struct Submission {
    core::NodeId from, to;
    flow::Amount capacity;
    double tail, head;
  };
  const Submission submissions[] = {
      {1, 0, 30, 0.0, 0.03},   // Alice buys rebalancing from Bob's side
      {0, 2, 25, 0.0, 0.0},    // Alice's return leg via Carol
      {2, 1, 40, -0.005, 0.0}, // Carol sells routing at 0.5%
      {0, 3, 20, 0.0, 0.0},    // free path via Dave
      {3, 1, 20, 0.0, 0.0},
  };

  util::Rng rng(20260706);
  core::DelegateCommittee committee(/*num_delegates=*/3, /*num_players=*/4,
                                    rng);
  for (const Submission& s : submissions) {
    committee.submit_edge(s.from, s.to, s.capacity, s.tail, s.head);
  }

  std::printf("What delegate 0 sees for submission 0 (Alice's 30-coin, "
              "3%% request):\n");
  const auto view = committee.view(0, 0);
  std::printf("  capacity share: %llu\n  buyer bid share: %llu\n"
              "  (uniformly random - nothing about 30 or 0.03 leaks)\n\n",
              static_cast<unsigned long long>(view.capacity_share),
              static_cast<unsigned long long>(view.head_share));

  const core::M3DoubleAuction mechanism;
  const core::Outcome via_committee = committee.run(mechanism);
  const core::Game reconstructed = committee.reconstruct_game();

  // A trusted coordinator computing on plaintext:
  core::Game plaintext(4);
  for (const Submission& s : submissions) {
    plaintext.add_edge(s.from, s.to, s.capacity, s.tail, s.head);
  }
  const core::Outcome direct = mechanism.run_truthful(plaintext);

  std::printf("committee outcome: %zu cycles, %lld coins, welfare %.4f\n",
              via_committee.cycles.size(),
              static_cast<long long>(
                  flow::total_volume(via_committee.circulation)),
              via_committee.realized_welfare(reconstructed));
  std::printf("plaintext outcome: %zu cycles, %lld coins, welfare %.4f\n",
              direct.cycles.size(),
              static_cast<long long>(flow::total_volume(direct.circulation)),
              direct.realized_welfare(plaintext));
  std::printf("\nidentical circulations: %s\n",
              via_committee.circulation == direct.circulation ? "yes" : "NO");
  return 0;
}
