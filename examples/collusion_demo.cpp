// The §4 group-strategyproofness counterexample, executable.
//
// A channel is depleted from u's perspective; honest u reports a positive
// buyer bid, which (by the paper's preclusion rule) bars counterparty v
// from selling that channel direction. If u *withholds* its bid — turning
// the channel indifferent — v can earn routing fees and the pair can be
// jointly better off, even under mechanisms that are strategyproof
// against unilateral deviations.
//
//   $ ./examples/collusion_demo
#include <cstdio>

#include "core/m3_double_auction.hpp"
#include "core/strategy.hpp"

using namespace musketeer;

int main() {
  // Players: 0 = u (buyer side of the depleted channel), 1 = v (its
  // counterparty), 2 and 3 = the rest of the network.
  //
  // Channel u-v is depleted toward u: honestly, edge (1 -> 0) carries u's
  // buyer bid. A second, bigger rebalancing demand exists elsewhere
  // (player 2's channel with 3), whose cheapest cycle would route
  // *through* the u-v channel in the same direction — if v were allowed
  // to sell it.
  core::Game game(4);
  // Honest declaration: depleted edge, u buys at 1.5%.
  const core::EdgeId uv =
      game.add_edge(1, 0, 20, /*tail=*/0.0, /*head=*/0.015);
  // Player 2 urgently wants rebalancing (4%) of its channel with 3,
  // and the only return path passes through v -> u -> ... -> 3.
  game.add_edge(3, 2, 20, 0.0, 0.04);   // depleted: buyer 2
  game.add_edge(2, 1, 20, -0.001, 0.0); // seller leg into v
  game.add_edge(0, 3, 20, -0.001, 0.0); // seller leg out of u
  const core::M3DoubleAuction mechanism;

  const core::BidVector honest = game.truthful_bids();
  const core::Outcome honest_outcome = mechanism.run(game, honest);
  const double honest_u = honest_outcome.player_utility(game, 0);
  const double honest_v = honest_outcome.player_utility(game, 1);

  // Collusion: u withholds its buyer bid on the u-v channel. The channel
  // becomes indifferent, and the big cycle for player 2 can now route
  // through it — with v collecting the seller share.
  core::BidVector collusive = core::withhold_edge_bid(game, honest, uv);
  const core::Outcome collusive_outcome = mechanism.run(game, collusive);
  const double collusive_u = collusive_outcome.player_utility(game, 0);
  const double collusive_v = collusive_outcome.player_utility(game, 1);

  std::printf("Group-strategyproofness counterexample (Section 4)\n\n");
  std::printf("                 honest        collusive\n");
  std::printf("u (buyer)      %8.4f       %8.4f\n", honest_u, collusive_u);
  std::printf("v (partner)    %8.4f       %8.4f\n", honest_v, collusive_v);
  std::printf("joint          %8.4f       %8.4f\n", honest_u + honest_v,
              collusive_u + collusive_v);
  if (collusive_u + collusive_v > honest_u + honest_v + 1e-12) {
    std::printf("\n=> the pair strictly gains by misreporting the channel "
                "as indifferent:\n   the mechanism is strategyproof but "
                "not *group* strategyproof.\n");
  } else {
    std::printf("\n=> no joint gain on this instance.\n");
  }
  return 0;
}
