// musketeerd — the epoch-batched rebalancing daemon.
//
//   musketeerd [options]
//
//   --listen <ep>      tcp:<port> (loopback) or unix:<path>  [tcp:7740]
//   --mechanism <m>    m1|m2|m2-minfee|m3|m4|hideseek|local|none  [m3]
//   --nodes <n>        synthetic network size                [50]
//   --seed <s>         network build seed                    [1]
//   --skew <x>         initial channel skew in (0, 0.5]      [0.4]
//   --epoch-ms <ms>    epoch period                          [1000]
//   --epochs <n>       stop after n epochs (0 = run forever) [0]
//   --queue-cap <n>    intake queue capacity (players)       [1024]
//   --threads <n>      epoch-solve concurrency: the clearing solve
//                      shards the bid graph by weakly-connected
//                      component across n threads (0 = hardware
//                      concurrency, 1 = legacy whole-graph solve;
//                      outcomes are bit-identical either way)  [0]
//   --journal <path>   crash-safe epoch journal (WAL); on restart the
//                      daemon recovers from the newest valid snapshot
//                      (if any) plus the journal tail — falling back to
//                      a full replay against the genesis network (same
//                      --nodes/--seed/--skew) — and resumes at the
//                      recovered epoch                       [off]
//   --snapshot-every <n>  checkpoint cadence: every n settled epochs,
//                      snapshot the recovery state and compact journal
//                      segments the snapshot covers, bounding both the
//                      journal's disk footprint and restart time by the
//                      tail length (0 = journal-only)        [0]
//   --segment-bytes <n>  roll the journal to a new segment once the
//                      live segment reaches n bytes (at an epoch
//                      boundary; 0 = size-based rolls off)   [0]
//   --journal-keep <n> validated snapshots to retain; older ones are
//                      deleted after each successful snapshot [2]
//   --deadline-ms <ms> per-epoch clearing deadline: a solve that runs
//                      past it is cooperatively cancelled and the epoch
//                      retries down the degradation ladder, finally
//                      journaling ABORTED (0 = off)          [0]
//   --degrade <list>   comma-separated degradation ladder of mechanism
//                      names tried after a timeout           [m2-minfee,m1]
//   --watchdog-ms <ms> force-cancel backstop for an attempt that fails
//                      to observe its own deadline (0 = off) [0]
//   --trace-out <path> collect epoch trace spans while running and, on
//                      shutdown, write them as Chrome trace_event JSON
//                      (load at chrome://tracing)            [off]
//
// The daemon builds the same Barabási–Albert network the simulator
// uses (so a daemon run is comparable to `musketeer sim`), then serves
// bid intake over the wire protocol and clears one auction per epoch,
// printing a per-epoch summary line. SIGINT/SIGTERM stop it cleanly.
//
// Exit status: 0 on clean shutdown, 1 on usage errors, 2 on runtime
// errors (bind failure etc).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/mechanism_factory.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "svc/daemon.hpp"
#include "util/rng.hpp"

using namespace musketeer;

namespace {

std::sig_atomic_t volatile g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

int usage() {
  std::fprintf(stderr,
               "usage: musketeerd [--listen tcp:PORT|unix:PATH] "
               "[--mechanism m] [--nodes n] [--seed s] [--skew x]\n"
               "                  [--epoch-ms ms] [--epochs n] "
               "[--queue-cap n] [--threads n] [--journal path] "
               "[--trace-out path]\n"
               "                  [--deadline-ms ms] [--degrade m,m,...] "
               "[--watchdog-ms ms]\n"
               "                  [--snapshot-every n] [--segment-bytes n] "
               "[--journal-keep n]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen = "tcp:7740";
  std::string mechanism_name = "m3";
  std::string trace_out;
  sim::SimulationConfig sim_config;
  sim_config.initial_skew = 0.4;
  svc::DaemonConfig config;
  config.service.epoch_period = std::chrono::milliseconds(1000);

  try {
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string value = argv[i + 1];
      if (flag == "--listen") {
        listen = value;
      } else if (flag == "--mechanism") {
        mechanism_name = value;
      } else if (flag == "--nodes") {
        sim_config.num_nodes = static_cast<flow::NodeId>(std::stol(value));
      } else if (flag == "--seed") {
        sim_config.seed = std::stoull(value);
      } else if (flag == "--skew") {
        sim_config.initial_skew = std::stod(value);
      } else if (flag == "--epoch-ms") {
        config.service.epoch_period =
            std::chrono::milliseconds(std::stol(value));
      } else if (flag == "--epochs") {
        config.service.max_epochs = static_cast<int>(std::stol(value));
      } else if (flag == "--queue-cap") {
        config.service.queue_capacity =
            static_cast<std::size_t>(std::stoull(value));
      } else if (flag == "--threads") {
        config.service.threads = static_cast<int>(std::stol(value));
      } else if (flag == "--journal") {
        config.journal_path = value;
      } else if (flag == "--snapshot-every") {
        config.snapshot_every = static_cast<int>(std::stol(value));
      } else if (flag == "--segment-bytes") {
        config.max_segment_bytes = std::stoull(value);
      } else if (flag == "--journal-keep") {
        config.keep_snapshots = static_cast<int>(std::stol(value));
      } else if (flag == "--deadline-ms") {
        config.service.epoch_deadline =
            std::chrono::milliseconds(std::stol(value));
      } else if (flag == "--watchdog-ms") {
        config.service.watchdog_timeout =
            std::chrono::milliseconds(std::stol(value));
      } else if (flag == "--degrade") {
        config.service.degradation_ladder.clear();
        std::size_t start = 0;
        while (start <= value.size()) {
          const std::size_t comma = value.find(',', start);
          const std::string name =
              value.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
          if (!name.empty()) {
            config.service.degradation_ladder.push_back(name);
          }
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      } else if (flag == "--trace-out") {
        trace_out = value;
      } else {
        std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
        return usage();
      }
    }
    if ((argc - 1) % 2 != 0) return usage();

    auto mechanism =
        core::make_mechanism(mechanism_name, core::MechanismOptions{});
    if (!mechanism) {
      std::fprintf(stderr, "unknown mechanism: %s\n",
                   mechanism_name.c_str());
      return usage();
    }
    config.server.listen = listen;

    util::Rng rng(sim_config.seed);
    pcn::Network network = sim::build_network(sim_config, rng);

    if (!trace_out.empty()) obs::trace::start();

    svc::Daemon daemon(std::move(network), std::move(mechanism), config);
    if (!config.journal_path.empty()) {
      const svc::RecoveryReport& rec = daemon.recovery();
      if (rec.from_snapshot) {
        std::printf("musketeerd: journal %s: restored snapshot at epoch %d"
                    " (%llu segment(s) replayed%s), %d epoch(s) replayed"
                    "%s, %d rolled back, %d aborted, %d degraded rung(s); "
                    "resuming at epoch %d\n",
                    config.journal_path.c_str(), rec.snapshot_epoch,
                    static_cast<unsigned long long>(rec.segments_replayed),
                    rec.snapshots_discarded > 0 ? ", older snapshot(s) "
                                                  "discarded as invalid"
                                                : "",
                    rec.epochs_settled,
                    rec.applied_inflight ? " (1 in-flight outcome applied)"
                                         : "",
                    rec.rolled_back, rec.aborted_epochs, rec.degraded_epochs,
                    rec.next_epoch);
      } else {
        std::printf("musketeerd: journal %s: %d epoch(s) replayed"
                    "%s, %d rolled back, %d aborted, %d degraded rung(s); "
                    "resuming at epoch %d\n",
                    config.journal_path.c_str(), rec.epochs_settled,
                    rec.applied_inflight ? " (1 in-flight outcome applied)"
                                         : "",
                    rec.rolled_back, rec.aborted_epochs, rec.degraded_epochs,
                    rec.next_epoch);
      }
    }
    daemon.service().on_epoch([](const svc::EpochReport& report) {
      std::printf("epoch %d: bids %zu, edges %d, cycles %d, volume %lld, "
                  "fees %.6f, clear %.3f ms, state %016llx%s%s\n",
                  report.epoch, report.bids_applied, report.game_edges,
                  report.cycles_executed,
                  static_cast<long long>(report.rebalanced_volume),
                  report.fees_paid, 1e3 * report.clear_seconds,
                  static_cast<unsigned long long>(report.network_digest),
                  report.degradation_level > 0 ? " [degraded]" : "",
                  report.watchdog_fired ? " [watchdog]" : "");
      std::fflush(stdout);
    });
    daemon.start();
    std::printf("musketeerd: %s on %s, %d nodes, epoch %lld ms%s\n",
                mechanism_name.c_str(), daemon.endpoint().c_str(),
                sim_config.num_nodes,
                static_cast<long long>(config.service.epoch_period.count()),
                config.service.max_epochs > 0 ? "" : " (run until signal)");
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    // Wait for the epoch budget or a signal; wait_epochs is a cv wait,
    // re-armed briefly so signals are noticed promptly.
    const int target = config.service.max_epochs;
    while (g_signal == 0) {
      if (daemon.service().wait_epochs(
              target > 0 ? target : daemon.service().epochs_cleared() + 1000,
              std::chrono::milliseconds(200)) &&
          target > 0) {
        break;
      }
    }
    daemon.stop();
    if (!trace_out.empty()) {
      obs::trace::stop();
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "musketeerd: cannot write trace file %s\n",
                     trace_out.c_str());
        return 2;
      }
      const std::size_t events = obs::trace::write_chrome_json(out);
      out.flush();
      std::printf("musketeerd: wrote %zu trace event(s) to %s"
                  " (%llu dropped); load at chrome://tracing\n",
                  events, trace_out.c_str(),
                  static_cast<unsigned long long>(obs::trace::dropped()));
    }
    const auto counters = daemon.service().intake_counters();
    std::printf("musketeerd: stopped after %d epoch(s); intake: "
                "%llu accepted, %llu replaced, %llu rejected-full, "
                "%llu rejected-invalid\n",
                daemon.service().epochs_cleared(),
                static_cast<unsigned long long>(counters.accepted),
                static_cast<unsigned long long>(counters.replaced),
                static_cast<unsigned long long>(counters.rejected_full),
                static_cast<unsigned long long>(counters.rejected_invalid));
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "musketeerd: error: %s\n", error.what());
    return 2;
  }
}
