// musketeer — command-line front end to the rebalancing mechanisms.
//
//   musketeer run <mechanism> <game-file> [options]
//   musketeer gen <players> <attach> <seed> [game-file]
//   musketeer check <game-file>
//
// Mechanisms: m1, m2, m2-minfee, m3, m4, hideseek, local, none.
// Options:
//   --delay <d>     M4 delay factor (default 1.0)
//   --fee <p>       M1 fixed fee rate / local per-hop fee (default 0.001)
//   --k <k>         M1 buyer-rate multiplier (default 3)
//   --floor <f>     M2-minfee seller floor (default 0.001)
//
// `sim` additionally accepts:
//   --metrics-out <path>   dump per-epoch metrics (.json → JSON, else CSV)
//   --backend <b>          inproc (historic inline call) or service
//                          (route every epoch through svc::RebalanceService)
//   --threads <n>          epoch-solve concurrency: shard the bid graph by
//                          weakly-connected component across n threads
//                          (0 = hardware concurrency, 1 = legacy
//                          whole-graph solve; results are bit-identical
//                          at any value)
//
// Exit status: 0 on success, 1 on usage errors, 2 on invalid input.
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/equilibrium.hpp"
#include "core/io.hpp"
#include "core/mechanism_factory.hpp"
#include "gen/game_gen.hpp"
#include "sim/engine.hpp"
#include "sim/metrics_io.hpp"
#include "sim/strategies.hpp"
#include "svc/executor.hpp"
#include "svc/sim_backend.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: musketeer run <m1|m2|m2-minfee|m3|m4|hideseek|local|"
               "none> <game-file> [--delay d] [--fee p] [--k k] [--floor f]\n"
               "       musketeer eq <mechanism> <game-file> [options]\n"
               "       musketeer gen <players> <attach> <seed> [game-file]\n"
               "       musketeer check <game-file>\n"
               "       musketeer sim <mechanism> <players> <epochs> "
               "<payments-per-epoch> <seed> [options]\n"
               "                     [--metrics-out path] "
               "[--backend inproc|service] [--threads n]\n");
  return 1;
}

/// Mechanism knobs plus the sim-only flags; non-sim commands reject the
/// sim-only ones via `allow_sim_flags`.
struct CliOptions {
  core::MechanismOptions mechanism;
  std::string metrics_out;
  std::string backend = "inproc";
  /// Epoch-solve concurrency (0 = hardware, 1 = legacy whole-graph).
  int threads = 1;
};

CliOptions parse_options(int argc, char** argv, int first,
                         bool allow_sim_flags = false) {
  CliOptions options;
  for (int i = first; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--delay") {
      options.mechanism.delay = std::stod(value);
    } else if (flag == "--fee") {
      options.mechanism.fee = std::stod(value);
    } else if (flag == "--k") {
      options.mechanism.k = std::stod(value);
    } else if (flag == "--floor") {
      options.mechanism.floor = std::stod(value);
    } else if (allow_sim_flags && flag == "--metrics-out") {
      options.metrics_out = value;
    } else if (allow_sim_flags && flag == "--backend") {
      options.backend = value;
    } else if (allow_sim_flags && flag == "--threads") {
      options.threads = static_cast<int>(std::stol(value));
    } else {
      throw std::runtime_error("unknown option: " + flag);
    }
  }
  return options;
}

int cmd_run(int argc, char** argv) {
  if (argc < 4) return usage();
  const CliOptions options = parse_options(argc, argv, 4);
  const auto mechanism = core::make_mechanism(argv[2], options.mechanism);
  if (!mechanism) return usage();
  const core::Game game = core::load_game(argv[3]);
  std::printf("game: %d players, %d edges\n", game.num_players(),
              game.num_edges());
  const core::Outcome outcome = mechanism->run_truthful(game);
  std::printf("mechanism: %s\n%s",
              std::string(mechanism->name()).c_str(),
              core::describe_outcome(game, outcome).c_str());
  return 0;
}

int cmd_eq(int argc, char** argv) {
  if (argc < 4) return usage();
  const CliOptions options = parse_options(argc, argv, 4);
  const auto mechanism = core::make_mechanism(argv[2], options.mechanism);
  if (!mechanism) return usage();
  const core::Game game = core::load_game(argv[3]);
  const core::EquilibriumResult result =
      core::best_response_dynamics(*mechanism, game);
  std::printf("best-response dynamics under %s: %s after %d pass(es)\n",
              std::string(mechanism->name()).c_str(),
              result.converged ? "converged" : "DID NOT CONVERGE",
              result.passes);
  std::printf("equilibrium welfare %.6f vs truthful %.6f (ratio %.3f)\n",
              result.equilibrium_welfare, result.truthful_welfare,
              result.welfare_ratio());
  std::printf("per-player shading factors:");
  for (double s : result.strategy) std::printf(" %.2f", s);
  std::printf("\n");
  return 0;
}

int cmd_sim(int argc, char** argv) {
  if (argc < 7) return usage();
  sim::SimulationConfig config;
  const std::string mech_name = argv[2];
  config.num_nodes = static_cast<flow::NodeId>(std::stol(argv[3]));
  config.epochs = static_cast<int>(std::stol(argv[4]));
  config.payments_per_epoch = static_cast<int>(std::stol(argv[5]));
  config.seed = static_cast<std::uint64_t>(std::stoull(argv[6]));
  const CliOptions options =
      parse_options(argc, argv, 7, /*allow_sim_flags=*/true);

  std::unique_ptr<core::Mechanism> mechanism;
  if (mech_name != "none") {
    mechanism = core::make_mechanism(mech_name, options.mechanism);
    if (!mechanism) return usage();
  }

  sim::SimulationResult result;
  if (options.backend == "service") {
    if (!mechanism) {
      throw std::runtime_error("--backend service needs a mechanism");
    }
    svc::ServiceBackend backend(*mechanism, 1024, options.threads);
    result = sim::run_simulation(config, &backend, nullptr);
  } else if (options.backend == "inproc") {
    if (mechanism && options.threads != 1) {
      svc::ParallelExecutor executor(options.threads);
      sim::MechanismBackend backend(*mechanism, &executor);
      result = sim::run_simulation(config, &backend, nullptr);
    } else {
      result = sim::run_simulation(config, mechanism.get());
    }
  } else {
    throw std::runtime_error("unknown backend: " + options.backend);
  }

  util::Table table({"epoch", "success%", "depleted%", "rebalanced"});
  for (const sim::EpochMetrics& m : result.epochs) {
    table.add_row({util::fmt_int(m.epoch),
                   util::fmt_double(100.0 * m.success_rate(), 1),
                   util::fmt_double(100.0 * m.depleted_fraction, 1),
                   util::fmt_int(m.rebalanced_volume)});
  }
  table.print();
  std::printf("overall success: %.1f%%, volume delivered: %lld, "
              "rebalanced: %lld\n",
              100.0 * result.overall_success_rate(),
              static_cast<long long>(result.total_volume_succeeded()),
              static_cast<long long>(result.total_rebalanced_volume()));
  if (!options.metrics_out.empty()) {
    sim::save_metrics(result, options.metrics_out);
    std::printf("metrics written to %s\n", options.metrics_out.c_str());
  }
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto players = static_cast<flow::NodeId>(std::stol(argv[2]));
  const int attach = static_cast<int>(std::stol(argv[3]));
  util::Rng rng(static_cast<std::uint64_t>(std::stoull(argv[4])));
  gen::GameConfig config;
  const core::Game game = gen::random_ba_game(players, attach, config, rng);
  const std::string text = core::to_text(game);
  if (argc >= 6) {
    core::save_game(game, argv[5]);
    std::printf("wrote %d players, %d edges to %s\n", game.num_players(),
                game.num_edges(), argv[5]);
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc < 3) return usage();
  const core::Game game = core::load_game(argv[2]);
  int depleted = 0;
  flow::Amount capacity = 0;
  for (core::EdgeId e = 0; e < game.num_edges(); ++e) {
    depleted += game.is_depleted(e);
    capacity += game.edge(e).capacity;
  }
  std::printf("valid musketeer-game: %d players, %d edges "
              "(%d depleted), total capacity %lld\n",
              game.num_players(), game.num_edges(), depleted,
              static_cast<long long>(capacity));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string command = argv[1];
    if (command == "run") return cmd_run(argc, argv);
    if (command == "eq") return cmd_eq(argc, argv);
    if (command == "sim") return cmd_sim(argc, argv);
    if (command == "gen") return cmd_gen(argc, argv);
    if (command == "check") return cmd_check(argc, argv);
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
