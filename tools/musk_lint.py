#!/usr/bin/env python3
"""musk_lint: repo-specific lexical lint rules for the Musketeer tree.

Rules (each has a stable id used in inline suppressions):

  raw-assert   No raw C `assert(...)` -- use MUSK_ASSERT / MUSK_ASSERT_MSG
               from util/assert.hpp so failures carry file/line context and
               survive NDEBUG builds. (`static_assert` and gtest's
               ASSERT_*/EXPECT_* macros are fine.)
  float-eq     No `==` / `!=` against a floating-point literal outside
               src/core/properties.cpp (the one place where tolerance
               handling is centralised). Exact comparisons elsewhere hide
               rounding bugs; compare against a tolerance instead.
  rand         No `rand()` / `srand()` -- use util::Rng so every experiment
               is seedable and reproducible.
  graph-in-mechanism
               No direct `flow::Graph` construction or `build_graph*()`
               call inside src/core/m*_*.cpp -- mechanisms must obtain
               their graphs through the flow::SolveContext layer
               (Game::bind_graph / SolveContext::bind_from) so repeated
               runs on one topology reuse the bound graph and solver
               workspaces instead of rebuilding per call.

Thread-hygiene rules (the service layer is concurrent; these keep every
wait interruptible and every thread joined):

  thread-detach  No `std::thread::detach()` -- a detached thread cannot be
                 joined at shutdown, races destructors, and breaks tsan
                 runs. Use std::jthread and keep the handle.
  naked-sleep    No `sleep` / `usleep` / `sleep_for` / `sleep_until` -- a
                 sleeping thread ignores shutdown. Wait on a
                 condition_variable(_any) with a predicate/stop_token, or
                 poll(2) with a bounded timeout, so stop requests interrupt
                 the wait.
  system-call    No `system()` -- it blocks, inherits fds into a shell, and
                 is unkillable from a stop_token. Spawn helpers explicitly
                 or do the work in-process.
  cv-wait        No deadline-free `.wait(` (condition_variable or future) --
                 a wait with no timeout can block shutdown forever if the
                 matching notify is lost to a crash or a bug. Use
                 `wait_for` / `wait_until` in a predicate loop so the wait
                 re-checks its exit condition on a bounded cadence.
  bare-catch     No `catch (...)` that swallows -- a handler that neither
                 rethrows nor is explicitly allowed hides the very failures
                 the chaos suite injects. Cleanup-and-rethrow handlers
                 (a `throw;` within the next few lines) are fine.
  raw-thread     No raw `std::thread` outside src/svc/executor.* -- a
                 std::thread neither joins on scope exit nor carries a
                 stop_token. Parallel fan-out goes through
                 svc::ParallelExecutor (the one seam allowed to own a
                 worker pool); a one-off helper thread is std::jthread so
                 shutdown joins it. The executor files are exempt (they
                 call std::thread::hardware_concurrency()).
  adhoc-timing   No `steady_clock::now()` (or high_resolution_clock /
                 system_clock, or a `Clock::now()` alias read) in src/ or
                 tools/ outside src/obs/ -- time a duration with
                 obs::Timer, a span with MUSK_OBS_SPAN, and get a raw
                 time_point (deadline arithmetic) from
                 obs::Timer::clock(), so every measurement flows through
                 the one observability clock. src/util/deadline.hpp is
                 the one sanctioned exemption: cancellation deadlines
                 must stay off the obs seam so disabling observability
                 cannot change solve behavior. bench/ and tests/ are
                 exempt: harnesses time whatever they like.
  solver-timing  No clock types, clock reads, or deadline construction
                 (`Deadline::after` / `.expired()`) anywhere in src/flow.
                 Solvers do not own time: a hand-rolled timeout loop in a
                 solver bypasses the cancellation contract (cancel points
                 at iteration boundaries only, DESIGN.md section 14) and
                 can unwind mid-push. A solver observes time exclusively
                 by polling its util::CancelToken via MUSK_CANCEL_POINT;
                 arming deadlines is the service layer's job.
  unchecked-rename
                 No raw `rename(` / `unlink(` outside src/svc/journal.* and
                 src/svc/snapshot.* -- those two files own the
                 tmp-write/fsync/rename/dir-fsync publication protocol and
                 check every return code (DESIGN.md section 15). A bare
                 rename or unlink elsewhere either skips durability (the
                 rename "succeeds" but vanishes on power loss) or silently
                 ignores failure, and bypasses the crash-recovery
                 invariants the chaos suite enforces. Delete scratch files
                 with std::remove / std::filesystem::remove, or route
                 journal-directory mutations through Journal /
                 SnapshotStore.

Lock-discipline rules (every lock in the tree carries a rank from the
hierarchy in DESIGN.md section 11 and its guarded state is annotated):

  unranked-mutex No raw `std::mutex` / `std::condition_variable` (or their
                 timed/recursive/shared/_any variants) in src/ outside
                 src/util/ -- use util::OrderedMutex / util::OrderedCondVar
                 so every acquisition is rank-checked by the lock-order
                 auditor and visible to clang's thread-safety analysis.
  unguarded-member
                 In src/ headers outside src/util/, every member declared
                 in the contiguous run after an OrderedMutex member must
                 carry MUSK_GUARDED_BY(...) or be exempt (std::atomic,
                 std::jthread, OrderedMutex/OrderedCondVar, const/static/
                 constexpr). State the mutex does not guard belongs after
                 a blank line or access specifier, not interleaved with
                 what it does guard.

A line may opt out of one rule with a justification comment on that line:

    x == 0.0;  // musk-lint: allow(float-eq)

Usage: musk_lint.py [repo-root]              lint the tree
       musk_lint.py --selftest [repo-root]   run every rule against the
                                             fixture corpus under
                                             tests/tools/lint_corpus/ and
                                             diff the violation set against
                                             its expected.txt manifest
Exit status: 0 clean, 1 violations found (or selftest mismatch).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}
SCAN_DIRS = ["src", "tests", "bench", "examples", "tools"]

# `assert(` not preceded by an identifier character: skips static_assert,
# MUSK_ASSERT (uppercase), and gtest ASSERT_* macros.
RAW_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
# A float literal on either side of ==/!=.
FLOAT_EQ = re.compile(r"[=!]=\s*-?\d+\.\d*|\d+\.\d*[fF]?\s*[=!]=")
RAND = re.compile(r"(?<![A-Za-z0-9_.:])s?rand\s*\(")
# `.detach(` on anything thread-like (member call spelling).
THREAD_DETACH = re.compile(r"\.\s*detach\s*\(")
# The exact `std::thread` token: `std::jthread` and `std::this_thread`
# do not contain it and stay allowed.
RAW_THREAD = re.compile(r"\bstd::thread\b")
# The one seam allowed to construct raw threads / query the hardware.
EXECUTOR_FILES = {Path("src/svc/executor.hpp"), Path("src/svc/executor.cpp")}
# Naked sleeps: POSIX sleep/usleep/nanosleep and std::this_thread
# sleep_for/sleep_until.
NAKED_SLEEP = re.compile(
    r"(?<![A-Za-z0-9_])(?:u?sleep|nanosleep|sleep_for|sleep_until)\s*\(")
# `system(` as a free/std call (not ::system qualifier-on-the-left like
# foo::system or a member x.system()).
SYSTEM_CALL = re.compile(r"(?<![A-Za-z0-9_.:])(?:std::|::)?system\s*\(")
# `.wait(` exactly: `.wait_for(` / `.wait_until(` have a `_` after "wait"
# and do not match.
CV_WAIT = re.compile(r"\.\s*wait\s*\(")
# A catch-everything handler. Checked with lookahead in lint_file: only a
# handler with no `throw` in the following lines is a violation.
BARE_CATCH = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
RETHROW = re.compile(r"\bthrow\b")
# How many lines after a catch (...) may contain the rethrow.
BARE_CATCH_LOOKAHEAD = 20
# A Graph being constructed (`Graph g...`, by value) or an explicit
# build_graph/build_graph_without call. Reference bindings (`Graph& g`)
# to a context-owned graph are fine and do not match.
GRAPH_IN_MECH = re.compile(r"\bGraph\s+[A-Za-z_]|\.\s*build_graph(?:_without)?\s*\(")
# A raw clock read. Naming a clock type (steady_clock::time_point in a
# deadline parameter) is fine; *reading* it outside src/obs is not. The
# `Clock::now(` arm closes the alias dodge (`using Clock = steady_clock`).
ADHOC_TIMING = re.compile(
    r"\b(?:steady_clock|high_resolution_clock|system_clock|Clock)"
    r"\s*::\s*now\s*\(")
# The sanctioned home for cancellation-deadline clock reads (see the
# header's own comment): deliberately not routed through obs::Timer so
# MUSKETEER_OBS=OFF builds keep bit-identical cancellation behavior.
DEADLINE_HEADER = Path("src/util/deadline.hpp")
# Solvers may not own time at all: any clock type mention, any `::now(`
# read (aliases included), or any Deadline construction / expiry check
# inside src/flow is a hand-rolled timeout bypassing MUSK_CANCEL_POINT.
SOLVER_TIMING = re.compile(
    r"\b(?:steady_clock|high_resolution_clock|system_clock)\b"
    r"|::\s*now\s*\(|\bDeadline\s*::\s*after\b|\.\s*expired\s*\(")
# A raw POSIX rename/unlink call (optionally ::/std:: qualified). Member
# spellings (`x.rename(`) and foreign qualifiers (`fs::rename(`) do not
# match; std::remove / std::filesystem::remove stay allowed for scratch
# cleanup. The durable-publication protocol lives in journal/snapshot.
UNCHECKED_RENAME = re.compile(
    r"(?<![A-Za-z0-9_.:])(?:std::|::)?(?:rename|unlink)\s*\(")
# The two files that own checked rename/unlink (and the corpus mirrors).
RENAME_OWNERS = re.compile(r"^src/svc/(?:journal|snapshot)\.(?:cpp|hpp)$")
# Any raw standard-library mutex or condition variable type. OrderedMutex
# wraps these inside src/util/, which is exempt via the path predicate.
UNRANKED_MUTEX = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_|shared_timed_)?"
    r"(?:mutex|condition_variable(?:_any)?)\b")
# Arms the unguarded-member scan: an OrderedMutex member declaration.
ORDERED_MUTEX_MEMBER = re.compile(r"\bOrderedMutex\s+[A-Za-z_][A-Za-z0-9_]*")
# A declaration exempt from MUSK_GUARDED_BY: synchronisation objects,
# atomics, thread handles, and immutable members need no guard.
GUARD_EXEMPT = re.compile(
    r"MUSK_GUARDED_BY|MUSK_PT_GUARDED_BY|std::atomic|std::jthread"
    r"|std::stop_token|OrderedMutex|OrderedCondVar"
    r"|\bstatic\b|\bconstexpr\b|^\s*const\b")
ACCESS_SPECIFIER = re.compile(r"^\s*(?:public|protected|private)\s*:")
ALLOW = re.compile(r"musk-lint:\s*allow\(([a-z-]+)\)")
MECHANISM_FILE = re.compile(r"m\d+_\w+\.cpp$")

# (rule id, pattern, predicate deciding whether the rule applies to a file).
RULES = [
    ("raw-assert", RAW_ASSERT, lambda rel: rel != Path("src/util/assert.hpp")),
    ("float-eq", FLOAT_EQ,
     lambda rel: rel.parts[0] == "src" and rel.name != "properties.cpp"),
    ("rand", RAND, lambda rel: True),
    ("graph-in-mechanism", GRAPH_IN_MECH,
     lambda rel: rel.parts[:2] == ("src", "core")
     and MECHANISM_FILE.match(rel.name) is not None),
    ("thread-detach", THREAD_DETACH, lambda rel: True),
    ("raw-thread", RAW_THREAD, lambda rel: rel not in EXECUTOR_FILES),
    ("naked-sleep", NAKED_SLEEP, lambda rel: True),
    ("system-call", SYSTEM_CALL, lambda rel: True),
    ("cv-wait", CV_WAIT, lambda rel: True),
    ("unranked-mutex", UNRANKED_MUTEX,
     lambda rel: rel.parts[0] == "src"
     and rel.parts[:2] not in {("src", "util"), ("src", "obs")}),
    ("adhoc-timing", ADHOC_TIMING,
     lambda rel: rel.parts[0] in {"src", "tools"}
     and rel.parts[:2] != ("src", "obs") and rel != DEADLINE_HEADER),
    ("solver-timing", SOLVER_TIMING,
     lambda rel: rel.parts[:2] == ("src", "flow")),
    ("unchecked-rename", UNCHECKED_RENAME,
     lambda rel: RENAME_OWNERS.match(rel.as_posix()) is None),
]


def applies_unguarded_member(rel: Path) -> bool:
    return (rel.parts[0] == "src" and rel.parts[:2] != ("src", "util")
            and rel.suffix in {".hpp", ".h"})


def unguarded_members(rel: Path, lines: list[str]) -> list[str]:
    """Members declared right after an OrderedMutex without MUSK_GUARDED_BY.

    An OrderedMutex member arms the scan; every following declaration in
    the same contiguous run must either carry MUSK_GUARDED_BY or be exempt
    (GUARD_EXEMPT). The run ends at a blank line, an access specifier, or
    the end of the class -- put unguarded state there, visibly outside the
    mutex's block. Declarations may span lines; each is judged whole (the
    text up to its `;`). Comment lines are transparent.
    """
    violations = []
    # idle: before any mutex | consume_mutex: inside a multi-line mutex
    # decl | armed: between decls in a mutex's run | consume_decl: inside
    # the decl being judged.
    state = "idle"
    decl: list[tuple[int, str]] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if state == "idle":
            if not is_comment(line) and ORDERED_MUTEX_MEMBER.search(line):
                state = "armed" if ";" in line else "consume_mutex"
            continue
        if state == "consume_mutex":
            if ";" in line:
                state = "armed"
            continue
        if state == "armed":
            if (not stripped or ACCESS_SPECIFIER.match(line)
                    or stripped.startswith("};")):
                state = "idle"
                continue
            if is_comment(line) or stripped.startswith("#"):
                continue
            if ORDERED_MUTEX_MEMBER.search(line):
                # A second mutex starts its own run.
                state = "armed" if ";" in line else "consume_mutex"
                continue
            decl = [(lineno, line)]
            state = "consume_decl"
        elif state == "consume_decl":
            decl.append((lineno, line))
        if state == "consume_decl" and any(";" in t for _, t in decl):
            first_lineno, first_line = decl[0]
            text = " ".join(part.strip() for _, part in decl)
            decl = []
            state = "armed"
            if "unguarded-member" in ALLOW.findall(text):
                continue
            if GUARD_EXEMPT.search(text):
                continue
            violations.append(
                f"{rel}:{first_lineno}: [unguarded-member] "
                f"{first_line.strip()}")
    return violations


def is_comment(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def swallowing_catch(lines: list[str], index: int) -> bool:
    """True if the catch (...) at lines[index] never rethrows.

    Lexical approximation: a cleanup-and-rethrow handler mentions `throw`
    within the handler's first few lines; a swallowing one does not.
    """
    lookahead = lines[index:index + BARE_CATCH_LOOKAHEAD]
    return not any(RETHROW.search(line) for line in lookahead)


def lint_file(root: Path, path: Path) -> list[str]:
    rel = path.relative_to(root)
    if rel.name == "musk_lint.py":
        return []
    violations = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}: unreadable: {err}"]
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        allowed = set(ALLOW.findall(line))
        for rule, pattern, applies in RULES:
            if rule in allowed or not applies(rel):
                continue
            if pattern.search(line):
                violations.append(
                    f"{rel}:{lineno}: [{rule}] {line.strip()}")
        if ("bare-catch" not in allowed and not is_comment(line)
                and BARE_CATCH.search(line)
                and swallowing_catch(lines, lineno - 1)):
            violations.append(
                f"{rel}:{lineno}: [bare-catch] {line.strip()}")
    if applies_unguarded_member(rel):
        violations.extend(unguarded_members(rel, lines))
    return violations


# Regex over our own violation format, for the selftest diff.
VIOLATION_LINE = re.compile(r"^(.*?):\d+: \[([a-z-]+)\]")


def selftest(root: Path) -> int:
    """Lints the fixture corpus and diffs against its expected.txt.

    The corpus mirrors repo paths (so path predicates fire) and carries a
    manifest of `<relpath> <rule>` lines: one per violation the fixtures
    must produce. Any difference in either direction -- a rule that went
    quiet or one that started firing on clean code -- fails the test.
    """
    corpus = root / "tests" / "tools" / "lint_corpus"
    manifest = corpus / "expected.txt"
    if not manifest.is_file():
        print(f"musk_lint: selftest manifest missing: {manifest}",
              file=sys.stderr)
        return 1
    expected = set()
    for raw in manifest.read_text(encoding="utf-8").splitlines():
        entry = raw.split("#", 1)[0].strip()
        if not entry:
            continue
        path, rule = entry.rsplit(None, 1)
        expected.add((path, rule))
    files = sorted(p for p in corpus.rglob("*")
                   if p.suffix in CXX_SUFFIXES and p.is_file())
    got = set()
    for f in files:
        for v in lint_file(corpus, f):
            m = VIOLATION_LINE.match(v)
            if m:
                got.add((m.group(1), m.group(2)))
    status = 0
    for path, rule in sorted(expected - got):
        print(f"musk_lint selftest: MISSED expected violation "
              f"[{rule}] in {path}")
        status = 1
    for path, rule in sorted(got - expected):
        print(f"musk_lint selftest: FALSE POSITIVE [{rule}] in {path}")
        status = 1
    print(f"musk_lint selftest: {len(files)} fixtures, "
          f"{len(got)} violations, "
          f"{'MISMATCH' if status else 'all as expected'}")
    return status


def main(argv: list[str]) -> int:
    argv = list(argv)
    run_selftest = "--selftest" in argv
    if run_selftest:
        argv.remove("--selftest")
    root = Path(argv[1]).resolve() if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent)
    if run_selftest:
        return selftest(root)
    files = sorted(
        p for d in SCAN_DIRS for p in (root / d).rglob("*")
        if p.suffix in CXX_SUFFIXES and p.is_file()
        and "lint_corpus" not in p.parts)
    if not files:
        print(f"musk_lint: no C++ sources found under {root}", file=sys.stderr)
        return 1
    violations = [v for f in files for v in lint_file(root, f)]
    for v in violations:
        print(v)
    print(f"musk_lint: scanned {len(files)} files, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
