#!/usr/bin/env python3
"""musk_lint: repo-specific lexical lint rules for the Musketeer tree.

Rules (each has a stable id used in inline suppressions):

  raw-assert   No raw C `assert(...)` -- use MUSK_ASSERT / MUSK_ASSERT_MSG
               from util/assert.hpp so failures carry file/line context and
               survive NDEBUG builds. (`static_assert` and gtest's
               ASSERT_*/EXPECT_* macros are fine.)
  float-eq     No `==` / `!=` against a floating-point literal outside
               src/core/properties.cpp (the one place where tolerance
               handling is centralised). Exact comparisons elsewhere hide
               rounding bugs; compare against a tolerance instead.
  rand         No `rand()` / `srand()` -- use util::Rng so every experiment
               is seedable and reproducible.
  graph-in-mechanism
               No direct `flow::Graph` construction or `build_graph*()`
               call inside src/core/m*_*.cpp -- mechanisms must obtain
               their graphs through the flow::SolveContext layer
               (Game::bind_graph / SolveContext::bind_from) so repeated
               runs on one topology reuse the bound graph and solver
               workspaces instead of rebuilding per call.

Thread-hygiene rules (the service layer is concurrent; these keep every
wait interruptible and every thread joined):

  thread-detach  No `std::thread::detach()` -- a detached thread cannot be
                 joined at shutdown, races destructors, and breaks tsan
                 runs. Use std::jthread and keep the handle.
  naked-sleep    No `sleep` / `usleep` / `sleep_for` / `sleep_until` -- a
                 sleeping thread ignores shutdown. Wait on a
                 condition_variable(_any) with a predicate/stop_token, or
                 poll(2) with a bounded timeout, so stop requests interrupt
                 the wait.
  system-call    No `system()` -- it blocks, inherits fds into a shell, and
                 is unkillable from a stop_token. Spawn helpers explicitly
                 or do the work in-process.
  cv-wait        No deadline-free `.wait(` (condition_variable or future) --
                 a wait with no timeout can block shutdown forever if the
                 matching notify is lost to a crash or a bug. Use
                 `wait_for` / `wait_until` in a predicate loop so the wait
                 re-checks its exit condition on a bounded cadence.
  bare-catch     No `catch (...)` that swallows -- a handler that neither
                 rethrows nor is explicitly allowed hides the very failures
                 the chaos suite injects. Cleanup-and-rethrow handlers
                 (a `throw;` within the next few lines) are fine.

A line may opt out of one rule with a justification comment on that line:

    x == 0.0;  // musk-lint: allow(float-eq)

Usage: musk_lint.py [repo-root]   (defaults to the parent of tools/)
Exit status: 0 clean, 1 violations found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}
SCAN_DIRS = ["src", "tests", "bench", "examples", "tools"]

# `assert(` not preceded by an identifier character: skips static_assert,
# MUSK_ASSERT (uppercase), and gtest ASSERT_* macros.
RAW_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
# A float literal on either side of ==/!=.
FLOAT_EQ = re.compile(r"[=!]=\s*-?\d+\.\d*|\d+\.\d*[fF]?\s*[=!]=")
RAND = re.compile(r"(?<![A-Za-z0-9_.:])s?rand\s*\(")
# `.detach(` on anything thread-like (member call spelling).
THREAD_DETACH = re.compile(r"\.\s*detach\s*\(")
# Naked sleeps: POSIX sleep/usleep/nanosleep and std::this_thread
# sleep_for/sleep_until.
NAKED_SLEEP = re.compile(
    r"(?<![A-Za-z0-9_])(?:u?sleep|nanosleep|sleep_for|sleep_until)\s*\(")
# `system(` as a free/std call (not ::system qualifier-on-the-left like
# foo::system or a member x.system()).
SYSTEM_CALL = re.compile(r"(?<![A-Za-z0-9_.:])(?:std::|::)?system\s*\(")
# `.wait(` exactly: `.wait_for(` / `.wait_until(` have a `_` after "wait"
# and do not match.
CV_WAIT = re.compile(r"\.\s*wait\s*\(")
# A catch-everything handler. Checked with lookahead in lint_file: only a
# handler with no `throw` in the following lines is a violation.
BARE_CATCH = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
RETHROW = re.compile(r"\bthrow\b")
# How many lines after a catch (...) may contain the rethrow.
BARE_CATCH_LOOKAHEAD = 20
# A Graph being constructed (`Graph g...`, by value) or an explicit
# build_graph/build_graph_without call. Reference bindings (`Graph& g`)
# to a context-owned graph are fine and do not match.
GRAPH_IN_MECH = re.compile(r"\bGraph\s+[A-Za-z_]|\.\s*build_graph(?:_without)?\s*\(")
ALLOW = re.compile(r"musk-lint:\s*allow\(([a-z-]+)\)")
MECHANISM_FILE = re.compile(r"m\d+_\w+\.cpp$")

# (rule id, pattern, predicate deciding whether the rule applies to a file).
RULES = [
    ("raw-assert", RAW_ASSERT, lambda rel: rel != Path("src/util/assert.hpp")),
    ("float-eq", FLOAT_EQ,
     lambda rel: rel.parts[0] == "src" and rel.name != "properties.cpp"),
    ("rand", RAND, lambda rel: True),
    ("graph-in-mechanism", GRAPH_IN_MECH,
     lambda rel: rel.parts[:2] == ("src", "core")
     and MECHANISM_FILE.match(rel.name) is not None),
    ("thread-detach", THREAD_DETACH, lambda rel: True),
    ("naked-sleep", NAKED_SLEEP, lambda rel: True),
    ("system-call", SYSTEM_CALL, lambda rel: True),
    ("cv-wait", CV_WAIT, lambda rel: True),
]


def is_comment(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def swallowing_catch(lines: list[str], index: int) -> bool:
    """True if the catch (...) at lines[index] never rethrows.

    Lexical approximation: a cleanup-and-rethrow handler mentions `throw`
    within the handler's first few lines; a swallowing one does not.
    """
    lookahead = lines[index:index + BARE_CATCH_LOOKAHEAD]
    return not any(RETHROW.search(line) for line in lookahead)


def lint_file(root: Path, path: Path) -> list[str]:
    rel = path.relative_to(root)
    if rel.name == "musk_lint.py":
        return []
    violations = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}: unreadable: {err}"]
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        allowed = set(ALLOW.findall(line))
        for rule, pattern, applies in RULES:
            if rule in allowed or not applies(rel):
                continue
            if pattern.search(line):
                violations.append(
                    f"{rel}:{lineno}: [{rule}] {line.strip()}")
        if ("bare-catch" not in allowed and not is_comment(line)
                and BARE_CATCH.search(line)
                and swallowing_catch(lines, lineno - 1)):
            violations.append(
                f"{rel}:{lineno}: [bare-catch] {line.strip()}")
    return violations


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent)
    files = sorted(
        p for d in SCAN_DIRS for p in (root / d).rglob("*")
        if p.suffix in CXX_SUFFIXES and p.is_file())
    if not files:
        print(f"musk_lint: no C++ sources found under {root}", file=sys.stderr)
        return 1
    violations = [v for f in files for v in lint_file(root, f)]
    for v in violations:
        print(v)
    print(f"musk_lint: scanned {len(files)} files, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
