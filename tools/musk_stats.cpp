// musk_stats — query a running musketeerd for its live stats snapshot.
//
//   musk_stats [--connect tcp:PORT|unix:PATH] [--json]
//
//   --connect <ep>  daemon endpoint                    [tcp:7740]
//   --json          dump the raw obs registry JSON after the summary
//
// Sends one kStatsRequest frame and renders the kStatsResponse: service
// state (epoch counter, queue depth/capacity/high-watermark, journal
// size, uptime), the Pickhardt-style imbalance gauges, the solve
// concurrency and last epoch's component shape, the checkpoint health
// (snapshot age, epochs since snapshot, journal segment count), the
// intake counters, and — with --json — the full metrics registry snapshot
// (counters, gauges, histogram quantiles) the daemon serves.
//
// Exit status: 0 on success, 1 on usage errors, 2 when the daemon is
// unreachable or misbehaves.
#include <cstdio>
#include <string>

#include "svc/client.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: musk_stats [--connect tcp:PORT|unix:PATH] [--json]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect = "tcp:7740";
  bool dump_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (flag == "--json") {
      dump_json = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return usage();
    }
  }

  try {
    svc::Client client(connect);
    const svc::StatsResponseMsg stats = client.stats();

    std::printf("musketeerd @ %s\n", connect.c_str());
    util::Table table({"stat", "value"});
    table.add_row({"epochs cleared", std::to_string(stats.epoch)});
    table.add_row({"uptime", util::format("%.1f s", stats.uptime_seconds)});
    table.add_row(
        {"queue depth / capacity",
         util::format("%llu / %llu",
                      static_cast<unsigned long long>(stats.queue_depth),
                      static_cast<unsigned long long>(stats.queue_capacity))});
    table.add_row({"queue high watermark",
                   std::to_string(stats.queue_high_watermark)});
    table.add_row({"journal bytes", std::to_string(stats.journal_bytes)});
    table.add_row({"imbalance (gini)",
                   util::format("%.4f", stats.imbalance_gini)});
    table.add_row({"imbalance (mean)",
                   util::format("%.4f", stats.imbalance_mean)});
    table.add_row({"solve threads", std::to_string(stats.solve_threads)});
    table.add_row({"last epoch components",
                   std::to_string(stats.last_components)});
    table.add_row({"largest component (edges)",
                   std::to_string(stats.largest_component)});
    table.add_row({"shed level", std::to_string(stats.shed_level)});
    table.add_row({"clear EWMA",
                   util::format("%.3f ms", 1e3 * stats.ewma_clear_seconds)});
    table.add_row({"deadline exceeded",
                   std::to_string(stats.deadline_exceeded)});
    table.add_row({"degraded rungs", std::to_string(stats.degraded_epochs)});
    table.add_row({"watchdog fired", std::to_string(stats.watchdog_fired)});
    table.add_row({"epochs aborted", std::to_string(stats.aborted_epochs)});
    table.add_row({"snapshot age",
                   stats.snapshot_age_seconds < 0.0
                       ? std::string("(none this run)")
                       : util::format("%.1f s", stats.snapshot_age_seconds)});
    table.add_row({"epochs since snapshot",
                   std::to_string(stats.epochs_since_snapshot)});
    table.add_row({"snapshots taken", std::to_string(stats.snapshots_taken)});
    table.add_row({"journal segments",
                   std::to_string(stats.journal_segments)});
    table.print();

    const svc::IntakeCounters& in = stats.intake;
    std::printf("\nintake: %llu accepted, %llu replaced, %llu rejected-full, "
                "%llu rejected-invalid, %llu rejected-closed, %llu duplicate, "
                "%llu rejected-overload\n",
                static_cast<unsigned long long>(in.accepted),
                static_cast<unsigned long long>(in.replaced),
                static_cast<unsigned long long>(in.rejected_full),
                static_cast<unsigned long long>(in.rejected_invalid),
                static_cast<unsigned long long>(in.rejected_closed),
                static_cast<unsigned long long>(in.duplicate),
                static_cast<unsigned long long>(in.rejected_overload));

    if (dump_json) {
      std::printf("\n%s\n", stats.registry_json.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "musk_stats: error: %s\n", error.what());
    return 2;
  }
}
