// musk_journal — offline inspection, verification, and compaction of a
// musketeerd journal (rotated segments + manifest + snapshots), reusing
// the daemon's own readers so the tool and the daemon can never
// disagree about what is valid.
//
//   musk_journal inspect <journal-base>   show segments, snapshots,
//                                         record totals, manifest state
//   musk_journal verify  <journal-base>   exit 2 on any corruption
//   musk_journal compact <journal-base>   offline compaction: unlink
//                                         every segment the newest valid
//                                         snapshot makes redundant
//
// `verify` is strict about data (a torn segment tail, a corrupt record,
// a segment-chain gap, or an invalid snapshot file is corruption, exit
// 2) but lenient about the manifest: the manifest is advisory (the
// directory scan is ground truth; the daemon rewrites a stale one on
// open), so a mismatch is only warned about.
//
// `compact` opens the journal read-write exactly like the daemon does —
// repairing any torn tail first — then applies the same compaction
// bound the online checkpointer uses (SnapshotStore::
// oldest_retained_first_segment), so it never removes history a
// recovery might still need.
//
// Exit status: 0 on success, 1 on usage errors, 2 on corruption
// (verify) or runtime errors.
#include <cstdio>
#include <string>

#include "svc/journal.hpp"
#include "svc/snapshot.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: musk_journal inspect|verify|compact <journal-base>\n");
  return 1;
}

/// Snapshot files on disk with their validation result (diagnostic kept
/// for printing; validation itself is SnapshotStore::read_file, the
/// same check recovery applies).
struct SnapshotInfo {
  std::uint64_t seq = 0;
  std::string path;
  bool valid = false;
  std::string error;
  svc::SnapshotData data;
};

std::vector<SnapshotInfo> scan_snapshots(const std::string& base) {
  std::vector<SnapshotInfo> out;
  for (const std::uint64_t seq : svc::list_snapshots(base)) {
    SnapshotInfo info;
    info.seq = seq;
    info.path = svc::snapshot_path(base, seq);
    info.valid = svc::SnapshotStore::read_file(info.path, &info.data,
                                               &info.error);
    out.push_back(std::move(info));
  }
  return out;
}

const char* type_name(svc::RecordType type) {
  switch (type) {
    case svc::RecordType::kBegin: return "begin";
    case svc::RecordType::kOutcome: return "outcome";
    case svc::RecordType::kSettled: return "settled";
    case svc::RecordType::kAborted: return "aborted";
    case svc::RecordType::kDegraded: return "degraded";
  }
  return "unknown";
}

int cmd_inspect(const std::string& base) {
  const svc::JournalScan scan = svc::scan_journal(base);
  const std::vector<SnapshotInfo> snaps = scan_snapshots(base);
  if (scan.segments.empty() && snaps.empty()) {
    std::fprintf(stderr, "musk_journal: no journal at %s\n", base.c_str());
    return 2;
  }

  std::printf("journal %s\n", base.c_str());
  util::Table segments({"segment", "bytes", "valid", "records", "state"});
  for (const svc::SegmentStat& seg : scan.segments) {
    segments.add_row({std::to_string(seg.seq),
                      std::to_string(seg.file_bytes),
                      std::to_string(seg.valid_bytes),
                      std::to_string(seg.records),
                      seg.clean ? "clean"
                                : (seg.header_ok ? "torn tail"
                                                 : "bad header")});
  }
  segments.print();

  std::size_t per_type[6] = {};
  for (const svc::JournalRecord& r : scan.records) {
    ++per_type[static_cast<std::size_t>(r.type) < 6
                   ? static_cast<std::size_t>(r.type)
                   : 0];
  }
  std::printf("\nrecords: %zu total", scan.records.size());
  for (int t = 1; t <= 5; ++t) {
    std::printf(", %zu %s", per_type[t],
                type_name(static_cast<svc::RecordType>(t)));
  }
  std::printf("\nmanifest: %s\nchain: %s%s%s\n",
              scan.manifest_ok ? "ok" : "stale/missing (advisory)",
              scan.clean ? "clean" : "DAMAGED",
              scan.note.empty() ? "" : " — ", scan.note.c_str());

  if (snaps.empty()) {
    std::printf("\nsnapshots: none\n");
  } else {
    std::printf("\n");
    util::Table table({"snapshot", "epoch", "tail segment", "state"});
    for (const SnapshotInfo& snap : snaps) {
      table.add_row({std::to_string(snap.seq),
                     snap.valid ? std::to_string(snap.data.next_epoch) : "-",
                     snap.valid ? std::to_string(snap.data.first_segment)
                                : "-",
                     snap.valid ? "valid" : "INVALID: " + snap.error});
    }
    table.print();
  }
  return 0;
}

int cmd_verify(const std::string& base) {
  const svc::JournalScan scan = svc::scan_journal(base);
  const std::vector<SnapshotInfo> snaps = scan_snapshots(base);
  if (scan.segments.empty() && snaps.empty()) {
    std::fprintf(stderr, "musk_journal: no journal at %s\n", base.c_str());
    return 2;
  }

  bool corrupt = false;
  if (!scan.clean) {
    std::fprintf(stderr, "musk_journal: %s: %s\n", base.c_str(),
                 scan.note.empty() ? "journal chain damaged"
                                   : scan.note.c_str());
    corrupt = true;
  }
  for (const SnapshotInfo& snap : snaps) {
    if (!snap.valid) {
      std::fprintf(stderr, "musk_journal: %s: invalid snapshot: %s\n",
                   snap.path.c_str(), snap.error.c_str());
      corrupt = true;
    }
  }
  if (!scan.manifest_ok) {
    // Advisory only: the daemon rebuilds it from the directory scan.
    std::fprintf(stderr,
                 "musk_journal: warning: %s: manifest stale or missing "
                 "(advisory; rebuilt on next open)\n",
                 base.c_str());
  }
  if (corrupt) return 2;
  std::printf("musk_journal: %s: ok — %zu segment(s), %zu record(s), "
              "%zu snapshot(s)\n",
              base.c_str(), scan.segments.size(), scan.records.size(),
              snaps.size());
  return 0;
}

int cmd_compact(const std::string& base) {
  if (svc::list_segments(base).empty()) {
    std::fprintf(stderr, "musk_journal: no journal at %s\n", base.c_str());
    return 2;
  }
  // Open read-write exactly like the daemon: repairs a torn tail, then
  // compacts below the same bound the online checkpointer uses.
  svc::Journal journal(base);
  const svc::SnapshotStore snapshots(base);
  const std::uint64_t bound = snapshots.oldest_retained_first_segment();
  const std::size_t removed = journal.compact_below(bound);
  std::printf("musk_journal: %s: removed %zu segment(s) below %llu; "
              "%llu live segment(s), %llu byte(s)\n",
              base.c_str(), removed,
              static_cast<unsigned long long>(bound),
              static_cast<unsigned long long>(journal.segment_count()),
              static_cast<unsigned long long>(journal.committed_bytes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string cmd = argv[1];
  const std::string base = argv[2];
  try {
    if (cmd == "inspect") return cmd_inspect(base);
    if (cmd == "verify") return cmd_verify(base);
    if (cmd == "compact") return cmd_compact(base);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "musk_journal: error: %s\n", error.what());
    return 2;
  }
}
