// musk_loadgen — open-loop load generator for musketeerd.
//
//   musk_loadgen --connect tcp:PORT|unix:PATH [client options]
//   musk_loadgen --spawn [daemon options] [client options]
//
// client options:
//   --connections <n>   concurrent client connections        [4]
//   --rate <r>          aggregate target bids/sec            [1000]
//   --duration-s <s>    run length in seconds                [5]
//   --players <p>       player-id space to cycle through     [nodes]
//   --retry-budget-ms <ms>  cumulative backoff each submit may burn
//                       retrying through shed / lost connections before
//                       surrendering (0 = fail fast)         [2000]
//
// daemon options (--spawn starts an in-process musketeerd on an
// ephemeral loopback port):
//   --nodes <n> --seed <s> --mechanism <m> --epoch-ms <ms>
//   --queue-cap <n> --threads <n> (epoch-solve concurrency;
//   0 = hardware, 1 = legacy whole-graph solve)
//   --deadline-ms <ms> --degrade <m,m,...> --watchdog-ms <ms>
//   (per-epoch clearing deadline, degradation ladder, and watchdog
//   backstop — see musketeerd; useful for demoing overload shedding)
//
// Each connection thread paces submissions open-loop (scheduled send
// times, bursting to catch up if acks lag) and measures the ack round
// trip. The report gives sustained accepted bids/sec, the per-status
// intake counts (rejected-full is the queue shedding load), ack-latency
// percentiles, and epoch-clear-latency percentiles from the server's
// epoch-result broadcasts. Latencies go into shared obs::Histogram
// instances (per-thread shards, merged at drain), so the percentiles
// are identical no matter how the samples were split across workers.
//
// Exit status: 0 on success (including shed load — rejection is an
// answer), 1 on usage errors, 2 on runtime errors.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/mechanism_factory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "util/rng.hpp"

using namespace musketeer;
// Pacing clock: obs::Timer::clock() is the sanctioned steady-clock
// source (see musk_lint's adhoc-timing rule).
using TimePoint = std::chrono::steady_clock::time_point;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: musk_loadgen (--connect tcp:PORT|unix:PATH | --spawn)"
               " [--connections n] [--rate r]\n"
               "                    [--duration-s s] [--players p] "
               "[--nodes n] [--seed s] [--mechanism m]\n"
               "                    [--epoch-ms ms] [--queue-cap n] "
               "[--threads n] [--deadline-ms ms]\n"
               "                    [--degrade m,m,...] [--watchdog-ms ms] "
               "[--retry-budget-ms ms]\n");
  return 1;
}

struct WorkerStats {
  std::uint64_t accepted = 0;
  std::uint64_t replaced = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_closed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t duplicate = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
};

struct StopSignal {
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;

  /// Interruptible wait until `when`; true means stop was requested.
  bool wait_until(TimePoint when) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_until(lock, when, [this] { return stop; });
  }

  void trigger() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    cv.notify_all();
  }
};

void print_percentiles(const char* label, const obs::HistogramSnapshot& s) {
  if (s.count == 0) {
    std::printf("%s: no samples\n", label);
    return;
  }
  std::printf("%s: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  (n=%llu)\n",
              label, s.quantile(0.5), s.quantile(0.95), s.quantile(0.99),
              s.max, static_cast<unsigned long long>(s.count));
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  bool spawn = false;
  int connections = 4;
  double rate = 1000.0;
  double duration_s = 5.0;
  flow::NodeId players = 0;
  long retry_budget_ms = 2000;
  std::string mechanism_name = "m3";
  sim::SimulationConfig sim_config;
  sim_config.initial_skew = 0.4;
  svc::DaemonConfig daemon_config;
  daemon_config.service.epoch_period = std::chrono::milliseconds(200);
  daemon_config.server.listen = "tcp:0";

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--spawn") {
        spawn = true;
        continue;
      }
      if (i + 1 >= argc) return usage();
      const std::string value = argv[++i];
      if (flag == "--connect") {
        connect = value;
      } else if (flag == "--connections") {
        connections = static_cast<int>(std::stol(value));
      } else if (flag == "--rate") {
        rate = std::stod(value);
      } else if (flag == "--duration-s") {
        duration_s = std::stod(value);
      } else if (flag == "--players") {
        players = static_cast<flow::NodeId>(std::stol(value));
      } else if (flag == "--retry-budget-ms") {
        retry_budget_ms = std::stol(value);
      } else if (flag == "--nodes") {
        sim_config.num_nodes = static_cast<flow::NodeId>(std::stol(value));
      } else if (flag == "--seed") {
        sim_config.seed = std::stoull(value);
      } else if (flag == "--mechanism") {
        mechanism_name = value;
      } else if (flag == "--epoch-ms") {
        daemon_config.service.epoch_period =
            std::chrono::milliseconds(std::stol(value));
      } else if (flag == "--queue-cap") {
        daemon_config.service.queue_capacity =
            static_cast<std::size_t>(std::stoull(value));
      } else if (flag == "--threads") {
        daemon_config.service.threads = static_cast<int>(std::stol(value));
      } else if (flag == "--deadline-ms") {
        daemon_config.service.epoch_deadline =
            std::chrono::milliseconds(std::stol(value));
      } else if (flag == "--watchdog-ms") {
        daemon_config.service.watchdog_timeout =
            std::chrono::milliseconds(std::stol(value));
      } else if (flag == "--degrade") {
        daemon_config.service.degradation_ladder.clear();
        std::size_t pos = 0;
        while (pos <= value.size()) {
          const std::size_t comma = value.find(',', pos);
          const std::string name =
              value.substr(pos, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - pos);
          if (!name.empty()) {
            daemon_config.service.degradation_ladder.push_back(name);
          }
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else {
        std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
        return usage();
      }
    }
    if (spawn == !connect.empty()) return usage();  // exactly one source
    if (connections < 1 || rate <= 0.0 || duration_s <= 0.0) return usage();
    if (players == 0) players = sim_config.num_nodes;

    std::unique_ptr<svc::Daemon> daemon;
    if (spawn) {
      auto mechanism =
          core::make_mechanism(mechanism_name, core::MechanismOptions{});
      if (!mechanism) return usage();
      util::Rng rng(sim_config.seed);
      daemon = std::make_unique<svc::Daemon>(
          sim::build_network(sim_config, rng), std::move(mechanism),
          daemon_config);
      daemon->start();
      connect = daemon->endpoint();
      std::printf("spawned musketeerd (%s) on %s\n", mechanism_name.c_str(),
                  connect.c_str());
    }

    StopSignal stop;
    std::vector<WorkerStats> stats(
        static_cast<std::size_t>(connections));
    // Shared histograms: record() lands in the calling thread's shard,
    // snapshot() after the join merges every shard deterministically.
    obs::Histogram ack_hist;
    obs::Histogram epoch_hist;
    const auto interval =
        std::chrono::duration_cast<TimePoint::duration>(
            std::chrono::duration<double>(static_cast<double>(connections) /
                                          rate));
    const obs::Timer run_timer;
    const TimePoint start = obs::Timer::clock();

    std::vector<std::jthread> workers;
    workers.reserve(static_cast<std::size_t>(connections));
    for (int t = 0; t < connections; ++t) {
      workers.emplace_back([&, t] {
        WorkerStats& my = stats[static_cast<std::size_t>(t)];
        try {
          // Resilient client: a load generator must outlive shedding —
          // retries are budget-limited, not attempt-limited, so a hot
          // server costs bounded backoff per bid instead of a dead
          // worker. Per-worker jitter seed keeps the herd staggered but
          // the run reproducible.
          svc::ClientConfig client_config;
          client_config.max_attempts = 8;
          client_config.backoff_base = std::chrono::milliseconds(25);
          client_config.backoff_max = std::chrono::milliseconds(1000);
          client_config.retry_budget =
              std::chrono::milliseconds(retry_budget_ms);
          client_config.jitter_seed =
              sim_config.seed * 997 + static_cast<std::uint64_t>(t) + 1;
          svc::Client client(connect, client_config);
          client.hello(static_cast<core::PlayerId>(t) % players);
          TimePoint next = obs::Timer::clock();
          std::uint64_t k = 0;
          for (;;) {
            if (stop.wait_until(next)) break;
            next += interval;
            svc::BidSubmission bid;
            bid.player = static_cast<core::PlayerId>(
                (static_cast<std::uint64_t>(t) +
                 k * static_cast<std::uint64_t>(connections)) %
                static_cast<std::uint64_t>(players));
            ++k;
            const obs::Timer t0;
            svc::BidAckMsg ack;
            try {
              ack = client.submit(bid);
            } catch (const svc::OverloadedError&) {
              // Terminal shed: the client's retry budget ran dry while
              // the server kept answering kRetryAfter. Keep the worker
              // alive — the next paced bid probes whether the overload
              // drained — but count the surrender.
              ++my.overloaded;
              continue;
            } catch (const svc::ServerBusyError&) {
              // Still shedding after max_attempts: the admission
              // controller refused this bid. Rejection is an answer —
              // count it and keep pacing.
              ++my.rejected_overload;
              continue;
            } catch (const std::exception&) {
              ++my.errors;
              break;
            }
            ack_hist.record(1e3 * t0.seconds());
            switch (ack.status) {
              case svc::IntakeStatus::kAccepted: ++my.accepted; break;
              case svc::IntakeStatus::kReplaced: ++my.replaced; break;
              case svc::IntakeStatus::kRejectedFull:
                ++my.rejected_full;
                break;
              case svc::IntakeStatus::kRejectedInvalid:
                ++my.rejected_invalid;
                break;
              case svc::IntakeStatus::kRejectedClosed:
                ++my.rejected_closed;
                break;
              case svc::IntakeStatus::kRejectedOverload:
                ++my.rejected_overload;
                break;
              case svc::IntakeStatus::kDuplicate: ++my.duplicate; break;
            }
          }
          // Every connection sees the same broadcasts; connection 0
          // records them (the spawn path overrides with exact
          // server-side reports below).
          if (t == 0 && !spawn) {
            for (const svc::EpochResultMsg& epoch :
                 client.take_epoch_results()) {
              epoch_hist.record(1e3 * epoch.clear_seconds);
            }
          }
        } catch (const std::exception& error) {
          std::fprintf(stderr, "worker %d: %s\n", t, error.what());
          ++my.errors;
        }
      });
    }

    stop.wait_until(start +
                    std::chrono::duration_cast<TimePoint::duration>(
                        std::chrono::duration<double>(duration_s)));
    stop.trigger();
    workers.clear();  // joins
    const double elapsed = run_timer.seconds();

    WorkerStats total;
    for (WorkerStats& s : stats) {
      total.accepted += s.accepted;
      total.replaced += s.replaced;
      total.rejected_full += s.rejected_full;
      total.rejected_invalid += s.rejected_invalid;
      total.rejected_closed += s.rejected_closed;
      total.rejected_overload += s.rejected_overload;
      total.duplicate += s.duplicate;
      total.overloaded += s.overloaded;
      total.errors += s.errors;
    }
    if (daemon) {
      // Exact server-side latencies beat sampled broadcasts.
      for (const svc::EpochReport& report : daemon->service().reports()) {
        epoch_hist.record(1e3 * report.clear_seconds);
      }
    }

    const std::uint64_t queued = total.accepted + total.replaced;
    const std::uint64_t submitted =
        queued + total.rejected_full + total.rejected_invalid +
        total.rejected_closed + total.rejected_overload + total.duplicate;
    std::printf("connections %d, target %.0f bids/s, ran %.2f s\n",
                connections, rate, elapsed);
    std::printf("submitted %llu (%.1f/s), queued %llu (%.1f/s): "
                "%llu accepted + %llu replaced\n",
                static_cast<unsigned long long>(submitted),
                static_cast<double>(submitted) / elapsed,
                static_cast<unsigned long long>(queued),
                static_cast<double>(queued) / elapsed,
                static_cast<unsigned long long>(total.accepted),
                static_cast<unsigned long long>(total.replaced));
    std::printf("shed: %llu rejected-full, %llu rejected-invalid, "
                "%llu rejected-closed, %llu rejected-overload, "
                "%llu duplicate, %llu budget-exhausted, "
                "%llu transport errors\n",
                static_cast<unsigned long long>(total.rejected_full),
                static_cast<unsigned long long>(total.rejected_invalid),
                static_cast<unsigned long long>(total.rejected_closed),
                static_cast<unsigned long long>(total.rejected_overload),
                static_cast<unsigned long long>(total.duplicate),
                static_cast<unsigned long long>(total.overloaded),
                static_cast<unsigned long long>(total.errors));
    print_percentiles("ack latency ms", ack_hist.snapshot());
    print_percentiles("epoch clear ms", epoch_hist.snapshot());
    if (daemon) {
      // The spawned service's own overload picture: aborted epochs
      // never produce reports, so the health counters are the only
      // place an all-degraded run shows up.
      const svc::ServiceStats health = daemon->service().stats_snapshot();
      std::printf(
          "service: %d cleared, %llu deadline-exceeded, %llu degraded, "
          "%llu aborted, %llu watchdog-fired, shed level %d "
          "(ewma clear %.1f ms)\n",
          health.epochs_cleared,
          static_cast<unsigned long long>(health.deadline_exceeded),
          static_cast<unsigned long long>(health.degraded_epochs),
          static_cast<unsigned long long>(health.aborted_epochs),
          static_cast<unsigned long long>(health.watchdog_fired),
          health.shed_level, 1e3 * health.ewma_clear_seconds);
    }

    if (daemon) daemon->stop();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "musk_loadgen: error: %s\n", error.what());
    return 2;
  }
}
