# Empty dependencies file for e4_throughput.
# This may be replaced when dependencies are built.
