file(REMOVE_RECURSE
  "../bench/e4_throughput"
  "../bench/e4_throughput.pdb"
  "CMakeFiles/e4_throughput.dir/e4_throughput.cpp.o"
  "CMakeFiles/e4_throughput.dir/e4_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
