file(REMOVE_RECURSE
  "../bench/e11_onchain"
  "../bench/e11_onchain.pdb"
  "CMakeFiles/e11_onchain.dir/e11_onchain.cpp.o"
  "CMakeFiles/e11_onchain.dir/e11_onchain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_onchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
