# Empty dependencies file for e11_onchain.
# This may be replaced when dependencies are built.
