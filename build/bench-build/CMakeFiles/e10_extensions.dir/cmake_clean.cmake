file(REMOVE_RECURSE
  "../bench/e10_extensions"
  "../bench/e10_extensions.pdb"
  "CMakeFiles/e10_extensions.dir/e10_extensions.cpp.o"
  "CMakeFiles/e10_extensions.dir/e10_extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
