# Empty compiler generated dependencies file for e10_extensions.
# This may be replaced when dependencies are built.
