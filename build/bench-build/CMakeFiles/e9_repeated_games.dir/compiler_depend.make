# Empty compiler generated dependencies file for e9_repeated_games.
# This may be replaced when dependencies are built.
