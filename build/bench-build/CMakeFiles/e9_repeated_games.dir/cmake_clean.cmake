file(REMOVE_RECURSE
  "../bench/e9_repeated_games"
  "../bench/e9_repeated_games.pdb"
  "CMakeFiles/e9_repeated_games.dir/e9_repeated_games.cpp.o"
  "CMakeFiles/e9_repeated_games.dir/e9_repeated_games.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_repeated_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
