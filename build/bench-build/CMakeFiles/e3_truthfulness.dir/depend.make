# Empty dependencies file for e3_truthfulness.
# This may be replaced when dependencies are built.
