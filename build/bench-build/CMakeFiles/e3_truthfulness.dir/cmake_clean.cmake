file(REMOVE_RECURSE
  "../bench/e3_truthfulness"
  "../bench/e3_truthfulness.pdb"
  "CMakeFiles/e3_truthfulness.dir/e3_truthfulness.cpp.o"
  "CMakeFiles/e3_truthfulness.dir/e3_truthfulness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_truthfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
