file(REMOVE_RECURSE
  "../bench/e6_delays"
  "../bench/e6_delays.pdb"
  "CMakeFiles/e6_delays.dir/e6_delays.cpp.o"
  "CMakeFiles/e6_delays.dir/e6_delays.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
