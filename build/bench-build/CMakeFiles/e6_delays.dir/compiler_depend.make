# Empty compiler generated dependencies file for e6_delays.
# This may be replaced when dependencies are built.
