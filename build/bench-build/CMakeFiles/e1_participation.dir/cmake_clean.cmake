file(REMOVE_RECURSE
  "../bench/e1_participation"
  "../bench/e1_participation.pdb"
  "CMakeFiles/e1_participation.dir/e1_participation.cpp.o"
  "CMakeFiles/e1_participation.dir/e1_participation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
