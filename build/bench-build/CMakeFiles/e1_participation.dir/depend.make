# Empty dependencies file for e1_participation.
# This may be replaced when dependencies are built.
