# Empty compiler generated dependencies file for e5_scalability.
# This may be replaced when dependencies are built.
