file(REMOVE_RECURSE
  "../bench/e5_scalability"
  "../bench/e5_scalability.pdb"
  "CMakeFiles/e5_scalability.dir/e5_scalability.cpp.o"
  "CMakeFiles/e5_scalability.dir/e5_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
