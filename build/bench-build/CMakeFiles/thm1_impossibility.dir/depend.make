# Empty dependencies file for thm1_impossibility.
# This may be replaced when dependencies are built.
