file(REMOVE_RECURSE
  "../bench/thm1_impossibility"
  "../bench/thm1_impossibility.pdb"
  "CMakeFiles/thm1_impossibility.dir/thm1_impossibility.cpp.o"
  "CMakeFiles/thm1_impossibility.dir/thm1_impossibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm1_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
