file(REMOVE_RECURSE
  "../bench/e7_solver_ablation"
  "../bench/e7_solver_ablation.pdb"
  "CMakeFiles/e7_solver_ablation.dir/e7_solver_ablation.cpp.o"
  "CMakeFiles/e7_solver_ablation.dir/e7_solver_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_solver_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
