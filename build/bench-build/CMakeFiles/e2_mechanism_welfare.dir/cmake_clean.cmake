file(REMOVE_RECURSE
  "../bench/e2_mechanism_welfare"
  "../bench/e2_mechanism_welfare.pdb"
  "CMakeFiles/e2_mechanism_welfare.dir/e2_mechanism_welfare.cpp.o"
  "CMakeFiles/e2_mechanism_welfare.dir/e2_mechanism_welfare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_mechanism_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
