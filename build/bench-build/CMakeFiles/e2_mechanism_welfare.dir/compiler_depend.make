# Empty compiler generated dependencies file for e2_mechanism_welfare.
# This may be replaced when dependencies are built.
