file(REMOVE_RECURSE
  "../bench/fig1_pipeline"
  "../bench/fig1_pipeline.pdb"
  "CMakeFiles/fig1_pipeline.dir/fig1_pipeline.cpp.o"
  "CMakeFiles/fig1_pipeline.dir/fig1_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
