# Empty dependencies file for e12_equilibrium.
# This may be replaced when dependencies are built.
