file(REMOVE_RECURSE
  "../bench/e12_equilibrium"
  "../bench/e12_equilibrium.pdb"
  "CMakeFiles/e12_equilibrium.dir/e12_equilibrium.cpp.o"
  "CMakeFiles/e12_equilibrium.dir/e12_equilibrium.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
