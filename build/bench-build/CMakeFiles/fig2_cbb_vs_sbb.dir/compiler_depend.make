# Empty compiler generated dependencies file for fig2_cbb_vs_sbb.
# This may be replaced when dependencies are built.
