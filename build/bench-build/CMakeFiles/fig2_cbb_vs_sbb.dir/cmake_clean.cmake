file(REMOVE_RECURSE
  "../bench/fig2_cbb_vs_sbb"
  "../bench/fig2_cbb_vs_sbb.pdb"
  "CMakeFiles/fig2_cbb_vs_sbb.dir/fig2_cbb_vs_sbb.cpp.o"
  "CMakeFiles/fig2_cbb_vs_sbb.dir/fig2_cbb_vs_sbb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cbb_vs_sbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
