file(REMOVE_RECURSE
  "../bench/e8_collusion"
  "../bench/e8_collusion.pdb"
  "CMakeFiles/e8_collusion.dir/e8_collusion.cpp.o"
  "CMakeFiles/e8_collusion.dir/e8_collusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
