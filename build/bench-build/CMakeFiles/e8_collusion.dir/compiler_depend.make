# Empty compiler generated dependencies file for e8_collusion.
# This may be replaced when dependencies are built.
