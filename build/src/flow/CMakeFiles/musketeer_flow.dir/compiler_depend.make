# Empty compiler generated dependencies file for musketeer_flow.
# This may be replaced when dependencies are built.
