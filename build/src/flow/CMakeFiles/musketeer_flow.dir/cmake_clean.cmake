file(REMOVE_RECURSE
  "CMakeFiles/musketeer_flow.dir/bellman_ford.cpp.o"
  "CMakeFiles/musketeer_flow.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/circulation.cpp.o"
  "CMakeFiles/musketeer_flow.dir/circulation.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/decompose.cpp.o"
  "CMakeFiles/musketeer_flow.dir/decompose.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/dinic.cpp.o"
  "CMakeFiles/musketeer_flow.dir/dinic.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/graph.cpp.o"
  "CMakeFiles/musketeer_flow.dir/graph.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/min_mean_cycle.cpp.o"
  "CMakeFiles/musketeer_flow.dir/min_mean_cycle.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/netting.cpp.o"
  "CMakeFiles/musketeer_flow.dir/netting.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/network_simplex.cpp.o"
  "CMakeFiles/musketeer_flow.dir/network_simplex.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/residual.cpp.o"
  "CMakeFiles/musketeer_flow.dir/residual.cpp.o.d"
  "CMakeFiles/musketeer_flow.dir/solver.cpp.o"
  "CMakeFiles/musketeer_flow.dir/solver.cpp.o.d"
  "libmusketeer_flow.a"
  "libmusketeer_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
