file(REMOVE_RECURSE
  "libmusketeer_flow.a"
)
