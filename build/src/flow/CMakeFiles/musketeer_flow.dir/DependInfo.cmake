
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/bellman_ford.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/bellman_ford.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/flow/circulation.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/circulation.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/circulation.cpp.o.d"
  "/root/repo/src/flow/decompose.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/decompose.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/decompose.cpp.o.d"
  "/root/repo/src/flow/dinic.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/dinic.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/dinic.cpp.o.d"
  "/root/repo/src/flow/graph.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/graph.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/graph.cpp.o.d"
  "/root/repo/src/flow/min_mean_cycle.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/min_mean_cycle.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/min_mean_cycle.cpp.o.d"
  "/root/repo/src/flow/netting.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/netting.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/netting.cpp.o.d"
  "/root/repo/src/flow/network_simplex.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/network_simplex.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/network_simplex.cpp.o.d"
  "/root/repo/src/flow/residual.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/residual.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/residual.cpp.o.d"
  "/root/repo/src/flow/solver.cpp" "src/flow/CMakeFiles/musketeer_flow.dir/solver.cpp.o" "gcc" "src/flow/CMakeFiles/musketeer_flow.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
