
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/musketeer_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/delegates.cpp" "src/core/CMakeFiles/musketeer_core.dir/delegates.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/delegates.cpp.o.d"
  "/root/repo/src/core/equilibrium.cpp" "src/core/CMakeFiles/musketeer_core.dir/equilibrium.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/equilibrium.cpp.o.d"
  "/root/repo/src/core/game.cpp" "src/core/CMakeFiles/musketeer_core.dir/game.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/game.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/musketeer_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/io.cpp.o.d"
  "/root/repo/src/core/m1_fixed_fee.cpp" "src/core/CMakeFiles/musketeer_core.dir/m1_fixed_fee.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/m1_fixed_fee.cpp.o.d"
  "/root/repo/src/core/m2_minfee.cpp" "src/core/CMakeFiles/musketeer_core.dir/m2_minfee.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/m2_minfee.cpp.o.d"
  "/root/repo/src/core/m2_vcg.cpp" "src/core/CMakeFiles/musketeer_core.dir/m2_vcg.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/m2_vcg.cpp.o.d"
  "/root/repo/src/core/m3_double_auction.cpp" "src/core/CMakeFiles/musketeer_core.dir/m3_double_auction.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/m3_double_auction.cpp.o.d"
  "/root/repo/src/core/m4_delayed.cpp" "src/core/CMakeFiles/musketeer_core.dir/m4_delayed.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/m4_delayed.cpp.o.d"
  "/root/repo/src/core/m5_variable_delay.cpp" "src/core/CMakeFiles/musketeer_core.dir/m5_variable_delay.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/m5_variable_delay.cpp.o.d"
  "/root/repo/src/core/myerson.cpp" "src/core/CMakeFiles/musketeer_core.dir/myerson.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/myerson.cpp.o.d"
  "/root/repo/src/core/outcome.cpp" "src/core/CMakeFiles/musketeer_core.dir/outcome.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/outcome.cpp.o.d"
  "/root/repo/src/core/properties.cpp" "src/core/CMakeFiles/musketeer_core.dir/properties.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/properties.cpp.o.d"
  "/root/repo/src/core/repeated.cpp" "src/core/CMakeFiles/musketeer_core.dir/repeated.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/repeated.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/musketeer_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/musketeer_core.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/musketeer_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
