file(REMOVE_RECURSE
  "libmusketeer_core.a"
)
