file(REMOVE_RECURSE
  "CMakeFiles/musketeer_lp.dir/flow_lp.cpp.o"
  "CMakeFiles/musketeer_lp.dir/flow_lp.cpp.o.d"
  "CMakeFiles/musketeer_lp.dir/model.cpp.o"
  "CMakeFiles/musketeer_lp.dir/model.cpp.o.d"
  "CMakeFiles/musketeer_lp.dir/simplex.cpp.o"
  "CMakeFiles/musketeer_lp.dir/simplex.cpp.o.d"
  "libmusketeer_lp.a"
  "libmusketeer_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
