file(REMOVE_RECURSE
  "libmusketeer_lp.a"
)
