# Empty compiler generated dependencies file for musketeer_lp.
# This may be replaced when dependencies are built.
