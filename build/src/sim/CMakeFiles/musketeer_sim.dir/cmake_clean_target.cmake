file(REMOVE_RECURSE
  "libmusketeer_sim.a"
)
