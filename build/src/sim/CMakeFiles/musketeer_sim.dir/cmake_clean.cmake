file(REMOVE_RECURSE
  "CMakeFiles/musketeer_sim.dir/engine.cpp.o"
  "CMakeFiles/musketeer_sim.dir/engine.cpp.o.d"
  "CMakeFiles/musketeer_sim.dir/strategies.cpp.o"
  "CMakeFiles/musketeer_sim.dir/strategies.cpp.o.d"
  "libmusketeer_sim.a"
  "libmusketeer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
