# Empty compiler generated dependencies file for musketeer_sim.
# This may be replaced when dependencies are built.
