# Empty compiler generated dependencies file for musketeer_util.
# This may be replaced when dependencies are built.
