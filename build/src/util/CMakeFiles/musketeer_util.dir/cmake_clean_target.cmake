file(REMOVE_RECURSE
  "libmusketeer_util.a"
)
