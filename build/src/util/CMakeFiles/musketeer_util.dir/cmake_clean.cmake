file(REMOVE_RECURSE
  "CMakeFiles/musketeer_util.dir/csv.cpp.o"
  "CMakeFiles/musketeer_util.dir/csv.cpp.o.d"
  "CMakeFiles/musketeer_util.dir/stats.cpp.o"
  "CMakeFiles/musketeer_util.dir/stats.cpp.o.d"
  "CMakeFiles/musketeer_util.dir/table.cpp.o"
  "CMakeFiles/musketeer_util.dir/table.cpp.o.d"
  "libmusketeer_util.a"
  "libmusketeer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
