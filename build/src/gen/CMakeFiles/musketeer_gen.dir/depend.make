# Empty dependencies file for musketeer_gen.
# This may be replaced when dependencies are built.
