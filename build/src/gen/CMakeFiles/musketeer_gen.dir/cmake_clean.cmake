file(REMOVE_RECURSE
  "CMakeFiles/musketeer_gen.dir/game_gen.cpp.o"
  "CMakeFiles/musketeer_gen.dir/game_gen.cpp.o.d"
  "CMakeFiles/musketeer_gen.dir/topology.cpp.o"
  "CMakeFiles/musketeer_gen.dir/topology.cpp.o.d"
  "CMakeFiles/musketeer_gen.dir/workload.cpp.o"
  "CMakeFiles/musketeer_gen.dir/workload.cpp.o.d"
  "libmusketeer_gen.a"
  "libmusketeer_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
