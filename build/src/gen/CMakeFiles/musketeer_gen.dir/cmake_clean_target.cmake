file(REMOVE_RECURSE
  "libmusketeer_gen.a"
)
