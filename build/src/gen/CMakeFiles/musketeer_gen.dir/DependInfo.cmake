
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/game_gen.cpp" "src/gen/CMakeFiles/musketeer_gen.dir/game_gen.cpp.o" "gcc" "src/gen/CMakeFiles/musketeer_gen.dir/game_gen.cpp.o.d"
  "/root/repo/src/gen/topology.cpp" "src/gen/CMakeFiles/musketeer_gen.dir/topology.cpp.o" "gcc" "src/gen/CMakeFiles/musketeer_gen.dir/topology.cpp.o.d"
  "/root/repo/src/gen/workload.cpp" "src/gen/CMakeFiles/musketeer_gen.dir/workload.cpp.o" "gcc" "src/gen/CMakeFiles/musketeer_gen.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/musketeer_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/musketeer_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
