
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcn/htlc.cpp" "src/pcn/CMakeFiles/musketeer_pcn.dir/htlc.cpp.o" "gcc" "src/pcn/CMakeFiles/musketeer_pcn.dir/htlc.cpp.o.d"
  "/root/repo/src/pcn/network.cpp" "src/pcn/CMakeFiles/musketeer_pcn.dir/network.cpp.o" "gcc" "src/pcn/CMakeFiles/musketeer_pcn.dir/network.cpp.o.d"
  "/root/repo/src/pcn/onchain.cpp" "src/pcn/CMakeFiles/musketeer_pcn.dir/onchain.cpp.o" "gcc" "src/pcn/CMakeFiles/musketeer_pcn.dir/onchain.cpp.o.d"
  "/root/repo/src/pcn/payment.cpp" "src/pcn/CMakeFiles/musketeer_pcn.dir/payment.cpp.o" "gcc" "src/pcn/CMakeFiles/musketeer_pcn.dir/payment.cpp.o.d"
  "/root/repo/src/pcn/rebalancer.cpp" "src/pcn/CMakeFiles/musketeer_pcn.dir/rebalancer.cpp.o" "gcc" "src/pcn/CMakeFiles/musketeer_pcn.dir/rebalancer.cpp.o.d"
  "/root/repo/src/pcn/routing.cpp" "src/pcn/CMakeFiles/musketeer_pcn.dir/routing.cpp.o" "gcc" "src/pcn/CMakeFiles/musketeer_pcn.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/musketeer_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/musketeer_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
