file(REMOVE_RECURSE
  "CMakeFiles/musketeer_pcn.dir/htlc.cpp.o"
  "CMakeFiles/musketeer_pcn.dir/htlc.cpp.o.d"
  "CMakeFiles/musketeer_pcn.dir/network.cpp.o"
  "CMakeFiles/musketeer_pcn.dir/network.cpp.o.d"
  "CMakeFiles/musketeer_pcn.dir/onchain.cpp.o"
  "CMakeFiles/musketeer_pcn.dir/onchain.cpp.o.d"
  "CMakeFiles/musketeer_pcn.dir/payment.cpp.o"
  "CMakeFiles/musketeer_pcn.dir/payment.cpp.o.d"
  "CMakeFiles/musketeer_pcn.dir/rebalancer.cpp.o"
  "CMakeFiles/musketeer_pcn.dir/rebalancer.cpp.o.d"
  "CMakeFiles/musketeer_pcn.dir/routing.cpp.o"
  "CMakeFiles/musketeer_pcn.dir/routing.cpp.o.d"
  "libmusketeer_pcn.a"
  "libmusketeer_pcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_pcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
