file(REMOVE_RECURSE
  "libmusketeer_pcn.a"
)
