# Empty dependencies file for musketeer_pcn.
# This may be replaced when dependencies are built.
