
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flow/bellman_ford_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/bellman_ford_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/bellman_ford_test.cpp.o.d"
  "/root/repo/tests/flow/circulation_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/circulation_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/circulation_test.cpp.o.d"
  "/root/repo/tests/flow/decompose_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/decompose_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/decompose_test.cpp.o.d"
  "/root/repo/tests/flow/dinic_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/dinic_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/dinic_test.cpp.o.d"
  "/root/repo/tests/flow/graph_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/graph_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/graph_test.cpp.o.d"
  "/root/repo/tests/flow/min_mean_cycle_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/min_mean_cycle_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/min_mean_cycle_test.cpp.o.d"
  "/root/repo/tests/flow/multi_cycle_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/multi_cycle_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/multi_cycle_test.cpp.o.d"
  "/root/repo/tests/flow/netting_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/netting_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/netting_test.cpp.o.d"
  "/root/repo/tests/flow/network_simplex_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/network_simplex_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/network_simplex_test.cpp.o.d"
  "/root/repo/tests/flow/residual_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/residual_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/residual_test.cpp.o.d"
  "/root/repo/tests/flow/solver_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/solver_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/solver_test.cpp.o.d"
  "/root/repo/tests/flow/stress_test.cpp" "tests/CMakeFiles/flow_tests.dir/flow/stress_test.cpp.o" "gcc" "tests/CMakeFiles/flow_tests.dir/flow/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/musketeer_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/musketeer_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/musketeer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/musketeer_gen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
