file(REMOVE_RECURSE
  "CMakeFiles/flow_tests.dir/flow/bellman_ford_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/bellman_ford_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/circulation_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/circulation_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/decompose_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/decompose_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/dinic_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/dinic_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/graph_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/graph_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/min_mean_cycle_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/min_mean_cycle_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/multi_cycle_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/multi_cycle_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/netting_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/netting_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/network_simplex_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/network_simplex_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/residual_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/residual_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/solver_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/solver_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/stress_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/stress_test.cpp.o.d"
  "flow_tests"
  "flow_tests.pdb"
  "flow_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
