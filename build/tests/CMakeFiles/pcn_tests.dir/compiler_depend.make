# Empty compiler generated dependencies file for pcn_tests.
# This may be replaced when dependencies are built.
