file(REMOVE_RECURSE
  "CMakeFiles/pcn_tests.dir/pcn/channel_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/channel_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/churn_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/churn_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/fuzz_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/fuzz_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/htlc_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/htlc_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/mpp_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/mpp_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/network_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/network_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/onchain_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/onchain_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/payment_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/payment_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/rebalancer_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/rebalancer_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/renege_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/renege_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/routing_property_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/routing_property_test.cpp.o.d"
  "CMakeFiles/pcn_tests.dir/pcn/routing_test.cpp.o"
  "CMakeFiles/pcn_tests.dir/pcn/routing_test.cpp.o.d"
  "pcn_tests"
  "pcn_tests.pdb"
  "pcn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
