
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pcn/channel_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/channel_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/channel_test.cpp.o.d"
  "/root/repo/tests/pcn/churn_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/churn_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/churn_test.cpp.o.d"
  "/root/repo/tests/pcn/fuzz_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/fuzz_test.cpp.o.d"
  "/root/repo/tests/pcn/htlc_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/htlc_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/htlc_test.cpp.o.d"
  "/root/repo/tests/pcn/mpp_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/mpp_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/mpp_test.cpp.o.d"
  "/root/repo/tests/pcn/network_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/network_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/network_test.cpp.o.d"
  "/root/repo/tests/pcn/onchain_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/onchain_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/onchain_test.cpp.o.d"
  "/root/repo/tests/pcn/payment_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/payment_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/payment_test.cpp.o.d"
  "/root/repo/tests/pcn/rebalancer_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/rebalancer_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/rebalancer_test.cpp.o.d"
  "/root/repo/tests/pcn/renege_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/renege_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/renege_test.cpp.o.d"
  "/root/repo/tests/pcn/routing_property_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/routing_property_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/routing_property_test.cpp.o.d"
  "/root/repo/tests/pcn/routing_test.cpp" "tests/CMakeFiles/pcn_tests.dir/pcn/routing_test.cpp.o" "gcc" "tests/CMakeFiles/pcn_tests.dir/pcn/routing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/musketeer_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/musketeer_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/musketeer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/musketeer_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/pcn/CMakeFiles/musketeer_pcn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/musketeer_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
