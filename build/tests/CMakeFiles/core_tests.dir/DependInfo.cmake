
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/coalition_test.cpp" "tests/CMakeFiles/core_tests.dir/core/coalition_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/coalition_test.cpp.o.d"
  "/root/repo/tests/core/delegates_test.cpp" "tests/CMakeFiles/core_tests.dir/core/delegates_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/delegates_test.cpp.o.d"
  "/root/repo/tests/core/equilibrium_test.cpp" "tests/CMakeFiles/core_tests.dir/core/equilibrium_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/equilibrium_test.cpp.o.d"
  "/root/repo/tests/core/game_test.cpp" "tests/CMakeFiles/core_tests.dir/core/game_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/game_test.cpp.o.d"
  "/root/repo/tests/core/io_test.cpp" "tests/CMakeFiles/core_tests.dir/core/io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/io_test.cpp.o.d"
  "/root/repo/tests/core/m1_self_selection_test.cpp" "tests/CMakeFiles/core_tests.dir/core/m1_self_selection_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/m1_self_selection_test.cpp.o.d"
  "/root/repo/tests/core/m1_test.cpp" "tests/CMakeFiles/core_tests.dir/core/m1_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/m1_test.cpp.o.d"
  "/root/repo/tests/core/m2_minfee_test.cpp" "tests/CMakeFiles/core_tests.dir/core/m2_minfee_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/m2_minfee_test.cpp.o.d"
  "/root/repo/tests/core/m2_test.cpp" "tests/CMakeFiles/core_tests.dir/core/m2_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/m2_test.cpp.o.d"
  "/root/repo/tests/core/m3_test.cpp" "tests/CMakeFiles/core_tests.dir/core/m3_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/m3_test.cpp.o.d"
  "/root/repo/tests/core/m4_test.cpp" "tests/CMakeFiles/core_tests.dir/core/m4_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/m4_test.cpp.o.d"
  "/root/repo/tests/core/m5_test.cpp" "tests/CMakeFiles/core_tests.dir/core/m5_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/m5_test.cpp.o.d"
  "/root/repo/tests/core/mechanism_properties_test.cpp" "tests/CMakeFiles/core_tests.dir/core/mechanism_properties_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mechanism_properties_test.cpp.o.d"
  "/root/repo/tests/core/myerson_test.cpp" "tests/CMakeFiles/core_tests.dir/core/myerson_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/myerson_test.cpp.o.d"
  "/root/repo/tests/core/outcome_test.cpp" "tests/CMakeFiles/core_tests.dir/core/outcome_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/outcome_test.cpp.o.d"
  "/root/repo/tests/core/properties_test.cpp" "tests/CMakeFiles/core_tests.dir/core/properties_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/properties_test.cpp.o.d"
  "/root/repo/tests/core/repeated_test.cpp" "tests/CMakeFiles/core_tests.dir/core/repeated_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/repeated_test.cpp.o.d"
  "/root/repo/tests/core/strategy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/strategy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/strategy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/musketeer_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/musketeer_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/musketeer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/musketeer_gen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
