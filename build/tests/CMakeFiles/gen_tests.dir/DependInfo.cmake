
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gen/game_gen_test.cpp" "tests/CMakeFiles/gen_tests.dir/gen/game_gen_test.cpp.o" "gcc" "tests/CMakeFiles/gen_tests.dir/gen/game_gen_test.cpp.o.d"
  "/root/repo/tests/gen/powerlaw_test.cpp" "tests/CMakeFiles/gen_tests.dir/gen/powerlaw_test.cpp.o" "gcc" "tests/CMakeFiles/gen_tests.dir/gen/powerlaw_test.cpp.o.d"
  "/root/repo/tests/gen/topology_test.cpp" "tests/CMakeFiles/gen_tests.dir/gen/topology_test.cpp.o" "gcc" "tests/CMakeFiles/gen_tests.dir/gen/topology_test.cpp.o.d"
  "/root/repo/tests/gen/workload_modes_test.cpp" "tests/CMakeFiles/gen_tests.dir/gen/workload_modes_test.cpp.o" "gcc" "tests/CMakeFiles/gen_tests.dir/gen/workload_modes_test.cpp.o.d"
  "/root/repo/tests/gen/workload_test.cpp" "tests/CMakeFiles/gen_tests.dir/gen/workload_test.cpp.o" "gcc" "tests/CMakeFiles/gen_tests.dir/gen/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musketeer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/musketeer_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/musketeer_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/musketeer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/musketeer_gen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
