# Empty compiler generated dependencies file for collusion_demo.
# This may be replaced when dependencies are built.
