file(REMOVE_RECURSE
  "CMakeFiles/collusion_demo.dir/collusion_demo.cpp.o"
  "CMakeFiles/collusion_demo.dir/collusion_demo.cpp.o.d"
  "collusion_demo"
  "collusion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
