file(REMOVE_RECURSE
  "CMakeFiles/private_rebalancing.dir/private_rebalancing.cpp.o"
  "CMakeFiles/private_rebalancing.dir/private_rebalancing.cpp.o.d"
  "private_rebalancing"
  "private_rebalancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_rebalancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
