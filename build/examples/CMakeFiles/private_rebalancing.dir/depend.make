# Empty dependencies file for private_rebalancing.
# This may be replaced when dependencies are built.
