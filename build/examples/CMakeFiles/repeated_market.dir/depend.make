# Empty dependencies file for repeated_market.
# This may be replaced when dependencies are built.
