file(REMOVE_RECURSE
  "CMakeFiles/repeated_market.dir/repeated_market.cpp.o"
  "CMakeFiles/repeated_market.dir/repeated_market.cpp.o.d"
  "repeated_market"
  "repeated_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeated_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
