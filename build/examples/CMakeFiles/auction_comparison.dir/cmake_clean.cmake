file(REMOVE_RECURSE
  "CMakeFiles/auction_comparison.dir/auction_comparison.cpp.o"
  "CMakeFiles/auction_comparison.dir/auction_comparison.cpp.o.d"
  "auction_comparison"
  "auction_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
