# Empty compiler generated dependencies file for auction_comparison.
# This may be replaced when dependencies are built.
