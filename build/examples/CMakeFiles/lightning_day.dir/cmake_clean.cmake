file(REMOVE_RECURSE
  "CMakeFiles/lightning_day.dir/lightning_day.cpp.o"
  "CMakeFiles/lightning_day.dir/lightning_day.cpp.o.d"
  "lightning_day"
  "lightning_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightning_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
