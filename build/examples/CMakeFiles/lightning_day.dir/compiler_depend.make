# Empty compiler generated dependencies file for lightning_day.
# This may be replaced when dependencies are built.
