# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_gen_check "sh" "-c" "/root/repo/build/tools/musketeer gen 12 2 7 /root/repo/build/tools/smoke.game && /root/repo/build/tools/musketeer check /root/repo/build/tools/smoke.game")
set_tests_properties(cli_gen_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_m4 "sh" "-c" "/root/repo/build/tools/musketeer gen 12 2 7 /root/repo/build/tools/smoke2.game && /root/repo/build/tools/musketeer run m4 /root/repo/build/tools/smoke2.game --delay 5")
set_tests_properties(cli_run_m4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_eq_m3 "sh" "-c" "/root/repo/build/tools/musketeer gen 8 2 3 /root/repo/build/tools/smoke3.game && /root/repo/build/tools/musketeer eq m3 /root/repo/build/tools/smoke3.game")
set_tests_properties(cli_eq_m3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sim_m3 "/root/repo/build/tools/musketeer" "sim" "m3" "30" "3" "50" "9")
set_tests_properties(cli_sim_m3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/musketeer" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
