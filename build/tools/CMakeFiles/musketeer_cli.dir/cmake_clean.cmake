file(REMOVE_RECURSE
  "CMakeFiles/musketeer_cli.dir/musketeer_cli.cpp.o"
  "CMakeFiles/musketeer_cli.dir/musketeer_cli.cpp.o.d"
  "musketeer"
  "musketeer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musketeer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
