// E11 — the motivating economics (§1/§2.1): off-chain rebalancing fees
// vs on-chain top-ups. Regenerates the "routing fees are orders of
// magnitude smaller than blockchain fees" comparison as a break-even
// table, then prices an actual simulated rebalancing round both ways.
#include <cstdio>

#include "core/m3_double_auction.hpp"
#include "obs/trace.hpp"
#include "pcn/onchain.hpp"
#include "pcn/rebalancer.hpp"
#include "sim/engine.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

using namespace musketeer;

int main() {
  util::BenchReport bench("e11_onchain");
  const obs::Timer bench_timer;
  std::printf("E11: rebalancing vs on-chain top-up economics\n\n");

  // (a) Break-even deficits across fee regimes.
  util::Table breakeven({"on-chain base fee", "rebalance fee rate",
                         "break-even deficit", "cost @ deficit 100",
                         "on-chain @ 100"});
  for (flow::Amount base : {500, 2000, 10000}) {
    for (double rate : {0.0005, 0.001, 0.005}) {
      pcn::OnChainCostModel model;
      model.base_fee = base;
      model.delay_cost_rate = 0.0;
      breakeven.add_row(
          {util::fmt_int(base), util::fmt_double(rate, 4),
           util::fmt_int(pcn::breakeven_deficit(model, rate)),
           util::fmt_double(pcn::rebalancing_cost(rate, 100), 3),
           util::fmt_double(pcn::onchain_cost(model, 100), 0)});
    }
  }
  breakeven.print();

  // (b) Price one simulated rebalancing round both ways: what the
  // mechanism's buyers actually paid vs what topping the same deficits up
  // on-chain would have cost.
  sim::SimulationConfig config;
  config.num_nodes = 80;
  config.initial_skew = 0.4;
  config.skew_fraction = 0.5;
  config.seed = 17;
  util::Rng rng(config.seed);
  pcn::Network network = sim::build_network(config, rng);

  pcn::RebalancePolicy policy;
  policy.depleted_threshold = 0.25;
  policy.seller_floor_share = 0.35;
  policy.buyer_bid_base = 0.01;
  const pcn::ExtractedGame extracted = pcn::extract_game(network, policy);

  // Count deficits (one on-chain tx per depleted channel direction).
  int depleted_edges = 0;
  flow::Amount total_deficit = 0;
  for (core::EdgeId e = 0; e < extracted.game.num_edges(); ++e) {
    if (extracted.game.is_depleted(e)) {
      ++depleted_edges;
      total_deficit += extracted.game.edge(e).capacity;
    }
  }

  pcn::Network working = network;
  const pcn::ExtractedGame locked = pcn::extract_and_lock(working, policy);
  const core::Outcome outcome =
      core::M3DoubleAuction().run_truthful(locked.game);
  const pcn::RebalanceStats stats =
      pcn::apply_outcome(working, locked, outcome);

  flow::Amount repaired = 0;
  for (core::EdgeId e = 0; e < locked.game.num_edges(); ++e) {
    if (locked.game.is_depleted(e)) {
      repaired += outcome.circulation[static_cast<std::size_t>(e)];
    }
  }

  pcn::OnChainCostModel model;  // defaults: base 2000, delay 0.0005
  const double onchain_for_repaired =
      static_cast<double>(depleted_edges) *
      static_cast<double>(model.base_fee) *
      (total_deficit > 0 ? static_cast<double>(repaired) /
                               static_cast<double>(total_deficit)
                         : 0.0);

  std::printf("\none simulated round (n=%d, %d depleted directions, "
              "total deficit %lld):\n",
              config.num_nodes, depleted_edges,
              static_cast<long long>(total_deficit));
  util::Table round({"metric", "value"});
  round.add_row({"deficit repaired off-chain",
                 util::fmt_int(static_cast<long long>(repaired))});
  round.add_row({"buyer fees paid (coins)",
                 util::fmt_double(stats.fees_paid, 3)});
  round.add_row({"pro-rated on-chain cost for the same repair",
                 util::fmt_double(onchain_for_repaired, 0)});
  round.add_row(
      {"cost ratio (on-chain / rebalancing)",
       stats.fees_paid > 0
           ? util::format("%.0fx", onchain_for_repaired / stats.fees_paid)
           : "inf"});
  round.print();
  std::printf("\nexpected shape: rebalancing repairs liquidity for fees\n"
              "orders of magnitude below the fixed on-chain cost — the\n"
              "paper's motivation for keeping rebalancing off-chain, with\n"
              "on-chain only worthwhile past the break-even deficits in\n"
              "the first table.\n");
  bench.add_seconds("total", bench_timer.seconds(), 1);
  return 0;
}
