// deadline_overhead — the cancel-point tax on the solve path, measured.
//
// Every solver iteration now passes MUSK_CANCEL_POINT: one branch when
// no token is installed, one relaxed atomic load (plus a steady-clock
// read while a deadline is armed) when one is. DESIGN.md §14 promises
// the disabled path is noise next to the O(m) residual rebuild each
// iteration already performs; this bench is the gate on that promise.
//
// Three variants run the identical solve workload per solver kind:
//
//   null    solve_max_welfare(..., cancel=nullptr)  — deadlines off
//   armed   an armed token with Deadline::never()   — flag checked
//   timed   an armed token with a far-future expiry — flag + clock
//
// Measurement is sliced: each slice times one short pass per variant
// back to back, and the reported time is the fastest slice. Contention
// noise is strictly additive and bursty, so a 3%-wide gate needs minima
// taken over many small windows — a burst then has to cover every
// window of one variant while sparing the other to skew the ratio. The
// gate compares the aggregate armed/null ratio across all kinds against
// 1.03x. Results are cross-checked bit-identical between variants, and
// the per-kind table plus BENCH_deadline_overhead.json record details.
//
// Set MUSK_BENCH_SHORT=1 for the CI smoke variant (fewer reps/trials).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "flow/solver.hpp"
#include "flow/workspace.hpp"
#include "util/assert.hpp"
#include "util/bench_json.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

flow::Graph random_graph(flow::NodeId n, int edges, util::Rng& rng) {
  flow::Graph g(n);
  for (int e = 0; e < edges; ++e) {
    const auto u =
        static_cast<flow::NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto v =
        static_cast<flow::NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<flow::NodeId>((v + 1) % n);
    g.add_edge(u, v, rng.uniform_int(1, 50), rng.uniform_real(-0.05, 0.05));
  }
  return g;
}

struct Variant {
  const char* label;
  util::CancelToken* token;  // null = deadlines disabled
};

/// One timed pass of the whole graph set through one variant. Returns
/// wall seconds; accumulates a checksum so the work cannot be elided.
double run_variant(const std::vector<flow::Graph>& graphs,
                   flow::SolverKind kind, const Variant& variant, int reps,
                   flow::Amount& checksum) {
  flow::Workspace ws;
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const flow::Graph& g : graphs) {
      const flow::Circulation f =
          flow::solve_max_welfare(g, ws, kind, nullptr, variant.token);
      for (const flow::Amount a : f) checksum += a;
    }
  }
  return seconds_since(t0);
}

const char* kind_name(flow::SolverKind kind) {
  switch (kind) {
    case flow::SolverKind::kBellmanFord: return "bellman-ford";
    case flow::SolverKind::kMinMean: return "min-mean";
    case flow::SolverKind::kCapacityScaling: return "capacity-scaling";
    case flow::SolverKind::kNetworkSimplex: return "network-simplex";
  }
  return "?";
}

}  // namespace

int main() {
  const bool short_mode = [] {
    const char* v = std::getenv("MUSK_BENCH_SHORT");
    return v != nullptr && *v != '\0' && *v != '0';
  }();

  std::printf("deadline_overhead: cancel-point cost on the solve path%s\n\n",
              short_mode ? " (short mode)" : "");
  util::BenchReport bench("deadline_overhead");
  bench.config("short_mode", short_mode);
  bench.config("gate_ratio", 1.03);

  // A spread of seeded games so no single topology dominates; solved
  // repeatedly, the workload is iteration-heavy (each iteration = one
  // cancel point) without being cache-cold.
  std::vector<flow::Graph> graphs;
  const int num_graphs = short_mode ? 8 : 16;
  for (int i = 0; i < num_graphs; ++i) {
    util::Rng rng(static_cast<std::uint64_t>(100 + i));
    graphs.push_back(random_graph(60, 220, rng));
  }
  const int reps_per_slice = short_mode ? 1 : 2;
  const int slices = short_mode ? 32 : 80;

  const flow::SolverKind kinds[] = {
      flow::SolverKind::kBellmanFord,
      flow::SolverKind::kMinMean,
      flow::SolverKind::kCapacityScaling,
      flow::SolverKind::kNetworkSimplex,
  };

  util::CancelToken armed;
  armed.arm(util::Deadline::never());
  util::CancelToken timed;
  timed.arm(util::Deadline::after(std::chrono::milliseconds(3600 * 1000)));
  const Variant variants[] = {
      {"null", nullptr},
      {"armed", &armed},
      {"timed", &timed},
  };

  util::Table table({"solver", "null s", "armed s", "timed s", "armed/null",
                     "timed/null"});
  double total_null = 0.0;
  double total_armed = 0.0;
  for (const flow::SolverKind kind : kinds) {
    // Warmup sizes the workspace and faults the graphs in.
    flow::Amount checksum = 0;
    run_variant(graphs, kind, variants[0], 1, checksum);

    double best[3] = {0.0, 0.0, 0.0};
    flow::Amount sums[3] = {0, 0, 0};
    for (int slice = 0; slice < slices; ++slice) {
      for (int v = 0; v < 3; ++v) {
        flow::Amount sum = 0;
        const double s =
            run_variant(graphs, kind, variants[v], reps_per_slice, sum);
        if (slice == 0 || s < best[v]) best[v] = s;
        sums[v] = sum;
      }
    }
    MUSK_ASSERT_MSG(sums[0] == sums[1] && sums[0] == sums[2],
                    "cancel-token variants diverged");
    total_null += best[0];
    total_armed += best[1];

    const std::uint64_t solves = static_cast<std::uint64_t>(reps_per_slice) *
                                 static_cast<std::uint64_t>(graphs.size());
    bench.add_seconds(util::format("%s/null", kind_name(kind)), best[0],
                      solves);
    bench.add_seconds(util::format("%s/armed", kind_name(kind)), best[1],
                      solves);
    bench.add_seconds(util::format("%s/timed", kind_name(kind)), best[2],
                      solves);
    table.add_row({kind_name(kind), util::fmt_double(best[0], 4),
                   util::fmt_double(best[1], 4), util::fmt_double(best[2], 4),
                   util::format("%.3fx", best[1] / best[0]),
                   util::format("%.3fx", best[2] / best[0])});
  }
  table.print();

  const double ratio = total_armed / total_null;
  std::printf("\naggregate armed/null ratio: %.4fx (gate < 1.03x)\n", ratio);
  bench.config("armed_over_null", ratio);
  // The §14 gate: an armed-but-idle token must be within measurement
  // noise of running with deadlines disabled.
  MUSK_ASSERT_MSG(ratio < 1.03,
                  "cancel-point overhead exceeds the 1.03x budget");
  bench.write();
  return 0;
}
