// E8 — the §4 extension: group strategyproofness. Measures joint
// deviation gains for channel-partner pairs under M2 and M4 (both
// strategyproof against unilateral deviations) and reproduces the
// depleted-to-indifferent misreporting pattern the paper describes.
#include <cstdio>

#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/strategy.hpp"
#include "gen/game_gen.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

const std::vector<double> kScales{0.0, 0.5, 1.0, 1.5};

// The paper's hand-constructed pattern (see examples/collusion_demo for a
// narrated version): a depleted channel whose honest declaration blocks a
// lucrative through-route.
core::Game paper_pattern() {
  core::Game game(4);
  game.add_edge(1, 0, 20, 0.0, 0.015);   // depleted channel u-v
  game.add_edge(3, 2, 20, 0.0, 0.04);    // big demand elsewhere
  game.add_edge(2, 1, 20, -0.001, 0.0);
  game.add_edge(0, 3, 20, -0.001, 0.0);
  return game;
}

}  // namespace

int main() {
  util::BenchReport bench("e8_collusion");
  const obs::Timer bench_timer;
  std::printf("E8: collusion (group strategyproofness) probes\n\n");

  const core::M2Vcg m2;
  const core::M4DelayedAuction m4(100.0);
  const core::M3DoubleAuction m3;

  // (a) the paper's pattern: adjacent channel partners.
  {
    const core::Game game = paper_pattern();
    util::Table table({"mechanism", "honest joint u", "best joint u",
                       "collusion gain"});
    for (const core::Mechanism* mech :
         {static_cast<const core::Mechanism*>(&m2),
          static_cast<const core::Mechanism*>(&m3),
          static_cast<const core::Mechanism*>(&m4)}) {
      const core::CollusionReport report =
          core::probe_collusion(*mech, game, /*first=*/0, /*second=*/1,
                                kScales);
      table.add_row({std::string(mech->name()),
                     util::fmt_double(report.honest_joint_utility, 4),
                     util::fmt_double(report.best_joint_utility, 4),
                     util::fmt_double(report.gain(), 4)});
    }
    std::printf("(a) the Section-4 pattern (players 0 and 1 share the "
                "depleted channel):\n");
    table.print();
  }

  // (b) random games: how often can a random adjacent pair gain jointly?
  {
    util::Rng rng(97531);
    util::Table table(
        {"mechanism", "pairs probed", "pairs with gain", "mean gain",
         "max gain"});
    for (const core::Mechanism* mech :
         {static_cast<const core::Mechanism*>(&m2),
          static_cast<const core::Mechanism*>(&m4)}) {
      util::Accumulator gains;
      int with_gain = 0, probed = 0;
      util::Rng local_rng(97531);
      for (int trial = 0; trial < 6; ++trial) {
        gen::GameConfig config;
        config.depleted_share = 0.35;
        const core::Game game = gen::random_ba_game(10, 2, config, local_rng);
        // Probe the endpoints of the first three depleted edges.
        int done = 0;
        for (core::EdgeId e = 0; e < game.num_edges() && done < 3; ++e) {
          if (!game.is_depleted(e)) continue;
          ++done;
          ++probed;
          const core::CollusionReport report = core::probe_collusion(
              *mech, game, game.edge(e).from, game.edge(e).to, kScales);
          gains.add(report.gain());
          with_gain += (report.gain() > 1e-9);
        }
      }
      table.add_row({std::string(mech->name()), util::fmt_int(probed),
                     util::fmt_int(with_gain),
                     util::format("%.5f", gains.mean()),
                     util::format("%.5f", gains.max())});
    }
    std::printf("\n(b) random channel-partner pairs:\n");
    table.print();
    (void)rng;
  }

  std::printf("\nexpected shape: single-player strategyproofness does not\n"
              "survive pairs — a positive fraction of channel partners can\n"
              "jointly gain, and the paper-pattern gain is strictly\n"
              "positive for every mechanism. Designing group-strategyproof\n"
              "rebalancing is the paper's open problem.\n");
  bench.add_seconds("total", bench_timer.seconds(), 1);
  return 0;
}
