// E4 — end-to-end throughput, two regimes:
//
// (a) RECOVERY (the Revive/Hide&Seek-style evaluation): every channel
//     starts heavily skewed (10/90); each strategy rebalances ONCE, then
//     an identical payment batch is replayed on each copy. Isolates how
//     much depletion each mechanism actually undoes.
// (b) STEADY STATE: epoch loop with payments depleting channels and
//     per-epoch rebalancing. An honest negative-ish result: source
//     routing already routes around most transient imbalance, so
//     steady-state gains are small (documented in EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

sim::SimulationConfig base_config() {
  sim::SimulationConfig config;
  config.num_nodes = 80;
  config.balance_min = 30;
  config.balance_max = 90;
  config.workload.zipf_exponent = 0.9;
  config.workload.balanced_popularity = true;
  config.workload.amount_max = 20;
  // Coherent policy: sellers never drop below 0.35, strictly above the
  // 0.25 depletion threshold, so selling liquidity can never *create*
  // depleted directions.
  config.policy.depleted_threshold = 0.25;
  config.policy.seller_floor_share = 0.35;
  config.policy.seller_liquidity_fraction = 0.9;
  config.policy.buyer_bid_base = 0.01;
  return config;
}

/// MUSK_BENCH_SHORT=1 shrinks both regimes (fewer seeds, payments, and
/// epochs) so CI can smoke-run the full pipeline in seconds.
bool short_mode() {
  const char* v = std::getenv("MUSK_BENCH_SHORT");
  return v != nullptr && *v != '\0' && *v != '0';
}

}  // namespace

int main() {
  const int num_seeds = short_mode() ? 2 : 5;
  const int recovery_payments = short_mode() ? 200 : 1000;
  util::BenchReport bench("e4_throughput");
  bench.config("short_mode", short_mode());
  bench.config("seeds", static_cast<std::int64_t>(num_seeds));
  bench.config("recovery_payments",
               static_cast<std::int64_t>(recovery_payments));
  obs::Timer section_timer;
  // ------------------------------------------------------- (a) recovery
  std::printf("E4a: recovery from depletion (half the channels start "
              "10/90; one rebalancing pass;\nidentical %d-payment batch "
              "per strategy; means over %d seeds)\n\n",
              recovery_payments, num_seeds);
  util::Table rec({"strategy", "success%", "depleted% before -> after",
                   "mean imbalance", "rebalanced volume", "fees"});
  const std::vector<sim::Strategy> strategies = sim::all_strategies();
  for (sim::Strategy s : strategies) {
    util::Accumulator succ, before, after, imb, vol, fees;
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(num_seeds);
         ++seed) {
      sim::SimulationConfig config = base_config();
      config.initial_skew = 0.4;   // 10/90 splits...
      config.skew_fraction = 0.5;  // ...on half the channels
      config.workload.amount_max = 40;
      config.max_hops = 4;  // realistic short routes: depletion bites
      config.payments_per_epoch = recovery_payments;
      config.seed = seed;
      const auto mechanism = sim::make_strategy(s);
      const sim::RecoveryResult r =
          sim::run_recovery(config, mechanism.get());
      succ.add(100.0 * r.success_rate);
      before.add(100.0 * r.depleted_before);
      after.add(100.0 * r.depleted_after);
      imb.add(r.mean_imbalance_after);
      vol.add(static_cast<double>(r.rebalanced_volume));
      fees.add(r.rebalance_fees);
    }
    rec.add_row({strategy_name(s), util::fmt_double(succ.mean(), 1),
                 util::format("%.0f%% -> %.0f%%", before.mean(), after.mean()),
                 util::fmt_double(imb.mean(), 3),
                 util::fmt_double(vol.mean(), 0),
                 util::fmt_double(fees.mean(), 2)});
  }
  rec.print();
  util::maybe_export_csv(rec, "e4_recovery");
  bench.add_seconds("recovery", section_timer.seconds(),
                    static_cast<std::uint64_t>(num_seeds) *
                        sim::all_strategies().size());
  section_timer.reset();

  // --------------------------------------------------- (b) steady state
  sim::SimulationConfig config = base_config();
  config.epochs = short_mode() ? 4 : 16;
  config.payments_per_epoch = short_mode() ? 100 : 500;
  config.seed = 424242;

  std::printf("\nE4b: steady state — success rate by epoch "
              "(n=%d scale-free, %d payments/epoch, shared stream)\n\n",
              config.num_nodes, config.payments_per_epoch);

  std::vector<sim::SimulationResult> results;
  for (sim::Strategy s : strategies) {
    const auto mechanism = sim::make_strategy(s);
    results.push_back(sim::run_simulation(config, mechanism.get()));
  }
  bench.add_seconds("steady_state", section_timer.seconds(),
                    strategies.size() *
                        static_cast<std::uint64_t>(config.epochs));
  section_timer.reset();

  std::vector<std::string> headers{"epoch"};
  for (sim::Strategy s : strategies) headers.push_back(strategy_name(s));
  util::Table table(headers);
  for (int epoch = 0; epoch < config.epochs; epoch += 3) {
    std::vector<std::string> row{util::fmt_int(epoch)};
    for (const auto& result : results) {
      row.push_back(util::fmt_double(
          100.0 * result.epochs[static_cast<std::size_t>(epoch)].success_rate(),
          1));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\naggregates:\n");
  util::Table agg({"strategy", "overall success%", "failure vs none",
                   "volume delivered", "rebalanced volume",
                   "rebalance fees"});
  const double none_failure = 1.0 - results[0].overall_success_rate();
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    double fees = 0.0;
    for (const auto& m : results[i].epochs) fees += m.rebalance_fees;
    const double failure = 1.0 - results[i].overall_success_rate();
    agg.add_row({strategy_name(strategies[i]),
                 util::fmt_double(100.0 * results[i].overall_success_rate(), 1),
                 none_failure > 0
                     ? util::format("%+.1f%%",
                                    100.0 * (failure - none_failure) /
                                        none_failure)
                     : "-",
                 util::fmt_int(results[i].total_volume_succeeded()),
                 util::fmt_int(results[i].total_rebalanced_volume()),
                 util::fmt_double(fees, 2)});
  }
  agg.print();
  util::maybe_export_csv(agg, "e4_steady_state");

  // ------------------------------------------- (c) churn sensitivity
  std::printf("\nE4c: rebalancing value under channel churn "
              "(downtime fraction swept, none vs M3):\n\n");
  util::Table churn({"downtime", "success% none", "success% M3",
                     "rebalanced volume M3"});
  for (double downtime : {0.0, 0.1, 0.3}) {
    sim::SimulationConfig cc = base_config();
    cc.epochs = 8;
    cc.payments_per_epoch = 300;
    cc.channel_downtime = downtime;
    cc.seed = 777;
    const auto m3 = sim::make_strategy(sim::Strategy::kM3DoubleAuction);
    const sim::SimulationResult none_r = sim::run_simulation(cc, nullptr);
    const sim::SimulationResult m3_r = sim::run_simulation(cc, m3.get());
    churn.add_row({util::fmt_double(downtime, 1),
                   util::fmt_double(100.0 * none_r.overall_success_rate(), 1),
                   util::fmt_double(100.0 * m3_r.overall_success_rate(), 1),
                   util::fmt_int(m3_r.total_rebalanced_volume())});
  }
  churn.print();
  util::maybe_export_csv(churn, "e4_churn");
  bench.add_seconds("churn", section_timer.seconds(), 6);

  std::printf(
      "\nexpected shape: in (a) the all-user auctions repair depletion the\n"
      "deepest (25%% -> ~14%% of directions, vs ~23%% for buyers-only\n"
      "hide&seek, whose all-depleted cycles barely exist) and lower mean\n"
      "imbalance the most — they are the only strategies that can recruit\n"
      "the balanced channels as sellers. Success-rate deltas stay within a\n"
      "point: fee-aware source routing already masks most imbalance, in\n"
      "(a) and (b) alike. The honest conclusion for the paper (which has\n"
      "no evaluation of its own): Musketeer\'s measurable edge is in\n"
      "welfare and restored liquidity (E1/E2 and the depletion columns\n"
      "here); throughput follows only where routing cannot already detour\n"
      "around the damage.\n");
  return 0;
}
