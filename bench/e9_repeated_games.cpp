// E9 — the §4 "Repeated Games" hypothesis, tested: does underbidding pay
// when the rebalancing auction runs frequently (demand persists across
// rounds), and is it punished when rounds are rare?
//
// Adaptive buyers learn a shading factor by epsilon-greedy bandit over
// their realized utilities; the mechanism and the persistence of unmet
// demand are swept.
#include <cstdio>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/repeated.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

// A competitive market: two buyers share one seller bottleneck, so
// shading risks losing the allocation to the rival — the interesting
// regime for the frequency question.
core::GameSampler competitive_market() {
  return [](util::Rng& rng) {
    core::Game game(4);
    game.add_edge(2, 3, 8, -rng.uniform_real(0.0005, 0.002), 0.0);
    game.add_edge(3, 0, 10, 0.0, rng.uniform_real(0.015, 0.035));
    game.add_edge(0, 2, 10, 0.0, 0.0);
    game.add_edge(3, 1, 10, 0.0, rng.uniform_real(0.015, 0.035));
    game.add_edge(1, 2, 10, 0.0, 0.0);
    return game;
  };
}

}  // namespace

int main() {
  util::BenchReport bench("e9_repeated_games");
  bench.config("rounds", std::int64_t{600});
  const obs::Timer bench_timer;
  std::printf("E9: repeated rebalancing with adaptive buyers "
              "(600 rounds, 5 seeds per cell)\n\n");

  util::Table table({"mechanism", "persistence", "learned shading (mean)",
                     "late-round shading", "welfare ratio",
                     "adaptive utility share"});
  const core::M3DoubleAuction m3;
  const core::M4DelayedAuction m4(10.0);
  for (const core::Mechanism* mech :
       {static_cast<const core::Mechanism*>(&m3),
        static_cast<const core::Mechanism*>(&m4)}) {
    for (double persistence : {0.0, 0.5, 0.95}) {
      util::Accumulator learned, late, ratio, share;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        util::Rng rng(seed * 31 + 7);
        core::RepeatedConfig config;
        config.rounds = 600;
        config.persistence = persistence;
        const core::RepeatedResult result = core::run_repeated_game(
            *mech, competitive_market(), {0, 1}, config, rng);
        for (double s : result.learned_shading) learned.add(s);
        // Mean shading over the last quarter of rounds.
        double tail = 0.0;
        const std::size_t q = result.mean_shading_per_round.size() / 4;
        for (std::size_t r = result.mean_shading_per_round.size() - q;
             r < result.mean_shading_per_round.size(); ++r) {
          tail += result.mean_shading_per_round[r];
        }
        late.add(tail / static_cast<double>(q));
        ratio.add(result.welfare_ratio);
        double total = 0.0, adaptive = 0.0;
        for (std::size_t v = 0; v < result.total_utility.size(); ++v) {
          total += result.total_utility[v];
          if (v <= 1) adaptive += result.total_utility[v];
        }
        share.add(total > 0 ? adaptive / total : 0.0);
      }
      table.add_row({std::string(mech->name()),
                     util::fmt_double(persistence, 2),
                     util::fmt_double(learned.mean(), 2),
                     util::fmt_double(late.mean(), 2),
                     util::fmt_double(ratio.mean(), 3),
                     util::fmt_double(share.mean(), 3)});
    }
  }
  table.print();
  util::maybe_export_csv(table, "e9_repeated_games");
  std::printf(
      "\nexpected shape: under M3 (first-price) buyers learn to shade and\n"
      "shade *more* as persistence rises — losing a round is cheap when\n"
      "demand survives to retry, confirming the paper's conjecture. Under\n"
      "M4 the per-trade utility is bid-independent, so learned shading\n"
      "stays near the highest factor that never loses trades; persistence\n"
      "has little to exploit. The welfare ratio records what shading-\n"
      "killed trades cost the market.\n");
  bench.add_seconds("total", bench_timer.seconds(), 30);
  return 0;
}
