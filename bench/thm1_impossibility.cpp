// THM1 — the Myerson–Satterthwaite impossibility, demonstrated.
//
// Sweeps bilateral-trade valuations (V_a seller, V_b buyer) over a grid
// of triangle instances and reports, for each mechanism, which of the
// four desiderata fails where. The table regenerates the paper's
// Theorem 1 message empirically: every mechanism gives something up.
//   * M3: efficient, IR, CBB — but buyer/seller deviation gains > 0.
//   * M2: truthful for buyers, efficient under reported bids, CBB — but
//     trades against the seller's will when V_a > V_b (seller IR < 0).
//   * M4: truthful, IR, CBB — but pays with delay (inefficiency in time).
#include <cstdio>

#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/myerson.hpp"
#include "core/properties.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

const std::vector<double> kScales{0.3, 0.5, 0.7, 0.8, 0.9, 1.1, 1.3};

}  // namespace

int main() {
  util::BenchReport bench("thm1_impossibility");
  bench.config("grid", std::int64_t{5});
  const obs::Timer bench_timer;
  std::printf("THM1: Myerson-Satterthwaite triangle sweep "
              "(V_a seller cost, V_b buyer value)\n\n");

  const std::vector<double> grid{0.01, 0.03, 0.05, 0.07, 0.09};
  util::Accumulator m3_gain, m4_gain;
  int m2_seller_ir_violations = 0, trades_expected = 0, m3_efficient = 0,
      cases = 0, m4_delayed_cases = 0;

  util::Table table({"V_a", "V_b", "efficient trade?", "M3 dev gain",
                     "M4 dev gain", "M4 delay", "M2 seller utility"});
  for (double va : grid) {
    for (double vb : grid) {
      ++cases;
      const core::MyersonInstance inst =
          core::make_myerson_instance(va, vb, /*capacity=*/10);
      const bool should_trade = core::efficient_trade(va, vb);
      trades_expected += should_trade;

      const core::M3DoubleAuction m3;
      const core::M4DelayedAuction m4(/*delay_factor=*/5.0);
      const core::M2Vcg m2;

      const core::Outcome m3_out = m3.run_truthful(inst.game);
      m3_efficient += ((m3_out.cycles.size() == 1) == should_trade);

      double best_m3 = 0.0, best_m4 = 0.0;
      for (core::PlayerId v : {inst.seller, inst.buyer}) {
        best_m3 = std::max(
            best_m3, core::probe_truthfulness(m3, inst.game, v, kScales).gain());
        best_m4 = std::max(
            best_m4, core::probe_truthfulness(m4, inst.game, v, kScales).gain());
      }
      m3_gain.add(best_m3);
      m4_gain.add(best_m4);

      const core::Outcome m4_out = m4.run_truthful(inst.game);
      double delay = 0.0;
      for (const core::PricedCycle& pc : m4_out.cycles) {
        delay = std::max(delay, pc.release_time);
        if (pc.release_time > 0) ++m4_delayed_cases;
      }

      const core::Outcome m2_out = m2.run_truthful(inst.game);
      const double seller_u = m2_out.player_utility(inst.game, inst.seller);
      if (seller_u < -1e-12) ++m2_seller_ir_violations;

      table.add_row({util::fmt_double(va, 2), util::fmt_double(vb, 2),
                     should_trade ? "yes" : "no",
                     util::fmt_double(best_m3, 4),
                     util::fmt_double(best_m4, 4),
                     util::fmt_double(delay, 3),
                     util::fmt_double(seller_u, 3)});
    }
  }
  table.print();

  std::printf("\nsummary over %d instances:\n", cases);
  std::printf("  M3 trades exactly when efficient: %d/%d; mean deviation "
              "gain %.4f (> 0: not truthful)\n",
              m3_efficient, cases, m3_gain.mean());
  std::printf("  M4 deviation gain: max %.2e (truthful), but %d runs were "
              "delayed (the cost)\n",
              m4_gain.max(), m4_delayed_cases);
  std::printf("  M2 seller-IR violations: %d — with a single feasible cycle "
              "the VCG surplus is zero,\n     so sellers route at cost V_a "
              "for no fee (the Section-4 limitation), and when\n     "
              "V_a > V_b the trade itself destroys welfare\n",
              m2_seller_ir_violations);
  std::printf("=> no mechanism satisfied all four desiderata on the family, "
              "as Theorem 1 requires.\n");
  bench.add_seconds("total", bench_timer.seconds(), 25);
  return 0;
}
