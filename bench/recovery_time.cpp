// recovery_time — the checkpointing promise, measured and gated:
// restart time is bounded by the journal *tail* (the records written
// since the last snapshot), not by the daemon's total history.
//
// Two services clear the same epoch workload against the same genesis
// network:
//
//   plain   journal only (every epoch since genesis kept forever)
//   ckpt    journal + checkpoints every 100 epochs (segments roll at
//           each snapshot; covered history is compacted away)
//
// then recovery is timed from the artifacts each run left behind:
//
//   genesis replay   open the plain journal + replay_journal() — what
//                    every restart cost before checkpointing
//   tail recovery    open the ckpt journal + snapshot store + recover()
//                    — decode the newest snapshot, replay only the tail
//
// Both recoveries are asserted bit-identical (state digest) to the
// live run they recover, and two gates enforce DESIGN.md §15:
//
//   * tail recovery after 10k epochs (snapshot cadence 100) is >= 5x
//     faster than genesis replay of the same history;
//   * steady-state epoch throughput with checkpointing on is within
//     1.05x of journal-only (the checkpoint cost amortizes away).
//
// Timings are the min of 3 passes (recovery is deterministic; the min
// strips scheduler noise). Set MUSK_BENCH_SHORT=1 for the CI smoke
// variant (2k epochs instead of 10k).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/mechanism_factory.hpp"
#include "sim/engine.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc/snapshot.hpp"
#include "util/assert.hpp"
#include "util/bench_json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

pcn::Network genesis_network() {
  sim::SimulationConfig config;
  config.num_nodes = 30;
  config.seed = 11;
  config.initial_skew = 0.4;
  util::Rng rng(config.seed);
  return sim::build_network(config, rng);
}

/// Removes every on-disk artifact of a journal base (segments, manifest,
/// snapshots, stray tmp) so each bench run starts from nothing.
void remove_journal_files(const std::string& base) {
  for (const std::uint64_t seq : svc::list_segments(base)) {
    std::remove(svc::segment_path(base, seq).c_str());
  }
  for (const std::uint64_t seq : svc::list_snapshots(base)) {
    std::remove(svc::snapshot_path(base, seq).c_str());
  }
  std::remove(svc::manifest_path(base).c_str());
  std::remove((base + ".snap.tmp").c_str());
  std::remove((base + ".manifest.tmp").c_str());
}

/// One live service + its journal artifacts, driven in chunks so the
/// plain and checkpointed workloads can be timed interleaved (fsync
/// jitter on a shared filesystem is bursty; back-to-back whole runs
/// yield ratios that swing 0.8x-1.3x run to run).
struct LiveRun {
  explicit LiveRun(const std::string& base_path, int snapshot_every,
                   const pcn::RebalancePolicy& policy)
      : base(base_path), network(genesis_network()) {
    remove_journal_files(base);
    mechanism = core::make_mechanism("m3", {});
    journal = std::make_unique<svc::Journal>(base);
    snapshots = std::make_unique<svc::SnapshotStore>(base);
    svc::ServiceConfig config;
    config.policy = policy;
    config.journal = journal.get();
    if (snapshot_every > 0) {
      config.snapshots = snapshots.get();
      config.snapshot_every = snapshot_every;
    }
    service =
        std::make_unique<svc::RebalanceService>(network, *mechanism, config);
  }

  /// Clears `n` epochs; returns wall seconds.
  double chunk(int n) {
    const auto t0 = Clock::now();
    for (int e = 0; e < n; ++e) service->run_epoch();
    return seconds_since(t0);
  }

  std::uint64_t digest() const {
    return service->network_snapshot().state_digest();
  }

  std::string base;
  pcn::Network network;
  std::unique_ptr<core::Mechanism> mechanism;
  std::unique_ptr<svc::Journal> journal;
  std::unique_ptr<svc::SnapshotStore> snapshots;
  std::unique_ptr<svc::RebalanceService> service;
};

}  // namespace

int main() {
  const bool short_mode = [] {
    const char* v = std::getenv("MUSK_BENCH_SHORT");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  const int epochs = short_mode ? 2000 : 10000;
  constexpr int kSnapshotEvery = 100;
  constexpr int kPasses = 3;

  std::printf("recovery_time: restart cost, genesis replay vs checkpointed "
              "tail (%d epochs%s)\n\n",
              epochs, short_mode ? ", short mode" : "");
  util::BenchReport bench("recovery_time");
  bench.config("epochs", static_cast<double>(epochs));
  bench.config("snapshot_every", static_cast<double>(kSnapshotEvery));
  bench.config("short_mode", short_mode);

  sim::SimulationConfig sim_config;
  const pcn::RebalancePolicy policy = sim_config.policy;
  const std::string plain_base = "recovery_time_plain.jnl";
  const std::string ckpt_base = "recovery_time_ckpt.jnl";

  // ---- live runs: identical workload, with and without checkpointing,
  // timed epoch-by-epoch interleaved. fsync latency on a shared disk
  // comes in bursts lasting seconds — far longer than an epoch — so
  // coarse interleaving (whole runs, or even 100-epoch chunks) yields
  // throughput ratios that swing 0.8x-1.4x run to run. Alternating
  // single epochs (and which service goes first) lands every burst on
  // both sides of the ratio almost equally.
  // The gated ratio is the median over windows of one snapshot period
  // each — every window carries exactly one amortized checkpoint, and
  // the median strips windows a burst still managed to skew.
  LiveRun plain(plain_base, 0, policy);
  LiveRun ckpt(ckpt_base, kSnapshotEvery, policy);
  double plain_wall = 0.0;
  double ckpt_wall = 0.0;
  std::vector<double> window_ratios;
  window_ratios.reserve(static_cast<std::size_t>(epochs / kSnapshotEvery));
  double window_plain = 0.0;
  double window_ckpt = 0.0;
  for (int e = 0; e < epochs; ++e) {
    if (e % 2 == 0) {
      window_plain += plain.chunk(1);
      window_ckpt += ckpt.chunk(1);
    } else {
      window_ckpt += ckpt.chunk(1);
      window_plain += plain.chunk(1);
    }
    if ((e + 1) % kSnapshotEvery == 0) {
      window_ratios.push_back(window_ckpt / window_plain);
      plain_wall += window_plain;
      ckpt_wall += window_ckpt;
      window_plain = 0.0;
      window_ckpt = 0.0;
    }
  }
  MUSK_ASSERT_MSG(plain.digest() == ckpt.digest(),
                  "checkpointing changed the epoch outcomes");
  const std::uint64_t final_digest = plain.digest();

  // ---- recovery timings (min of kPasses; recovery is deterministic).
  double genesis_s = 0.0;
  double tail_s = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    {
      pcn::Network network = genesis_network();
      const auto t0 = Clock::now();
      svc::Journal journal(plain_base);
      const svc::RecoveryReport rec =
          replay_journal(journal, network, policy);
      const double s = seconds_since(t0);
      if (pass == 0 || s < genesis_s) genesis_s = s;
      MUSK_ASSERT_MSG(rec.next_epoch == epochs &&
                          network.state_digest() == final_digest,
                      "genesis replay diverged from the live run");
    }
    {
      pcn::Network network = genesis_network();
      const auto t0 = Clock::now();
      svc::Journal journal(ckpt_base);
      const svc::SnapshotStore snapshots(ckpt_base);
      const svc::RecoveryReport rec =
          svc::recover(journal, snapshots, network, policy);
      const double s = seconds_since(t0);
      if (pass == 0 || s < tail_s) tail_s = s;
      MUSK_ASSERT_MSG(rec.from_snapshot && rec.next_epoch == epochs &&
                          network.state_digest() == final_digest,
                      "tail recovery diverged from the live run");
    }
  }

  const double speedup = genesis_s / tail_s;
  const double throughput_ratio = util::quantile(window_ratios, 0.5);
  util::Table table({"metric", "plain (journal only)", "ckpt (every 100)"});
  table.add_row({"live run wall s", util::fmt_double(plain_wall, 3),
                 util::fmt_double(ckpt_wall, 3)});
  table.add_row({"epochs/s", util::fmt_double(epochs / plain_wall, 1),
                 util::fmt_double(epochs / ckpt_wall, 1)});
  table.add_row({"recovery s (min of 3)", util::fmt_double(genesis_s, 4),
                 util::fmt_double(tail_s, 4)});
  table.print();
  std::printf("\nrecovery speedup: %.1fx (gate >= 5x); checkpointed "
              "throughput ratio: median %.3fx over %zu epoch-interleaved "
              "windows (gate <= 1.05x)\n",
              speedup, throughput_ratio, window_ratios.size());

  bench.add_seconds("genesis_replay", genesis_s,
                    static_cast<std::uint64_t>(epochs));
  bench.add_seconds("tail_recovery", tail_s,
                    static_cast<std::uint64_t>(kSnapshotEvery));
  bench.add_seconds("live_plain", plain_wall,
                    static_cast<std::uint64_t>(epochs));
  bench.add_seconds("live_ckpt", ckpt_wall,
                    static_cast<std::uint64_t>(epochs));
  bench.config("recovery_speedup", speedup);
  bench.config("throughput_ratio", throughput_ratio);

  // The §15 gates: restart is bounded by the tail, and the bound is not
  // bought with steady-state throughput.
  MUSK_ASSERT_MSG(speedup >= 5.0,
                  "tail recovery is not >= 5x faster than genesis replay");
  MUSK_ASSERT_MSG(throughput_ratio <= 1.05,
                  "checkpointing cost exceeds the 1.05x throughput budget");
  bench.write();

  remove_journal_files(plain_base);
  remove_journal_files(ckpt_base);
  return 0;
}
