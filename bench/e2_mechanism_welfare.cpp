// E2 — mechanism comparison: welfare, fee flows and surplus split of
// M1..M4 against the bid-welfare optimum, across game sizes.
//
// Expected shape: M3/M4 hit the optimum exactly (they *are* the welfare
// maximizer under truthful bids); M2 matches the optimum of its
// buyers-only relaxation but loses welfare to ignored seller costs; M1
// trades optimality for simplicity (fixed fee schedule, restricted cycle
// set).
#include <cstdio>
#include <memory>

#include "core/m1_fixed_fee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/properties.hpp"
#include "gen/game_gen.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

int main() {
  util::BenchReport bench("e2_mechanism_welfare");
  bench.config("trials_per_size", std::int64_t{5});
  const obs::Timer bench_timer;
  std::printf("E2: mechanism welfare and fee comparison "
              "(means over 5 random games per size)\n\n");

  util::Rng rng(7777);
  std::vector<std::pair<std::string, std::unique_ptr<core::Mechanism>>>
      mechanisms;
  mechanisms.emplace_back("M1", std::make_unique<core::M1FixedFee>(0.001, 3.0));
  mechanisms.emplace_back("M2", std::make_unique<core::M2Vcg>());
  mechanisms.emplace_back("M3", std::make_unique<core::M3DoubleAuction>());
  mechanisms.emplace_back("M4",
                          std::make_unique<core::M4DelayedAuction>(50.0));

  util::Table table({"n", "mechanism", "SW ratio", "volume ratio",
                     "buyer fees", "seller income", "CBB max", "IR min"});
  for (flow::NodeId n : {10, 25, 50, 100, 200}) {
    std::vector<util::Accumulator> sw_ratio(mechanisms.size()),
        vol_ratio(mechanisms.size()), fees(mechanisms.size()),
        income(mechanisms.size()), cbb(mechanisms.size()),
        ir(mechanisms.size());
    for (int trial = 0; trial < 5; ++trial) {
      gen::GameConfig config;
      config.depleted_share = 0.3;
      config.buyer_min = 0.005;
      config.seller_max = 0.003;
      const core::Game game = gen::random_ba_game(n, 2, config, rng);
      const core::BidVector bids = game.truthful_bids();
      const flow::Graph g = game.build_graph(bids);
      const flow::Circulation optimal = flow::solve_max_welfare(g);
      const double opt_sw = game.social_welfare(bids, optimal);
      const double opt_vol =
          static_cast<double>(flow::total_volume(optimal));

      // M1's participants self-select given the public fee schedule
      // (Theorem 2); the other mechanisms take the full game.
      const core::Game m1_game = core::m1_self_selected(game, 0.001, 3.0);

      for (std::size_t i = 0; i < mechanisms.size(); ++i) {
        const bool is_m1 = mechanisms[i].first == "M1";
        const core::Game& used = is_m1 ? m1_game : game;
        const core::Outcome outcome =
            mechanisms[i].second->run(used, used.truthful_bids());
        const double sw = outcome.realized_welfare(used);
        sw_ratio[i].add(opt_sw > 0 ? sw / opt_sw : 1.0);
        vol_ratio[i].add(
            opt_vol > 0
                ? static_cast<double>(flow::total_volume(outcome.circulation)) /
                      opt_vol
                : 1.0);
        double f = 0.0, inc = 0.0;
        for (const core::PricedCycle& pc : outcome.cycles) {
          for (const core::PlayerPrice& p : pc.prices) {
            if (p.price > 0) {
              f += p.price;
            } else {
              inc -= p.price;
            }
          }
        }
        fees[i].add(f);
        income[i].add(inc);
        cbb[i].add(
            core::check_cyclic_budget_balance(outcome).max_cycle_imbalance);
        ir[i].add(
            core::check_individual_rationality(used, outcome)
                .min_cycle_utility);
      }
    }
    for (std::size_t i = 0; i < mechanisms.size(); ++i) {
      table.add_row({util::fmt_int(n), mechanisms[i].first,
                     util::fmt_double(sw_ratio[i].mean(), 3),
                     util::fmt_double(vol_ratio[i].mean(), 3),
                     util::fmt_double(fees[i].mean(), 3),
                     util::fmt_double(income[i].mean(), 3),
                     util::format("%.1e", cbb[i].max()),
                     util::fmt_double(ir[i].min(), 5)});
    }
  }
  table.print();
  util::maybe_export_csv(table, "e2_mechanism_welfare");
  std::printf(
      "\nreading guide: SW ratio = realized welfare / optimum under true\n"
      "valuations. M3/M4 sit at 1.0 by construction; M2's ratio can dip\n"
      "below 1 (ignored seller costs realize as negative welfare); M1 is\n"
      "limited by its fixed fee schedule. CBB max ~ 0 and IR min >= 0 for\n"
      "M1/M3/M4 on every instance; M2's IR holds for buyers (sellers are\n"
      "non-strategic in its model).\n");
  bench.add_seconds("total", bench_timer.seconds(), 25);
  return 0;
}
