// E12 — §4 "Finer Analysis of Incentives": equilibrium shading and the
// empirical price of anarchy.
//
// Round-robin best-response dynamics over a discrete shading grid, from
// the truthful profile, per mechanism. Reports where the dynamics settle
// (how deep equilibrium shading goes), how often they converge, and the
// welfare realized at equilibrium relative to the truthful optimum.
#include <cstdio>

#include "core/equilibrium.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "gen/game_gen.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

int main() {
  util::BenchReport bench("e12_equilibrium");
  bench.config("seeds_per_cell", std::int64_t{10});
  const obs::Timer bench_timer;
  std::printf("E12: best-response equilibria and price of anarchy "
              "(10 random BA games per size)\n\n");

  const core::M2Vcg m2;
  const core::M3DoubleAuction m3;
  const core::M4DelayedAuction m4(100.0);

  util::Table table({"mechanism", "n", "converged", "mean passes",
                     "mean eq shading", "welfare ratio (mean)",
                     "welfare ratio (min)"});
  for (const core::Mechanism* mech :
       {static_cast<const core::Mechanism*>(&m2),
        static_cast<const core::Mechanism*>(&m3),
        static_cast<const core::Mechanism*>(&m4)}) {
    for (flow::NodeId n : {8, 14}) {
      util::Accumulator passes, shading, ratio;
      int converged = 0;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        util::Rng rng(seed * 47 + 11);
        gen::GameConfig config;
        config.depleted_share = 0.35;
        const core::Game game = gen::random_ba_game(n, 2, config, rng);
        const core::EquilibriumResult result =
            core::best_response_dynamics(*mech, game);
        converged += result.converged;
        passes.add(result.passes);
        shading.add(util::mean(result.strategy));
        ratio.add(result.welfare_ratio());
      }
      table.add_row({std::string(mech->name()), util::fmt_int(n),
                     util::format("%d/10", converged),
                     util::fmt_double(passes.mean(), 1),
                     util::fmt_double(shading.mean(), 2),
                     util::fmt_double(ratio.mean(), 3),
                     util::fmt_double(ratio.min(), 3)});
    }
  }
  table.print();
  util::maybe_export_csv(table, "e12_equilibrium");
  std::printf(
      "\nexpected shape: M3's equilibria shade deepest (mean factor ~0.4,\n"
      "and best-response cycling appears — first-price dynamics), yet most\n"
      "of the shading is absorbed by prices rather than allocations, so\n"
      "its welfare ratio stays near 1. M2 sits closest to truthful. M4\n"
      "converges fast but its residual shading — driven purely by the\n"
      "multi-cycle selection externality of E3b, not the pricing rule —\n"
      "can cost more welfare at equilibrium than M3's price shading: the\n"
      "allocation itself moves. A quantitative answer to Section 4's\n"
      "\"finer analysis of incentives\" question.\n");
  bench.add_seconds("total", bench_timer.seconds(), 60);
  return 0;
}
