// E7 — solver ablation: Bellman–Ford cycle cancelling vs min-mean-cycle
// cancelling vs the LP simplex referee. Same optimum everywhere (checked
// exactly); very different runtimes and iteration counts.
#include <chrono>
#include <cstdio>
#include <utility>

#include "flow/min_mean_cycle.hpp"
#include "flow/residual.hpp"
#include "flow/solver.hpp"
#include "gen/game_gen.hpp"
#include "lp/flow_lp.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  util::BenchReport bench("e7_solver_ablation");
  bench.config("trials_per_size", std::int64_t{3});
  std::printf("E7: solver ablation (3 random games per size; welfare "
              "agreement checked exactly)\n\n");

  util::Rng rng(2468);
  util::Table table({"n", "edges", "BF ms", "scaling ms", "minmean ms",
                     "simplex ms", "simplex pivots", "NS fallbacks", "LP ms",
                     "agree"});
  for (flow::NodeId n : {16, 32, 64, 128}) {
    util::Accumulator bf_ms, cs_ms, mm_ms, ns_ms, lp_ms, bf_cycles,
        cs_cycles, mm_cycles, ns_pivots, lp_iters;
    int ns_fallbacks = 0;  // pivot-cap fallbacks to the BF canceller
    int edges = 0;
    bool all_agree = true;
    for (int trial = 0; trial < 3; ++trial) {
      gen::GameConfig config;
      config.depleted_share = 0.3;
      config.capacity_max = 50;
      const core::Game game = gen::random_ba_game(n, 2, config, rng);
      const flow::Graph g = game.build_graph(game.truthful_bids());
      edges = g.num_edges();

      auto t0 = std::chrono::steady_clock::now();
      flow::SolveStats bf_stats;
      const flow::Circulation f_bf =
          flow::solve_max_welfare(g, flow::SolverKind::kBellmanFord, &bf_stats);
      bf_ms.add(ms_since(t0));
      bf_cycles.add(bf_stats.cycles_cancelled);

      t0 = std::chrono::steady_clock::now();
      flow::SolveStats cs_stats;
      const flow::Circulation f_cs = flow::solve_max_welfare(
          g, flow::SolverKind::kCapacityScaling, &cs_stats);
      cs_ms.add(ms_since(t0));
      cs_cycles.add(cs_stats.cycles_cancelled);

      t0 = std::chrono::steady_clock::now();
      flow::SolveStats mm_stats;
      const flow::Circulation f_mm =
          flow::solve_max_welfare(g, flow::SolverKind::kMinMean, &mm_stats);
      mm_ms.add(ms_since(t0));
      mm_cycles.add(mm_stats.cycles_cancelled);

      t0 = std::chrono::steady_clock::now();
      flow::SolveStats ns_stats;
      const flow::Circulation f_ns = flow::solve_max_welfare(
          g, flow::SolverKind::kNetworkSimplex, &ns_stats);
      ns_ms.add(ms_since(t0));
      ns_pivots.add(ns_stats.cycles_cancelled);
      ns_fallbacks += ns_stats.fallbacks;

      t0 = std::chrono::steady_clock::now();
      const lp::FlowLpResult lp_result = lp::solve_circulation_lp(g);
      lp_ms.add(ms_since(t0));
      lp_iters.add(lp_result.iterations > 0 ? lp_result.iterations : 0);

      const auto w_bf = flow::scaled_welfare(g, f_bf);
      const auto w_mm = flow::scaled_welfare(g, f_mm);
      const double w_lp = lp_result.welfare;
      if (flow::scaled_welfare(g, f_cs) != w_bf) all_agree = false;
      if (flow::scaled_welfare(g, f_ns) != w_bf ||
          !flow::is_optimal(g, f_ns)) {
        all_agree = false;
      }
      if (w_bf != w_mm ||
          std::abs(w_lp - static_cast<double>(w_bf) / flow::kGainScale) >
              1e-5) {
        all_agree = false;
      }
      // Exact optimality certificate on both combinatorial solutions.
      if (!flow::is_optimal(g, f_bf) || !flow::is_optimal(g, f_mm)) {
        all_agree = false;
      }
    }
    // ms means over the trials -> ns/op per solver at this size.
    const std::pair<const char*, const util::Accumulator*> solver_ms[] = {
        {"bellman_ford", &bf_ms},    {"capacity_scaling", &cs_ms},
        {"min_mean", &mm_ms},        {"network_simplex", &ns_ms},
        {"lp_simplex", &lp_ms}};
    for (const auto& [op, acc] : solver_ms) {
      bench.add(util::format("%s/n%d", op, n), 1e6 * acc->mean(),
                acc->count());
    }
    table.add_row({util::fmt_int(n), util::fmt_int(edges),
                   util::fmt_double(bf_ms.mean(), 2),
                   util::fmt_double(cs_ms.mean(), 2),
                   util::fmt_double(mm_ms.mean(), 2),
                   util::fmt_double(ns_ms.mean(), 2),
                   util::fmt_double(ns_pivots.mean(), 0),
                   util::fmt_int(ns_fallbacks),
                   util::fmt_double(lp_ms.mean(), 2),
                   all_agree ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nexpected shape: all five solvers agree on the optimum exactly\n"
      "(checked via scaled-integer welfare plus the residual-cycle\n"
      "certificate). Network simplex dominates at scale (~20x over the\n"
      "cancellers at n=512+); min-mean pays the Karp overhead for its\n"
      "strongly-polynomial bound; the dense LP simplex is the slow\n"
      "independent referee.\n");
  return 0;
}
