// FIG1 — reproduces Figure 1's four-panel pipeline on a concrete
// instance: (a) a PCN with channel liquidity, (b) submitted capacities
// and bids, (c) the welfare-maximizing rebalancing circulation, (d) the
// sign-consistent cycle decomposition with per-cycle prices.
//
// The paper's figure is illustrative ("all numbers are indicative"); this
// binary fixes a 6-player instance in the same spirit and prints every
// stage, so the figure can be regenerated mechanically.
#include <cstdio>

#include "core/m3_double_auction.hpp"
#include "core/properties.hpp"
#include "flow/solver.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

using namespace musketeer;

int main() {
  util::BenchReport bench("fig1_pipeline");
  bench.config("players", std::int64_t{6});
  std::printf("FIG1: the Musketeer pipeline on a 6-player PCN\n\n");

  // (a)+(b): players submit capacities and bids. Depleted edges carry
  // positive buyer (head) bids; indifferent edges carry seller (tail)
  // fees <= 0.
  core::Game game(6);
  struct Spec {
    core::NodeId from, to;
    flow::Amount cap;
    double tail, head;
    const char* kind;
  };
  const Spec specs[] = {
      {0, 1, 8, 0.0, 0.04, "depleted"},     // player 1 buys rebalancing
      {1, 2, 10, -0.005, 0.0, "indifferent"},
      {2, 0, 12, 0.0, 0.0, "indifferent"},
      {2, 3, 6, 0.0, 0.02, "depleted"},     // player 3 buys rebalancing
      {3, 4, 9, -0.002, 0.0, "indifferent"},
      {4, 2, 7, 0.0, 0.0, "indifferent"},
      {4, 5, 5, 0.0, 0.035, "depleted"},    // player 5 buys rebalancing
      {5, 3, 5, -0.001, 0.0, "indifferent"},
      {3, 1, 4, -0.02, 0.0, "indifferent"}, // overpriced seller: unused
  };
  util::Table submitted({"edge", "capacity", "seller bid", "buyer bid",
                         "status"});
  for (const Spec& s : specs) {
    game.add_edge(s.from, s.to, s.cap, s.tail, s.head);
    submitted.add_row({util::format("%d->%d", s.from, s.to),
                       util::fmt_int(s.cap), util::fmt_double(s.tail, 3),
                       util::fmt_double(s.head, 3), s.kind});
  }
  std::printf("(b) submitted capacities and bids:\n");
  submitted.print();

  // (c): the welfare-maximizing rebalancing circulation.
  const core::BidVector bids = game.truthful_bids();
  const flow::Graph g = game.build_graph(bids);
  const obs::Timer solve_timer;
  const flow::Circulation f = flow::solve_max_welfare(g);
  bench.add_seconds("solve_max_welfare", solve_timer.seconds(), 1);
  std::printf("\n(c) optimal rebalancing circulation "
              "(SW = %.4f, certified optimal = %s):\n",
              flow::welfare(g, f), flow::is_optimal(g, f) ? "yes" : "no");
  util::Table circulation({"edge", "flow", "capacity"});
  for (flow::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (f[static_cast<std::size_t>(e)] == 0) continue;
    circulation.add_row({util::format("%d->%d", g.edge(e).from, g.edge(e).to),
                         util::fmt_int(f[static_cast<std::size_t>(e)]),
                         util::fmt_int(g.edge(e).capacity)});
  }
  circulation.print();

  // (d): sign-consistent cycles with prices (mechanism M3).
  const obs::Timer m3_timer;
  const core::Outcome outcome = core::M3DoubleAuction().run(game, bids);
  bench.add_seconds("m3_run", m3_timer.seconds(), 1);
  std::printf("\n(d) sign-consistent priced cycles:\n");
  for (std::size_t i = 0; i < outcome.cycles.size(); ++i) {
    const core::PricedCycle& pc = outcome.cycles[i];
    std::printf("  cycle %zu: %lld coins, edges [", i,
                static_cast<long long>(pc.cycle.amount));
    for (std::size_t j = 0; j < pc.cycle.edges.size(); ++j) {
      const core::GameEdge& e = game.edge(pc.cycle.edges[j]);
      std::printf("%d->%d%s", e.from, e.to,
                  j + 1 < pc.cycle.edges.size() ? " " : "");
    }
    std::printf("], prices {");
    for (std::size_t j = 0; j < pc.prices.size(); ++j) {
      std::printf("p%d=%+.4f%s", pc.prices[j].player, pc.prices[j].price,
                  j + 1 < pc.prices.size() ? ", " : "");
    }
    std::printf("}, sum=%.2e\n", pc.budget_imbalance());
  }

  const auto bb = core::check_cyclic_budget_balance(outcome);
  const auto ir = core::check_individual_rationality(game, outcome);
  std::printf("\nchecks: CBB max imbalance %.2e | IR min cycle utility "
              "%.5f | efficiency certified %s\n",
              bb.max_cycle_imbalance, ir.min_cycle_utility,
              core::check_efficiency(game, bids, outcome).certified_optimal
                  ? "yes"
                  : "no");
  return 0;
}
