// E10 — the §4 extension mechanisms, measured:
//
// (a) M5 variable delays: how incentive quality degrades with the spread
//     of delay factors (the paper's predicted difficulty), and who bears
//     the delay.
// (b) M2-MinFee: the seller-fee floor's cost in dropped liquidity and
//     buyer truthfulness, across floor levels.
#include <cstdio>

#include "core/m2_minfee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m5_variable_delay.hpp"
#include "core/properties.hpp"
#include "gen/game_gen.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

const std::vector<double> kScales{0.0, 0.3, 0.5, 0.7, 0.9, 1.1};

// Single-cycle rings isolate the pricing-rule incentives from cycle-
// selection externalities (cf. E3).
core::Game ring_game(util::Rng& rng, flow::NodeId n) {
  core::Game game(n);
  for (flow::NodeId u = 0; u < n; ++u) {
    const auto v = static_cast<flow::NodeId>((u + 1) % n);
    if (rng.bernoulli(0.5)) {
      game.add_edge(u, v, rng.uniform_int(5, 40), 0.0,
                    rng.uniform_real(0.01, 0.05));
    } else {
      game.add_edge(u, v, rng.uniform_int(5, 40),
                    -rng.uniform_real(0.0, 0.004), 0.0);
    }
  }
  return game;
}

}  // namespace

int main() {
  util::BenchReport bench("e10_extensions");
  const obs::Timer bench_timer;
  std::printf("E10a: M5 variable delays — deviation gain vs delay-factor "
              "spread\n(single-cycle games, all players probed, 10 seeds "
              "per spread)\n\n");
  {
    util::Table table({"d spread (min..max)", "mean dev gain",
                       "max dev gain", "mean release t",
                       "bonus gap (max/min)"});
    for (double spread : {1.0, 2.0, 8.0, 32.0}) {
      util::Accumulator gains, release, gap;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        util::Rng rng(seed * 101);
        const auto n = static_cast<flow::NodeId>(rng.uniform_int(3, 7));
        const core::Game game = ring_game(rng, n);
        std::vector<double> factors;
        for (flow::NodeId v = 0; v < n; ++v) {
          factors.push_back(rng.uniform_real(10.0, 10.0 * spread));
        }
        const core::M5VariableDelay m5(factors);
        for (core::PlayerId v = 0; v < n; ++v) {
          gains.add(core::probe_truthfulness(m5, game, v, kScales).gain());
        }
        const core::Outcome outcome = m5.run_truthful(game);
        for (const core::PricedCycle& pc : outcome.cycles) {
          release.add(pc.release_time);
          double lo = 1e18, hi = 0;
          for (const core::PlayerPrice& b : pc.player_delay_bonuses) {
            lo = std::min(lo, b.price);
            hi = std::max(hi, b.price);
          }
          if (hi > 0) gap.add(hi / std::max(lo, 1e-12));
        }
      }
      table.add_row({util::format("10..%.0f", 10.0 * spread),
                     util::format("%.5f", gains.mean()),
                     util::format("%.5f", gains.max()),
                     release.empty() ? "-" : util::fmt_double(release.mean(), 3),
                     gap.empty() ? "-" : util::fmt_double(gap.mean(), 1)});
    }
    table.print();
  }

  std::printf("\nE10b: M2-MinFee — seller floors vs liquidity and "
              "truthfulness\n(random BA games, zero seller costs per M2's "
              "model, 10 seeds per floor)\n\n");
  {
    util::Table table({"floor fee", "volume ratio vs M2", "seller income",
                       "cycles dropped%", "buyer dev gain (max)"});
    for (double floor : {0.0, 0.0005, 0.002, 0.005}) {
      util::Accumulator vol_ratio, income, dropped, gains;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        util::Rng rng(seed * 7 + 3);
        gen::GameConfig config;
        config.seller_min = 0.0;
        config.seller_max = 0.0;
        config.depleted_share = 0.3;
        const core::Game game = gen::random_ba_game(14, 2, config, rng);
        const core::M2Vcg m2;
        const core::M2MinFee minfee(floor);
        const core::Outcome base = m2.run_truthful(game);
        const core::Outcome floored = minfee.run_truthful(game);
        const auto base_vol = flow::total_volume(base.circulation);
        vol_ratio.add(base_vol > 0
                          ? static_cast<double>(
                                flow::total_volume(floored.circulation)) /
                                static_cast<double>(base_vol)
                          : 1.0);
        double inc = 0.0;
        for (const core::PricedCycle& pc : floored.cycles) {
          for (const core::PlayerPrice& p : pc.prices) {
            if (p.price < 0) inc -= p.price;
          }
        }
        income.add(inc);
        dropped.add(base.cycles.empty()
                        ? 0.0
                        : 100.0 *
                              static_cast<double>(base.cycles.size() -
                                                  floored.cycles.size()) /
                              static_cast<double>(base.cycles.size()));
        // Probe the highest-value buyer.
        core::PlayerId top = 0;
        double best = -1.0;
        for (core::EdgeId e = 0; e < game.num_edges(); ++e) {
          if (game.edge(e).head_valuation > best) {
            best = game.edge(e).head_valuation;
            top = game.edge(e).to;
          }
        }
        gains.add(core::probe_truthfulness(minfee, game, top, kScales).gain());
      }
      table.add_row({util::fmt_double(floor, 4),
                     util::fmt_double(vol_ratio.mean(), 3),
                     util::fmt_double(income.mean(), 4),
                     util::fmt_double(dropped.mean(), 1),
                     util::format("%.5f", gains.max())});
    }
    table.print();
  }
  std::printf(
      "\nexpected shape: (a) with homogeneous delay factors M5 = M4 and\n"
      "deviation gains vanish; as the spread widens, low-d participants'\n"
      "compensation drifts from the telescoping value and gains appear —\n"
      "the paper's predicted incentive obstacle, quantified. (b) raising\n"
      "the floor buys sellers guaranteed income at the price of dropped\n"
      "cycles (liquidity) and growing buyer manipulability: the exact\n"
      "trade-off behind the Section-4 open question.\n");
  bench.add_seconds("total", bench_timer.seconds(), 1);
  return 0;
}
