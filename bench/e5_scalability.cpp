// E5 — solver scalability (google-benchmark): welfare-maximizing
// circulation, cycle decomposition, and the full M3 pipeline vs network
// size on Barabási–Albert graphs.
#include <benchmark/benchmark.h>

#include "core/m3_double_auction.hpp"
#include "flow/decompose.hpp"
#include "flow/solver.hpp"
#include "gen/game_gen.hpp"
#include "util/bench_json.hpp"

using namespace musketeer;

namespace {

core::Game make_game(flow::NodeId n) {
  util::Rng rng(static_cast<std::uint64_t>(n) * 7919 + 13);
  gen::GameConfig config;
  config.depleted_share = 0.3;
  return gen::random_ba_game(n, 2, config, rng);
}

void BM_SolveCirculationBellmanFord(benchmark::State& state) {
  const core::Game game = make_game(static_cast<flow::NodeId>(state.range(0)));
  const flow::Graph g = game.build_graph(game.truthful_bids());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::solve_max_welfare(g, flow::SolverKind::kBellmanFord));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolveCirculationBellmanFord)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_SolveCirculationMinMean(benchmark::State& state) {
  const core::Game game = make_game(static_cast<flow::NodeId>(state.range(0)));
  const flow::Graph g = game.build_graph(game.truthful_bids());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::solve_max_welfare(g, flow::SolverKind::kMinMean));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolveCirculationMinMean)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->Unit(benchmark::kMillisecond);

void BM_SolveCirculationNetworkSimplex(benchmark::State& state) {
  const core::Game game = make_game(static_cast<flow::NodeId>(state.range(0)));
  const flow::Graph g = game.build_graph(game.truthful_bids());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::solve_max_welfare(g, flow::SolverKind::kNetworkSimplex));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolveCirculationNetworkSimplex)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_CycleDecomposition(benchmark::State& state) {
  const core::Game game = make_game(static_cast<flow::NodeId>(state.range(0)));
  const flow::Graph g = game.build_graph(game.truthful_bids());
  const flow::Circulation f = flow::solve_max_welfare(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::decompose_sign_consistent(g, f));
  }
}
BENCHMARK(BM_CycleDecomposition)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_FullM3Pipeline(benchmark::State& state) {
  const core::Game game = make_game(static_cast<flow::NodeId>(state.range(0)));
  const core::M3DoubleAuction m3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m3.run_truthful(game));
  }
}
BENCHMARK(BM_FullM3Pipeline)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Unit(benchmark::kMillisecond);

/// Console output as usual, plus every per-iteration run collected into
/// the shared BENCH_<name>.json format (ns/op from accumulated real
/// time, n = iterations; aggregates skipped).
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollector(util::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.iterations <= 0) continue;
      report_.add(run.benchmark_name(),
                  run.real_accumulated_time * 1e9 /
                      static_cast<double>(run.iterations),
                  static_cast<std::uint64_t>(run.iterations));
    }
  }

 private:
  util::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  util::BenchReport bench("e5_scalability");
  JsonCollector reporter(bench);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
