// SVC — service-layer throughput and latency:
//
// (a) sustained concurrent bid intake (4 closed-loop submitter threads
//     hammering RebalanceService::submit while the main thread clears
//     epochs), reporting bids/sec and ack-latency percentiles;
// (b) first-epoch clear latency (drain -> snapshot -> mechanism ->
//     settle) across network sizes;
// (c) full wire-stack round-trip cost through an in-process musketeerd
//     (socket + framing + codec + intake + ack);
// (d) graceful shedding: 2x queue capacity of distinct players gets
//     exactly capacity accepts and capacity explicit kRejectedFull
//     rejections, replaces still land, and the next epoch drains clean;
// (e) the OrderedMutex zero-overhead claim: uncontended lock/unlock
//     ns/op vs a raw std::mutex. In builds without MUSKETEER_LOCK_RANK
//     the wrapper must cost the same as the mutex it wraps (the ratio
//     gate fails the bench otherwise); with the auditor compiled in the
//     overhead is reported but not gated.
// (f) the MUSKETEER_OBS zero-overhead claim, same shape as (e): a hot
//     loop with the MUSK_OBS_COUNT/HISTOGRAM/SPAN macros inserted vs
//     the bare loop. With -DMUSKETEER_OBS=OFF the macros expand to
//     nothing, so the ratio gate (1.05x) fails the bench if anything
//     leaks into the instrumented path; with obs compiled in the
//     instrument cost is reported but not gated.
//
// Companion to tools/musk_loadgen, which drives the same stack over real
// sockets at a *configured* open-loop rate; this bench is closed-loop
// and flagless so `build/bench/svc_throughput` just runs.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/mechanism_factory.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/service.hpp"
#include "util/bench_json.hpp"
#include "util/ordered_mutex.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;
using Clock = std::chrono::steady_clock;

namespace {

sim::SimulationConfig bench_config(int nodes, std::uint64_t seed) {
  sim::SimulationConfig config;
  config.num_nodes = nodes;
  config.seed = seed;
  config.initial_skew = 0.4;
  return config;
}

pcn::Network bench_network(const sim::SimulationConfig& config) {
  util::Rng rng(config.seed);
  return sim::build_network(config, rng);
}

std::vector<std::string> latency_row(const char* what,
                                     std::vector<double>& ms) {
  return {what,
          std::to_string(ms.size()),
          util::fmt_double(util::quantile(ms, 0.5), 3),
          util::fmt_double(util::quantile(ms, 0.95), 3),
          util::fmt_double(util::quantile(ms, 0.99), 3),
          util::fmt_double(util::max_of(ms), 3)};
}

}  // namespace

int main() {
  util::BenchReport bench("svc_throughput");
  // ------------------------------------------- (a) concurrent intake
  constexpr int kThreads = 4;
  constexpr int kSubmitsPerThread = 25000;
  std::printf("SVC(a): sustained intake — %d closed-loop threads x %d "
              "submits against a live service\n(100-node network, m3, "
              "epochs clearing concurrently on the main thread)\n\n",
              kThreads, kSubmitsPerThread);

  util::Table lat({"path", "samples", "p50 ms", "p95 ms", "p99 ms", "max ms"});
  {
    const sim::SimulationConfig config = bench_config(100, 7);
    pcn::Network network = bench_network(config);
    const auto mechanism = core::make_mechanism("m3", {});
    svc::ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.queue_capacity = 256;
    svc::RebalanceService service(network, *mechanism, service_config);

    std::vector<std::vector<double>> ack_ms(kThreads);
    std::atomic<int> active{kThreads};
    const auto t0 = Clock::now();
    int epochs = 0;
    {
      std::vector<std::jthread> submitters;
      submitters.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
          ack_ms[static_cast<std::size_t>(t)].reserve(kSubmitsPerThread);
          for (int i = 0; i < kSubmitsPerThread; ++i) {
            svc::BidSubmission bid;
            bid.player =
                static_cast<core::PlayerId>((t * 7919 + i) % 100);
            const auto s0 = Clock::now();
            service.submit(bid);
            ack_ms[static_cast<std::size_t>(t)].push_back(
                std::chrono::duration<double, std::milli>(Clock::now() - s0)
                    .count());
          }
          active.fetch_sub(1);
        });
      }
      // Clear epochs for as long as the submitters keep the queue hot.
      while (active.load() > 0) {
        service.run_epoch();
        ++epochs;
      }
    }
    service.run_epoch();  // drain the leftovers
    ++epochs;
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    std::vector<double> all_ack;
    all_ack.reserve(static_cast<std::size_t>(kThreads) * kSubmitsPerThread);
    for (auto& v : ack_ms) all_ack.insert(all_ack.end(), v.begin(), v.end());
    std::vector<double> clear_ms;
    for (const svc::EpochReport& r : service.reports()) {
      clear_ms.push_back(1e3 * r.clear_seconds);
    }
    const svc::IntakeCounters counters = service.intake_counters();
    std::printf("  %.2fs wall, %.0f bids/sec sustained, %d epochs cleared\n"
                "  intake: %llu accepted, %llu replaced (every submit "
                "accounted for)\n\n",
                wall, static_cast<double>(counters.total()) / wall, epochs,
                static_cast<unsigned long long>(counters.accepted),
                static_cast<unsigned long long>(counters.replaced));
    lat.add_row(latency_row("submit ack (in-process)", all_ack));
    lat.add_row(latency_row("epoch clear (under load)", clear_ms));
    bench.add("submit_ack_inproc", 1e6 * util::mean(all_ack),
              all_ack.size());
    bench.add("epoch_clear_under_load", 1e6 * util::mean(clear_ms),
              clear_ms.size());
  }

  // --------------------------------------- (b) clear latency vs size
  std::vector<double> clear_by_size[3];
  const int sizes[3] = {50, 100, 200};
  for (int s = 0; s < 3; ++s) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const sim::SimulationConfig config = bench_config(sizes[s], seed);
      pcn::Network network = bench_network(config);
      const auto mechanism = core::make_mechanism("m3", {});
      svc::ServiceConfig service_config;
      service_config.policy = config.policy;
      svc::RebalanceService service(network, *mechanism, service_config);
      clear_by_size[s].push_back(1e3 * service.run_epoch().clear_seconds);
    }
  }
  lat.add_row(latency_row("first clear, n=50 (12 seeds)", clear_by_size[0]));
  lat.add_row(latency_row("first clear, n=100 (12 seeds)", clear_by_size[1]));
  lat.add_row(latency_row("first clear, n=200 (12 seeds)", clear_by_size[2]));
  for (int s = 0; s < 3; ++s) {
    bench.add(util::format("first_clear/n%d", sizes[s]),
              1e6 * util::mean(clear_by_size[s]), clear_by_size[s].size());
  }
  // Reference p50s from the pre-lock-rank tree on the dev container
  // (LOCK_RANK off): 0.305 / 1.792 / 16.894 ms for n=50/100/200. Machine-
  // dependent, so informational only — the enforced regression gate is
  // the lock ns/op ratio in section (e).
  std::printf("  (pre-OrderedMutex baseline p50, dev container: "
              "0.305 / 1.792 / 16.894 ms for n=50/100/200)\n");

  // ------------------------------------------ (c) wire round trip
  {
    constexpr int kWireSubmits = 2000;
    const sim::SimulationConfig config = bench_config(100, 9);
    svc::DaemonConfig daemon_config;
    daemon_config.service.policy = config.policy;
    daemon_config.server.listen = "tcp:0";
    svc::Daemon daemon(bench_network(config), core::make_mechanism("m3", {}),
                       daemon_config);
    daemon.start(/*periodic_epochs=*/false);
    svc::Client client(daemon.endpoint());
    std::vector<double> rtt_ms;
    rtt_ms.reserve(kWireSubmits);
    for (int i = 0; i < kWireSubmits; ++i) {
      svc::BidSubmission bid;
      bid.player = static_cast<core::PlayerId>(i % 100);
      const auto s0 = Clock::now();
      client.submit(bid);
      rtt_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - s0)
              .count());
      if ((i + 1) % 500 == 0) daemon.service().run_epoch();
    }
    daemon.stop();
    lat.add_row(latency_row("submit ack (wire, musketeerd)", rtt_ms));
    bench.add("submit_ack_wire", 1e6 * util::mean(rtt_ms), rtt_ms.size());
  }
  lat.print();
  util::maybe_export_csv(lat, "svc_latency");

  // ------------------------------------------------- (d) shedding
  std::printf("\nSVC(d): shedding at 2x queue capacity (capacity 64, 128 "
              "distinct players)\n\n");
  bool shedding_ok = true;
  {
    const sim::SimulationConfig config = bench_config(200, 21);
    pcn::Network network = bench_network(config);
    const auto mechanism = core::make_mechanism("m3", {});
    svc::ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.queue_capacity = 64;
    svc::RebalanceService service(network, *mechanism, service_config);

    int accepted = 0;
    int shed = 0;
    for (core::PlayerId p = 0; p < 128; ++p) {
      svc::BidSubmission bid;
      bid.player = p;
      const svc::IntakeStatus status = service.submit(bid);
      accepted += (status == svc::IntakeStatus::kAccepted);
      shed += (status == svc::IntakeStatus::kRejectedFull);
    }
    const bool replace_at_capacity =
        service.submit(svc::BidSubmission{}) == svc::IntakeStatus::kReplaced;
    const std::size_t applied = service.run_epoch().bids_applied;
    const bool accepts_after_drain =
        service.submit(svc::BidSubmission{}) == svc::IntakeStatus::kAccepted;

    util::Table shed_table({"offered", "accepted", "shed (explicit)",
                            "replace at cap", "applied", "accepts after"});
    shed_table.add_row({"128", std::to_string(accepted), std::to_string(shed),
                        replace_at_capacity ? "yes" : "no",
                        std::to_string(applied),
                        accepts_after_drain ? "yes" : "no"});
    shed_table.print();
    util::maybe_export_csv(shed_table, "svc_shedding");
    shedding_ok = accepted == 64 && shed == 64 && replace_at_capacity &&
                  applied == 64 && accepts_after_drain;
  }
  if (!shedding_ok) {
    std::printf("\nFAIL: shedding did not behave as designed\n");
    return 1;
  }
  std::printf("\nevery overflow submission was rejected explicitly; none "
              "dropped silently\n");

  // ------------------------------- (e) OrderedMutex overhead guard
  {
    constexpr int kReps = 9;
    constexpr int kOpsPerRep = 2000000;
    const auto measure = [&](auto& mutex) {
      std::vector<double> ns_per_op;
      ns_per_op.reserve(kReps);
      std::uint64_t sink = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto m0 = Clock::now();
        for (int i = 0; i < kOpsPerRep; ++i) {
          mutex.lock();
          ++sink;
          mutex.unlock();
        }
        ns_per_op.push_back(
            std::chrono::duration<double, std::nano>(Clock::now() - m0)
                .count() /
            kOpsPerRep);
      }
      // The sink keeps the critical section from folding away entirely.
      if (sink == 0) std::printf("unreachable\n");
      return util::quantile(ns_per_op, 0.5);
    };

    std::mutex raw;
    util::OrderedMutex ordered(util::LockRank::kBidQueue, "bench");
    const double raw_ns = measure(raw);
    const double ordered_ns = measure(ordered);
    const double ratio = ordered_ns / raw_ns;
    const bool audited = util::lock_rank::compiled_in();
    std::printf("\nSVC(e): uncontended lock/unlock, median of %d x %dM "
                "ops\n  std::mutex %.1f ns/op, OrderedMutex %.1f ns/op "
                "(%.2fx, auditor %s)\n",
                kReps, kOpsPerRep / 1000000, raw_ns, ordered_ns, ratio,
                audited ? "ON" : "OFF");
    // Zero-overhead claim: without MUSKETEER_LOCK_RANK the wrapper is a
    // bare std::mutex plus a dead source_location argument; anything
    // past noise means the rank machinery leaked into the fast path.
    // 1.5x tolerates scheduler jitter while catching a real branch or
    // thread-local access (~3x on this container).
    if (!audited && ratio > 1.5) {
      std::printf("FAIL: OrderedMutex costs %.2fx a raw std::mutex with "
                  "the auditor compiled out — the LOCK_RANK=OFF path "
                  "must be free\n",
                  ratio);
      return 1;
    }
    bench.add("lock_raw", raw_ns, kOpsPerRep);
    bench.add("lock_ordered", ordered_ns, kOpsPerRep);
  }

  // ------------------------------- (f) observability overhead guard
  {
    constexpr int kReps = 9;
    constexpr int kOpsPerRep = 2000000;
    const auto measure = [&](auto&& body) {
      std::vector<double> ns_per_op;
      ns_per_op.reserve(kReps);
      std::uint64_t sink = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto m0 = Clock::now();
        for (int i = 0; i < kOpsPerRep; ++i) {
          body(sink);
          // Optimization barrier: without it the bare loop folds to a
          // single add and both sides measure ~0 ns, making the ratio
          // noise-over-noise.
          asm volatile("" : "+r"(sink));
        }
        ns_per_op.push_back(
            std::chrono::duration<double, std::nano>(Clock::now() - m0)
                .count() /
            kOpsPerRep);
      }
      if (sink == 0) std::printf("unreachable\n");
      return util::quantile(ns_per_op, 0.5);
    };

    const double bare_ns =
        measure([](std::uint64_t& sink) { ++sink; });
    const double instrumented_ns = measure([](std::uint64_t& sink) {
      MUSK_OBS_SPAN(span, "bench.obs.span");
      MUSK_OBS_COUNT("bench.obs.count", 1);
      ++sink;
      MUSK_OBS_HISTOGRAM("bench.obs.histogram",
                         static_cast<double>(sink & 1023));
    });
    const double ratio = instrumented_ns / bare_ns;
#ifdef MUSKETEER_OBS
    const bool obs_on = true;
#else
    const bool obs_on = false;
#endif
    std::printf("\nSVC(f): obs macros in a hot loop, median of %d x %dM "
                "ops\n  bare %.2f ns/op, instrumented %.2f ns/op "
                "(%.2fx, obs %s)\n",
                kReps, kOpsPerRep / 1000000, bare_ns, instrumented_ns,
                ratio, obs_on ? "ON" : "OFF");
    // Zero-overhead-when-disabled claim: with MUSKETEER_OBS compiled
    // out the macros expand to nothing, so the two loops are the same
    // code — anything past measurement noise means the instrumentation
    // leaked into the disabled path. The 0.2 ns absolute slack keeps
    // sub-nanosecond timer jitter from tripping the relative gate.
    if (!obs_on && ratio > 1.05 && instrumented_ns - bare_ns > 0.2) {
      std::printf("FAIL: obs macros cost %.2fx with MUSKETEER_OBS "
                  "compiled out — the OBS=OFF path must be free\n",
                  ratio);
      return 1;
    }
    bench.add("obs_bare", bare_ns, kOpsPerRep);
    bench.add("obs_instrumented", instrumented_ns, kOpsPerRep);
  }
  return 0;
}
