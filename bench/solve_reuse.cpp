// solve_reuse — the zero-rebuild solve path, measured.
//
// (a) M2 VCG exclusion sweep, fresh vs reused, on STEADY-STATE games:
//     each game is extracted from a network that was first rebalanced to
//     quiescence, which is the topology-stable, bids-only-varying regime
//     the SolveContext layer targets (the epoch service re-clears such
//     games thousands of times). The pre-refactor path rebuilt G_{-v}
//     from scratch for every buyer (build_graph_without + a fresh solver
//     workspace per solve); the SolveContext path binds the game once
//     and runs every exclusion as an O(deg) capacity mask through pooled
//     scratch. Both run single-threaded on identical games and must
//     produce bit-identical circulations.
// (b) 1000 quiescent epochs through svc::RebalanceService: after the
//     network converges, every clear must rebind in place — zero graph
//     rebuilds, near-zero allocations.
//
// Reported counts come from a global operator new hook, so "allocs"
// is every heap allocation the process makes during the timed region.
// Set MUSK_BENCH_SHORT=1 for the CI smoke variant (smaller sizes, fewer
// epochs).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "flow/solve_context.hpp"
#include "flow/solver.hpp"
#include "pcn/rebalancer.hpp"
#include "sim/engine.hpp"
#include "svc/service.hpp"
#include "util/assert.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

namespace {

std::atomic<long long> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace musketeer;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// A steady-state game: skew a scale-free network, rebalance with M3
/// until an epoch executes nothing, then extract. The result has real
/// buyers and sellers but a settled (small/empty) optimum — the game
/// shape every epoch after convergence re-clears with fresh bids.
core::Game settled_game(flow::NodeId n, std::uint64_t seed) {
  sim::SimulationConfig config;
  config.num_nodes = n;
  config.initial_skew = 0.4;
  config.skew_fraction = 0.5;
  config.seed = seed;
  util::Rng rng(seed);
  pcn::Network network = sim::build_network(config, rng);
  const core::M3DoubleAuction m3;
  sim::MechanismBackend backend(m3);
  for (int i = 0; i < 32; ++i) {
    if (backend.rebalance(network, config.policy).cycles_executed == 0) break;
  }
  return pcn::extract_game(network, config.policy).game;
}

std::vector<core::PlayerId> buyer_set(const core::Game& game,
                                      const core::BidVector& bids) {
  std::vector<bool> is_buyer(static_cast<std::size_t>(game.num_players()),
                             false);
  for (core::EdgeId e = 0; e < game.num_edges(); ++e) {
    if (bids.head[static_cast<std::size_t>(e)] > 0.0) {
      is_buyer[static_cast<std::size_t>(game.edge(e).to)] = true;
    }
  }
  std::vector<core::PlayerId> buyers;
  for (core::PlayerId v = 0; v < game.num_players(); ++v) {
    if (is_buyer[static_cast<std::size_t>(v)]) buyers.push_back(v);
  }
  return buyers;
}

struct SweepResult {
  double seconds = 0.0;
  long long allocs = 0;
  long long solves = 0;
  flow::Amount checksum = 0;  // sum of all exclusion flows (dead-code sink)
  flow::Circulation last;     // cross-checked between the two paths
};

/// The historic path: every exclusion re-solve constructs G_{-v} and a
/// fresh workspace (the legacy solve_max_welfare allocates its scratch
/// per call, exactly as the pre-SolveContext code did).
SweepResult sweep_fresh(const core::Game& game, const core::BidVector& bids,
                        const std::vector<core::PlayerId>& buyers,
                        flow::SolverKind kind, int reps) {
  SweepResult r;
  const auto t0 = std::chrono::steady_clock::now();
  const long long a0 = g_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < reps; ++rep) {
    const flow::Graph g = game.build_graph(bids);
    r.last = flow::solve_max_welfare(g, kind);
    ++r.solves;
    for (const core::PlayerId v : buyers) {
      const flow::Graph g_minus = game.build_graph_without(bids, v);
      const flow::Circulation f = flow::solve_max_welfare(g_minus, kind);
      for (const flow::Amount a : f) r.checksum += a;
      ++r.solves;
    }
  }
  r.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  r.seconds = seconds_since(t0);
  return r;
}

/// The zero-rebuild path: bind once, mask per buyer.
SweepResult sweep_reuse(const core::Game& game, const core::BidVector& bids,
                        const std::vector<core::PlayerId>& buyers,
                        flow::SolverKind kind, int reps) {
  SweepResult r;
  flow::SolveContext ctx;
  const auto t0 = std::chrono::steady_clock::now();
  const long long a0 = g_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < reps; ++rep) {
    game.bind_graph(ctx, bids);
    r.last = ctx.solve(kind);
    ++r.solves;
    for (const core::PlayerId v : buyers) {
      ctx.mask_player(v);
      const flow::Circulation f = ctx.solve(kind);
      ctx.unmask();
      for (const flow::Amount a : f) r.checksum += a;
      ++r.solves;
    }
  }
  r.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  r.seconds = seconds_since(t0);
  return r;
}

}  // namespace

int main() {
  const bool short_mode = [] {
    const char* v = std::getenv("MUSK_BENCH_SHORT");
    return v != nullptr && *v != '\0' && *v != '0';
  }();

  std::printf("solve_reuse: fresh-build vs SolveContext reuse%s\n\n",
              short_mode ? " (short mode)" : "");
  util::BenchReport bench("solve_reuse");
  bench.config("short_mode", short_mode);

  // ------------------------------- (a) M2 VCG exclusion sweep
  std::printf("(a) M2 VCG exclusion sweep on steady-state games, "
              "single-threaded,\nbit-identical results checked\n\n");
  util::Table table({"n", "edges", "buyers", "solves", "fresh s", "reuse s",
                     "speedup", "fresh allocs", "reuse allocs",
                     "reuse solves/s"});
  std::vector<flow::NodeId> sizes{50, 200, 800};
  if (short_mode) sizes = {50, 200};
  double speedup_200 = 0.0;
  for (const flow::NodeId n : sizes) {
    const core::Game game = settled_game(n, 5);
    core::BidVector bids = game.truthful_bids();
    for (double& t : bids.tail) t = 0.0;  // M2's buyers-only profile
    const std::vector<core::PlayerId> buyers = buyer_set(game, bids);
    const int reps = short_mode ? 6 : (n <= 50 ? 40 : n <= 200 ? 20 : 4);
    const auto kind = flow::SolverKind::kBellmanFord;  // M2's default

    const SweepResult fresh = sweep_fresh(game, bids, buyers, kind, reps);
    const SweepResult reuse = sweep_reuse(game, bids, buyers, kind, reps);
    MUSK_ASSERT_MSG(
        fresh.last == reuse.last && fresh.checksum == reuse.checksum,
        "reuse path diverged from fresh path");
    MUSK_ASSERT(fresh.solves == reuse.solves);
    const double speedup = fresh.seconds / reuse.seconds;
    if (n == 200) speedup_200 = speedup;

    bench.add_seconds(util::format("vcg_sweep_fresh/n%d", n), fresh.seconds,
                      static_cast<std::uint64_t>(fresh.solves));
    bench.add_seconds(util::format("vcg_sweep_reuse/n%d", n), reuse.seconds,
                      static_cast<std::uint64_t>(reuse.solves));
    table.add_row(
        {util::fmt_int(n), util::fmt_int(game.num_edges()),
         util::fmt_int(static_cast<long long>(buyers.size())),
         util::fmt_int(fresh.solves), util::fmt_double(fresh.seconds, 3),
         util::fmt_double(reuse.seconds, 3),
         util::format("%.2fx", speedup), util::fmt_int(fresh.allocs),
         util::fmt_int(reuse.allocs),
         util::fmt_double(static_cast<double>(reuse.solves) / reuse.seconds,
                          0)});
  }
  table.print();
  util::maybe_export_csv(table, "solve_reuse_vcg");
  // The acceptance gate: reuse must at least halve the n=200 sweep.
  MUSK_ASSERT_MSG(speedup_200 >= 2.0,
                  "SolveContext reuse must be >= 2x at n=200");

  // ------------------------------- (b) epoch-service clearing
  const int epochs = short_mode ? 100 : 1000;
  std::printf("\n(b) %d quiescent epochs through svc::RebalanceService "
              "(M3, no payment traffic)\n\n", epochs);
  sim::SimulationConfig sim_config;
  sim_config.num_nodes = 64;
  sim_config.initial_skew = 0.4;
  sim_config.skew_fraction = 0.5;
  sim_config.seed = 99;
  util::Rng net_rng(sim_config.seed);
  pcn::Network network = sim::build_network(sim_config, net_rng);
  const core::M3DoubleAuction mechanism;
  svc::ServiceConfig service_config;
  service_config.policy = sim_config.policy;
  svc::RebalanceService service(network, mechanism, service_config);

  // Warm up until the network is quiescent so the timed region measures
  // the steady-state clearing path only.
  int warmup = 0;
  while (service.run_epoch().cycles_executed != 0) ++warmup;

  long long rebuilds = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const long long a0 = g_allocs.load(std::memory_order_relaxed);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rebuilds += service.run_epoch().graph_rebuilds;
  }
  const long long allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  const double secs = seconds_since(t0);

  bench.add_seconds("service_epoch", secs,
                    static_cast<std::uint64_t>(epochs));
  util::Table svc_table({"epochs", "warmup", "rebuilds", "epochs/s",
                         "allocs/epoch"});
  svc_table.add_row(
      {util::fmt_int(epochs), util::fmt_int(warmup), util::fmt_int(rebuilds),
       util::fmt_double(static_cast<double>(epochs) / secs, 0),
       util::fmt_double(static_cast<double>(allocs) / epochs, 1)});
  svc_table.print();
  util::maybe_export_csv(svc_table, "solve_reuse_service");

  // The acceptance gate: steady-state clears perform no graph rebuilds.
  MUSK_ASSERT_MSG(rebuilds == 0,
                  "steady-state service epochs must not rebuild the graph");
  return 0;
}
