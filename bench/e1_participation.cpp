// E1 — the headline claim: involving *all* users (Musketeer's double
// auction) rebalances more liquidity and creates more welfare than
// buyers-only global rebalancing (Hide & Seek), local search, or nothing.
//
// Sweeps topology family and network size; reports rebalanced volume and
// realized welfare per strategy, plus the seller-participation ablation
// (Musketeer's advantage grows with the share of indifferent channels).
#include <cstdio>
#include <functional>

#include "core/baselines.hpp"
#include "core/m3_double_auction.hpp"
#include "gen/game_gen.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

struct Row {
  double volume = 0.0;
  double welfare = 0.0;
};

Row evaluate(const core::Mechanism& mechanism, const core::Game& game) {
  const core::Outcome outcome = mechanism.run_truthful(game);
  return Row{static_cast<double>(flow::total_volume(outcome.circulation)),
             outcome.realized_welfare(game)};
}

}  // namespace

int main() {
  util::BenchReport bench("e1_participation");
  bench.config("trials_per_cell", std::int64_t{5});
  const obs::Timer bench_timer;
  std::printf("E1: all-user participation vs baselines "
              "(volume = rebalanced coins, SW = realized welfare)\n\n");

  util::Rng rng(20240601);
  const core::NoRebalancing none;
  const core::LocalRebalancing local(4, 0.001);
  const core::HideSeek hide_seek;
  const core::M3DoubleAuction musketeer;

  using TopologyFn =
      std::function<gen::Topology(flow::NodeId, util::Rng&)>;
  const std::pair<const char*, TopologyFn> topologies[] = {
      {"barabasi-albert", [](flow::NodeId n, util::Rng& r) {
         return gen::barabasi_albert(n, 2, r);
       }},
      {"erdos-renyi", [](flow::NodeId n, util::Rng& r) {
         return gen::erdos_renyi(n, 6.0 / static_cast<double>(n), r);
       }},
      {"watts-strogatz", [](flow::NodeId n, util::Rng& r) {
         return gen::watts_strogatz(n, 2, 0.1, r);
       }},
  };

  util::Table table({"topology", "n", "local vol", "hide&seek vol",
                     "musketeer vol", "local SW", "hide&seek SW",
                     "musketeer SW", "SW gain vs h&s"});
  for (const auto& [name, make_topology] : topologies) {
    for (flow::NodeId n : {20, 50, 100, 200}) {
      util::Accumulator lv, hv, mv, lc_sw, hs_sw, mk_sw;
      for (int trial = 0; trial < 5; ++trial) {
        gen::GameConfig config;
        config.depleted_share = 0.3;
        const gen::Topology topology = make_topology(n, rng);
        const core::Game game = gen::random_game(n, topology, config, rng);
        const Row l = evaluate(local, game);
        const Row h = evaluate(hide_seek, game);
        const Row m = evaluate(musketeer, game);
        lv.add(l.volume);
        hv.add(h.volume);
        mv.add(m.volume);
        lc_sw.add(l.welfare);
        hs_sw.add(h.welfare);
        mk_sw.add(m.welfare);
      }
      table.add_row(
          {name, util::fmt_int(n), util::fmt_double(lv.mean(), 0),
           util::fmt_double(hv.mean(), 0), util::fmt_double(mv.mean(), 0),
           util::fmt_double(lc_sw.mean(), 3),
           util::fmt_double(hs_sw.mean(), 3),
           util::fmt_double(mk_sw.mean(), 3),
           util::format("%.2fx", hs_sw.mean() > 0
                                     ? mk_sw.mean() / hs_sw.mean()
                                     : 0.0)});
    }
  }
  table.print();
  util::maybe_export_csv(table, "e1_participation");

  // Ablation: Musketeer's edge over Hide & Seek vs seller share. With no
  // indifferent channels the two coincide; the more sellers, the larger
  // the advantage (the paper's core motivation).
  std::printf("\nablation: welfare vs depleted-channel share "
              "(n=100, barabasi-albert):\n\n");
  util::Table ablation({"depleted share", "hide&seek SW", "musketeer SW",
                        "gain"});
  for (double share : {1.0, 0.7, 0.5, 0.3, 0.15}) {
    util::Accumulator hs_sw, mk_sw;
    for (int trial = 0; trial < 5; ++trial) {
      gen::GameConfig config;
      config.depleted_share = share;
      const core::Game game = gen::random_ba_game(100, 2, config, rng);
      hs_sw.add(evaluate(hide_seek, game).welfare);
      mk_sw.add(evaluate(musketeer, game).welfare);
    }
    ablation.add_row({util::fmt_double(share, 2),
                      util::fmt_double(hs_sw.mean(), 3),
                      util::fmt_double(mk_sw.mean(), 3),
                      util::format("%.2fx", hs_sw.mean() > 0
                                                ? mk_sw.mean() / hs_sw.mean()
                                                : 0.0)});
  }
  ablation.print();
  util::maybe_export_csv(ablation, "e1_ablation");
  std::printf("\nexpected shape: in realized welfare, musketeer >= hide&seek "
              "and musketeer >= local\neverywhere (raw volume counts every "
              "traversed edge, so long local cycles can\ninflate it); the "
              "welfare gain over hide&seek grows as the depleted share\n"
              "shrinks — more seller liquidity to recruit.\n");
  (void)none;
  bench.add_seconds("total", bench_timer.seconds(), 60);
  return 0;
}
