// E6 — the M4 delay mechanism under the microscope: release-time
// distribution vs the delay factor d, the welfare-to-delay trade-off,
// and the clamping regime where truthfulness erodes.
//
// Expected shape: larger d => later releases (delays scale as 1 - SW/d)
// but no clamping and exact per-cycle truthfulness; small d => cycles
// clamp at t=0, the bonus saturates, and underbidding starts to pay.
#include <cstdio>

#include "core/m4_delayed.hpp"
#include "core/properties.hpp"
#include "gen/game_gen.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

const std::vector<double> kScales{0.25, 0.5, 0.75, 0.9, 1.1};

}  // namespace

int main() {
  util::BenchReport bench("e6_delays");
  bench.config("trials_per_d", std::int64_t{10});
  const obs::Timer bench_timer;
  std::printf("E6: M4 delay mechanics vs the delay factor d "
              "(10 random games per d)\n\n");

  util::Rng rng(555);
  util::Table table({"d", "mean release t", "p90 release t",
                     "clamped cycles%", "mean delay bonus",
                     "max deviation gain"});
  for (double d : {0.5, 2.0, 10.0, 50.0, 200.0}) {
    const core::M4DelayedAuction m4(d);
    util::Accumulator release, bonus, gains;
    int clamped = 0, cycles = 0;
    util::Rng trial_rng(555);  // same games for every d
    for (int trial = 0; trial < 10; ++trial) {
      gen::GameConfig config;
      config.depleted_share = 0.3;
      const core::Game game = gen::random_ba_game(12, 2, config, trial_rng);
      const core::Outcome outcome = m4.run_truthful(game);
      for (const core::PricedCycle& pc : outcome.cycles) {
        release.add(pc.release_time);
        bonus.add(pc.delay_bonus);
        ++cycles;
        clamped += (pc.release_time == 0.0);
      }
      // Deviation probe on two players per game.
      for (core::PlayerId v = 0;
           v < std::min<core::PlayerId>(2, game.num_players()); ++v) {
        gains.add(core::probe_truthfulness(m4, game, v, kScales).gain());
      }
    }
    table.add_row(
        {util::fmt_double(d, 1),
         release.empty() ? "-" : util::fmt_double(release.mean(), 3),
         release.empty() ? "-" : util::fmt_double(release.quantile(0.9), 3),
         cycles ? util::fmt_double(100.0 * clamped / cycles, 1) : "-",
         bonus.empty() ? "-" : util::fmt_double(bonus.mean(), 4),
         gains.empty() ? "-" : util::format("%.5f", gains.max())});
  }
  table.print();

  std::printf("\nwelfare/delay trade-off on one game, by d:\n\n");
  util::Table trade({"d", "realized SW", "welfare-weighted mean delay",
                     "total delay bonus paid"});
  gen::GameConfig config;
  config.depleted_share = 0.3;
  util::Rng one(808);
  const core::Game game = gen::random_ba_game(30, 2, config, one);
  for (double d : {0.5, 2.0, 10.0, 50.0}) {
    const core::Outcome outcome = core::M4DelayedAuction(d).run_truthful(game);
    double sw = outcome.realized_welfare(game);
    double weighted_delay = 0.0, weight = 0.0, bonus_total = 0.0;
    for (const core::PricedCycle& pc : outcome.cycles) {
      const double w = game.cycle_welfare(game.truthful_bids(), pc.cycle);
      weighted_delay += w * pc.release_time;
      weight += w;
      bonus_total +=
          pc.delay_bonus * static_cast<double>(pc.cycle.length());
    }
    trade.add_row({util::fmt_double(d, 1), util::fmt_double(sw, 4),
                   util::fmt_double(weight > 0 ? weighted_delay / weight : 0,
                                    3),
                   util::fmt_double(bonus_total, 4)});
  }
  trade.print();
  std::printf("\nreading guide: the liquidity outcome is d-independent (the\n"
              "circulation ignores d); what d buys is incentive quality.\n"
              "Small d clamps releases at t=0, the delay bonus saturates,\n"
              "and deviation gains rise *above* the d-independent baseline\n"
              "(that baseline is the cycle-selection externality measured\n"
              "in E3 — it persists for every d). Larger d removes the\n"
              "clamping component at the price of slower releases: the\n"
              "paper's \"economic efficiency only w.r.t. liquidity\"\n"
              "trade-off, quantified.\n");
  bench.add_seconds("total", bench_timer.seconds(), 50);
  return 0;
}
