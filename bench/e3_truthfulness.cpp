// E3 — truthfulness, measured: best-response deviation gains per
// mechanism, on (a) single-cycle instances where the paper's theorems
// are airtight, and (b) general multi-cycle games where cycle-selection
// externalities leave residual manipulability (see EXPERIMENTS.md).
//
// Expected shape: M3 gains strictly positive everywhere (first-price
// shading); M2 ~ 0 for buyers; M4 exactly 0 on single-cycle instances
// and small-but-nonzero on general games.
#include <cstdio>
#include <memory>

#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/properties.hpp"
#include "gen/game_gen.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

const std::vector<double> kScales{0.0, 0.25, 0.5, 0.7, 0.85, 0.95,
                                  1.05, 1.25, 1.5, 2.0};

core::Game random_ring_game(util::Rng& rng) {
  const auto n = static_cast<flow::NodeId>(rng.uniform_int(3, 8));
  core::Game game(n);
  for (flow::NodeId u = 0; u < n; ++u) {
    const auto v = static_cast<flow::NodeId>((u + 1) % n);
    if (rng.bernoulli(0.5)) {
      game.add_edge(u, v, rng.uniform_int(5, 50), 0.0,
                    rng.uniform_real(0.01, 0.05));
    } else {
      game.add_edge(u, v, rng.uniform_int(5, 50),
                    -rng.uniform_real(0.0, 0.004), 0.0);
    }
  }
  return game;
}

struct GainStats {
  util::Accumulator gain;
};

void probe_all_players(const core::Mechanism& mechanism,
                       const core::Game& game, GainStats& stats) {
  for (core::PlayerId v = 0; v < game.num_players(); ++v) {
    const core::DeviationReport r =
        core::probe_truthfulness(mechanism, game, v, kScales);
    stats.gain.add(r.gain());
  }
}

}  // namespace

int main() {
  util::BenchReport bench("e3_truthfulness");
  bench.config("ring_trials", std::int64_t{20});
  bench.config("ba_trials", std::int64_t{8});
  const obs::Timer bench_timer;
  std::printf("E3: best-response deviation gains "
              "(grid of %zu bid scalings per player)\n\n",
              kScales.size());
  util::Rng rng(31337);

  const core::M2Vcg m2;
  const core::M3DoubleAuction m3;
  const core::M4DelayedAuction m4(/*delay_factor=*/100.0);

  // (a) single-cycle instances: the regime of the paper's proofs.
  {
    GainStats g2, g3, g4;
    for (int trial = 0; trial < 20; ++trial) {
      const core::Game game = random_ring_game(rng);
      probe_all_players(m2, game, g2);
      probe_all_players(m3, game, g3);
      probe_all_players(m4, game, g4);
    }
    util::Table table({"mechanism", "mean gain", "max gain",
                       "players with gain>1e-9"});
    auto row = [&](const char* name, GainStats& s) {
      int manipulable = 0;
      for (double g : s.gain.values()) manipulable += (g > 1e-9);
      table.add_row({name, util::format("%.5f", s.gain.mean()),
                     util::format("%.5f", s.gain.max()),
                     util::format("%d/%zu", manipulable, s.gain.count())});
    };
    std::printf("(a) single-cycle (ring) instances:\n");
    row("M2-vcg", g2);
    row("M3-double-auction", g3);
    row("M4-delayed", g4);
    table.print();
  }

  // (b) general scale-free games: residual manipulability through cycle
  // selection (an honesty gap the brief announcement glosses over).
  {
    GainStats g2, g3, g4;
    for (int trial = 0; trial < 8; ++trial) {
      gen::GameConfig config;
      config.depleted_share = 0.35;
      const core::Game game = gen::random_ba_game(14, 2, config, rng);
      probe_all_players(m2, game, g2);
      probe_all_players(m3, game, g3);
      probe_all_players(m4, game, g4);
    }
    util::Table table({"mechanism", "mean gain", "median gain", "max gain",
                       "players with gain>1e-9"});
    auto row = [&](const char* name, GainStats& s) {
      int manipulable = 0;
      for (double g : s.gain.values()) manipulable += (g > 1e-9);
      table.add_row({name, util::format("%.5f", s.gain.mean()),
                     util::format("%.5f", s.gain.quantile(0.5)),
                     util::format("%.5f", s.gain.max()),
                     util::format("%d/%zu", manipulable, s.gain.count())});
    };
    std::printf("\n(b) general multi-cycle games:\n");
    row("M2-vcg", g2);
    row("M3-double-auction", g3);
    row("M4-delayed", g4);
    table.print();
  }

  std::printf(
      "\nexpected shape: (a) M3 manipulable (first-price shading), M2/M4\n"
      "gains = 0 exactly — the regime where Theorems 3 and 5 are airtight.\n"
      "(b) with multiple competing cycles, deviations can steer *which*\n"
      "cycles the welfare maximizer selects; M4's per-cycle utility stays\n"
      "bid-independent, but selection externalities create real residual\n"
      "gains the brief announcement's proof does not cover (documented in\n"
      "EXPERIMENTS.md). M3 remains the most manipulable throughout.\n");
  bench.add_seconds("total", bench_timer.seconds(), 28);
  return 0;
}
