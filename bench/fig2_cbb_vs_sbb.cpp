// FIG2 — reproduces Figure 2's separation between cyclic budget balance
// and strong budget balance.
//
// Player u's depleted edge (bid 0.1, capacity 11) participates in two
// candidate cycles: cycle A has two indifferent edges bidding -0.1 each
// (capacity 1), cycle B two free edges (capacity 10). Any IR pricing of
// cycle A alone runs a deficit of 0.1 per unit, so cyclic budget balance
// excludes A; strong budget balance may cross-subsidize A from B and run
// both. The bench constructs the instance, runs the CBB mechanism (M3),
// and contrasts it with the cross-subsidized strong-BB solution.
#include <cstdio>

#include "core/m3_double_auction.hpp"
#include "flow/solver.hpp"
#include "obs/trace.hpp"
#include "util/bench_json.hpp"

using namespace musketeer;

int main() {
  util::BenchReport bench("fig2_cbb_vs_sbb");
  bench.config("players", std::int64_t{5});
  const obs::Timer bench_timer;
  std::printf("FIG2: cyclic vs strong budget balance\n\n");

  // Valid bids must be strictly below the 10%% cap, so the figure's 0.1 /
  // -0.1 become 0.09 / -0.09 (the separation argument is unchanged:
  // per-unit cycle-A welfare is 0.09 - 0.18 < 0).
  const double buyer = 0.09, seller = -0.09;
  // Player 0 = u; cycle A via players 1, 2; cycle B via players 3, 4.
  // u's depleted inbound edge is split across the two cycles' entry
  // points: both cycles route through u's depleted channel (1->0 and
  // 4->0 model its two cycle memberships with capacities 1 and 10).
  core::Game game(5);
  // Cycle A: 0 -> 1 -> 2 -> 0? We want the depleted edge shared; keep the
  // paper's accounting: A = [u-edge (cap 1), two -0.09 edges],
  // B = [u-edge (cap 10), two free edges].
  const auto a1 = game.add_edge(0, 1, 1, seller, 0.0);
  const auto a2 = game.add_edge(1, 2, 1, seller, 0.0);
  const auto a3 = game.add_edge(2, 0, 1, 0.0, buyer);  // u buys, cycle A
  const auto b1 = game.add_edge(0, 3, 10, 0.0, 0.0);
  const auto b2 = game.add_edge(3, 4, 10, 0.0, 0.0);
  const auto b3 = game.add_edge(4, 0, 10, 0.0, buyer);  // u buys, cycle B
  (void)a1; (void)a2; (void)b1; (void)b2;

  const core::BidVector bids = game.truthful_bids();
  const flow::Graph g = game.build_graph(bids);

  // CBB mechanism (M3): only cycle B survives.
  const core::Outcome cbb = core::M3DoubleAuction().run(game, bids);
  flow::Amount cbb_volume_a = cbb.circulation[static_cast<std::size_t>(a3)];
  flow::Amount cbb_volume_b = cbb.circulation[static_cast<std::size_t>(b3)];

  // Strong-BB benchmark: run both cycles, cross-subsidizing A's deficit
  // from B's surplus. Total u payment = 0.2*0.9... = |2*seller|*1 per
  // unit of A plus 0 for B; average fee rate below u's bid.
  const double sbb_deficit_a = (buyer + 2 * seller) * 1.0;   // -0.09
  const double sbb_surplus_b = buyer * 10.0;                 //  0.90
  const double u_total_fee_sbb = -2.0 * seller * 1.0;        //  0.18
  const double u_rate_sbb = u_total_fee_sbb / 11.0;

  std::printf("cycle A (cap 1): per-unit welfare %.2f -> CBB infeasible\n",
              buyer + 2 * seller);
  std::printf("cycle B (cap 10): per-unit welfare %.2f -> always runs\n\n",
              buyer);
  std::printf("%-34s %10s %10s\n", "", "CBB (M3)", "strong BB");
  std::printf("%-34s %10lld %10d\n", "rebalanced on u's edge via cycle A",
              static_cast<long long>(cbb_volume_a), 1);
  std::printf("%-34s %10lld %10d\n", "rebalanced on u's edge via cycle B",
              static_cast<long long>(cbb_volume_b), 10);
  std::printf("%-34s %10lld %10d\n", "total rebalanced liquidity for u",
              static_cast<long long>(cbb_volume_a + cbb_volume_b), 11);
  std::printf("%-34s %10s %10.4f\n", "u's average fee rate", "0.0000",
              u_rate_sbb);
  std::printf("\nstrong-BB internals: cycle A deficit %.2f funded by cycle "
              "B surplus %.2f\n",
              sbb_deficit_a, sbb_surplus_b);
  std::printf("=> strong budget balance admits strictly more rebalancing "
              "(11 vs %lld units)\n   but needs cross-cycle transfers that "
              "PCN cycles cannot execute atomically;\n   u still pays below "
              "its 0.09 bid (%.4f), so the SBB solution is IR.\n",
              static_cast<long long>(cbb_volume_a + cbb_volume_b),
              u_rate_sbb);

  // Sanity: the CBB solution is the welfare optimum (cycle A has negative
  // welfare and is rightly excluded).
  std::printf("\nwelfare check: CBB circulation SW = %.4f (optimal: %s)\n",
              flow::welfare(g, cbb.circulation),
              flow::is_optimal(g, cbb.circulation) ? "yes" : "no");
  bench.add_seconds("total", bench_timer.seconds(), 1);
  return 0;
}
