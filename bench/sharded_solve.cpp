// sharded_solve — the component-sharded epoch solve, measured.
//
// Sweeps cluster count (how many weakly-connected components the bid
// graph splits into) against executor thread count, timing repeated
// rebind+solve rounds through one SolveContext — the epoch service's
// steady-state clearing loop. The monolithic baseline (threads=1) runs
// every negative-cycle search over ALL arcs; the sharded path scans only
// the owning component's arcs per search, so the work drops by roughly
// the component count even before any parallelism — which is what the
// acceptance gate checks (>= 2x on the 8-cluster n=400 game), keeping it
// meaningful on single-core CI runners. Thread counts beyond 1 add
// wall-clock parallelism on multi-core hosts.
//
// Every sharded solve is cross-checked bit-for-bit against the
// monolithic circulation. Set MUSK_BENCH_SHORT=1 for the CI smoke
// variant (smaller clusters, fewer reps; same gate).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "flow/solve_context.hpp"
#include "flow/solver.hpp"
#include "gen/game_gen.hpp"
#include "svc/executor.hpp"
#include "util/assert.hpp"
#include "util/bench_json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace musketeer;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// `clusters` disjoint BA games glued into one Game with node offsets:
/// a bid graph with a known component structure.
core::Game clustered_game(int clusters, flow::NodeId nodes_per_cluster,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  core::Game merged(clusters * nodes_per_cluster);
  for (int c = 0; c < clusters; ++c) {
    gen::GameConfig config;
    config.depleted_share = 0.35;
    const core::Game part =
        gen::random_ba_game(nodes_per_cluster, 2, config, rng);
    const flow::NodeId offset = c * nodes_per_cluster;
    for (core::EdgeId e = 0; e < part.num_edges(); ++e) {
      const core::GameEdge& edge = part.edge(e);
      merged.add_edge(edge.from + offset, edge.to + offset, edge.capacity,
                      edge.tail_valuation, edge.head_valuation);
    }
  }
  return merged;
}

struct RunResult {
  double seconds = 0.0;
  flow::Circulation last;
};

/// `reps` rebind+solve rounds through one context (executor == nullptr
/// selects the monolithic path).
RunResult run_epochs(const core::Game& game, flow::Executor* executor,
                     int reps) {
  const core::BidVector bids = game.truthful_bids();
  flow::SolveContext ctx;
  ctx.set_executor(executor);
  game.bind_graph(ctx, bids);  // structure build outside the timed region
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  for (int rep = 0; rep < reps; ++rep) {
    game.bind_graph(ctx, bids);  // rebind: dirties every component
    r.last = ctx.solve(flow::SolverKind::kBellmanFord);
  }
  r.seconds = seconds_since(t0);
  return r;
}

}  // namespace

int main() {
  const bool short_mode = [] {
    const char* v = std::getenv("MUSK_BENCH_SHORT");
    return v != nullptr && *v != '\0' && *v != '0';
  }();

  const flow::NodeId nodes_per_cluster = short_mode ? 25 : 50;
  const int reps = short_mode ? 3 : 10;
  const std::vector<int> cluster_counts{1, 4, 8};
  const std::vector<int> thread_counts{1, 2, 8};

  std::printf("sharded_solve: component-sharded vs monolithic epoch solve%s\n"
              "(%d nodes per cluster, %d rebind+solve reps per cell)\n\n",
              short_mode ? " (short mode)" : "", nodes_per_cluster, reps);
  util::BenchReport bench("sharded_solve");
  bench.config("short_mode", short_mode);
  bench.config("nodes_per_cluster", static_cast<std::int64_t>(nodes_per_cluster));
  bench.config("reps", static_cast<std::int64_t>(reps));

  util::Table table({"clusters", "nodes", "edges", "threads", "seconds",
                     "solves/s", "speedup vs mono"});
  double gate_speedup = 0.0;
  for (const int clusters : cluster_counts) {
    const core::Game game =
        clustered_game(clusters, nodes_per_cluster, /*seed=*/7);
    const RunResult mono = run_epochs(game, nullptr, reps);
    bench.add_seconds(util::format("solve/mono/c%d", clusters), mono.seconds,
                      static_cast<std::uint64_t>(reps));
    table.add_row({util::fmt_int(clusters), util::fmt_int(game.num_players()),
                   util::fmt_int(game.num_edges()), "1 (mono)",
                   util::fmt_double(mono.seconds, 3),
                   util::fmt_double(reps / mono.seconds, 1), "1.00x"});
    for (const int threads : thread_counts) {
      if (threads == 1) continue;  // concurrency 1 IS the monolith path
      svc::ParallelExecutor executor(threads);
      const RunResult sharded = run_epochs(game, &executor, reps);
      MUSK_ASSERT_MSG(sharded.last == mono.last,
                      "sharded solve diverged from monolithic solve");
      const double speedup = mono.seconds / sharded.seconds;
      if (clusters == 8 && threads == 8) gate_speedup = speedup;
      bench.add_seconds(
          util::format("solve/t%d/c%d", threads, clusters), sharded.seconds,
          static_cast<std::uint64_t>(reps));
      table.add_row(
          {util::fmt_int(clusters), util::fmt_int(game.num_players()),
           util::fmt_int(game.num_edges()), util::fmt_int(threads),
           util::fmt_double(sharded.seconds, 3),
           util::fmt_double(reps / sharded.seconds, 1),
           util::format("%.2fx", speedup)});
    }
  }
  table.print();
  util::maybe_export_csv(table, "sharded_solve");

  std::printf("\n8-cluster speedup at 8 threads: %.2fx\n", gate_speedup);
  // The acceptance gate: on the 8-component game the sharded solve must
  // at least halve the epoch-solve time. The bound holds even on one
  // core — each negative-cycle search scans ~1/8 of the arcs.
  MUSK_ASSERT_MSG(gate_speedup >= 2.0,
                  "sharded solve must be >= 2x on the 8-cluster game");
  return 0;
}
