// Chaos suite: kill the daemon at every fault-injection point and prove
// the restarted one converges to the fault-free run — same state_digest,
// same channel/lock state, every outcome applied exactly once, and
// client resubmission never landing two bids for one player and epoch.
//
// Every test skips unless the build carries -DMUSKETEER_FAULTS (the
// `chaos` preset); the suite is compiled into the default build so the
// fault spec grammar itself is always link-checked.
//
// CI runs the suite several times with MUSK_CHAOS_SEED=<n>; the seeded
// test derives a crash schedule from that seed so each run kills the
// daemon somewhere else. When MUSK_CHAOS_ARTIFACTS names a directory,
// journals and fault schedules land there for upload on failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/mechanism_factory.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc/snapshot.hpp"
#include "svc_test_util.hpp"
#include "util/deadline.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace musketeer::svc {
namespace {

namespace fault = util::fault;

using testutil::expect_networks_equal;
using testutil::make_network;
using testutil::small_config;

constexpr int kTotalEpochs = 4;
constexpr int kCrashEpoch = 1;

#define SKIP_WITHOUT_FAULTS()                                  \
  do {                                                         \
    if (!fault::compiled_in()) {                               \
      GTEST_SKIP() << "built without -DMUSKETEER_FAULTS";      \
    }                                                          \
  } while (0)

/// Scratch location for journals: the artifact directory when CI set one
/// (so failed runs upload their evidence), TempDir otherwise.
std::string scratch_path(const std::string& name) {
  std::string dir;
  if (const char* artifacts = std::getenv("MUSK_CHAOS_ARTIFACTS")) {
    dir = std::string(artifacts) + "/";
  } else {
    dir = ::testing::TempDir();
  }
  std::string path = dir + "chaos_" + name;
  std::replace(path.begin(), path.end(), '.', '_');
  testutil::remove_journal_files(path);
  return path;
}

void log_artifact(const std::string& name, const std::string& text) {
  if (const char* artifacts = std::getenv("MUSK_CHAOS_ARTIFACTS")) {
    std::ofstream out(std::string(artifacts) + "/" + name,
                      std::ios::app);
    out << text << "\n";
  }
}

struct Baseline {
  pcn::Network final_net{0};
  std::vector<EpochReport> reports;
};

/// The fault-free oracle: the same genesis network cleared for
/// `kTotalEpochs` truthful epochs (no journal, no faults).
Baseline run_baseline(const sim::SimulationConfig& config) {
  Baseline baseline;
  core::M3DoubleAuction mechanism;
  pcn::Network net = make_network(config);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = 0; epoch < kTotalEpochs; ++epoch) {
    baseline.reports.push_back(service.run_epoch());
  }
  baseline.final_net = net;
  return baseline;
}

/// One full kill/restart cycle: run a journaled service, arm `spec` just
/// before epoch `crash_epoch`, let the crash rip through run_epoch with
/// no cleanup, then "reboot" — reopen the journal, replay it onto a
/// fresh genesis network, and resume until kTotalEpochs have settled.
/// Returns the recovery report for the caller's exactly-once checks.
RecoveryReport crash_and_recover(
    const sim::SimulationConfig& config, const std::string& journal_path,
    const std::string& spec, int crash_epoch, const Baseline& baseline,
    const std::function<void(ServiceConfig&)>& tweak = {}) {
  core::M3DoubleAuction mechanism;
  log_artifact("schedules.txt", journal_path + ": " + spec);
  {
    Journal journal(journal_path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    if (tweak) tweak(service_config);
    RebalanceService service(net, mechanism, service_config);
    for (int epoch = 0; epoch < crash_epoch; ++epoch) service.run_epoch();
    fault::configure(spec);
    EXPECT_THROW(service.run_epoch(), fault::CrashPoint)
        << "spec " << spec << " did not kill epoch " << crash_epoch;
    fault::clear();
  }  // the dead process: service and journal abandoned mid-epoch

  Journal journal(journal_path);
  pcn::Network net = make_network(config);
  const RecoveryReport recovery = replay_journal(journal, net, config.policy);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.first_epoch = recovery.next_epoch;
  if (tweak) tweak(service_config);
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = recovery.next_epoch; epoch < kTotalEpochs; ++epoch) {
    const EpochReport report = service.run_epoch();
    EXPECT_EQ(report.epoch, epoch);
    // Epoch numbering and per-epoch results line up with the oracle.
    EXPECT_EQ(report.network_digest,
              baseline.reports[static_cast<std::size_t>(epoch)].network_digest)
        << "spec " << spec << " diverged at epoch " << epoch;
  }
  EXPECT_EQ(service.epochs_cleared(), kTotalEpochs);
  EXPECT_EQ(net.state_digest(), baseline.final_net.state_digest())
      << "spec " << spec;
  expect_networks_equal(net, baseline.final_net);
  return recovery;
}

TEST(Chaos, RegistryAndScheduleGrammar) {
  SKIP_WITHOUT_FAULTS();
  const std::vector<std::string> expected = {
      "wire.client.send",      "wire.server.send",
      "sock.connect",          "journal.write",
      "journal.fsync",         "svc.crash_after_begin",
      "svc.crash_before_commit", "svc.crash_after_commit",
      "svc.crash_mid_settle",  "deadline.expire",
      "watchdog.fire",         "degrade.fail",
      "segment.roll",          "snapshot.write",
      "snapshot.rename",       "compact.unlink",
      "disk.full"};
  const std::vector<std::string> registered = fault::points();
  for (const std::string& point : expected) {
    EXPECT_NE(std::find(registered.begin(), registered.end(), point),
              registered.end())
        << "missing point " << point;
  }
  EXPECT_EQ(registered.size(), expected.size());

  fault::configure("seed=42;journal.write@2=corrupt;wire.client.send=drop");
  const std::string rendered = fault::schedule_string();
  EXPECT_NE(rendered.find("journal.write@2=corrupt"), std::string::npos);
  fault::configure(rendered);  // spec rendering round-trips

  EXPECT_THROW(fault::configure("no.such.point=crash"), std::runtime_error);
  EXPECT_THROW(fault::configure("journal.write@0=crash"), std::runtime_error);
  EXPECT_THROW(fault::configure("journal.write=explode"), std::runtime_error);
  EXPECT_THROW(fault::configure("journal.write"), std::runtime_error);
  fault::clear();

  // Hit counters tick even with nothing scheduled (observability).
  fault::hit("sock.connect");
  fault::hit("sock.connect");
  EXPECT_EQ(fault::hits("sock.connect"), 2u);
  fault::clear();
  EXPECT_EQ(fault::hits("sock.connect"), 0u);
}

// The tentpole's core claim: a kill -9 at any of the service's crash
// points — after BEGIN, before the commit fsync, after the commit,
// mid-settle — recovers to the exact fault-free state, with the epoch
// rolled back (pre-commit) or applied exactly once (post-commit).
TEST(Chaos, CrashAtEveryServicePointConverges) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  ASSERT_GT(baseline.reports[kCrashEpoch].game_edges, 0)
      << "crash epoch extracts an empty game; pick another seed";

  struct PointCase {
    const char* point;
    bool committed;  // true: outcome is durable, recovery must apply it
  };
  const PointCase cases[] = {
      {"svc.crash_after_begin", false},
      {"svc.crash_before_commit", false},
      {"svc.crash_after_commit", true},
      {"svc.crash_mid_settle", true},
  };
  for (const PointCase& c : cases) {
    SCOPED_TRACE(c.point);
    const RecoveryReport recovery = crash_and_recover(
        config, scratch_path(std::string(c.point) + ".jrn"),
        std::string(c.point) + "@1=crash", kCrashEpoch, baseline);
    if (c.committed) {
      EXPECT_TRUE(recovery.applied_inflight);
      EXPECT_EQ(recovery.rolled_back, 0);
      EXPECT_EQ(recovery.next_epoch, kCrashEpoch + 1);
      EXPECT_EQ(recovery.epochs_settled, kCrashEpoch + 1);
    } else {
      EXPECT_FALSE(recovery.applied_inflight);
      EXPECT_EQ(recovery.rolled_back, 1);
      EXPECT_EQ(recovery.next_epoch, kCrashEpoch);
      EXPECT_EQ(recovery.epochs_settled, kCrashEpoch);
    }
  }
}

TEST(Chaos, TornJournalWriteRecoversFromTruncatedTail) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  // Hits within the crash epoch: BEGIN is write 1, OUTCOME is write 2 —
  // tearing the OUTCOME mid-write models a crash during the commit.
  const RecoveryReport recovery = crash_and_recover(
      config, scratch_path("torn_outcome.jrn"), "journal.write@2=truncate",
      kCrashEpoch, baseline);
  EXPECT_FALSE(recovery.applied_inflight);
  EXPECT_EQ(recovery.rolled_back, 1);
  EXPECT_EQ(recovery.next_epoch, kCrashEpoch);

  // Dropping the whole BEGIN buffer mid-write tears the epoch earlier.
  const RecoveryReport begin_torn = crash_and_recover(
      config, scratch_path("torn_begin.jrn"), "journal.write@1=drop",
      kCrashEpoch, baseline);
  EXPECT_EQ(begin_torn.next_epoch, kCrashEpoch);
  EXPECT_EQ(begin_torn.epochs_settled, kCrashEpoch);
}

TEST(Chaos, SilentJournalCorruptionRecoversByRerunning) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  const std::string path = scratch_path("corrupt.jrn");
  core::M3DoubleAuction mechanism;
  {
    Journal journal(path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    RebalanceService service(net, mechanism, service_config);
    // Write 3 of epoch 0 is its SETTLED record: corrupt lands on disk
    // silently (bad sectors are found at the next open, not at write).
    fault::configure("seed=42;journal.write@3=corrupt");
    for (int epoch = 0; epoch < kTotalEpochs; ++epoch) service.run_epoch();
    fault::clear();
    EXPECT_EQ(net.state_digest(), baseline.final_net.state_digest());
  }

  // Restart: the open truncates from the corrupt SETTLED on, leaving
  // epoch 0 committed-unsettled. Recovery applies it once; the later
  // epochs were lost with the tail but re-running them is deterministic,
  // so the rebooted daemon still converges to the oracle.
  Journal journal(path);
  EXPECT_GT(journal.truncated_tail_bytes(), 0u);
  pcn::Network net = make_network(config);
  const RecoveryReport recovery = replay_journal(journal, net, config.policy);
  EXPECT_TRUE(recovery.applied_inflight);
  EXPECT_EQ(recovery.next_epoch, 1);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.first_epoch = recovery.next_epoch;
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = recovery.next_epoch; epoch < kTotalEpochs; ++epoch) {
    service.run_epoch();
  }
  EXPECT_EQ(net.state_digest(), baseline.final_net.state_digest());
  expect_networks_equal(net, baseline.final_net);
}

TEST(Chaos, FsyncFailureAbortsEpochReleasesLocksAndReusesNumber) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const std::string path = scratch_path("fsyncfail.jrn");
  core::M3DoubleAuction mechanism;
  Journal journal(path);
  pcn::Network net = make_network(config);
  const std::uint64_t genesis = net.state_digest();
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  RebalanceService service(net, mechanism, service_config);

  // Fsync 1 is the BEGIN, fsync 2 the OUTCOME commit: the commit cannot
  // be made durable, so the epoch must abort cleanly.
  fault::configure("journal.fsync@2=fail");
  EXPECT_THROW(service.run_epoch(), JournalError);
  fault::clear();

  // Clean abort: every lock released, network back at genesis, the
  // journal closed with ABORTED, the epoch number not consumed.
  EXPECT_EQ(net.state_digest(), genesis);
  for (pcn::ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(net.channel(c).locked_a, 0) << "channel " << c;
    EXPECT_EQ(net.channel(c).locked_b, 0) << "channel " << c;
  }
  ASSERT_FALSE(journal.records().empty());
  EXPECT_EQ(journal.records().back().type, RecordType::kAborted);
  EXPECT_EQ(service.epochs_cleared(), 0);

  // The service is not wedged: the next clear succeeds, reusing epoch 0.
  const EpochReport report = service.run_epoch();
  EXPECT_EQ(report.epoch, 0);
  EXPECT_EQ(service.epochs_cleared(), 1);

  // And recovery reads the shape back: one aborted epoch, one settled.
  pcn::Network recovered = make_network(config);
  Journal reopened(path);
  const RecoveryReport recovery =
      replay_journal(reopened, recovered, config.policy);
  EXPECT_EQ(recovery.aborted_epochs, 1);
  EXPECT_EQ(recovery.epochs_settled, 1);
  EXPECT_EQ(recovery.next_epoch, 1);
  expect_networks_equal(recovered, net);
}

TEST(Chaos, DaemonRestartWithJournalResumesSeamlessly) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  const std::string path = scratch_path("daemon.jrn");

  DaemonConfig daemon_config;
  daemon_config.service.policy = config.policy;
  daemon_config.server.listen = "tcp:0";
  daemon_config.journal_path = path;
  {
    Daemon daemon(make_network(config), core::make_mechanism("m3", {}),
                  daemon_config);
    daemon.start(/*periodic_epochs=*/false);
    daemon.service().run_epoch();
    daemon.service().run_epoch();
    fault::configure("svc.crash_after_commit@1=crash");
    EXPECT_THROW(daemon.service().run_epoch(), fault::CrashPoint);
    fault::clear();
    daemon.stop();
  }

  Daemon daemon(make_network(config), core::make_mechanism("m3", {}),
                daemon_config);
  EXPECT_TRUE(daemon.recovery().applied_inflight);
  EXPECT_EQ(daemon.recovery().next_epoch, 3);
  EXPECT_EQ(daemon.recovery().epochs_settled, 3);
  daemon.start(/*periodic_epochs=*/false);
  const EpochReport report = daemon.service().run_epoch();
  EXPECT_EQ(report.epoch, 3);
  EXPECT_EQ(report.network_digest, baseline.reports[3].network_digest);
  expect_networks_equal(daemon.network_snapshot(), baseline.final_net);
  daemon.stop();
}

// --- checkpoint / compaction chaos ------------------------------------

/// Like crash_and_recover, but with checkpointing live (snapshot every 2
/// epochs, so the FIRST checkpoint runs inside epoch 1's run_epoch) and
/// recovery going through the snapshot-aware recover() path. The spec is
/// armed before epoch 1, whose trailing checkpoint is where the new
/// fault points fire. Asserts convergence to the oracle and returns the
/// recovery report for precedence checks.
RecoveryReport checkpoint_crash_and_recover(const sim::SimulationConfig& config,
                                            const std::string& path,
                                            const std::string& spec,
                                            const Baseline& baseline) {
  constexpr int kSnapshotEvery = 2;
  core::M3DoubleAuction mechanism;
  log_artifact("schedules.txt", path + ": " + spec);
  {
    Journal journal(path);
    SnapshotStore snapshots(path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    service_config.snapshots = &snapshots;
    service_config.snapshot_every = kSnapshotEvery;
    RebalanceService service(net, mechanism, service_config);
    service.run_epoch();
    fault::configure(spec);
    EXPECT_THROW(service.run_epoch(), fault::CrashPoint)
        << "spec " << spec << " did not kill the checkpoint";
    fault::clear();
  }  // dead process, mid-checkpoint

  // Epoch 1 settled before the checkpoint began, so whatever the crash
  // left on disk, recovery must land on the epoch-2 boundary.
  Journal journal(path);
  SnapshotStore snapshots(path);
  pcn::Network net = make_network(config);
  const RecoveryReport recovery = recover(journal, snapshots, net,
                                          config.policy);
  EXPECT_EQ(recovery.next_epoch, 2) << "spec " << spec;
  EXPECT_EQ(net.state_digest(), baseline.reports[1].network_digest)
      << "spec " << spec;

  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.snapshots = &snapshots;
  service_config.snapshot_every = kSnapshotEvery;
  service_config.first_epoch = recovery.next_epoch;
  service_config.initial_watermarks = recovery.watermarks;
  service_config.initial_ewma_seconds = recovery.ewma_seconds;
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = recovery.next_epoch; epoch < kTotalEpochs; ++epoch) {
    const EpochReport report = service.run_epoch();
    EXPECT_EQ(report.epoch, epoch);
    EXPECT_EQ(report.network_digest,
              baseline.reports[static_cast<std::size_t>(epoch)].network_digest)
        << "spec " << spec << " diverged at epoch " << epoch;
  }
  EXPECT_EQ(net.state_digest(), baseline.final_net.state_digest())
      << "spec " << spec;
  expect_networks_equal(net, baseline.final_net);
  return recovery;
}

// Kill -9 at every stage of the checkpoint protocol — before the roll,
// before the snapshot tmp write, between tmp write and rename, and
// after the rename but before compaction — must recover to the exact
// fault-free state. The epoch itself settled first, so nothing is ever
// lost; the crash only determines which artifacts recovery starts from.
TEST(Chaos, CrashAtEveryCheckpointPointConverges) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);

  {
    // Before the roll: no new segment, no snapshot — genesis replay.
    SCOPED_TRACE("segment.roll");
    const RecoveryReport recovery = checkpoint_crash_and_recover(
        config, scratch_path("ckpt_roll.jrn"), "segment.roll@1=crash",
        baseline);
    EXPECT_FALSE(recovery.from_snapshot);
    EXPECT_EQ(recovery.epochs_settled, 2);
  }
  {
    // Before the snapshot tmp write: segment rolled, no snapshot.
    SCOPED_TRACE("snapshot.write");
    const RecoveryReport recovery = checkpoint_crash_and_recover(
        config, scratch_path("ckpt_write.jrn"), "snapshot.write@1=crash",
        baseline);
    EXPECT_FALSE(recovery.from_snapshot);
  }
  {
    // Between tmp write and rename: an orphaned tmp, no snapshot.
    SCOPED_TRACE("snapshot.rename");
    const RecoveryReport recovery = checkpoint_crash_and_recover(
        config, scratch_path("ckpt_rename.jrn"), "snapshot.rename@1=crash",
        baseline);
    EXPECT_FALSE(recovery.from_snapshot);
  }
  {
    // After the rename, before compaction: snapshot AND the full
    // pre-checkpoint history both on disk — recovery must prefer the
    // snapshot (and tolerate the redundant segments).
    SCOPED_TRACE("compact.unlink");
    const std::string path = scratch_path("ckpt_unlink.jrn");
    const RecoveryReport recovery = checkpoint_crash_and_recover(
        config, path, "compact.unlink@1=crash", baseline);
    EXPECT_TRUE(recovery.from_snapshot);
    EXPECT_EQ(recovery.snapshot_epoch, 2);
    EXPECT_EQ(recovery.snapshots_discarded, 0);
    // The freshly rolled tail segment is always scanned, even though
    // nothing past the snapshot was ever written into it.
    EXPECT_EQ(recovery.segments_replayed, 1);
    EXPECT_EQ(recovery.epochs_settled, 0);
  }
}

// Bits rot on the way to disk: the checkpoint publishes a corrupt
// snapshot it cannot detect and dies. Recovery's end-to-end validation
// must reject it and fall back — here to genesis replay, since the
// first checkpoint never completed and segment 0 still exists.
TEST(Chaos, CorruptPublishedSnapshotDiscardedOnRecovery) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  const RecoveryReport recovery = checkpoint_crash_and_recover(
      config, scratch_path("ckpt_corrupt.jrn"),
      "seed=42;snapshot.write@1=corrupt", baseline);
  EXPECT_FALSE(recovery.from_snapshot);
  EXPECT_EQ(recovery.snapshots_discarded, 1);
  EXPECT_EQ(recovery.epochs_settled, 2);
}

// ENOSPC while writing the snapshot: the checkpoint fails, the service
// must shrug it off — the epoch is already durable in the journal, the
// previous snapshot and the live segments are untouched, and the next
// checkpoint simply tries again.
TEST(Chaos, DiskFullDuringSnapshotIsNonFatalAndPreservesPredecessor) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  const std::string path = scratch_path("ckpt_enospc.jrn");

  core::M3DoubleAuction mechanism;
  Journal journal(path);
  SnapshotStore snapshots(path);
  pcn::Network net = make_network(config);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.snapshots = &snapshots;
  service_config.snapshot_every = 2;
  RebalanceService service(net, mechanism, service_config);

  // Epochs 0-2 land normally, with the first checkpoint after epoch 1.
  service.run_epoch();
  service.run_epoch();
  service.run_epoch();
  ASSERT_EQ(snapshots.entries().size(), 1u);
  const std::uint64_t first_snapshot_segment = journal.oldest_segment();

  // Epoch 3's trailing checkpoint hits ENOSPC on the snapshot write:
  // the epoch's BEGIN/OUTCOME/SETTLED appends are disk.full hits 1-3,
  // the snapshot body is hit 4.
  fault::configure("disk.full@4=fail");
  const EpochReport report = service.run_epoch();
  fault::clear();

  // Non-fatal: the epoch settled and matches the oracle bit for bit.
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.network_digest, baseline.reports[3].network_digest);
  expect_networks_equal(net, baseline.final_net);
  // The failed snapshot disturbed nothing: same single valid snapshot,
  // no stray tmp promoted, no history compacted.
  ASSERT_EQ(snapshots.entries().size(), 1u);
  EXPECT_TRUE(snapshots.entries()[0].valid);
  EXPECT_EQ(journal.oldest_segment(), first_snapshot_segment);

  // And the service is not wedged: the next cadence boundary checkpoints
  // successfully.
  service.run_epoch();
  service.run_epoch();
  EXPECT_EQ(snapshots.entries().size(), 2u);
}

// A degraded epoch in the recovery tail: the epoch after the last
// checkpoint degrades down the ladder (DEGRADED records between BEGIN
// and OUTCOME), and a restart must replay it bit-for-bit from the
// snapshot, counting it as degraded.
TEST(Chaos, SnapshotThenDegradedTailReplaysExactly) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const std::string path = scratch_path("ckpt_degraded_tail.jrn");

  core::M3DoubleAuction mechanism;
  std::uint64_t live_digest = 0;
  {
    Journal journal(path);
    SnapshotStore snapshots(path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    service_config.snapshots = &snapshots;
    service_config.snapshot_every = 2;
    service_config.epoch_deadline = std::chrono::milliseconds(150);
    service_config.degradation_ladder = {"m2-minfee"};
    RebalanceService service(net, mechanism, service_config);
    // Checkpoints after epochs 1 and 3; deadline hit 5 is epoch 4's
    // primary attempt, so the degraded epoch is squarely in the tail.
    fault::configure("deadline.expire@5=delay:300");
    for (int epoch = 0; epoch < 5; ++epoch) {
      const EpochReport report = service.run_epoch();
      EXPECT_FALSE(report.aborted);
      EXPECT_EQ(report.degradation_level, epoch == 4 ? 1 : 0);
    }
    fault::clear();
    live_digest = net.state_digest();
  }

  Journal journal(path);
  SnapshotStore snapshots(path);
  pcn::Network net = make_network(config);
  const RecoveryReport recovery = recover(journal, snapshots, net,
                                          config.policy);
  EXPECT_TRUE(recovery.from_snapshot);
  EXPECT_EQ(recovery.snapshot_epoch, 4);
  EXPECT_EQ(recovery.degraded_epochs, 1);
  EXPECT_EQ(recovery.next_epoch, 5);
  EXPECT_EQ(net.state_digest(), live_digest);
}

// Recovery itself crashing (the close-out SETTLED append dies) and
// being retried must still apply the in-flight outcome exactly once.
TEST(Chaos, DoubleCrashDuringRecoveryStaysExactlyOnce) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  const std::string path = scratch_path("double_crash.jrn");

  core::M3DoubleAuction mechanism;
  {
    Journal journal(path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    RebalanceService service(net, mechanism, service_config);
    service.run_epoch();
    fault::configure("svc.crash_after_commit@1=crash");
    EXPECT_THROW(service.run_epoch(), fault::CrashPoint);
    fault::clear();
  }

  // First recovery attempt: the journal append of the close-out SETTLED
  // record is itself killed — the second crash.
  {
    Journal journal(path);
    pcn::Network net = make_network(config);
    fault::configure("journal.write@1=crash");
    EXPECT_THROW(replay_journal(journal, net, config.policy),
                 fault::CrashPoint);
    fault::clear();
  }

  // Second attempt sees the identical BEGIN+OUTCOME tail (the crashed
  // close-out wrote nothing durable) and applies the outcome once.
  Journal journal(path);
  pcn::Network net = make_network(config);
  const RecoveryReport recovery = replay_journal(journal, net, config.policy);
  EXPECT_TRUE(recovery.applied_inflight);
  EXPECT_EQ(recovery.next_epoch, 2);
  EXPECT_EQ(net.state_digest(), baseline.reports[1].network_digest);
  ASSERT_FALSE(journal.records().empty());
  EXPECT_EQ(journal.records().back().type, RecordType::kSettled);

  // Resume to the end of the oracle run.
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.first_epoch = recovery.next_epoch;
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = recovery.next_epoch; epoch < kTotalEpochs; ++epoch) {
    service.run_epoch();
  }
  expect_networks_equal(net, baseline.final_net);
}

// Duplicate suppression across a checkpointed restart: a sequenced bid
// drained into a committed epoch must still answer kDuplicate after the
// daemon reboots from a snapshot — the watermark rides the snapshot,
// not just the BEGIN payloads (which compaction may have removed).
TEST(Chaos, ResubmitAfterCheckpointedRestartIsDuplicate) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(11);
  const std::string path = scratch_path("restart_dup.jrn");

  DaemonConfig daemon_config;
  daemon_config.service.policy = config.policy;
  daemon_config.server.listen = "tcp:0";
  daemon_config.journal_path = path;
  daemon_config.snapshot_every = 1;
  {
    Daemon daemon(make_network(config), core::make_mechanism("m3", {}),
                  daemon_config);
    daemon.start(/*periodic_epochs=*/false);
    Client client(daemon.endpoint());
    BidSubmission bid;
    bid.player = 3;
    const BidAckMsg ack = client.submit(bid);
    ASSERT_EQ(ack.status, IntakeStatus::kAccepted);
    ASSERT_EQ(ack.seq, 1u);
    // Drained into epoch 0, committed, checkpointed (cadence 1), and
    // the covered segments compacted away.
    daemon.service().run_epoch();
    daemon.service().run_epoch();
    daemon.stop();
  }

  Daemon daemon(make_network(config), core::make_mechanism("m3", {}),
                daemon_config);
  EXPECT_TRUE(daemon.recovery().from_snapshot);
  daemon.start(/*periodic_epochs=*/false);
  // The ambiguous-timeout replay: same player, same pinned seq.
  Client client(daemon.endpoint());
  BidSubmission bid;
  bid.player = 3;
  bid.seq = 1;
  const BidAckMsg ack = client.submit(bid);
  EXPECT_EQ(ack.status, IntakeStatus::kDuplicate);
  EXPECT_EQ(daemon.service().intake_counters().accepted, 0u);
  daemon.stop();
}

// --- client-side resilience -------------------------------------------

ClientConfig resilient_config() {
  ClientConfig config;
  config.max_attempts = 5;
  config.backoff_base = std::chrono::milliseconds(10);
  config.backoff_max = std::chrono::milliseconds(80);
  config.jitter_seed = 7;
  return config;
}

std::unique_ptr<Daemon> wire_daemon(const sim::SimulationConfig& config,
                                    DaemonConfig daemon_config = {}) {
  daemon_config.service.policy = config.policy;
  daemon_config.server.listen = "tcp:0";
  auto daemon = std::make_unique<Daemon>(
      make_network(config), core::make_mechanism("m3", {}), daemon_config);
  daemon->start(/*periodic_epochs=*/false);
  return daemon;
}

TEST(Chaos, DroppedSubmitFrameRetriedIdempotently) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(11);
  auto daemon = wire_daemon(config);

  Client client(daemon->endpoint(), resilient_config());
  client.hello(0);
  // configure() resets hit counters, so the next client send — the
  // submit — is hit 1, and it vanishes on the wire.
  fault::configure("wire.client.send@1=drop");
  BidSubmission bid;
  bid.player = 3;
  const BidAckMsg ack = client.submit(bid, std::chrono::milliseconds(300));
  fault::clear();

  // The first copy never reached the server, so the retry is the one
  // and only intake: accepted, not duplicate.
  EXPECT_EQ(ack.status, IntakeStatus::kAccepted);
  const IntakeCounters counters = daemon->service().intake_counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.duplicate, 0u);
  EXPECT_EQ(daemon->service().run_epoch().bids_applied, 1u);
  daemon->stop();
}

TEST(Chaos, LostAckResubmissionDedupedBySequence) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(11);
  auto daemon = wire_daemon(config);

  Client client(daemon->endpoint(), resilient_config());
  // No hello: the server's first send is the bid ack. Drop it — the
  // classic ambiguous timeout where the bid landed but the client
  // cannot know.
  fault::configure("wire.server.send@1=drop");
  BidSubmission bid;
  bid.player = 5;
  const BidAckMsg ack = client.submit(bid, std::chrono::milliseconds(300));
  fault::clear();

  // The resubmitted copy was collapsed by the sequence watermark: the
  // earlier intake stands, exactly one bid is queued for the player.
  EXPECT_EQ(ack.status, IntakeStatus::kDuplicate);
  EXPECT_EQ(ack.seq, 1u);
  const IntakeCounters counters = daemon->service().intake_counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.duplicate, 1u);
  EXPECT_EQ(daemon->service().run_epoch().bids_applied, 1u);
  daemon->stop();
}

TEST(Chaos, TruncatedFrameEventuallyLandsExactlyOnce) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(11);
  auto daemon = wire_daemon(config);

  Client client(daemon->endpoint(), resilient_config());
  // Truncating the submit leaves the server's parser mid-frame; the
  // retry's bytes then misparse, the server errors the connection, and
  // the client reconnects and resubmits the pinned sequence number.
  fault::configure("wire.client.send@1=truncate");
  BidSubmission bid;
  bid.player = 3;
  const BidAckMsg ack = client.submit(bid, std::chrono::milliseconds(300));
  fault::clear();

  EXPECT_TRUE(intake_ok(ack.status) ||
              ack.status == IntakeStatus::kDuplicate)
      << to_string(ack.status);
  const IntakeCounters counters = daemon->service().intake_counters();
  EXPECT_EQ(counters.accepted, 1u);
  // Exactly one bid in the queue, for the right player.
  const EpochReport report = daemon->service().run_epoch();
  EXPECT_EQ(report.bids_applied, 1u);
  daemon->stop();
}

TEST(Chaos, ConnectFailureRetriedWithBackoff) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(11);
  auto daemon = wire_daemon(config);

  // Fail-fast construction surfaces the connect error unchanged...
  fault::configure("sock.connect@1=fail");
  EXPECT_THROW(Client probe(daemon->endpoint()), std::runtime_error);
  fault::clear();

  // ...while a resilient client rides through a refused reconnect.
  Client client(daemon->endpoint(), resilient_config());
  client.close();  // connection lost; next submit must reconnect
  fault::configure("sock.connect@1=fail");
  BidSubmission bid;
  bid.player = 2;
  const BidAckMsg ack = client.submit(bid, std::chrono::milliseconds(300));
  // Two connect attempts: the injected refusal, then the one that stuck.
  const std::uint64_t connects = fault::hits("sock.connect");
  fault::clear();
  EXPECT_EQ(ack.status, IntakeStatus::kAccepted);
  EXPECT_EQ(connects, 2u);
  daemon->stop();
}

TEST(Chaos, ShedConnectionCarriesRetryAfterHint) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(11);
  DaemonConfig daemon_config;
  daemon_config.server.max_connections = 1;
  daemon_config.server.shed_retry_after_ms = 123;
  auto daemon = wire_daemon(config, daemon_config);

  Client first(daemon->endpoint());
  BidSubmission bid;
  bid.player = 0;
  ASSERT_TRUE(intake_ok(first.submit(bid).status));

  // The second connection is shed at accept with a structured hint.
  bool saw_busy = false;
  try {
    Client second(daemon->endpoint());
    BidSubmission b1;
    b1.player = 1;
    second.submit(b1, std::chrono::milliseconds(500));
  } catch (const ServerBusyError& busy) {
    saw_busy = true;
    EXPECT_EQ(busy.retry_after_ms, 123u);
  } catch (const std::runtime_error&) {
    // The server closed before the error frame was read — rare loopback
    // race; the shed still happened, just without the hint observed.
  }
  EXPECT_TRUE(saw_busy);

  // Once the slot frees, a resilient client's backoff-and-retry loop
  // gets through on its own.
  first.close();
  Client third(daemon->endpoint(), resilient_config());
  BidSubmission b2;
  b2.player = 2;
  const BidAckMsg ack = third.submit(b2, std::chrono::milliseconds(500));
  EXPECT_TRUE(intake_ok(ack.status));
  daemon->stop();
}

// --- deadline / degradation chaos -------------------------------------

/// Wedges until cancelled: the deadline-chaos tests use it to make the
/// watchdog's intervention (and the crash scheduled on it) inevitable.
class WedgedMechanism : public core::Mechanism {
 public:
  std::string_view name() const override { return "wedged-test"; }
  bool claims_individual_rationality() const override { return false; }

 protected:
  core::Outcome run_impl(flow::SolveContext& ctx, const core::Game&,
                         const core::BidVector&) const override {
    for (;;) MUSK_CANCEL_POINT(ctx.cancel());
  }
};

/// Arms a (never-firing) deadline on every epoch so the deadline fault
/// points are live, without changing any outcome.
void with_deadline(ServiceConfig& config) {
  config.epoch_deadline = std::chrono::milliseconds(60000);
}

// Crashing at the moment an attempt arms its deadline — or at the
// moment a degradation rung is journaled — must recover exactly like
// any other pre-commit kill: the epoch rolls back and the rebooted
// daemon converges to the fault-free oracle.
TEST(Chaos, CrashAtDeadlinePointsConverges) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  ASSERT_GT(baseline.reports[kCrashEpoch].game_edges, 0);

  {
    SCOPED_TRACE("deadline.expire");
    const RecoveryReport recovery = crash_and_recover(
        config, scratch_path("deadline_expire.jrn"),
        "deadline.expire@1=crash", kCrashEpoch, baseline, with_deadline);
    EXPECT_FALSE(recovery.applied_inflight);
    EXPECT_EQ(recovery.rolled_back, 1);
    EXPECT_EQ(recovery.next_epoch, kCrashEpoch);
  }
  {
    // A 300 ms injected delay burns the 150 ms deadline, so the primary
    // attempt is cancelled deterministically; the crash then lands on
    // the degrade.fail hook, right after the DEGRADED record.
    SCOPED_TRACE("degrade.fail");
    const RecoveryReport recovery = crash_and_recover(
        config, scratch_path("degrade_fail.jrn"),
        "deadline.expire@1=delay:300;degrade.fail@1=crash", kCrashEpoch,
        baseline, [](ServiceConfig& service_config) {
          service_config.epoch_deadline = std::chrono::milliseconds(150);
        });
    EXPECT_FALSE(recovery.applied_inflight);
    EXPECT_EQ(recovery.rolled_back, 1);
    EXPECT_EQ(recovery.next_epoch, kCrashEpoch);
    // The dangling DEGRADED record replays as exactly one degraded rung.
    EXPECT_EQ(recovery.degraded_epochs, 1);
  }
}

// A crash at the instant the watchdog's force-cancel takes effect (the
// clearing thread observing the intervention) recovers like any other
// pre-commit kill, and the restarted daemon — with the wedged mechanism
// swapped out — converges to the oracle.
TEST(Chaos, CrashAtWatchdogFireConverges) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  const std::string path = scratch_path("watchdog_fire.jrn");

  WedgedMechanism wedged;
  {
    Journal journal(path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    service_config.watchdog_timeout = std::chrono::milliseconds(100);
    service_config.degradation_ladder = {"m3"};
    RebalanceService service(net, wedged, service_config);
    fault::configure("watchdog.fire@1=crash");
    EXPECT_THROW(service.run_epoch(), fault::CrashPoint);
    fault::clear();
  }

  core::M3DoubleAuction mechanism;
  Journal journal(path);
  pcn::Network net = make_network(config);
  const RecoveryReport recovery = replay_journal(journal, net, config.policy);
  EXPECT_FALSE(recovery.applied_inflight);
  EXPECT_EQ(recovery.rolled_back, 1);
  EXPECT_EQ(recovery.next_epoch, 0);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.first_epoch = recovery.next_epoch;
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = 0; epoch < kTotalEpochs; ++epoch) {
    const EpochReport report = service.run_epoch();
    EXPECT_EQ(report.network_digest,
              baseline.reports[static_cast<std::size_t>(epoch)].network_digest)
        << "epoch " << epoch;
  }
  EXPECT_EQ(net.state_digest(), baseline.final_net.state_digest());
  expect_networks_equal(net, baseline.final_net);
}

// A deterministically induced degradation (injected delay burns epoch
// 1's deadline, the m2-minfee rung clears it) must survive the full
// journal round trip: replay reproduces the degraded epoch's digest bit
// for bit and reports it as degraded.
TEST(Chaos, InjectedDeadlineExpiryDegradesAndReplaysConsistently) {
  SKIP_WITHOUT_FAULTS();
  const sim::SimulationConfig config = small_config(5);
  const std::string path = scratch_path("degraded_replay.jrn");

  core::M3DoubleAuction mechanism;
  std::uint64_t live_digest = 0;
  {
    Journal journal(path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    service_config.epoch_deadline = std::chrono::milliseconds(150);
    service_config.degradation_ladder = {"m2-minfee"};
    RebalanceService service(net, mechanism, service_config);
    // Hit 2 of deadline.expire is epoch 1's primary attempt; the rung
    // re-arms a fresh deadline (hit 3) and clears unhindered.
    fault::configure("deadline.expire@2=delay:300");
    for (int epoch = 0; epoch < kTotalEpochs; ++epoch) {
      const EpochReport report = service.run_epoch();
      EXPECT_FALSE(report.aborted);
      EXPECT_EQ(report.degradation_level, epoch == 1 ? 1 : 0)
          << "epoch " << epoch;
    }
    fault::clear();
    live_digest = net.state_digest();
  }

  Journal reopened(path);
  pcn::Network recovered = make_network(config);
  const RecoveryReport recovery =
      replay_journal(reopened, recovered, config.policy);
  EXPECT_EQ(recovery.epochs_settled, kTotalEpochs);
  EXPECT_EQ(recovery.degraded_epochs, 1);
  EXPECT_EQ(recovery.next_epoch, kTotalEpochs);
  EXPECT_EQ(recovered.state_digest(), live_digest);
}

// The CI entry point: MUSK_CHAOS_SEED picks which service point dies and
// when, so repeated runs sweep the schedule space deterministically.
TEST(Chaos, SeededCrashScheduleConverges) {
  SKIP_WITHOUT_FAULTS();
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("MUSK_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  util::Rng rng(seed != 0 ? seed : 1);
  const char* points[] = {
      "svc.crash_after_begin", "svc.crash_before_commit",
      "svc.crash_after_commit", "svc.crash_mid_settle"};
  const char* point = points[rng.uniform(4)];
  const int crash_epoch = static_cast<int>(rng.uniform(kTotalEpochs - 1));

  const sim::SimulationConfig config = small_config(5);
  const Baseline baseline = run_baseline(config);
  ASSERT_GT(baseline.reports[static_cast<std::size_t>(crash_epoch)].game_edges,
            0);
  SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " -> " + point +
               " at epoch " + std::to_string(crash_epoch));
  crash_and_recover(config,
                    scratch_path("seeded_" + std::to_string(seed) + ".jrn"),
                    std::string(point) + "@1=crash", crash_epoch, baseline);
}

}  // namespace
}  // namespace musketeer::svc
