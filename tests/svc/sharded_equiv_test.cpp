// The headline invariant of the component-sharded solve pipeline: a
// sharded, multi-threaded solve is BIT-identical to the legacy
// whole-graph solve — circulations, priced cycles, VCG prices (compared
// at the bit level, not within a tolerance), SolveStats counters, and
// end-to-end settled-network digests — for every mechanism, solver kind,
// and thread count. Lives in the svc suite (labelled svc) so the tsan CI
// preset races the executor's worker pool.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/m1_fixed_fee.hpp"
#include "core/m2_minfee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/mechanism_factory.hpp"
#include "flow/solve_context.hpp"
#include "gen/game_gen.hpp"
#include "sim/engine.hpp"
#include "svc/executor.hpp"
#include "svc/sim_backend.hpp"
#include "svc_test_util.hpp"
#include "util/rng.hpp"

namespace musketeer::svc {
namespace {

/// Exact double equality: same bit pattern, not "close enough". The
/// sharded path promises the identical float operations in the identical
/// order, so nothing weaker is acceptable.
void expect_bits_equal(double got, double want, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(want))
      << what << ": " << got << " vs " << want;
}

void expect_outcomes_identical(const core::Outcome& got,
                               const core::Outcome& want,
                               const std::string& what) {
  EXPECT_EQ(got.circulation, want.circulation) << what;
  ASSERT_EQ(got.cycles.size(), want.cycles.size()) << what;
  for (std::size_t i = 0; i < got.cycles.size(); ++i) {
    const core::PricedCycle& g = got.cycles[i];
    const core::PricedCycle& w = want.cycles[i];
    const std::string where = what + " cycle " + std::to_string(i);
    EXPECT_EQ(g.cycle.edges, w.cycle.edges) << where;
    EXPECT_EQ(g.cycle.amount, w.cycle.amount) << where;
    expect_bits_equal(g.release_time, w.release_time, where);
    expect_bits_equal(g.delay_bonus, w.delay_bonus, where);
    ASSERT_EQ(g.prices.size(), w.prices.size()) << where;
    for (std::size_t j = 0; j < g.prices.size(); ++j) {
      EXPECT_EQ(g.prices[j].player, w.prices[j].player) << where;
      expect_bits_equal(g.prices[j].price, w.prices[j].price, where);
    }
  }
}

/// `clusters` disjoint BA games glued into one Game with node offsets:
/// the partitioner must split it back into exactly `clusters` weakly
/// connected components.
core::Game clustered_game(int clusters, flow::NodeId nodes_per_cluster,
                          util::Rng& rng) {
  core::Game merged(clusters * nodes_per_cluster);
  for (int c = 0; c < clusters; ++c) {
    gen::GameConfig config;
    config.depleted_share = 0.3;
    const core::Game part =
        gen::random_ba_game(nodes_per_cluster, 2, config, rng);
    const flow::NodeId offset = c * nodes_per_cluster;
    for (core::EdgeId e = 0; e < part.num_edges(); ++e) {
      const core::GameEdge& edge = part.edge(e);
      merged.add_edge(edge.from + offset, edge.to + offset, edge.capacity,
                      edge.tail_valuation, edge.head_valuation);
    }
  }
  return merged;
}

class ShardedEquivalenceTest : public ::testing::TestWithParam<int> {};

// 100 seeded games (a mix of connected and multi-component) through M3
// with the Bellman-Ford solver: the sharded run at the parameterized
// thread count must reproduce the monolithic outcome bit for bit.
TEST_P(ShardedEquivalenceTest, HundredGamesBitIdenticalM3) {
  const int threads = GetParam();
  ParallelExecutor executor(threads);
  const core::M3DoubleAuction mechanism;
  flow::SolveContext sharded;
  sharded.set_executor(&executor);
  flow::SolveContext legacy;
  util::Rng rng(0x5EED5);
  for (int round = 0; round < 100; ++round) {
    core::Game game = (round % 2 == 0)
                          ? clustered_game(1 + round % 5, 10, rng)
                          : gen::random_ba_game(
                                12 + 4 * (round % 5), 2,
                                gen::GameConfig{}, rng);
    const core::Outcome want = mechanism.run_truthful(legacy, game);
    const core::Outcome got = mechanism.run_truthful(sharded, game);
    expect_outcomes_identical(got, want,
                              "round " + std::to_string(round) + " threads " +
                                  std::to_string(threads));
  }
}

// Cross-mechanism, cross-solver matrix on a 4-component game: every
// mechanism the service can run, under every solver kind, sharded vs
// monolithic.
TEST_P(ShardedEquivalenceTest, AllMechanismsAllSolversBitIdentical) {
  const int threads = GetParam();
  ParallelExecutor executor(threads);
  util::Rng rng(0xFACADE);
  const core::Game game = clustered_game(4, 12, rng);

  const flow::SolverKind kinds[] = {
      flow::SolverKind::kBellmanFord, flow::SolverKind::kMinMean,
      flow::SolverKind::kCapacityScaling, flow::SolverKind::kNetworkSimplex};
  for (const flow::SolverKind kind : kinds) {
    std::vector<std::unique_ptr<core::Mechanism>> mechanisms;
    mechanisms.push_back(std::make_unique<core::M1FixedFee>(0.001, 3.0, kind));
    mechanisms.push_back(std::make_unique<core::M2Vcg>(kind));
    mechanisms.push_back(std::make_unique<core::M2MinFee>(0.001, kind));
    mechanisms.push_back(std::make_unique<core::M3DoubleAuction>(kind));
    mechanisms.push_back(std::make_unique<core::M4DelayedAuction>(1.0, kind));
    for (const auto& mechanism : mechanisms) {
      flow::SolveContext sharded;
      sharded.set_executor(&executor);
      flow::SolveContext legacy;
      const core::Outcome want = mechanism->run_truthful(legacy, game);
      const core::Outcome got = mechanism->run_truthful(sharded, game);
      expect_outcomes_identical(
          got, want,
          std::string(mechanism->name()) + " solver " +
              std::to_string(static_cast<int>(kind)) + " threads " +
              std::to_string(threads));
    }
  }
}

// VCG prices compared directly (the O(own-component) reprice path).
TEST_P(ShardedEquivalenceTest, VcgPricesBitIdentical) {
  const int threads = GetParam();
  ParallelExecutor executor(threads);
  util::Rng rng(0xABCD);
  const core::M2Vcg mechanism;
  for (int round = 0; round < 10; ++round) {
    const core::Game game = clustered_game(1 + round % 4, 10, rng);
    flow::SolveContext sharded;
    sharded.set_executor(&executor);
    flow::SolveContext legacy;
    const std::vector<double> want =
        mechanism.vcg_prices(legacy, game, game.truthful_bids());
    const std::vector<double> got =
        mechanism.vcg_prices(sharded, game, game.truthful_bids());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < got.size(); ++v) {
      expect_bits_equal(got[v], want[v],
                        "round " + std::to_string(round) + " player " +
                            std::to_string(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ShardedEquivalenceTest,
                         ::testing::Values(1, 2, 8));

// Satellite regression: SolveStats counters on the sharded path must SUM
// across components — the bug class where a stats struct reports only
// the last component solved. graph_rebuilds likewise sums the
// per-component pool builds.
TEST(ShardedStatsTest, CountersSumAcrossComponents) {
  util::Rng rng(0x57A75);
  const core::Game game = clustered_game(5, 10, rng);
  const core::BidVector bids = game.truthful_bids();

  flow::SolveContext legacy;
  game.bind_graph(legacy, bids);
  flow::SolveStats want;
  const flow::Circulation f_legacy =
      legacy.solve(flow::SolverKind::kBellmanFord, &want);

  ParallelExecutor executor(4);
  flow::SolveContext sharded;
  sharded.set_executor(&executor);
  game.bind_graph(sharded, bids);
  flow::SolveStats got;
  const flow::Circulation f_sharded =
      sharded.solve(flow::SolverKind::kBellmanFord, &got);

  EXPECT_EQ(f_sharded, f_legacy);
  ASSERT_TRUE(sharded.shards_ready());
  EXPECT_EQ(sharded.num_components(), 5);
  // A 5-component game has cycles in more than one component, so a
  // "last component wins" regression would under-report here.
  EXPECT_GT(want.cycles_cancelled, 0);
  EXPECT_EQ(got.cycles_cancelled, want.cycles_cancelled);
  EXPECT_EQ(got.units_pushed, want.units_pushed);
  EXPECT_EQ(got.fallbacks, want.fallbacks);
  // The sharded context built the bound graph once plus one subgraph per
  // component; the caller-visible delta covers all of them (summed, not
  // sampled).
  EXPECT_EQ(got.graph_rebuilds, 1 + 5);
}

// End-to-end: a service-backed simulation at 8 threads settles the same
// network, epoch by epoch (digest equality), as the same run at 1
// thread.
TEST(ShardedServiceTest, NetworkDigestsMatchAcrossThreadCounts) {
  const auto mechanism =
      core::make_mechanism("m3", core::MechanismOptions{});
  ASSERT_NE(mechanism, nullptr);

  sim::SimulationConfig config = testutil::small_config(/*seed=*/11);
  config.epochs = 5;
  config.payments_per_epoch = 100;

  ServiceBackend single(*mechanism, 1024, /*threads=*/1);
  pcn::Network net_single(0);
  sim::run_simulation(config, &single, &net_single);

  ServiceBackend sharded(*mechanism, 1024, /*threads=*/8);
  pcn::Network net_sharded(0);
  sim::run_simulation(config, &sharded, &net_sharded);

  testutil::expect_networks_equal(net_single, net_sharded);
  const std::vector<EpochReport> reports_single = single.service()->reports();
  const std::vector<EpochReport> reports_sharded =
      sharded.service()->reports();
  ASSERT_EQ(reports_single.size(), reports_sharded.size());
  for (std::size_t i = 0; i < reports_single.size(); ++i) {
    EXPECT_EQ(reports_sharded[i].network_digest,
              reports_single[i].network_digest)
        << "epoch " << i;
    // The 8-thread run reports its component shape; the 1-thread run
    // reports the whole graph as one "component".
    if (reports_single[i].game_edges > 0) {
      EXPECT_EQ(reports_single[i].solve_components, 1) << "epoch " << i;
      EXPECT_GE(reports_sharded[i].solve_components, 1) << "epoch " << i;
    }
  }
}

}  // namespace
}  // namespace musketeer::svc
