// BidQueue: replace semantics, backpressure, validation, concurrency.
#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svc/bid_queue.hpp"

namespace musketeer::svc {
namespace {

BidSubmission refresh(core::PlayerId player) {
  BidSubmission bid;
  bid.player = player;
  return bid;
}

BidSubmission head_bid(core::PlayerId player, double value) {
  BidSubmission bid;
  bid.player = player;
  bid.has_head = true;
  bid.head_bid = value;
  return bid;
}

TEST(BidQueue, AcceptThenDrainSortedByPlayer) {
  BidQueue queue(16, 100);
  EXPECT_EQ(queue.submit(refresh(7)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(refresh(3)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(refresh(42)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.size(), 3u);

  const std::vector<BidSubmission> drained = queue.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].player, 3);
  EXPECT_EQ(drained[1].player, 7);
  EXPECT_EQ(drained[2].player, 42);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.drain().empty());
}

TEST(BidQueue, NewerSubmissionReplacesPending) {
  BidQueue queue(16, 100);
  EXPECT_EQ(queue.submit(head_bid(5, 0.01)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(head_bid(5, 0.02)), IntakeStatus::kReplaced);
  const std::vector<BidSubmission> drained = queue.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_DOUBLE_EQ(drained[0].head_bid, 0.02);

  const IntakeCounters counters = queue.counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.replaced, 1u);
}

TEST(BidQueue, FullQueueRejectsNewPlayersButStillReplaces) {
  BidQueue queue(2, 100);
  EXPECT_EQ(queue.submit(refresh(0)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(refresh(1)), IntakeStatus::kAccepted);
  // A third distinct player is shed with an explicit reason...
  EXPECT_EQ(queue.submit(refresh(2)), IntakeStatus::kRejectedFull);
  // ...but a pending player refreshing its bid never fills the queue.
  EXPECT_EQ(queue.submit(head_bid(1, 0.03)), IntakeStatus::kReplaced);
  EXPECT_EQ(queue.size(), 2u);

  // Draining frees the capacity.
  queue.drain();
  EXPECT_EQ(queue.submit(refresh(2)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.counters().rejected_full, 1u);
}

TEST(BidQueue, InvalidBidsNeverEnter) {
  BidQueue queue(16, 10);
  EXPECT_EQ(queue.submit(refresh(-1)), IntakeStatus::kRejectedInvalid);
  EXPECT_EQ(queue.submit(refresh(10)), IntakeStatus::kRejectedInvalid);

  BidSubmission bad = head_bid(1, core::kMaxFeeRate);  // box is half-open
  EXPECT_EQ(queue.submit(bad), IntakeStatus::kRejectedInvalid);
  bad.head_bid = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(queue.submit(bad), IntakeStatus::kRejectedInvalid);
  bad.head_bid = -0.001;
  EXPECT_EQ(queue.submit(bad), IntakeStatus::kRejectedInvalid);

  BidSubmission bad_tail = refresh(1);
  bad_tail.has_tail = true;
  bad_tail.tail_bid = 0.001;  // sellers ask, they do not pay
  EXPECT_EQ(queue.submit(bad_tail), IntakeStatus::kRejectedInvalid);
  bad_tail.tail_bid = -core::kMaxFeeRate;
  EXPECT_EQ(queue.submit(bad_tail), IntakeStatus::kRejectedInvalid);

  // Boundary values inside the box are fine.
  BidSubmission edge = refresh(1);
  edge.has_tail = true;
  edge.tail_bid = 0.0;
  edge.has_head = true;
  edge.head_bid = 0.0;
  EXPECT_EQ(queue.submit(edge), IntakeStatus::kAccepted);

  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.counters().rejected_invalid, 7u);
}

TEST(BidQueue, CloseRejectsNewButKeepsPendingDrainable) {
  BidQueue queue(16, 100);
  EXPECT_EQ(queue.submit(refresh(1)), IntakeStatus::kAccepted);
  queue.close();
  EXPECT_EQ(queue.submit(refresh(2)), IntakeStatus::kRejectedClosed);
  EXPECT_EQ(queue.drain().size(), 1u);
  EXPECT_EQ(queue.counters().rejected_closed, 1u);
}

TEST(BidQueue, ConcurrentSubmitsAccountForEveryAttempt) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  constexpr std::size_t kCapacity = 64;
  constexpr core::PlayerId kPlayers = 128;
  BidQueue queue(kCapacity, kPlayers);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> full{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto player = static_cast<core::PlayerId>(
              (t * kPerThread + i) % kPlayers);
          const IntakeStatus status = queue.submit(head_bid(player, 0.01));
          if (intake_ok(status)) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            ASSERT_EQ(status, IntakeStatus::kRejectedFull);
            full.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }

  const IntakeCounters counters = queue.counters();
  EXPECT_EQ(counters.total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(counters.accepted + counters.replaced, ok.load());
  EXPECT_EQ(counters.rejected_full, full.load());
  EXPECT_EQ(counters.rejected_invalid, 0u);

  // The drained set is at most the capacity, sorted, distinct players.
  const std::vector<BidSubmission> drained = queue.drain();
  EXPECT_EQ(drained.size(), counters.accepted);
  EXPECT_LE(drained.size(), kCapacity);
  for (std::size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LT(drained[i - 1].player, drained[i].player);
  }
}

}  // namespace
}  // namespace musketeer::svc
