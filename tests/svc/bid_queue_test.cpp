// BidQueue: replace semantics, backpressure, validation, concurrency.
#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svc/bid_queue.hpp"

namespace musketeer::svc {
namespace {

BidSubmission refresh(core::PlayerId player) {
  BidSubmission bid;
  bid.player = player;
  return bid;
}

BidSubmission head_bid(core::PlayerId player, double value) {
  BidSubmission bid;
  bid.player = player;
  bid.has_head = true;
  bid.head_bid = value;
  return bid;
}

TEST(BidQueue, AcceptThenDrainSortedByPlayer) {
  BidQueue queue(16, 100);
  EXPECT_EQ(queue.submit(refresh(7)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(refresh(3)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(refresh(42)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.size(), 3u);

  const std::vector<BidSubmission> drained = queue.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].player, 3);
  EXPECT_EQ(drained[1].player, 7);
  EXPECT_EQ(drained[2].player, 42);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.drain().empty());
}

TEST(BidQueue, NewerSubmissionReplacesPending) {
  BidQueue queue(16, 100);
  EXPECT_EQ(queue.submit(head_bid(5, 0.01)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(head_bid(5, 0.02)), IntakeStatus::kReplaced);
  const std::vector<BidSubmission> drained = queue.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_DOUBLE_EQ(drained[0].head_bid, 0.02);

  const IntakeCounters counters = queue.counters();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.replaced, 1u);
}

TEST(BidQueue, FullQueueRejectsNewPlayersButStillReplaces) {
  BidQueue queue(2, 100);
  EXPECT_EQ(queue.submit(refresh(0)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(refresh(1)), IntakeStatus::kAccepted);
  // A third distinct player is shed with an explicit reason...
  EXPECT_EQ(queue.submit(refresh(2)), IntakeStatus::kRejectedFull);
  // ...but a pending player refreshing its bid never fills the queue.
  EXPECT_EQ(queue.submit(head_bid(1, 0.03)), IntakeStatus::kReplaced);
  EXPECT_EQ(queue.size(), 2u);

  // Draining frees the capacity.
  queue.drain();
  EXPECT_EQ(queue.submit(refresh(2)), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.counters().rejected_full, 1u);
}

TEST(BidQueue, InvalidBidsNeverEnter) {
  BidQueue queue(16, 10);
  EXPECT_EQ(queue.submit(refresh(-1)), IntakeStatus::kRejectedInvalid);
  EXPECT_EQ(queue.submit(refresh(10)), IntakeStatus::kRejectedInvalid);

  BidSubmission bad = head_bid(1, core::kMaxFeeRate);  // box is half-open
  EXPECT_EQ(queue.submit(bad), IntakeStatus::kRejectedInvalid);
  bad.head_bid = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(queue.submit(bad), IntakeStatus::kRejectedInvalid);
  bad.head_bid = -0.001;
  EXPECT_EQ(queue.submit(bad), IntakeStatus::kRejectedInvalid);

  BidSubmission bad_tail = refresh(1);
  bad_tail.has_tail = true;
  bad_tail.tail_bid = 0.001;  // sellers ask, they do not pay
  EXPECT_EQ(queue.submit(bad_tail), IntakeStatus::kRejectedInvalid);
  bad_tail.tail_bid = -core::kMaxFeeRate;
  EXPECT_EQ(queue.submit(bad_tail), IntakeStatus::kRejectedInvalid);

  // Boundary values inside the box are fine.
  BidSubmission edge = refresh(1);
  edge.has_tail = true;
  edge.tail_bid = 0.0;
  edge.has_head = true;
  edge.head_bid = 0.0;
  EXPECT_EQ(queue.submit(edge), IntakeStatus::kAccepted);

  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.counters().rejected_invalid, 7u);
}

TEST(BidQueue, CloseRejectsNewButKeepsPendingDrainable) {
  BidQueue queue(16, 100);
  EXPECT_EQ(queue.submit(refresh(1)), IntakeStatus::kAccepted);
  queue.close();
  EXPECT_EQ(queue.submit(refresh(2)), IntakeStatus::kRejectedClosed);
  EXPECT_EQ(queue.drain().size(), 1u);
  EXPECT_EQ(queue.counters().rejected_closed, 1u);
}

TEST(BidQueue, ConcurrentSubmitsAccountForEveryAttempt) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  constexpr std::size_t kCapacity = 64;
  constexpr core::PlayerId kPlayers = 128;
  BidQueue queue(kCapacity, kPlayers);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> full{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto player = static_cast<core::PlayerId>(
              (t * kPerThread + i) % kPlayers);
          const IntakeStatus status = queue.submit(head_bid(player, 0.01));
          if (intake_ok(status)) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            ASSERT_EQ(status, IntakeStatus::kRejectedFull);
            full.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }

  const IntakeCounters counters = queue.counters();
  EXPECT_EQ(counters.total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(counters.accepted + counters.replaced, ok.load());
  EXPECT_EQ(counters.rejected_full, full.load());
  EXPECT_EQ(counters.rejected_invalid, 0u);

  // The drained set is at most the capacity, sorted, distinct players.
  const std::vector<BidSubmission> drained = queue.drain();
  EXPECT_EQ(drained.size(), counters.accepted);
  EXPECT_LE(drained.size(), kCapacity);
  for (std::size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LT(drained[i - 1].player, drained[i].player);
  }
}

TEST(BidQueue, ExactlyAtCapacityBoundary) {
  constexpr std::size_t kCapacity = 8;
  BidQueue queue(kCapacity, 100);
  for (core::PlayerId p = 0; p < static_cast<core::PlayerId>(kCapacity); ++p) {
    EXPECT_EQ(queue.submit(refresh(p)), IntakeStatus::kAccepted);
  }
  EXPECT_EQ(queue.size(), kCapacity);

  // The capacity-th distinct player was the last one in; the next is out.
  EXPECT_EQ(queue.submit(refresh(50)), IntakeStatus::kRejectedFull);
  // Pending players still replace at exactly full...
  EXPECT_EQ(queue.submit(head_bid(3, 0.02)), IntakeStatus::kReplaced);
  // ...and a sequence-tracked retry of a queued bid is answered
  // kDuplicate, never kRejectedFull — the retrying client must learn
  // its bid landed even while the queue sheds new players.
  BidSubmission seq_bid = refresh(2);
  seq_bid.seq = 4;
  EXPECT_EQ(queue.submit(seq_bid), IntakeStatus::kReplaced);
  EXPECT_EQ(queue.submit(seq_bid), IntakeStatus::kDuplicate);
  EXPECT_EQ(queue.size(), kCapacity);
}

TEST(BidQueue, ConcurrentSubmittersAtExactlyCapacityNeverShed) {
  // With distinct players == queue_capacity, rejection is impossible no
  // matter how submissions interleave: every player either enters or
  // replaces its own pending bid.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  constexpr std::size_t kCapacity = 16;
  BidQueue queue(kCapacity, static_cast<core::PlayerId>(kCapacity));

  std::atomic<std::uint64_t> rejected{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto player = static_cast<core::PlayerId>(
              (t * kPerThread + i) % kCapacity);
          const IntakeStatus status = queue.submit(head_bid(player, 0.01));
          if (!intake_ok(status)) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }

  EXPECT_EQ(rejected.load(), 0u);
  const IntakeCounters counters = queue.counters();
  EXPECT_EQ(counters.accepted, kCapacity);
  EXPECT_EQ(counters.replaced,
            static_cast<std::uint64_t>(kThreads) * kPerThread - kCapacity);
  EXPECT_EQ(counters.rejected_full, 0u);
  EXPECT_EQ(queue.drain().size(), kCapacity);
}

TEST(BidQueue, SequenceWatermarkDedupsAcrossDrain) {
  BidQueue queue(16, 100);
  BidSubmission bid = head_bid(1, 0.01);
  bid.seq = 5;
  EXPECT_EQ(queue.submit(bid), IntakeStatus::kAccepted);
  EXPECT_EQ(queue.submit(bid), IntakeStatus::kDuplicate);  // same seq
  bid.seq = 4;
  EXPECT_EQ(queue.submit(bid), IntakeStatus::kDuplicate);  // older seq
  bid.seq = 6;
  EXPECT_EQ(queue.submit(bid), IntakeStatus::kReplaced);   // newer wins

  const std::vector<BidSubmission> drained = queue.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].seq, 6u);

  // The watermark deliberately survives the drain: this is exactly the
  // ambiguous-timeout window ("was my bid drained before the ack got
  // lost?") that idempotent resubmission exists for.
  bid.seq = 6;
  EXPECT_EQ(queue.submit(bid), IntakeStatus::kDuplicate);
  bid.seq = 7;
  EXPECT_EQ(queue.submit(bid), IntakeStatus::kAccepted);

  const IntakeCounters counters = queue.counters();
  EXPECT_EQ(counters.duplicate, 3u);
  EXPECT_EQ(counters.total(), 6u);
}

TEST(BidQueue, ZeroSequenceBypassesDedup) {
  BidQueue queue(16, 100);
  BidSubmission seq1 = head_bid(1, 0.01);
  seq1.seq = 1;
  EXPECT_EQ(queue.submit(seq1), IntakeStatus::kAccepted);
  // A legacy (seq 0) client can always overwrite, and does not move the
  // watermark...
  EXPECT_EQ(queue.submit(head_bid(1, 0.02)), IntakeStatus::kReplaced);
  // ...so the tracked client's stale retry still dedups.
  EXPECT_EQ(queue.submit(seq1), IntakeStatus::kDuplicate);
}

TEST(BidQueue, RejectedInvalidDoesNotAdvanceWatermark) {
  BidQueue queue(16, 10);
  BidSubmission bad = head_bid(1, -0.5);  // out of the bid box
  bad.seq = 3;
  EXPECT_EQ(queue.submit(bad), IntakeStatus::kRejectedInvalid);
  // The corrected resubmission reuses the sequence number and must not
  // be mistaken for a duplicate of the rejected attempt.
  BidSubmission good = head_bid(1, 0.01);
  good.seq = 3;
  EXPECT_EQ(queue.submit(good), IntakeStatus::kAccepted);
}

TEST(BidQueue, ConcurrentSameSequenceRetriesCollapseToOne) {
  constexpr int kThreads = 8;
  BidQueue queue(16, 100);
  std::atomic<int> accepted{0};
  std::atomic<int> duplicate{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        BidSubmission bid = head_bid(7, 0.01);
        bid.seq = 1;
        const IntakeStatus status = queue.submit(bid);
        if (status == IntakeStatus::kAccepted) ++accepted;
        if (status == IntakeStatus::kDuplicate) ++duplicate;
      });
    }
  }
  // However the racing retries interleave, exactly one copy is taken.
  EXPECT_EQ(accepted.load(), 1);
  EXPECT_EQ(duplicate.load(), kThreads - 1);
  EXPECT_EQ(queue.drain().size(), 1u);
}

}  // namespace
}  // namespace musketeer::svc
