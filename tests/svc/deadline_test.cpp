// Epoch deadlines, the degradation ladder, the watchdog backstop, and
// overload-aware admission — the service-level robustness contract
// (DESIGN.md §14).
//
// The wedge under test is a mechanism that never finishes on its own:
// SlowMechanism spins on its cancel point until the deadline (or the
// watchdog) fires. Every path below must then hold:
//
//   * the epoch descends the configured ladder and settles with the
//     rung's outcome, bit-identical to that mechanism's clean solve;
//   * a journaled degraded epoch replays to the identical digest;
//   * an exhausted ladder aborts all-or-nothing: locks released, epoch
//     number reused, ABORTED journaled, the scheduler not wedged;
//   * sustained overload drives admission to shedding, and the client
//     library's retry budget turns a permanently-shedding server into
//     a terminal OverloadedError instead of an unbounded sleep.
//
// None of this needs -DMUSKETEER_FAULTS: the deadline machinery is a
// production path, driven here by real (generous) timeouts.
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/mechanism.hpp"
#include "core/mechanism_factory.hpp"
#include "svc/admission.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc_test_util.hpp"
#include "util/deadline.hpp"

namespace musketeer::svc {
namespace {

using testutil::expect_networks_equal;
using testutil::make_network;
using testutil::small_config;

/// Deadlines generous enough that a degradation rung (m3 on a 24-node
/// net, microseconds of work) cannot time out even under sanitizers,
/// while a wedged attempt still resolves in a fraction of a second.
constexpr std::chrono::milliseconds kDeadline{200};

/// Never terminates on its own: spins on the context's cancel point
/// until the deadline or the watchdog fires. The service must recover
/// by descending its ladder — exactly the wedged-solver scenario the
/// watchdog exists for.
class SlowMechanism : public core::Mechanism {
 public:
  std::string_view name() const override { return "slow-test"; }
  bool claims_individual_rationality() const override { return false; }

 protected:
  core::Outcome run_impl(flow::SolveContext& ctx, const core::Game&,
                         const core::BidVector&) const override {
    for (;;) MUSK_CANCEL_POINT(ctx.cancel());
  }
};

std::string temp_journal(const std::string& name) {
  std::string path = ::testing::TempDir() + "deadline_" + name;
  testutil::remove_journal_files(path);
  return path;
}

int count_records(const Journal& journal, RecordType type) {
  int n = 0;
  for (const JournalRecord& rec : journal.records()) {
    if (rec.type == type) ++n;
  }
  return n;
}

TEST(DeadlineTest, WedgedMechanismDegradesToLadderRung) {
  const sim::SimulationConfig config = small_config();

  // Oracle: the rung mechanism clearing the same epochs directly.
  core::M3DoubleAuction m3;
  pcn::Network oracle_net = make_network(config);
  ServiceConfig oracle_config;
  oracle_config.policy = config.policy;
  RebalanceService oracle(oracle_net, m3, oracle_config);
  const EpochReport oracle_report = oracle.run_epoch();
  ASSERT_GT(oracle_report.game_edges, 0) << "empty game; pick another seed";

  SlowMechanism slow;
  pcn::Network net = make_network(config);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.epoch_deadline = kDeadline;
  service_config.degradation_ladder = {"m3"};
  RebalanceService service(net, slow, service_config);

  const EpochReport report = service.run_epoch();
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.degradation_level, 1);
  EXPECT_FALSE(report.watchdog_fired);
  // The degraded epoch's outcome is the rung's clean solve, to the coin.
  EXPECT_EQ(report.network_digest, oracle_report.network_digest);
  expect_networks_equal(net, oracle_net);
  EXPECT_EQ(service.epochs_cleared(), 1);

  const ServiceStats stats = service.stats_snapshot();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.degraded_epochs, 1u);
  EXPECT_EQ(stats.watchdog_fired, 0u);
  EXPECT_EQ(stats.aborted_epochs, 0u);
}

TEST(DeadlineTest, DegradedEpochJournalsRungAndReplaysToSameDigest) {
  const sim::SimulationConfig config = small_config();
  const std::string path = temp_journal("degraded.jrn");

  SlowMechanism slow;
  std::uint64_t live_digest = 0;
  {
    Journal journal(path);
    pcn::Network net = make_network(config);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    service_config.epoch_deadline = kDeadline;
    service_config.degradation_ladder = {"m2-minfee", "m3"};
    RebalanceService service(net, slow, service_config);
    const EpochReport report = service.run_epoch();
    ASSERT_GT(report.game_edges, 0);
    ASSERT_FALSE(report.aborted);
    // Only the first rung ran: m2-minfee got a fresh deadline and
    // cleared well inside it.
    EXPECT_EQ(report.degradation_level, 1);
    live_digest = net.state_digest();
    EXPECT_EQ(count_records(journal, RecordType::kDegraded), 1);
  }

  // Reboot: replay must reproduce the degraded epoch bit for bit and
  // report it as degraded, not merely settled.
  Journal reopened(path);
  pcn::Network recovered = make_network(config);
  const RecoveryReport recovery =
      replay_journal(reopened, recovered, config.policy);
  EXPECT_EQ(recovery.epochs_settled, 1);
  EXPECT_EQ(recovery.degraded_epochs, 1);
  EXPECT_EQ(recovery.next_epoch, 1);
  EXPECT_EQ(recovered.state_digest(), live_digest);
}

TEST(DeadlineTest, ExhaustedLadderAbortsAndReusesEpochNumber) {
  const sim::SimulationConfig config = small_config();
  const std::string path = temp_journal("aborted.jrn");
  Journal journal(path);

  SlowMechanism slow;
  pcn::Network net = make_network(config);
  const std::uint64_t genesis = net.state_digest();
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.epoch_deadline = kDeadline;
  service_config.degradation_ladder.clear();  // no rungs: abort directly
  RebalanceService service(net, slow, service_config);

  const EpochReport report = service.run_epoch();
  ASSERT_GT(report.game_edges, 0);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.epoch, 0);
  EXPECT_EQ(report.degradation_level, 0);
  // All-or-nothing: nothing settled, nothing stays locked, the epoch
  // number is not consumed, the abort is durable.
  EXPECT_EQ(net.state_digest(), genesis);
  for (pcn::ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(net.channel(c).locked_a, 0) << "channel " << c;
    EXPECT_EQ(net.channel(c).locked_b, 0) << "channel " << c;
  }
  EXPECT_EQ(service.epochs_cleared(), 0);
  ASSERT_FALSE(journal.records().empty());
  EXPECT_EQ(journal.records().back().type, RecordType::kAborted);

  // Not wedged: the next epoch reuses number 0 (and aborts again — the
  // mechanism is still wedged — without deadlock or lock-rank abort).
  const EpochReport again = service.run_epoch();
  EXPECT_TRUE(again.aborted);
  EXPECT_EQ(again.epoch, 0);

  const ServiceStats stats = service.stats_snapshot();
  EXPECT_EQ(stats.aborted_epochs, 2u);
  EXPECT_EQ(stats.deadline_exceeded, 2u);
}

TEST(DeadlineTest, WatchdogForceCancelsWedgedAttempt) {
  const sim::SimulationConfig config = small_config();

  SlowMechanism slow;
  pcn::Network net = make_network(config);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  // No deadline at all: only the watchdog can break the wedge.
  service_config.watchdog_timeout = std::chrono::milliseconds(100);
  service_config.degradation_ladder = {"m3"};
  RebalanceService service(net, slow, service_config);

  const EpochReport report = service.run_epoch();
  ASSERT_GT(report.game_edges, 0);
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.watchdog_fired);
  EXPECT_EQ(report.degradation_level, 1);
  EXPECT_EQ(service.epochs_cleared(), 1);

  const ServiceStats stats = service.stats_snapshot();
  EXPECT_GE(stats.watchdog_fired, 1u);
  EXPECT_GE(stats.deadline_exceeded, 1u);
}

TEST(DeadlineTest, EnabledButUnreachedDeadlineIsBitIdenticalToLegacy) {
  const sim::SimulationConfig config = small_config();
  core::M3DoubleAuction m3;

  pcn::Network legacy_net = make_network(config);
  ServiceConfig legacy_config;
  legacy_config.policy = config.policy;
  RebalanceService legacy(legacy_net, m3, legacy_config);

  pcn::Network armed_net = make_network(config);
  ServiceConfig armed_config;
  armed_config.policy = config.policy;
  armed_config.epoch_deadline = std::chrono::milliseconds(60000);
  armed_config.watchdog_timeout = std::chrono::milliseconds(60000);
  RebalanceService armed(armed_net, m3, armed_config);

  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochReport a = legacy.run_epoch();
    const EpochReport b = armed.run_epoch();
    EXPECT_EQ(b.network_digest, a.network_digest) << "epoch " << epoch;
    EXPECT_EQ(b.degradation_level, 0);
    EXPECT_FALSE(b.aborted);
  }
  expect_networks_equal(armed_net, legacy_net);
  const ServiceStats stats = armed.stats_snapshot();
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.degraded_epochs, 0u);
}

TEST(DeadlineTest, SustainedOverloadDrivesAdmissionToShedding) {
  const sim::SimulationConfig config = small_config();

  SlowMechanism slow;
  pcn::Network net = make_network(config);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.epoch_deadline = kDeadline;
  service_config.degradation_ladder.clear();
  RebalanceService service(net, slow, service_config);

  // Healthy at start: bids are admitted.
  BidSubmission bid;
  bid.player = 1;
  EXPECT_EQ(service.submit(bid), IntakeStatus::kAccepted);

  // One aborted epoch burns at least the full deadline, so the EWMA
  // seeds at >= deadline: utilization >= 1, level 3, shed everything.
  const EpochReport report = service.run_epoch();
  ASSERT_TRUE(report.aborted);
  EXPECT_EQ(service.shed_level(), 3);

  BidSubmission late;
  late.player = 2;
  EXPECT_EQ(service.submit(late), IntakeStatus::kRejectedOverload);
  const ServiceStats stats = service.stats_snapshot();
  EXPECT_EQ(stats.shed_level, 3);
  EXPECT_GE(stats.ewma_clear_seconds,
            std::chrono::duration<double>(kDeadline).count());
  EXPECT_EQ(stats.intake.rejected_overload, 1u);
  // Retry hints scale 2^level: a saturated server pushes back 8x.
  EXPECT_EQ(service.retry_after_hint(100), 800u);
}

TEST(DeadlineTest, AdmissionControllerLevelsAndHints) {
  AdmissionController admission(/*alpha=*/1.0, /*deadline_seconds=*/1.0);
  ASSERT_TRUE(admission.enabled());
  EXPECT_EQ(admission.shed_level(), 0);

  // alpha=1: the EWMA is just the last sample, so levels are exact.
  admission.record(0.49);
  EXPECT_EQ(admission.shed_level(), 0);
  admission.record(0.5);
  EXPECT_EQ(admission.shed_level(), 1);
  admission.record(0.8);
  EXPECT_EQ(admission.shed_level(), 2);
  admission.record(1.0);
  EXPECT_EQ(admission.shed_level(), 3);
  EXPECT_EQ(admission.scale_retry_after(100), 800u);
  admission.record(0.1);  // recovery is symmetric
  EXPECT_EQ(admission.shed_level(), 0);
  EXPECT_EQ(admission.scale_retry_after(100), 100u);

  // Smoothing: with alpha=0.2 a single slow epoch cannot saturate a
  // healthy EWMA.
  AdmissionController smooth(/*alpha=*/0.2, /*deadline_seconds=*/1.0);
  smooth.record(0.1);  // seeds at the first sample
  EXPECT_DOUBLE_EQ(smooth.ewma_seconds(), 0.1);
  smooth.record(2.0);
  EXPECT_DOUBLE_EQ(smooth.ewma_seconds(), 0.2 * 2.0 + 0.8 * 0.1);
  EXPECT_EQ(smooth.shed_level(), 0);

  // Disabled controller is inert.
  AdmissionController off(/*alpha=*/0.2, /*deadline_seconds=*/0.0);
  EXPECT_FALSE(off.enabled());
  off.record(100.0);
  EXPECT_EQ(off.shed_level(), 0);
  EXPECT_EQ(off.ewma_seconds(), 0.0);
  EXPECT_EQ(off.scale_retry_after(100), 100u);
}

// --- client-side overload surrender -----------------------------------

TEST(DeadlineTest, ClientRetryBudgetTurnsPermanentShedIntoTerminalError) {
  const sim::SimulationConfig config = small_config();
  DaemonConfig daemon_config;
  daemon_config.service.policy = config.policy;
  daemon_config.server.listen = "tcp:0";
  // A permanently-shedding server: zero connection slots means every
  // accepted socket is answered with kError{kRetryAfter} and closed.
  daemon_config.server.max_connections = 0;
  daemon_config.server.shed_retry_after_ms = 40;
  Daemon daemon(make_network(config), core::make_mechanism("m3", {}),
                daemon_config);
  daemon.start(/*periodic_epochs=*/false);

  ClientConfig client_config;
  client_config.max_attempts = 1000;  // far beyond what the budget allows
  client_config.backoff_base = std::chrono::milliseconds(10);
  client_config.backoff_max = std::chrono::milliseconds(80);
  client_config.jitter_seed = 7;
  client_config.retry_budget = std::chrono::milliseconds(250);
  Client client(daemon.endpoint(), client_config);

  BidSubmission bid;
  bid.player = 1;
  bool surrendered = false;
  try {
    client.submit(bid, std::chrono::milliseconds(500));
  } catch (const OverloadedError& overloaded) {
    surrendered = true;
    // The cumulative sleep is bounded by the budget — the point of the
    // cap: no summing of an endless stream of server hints.
    EXPECT_LE(overloaded.total_backoff_ms, 250u);
  }
  EXPECT_TRUE(surrendered);
  daemon.stop();
}

}  // namespace
}  // namespace musketeer::svc
