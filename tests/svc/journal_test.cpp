// Epoch journal: record round-trips, torn/corrupt-tail repair on open,
// and replay_journal's recovery state machine (rollback, exactly-once
// in-flight application, digest verification).
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "pcn/rebalancer.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc_test_util.hpp"

namespace musketeer::svc {
namespace {

using testutil::expect_networks_equal;
using testutil::make_network;
using testutil::small_config;

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "musk_journal_" + name;
  testutil::remove_journal_files(path);
  return path;
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(byte ^ 0x40));
}

TEST(Journal, RecordsSurviveReopen) {
  const std::string path = temp_journal("reopen");
  {
    Journal journal(path);
    journal.append_begin(0, 111);
    journal.append_settled(0, 222);
    journal.append_begin(1, 222);
    journal.append_aborted(1, 222);
    EXPECT_EQ(journal.records().size(), 4u);
  }
  Journal journal(path);
  ASSERT_EQ(journal.records().size(), 4u);
  EXPECT_EQ(journal.truncated_tail_bytes(), 0u);
  EXPECT_EQ(journal.records()[0].type, RecordType::kBegin);
  EXPECT_EQ(journal.records()[0].epoch, 0);
  EXPECT_EQ(journal.records()[0].digest, 111u);
  EXPECT_EQ(journal.records()[1].type, RecordType::kSettled);
  EXPECT_EQ(journal.records()[1].digest, 222u);
  EXPECT_EQ(journal.records()[2].type, RecordType::kBegin);
  EXPECT_EQ(journal.records()[2].epoch, 1);
  EXPECT_EQ(journal.records()[3].type, RecordType::kAborted);
}

TEST(Journal, TornTailTruncatedOnOpen) {
  const std::string path = temp_journal("torn");
  std::uint64_t committed = 0;
  {
    Journal journal(path);
    journal.append_begin(0, 7);
    journal.append_settled(0, 9);
    committed = journal.committed_bytes();
  }
  // A crash mid-write leaves a partial record: magic plus a few bytes.
  append_raw(segment_path(path, 0), std::string("MJRN\x01garbage", 12));

  Journal journal(path);
  EXPECT_EQ(journal.records().size(), 2u);
  EXPECT_EQ(journal.truncated_tail_bytes(), 12u);
  EXPECT_EQ(journal.committed_bytes(), committed);

  // The repair is durable: appending continues from the cut point and a
  // third open sees a clean file.
  journal.append_begin(1, 9);
  Journal reopened(path);
  EXPECT_EQ(reopened.records().size(), 3u);
  EXPECT_EQ(reopened.truncated_tail_bytes(), 0u);
}

TEST(Journal, CorruptRecordDropsItAndEverythingAfter) {
  const std::string path = temp_journal("corrupt");
  std::uint64_t after_first = 0;
  {
    Journal journal(path);
    journal.append_begin(0, 7);
    after_first = journal.committed_bytes();
    journal.append_settled(0, 9);
    journal.append_begin(1, 9);
  }
  // Flip a byte inside the second record's digest field: its checksum
  // no longer matches, so it and the intact record after it are both
  // discarded (the scan keeps only the longest valid prefix).
  // committed_bytes counts from the segment-file start (header included),
  // so it doubles as the second record's file offset.
  flip_byte(segment_path(path, 0), static_cast<std::size_t>(after_first) + 10);

  Journal journal(path);
  ASSERT_EQ(journal.records().size(), 1u);
  EXPECT_EQ(journal.records()[0].type, RecordType::kBegin);
  EXPECT_GT(journal.truncated_tail_bytes(), 0u);
  EXPECT_EQ(journal.committed_bytes(), after_first);
}

TEST(Journal, BadHeaderRejected) {
  const std::string path = temp_journal("badheader");
  append_raw(segment_path(path, 0), "NOTAJRNL and then some");
  EXPECT_THROW(Journal journal(path), JournalError);
  // A short file cannot be a journal either.
  const std::string short_path = temp_journal("shortheader");
  append_raw(segment_path(short_path, 0), "MU");
  EXPECT_THROW(Journal journal(short_path), JournalError);
}

TEST(Journal, SegmentsRollAtEpochBoundariesAndSurviveReopen) {
  const std::string path = temp_journal("rotate");
  JournalConfig config;
  config.max_segment_bytes = 1;  // every settled/aborted record rolls
  {
    Journal journal(path, config);
    for (int epoch = 0; epoch < 3; ++epoch) {
      journal.append_begin(epoch, 10 + epoch);
      journal.append_settled(epoch, 11 + epoch);
    }
    // Three rolls: segments 0..3, the last one empty and current.
    EXPECT_EQ(journal.segment_count(), 4u);
    EXPECT_EQ(journal.oldest_segment(), 0u);
    EXPECT_EQ(journal.current_segment(), 3u);
  }
  EXPECT_EQ(list_segments(path), (std::vector<std::uint64_t>{0, 1, 2, 3}));

  // Reopen stitches the chain back together, records in order.
  Journal journal(path);
  ASSERT_EQ(journal.records().size(), 6u);
  for (int epoch = 0; epoch < 3; ++epoch) {
    EXPECT_EQ(journal.records()[static_cast<std::size_t>(epoch) * 2].epoch,
              epoch);
  }
  EXPECT_EQ(journal.truncated_tail_bytes(), 0u);
  const JournalScan scan = scan_journal(path);
  EXPECT_TRUE(scan.clean);
  EXPECT_TRUE(scan.manifest_ok);
}

TEST(Journal, CompactBelowUnlinksCoveredSegments) {
  const std::string path = temp_journal("compact");
  std::size_t records_kept = 0;
  {
    JournalConfig config;
    config.max_segment_bytes = 1;
    Journal journal(path, config);
    for (int epoch = 0; epoch < 3; ++epoch) {
      journal.append_begin(epoch, 20 + epoch);
      journal.append_settled(epoch, 21 + epoch);
    }
    // Segments 0..3; epoch 2's records live in segment 2, segment 3 is
    // the empty current tail.
    records_kept =
        journal.records().size() - journal.records_from_segment(2);

    EXPECT_EQ(journal.compact_below(2), 2u);
    EXPECT_EQ(journal.oldest_segment(), 2u);
    EXPECT_EQ(journal.segment_count(), 2u);
    EXPECT_EQ(list_segments(path), (std::vector<std::uint64_t>{2, 3}));
    // Idempotent: nothing left below the bound.
    EXPECT_EQ(journal.compact_below(2), 0u);
  }

  // A reopen sees only the surviving records...
  Journal reopened(path);
  EXPECT_EQ(reopened.records().size(), records_kept);
  EXPECT_EQ(reopened.oldest_segment(), 2u);
  // ...and genesis replay must refuse: history below the snapshot bound
  // is gone, so a replay that silently started mid-stream would hand
  // back a wrong network.
  pcn::Network network = make_network(small_config(7));
  EXPECT_THROW(replay_journal(reopened, network, small_config(7).policy),
               JournalError);

  // However aggressive the bound, the current tail segment never goes.
  EXPECT_EQ(reopened.compact_below(99), 1u);
  EXPECT_EQ(reopened.segment_count(), 1u);
  EXPECT_EQ(reopened.current_segment(), 3u);
}

TEST(Journal, ManifestIsAdvisoryAndRebuiltOnOpen) {
  const std::string path = temp_journal("manifest");
  {
    JournalConfig config;
    config.max_segment_bytes = 1;
    Journal journal(path, config);
    journal.append_begin(0, 5);
    journal.append_settled(0, 6);
  }
  EXPECT_TRUE(scan_journal(path).manifest_ok);

  // A corrupt manifest never hides data: the scan flags it, the
  // directory walk still finds every segment, and the next open
  // rewrites it.
  flip_byte(manifest_path(path), 9);
  {
    const JournalScan scan = scan_journal(path);
    EXPECT_FALSE(scan.manifest_ok);
    EXPECT_TRUE(scan.clean);
    EXPECT_EQ(scan.records.size(), 2u);
    Journal journal(path);
    EXPECT_EQ(journal.records().size(), 2u);
  }
  EXPECT_TRUE(scan_journal(path).manifest_ok);

  // Same story for a missing manifest.
  std::remove(manifest_path(path).c_str());
  EXPECT_FALSE(scan_journal(path).manifest_ok);
  Journal journal(path);
  EXPECT_TRUE(scan_journal(path).manifest_ok);
}

TEST(Journal, WatermarksCommitAtOutcomeSettleAndDropAtAbort) {
  const sim::SimulationConfig config = small_config(7);
  pcn::Network network = make_network(config);
  const std::uint64_t genesis = network.state_digest();
  const std::string path = temp_journal("watermarks");
  {
    Journal journal(path);
    // Epoch 0: an *empty* epoch (BEGIN straight to SETTLED, no OUTCOME)
    // that still drained sequenced bids — their watermarks must commit.
    journal.append_begin(0, genesis, SeqWatermarks{{2, 4}});
    journal.append_settled(0, genesis);
    // Epoch 1: aborted — its drained seqs must stay resubmittable.
    journal.append_begin(1, genesis, SeqWatermarks{{3, 9}});
    journal.append_aborted(1, genesis);
    // Epoch 1 retried: dangling BEGIN (crash before commit) — dropped.
    journal.append_begin(1, genesis, SeqWatermarks{{2, 7}});
  }
  Journal journal(path);
  const RecoveryReport report = replay_journal(journal, network, config.policy);
  EXPECT_EQ(report.rolled_back, 1);
  EXPECT_EQ(report.aborted_epochs, 1);
  EXPECT_EQ(report.watermarks, (SeqWatermarks{{2, 4}}));
}

TEST(Journal, EmptyJournalReplaysToGenesis) {
  const std::string path = temp_journal("empty");
  Journal journal(path);
  pcn::Network network = make_network(small_config(7));
  const std::uint64_t genesis = network.state_digest();
  const RecoveryReport report =
      replay_journal(journal, network, small_config(7).policy);
  EXPECT_EQ(report.epochs_settled, 0);
  EXPECT_EQ(report.rolled_back, 0);
  EXPECT_EQ(report.next_epoch, 0);
  EXPECT_FALSE(report.applied_inflight);
  EXPECT_EQ(report.final_digest, genesis);
  EXPECT_EQ(network.state_digest(), genesis);
}

TEST(Journal, ReplayReproducesServiceRunExactly) {
  const sim::SimulationConfig config = small_config(5);
  const std::string path = temp_journal("replay");
  core::M3DoubleAuction mechanism;

  pcn::Network live = make_network(config);
  {
    Journal journal(path);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    RebalanceService service(live, mechanism, service_config);
    for (int epoch = 0; epoch < 3; ++epoch) {
      const EpochReport report = service.run_epoch();
      EXPECT_EQ(report.epoch, epoch);
    }
  }

  Journal journal(path);
  pcn::Network recovered = make_network(config);
  const RecoveryReport report =
      replay_journal(journal, recovered, config.policy);
  EXPECT_EQ(report.epochs_settled, 3);
  EXPECT_EQ(report.rolled_back, 0);
  EXPECT_EQ(report.aborted_epochs, 0);
  EXPECT_FALSE(report.applied_inflight);
  EXPECT_EQ(report.next_epoch, 3);
  EXPECT_EQ(report.final_digest, live.state_digest());
  expect_networks_equal(recovered, live);
}

TEST(Journal, InflightOutcomeAppliedExactlyOnceAndClosed) {
  const sim::SimulationConfig config = small_config(5);
  const std::string path = temp_journal("inflight");
  core::M3DoubleAuction mechanism;

  // Reference: what one fully settled epoch produces.
  pcn::Network reference = make_network(config);
  ServiceConfig reference_config;
  reference_config.policy = config.policy;
  RebalanceService reference_service(reference, mechanism, reference_config);
  const EpochReport reference_report = reference_service.run_epoch();
  ASSERT_GT(reference_report.cycles_executed, 0) << "seed cleared no cycles";

  // Hand-build the crash shape: BEGIN + committed OUTCOME, no SETTLED —
  // the daemon died after the commit point but before settlement.
  {
    pcn::Network staging = make_network(config);
    const std::uint64_t pre = staging.state_digest();
    pcn::ExtractedGame extracted =
        pcn::extract_and_lock(staging, config.policy);
    const core::Outcome outcome = mechanism.run_truthful(extracted.game);
    Journal journal(path);
    journal.append_begin(0, pre);
    journal.append_outcome(0, pre, outcome);
  }

  {
    Journal journal(path);
    pcn::Network recovered = make_network(config);
    const RecoveryReport report =
        replay_journal(journal, recovered, config.policy);
    EXPECT_TRUE(report.applied_inflight);
    EXPECT_EQ(report.epochs_settled, 1);
    EXPECT_EQ(report.next_epoch, 1);
    EXPECT_EQ(report.final_digest, reference_report.network_digest);
    expect_networks_equal(recovered, reference);
    // Recovery closed the epoch durably.
    ASSERT_FALSE(journal.records().empty());
    EXPECT_EQ(journal.records().back().type, RecordType::kSettled);
    EXPECT_EQ(journal.records().back().digest, reference_report.network_digest);
  }

  // A second recovery (recovery itself interrupted and retried) replays
  // the close-out SETTLED instead of re-detecting an in-flight tail: the
  // outcome is never applied twice.
  Journal journal(path);
  pcn::Network again = make_network(config);
  const RecoveryReport second = replay_journal(journal, again, config.policy);
  EXPECT_FALSE(second.applied_inflight);
  EXPECT_EQ(second.epochs_settled, 1);
  EXPECT_EQ(second.next_epoch, 1);
  expect_networks_equal(again, reference);
}

TEST(Journal, DanglingBeginRolledBackAndEpochReused) {
  const sim::SimulationConfig config = small_config(7);
  const std::string path = temp_journal("dangling");
  pcn::Network network = make_network(config);
  const std::uint64_t genesis = network.state_digest();
  {
    Journal journal(path);
    journal.append_begin(0, genesis);
  }
  Journal journal(path);
  const RecoveryReport report =
      replay_journal(journal, network, config.policy);
  EXPECT_EQ(report.rolled_back, 1);
  EXPECT_EQ(report.epochs_settled, 0);
  EXPECT_EQ(report.next_epoch, 0);
  EXPECT_EQ(network.state_digest(), genesis);
}

TEST(Journal, AbortedEpochReusesItsNumber) {
  const sim::SimulationConfig config = small_config(7);
  const std::string path = temp_journal("aborted");
  pcn::Network network = make_network(config);
  const std::uint64_t genesis = network.state_digest();
  {
    Journal journal(path);
    journal.append_begin(2, genesis);
    journal.append_aborted(2, genesis);
  }
  Journal journal(path);
  const RecoveryReport report =
      replay_journal(journal, network, config.policy);
  EXPECT_EQ(report.aborted_epochs, 1);
  EXPECT_EQ(report.rolled_back, 0);
  EXPECT_EQ(report.next_epoch, 2);
  EXPECT_EQ(network.state_digest(), genesis);
}

TEST(Journal, WrongGenesisNetworkRejected) {
  const sim::SimulationConfig config = small_config(5);
  const std::string path = temp_journal("wronggenesis");
  {
    pcn::Network network = make_network(config);
    Journal journal(path);
    ServiceConfig service_config;
    service_config.policy = config.policy;
    service_config.journal = &journal;
    core::M3DoubleAuction mechanism;
    RebalanceService service(network, mechanism, service_config);
    service.run_epoch();
  }
  Journal journal(path);
  pcn::Network wrong = make_network(small_config(8));  // different seed
  EXPECT_THROW(replay_journal(journal, wrong, config.policy), JournalError);
}

TEST(Journal, MalformedRecordSequencesRejectedOnReplay) {
  const sim::SimulationConfig config = small_config(7);
  pcn::Network network = make_network(config);
  const std::uint64_t genesis = network.state_digest();

  {
    // SETTLED with no BEGIN at all.
    const std::string path = temp_journal("orphan_settled");
    {
      Journal journal(path);
      journal.append_settled(0, genesis);
    }
    Journal journal(path);
    pcn::Network net = make_network(config);
    EXPECT_THROW(replay_journal(journal, net, config.policy), JournalError);
  }
  {
    // ABORTED with no BEGIN.
    const std::string path = temp_journal("orphan_aborted");
    {
      Journal journal(path);
      journal.append_aborted(0, genesis);
    }
    Journal journal(path);
    pcn::Network net = make_network(config);
    EXPECT_THROW(replay_journal(journal, net, config.policy), JournalError);
  }
}

}  // namespace
}  // namespace musketeer::svc
