// Recovery fuzzer: byte-level corruption sweeps over the artifacts a
// crashed daemon leaves behind. A checkpointed run writes its journal
// segments and snapshots; then, for every byte offset, the final
// segment is truncated or bit-flipped and recovery is re-run. The
// contract under ANY single corruption:
//
//   * recovery never crashes or corrupts memory — it returns or throws
//     a structured JournalError;
//   * a recovered network is always a bit-exact epoch boundary of the
//     live run (the longest surviving committed prefix), never a
//     half-applied or invented state;
//   * a corrupt snapshot is detected by its end-to-end check and
//     recovery falls back to the older snapshot with a longer tail,
//     reproducing the exact final state.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc/snapshot.hpp"
#include "svc_test_util.hpp"

namespace musketeer::svc {
namespace {

using testutil::make_network;
using testutil::small_config;

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes,
                 std::size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(len));
}

/// The corpus every sweep runs against: a 8-epoch checkpointed run
/// (snapshots at next_epoch 3 and 6, tail = epochs 6..7) plus the
/// digest of every epoch boundary the live run passed through.
struct Corpus {
  std::string base;
  std::set<std::uint64_t> boundary_digests;
  std::uint64_t final_digest = 0;
  std::uint64_t tail_seq = 0;      // final (live) segment
  std::string tail_bytes;          // its pristine contents
  std::vector<std::uint64_t> snapshot_seqs;
};

Corpus build_corpus(const std::string& name) {
  Corpus corpus;
  corpus.base = ::testing::TempDir() + "musk_fuzz_" + name;
  testutil::remove_journal_files(corpus.base);

  const sim::SimulationConfig config = small_config(5);
  core::M3DoubleAuction mechanism;
  Journal journal(corpus.base);
  SnapshotStore snapshots(corpus.base);
  pcn::Network net = make_network(config);
  corpus.boundary_digests.insert(net.state_digest());  // genesis
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.snapshots = &snapshots;
  service_config.snapshot_every = 3;
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = 0; epoch < 8; ++epoch) {
    service.run_epoch();
    corpus.boundary_digests.insert(net.state_digest());
  }
  corpus.final_digest = net.state_digest();
  corpus.tail_seq = journal.current_segment();
  corpus.tail_bytes = read_bytes(segment_path(corpus.base, corpus.tail_seq));
  corpus.snapshot_seqs = list_snapshots(corpus.base);
  EXPECT_EQ(corpus.snapshot_seqs.size(), 2u);
  EXPECT_GT(corpus.tail_bytes.size(), 8u) << "empty tail: nothing to fuzz";
  return corpus;
}

/// One recovery attempt against the (possibly corrupted) on-disk state.
/// Returns true when recovery succeeded and stored the digest in `out`.
bool try_recover(const Corpus& corpus, const sim::SimulationConfig& config,
                 std::uint64_t* out) {
  Journal journal(corpus.base);
  SnapshotStore snapshots(corpus.base);
  pcn::Network net = make_network(config);
  const RecoveryReport rec = recover(journal, snapshots, net, config.policy);
  EXPECT_GE(rec.next_epoch, 0);
  EXPECT_LE(rec.next_epoch, 8);
  *out = net.state_digest();
  return true;
}

TEST(RecoveryFuzz, TailSegmentTruncatedAtEveryByteOffset) {
  const sim::SimulationConfig config = small_config(5);
  const Corpus corpus = build_corpus("truncate");
  const std::string tail = segment_path(corpus.base, corpus.tail_seq);

  for (std::size_t len = 0; len < corpus.tail_bytes.size(); ++len) {
    write_bytes(tail, corpus.tail_bytes, len);
    std::uint64_t digest = 0;
    try {
      try_recover(corpus, config, &digest);
    } catch (const JournalError& error) {
      ADD_FAILURE() << "truncation at " << len
                    << " made recovery refuse: " << error.what();
      continue;
    }
    EXPECT_TRUE(corpus.boundary_digests.count(digest))
        << "truncation at " << len << " recovered to a non-boundary state";
  }
  // Restore and prove the corpus itself recovers to the live endpoint.
  write_bytes(tail, corpus.tail_bytes, corpus.tail_bytes.size());
  std::uint64_t digest = 0;
  ASSERT_TRUE(try_recover(corpus, config, &digest));
  EXPECT_EQ(digest, corpus.final_digest);
}

TEST(RecoveryFuzz, TailSegmentBitFlippedAtEveryByteOffset) {
  const sim::SimulationConfig config = small_config(5);
  const Corpus corpus = build_corpus("flip");
  const std::string tail = segment_path(corpus.base, corpus.tail_seq);

  for (std::size_t off = 0; off < corpus.tail_bytes.size(); ++off) {
    std::string mutated = corpus.tail_bytes;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x40);
    write_bytes(tail, mutated, mutated.size());
    std::uint64_t digest = 0;
    bool recovered = false;
    try {
      recovered = try_recover(corpus, config, &digest);
    } catch (const JournalError&) {
      // A flip may land in a field the digest chain catches only at
      // replay time (e.g. a record's stored digest): refusing loudly is
      // as acceptable as truncating to the valid prefix.
      continue;
    }
    EXPECT_TRUE(recovered);
    EXPECT_TRUE(corpus.boundary_digests.count(digest))
        << "flip at " << off << " recovered to a non-boundary state";
  }
}

TEST(RecoveryFuzz, NewestSnapshotCorruptedAtEveryByteOffset) {
  const sim::SimulationConfig config = small_config(5);
  const Corpus corpus = build_corpus("snap");
  const std::string newest =
      snapshot_path(corpus.base, corpus.snapshot_seqs.back());
  const std::string pristine = read_bytes(newest);

  for (std::size_t off = 0; off < pristine.size(); ++off) {
    std::string mutated = pristine;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x40);
    write_bytes(newest, mutated, mutated.size());
    // Every flip must be caught by the end-to-end validation, and the
    // fallback (older snapshot + longer tail) reproduces the exact
    // final state — the journal itself is intact.
    std::uint64_t digest = 0;
    ASSERT_TRUE(try_recover(corpus, config, &digest)) << "offset " << off;
    EXPECT_EQ(digest, corpus.final_digest) << "offset " << off;
  }

  // Truncations of the snapshot likewise fall back cleanly.
  for (std::size_t len = 0; len < pristine.size();
       len += std::max<std::size_t>(1, pristine.size() / 256)) {
    write_bytes(newest, pristine, len);
    std::uint64_t digest = 0;
    ASSERT_TRUE(try_recover(corpus, config, &digest)) << "length " << len;
    EXPECT_EQ(digest, corpus.final_digest) << "length " << len;
  }
  write_bytes(newest, pristine, pristine.size());
}

TEST(RecoveryFuzz, AllSnapshotsCorruptWithCompactedHistoryRefuses) {
  const sim::SimulationConfig config = small_config(5);
  const Corpus corpus = build_corpus("refuse");
  ASSERT_GT(Journal(corpus.base).oldest_segment(), 0u)
      << "history was not compacted; the refusal path is not reachable";
  for (const std::uint64_t seq : corpus.snapshot_seqs) {
    const std::string path = snapshot_path(corpus.base, seq);
    const std::string bytes = read_bytes(path);
    std::string mutated = bytes;
    mutated[bytes.size() / 2] =
        static_cast<char>(mutated[bytes.size() / 2] ^ 0x40);
    write_bytes(path, mutated, mutated.size());
  }
  std::uint64_t digest = 0;
  EXPECT_THROW(try_recover(corpus, config, &digest), JournalError);
}

}  // namespace
}  // namespace musketeer::svc
