// Lock-rank auditor (util/ordered_mutex.hpp): death tests proving that
// rank inversions, same-rank nesting, and broken lock contracts abort
// with a usable diagnosis; positive tests proving legal nesting is
// silent and that a real service epoch actually exercises the hierarchy.
// Every auditor-dependent test self-skips in builds without
// -DMUSKETEER_LOCK_RANK (the relwithdebinfo preset) — the wrapper is a
// bare std::mutex there and nothing aborts.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc_test_util.hpp"
#include "util/ordered_mutex.hpp"

namespace musketeer::svc {
namespace {

using util::LockRank;
using util::OrderedLock;
using util::OrderedMutex;
using util::OrderedUniqueLock;

// fork()-based death tests in a process that may have spawned threads
// (gtest setup, earlier tests in the same filter) need the threadsafe
// style: re-exec the binary instead of forking a multithreaded process.
// A macro, not a helper: GTEST_SKIP() only returns from the function it
// appears in, so inside a helper the test body would keep running.
#define REQUIRE_AUDITOR_OR_SKIP()                                  \
  if (!util::lock_rank::compiled_in()) {                           \
    GTEST_SKIP() << "lock-rank auditor not compiled in "           \
                    "(build with -DMUSKETEER_LOCK_RANK=ON)";       \
  }                                                                \
  ::testing::FLAGS_gtest_death_test_style = "threadsafe"

TEST(LockOrderDeathTest, RankInversionAborts) {
  REQUIRE_AUDITOR_OR_SKIP();
  OrderedMutex lo(LockRank::kBidQueue, "lo");
  OrderedMutex hi(LockRank::kService, "hi");
  EXPECT_DEATH(
      {
        const OrderedLock first(lo);
        const OrderedLock second(hi);
      },
      "lock-rank violation: acquiring \"hi\" \\(rank 90\\) while holding "
      "\"lo\" \\(rank 20\\)");
}

TEST(LockOrderDeathTest, SameRankNestingAborts) {
  REQUIRE_AUDITOR_OR_SKIP();
  // Two peers of equal rank must never nest: two threads nesting them in
  // opposite orders is a deadlock no pairwise rank check would catch.
  OrderedMutex a(LockRank::kReports, "peer-a");
  OrderedMutex b(LockRank::kReports, "peer-b");
  EXPECT_DEATH(
      {
        const OrderedLock first(a);
        const OrderedLock second(b);
      },
      "acquiring \"peer-b\" \\(rank 30\\) while holding \"peer-a\" "
      "\\(rank 30\\)");
}

TEST(LockOrderDeathTest, AssertHeldWithoutLockAborts) {
  REQUIRE_AUDITOR_OR_SKIP();
  // The runtime counterpart of MUSK_REQUIRES: a _locked helper reached
  // without its lock dies here instead of corrupting guarded state.
  OrderedMutex m(LockRank::kJournal, "unheld");
  EXPECT_DEATH(m.assert_held(),
               "\"unheld\" \\(rank 40\\) must be held by the calling thread");
}

TEST(LockOrderDeathTest, ReleasingUnheldLockAborts) {
  REQUIRE_AUDITOR_OR_SKIP();
  // Releasing through the auditor without a matching acquire means the
  // wrapper was bypassed; the stack must not be silently corrupted.
  OrderedMutex m(LockRank::kJournal, "never-locked");
  EXPECT_DEATH(util::lock_rank::on_release(m),
               "releasing \"never-locked\" \\(rank 40\\) which the calling "
               "thread does not hold");
}

TEST(LockOrder, DecreasingRankNestingIsSilent) {
  OrderedMutex hi(LockRank::kService, "hi");
  OrderedMutex lo(LockRank::kBidQueue, "lo");
  {
    const OrderedLock first(hi);
    const OrderedLock second(lo);
    if (util::lock_rank::compiled_in()) {
      EXPECT_EQ(util::lock_rank::held_depth(), 2);
      EXPECT_TRUE(util::lock_rank::holds(hi));
      EXPECT_TRUE(util::lock_rank::holds(lo));
    }
  }
  if (util::lock_rank::compiled_in()) {
    EXPECT_EQ(util::lock_rank::held_depth(), 0);
    EXPECT_FALSE(util::lock_rank::holds(hi));
  }
}

TEST(LockOrder, NonLifoReleaseIsLegal) {
  // A unique lock may be released while a lower-ranked lock acquired
  // after it is still held (rank order constrains acquisition only).
  OrderedMutex hi(LockRank::kService, "hi");
  OrderedMutex lo(LockRank::kBidQueue, "lo");
  OrderedUniqueLock first(hi);
  OrderedUniqueLock second(lo);
  first.unlock();
  if (util::lock_rank::compiled_in()) {
    EXPECT_EQ(util::lock_rank::held_depth(), 1);
    EXPECT_FALSE(util::lock_rank::holds(hi));
    EXPECT_TRUE(util::lock_rank::holds(lo));
  }
  second.unlock();
  if (util::lock_rank::compiled_in()) {
    EXPECT_EQ(util::lock_rank::held_depth(), 0);
  }
}

TEST(LockOrder, AssertHeldPassesUnderLock) {
  OrderedMutex m(LockRank::kJournal, "held");
  const OrderedLock lock(m);
  m.assert_held();  // must not abort, compiled in or not
}

// A real journaled epoch on this thread must actually nest locks from
// the hierarchy (epoch lock over network/journal/reports locks). If a
// refactor flattens the service onto one mutex — or stops locking — the
// peak depth stops moving and this fails before any race does.
TEST(LockOrder, CleanEpochNestsServiceLocks) {
  if (!util::lock_rank::compiled_in()) {
    GTEST_SKIP() << "lock-rank auditor not compiled in";
  }
  const sim::SimulationConfig config = testutil::small_config(7);
  pcn::Network net = testutil::make_network(config);
  core::M3DoubleAuction mechanism;
  const std::string path = ::testing::TempDir() + "musk_lock_order.journal";
  testutil::remove_journal_files(path);
  Journal journal(path);

  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  RebalanceService service(net, mechanism, service_config);

  const EpochReport report = service.run_epoch();
  EXPECT_EQ(report.epoch, 0);
  EXPECT_GE(util::lock_rank::thread_peak_depth(), 2)
      << "run_epoch no longer nests the epoch lock over the "
         "network/journal locks";
  EXPECT_EQ(util::lock_rank::held_depth(), 0)
      << "run_epoch leaked a lock";
  testutil::remove_journal_files(path);
}

// Regression for a race the annotation sweep surfaced: on_epoch() used
// to push into callbacks_ unlocked while a concurrent manual run_epoch()
// iterated it. Registration now serializes under the epoch lock; this
// test drives both sides at once and must stay clean under tsan.
TEST(LockOrder, CallbackRegistrationSerializedWithEpochs) {
  const sim::SimulationConfig config = testutil::small_config(11);
  pcn::Network net = testutil::make_network(config);
  core::M3DoubleAuction mechanism;
  ServiceConfig service_config;
  service_config.policy = config.policy;
  RebalanceService service(net, mechanism, service_config);

  constexpr int kEpochs = 8;
  std::atomic<int> fired{0};
  std::jthread worker([&service] {
    for (int i = 0; i < kEpochs; ++i) service.run_epoch();
  });
  for (int i = 0; i < 4; ++i) {
    service.on_epoch(
        [&fired](const EpochReport&) { fired.fetch_add(1); });
  }
  worker.join();

  EXPECT_EQ(service.epochs_cleared(), kEpochs);
  // Every callback fires once per epoch cleared after its registration;
  // with 4 callbacks and 8 epochs that is at most 32, at least 0, and
  // exactly fired's value — the point is tsan/auditor silence, not the
  // count.
  EXPECT_LE(fired.load(), 4 * kEpochs);
}

}  // namespace
}  // namespace musketeer::svc
