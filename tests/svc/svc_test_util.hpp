// Shared helpers for the service test suite.
#pragma once

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "pcn/network.hpp"
#include "sim/engine.hpp"
#include "svc/journal.hpp"
#include "svc/snapshot.hpp"
#include "util/rng.hpp"

namespace musketeer::svc::testutil {

/// Removes every on-disk artifact a journal base can own — rotated
/// segments, manifest, snapshots, stray tmp files — so a test starts
/// from a genuinely fresh journal (std::remove on the bare base stopped
/// being enough when the journal became segmented).
inline void remove_journal_files(const std::string& base) {
  for (const std::uint64_t seq : list_segments(base)) {
    std::remove(segment_path(base, seq).c_str());
  }
  for (const std::uint64_t seq : list_snapshots(base)) {
    std::remove(snapshot_path(base, seq).c_str());
  }
  std::remove(manifest_path(base).c_str());
  std::remove((base + ".snap.tmp").c_str());
  std::remove((manifest_path(base) + ".tmp").c_str());
  std::remove(base.c_str());
}

/// Channel-by-channel exact equality, the bar the ISSUE's end-to-end
/// acceptance sets: balances are integer coins, so a service-backed run
/// must match the single-threaded one to the coin, not approximately.
inline void expect_networks_equal(const pcn::Network& a,
                                  const pcn::Network& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_channels(), b.num_channels());
  for (pcn::ChannelId c = 0; c < a.num_channels(); ++c) {
    const pcn::Channel& x = a.channel(c);
    const pcn::Channel& y = b.channel(c);
    EXPECT_EQ(x.a, y.a) << "channel " << c;
    EXPECT_EQ(x.b, y.b) << "channel " << c;
    EXPECT_EQ(x.balance_a, y.balance_a) << "channel " << c;
    EXPECT_EQ(x.balance_b, y.balance_b) << "channel " << c;
    EXPECT_EQ(x.locked_a, y.locked_a) << "channel " << c;
    EXPECT_EQ(x.locked_b, y.locked_b) << "channel " << c;
    EXPECT_EQ(x.disabled, y.disabled) << "channel " << c;
  }
}

/// Two calls with the same config produce identical networks (the rng
/// is seeded per call), so each side of an equivalence test gets its
/// own copy to mutate.
inline pcn::Network make_network(const sim::SimulationConfig& config) {
  util::Rng rng(config.seed);
  return sim::build_network(config, rng);
}

inline sim::SimulationConfig small_config(std::uint64_t seed = 7) {
  sim::SimulationConfig config;
  config.num_nodes = 24;
  config.initial_skew = 0.4;
  config.seed = seed;
  return config;
}

}  // namespace musketeer::svc::testutil
