// End-to-end: in-process musketeerd, concurrent wire clients, exact
// equivalence of the settled network with a single-threaded sim run, and
// unix-socket path reclamation (stale sockets reclaimed, live ones and
// regular files refused).
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/mechanism_factory.hpp"
#include "sim/engine.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc_test_util.hpp"

namespace musketeer::svc {
namespace {

using testutil::expect_networks_equal;
using testutil::make_network;
using testutil::small_config;

constexpr int kClients = 4;
constexpr int kEpochs = 3;

std::unique_ptr<Daemon> make_daemon(const sim::SimulationConfig& config,
                                    DaemonConfig daemon_config = {}) {
  daemon_config.service.policy = config.policy;
  daemon_config.server.listen = "tcp:0";
  return std::make_unique<Daemon>(
      make_network(config), core::make_mechanism("m3", {}), daemon_config);
}

// The ISSUE's acceptance test: a daemon serving >= 4 concurrent client
// threads over >= 3 epochs settles to exactly the network state of an
// equivalent single-threaded sim::Engine run with the same seed and
// mechanism. The clients submit participation refreshes (no overrides),
// so the cleared bids equal the truthful valuations the sim uses.
TEST(ServerE2E, ConcurrentClientsMatchSingleThreadedSim) {
  sim::SimulationConfig config = small_config(11);

  auto daemon = make_daemon(config);
  daemon->start(/*periodic_epochs=*/false);

  std::vector<Client> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back(daemon->endpoint());
    clients[static_cast<std::size_t>(t)].hello(static_cast<core::PlayerId>(t));
  }

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    {
      std::vector<std::jthread> threads;
      threads.reserve(kClients);
      for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&clients, t, epoch] {
          Client& client = clients[static_cast<std::size_t>(t)];
          for (core::PlayerId p = static_cast<core::PlayerId>(t); p < 24;
               p += kClients) {
            BidSubmission bid;
            bid.player = p;
            const BidAckMsg ack = client.submit(bid);
            EXPECT_TRUE(intake_ok(ack.status))
                << "player " << p << ": " << to_string(ack.status);
            EXPECT_EQ(ack.intake_epoch, static_cast<std::uint32_t>(epoch));
          }
        });
      }
    }  // all submissions acked before the epoch clears
    const EpochReport report = daemon->service().run_epoch();
    EXPECT_EQ(report.bids_applied, 24u);

    // Every client observes the broadcast for this epoch, including the
    // settled-state digest the server computed after settlement.
    for (Client& client : clients) {
      const auto result = client.wait_epoch_at_least(
          static_cast<std::uint32_t>(epoch), std::chrono::seconds(30));
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(result->bids_applied, 24u);
      EXPECT_EQ(result->network_digest, report.network_digest);
    }
  }

  // Single-threaded reference: same seed, no payments, same epochs.
  config.epochs = kEpochs;
  config.payments_per_epoch = 0;
  core::M3DoubleAuction mechanism;
  sim::MechanismBackend backend(mechanism);
  pcn::Network reference(0);
  sim::run_simulation(config, &backend, &reference);

  expect_networks_equal(daemon->network_snapshot(), reference);
  // The digest the clients saw on the wire is the digest of the replay.
  EXPECT_EQ(daemon->network_snapshot().state_digest(),
            reference.state_digest());
  daemon->stop();
}

// Load shedding: submitting 2x the queue capacity of distinct players
// yields explicit kRejectedFull for the overflow and the server keeps
// serving afterwards.
TEST(ServerE2E, GracefulSheddingAtTwiceQueueCapacity) {
  const sim::SimulationConfig config = small_config(12);
  DaemonConfig daemon_config;
  daemon_config.service.queue_capacity = 8;
  auto daemon = make_daemon(config, daemon_config);
  daemon->start(/*periodic_epochs=*/false);

  Client client(daemon->endpoint());
  int accepted = 0;
  int shed = 0;
  for (core::PlayerId p = 0; p < 16; ++p) {  // 2x capacity, distinct
    BidSubmission bid;
    bid.player = p;
    const BidAckMsg ack = client.submit(bid);
    if (ack.status == IntakeStatus::kAccepted) {
      ++accepted;
    } else {
      EXPECT_EQ(ack.status, IntakeStatus::kRejectedFull);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(shed, 8);

  // Replacing a queued player's bid still works at capacity...
  BidSubmission replace;
  replace.player = 3;
  EXPECT_EQ(client.submit(replace).status, IntakeStatus::kReplaced);

  // ...and after the epoch drains the queue the server accepts again.
  EXPECT_EQ(daemon->service().run_epoch().bids_applied, 8u);
  BidSubmission fresh;
  fresh.player = 15;
  EXPECT_EQ(client.submit(fresh).status, IntakeStatus::kAccepted);
  daemon->stop();
}

TEST(ServerE2E, InvalidAndMalformedInputHandled) {
  const sim::SimulationConfig config = small_config(14);
  auto daemon = make_daemon(config);
  daemon->start(/*periodic_epochs=*/false);

  Client client(daemon->endpoint());
  BidSubmission bad;
  bad.player = 9999;  // out of range for a 24-node network
  EXPECT_EQ(client.submit(bad).status, IntakeStatus::kRejectedInvalid);

  BidSubmission out_of_box;
  out_of_box.player = 1;
  out_of_box.has_head = true;
  out_of_box.head_bid = 0.5;  // outside [0, kMaxFeeRate)
  EXPECT_EQ(client.submit(out_of_box).status, IntakeStatus::kRejectedInvalid);

  // A second client stays usable while the first misbehaves.
  Client good(daemon->endpoint());
  BidSubmission ok;
  ok.player = 2;
  EXPECT_TRUE(intake_ok(good.submit(ok).status));
  daemon->stop();
}

TEST(ServerE2E, PeriodicDaemonBroadcastsAndNotifies) {
  const sim::SimulationConfig config = small_config(15);

  // Probe an identical network to find a player that trades in epoch 0.
  pcn::Network probe_net = make_network(config);
  core::M3DoubleAuction mechanism;
  ServiceConfig probe_config;
  probe_config.policy = config.policy;
  RebalanceService probe(probe_net, mechanism, probe_config);
  const EpochReport probe_report = probe.run_epoch();
  ASSERT_FALSE(probe_report.notices.empty()) << "seed cleared no cycles";
  const core::PlayerId trader = probe_report.notices.front().player;

  DaemonConfig daemon_config;
  daemon_config.service.epoch_period = std::chrono::milliseconds(20);
  auto daemon = make_daemon(config, daemon_config);
  daemon->start(/*periodic_epochs=*/true);

  Client client(daemon->endpoint());
  client.hello(trader);
  const auto result =
      client.wait_epoch_at_least(0, std::chrono::seconds(30));
  ASSERT_TRUE(result.has_value());

  // The trader's notice for epoch 0 arrives with the broadcast.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool notified = false;
  while (!notified && std::chrono::steady_clock::now() < deadline) {
    for (const PlayerNoticeMsg& msg : client.take_notices()) {
      if (msg.epoch == 0) {
        EXPECT_EQ(msg.notice.player, trader);
        EXPECT_EQ(msg.notice.cycles, probe_report.notices.front().cycles);
        EXPECT_DOUBLE_EQ(msg.notice.price,
                         probe_report.notices.front().price);
        notified = true;
      }
    }
    if (!notified) {
      // Pump the socket: waiting for a later epoch reads (and queues)
      // any notice frames interleaved with the broadcasts.
      client.take_epoch_results();
      client.wait_epoch_at_least(1, std::chrono::milliseconds(100));
    }
  }
  EXPECT_TRUE(notified);
  daemon->stop();
}

TEST(ServerE2E, ShutdownClosesClients) {
  const sim::SimulationConfig config = small_config(16);
  auto daemon = make_daemon(config);
  daemon->start(/*periodic_epochs=*/false);
  Client client(daemon->endpoint());
  BidSubmission bid;
  bid.player = 0;
  EXPECT_TRUE(intake_ok(client.submit(bid).status));
  daemon->stop();
  // The server said kShutdown (or closed the socket); the next interaction
  // observes the closed connection rather than hanging.
  client.wait_epoch_at_least(1000, std::chrono::milliseconds(500));
  // Repeated submits against the stopped server must fail fast (shutdown
  // frame, dropped connection, or send error) instead of hanging.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          client.submit(bid, std::chrono::milliseconds(100));
        }
      },
      std::runtime_error);
  EXPECT_TRUE(client.closed());
  daemon.reset();
}

std::string unix_socket_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "musk_e2e_" + name + ".sock";
  std::remove(path.c_str());
  return path;
}

std::unique_ptr<Daemon> make_unix_daemon(const sim::SimulationConfig& config,
                                         const std::string& path) {
  DaemonConfig daemon_config;
  daemon_config.service.policy = config.policy;
  daemon_config.server.listen = "unix:" + path;
  return std::make_unique<Daemon>(
      make_network(config), core::make_mechanism("m3", {}), daemon_config);
}

// Binds a unix socket at `path` and closes the fd without unlinking —
// exactly the wreckage a kill -9'd daemon leaves behind. connect() to it
// yields ECONNREFUSED, which is how listen_on proves the owner is dead.
void leave_stale_socket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0)
      << std::strerror(errno);
  ::close(fd);
}

TEST(ServerE2E, StaleUnixSocketReclaimed) {
  const sim::SimulationConfig config = small_config(11);
  const std::string path = unix_socket_path("stale");
  leave_stale_socket(path);

  auto daemon = make_unix_daemon(config, path);
  daemon->start(/*periodic_epochs=*/false);
  Client client(daemon->endpoint());
  BidSubmission bid;
  bid.player = 0;
  EXPECT_TRUE(intake_ok(client.submit(bid).status));
  client.close();
  daemon->stop();
  daemon.reset();

  // The socket file the stopped daemon left behind is itself stale now:
  // a restart on the same path reclaims it the same way.
  auto second = make_unix_daemon(config, path);
  second->start(/*periodic_epochs=*/false);
  Client again(second->endpoint());
  EXPECT_TRUE(intake_ok(again.submit(bid).status));
  second->stop();
}

TEST(ServerE2E, LiveUnixSocketNotStolen) {
  const sim::SimulationConfig config = small_config(12);
  const std::string path = unix_socket_path("live");

  auto first = make_unix_daemon(config, path);
  first->start(/*periodic_epochs=*/false);

  // A second daemon on the same path must refuse to start rather than
  // unlink the live socket out from under the first.
  auto usurper = make_unix_daemon(config, path);
  EXPECT_THROW(usurper->start(/*periodic_epochs=*/false),
               std::runtime_error);

  // The first daemon is unharmed and still answering.
  Client client(first->endpoint());
  BidSubmission bid;
  bid.player = 1;
  EXPECT_TRUE(intake_ok(client.submit(bid).status));
  first->stop();
}

TEST(ServerE2E, NonSocketFileAtUnixPathRefusedAndPreserved) {
  const sim::SimulationConfig config = small_config(13);
  const std::string path = unix_socket_path("notasocket");
  {
    std::ofstream out(path);
    out << "precious user data";
  }

  auto daemon = make_unix_daemon(config, path);
  EXPECT_THROW(daemon->start(/*periodic_epochs=*/false),
               std::runtime_error);

  // The file was not unlinked or truncated.
  std::ifstream in(path);
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "precious user data");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace musketeer::svc
