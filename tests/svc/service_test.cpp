// RebalanceService: snapshot/clear/settle equivalence with the historic
// inline path, bid-override application, notices, the scheduler, and
// clean abort (locks released, journal closed) when a mechanism throws.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "pcn/rebalancer.hpp"
#include "sim/engine.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc/sim_backend.hpp"
#include "svc_test_util.hpp"

namespace musketeer::svc {
namespace {

using testutil::expect_networks_equal;
using testutil::make_network;
using testutil::small_config;

TEST(Service, EmptyQueueEpochMatchesInlineRebalance) {
  const sim::SimulationConfig config = small_config(7);
  pcn::Network service_net = make_network(config);
  pcn::Network inline_net = make_network(config);
  core::M3DoubleAuction mechanism;

  ServiceConfig service_config;
  service_config.policy = config.policy;
  RebalanceService service(service_net, mechanism, service_config);
  sim::MechanismBackend inline_backend(mechanism);

  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochReport report = service.run_epoch();
    const pcn::RebalanceStats stats =
        inline_backend.rebalance(inline_net, config.policy);
    EXPECT_EQ(report.epoch, epoch);
    EXPECT_EQ(report.cycles_executed, stats.cycles_executed);
    EXPECT_EQ(report.rebalanced_volume, stats.volume);
    expect_networks_equal(service_net, inline_net);
  }
  EXPECT_EQ(service.epochs_cleared(), 3);
  EXPECT_EQ(service.reports().size(), 3u);
}

TEST(Service, ServiceBackendSimulationIsBitIdentical) {
  sim::SimulationConfig config = small_config(13);
  config.epochs = 4;
  config.payments_per_epoch = 40;
  core::M3DoubleAuction mechanism;

  pcn::Network inline_final(0);
  sim::MechanismBackend inline_backend(mechanism);
  const sim::SimulationResult inline_result =
      sim::run_simulation(config, &inline_backend, &inline_final);

  pcn::Network service_final(0);
  ServiceBackend service_backend(mechanism);
  const sim::SimulationResult service_result =
      sim::run_simulation(config, &service_backend, &service_final);

  ASSERT_EQ(inline_result.epochs.size(), service_result.epochs.size());
  for (std::size_t e = 0; e < inline_result.epochs.size(); ++e) {
    EXPECT_EQ(inline_result.epochs[e].payments_succeeded,
              service_result.epochs[e].payments_succeeded);
    EXPECT_EQ(inline_result.epochs[e].rebalanced_volume,
              service_result.epochs[e].rebalanced_volume);
    EXPECT_EQ(inline_result.epochs[e].rebalance_cycles,
              service_result.epochs[e].rebalance_cycles);
  }
  expect_networks_equal(service_final, inline_final);
}

TEST(Service, SubmittedBidOverridesTruthfulValuation) {
  const sim::SimulationConfig config = small_config(21);
  pcn::Network with_bid_net = make_network(config);
  pcn::Network truthful_net = make_network(config);
  core::M3DoubleAuction mechanism;
  ServiceConfig service_config;
  service_config.policy = config.policy;

  // Run one truthful epoch to find a player that actually trades.
  RebalanceService probe(truthful_net, mechanism, service_config);
  const EpochReport truthful = probe.run_epoch();
  ASSERT_GT(truthful.cycles_executed, 0) << "seed cleared no cycles";
  ASSERT_FALSE(truthful.notices.empty());

  // A buyer bidding zero on every edge it heads cannot be charged a
  // positive price (M3 is individually rational against the bid).
  const core::PlayerId player = truthful.notices.front().player;
  RebalanceService service(with_bid_net, mechanism, service_config);
  BidSubmission bid;
  bid.player = player;
  bid.has_head = true;
  bid.head_bid = 0.0;
  ASSERT_EQ(service.submit(bid), IntakeStatus::kAccepted);
  const EpochReport shaded = service.run_epoch();
  EXPECT_EQ(shaded.bids_applied, 1u);
  for (const PlayerNotice& notice : shaded.notices) {
    if (notice.player == player) {
      EXPECT_LE(notice.price, 1e-12);
    }
  }

  // The bid applied to exactly that epoch: the next clear is truthful
  // again and the two networks have genuinely diverged or matched on
  // their own merits — either way the service kept running.
  const EpochReport next = service.run_epoch();
  EXPECT_EQ(next.bids_applied, 0u);
  EXPECT_EQ(next.epoch, 1);
}

TEST(Service, NoticesAreConsistentWithReports) {
  const sim::SimulationConfig config = small_config(5);
  pcn::Network network = make_network(config);
  core::M4DelayedAuction mechanism(2.0);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  RebalanceService service(network, mechanism, service_config);

  const EpochReport report = service.run_epoch();
  ASSERT_GT(report.cycles_executed, 0);
  ASSERT_FALSE(report.notices.empty());
  core::PlayerId previous = -1;
  int max_cycles = 0;
  for (const PlayerNotice& notice : report.notices) {
    EXPECT_GT(notice.player, previous) << "notices not sorted/unique";
    previous = notice.player;
    EXPECT_GT(notice.cycles, 0);
    EXPECT_TRUE(std::isfinite(notice.price));
    max_cycles = std::max(max_cycles, notice.cycles);
  }
  EXPECT_LE(max_cycles, report.cycles_executed);
}

TEST(Service, SchedulerClearsEpochsAndStops) {
  const sim::SimulationConfig config = small_config(3);
  pcn::Network network = make_network(config);
  core::M3DoubleAuction mechanism;
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.epoch_period = std::chrono::milliseconds(5);
  RebalanceService service(network, mechanism, service_config);

  service.start();
  EXPECT_TRUE(service.wait_epochs(3, std::chrono::seconds(30)));
  service.stop();
  const int cleared = service.epochs_cleared();
  EXPECT_GE(cleared, 3);
  // After stop, intake reports closed and no further epochs clear.
  EXPECT_EQ(service.submit(BidSubmission{}), IntakeStatus::kRejectedClosed);
  EXPECT_EQ(service.epochs_cleared(), cleared);
}

TEST(Service, MaxEpochsStopsScheduler) {
  const sim::SimulationConfig config = small_config(4);
  pcn::Network network = make_network(config);
  core::M3DoubleAuction mechanism;
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.epoch_period = std::chrono::milliseconds(1);
  service_config.max_epochs = 2;
  RebalanceService service(network, mechanism, service_config);
  service.start();
  EXPECT_TRUE(service.wait_epochs(2, std::chrono::seconds(30)));
  service.stop();
  EXPECT_EQ(service.epochs_cleared(), 2);
}

TEST(Service, ConcurrentSubmitsDuringClears) {
  const sim::SimulationConfig config = small_config(6);
  pcn::Network network = make_network(config);
  core::M3DoubleAuction mechanism;
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.queue_capacity = 8;
  RebalanceService service(network, mechanism, service_config);

  std::uint64_t applied = 0;
  {
    std::vector<std::jthread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&service, t] {
        for (int i = 0; i < 200; ++i) {
          BidSubmission bid;
          bid.player = static_cast<core::PlayerId>((t * 7 + i) % 24);
          service.submit(bid);
        }
      });
    }
    for (int epoch = 0; epoch < 5; ++epoch) {
      applied += service.run_epoch().bids_applied;
    }
  }
  applied += service.run_epoch().bids_applied;  // drain the leftovers

  const IntakeCounters counters = service.intake_counters();
  EXPECT_EQ(counters.total(), 800u);
  // Every queued (accepted) bid was applied to exactly one epoch.
  EXPECT_EQ(applied, counters.accepted);
  EXPECT_LE(applied, 6u * service.queue_capacity());
}

TEST(Service, SteadyStateEpochsPerformZeroGraphRebuilds) {
  // The zero-rebuild guarantee: with no payment traffic between epochs,
  // the network converges, extraction becomes topology-stable, and every
  // quiescent clear rebinds the service's SolveContext in place.
  const sim::SimulationConfig config = small_config(21);
  pcn::Network network = make_network(config);
  core::M3DoubleAuction mechanism;
  ServiceConfig service_config;
  service_config.policy = config.policy;
  RebalanceService service(network, mechanism, service_config);

  std::vector<EpochReport> reports;
  for (int epoch = 0; epoch < 8; ++epoch) {
    reports.push_back(service.run_epoch());
  }

  // The first epoch binds the freshly extracted topology: >= 1 build.
  ASSERT_GT(reports[0].game_edges, 0);
  EXPECT_GE(reports[0].graph_rebuilds, 1);

  // After the first epoch that moves nothing, the network (and hence the
  // extracted game structure) is fixed: every later epoch must report
  // zero structure builds AND keep moving nothing.
  std::size_t quiescent = reports.size();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].cycles_executed == 0) {
      quiescent = i;
      break;
    }
  }
  ASSERT_LT(quiescent, reports.size()) << "network never went quiescent";
  for (std::size_t i = quiescent + 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].graph_rebuilds, 0) << "epoch " << i;
    EXPECT_EQ(reports[i].cycles_executed, 0) << "epoch " << i;
    EXPECT_EQ(reports[i].network_digest, reports[quiescent].network_digest)
        << "epoch " << i;
  }
}

/// Fails its first clear, then behaves like M3: the service must treat
/// the failure as a clean abort and the retry as a fresh epoch.
class ThrowOnceMechanism : public core::Mechanism {
 public:
  std::string_view name() const override { return "throw-once"; }

 protected:
  core::Outcome run_impl(flow::SolveContext& ctx, const core::Game& game,
                         const core::BidVector& bids) const override {
    if (!thrown_) {
      thrown_ = true;
      throw std::runtime_error("mechanism exploded mid-clear");
    }
    return inner_.run(ctx, game, bids);
  }

 private:
  mutable bool thrown_ = false;
  core::M3DoubleAuction inner_;
};

TEST(Service, MechanismThrowReleasesLocksAndReusesEpoch) {
  const sim::SimulationConfig config = small_config(5);
  const std::string journal_path =
      ::testing::TempDir() + "musk_service_abort.jrn";
  testutil::remove_journal_files(journal_path);
  pcn::Network network = make_network(config);
  pcn::Network reference = make_network(config);
  const std::uint64_t genesis = network.state_digest();
  ThrowOnceMechanism mechanism;
  Journal journal(journal_path);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  RebalanceService service(network, mechanism, service_config);

  // A bid queued for the failed epoch is consumed by the drain; the
  // epoch itself aborts.
  BidSubmission bid;
  bid.player = 1;
  ASSERT_EQ(service.submit(bid), IntakeStatus::kAccepted);
  EXPECT_THROW(service.run_epoch(), std::runtime_error);

  // Clean abort: every HTLC pre-lock released, balances untouched, and
  // the failed epoch's number not consumed.
  EXPECT_EQ(network.state_digest(), genesis);
  for (pcn::ChannelId c = 0; c < network.num_channels(); ++c) {
    EXPECT_EQ(network.channel(c).locked_a, 0) << "channel " << c;
    EXPECT_EQ(network.channel(c).locked_b, 0) << "channel " << c;
  }
  EXPECT_EQ(service.epochs_cleared(), 0);
  EXPECT_TRUE(service.reports().empty());

  // The abort is durable: the journal closed epoch 0 with ABORTED, so a
  // recovering daemon knows the rollback was deliberate.
  ASSERT_EQ(journal.records().size(), 2u);
  EXPECT_EQ(journal.records()[0].type, RecordType::kBegin);
  EXPECT_EQ(journal.records()[0].epoch, 0);
  EXPECT_EQ(journal.records()[0].digest, genesis);
  EXPECT_EQ(journal.records()[1].type, RecordType::kAborted);
  EXPECT_EQ(journal.records()[1].epoch, 0);

  // The retry clears epoch 0 and, bids aside, matches a service that
  // never failed (the aborted attempt left no trace on the network).
  const EpochReport report = service.run_epoch();
  EXPECT_EQ(report.epoch, 0);
  EXPECT_EQ(report.bids_applied, 0u);  // the bid died with the abort

  core::M3DoubleAuction clean;
  ServiceConfig reference_config;
  reference_config.policy = config.policy;
  RebalanceService reference_service(reference, clean, reference_config);
  reference_service.run_epoch();
  expect_networks_equal(network, reference);
}

}  // namespace
}  // namespace musketeer::svc
