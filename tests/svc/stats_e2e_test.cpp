// End-to-end live introspection: an in-process daemon answering
// kStatsRequest over the wire. Covers snapshot plausibility (queue
// capacity, gini range, registry JSON), uptime monotonicity across
// calls, intake counters reflecting submissions, and epoch advancement
// after run_epoch().
#include <chrono>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/mechanism_factory.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/wire.hpp"
#include "svc_test_util.hpp"

namespace musketeer::svc {
namespace {

using testutil::make_network;
using testutil::small_config;

std::unique_ptr<Daemon> make_daemon(const sim::SimulationConfig& config) {
  DaemonConfig daemon_config;
  daemon_config.service.policy = config.policy;
  daemon_config.server.listen = "tcp:0";
  return std::make_unique<Daemon>(
      make_network(config), core::make_mechanism("m3", {}), daemon_config);
}

TEST(StatsE2E, LiveSnapshotOverTheWire) {
  const sim::SimulationConfig config = small_config(17);
  auto daemon = make_daemon(config);
  daemon->start(/*periodic_epochs=*/false);

  Client client(daemon->endpoint());
  client.hello(0);

  // Fresh daemon: nothing cleared, empty queue, sane static fields.
  const StatsResponseMsg before = client.stats();
  EXPECT_EQ(before.epoch, 0u);
  // The solve-pool width is static daemon configuration (>= 1 even on
  // the legacy single-thread path); component stats start at zero.
  EXPECT_GE(before.solve_threads, 1u);
  EXPECT_EQ(before.last_components, 0u);
  EXPECT_EQ(before.largest_component, 0u);
  EXPECT_EQ(before.queue_depth, 0u);
  EXPECT_GT(before.queue_capacity, 0u);
  EXPECT_GE(before.uptime_seconds, 0.0);
  EXPECT_GE(before.imbalance_gini, 0.0);
  EXPECT_LE(before.imbalance_gini, 1.0);
  EXPECT_GE(before.imbalance_mean, 0.0);
  EXPECT_LE(before.imbalance_mean, 1.0);
  EXPECT_EQ(before.intake.total(), 0u);
  // The snapshot carries the full metrics registry as JSON.
  EXPECT_NE(before.registry_json.find("\"counters\""), std::string::npos);
  EXPECT_NE(before.registry_json.find("\"histograms\""), std::string::npos);

  // A submission shows up in queue depth and intake counters.
  BidSubmission bid;
  bid.player = 1;
  const BidAckMsg ack = client.submit(bid);
  ASSERT_TRUE(intake_ok(ack.status));
  const StatsResponseMsg mid = client.stats();
  EXPECT_EQ(mid.queue_depth, 1u);
  EXPECT_GE(mid.queue_high_watermark, 1u);
  EXPECT_EQ(mid.intake.accepted, 1u);
  EXPECT_GE(mid.uptime_seconds, before.uptime_seconds);

  // Clearing an epoch advances the epoch counter, drains the queue,
  // and refreshes the settle-time imbalance gauges.
  const EpochReport report = daemon->service().run_epoch();
  EXPECT_EQ(report.bids_applied, 1u);
  const StatsResponseMsg after = client.stats();
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_EQ(after.queue_depth, 0u);
  EXPECT_GE(after.imbalance_gini, 0.0);
  EXPECT_LE(after.imbalance_gini, 1.0);
  EXPECT_GE(after.uptime_seconds, mid.uptime_seconds);

#ifdef MUSKETEER_OBS
  // With instrumentation compiled in, the epoch left its mark on the
  // registry the snapshot exports.
  EXPECT_NE(after.registry_json.find("svc.epoch.total"), std::string::npos);
#endif

  // Stats responses must round-trip the wire codec exactly — including
  // the v4 solve-shape fields, pinned to distinct values so a codec
  // that drops or reorders them cannot pass.
  StatsResponseMsg shaped = after;
  shaped.solve_threads = 8;
  shaped.last_components = 3;
  shaped.largest_component = 41;
  const std::string encoded = encode_stats_response(shaped);
  const StatsResponseMsg decoded = decode_stats_response(encoded);
  EXPECT_EQ(decoded.epoch, shaped.epoch);
  EXPECT_EQ(decoded.queue_capacity, shaped.queue_capacity);
  EXPECT_EQ(decoded.intake.accepted, shaped.intake.accepted);
  EXPECT_EQ(decoded.registry_json, shaped.registry_json);
  EXPECT_EQ(decoded.solve_threads, 8u);
  EXPECT_EQ(decoded.last_components, 3u);
  EXPECT_EQ(decoded.largest_component, 41u);

  daemon->stop();
}

}  // namespace
}  // namespace musketeer::svc
