// Wire protocol: framing, incremental parsing, adversarial headers, and
// per-message payload round-trips.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/io.hpp"
#include "svc/wire.hpp"

namespace musketeer::svc {
namespace {

TEST(Wire, FrameRoundTrip) {
  std::string stream;
  append_frame(stream, MsgType::kHello, "abc");
  append_frame(stream, MsgType::kShutdown, "");

  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  const auto first = parser.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kHello);
  EXPECT_EQ(first->payload, "abc");
  const auto second = parser.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kShutdown);
  EXPECT_TRUE(second->payload.empty());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Wire, OneByteAtATimeReassembles) {
  std::string stream;
  append_frame(stream, MsgType::kSubmitBid, std::string(100, 'x'));
  append_frame(stream, MsgType::kBidAck, "y");

  FrameParser parser;
  std::vector<Frame> frames;
  for (char byte : stream) {
    parser.feed(&byte, 1);
    while (auto frame = parser.next()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kSubmitBid);
  EXPECT_EQ(frames[0].payload.size(), 100u);
  EXPECT_EQ(frames[1].payload, "y");
}

TEST(Wire, HeaderRejectedBeforePayloadBuffered) {
  // Oversized length claim: rejected from the 12 header bytes alone —
  // the parser must not wait for (or buffer) the claimed 4 GiB.
  std::string header;
  core::codec::put_u32(header, kWireMagic);
  core::codec::put_u16(header, kWireVersion);
  core::codec::put_u16(header, static_cast<std::uint16_t>(MsgType::kHello));
  core::codec::put_u32(header, 0xfffffff0u);
  FrameParser parser;
  parser.feed(header.data(), header.size());
  EXPECT_THROW(parser.next(), WireError);
}

TEST(Wire, BadMagicVersionAndTypeRejected) {
  const auto make_header = [](std::uint32_t magic, std::uint16_t version,
                              std::uint16_t type) {
    std::string h;
    core::codec::put_u32(h, magic);
    core::codec::put_u16(h, version);
    core::codec::put_u16(h, type);
    core::codec::put_u32(h, 0);
    return h;
  };
  const std::uint16_t hello = static_cast<std::uint16_t>(MsgType::kHello);
  for (const std::string& header :
       {make_header(0x4B53554Eu, kWireVersion, hello),       // magic
        make_header(kWireMagic, kWireVersion + 1, hello),    // version
        make_header(kWireMagic, kWireVersion, 0),            // type 0
        make_header(kWireMagic, kWireVersion, 99)}) {        // type 99
    FrameParser parser;
    parser.feed(header.data(), header.size());
    EXPECT_THROW(parser.next(), WireError);
  }
}

TEST(Wire, IncompleteFrameIsNotAnError) {
  std::string stream;
  append_frame(stream, MsgType::kError, "problem");
  FrameParser parser;
  parser.feed(stream.data(), stream.size() - 1);
  EXPECT_FALSE(parser.next().has_value());  // waiting, not failing
  parser.feed(stream.data() + stream.size() - 1, 1);
  const auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "problem");
}

TEST(Wire, OversizedAppendRejected) {
  std::string out;
  EXPECT_THROW(
      append_frame(out, MsgType::kError, std::string(kMaxFramePayload + 1, 'z')),
      WireError);
}

TEST(Wire, SubmitBidRoundTripAllFlagCombos) {
  for (int combo = 0; combo < 4; ++combo) {
    BidSubmission bid;
    bid.player = 17;
    bid.has_tail = (combo & 1) != 0;
    bid.tail_bid = -0.004;
    bid.has_head = (combo & 2) != 0;
    bid.head_bid = 0.007;
    bid.client_tag = 0xfeedface12345678ull;
    const BidSubmission back = decode_submit_bid(encode_submit_bid(bid));
    EXPECT_EQ(back.player, bid.player);
    EXPECT_EQ(back.has_tail, bid.has_tail);
    EXPECT_EQ(back.has_head, bid.has_head);
    EXPECT_DOUBLE_EQ(back.tail_bid, bid.tail_bid);
    EXPECT_DOUBLE_EQ(back.head_bid, bid.head_bid);
    EXPECT_EQ(back.client_tag, bid.client_tag);
  }
}

TEST(Wire, SubmitBidUnknownFlagBitsRejected) {
  std::string payload = encode_submit_bid(BidSubmission{});
  payload[4] = static_cast<char>(0x04);  // flag byte follows the u32 player
  EXPECT_THROW(decode_submit_bid(payload), WireError);
}

TEST(Wire, TruncatedAndOversizedPayloadsThrow) {
  const std::string payload = encode_submit_bid(BidSubmission{});
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decode_submit_bid(payload.substr(0, len)), core::CodecError);
  }
  EXPECT_THROW(decode_submit_bid(payload + "x"), WireError);

  const std::string ack = encode_bid_ack(BidAckMsg{});
  for (std::size_t len = 0; len < ack.size(); ++len) {
    EXPECT_THROW(decode_bid_ack(ack.substr(0, len)), core::CodecError);
  }
}

TEST(Wire, BidAckRoundTrip) {
  BidAckMsg ack;
  ack.client_tag = 42;
  ack.status = IntakeStatus::kRejectedFull;
  ack.intake_epoch = 9;
  const BidAckMsg back = decode_bid_ack(encode_bid_ack(ack));
  EXPECT_EQ(back.client_tag, 42u);
  EXPECT_EQ(back.status, IntakeStatus::kRejectedFull);
  EXPECT_EQ(back.intake_epoch, 9u);

  std::string bad = encode_bid_ack(ack);
  bad[8] = 17;  // status byte follows the u64 tag
  EXPECT_THROW(decode_bid_ack(bad), WireError);
}

TEST(Wire, EpochResultRoundTrip) {
  EpochReport report;
  report.epoch = 3;
  report.bids_applied = 12;
  report.game_edges = 40;
  report.cycles_executed = 5;
  report.rebalanced_volume = 1234;
  report.fees_paid = 0.75;
  report.clear_seconds = 0.002;
  report.network_digest = 0xdeadbeefcafef00dull;
  const EpochResultMsg msg = decode_epoch_result(encode_epoch_result(report));
  EXPECT_EQ(msg.epoch, 3u);
  EXPECT_EQ(msg.bids_applied, 12u);
  EXPECT_EQ(msg.game_edges, 40u);
  EXPECT_EQ(msg.cycles_executed, 5u);
  EXPECT_EQ(msg.rebalanced_volume, 1234);
  EXPECT_DOUBLE_EQ(msg.fees_paid, 0.75);
  EXPECT_DOUBLE_EQ(msg.clear_seconds, 0.002);
  EXPECT_EQ(msg.network_digest, 0xdeadbeefcafef00dull);
}

TEST(Wire, PlayerNoticeAndErrorRoundTrip) {
  PlayerNotice notice;
  notice.player = 6;
  notice.price = -0.25;
  notice.cycles = 2;
  notice.volume = 88;
  notice.delay_bonus = 0.125;
  const PlayerNoticeMsg msg =
      decode_player_notice(encode_player_notice(11, notice));
  EXPECT_EQ(msg.epoch, 11u);
  EXPECT_EQ(msg.notice.player, 6);
  EXPECT_DOUBLE_EQ(msg.notice.price, -0.25);
  EXPECT_EQ(msg.notice.cycles, 2);
  EXPECT_EQ(msg.notice.volume, 88);
  EXPECT_DOUBLE_EQ(msg.notice.delay_bonus, 0.125);

  EXPECT_EQ(decode_error(encode_error("boom")).message, "boom");
  EXPECT_THROW(decode_error(encode_error("boom") + "!"), WireError);
}

TEST(Wire, SubmitBidSequenceRoundTrip) {
  BidSubmission bid;
  bid.player = 3;
  bid.has_head = true;
  bid.head_bid = 0.01;
  bid.client_tag = 77;
  bid.seq = 0xabcdef01u;
  const BidSubmission back = decode_submit_bid(encode_submit_bid(bid));
  EXPECT_EQ(back.seq, 0xabcdef01u);
  // seq 0 (unsequenced, pre-v2 client behaviour) survives too.
  bid.seq = 0;
  EXPECT_EQ(decode_submit_bid(encode_submit_bid(bid)).seq, 0u);
}

TEST(Wire, BidAckSequenceAndDuplicateStatusRoundTrip) {
  BidAckMsg ack;
  ack.client_tag = 5;
  ack.status = IntakeStatus::kDuplicate;
  ack.intake_epoch = 2;
  ack.seq = 41;
  const BidAckMsg back = decode_bid_ack(encode_bid_ack(ack));
  EXPECT_EQ(back.status, IntakeStatus::kDuplicate);
  EXPECT_EQ(back.seq, 41u);
}

TEST(Wire, StructuredErrorRoundTrip) {
  ErrorMsg busy;
  busy.code = ErrorCode::kRetryAfter;
  busy.retry_after_ms = 250;
  busy.message = "shedding load";
  const ErrorMsg back = decode_error(encode_error(busy));
  EXPECT_EQ(back.code, ErrorCode::kRetryAfter);
  EXPECT_EQ(back.retry_after_ms, 250u);
  EXPECT_EQ(back.message, "shedding load");

  // The legacy string overload is a kGeneric error with no hint.
  const ErrorMsg generic = decode_error(encode_error("boom"));
  EXPECT_EQ(generic.code, ErrorCode::kGeneric);
  EXPECT_EQ(generic.retry_after_ms, 0u);
}

TEST(Wire, UnknownErrorCodeRejected) {
  // Hand-craft a payload with code 2 (beyond the known enum range).
  std::string payload;
  core::codec::put_u16(payload, 2);
  core::codec::put_u32(payload, 0);
  core::codec::put_u32(payload, 0);
  EXPECT_THROW(decode_error(payload), WireError);
}

TEST(Wire, TruncatedErrorPayloadsThrow) {
  ErrorMsg msg;
  msg.code = ErrorCode::kRetryAfter;
  msg.retry_after_ms = 9;
  msg.message = "hi";
  const std::string payload = encode_error(msg);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decode_error(payload.substr(0, len)), std::runtime_error);
  }
}

TEST(Wire, HelloRoundTrip) {
  HelloMsg msg;
  msg.player = 123;
  EXPECT_EQ(decode_hello(encode_hello(msg)).player, 123);
  EXPECT_THROW(decode_hello(""), core::CodecError);
}

}  // namespace
}  // namespace musketeer::svc
