// Snapshot store: network codec round-trips, atomic publication and
// pruning, end-to-end validation (checksum + digest re-verification),
// and checkpoint-aware recovery precedence — newest valid snapshot,
// older snapshot on corruption, genesis only while segment 0 survives.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "core/io.hpp"
#include "core/m3_double_auction.hpp"
#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "svc/snapshot.hpp"
#include "svc_test_util.hpp"

namespace musketeer::svc {
namespace {

using testutil::expect_networks_equal;
using testutil::make_network;
using testutil::small_config;

std::string temp_base(const std::string& name) {
  const std::string path = ::testing::TempDir() + "musk_snapshot_" + name;
  testutil::remove_journal_files(path);
  return path;
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(byte ^ 0x40));
}

TEST(Snapshot, NetworkCodecRoundTripsEverythingTheDigestCovers) {
  pcn::Network network = make_network(small_config(7));
  // Exercise the fields beyond plain balances: locks and disabled flags
  // are part of state_digest() and must survive the round trip.
  network.channel(0).locked_a = 17;
  network.channel(0).locked_b = 3;
  network.channel(1).disabled = true;

  const std::string bytes = encode_network(network);
  const pcn::Network decoded = decode_network(bytes);
  EXPECT_EQ(decoded.state_digest(), network.state_digest());
  expect_networks_equal(decoded, network);

  // Malformed bytes are a structured decode error, never an abort.
  EXPECT_THROW(decode_network(std::string_view(bytes).substr(0, 10)),
               core::CodecError);
  EXPECT_THROW(decode_network(std::string_view()), core::CodecError);
}

TEST(Snapshot, WriteReadBackAndPruneToKeep) {
  const std::string base = temp_base("roundtrip");
  const pcn::Network network = make_network(small_config(7));

  SnapshotStore store(base, /*keep=*/2);
  EXPECT_TRUE(store.entries().empty());
  EXPECT_EQ(store.oldest_retained_first_segment(), 0u);

  SnapshotData data;
  data.next_epoch = 3;
  data.digest = network.state_digest();
  data.first_segment = 1;
  data.watermarks = {{2, 9}, {5, 1}};
  data.shed_level = 2;
  data.ewma_seconds = 0.25;
  data.network_bytes = encode_network(network);
  store.write(data);

  for (int next = 4; next <= 5; ++next) {
    data.next_epoch = next;
    data.first_segment = static_cast<std::uint64_t>(next) - 2;
    store.write(data);
  }
  // keep=2: the first snapshot was pruned, the newest two survive.
  ASSERT_EQ(store.entries().size(), 2u);
  EXPECT_EQ(list_snapshots(base), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(store.entries()[0].next_epoch, 4);
  EXPECT_EQ(store.entries()[1].next_epoch, 5);
  EXPECT_TRUE(store.entries()[0].valid);
  EXPECT_TRUE(store.entries()[1].valid);
  // The compaction bound is what the *oldest retained* snapshot needs.
  EXPECT_EQ(store.oldest_retained_first_segment(), 2u);

  // Full payload round-trip through the validating reader.
  SnapshotData read;
  std::string error;
  ASSERT_TRUE(SnapshotStore::read_file(store.entries()[1].path, &read,
                                       &error))
      << error;
  EXPECT_EQ(read.next_epoch, 5);
  EXPECT_EQ(read.first_segment, 3u);
  EXPECT_EQ(read.watermarks, data.watermarks);
  EXPECT_EQ(read.shed_level, 2);
  EXPECT_DOUBLE_EQ(read.ewma_seconds, 0.25);
  EXPECT_EQ(decode_network(read.network_bytes).state_digest(), data.digest);

  // A fresh store scan agrees with the writer's view.
  SnapshotStore rescanned(base);
  ASSERT_EQ(rescanned.entries().size(), 2u);
  EXPECT_TRUE(rescanned.entries()[1].valid);
}

TEST(Snapshot, CorruptOrTruncatedSnapshotIsInvalidAndPinsSegmentZero) {
  const std::string base = temp_base("corrupt");
  const pcn::Network network = make_network(small_config(7));
  SnapshotData data;
  data.next_epoch = 2;
  data.digest = network.state_digest();
  data.first_segment = 4;
  data.network_bytes = encode_network(network);
  {
    SnapshotStore store(base);
    store.write(data);
    EXPECT_EQ(store.oldest_retained_first_segment(), 4u);
  }

  // One flipped byte anywhere fails the end-to-end check...
  flip_byte(snapshot_path(base, 0), 40);
  SnapshotStore store(base);
  ASSERT_EQ(store.entries().size(), 1u);
  EXPECT_FALSE(store.entries()[0].valid);
  // ...and an invalid snapshot conservatively pins segment 0: its
  // fallback might need the whole history.
  EXPECT_EQ(store.oldest_retained_first_segment(), 0u);

  // Stored-digest mismatch (not just byte corruption) is also invalid:
  // a snapshot whose bytes checksum cleanly but whose captured network
  // does not hash to the stored digest must not be restored.
  const std::string base2 = temp_base("drift");
  data.digest ^= 1;
  {
    SnapshotStore store2(base2);
    store2.write(data);
  }
  SnapshotStore rescanned(base2);
  ASSERT_EQ(rescanned.entries().size(), 1u);
  EXPECT_FALSE(rescanned.entries()[0].valid);

  // Truncation at any point is detected by the reader.
  std::string bytes;
  {
    std::ifstream in(snapshot_path(base, 0), std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(snapshot_path(base, 0),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  SnapshotData out;
  std::string error;
  EXPECT_FALSE(SnapshotStore::read_file(snapshot_path(base, 0), &out,
                                        &error));
  EXPECT_FALSE(error.empty());
}

/// Runs a checkpointed service for `epochs` epochs and returns the final
/// live digest; journal + snapshots are left on disk for recovery tests.
std::uint64_t run_checkpointed(const std::string& base, int epochs,
                               int snapshot_every,
                               const sim::SimulationConfig& config) {
  core::M3DoubleAuction mechanism;
  Journal journal(base);
  SnapshotStore snapshots(base);
  pcn::Network net = make_network(config);
  ServiceConfig service_config;
  service_config.policy = config.policy;
  service_config.journal = &journal;
  service_config.snapshots = &snapshots;
  service_config.snapshot_every = snapshot_every;
  RebalanceService service(net, mechanism, service_config);
  for (int epoch = 0; epoch < epochs; ++epoch) service.run_epoch();
  return net.state_digest();
}

TEST(Snapshot, RecoverPrefersNewestSnapshotThenOlderThenRefuses) {
  const sim::SimulationConfig config = small_config(5);
  const std::string base = temp_base("precedence");
  // Checkpoints settle after epochs 2 and 5 (cadence 3): two snapshots
  // (next_epoch 3 and 6), tail = epoch 6, segment 0 compacted away.
  const std::uint64_t live_digest = run_checkpointed(base, 7, 3, config);
  ASSERT_EQ(list_snapshots(base).size(), 2u);
  ASSERT_GT(Journal(base).oldest_segment(), 0u);

  {
    // Newest snapshot wins: one epoch of tail replay.
    Journal journal(base);
    SnapshotStore snapshots(base);
    pcn::Network net = make_network(config);
    const RecoveryReport rec = recover(journal, snapshots, net, config.policy);
    EXPECT_TRUE(rec.from_snapshot);
    EXPECT_EQ(rec.snapshot_epoch, 6);
    EXPECT_EQ(rec.snapshots_discarded, 0);
    EXPECT_EQ(rec.next_epoch, 7);
    EXPECT_EQ(net.state_digest(), live_digest);
  }

  // Corrupt the newest snapshot: recovery discards it and replays the
  // longer tail from the older one — bit-identical result.
  const std::vector<std::uint64_t> seqs = list_snapshots(base);
  flip_byte(snapshot_path(base, seqs.back()), 25);
  {
    Journal journal(base);
    SnapshotStore snapshots(base);
    pcn::Network net = make_network(config);
    const RecoveryReport rec = recover(journal, snapshots, net, config.policy);
    EXPECT_TRUE(rec.from_snapshot);
    EXPECT_EQ(rec.snapshot_epoch, 3);
    EXPECT_EQ(rec.snapshots_discarded, 1);
    EXPECT_EQ(rec.next_epoch, 7);
    EXPECT_EQ(net.state_digest(), live_digest);
  }

  // Corrupt both: no valid snapshot and no genesis history (segment 0
  // was compacted) — recovery must refuse loudly, not hand back a wrong
  // network.
  flip_byte(snapshot_path(base, seqs.front()), 25);
  {
    Journal journal(base);
    SnapshotStore snapshots(base);
    pcn::Network net = make_network(config);
    EXPECT_THROW(recover(journal, snapshots, net, config.policy),
                 JournalError);
  }
}

TEST(Snapshot, RecoverFallsBackToGenesisReplayWithoutSnapshots) {
  const sim::SimulationConfig config = small_config(5);
  const std::string base = temp_base("genesis");
  // Journal-only run: no snapshots anywhere.
  const std::uint64_t live_digest = run_checkpointed(base, 3, 0, config);
  ASSERT_TRUE(list_snapshots(base).empty());

  Journal journal(base);
  SnapshotStore snapshots(base);
  pcn::Network net = make_network(config);
  const RecoveryReport rec = recover(journal, snapshots, net, config.policy);
  EXPECT_FALSE(rec.from_snapshot);
  EXPECT_EQ(rec.next_epoch, 3);
  EXPECT_EQ(rec.epochs_settled, 3);
  EXPECT_EQ(net.state_digest(), live_digest);
}

}  // namespace
}  // namespace musketeer::svc
