#include <gtest/gtest.h>

#include "flow/bellman_ford.hpp"
#include "flow/residual.hpp"
#include "flow/solver.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

std::vector<ResidualArc> zero_residual(const Graph& g) {
  return build_residual(g, zero_circulation(g));
}

TEST(MultiCycleTest, EmptyWhenNoNegativeCycle) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0.01);
  g.add_edge(1, 2, 1, 0.01);
  EXPECT_TRUE(find_negative_cycles(g.num_nodes(), zero_residual(g)).empty());
}

TEST(MultiCycleTest, HarvestsDisjointCyclesTogether) {
  Graph g(6);
  // Two disjoint profitable triangles.
  g.add_edge(0, 1, 1, 0.03);
  g.add_edge(1, 2, 1, 0.0);
  g.add_edge(2, 0, 1, 0.0);
  g.add_edge(3, 4, 1, 0.05);
  g.add_edge(4, 5, 1, 0.0);
  g.add_edge(5, 3, 1, 0.0);
  const auto arcs = zero_residual(g);
  const auto cycles = find_negative_cycles(g.num_nodes(), arcs);
  ASSERT_EQ(cycles.size(), 2u);
  for (const auto& cycle : cycles) {
    std::int64_t total = 0;
    for (int a : cycle) total += arcs[static_cast<std::size_t>(a)].cost;
    EXPECT_LT(total, 0);
  }
}

TEST(MultiCycleTest, HarvestedCyclesAreVertexDisjoint) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g(10);
    for (int e = 0; e < 25; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform(10));
      auto v = static_cast<NodeId>(rng.uniform(10));
      if (u == v) v = static_cast<NodeId>((v + 1) % 10);
      g.add_edge(u, v, rng.uniform_int(1, 9), rng.uniform_real(-0.05, 0.05));
    }
    const auto arcs = zero_residual(g);
    const auto cycles = find_negative_cycles(g.num_nodes(), arcs);
    std::vector<int> seen(10, 0);
    for (const auto& cycle : cycles) {
      for (int a : cycle) {
        const NodeId v = arcs[static_cast<std::size_t>(a)].from;
        EXPECT_EQ(seen[static_cast<std::size_t>(v)], 0)
            << "vertex " << v << " in two cycles";
        seen[static_cast<std::size_t>(v)] = 1;
      }
    }
    // Consistency with the single-cycle finder.
    EXPECT_EQ(cycles.empty(),
              !find_negative_cycle(g.num_nodes(), arcs).has_value());
  }
}

TEST(MultiCycleTest, CancellingAllHarvestedCyclesStaysFeasible) {
  util::Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g(8);
    for (int e = 0; e < 20; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform(8));
      auto v = static_cast<NodeId>(rng.uniform(8));
      if (u == v) v = static_cast<NodeId>((v + 1) % 8);
      g.add_edge(u, v, rng.uniform_int(1, 9), rng.uniform_real(-0.05, 0.05));
    }
    Circulation f = zero_circulation(g);
    const auto arcs = build_residual(g, f);
    const auto cycles = find_negative_cycles(g.num_nodes(), arcs);
    const auto before = scaled_welfare(g, f);
    for (const auto& cycle : cycles) {
      push_along(arcs, cycle, bottleneck(arcs, cycle), f);
    }
    EXPECT_TRUE(is_feasible(g, f));
    if (!cycles.empty()) {
      EXPECT_GT(scaled_welfare(g, f), before);
    }
  }
}

}  // namespace
}  // namespace musketeer::flow
