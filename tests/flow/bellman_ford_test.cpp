#include "flow/bellman_ford.hpp"

#include <gtest/gtest.h>

#include "flow/residual.hpp"

namespace musketeer::flow {
namespace {

// Residual of the zero circulation: forward arcs only, cost = -gain.
std::vector<ResidualArc> zero_residual(const Graph& g) {
  return build_residual(g, zero_circulation(g));
}

TEST(BellmanFordTest, NoCycleInAcyclicGraph) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0.05);
  g.add_edge(1, 2, 1, 0.05);
  const auto arcs = zero_residual(g);
  EXPECT_FALSE(find_negative_cycle(g.num_nodes(), arcs).has_value());
}

TEST(BellmanFordTest, PositiveGainCycleIsNegativeCostCycle) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0.05);
  g.add_edge(1, 2, 1, -0.01);
  g.add_edge(2, 0, 1, 0.0);
  const auto arcs = zero_residual(g);
  const auto cycle = find_negative_cycle(g.num_nodes(), arcs);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 3u);
  std::int64_t cost = 0;
  for (int a : *cycle) cost += arcs[static_cast<std::size_t>(a)].cost;
  EXPECT_LT(cost, 0);
}

TEST(BellmanFordTest, ZeroGainCycleIsNotNegative) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0.0);
  g.add_edge(1, 2, 1, 0.0);
  g.add_edge(2, 0, 1, 0.0);
  EXPECT_FALSE(
      find_negative_cycle(g.num_nodes(), zero_residual(g)).has_value());
}

TEST(BellmanFordTest, NetNegativeGainCycleIsNotSelected) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0.01);
  g.add_edge(1, 2, 1, -0.02);
  g.add_edge(2, 0, 1, 0.0);
  EXPECT_FALSE(
      find_negative_cycle(g.num_nodes(), zero_residual(g)).has_value());
}

TEST(BellmanFordTest, FindsCycleAmongSeveral) {
  Graph g(6);
  // Cycle A (0-1-2) net gain 0.01; cycle B (3-4-5) net gain 0.06.
  g.add_edge(0, 1, 1, 0.02);
  g.add_edge(1, 2, 1, -0.005);
  g.add_edge(2, 0, 1, -0.005);
  g.add_edge(3, 4, 1, 0.03);
  g.add_edge(4, 5, 1, 0.03);
  g.add_edge(5, 3, 1, 0.0);
  const auto arcs = zero_residual(g);
  const auto cycle = find_negative_cycle(g.num_nodes(), arcs);
  ASSERT_TRUE(cycle.has_value());
  std::int64_t cost = 0;
  for (int a : *cycle) cost += arcs[static_cast<std::size_t>(a)].cost;
  EXPECT_LT(cost, 0);
}

TEST(BellmanFordTest, EmptyArcSetHasNoCycle) {
  EXPECT_FALSE(find_negative_cycle(5, {}).has_value());
}

TEST(BellmanFordTest, BackwardArcsEnableCycleAfterFlow) {
  // With flow on 0->1, the residual backward arc 1->0 (cost +gain of the
  // forward edge, i.e. refunding a negative gain) can complete a cycle.
  Graph g(2);
  const EdgeId bad = g.add_edge(0, 1, 5, -0.03);   // seller edge
  g.add_edge(0, 1, 5, 0.05);                       // cheaper parallel edge
  Circulation f = zero_circulation(g);
  f[static_cast<std::size_t>(bad)] = 5;  // wasteful: flow on the -0.03 edge
  // Not a circulation by itself, but residual cycle detection is local:
  // moving flow from the bad edge to the parallel good edge is a
  // negative cycle (backward bad arc + forward good arc).
  const auto arcs = build_residual(g, f);
  const auto cycle = find_negative_cycle(g.num_nodes(), arcs);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);
}

}  // namespace
}  // namespace musketeer::flow
