// Cooperative-cancellation correctness for the circulation solvers.
//
// The deadline contract (DESIGN.md §14) promises two things at the
// solver layer:
//
//  1. A cancelled solve is RECOVERABLE: the workspace it unwound out of
//     stays structurally valid, and re-solving on it yields the exact
//     circulation a fresh, uncancelled solve produces — bit for bit.
//  2. An armed token that never fires is FREE of behavioral drift: the
//     solve runs the same iterations and returns the same bits as a
//     null-token solve (the overhead is gated separately by
//     bench/deadline_overhead).
//
// Both are swept across every SolverKind and 100 seeded random games,
// with the trip point varied so cancellation lands on different
// iteration boundaries (including poll 1, before any cycle work).
#include "flow/solver.hpp"

#include <gtest/gtest.h>

#include "flow/workspace.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

constexpr SolverKind kKinds[] = {
    SolverKind::kBellmanFord,
    SolverKind::kMinMean,
    SolverKind::kCapacityScaling,
    SolverKind::kNetworkSimplex,
};

constexpr int kGames = 100;

Graph random_graph(NodeId n, int edges, util::Rng& rng) {
  Graph g(n);
  for (int e = 0; e < edges; ++e) {
    const auto u =
        static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<NodeId>((v + 1) % n);
    g.add_edge(u, v, rng.uniform_int(1, 20), rng.uniform_real(-0.05, 0.05));
  }
  return g;
}

TEST(CancelTest, CancelThenResolveMatchesFreshSolve) {
  for (const SolverKind kind : kKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    for (std::uint64_t seed = 1; seed <= kGames; ++seed) {
      util::Rng rng(seed);
      const Graph g = random_graph(12, 30, rng);

      Workspace fresh_ws;
      const Circulation expected = solve_max_welfare(g, fresh_ws, kind);

      // Trip on a varying poll so the unwind exercises different
      // iteration boundaries; poll 1 cancels before any cycle lands.
      Workspace ws;
      util::CancelToken token;
      token.arm(util::Deadline::never());
      token.trip_after(static_cast<long long>(1 + seed % 5));
      SolveStats stats;
      bool cancelled = false;
      try {
        const Circulation full =
            solve_max_welfare(g, ws, kind, &stats, &token);
        // The solve finished inside the trip budget — it must already
        // be the reference answer.
        EXPECT_EQ(full, expected) << "seed " << seed;
      } catch (const util::SolveCancelled&) {
        cancelled = true;
        EXPECT_GE(stats.cancelled, 1) << "seed " << seed;
      }

      // Recovery: the same workspace, token disarmed, must reproduce
      // the fresh solve exactly — stale scratch from the unwound solve
      // must not leak into the result.
      token.arm(util::Deadline::never());
      SolveStats resolve_stats;
      const Circulation resolved =
          solve_max_welfare(g, ws, kind, &resolve_stats, &token);
      EXPECT_EQ(resolved, expected)
          << "seed " << seed << (cancelled ? " (after cancel)" : "");
      EXPECT_TRUE(is_optimal(g, resolved)) << "seed " << seed;
    }
  }
}

TEST(CancelTest, ArmedNeverFiringTokenIsBitIdenticalToNullToken) {
  for (const SolverKind kind : kKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    for (std::uint64_t seed = 1; seed <= kGames; ++seed) {
      util::Rng rng(seed);
      const Graph g = random_graph(12, 30, rng);

      Workspace plain_ws;
      SolveStats plain_stats;
      const Circulation plain =
          solve_max_welfare(g, plain_ws, kind, &plain_stats, nullptr);

      Workspace armed_ws;
      util::CancelToken token;
      token.arm(util::Deadline::never());
      SolveStats armed_stats;
      const Circulation armed =
          solve_max_welfare(g, armed_ws, kind, &armed_stats, &token);

      EXPECT_EQ(armed, plain) << "seed " << seed;
      // No drift in the work done either: same cancellation-free
      // iteration counts, nothing reported cancelled.
      EXPECT_EQ(armed_stats.cycles_cancelled, plain_stats.cycles_cancelled)
          << "seed " << seed;
      EXPECT_EQ(armed_stats.units_pushed, plain_stats.units_pushed)
          << "seed " << seed;
      EXPECT_EQ(armed_stats.fallbacks, plain_stats.fallbacks)
          << "seed " << seed;
      EXPECT_EQ(armed_stats.cancelled, 0) << "seed " << seed;
      EXPECT_FALSE(token.cancelled()) << "seed " << seed;
    }
  }
}

TEST(CancelTest, AlreadyExpiredDeadlineCancelsOnFirstPoll) {
  util::Rng rng(3);
  const Graph g = random_graph(10, 24, rng);
  for (const SolverKind kind : kKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    Workspace ws;
    util::CancelToken token;
    token.arm(util::Deadline::after(std::chrono::milliseconds(0)));
    SolveStats stats;
    EXPECT_THROW(solve_max_welfare(g, ws, kind, &stats, &token),
                 util::SolveCancelled);
    EXPECT_TRUE(token.cancelled());
    // And the workspace is still good for a clean solve afterwards.
    Workspace fresh;
    const Circulation expected = solve_max_welfare(g, fresh, kind);
    token.arm(util::Deadline::never());
    EXPECT_EQ(solve_max_welfare(g, ws, kind, &stats, &token), expected);
  }
}

}  // namespace
}  // namespace musketeer::flow
