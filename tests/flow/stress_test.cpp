// Larger randomized invariant sweeps: the solver pipeline at sizes the
// unit tests don't reach, checking only cheap exact invariants.
#include <gtest/gtest.h>

#include "flow/decompose.hpp"
#include "flow/solver.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::flow {
namespace {

class FlowStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowStressTest, FullPipelineInvariantsAtScale) {
  util::Rng rng(GetParam());
  gen::GameConfig config;
  config.depleted_share = 0.3;
  const core::Game game = gen::random_ba_game(64, 2, config, rng);
  const Graph g = game.build_graph(game.truthful_bids());

  const Circulation f = solve_max_welfare(g);
  ASSERT_TRUE(is_feasible(g, f));
  ASSERT_TRUE(is_optimal(g, f));  // exact certificate
  EXPECT_GE(scaled_welfare(g, f), 0);

  const auto cycles = decompose_sign_consistent(g, f);
  EXPECT_TRUE(is_valid_decomposition(g, f, cycles));
  EXPECT_LE(cycles.size(), static_cast<std::size_t>(g.num_edges()));
  for (const CycleFlow& cycle : cycles) {
    EXPECT_GE(scaled_cycle_welfare(g, cycle), 0);
    EXPECT_GE(cycle.length(), 2);
    EXPECT_LE(cycle.length(), g.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowStressTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(FlowStressTest, HighCapacityNoOverflow) {
  // Capacities near 1e12 with max bids: scaled welfare must stay exact
  // (int128 accumulation) and the solver must still terminate.
  Graph g(3);
  const Amount big = 1'000'000'000'000LL;
  g.add_edge(0, 1, big, 0.09);
  g.add_edge(1, 2, big, -0.005);
  g.add_edge(2, 0, big, 0.0);
  const Circulation f = solve_max_welfare(g);
  EXPECT_EQ(f, (Circulation{big, big, big}));
  // 1e12 * 0.085 = 8.5e10 coins of welfare, exactly.
  EXPECT_EQ(scaled_welfare(g, f),
            static_cast<__int128>(big) * scale_gain(0.085));
}

TEST(FlowStressTest, ManyParallelEdgesHandled) {
  Graph g(2);
  for (int i = 0; i < 50; ++i) {
    g.add_edge(0, 1, 5, 0.01 + 1e-4 * i);
    g.add_edge(1, 0, 5, -0.001);
  }
  const Circulation f = solve_max_welfare(g);
  EXPECT_TRUE(is_feasible(g, f));
  EXPECT_TRUE(is_optimal(g, f));
  // Total forward flow capped by total backward capacity (conservation).
  Amount fwd = 0, bwd = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    (g.edge(e).from == 0 ? fwd : bwd) += f[static_cast<std::size_t>(e)];
  }
  EXPECT_EQ(fwd, bwd);
  EXPECT_EQ(fwd, 250);  // every profitable pairing saturates
}

TEST(FlowStressTest, DisconnectedComponentsSolvedIndependently) {
  Graph g(6);
  g.add_edge(0, 1, 5, 0.02);
  g.add_edge(1, 2, 5, 0.0);
  g.add_edge(2, 0, 5, 0.0);
  g.add_edge(3, 4, 7, 0.03);
  g.add_edge(4, 5, 7, 0.0);
  g.add_edge(5, 3, 7, 0.0);
  const Circulation f = solve_max_welfare(g);
  EXPECT_EQ(f, (Circulation{5, 5, 5, 7, 7, 7}));
}

}  // namespace
}  // namespace musketeer::flow
