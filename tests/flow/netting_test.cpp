#include "flow/netting.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "flow/solver.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

TEST(NettingTest, FindsAntiparallelPairs) {
  Graph g(3);
  const EdgeId ab = g.add_edge(0, 1, 5, 0.0);
  const EdgeId ba = g.add_edge(1, 0, 5, 0.0);
  g.add_edge(1, 2, 5, 0.0);  // unpaired
  const auto pairs = antiparallel_pairs(g);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (EdgePair{ab, ba}));
}

TEST(NettingTest, ParallelEdgesMatchGreedily) {
  Graph g(2);
  g.add_edge(0, 1, 5, 0.0);
  g.add_edge(0, 1, 5, 0.0);
  g.add_edge(1, 0, 5, 0.0);
  // Two forward, one backward: exactly one pair.
  EXPECT_EQ(antiparallel_pairs(g).size(), 1u);
}

TEST(NettingTest, CancelsOpposingFlow) {
  Graph g(2);
  g.add_edge(0, 1, 10, 0.0);
  g.add_edge(1, 0, 10, 0.0);
  Circulation f{7, 4};
  const auto pairs = antiparallel_pairs(g);
  EXPECT_FALSE(is_channel_sign_consistent(g, pairs, f));
  const Amount netted = net_opposing_flows(g, pairs, f);
  EXPECT_EQ(netted, 4);
  EXPECT_EQ(f, (Circulation{3, 0}));
  EXPECT_TRUE(is_channel_sign_consistent(g, pairs, f));
}

TEST(NettingTest, PreservesConservation) {
  Graph g(3);
  g.add_edge(0, 1, 10, 0.0);
  g.add_edge(1, 0, 10, 0.0);
  g.add_edge(1, 2, 10, 0.0);
  g.add_edge(2, 1, 10, 0.0);
  // Two opposing 2-cycles.
  Circulation f{6, 6, 3, 3};
  ASSERT_TRUE(conserves_flow(g, f));
  const auto pairs = antiparallel_pairs(g);
  net_opposing_flows(g, pairs, f);
  EXPECT_TRUE(conserves_flow(g, f));
  EXPECT_EQ(total_volume(f), 0);
}

TEST(NettingTest, NoOpWhenAlreadyConsistent) {
  Graph g(3);
  g.add_edge(0, 1, 10, 0.0);
  g.add_edge(1, 2, 10, 0.0);
  g.add_edge(2, 0, 10, 0.0);
  Circulation f{5, 5, 5};
  const auto pairs = antiparallel_pairs(g);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(net_opposing_flows(g, pairs, f), 0);
  EXPECT_EQ(f, (Circulation{5, 5, 5}));
}

TEST(NettingTest, WelfareChangeIsExactlyTheCancelledPairGains) {
  Graph g(2);
  const EdgeId ab = g.add_edge(0, 1, 10, 0.03);
  const EdgeId ba = g.add_edge(1, 0, 10, -0.01);
  Circulation f{6, 4};
  const __int128 before = scaled_welfare(g, f);
  const auto pairs = antiparallel_pairs(g);
  net_opposing_flows(g, pairs, f);
  // 4 units of the (0.03, -0.01) pair cancelled: welfare drops by
  // 4 * 0.02 in exact scaled units.
  EXPECT_EQ(before - scaled_welfare(g, f),
            static_cast<__int128>(4) * scale_gain(0.02));
  (void)ab;
  (void)ba;
}

TEST(NettingTest, PhysicallyValidChannelsYieldNettedOptima) {
  // For physically consistent channels — at most one direction of a
  // channel is depleted, the reverse is a (non-positive) seller edge —
  // every antiparallel gain pair sums <= 0, so the welfare optimum never
  // routes both directions except at exactly zero net gain. Netting then
  // leaves welfare unchanged.
  util::Rng rng(314);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g(6);
    // At most one channel per node pair: antiparallel_pairs' greedy
    // matching then corresponds exactly to physical channels.
    std::set<std::pair<NodeId, NodeId>> used;
    for (int c = 0; c < 9; ++c) {
      const auto u = static_cast<NodeId>(rng.uniform(6));
      auto v = static_cast<NodeId>(rng.uniform(6));
      if (u == v) v = static_cast<NodeId>((v + 1) % 6);
      const auto key = std::minmax(u, v);
      if (!used.insert({key.first, key.second}).second) continue;
      if (rng.bernoulli(0.4)) {
        // Depleted channel: a single buyer direction (the depleted side
        // has nothing to sell back).
        g.add_edge(u, v, rng.uniform_int(1, 9), rng.uniform_real(0.0, 0.05));
      } else {
        // Indifferent channel: sellers both ways, pair gains sum <= 0.
        g.add_edge(u, v, rng.uniform_int(1, 9),
                   -rng.uniform_real(0.0, 0.005));
        g.add_edge(v, u, rng.uniform_int(1, 9),
                   -rng.uniform_real(0.0, 0.005));
      }
    }
    const Circulation f = solve_max_welfare(g);
    Circulation netted = f;
    const auto pairs = antiparallel_pairs(g);
    net_opposing_flows(g, pairs, netted);
    EXPECT_TRUE(is_feasible(g, netted));
    EXPECT_TRUE(is_channel_sign_consistent(g, pairs, netted));
    EXPECT_EQ(scaled_welfare(g, netted), scaled_welfare(g, f))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace musketeer::flow
