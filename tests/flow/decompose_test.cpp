#include "flow/decompose.hpp"

#include <gtest/gtest.h>

#include "flow/solver.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

TEST(DecomposeTest, ZeroCirculationDecomposesToNothing) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.0);
  const auto cycles = decompose_sign_consistent(g, zero_circulation(g));
  EXPECT_TRUE(cycles.empty());
}

TEST(DecomposeTest, SingleCycleRecovered) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.0);
  g.add_edge(1, 2, 5, 0.0);
  g.add_edge(2, 0, 5, 0.0);
  const Circulation f{3, 3, 3};
  const auto cycles = decompose_sign_consistent(g, f);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].amount, 3);
  EXPECT_EQ(cycles[0].length(), 3);
  EXPECT_TRUE(is_valid_decomposition(g, f, cycles));
}

TEST(DecomposeTest, FigureEightSplitsAtSharedVertex) {
  // Two triangles sharing vertex 0: the circulation routing both must
  // decompose into two simple cycles.
  Graph g(5);
  g.add_edge(0, 1, 5, 0.0);
  g.add_edge(1, 2, 5, 0.0);
  g.add_edge(2, 0, 5, 0.0);
  g.add_edge(0, 3, 5, 0.0);
  g.add_edge(3, 4, 5, 0.0);
  g.add_edge(4, 0, 5, 0.0);
  const Circulation f{2, 2, 2, 3, 3, 3};
  const auto cycles = decompose_sign_consistent(g, f);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_TRUE(is_valid_decomposition(g, f, cycles));
}

TEST(DecomposeTest, NestedAmountsPeelCorrectly) {
  // One long cycle at weight 1 overlapping a short cycle at weight 2.
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 9, 0.0);
  const EdgeId e12 = g.add_edge(1, 2, 9, 0.0);
  const EdgeId e20 = g.add_edge(2, 0, 9, 0.0);
  const EdgeId e23 = g.add_edge(2, 3, 9, 0.0);
  const EdgeId e30 = g.add_edge(3, 0, 9, 0.0);
  Circulation f(5, 0);
  // 3 units around 0-1-2-0 plus 2 units around 0-1-2-3-0.
  f[static_cast<std::size_t>(e01)] = 5;
  f[static_cast<std::size_t>(e12)] = 5;
  f[static_cast<std::size_t>(e20)] = 3;
  f[static_cast<std::size_t>(e23)] = 2;
  f[static_cast<std::size_t>(e30)] = 2;
  ASSERT_TRUE(is_feasible(g, f));
  const auto cycles = decompose_sign_consistent(g, f);
  EXPECT_TRUE(is_valid_decomposition(g, f, cycles));
  Amount total = 0;
  for (const auto& c : cycles) total += c.amount * c.length();
  EXPECT_EQ(total, total_volume(f));
}

TEST(DecomposeTest, CycleWelfareMatchesGains) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.03);
  g.add_edge(1, 2, 5, -0.01);
  g.add_edge(2, 0, 5, 0.0);
  CycleFlow cycle;
  cycle.edges = {0, 1, 2};
  cycle.amount = 4;
  EXPECT_NEAR(cycle_welfare(g, cycle), 4 * 0.02, 1e-12);
}

TEST(DecomposeTest, ValidationRejectsBrokenChain) {
  Graph g(4);
  g.add_edge(0, 1, 5, 0.0);
  g.add_edge(2, 3, 5, 0.0);  // not connected to the first edge
  CycleFlow bogus;
  bogus.edges = {0, 1};
  bogus.amount = 1;
  EXPECT_FALSE(is_valid_decomposition(g, Circulation{1, 1}, {bogus}));
}

TEST(DecomposeTest, ValidationRejectsWrongSum) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.0);
  g.add_edge(1, 2, 5, 0.0);
  g.add_edge(2, 0, 5, 0.0);
  CycleFlow cycle;
  cycle.edges = {0, 1, 2};
  cycle.amount = 2;
  EXPECT_FALSE(is_valid_decomposition(g, Circulation{3, 3, 3}, {cycle}));
}

// Property: solver output always decomposes validly, cycles are at most
// |E|, every cycle has positive amount, and (for optimal circulations)
// non-negative welfare — the paper's argument for individual rationality.
class DecomposeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecomposeRandomTest, SolverOutputDecomposesWithNonNegativeCycles) {
  util::Rng rng(GetParam());
  const auto n = static_cast<NodeId>(rng.uniform_int(3, 15));
  Graph g(n);
  const int m = static_cast<int>(rng.uniform_int(n, 5 * n));
  for (int e = 0; e < m; ++e) {
    const auto u = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<NodeId>((v + 1) % n);
    g.add_edge(u, v, rng.uniform_int(1, 30), rng.uniform_real(-0.05, 0.05));
  }
  const Circulation f = solve_max_welfare(g);
  const auto cycles = decompose_sign_consistent(g, f);
  EXPECT_TRUE(is_valid_decomposition(g, f, cycles));
  EXPECT_LE(cycles.size(), static_cast<std::size_t>(g.num_edges()));
  for (const auto& cycle : cycles) {
    EXPECT_GT(cycle.amount, 0);
    // Optimality implies every cycle of the decomposition has
    // non-negative welfare (otherwise removing it improves welfare).
    EXPECT_GE(scaled_cycle_welfare(g, cycle), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DecomposeRandomTest,
                         ::testing::Range<std::uint64_t>(100, 140));

}  // namespace
}  // namespace musketeer::flow
