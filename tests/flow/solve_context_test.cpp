// Workspace-reuse equivalence: one SolveContext driven through many
// randomized games must return bit-identical circulations,
// decompositions, and rebuild accounting versus fresh per-solve graphs
// and workspaces — including after rebind_gains and under VCG-style
// capacity masks.
#include "flow/solve_context.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "flow/decompose.hpp"
#include "flow/solver.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::flow {
namespace {

void expect_same_cycles(const std::vector<CycleFlow>& got,
                        const std::vector<CycleFlow>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].edges, want[i].edges);
    EXPECT_EQ(got[i].amount, want[i].amount);
  }
}

class SolveContextEquivalenceTest
    : public ::testing::TestWithParam<SolverKind> {};

// The headline satellite: 100 randomized games of varying size through
// ONE reused context, each checked bit-for-bit against a fresh solve.
TEST_P(SolveContextEquivalenceTest, HundredRandomGamesBitIdentical) {
  const SolverKind kind = GetParam();
  util::Rng rng(0xC0FFEE);
  SolveContext ctx;
  for (int round = 0; round < 100; ++round) {
    gen::GameConfig config;
    config.depleted_share = 0.2 + 0.2 * (round % 3);
    const NodeId n = 8 + 4 * (round % 7);  // varying sizes force rebuilds
    const core::Game game = gen::random_ba_game(n, 2, config, rng);
    const core::BidVector bids = game.truthful_bids();

    const Graph fresh = game.build_graph(bids);
    SolveStats fresh_stats;
    const Circulation f_fresh = solve_max_welfare(fresh, kind, &fresh_stats);
    const auto cycles_fresh = decompose_sign_consistent(fresh, f_fresh);

    game.bind_graph(ctx, bids);
    SolveStats ctx_stats;
    const Circulation f_ctx = ctx.solve(kind, &ctx_stats);

    EXPECT_EQ(f_ctx, f_fresh) << "round " << round;
    EXPECT_EQ(ctx_stats.cycles_cancelled, fresh_stats.cycles_cancelled);
    EXPECT_EQ(ctx_stats.units_pushed, fresh_stats.units_pushed);
    EXPECT_EQ(ctx_stats.fallbacks, fresh_stats.fallbacks);
    expect_same_cycles(ctx.decompose(f_ctx), cycles_fresh);
  }
  // Sizes cycle with period 7, so most rounds rebind a recently seen
  // structure only when the size repeats back-to-back — but every round
  // either rebuilt or rebound, never both.
  EXPECT_EQ(ctx.stats().structure_builds + ctx.stats().rebinds, 100);
  EXPECT_EQ(ctx.stats().solves, 100);
}

// Same topology, fresh bids each round: after the first build every
// bind must take the in-place rebind path and report zero rebuilds.
TEST_P(SolveContextEquivalenceTest, StableTopologyRebindsOnly) {
  const SolverKind kind = GetParam();
  util::Rng rng(42);
  gen::GameConfig config;
  const gen::Topology topology = gen::barabasi_albert(24, 2, rng);
  SolveContext ctx;
  for (int round = 0; round < 20; ++round) {
    const core::Game game = gen::random_game(24, topology, config, rng);
    const core::BidVector bids = game.truthful_bids();
    game.bind_graph(ctx, bids);
    SolveStats stats;
    const Circulation f_ctx = ctx.solve(kind, &stats);
    EXPECT_EQ(stats.graph_rebuilds, round == 0 ? 1 : 0) << "round " << round;

    const Graph fresh = game.build_graph(bids);
    EXPECT_EQ(f_ctx, solve_max_welfare(fresh, kind)) << "round " << round;
  }
  EXPECT_EQ(ctx.stats().structure_builds, 1);
  EXPECT_EQ(ctx.stats().rebinds, 19);
}

// rebind_gains: the cheapest refresh path must match a from-scratch
// graph carrying the same gains.
TEST_P(SolveContextEquivalenceTest, RebindGainsMatchesFreshGraph) {
  const SolverKind kind = GetParam();
  util::Rng rng(7);
  gen::GameConfig config;
  const core::Game game = gen::random_ba_game(20, 2, config, rng);
  const core::BidVector bids = game.truthful_bids();

  SolveContext ctx;
  game.bind_graph(ctx, bids);
  ctx.solve(kind);

  for (int round = 0; round < 10; ++round) {
    std::vector<double> gains(static_cast<std::size_t>(ctx.graph().num_edges()));
    for (double& gain : gains) gain = rng.uniform_real(-0.05, 0.05);
    ctx.rebind_gains(gains);

    Graph fresh = game.build_graph(bids);
    for (EdgeId e = 0; e < fresh.num_edges(); ++e) {
      fresh.set_gain(e, gains[static_cast<std::size_t>(e)]);
    }
    SolveStats stats;
    EXPECT_EQ(ctx.solve(kind, &stats), solve_max_welfare(fresh, kind));
    EXPECT_EQ(stats.graph_rebuilds, 0);
  }
}

// mask_player must reproduce build_graph_without (the paper's G_{-v})
// exactly, for every player, and unmask must restore the full graph.
TEST_P(SolveContextEquivalenceTest, MaskPlayerMatchesBuildWithout) {
  const SolverKind kind = GetParam();
  util::Rng rng(99);
  gen::GameConfig config;
  config.depleted_share = 0.4;
  const core::Game game = gen::random_ba_game(16, 2, config, rng);
  const core::BidVector bids = game.truthful_bids();

  SolveContext ctx;
  game.bind_graph(ctx, bids);
  const Circulation f_full = ctx.solve(kind);

  for (core::PlayerId v = 0; v < game.num_players(); ++v) {
    ctx.mask_player(v);
    const Graph& masked = ctx.graph();
    const Graph without = game.build_graph_without(bids, v);
    ASSERT_EQ(masked.num_edges(), without.num_edges());
    for (EdgeId e = 0; e < masked.num_edges(); ++e) {
      EXPECT_EQ(masked.edge(e).capacity, without.edge(e).capacity);
      EXPECT_EQ(masked.scaled_gain(e), without.scaled_gain(e));
    }
    EXPECT_EQ(ctx.solve(kind), solve_max_welfare(without, kind));
    ctx.unmask();
  }
  // After the last unmask the context solves the unmasked game again.
  EXPECT_EQ(ctx.solve(kind), f_full);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolveContextEquivalenceTest,
                         ::testing::Values(SolverKind::kBellmanFord,
                                           SolverKind::kMinMean,
                                           SolverKind::kCapacityScaling,
                                           SolverKind::kNetworkSimplex));

TEST(SolveContextTest, SolveBeforeBindDies) {
  SolveContext ctx;
  EXPECT_DEATH(ctx.solve(), "before bind");
}

TEST(SolveContextTest, LocalContextIsPerThreadSingleton) {
  SolveContext& a = local_context();
  SolveContext& b = local_context();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace musketeer::flow
