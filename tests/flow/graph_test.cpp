#include "flow/graph.hpp"

#include <gtest/gtest.h>

namespace musketeer::flow {
namespace {

TEST(GraphTest, AddEdgeAndAccessors) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 10, 0.05);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).from, 0);
  EXPECT_EQ(g.edge(e).to, 1);
  EXPECT_EQ(g.edge(e).capacity, 10);
  EXPECT_DOUBLE_EQ(g.edge(e).gain, 0.05);
}

TEST(GraphTest, ScaledGainIsExact) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1, 0.05);
  EXPECT_EQ(g.scaled_gain(e), 50'000'000);
  const EdgeId f = g.add_edge(1, 0, 1, -0.001);
  EXPECT_EQ(g.scaled_gain(f), -1'000'000);
}

TEST(GraphTest, AdjacencyLists) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1, 0.0);
  const EdgeId b = g.add_edge(0, 2, 1, 0.0);
  const EdgeId c = g.add_edge(3, 0, 1, 0.0);
  ASSERT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.out_edges(0)[0], a);
  EXPECT_EQ(g.out_edges(0)[1], b);
  ASSERT_EQ(g.in_edges(0).size(), 1u);
  EXPECT_EQ(g.in_edges(0)[0], c);
  EXPECT_TRUE(g.out_edges(1).empty());
}

TEST(GraphTest, AntiparallelAndParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1, 5, 0.01);
  g.add_edge(1, 0, 5, 0.01);
  g.add_edge(0, 1, 7, -0.01);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
}

TEST(GraphTest, SetGainUpdatesScaledGain) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1, 0.01);
  g.set_gain(e, -0.02);
  EXPECT_DOUBLE_EQ(g.edge(e).gain, -0.02);
  EXPECT_EQ(g.scaled_gain(e), -20'000'000);
}

TEST(GraphTest, TotalCapacity) {
  Graph g(3);
  g.add_edge(0, 1, 4, 0.0);
  g.add_edge(1, 2, 6, 0.0);
  EXPECT_EQ(g.total_capacity(), 10);
}

TEST(GraphDeathTest, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(1, 1, 1, 0.0), "self-loop");
}

TEST(GraphDeathTest, RejectsNegativeCapacity) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 1, -1, 0.0), "capacity");
}

}  // namespace
}  // namespace musketeer::flow
