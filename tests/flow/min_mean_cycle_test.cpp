#include "flow/min_mean_cycle.hpp"

#include <gtest/gtest.h>

#include "flow/residual.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

std::vector<ResidualArc> zero_residual(const Graph& g) {
  return build_residual(g, zero_circulation(g));
}

double mean_to_double(const MeanValue& m) {
  return static_cast<double>(m.num) / static_cast<double>(m.den);
}

TEST(MinMeanCycleTest, AcyclicReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0.01);
  g.add_edge(1, 2, 1, 0.01);
  EXPECT_FALSE(min_mean_cycle(g.num_nodes(), zero_residual(g)).has_value());
}

TEST(MinMeanCycleTest, SingleCycleMeanIsExact) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0.03);
  g.add_edge(1, 2, 1, 0.0);
  g.add_edge(2, 0, 1, 0.0);
  const auto arcs = zero_residual(g);
  const auto mmc = min_mean_cycle(g.num_nodes(), arcs);
  ASSERT_TRUE(mmc.has_value());
  // Cost per arc: -0.03, 0, 0 scaled by 1e9; mean = -1e7.
  EXPECT_NEAR(mean_to_double(mmc->mean), -1e7, 1.0);
  EXPECT_TRUE(mmc->mean.is_negative());
  EXPECT_EQ(mmc->arcs.size(), 3u);
}

TEST(MinMeanCycleTest, PicksTheMoreNegativeMeanCycle) {
  Graph g(5);
  // Cycle A: 0->1->0 with mean gain 0.01 per edge.
  g.add_edge(0, 1, 1, 0.02);
  g.add_edge(1, 0, 1, 0.0);
  // Cycle B: 2->3->4->2 with mean gain 0.03 per edge.
  g.add_edge(2, 3, 1, 0.05);
  g.add_edge(3, 4, 1, 0.05);
  g.add_edge(4, 2, 1, -0.01);
  const auto arcs = zero_residual(g);
  const auto mmc = min_mean_cycle(g.num_nodes(), arcs);
  ASSERT_TRUE(mmc.has_value());
  EXPECT_NEAR(mean_to_double(mmc->mean), -0.03 * 1e9, 1.0);
  EXPECT_EQ(mmc->arcs.size(), 3u);
}

TEST(MinMeanCycleTest, NonNegativeMeanWhenNoProfitableCycle) {
  Graph g(2);
  g.add_edge(0, 1, 1, 0.01);
  g.add_edge(1, 0, 1, -0.03);
  const auto mmc = min_mean_cycle(g.num_nodes(), zero_residual(g));
  ASSERT_TRUE(mmc.has_value());
  EXPECT_FALSE(mmc->mean.is_negative());
  EXPECT_NEAR(mean_to_double(mmc->mean), 0.01 * 1e9, 1.0);
}

TEST(MinMeanCycleTest, WitnessCycleCostMatchesMeanTimesLength) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g(6);
    for (int e = 0; e < 12; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform(6));
      auto v = static_cast<NodeId>(rng.uniform(6));
      if (u == v) v = static_cast<NodeId>((v + 1) % 6);
      g.add_edge(u, v, 1, rng.uniform_real(-0.05, 0.05));
    }
    const auto arcs = zero_residual(g);
    const auto mmc = min_mean_cycle(g.num_nodes(), arcs);
    if (!mmc) continue;
    std::int64_t cost = 0;
    for (int a : mmc->arcs) cost += arcs[static_cast<std::size_t>(a)].cost;
    // Witness achieves the min mean exactly: cost * den == num * length.
    EXPECT_EQ(static_cast<__int128>(cost) * mmc->mean.den,
              static_cast<__int128>(mmc->mean.num) *
                  static_cast<std::int64_t>(mmc->arcs.size()));
  }
}

}  // namespace
}  // namespace musketeer::flow
