#include "flow/solver.hpp"

#include <gtest/gtest.h>

#include "flow/min_mean_cycle.hpp"
#include "flow/residual.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

Graph random_graph(NodeId n, int edges, util::Rng& rng) {
  Graph g(n);
  for (int e = 0; e < edges; ++e) {
    const auto u = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<NodeId>((v + 1) % n);
    g.add_edge(u, v, rng.uniform_int(1, 20), rng.uniform_real(-0.05, 0.05));
  }
  return g;
}

TEST(SolverTest, EmptyGraphSolvesToZero) {
  Graph g(4);
  const Circulation f = solve_max_welfare(g);
  EXPECT_EQ(total_volume(f), 0);
}

TEST(SolverTest, SaturatesProfitableCycle) {
  Graph g(3);
  g.add_edge(0, 1, 7, 0.03);
  g.add_edge(1, 2, 9, -0.01);
  g.add_edge(2, 0, 8, 0.0);
  const Circulation f = solve_max_welfare(g);
  EXPECT_EQ(f, (Circulation{7, 7, 7}));  // bottleneck saturated
  EXPECT_NEAR(welfare(g, f), 7 * 0.02, 1e-12);
}

TEST(SolverTest, IgnoresUnprofitableCycle) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.01);
  g.add_edge(1, 2, 5, -0.02);
  g.add_edge(2, 0, 5, 0.0);
  const Circulation f = solve_max_welfare(g);
  EXPECT_EQ(total_volume(f), 0);
}

TEST(SolverTest, IgnoresZeroWelfareCycle) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.01);
  g.add_edge(1, 2, 5, -0.01);
  g.add_edge(2, 0, 5, 0.0);
  const Circulation f = solve_max_welfare(g);
  EXPECT_EQ(total_volume(f), 0);
}

TEST(SolverTest, SharedBottleneckPrefersHigherBidCycle) {
  // Two buyers compete for the same seller capacity; the higher bid wins
  // the scarce units (the paper's "channels are prioritized by bids").
  Graph g(4);
  // Shared seller edge 2->3 capacity 5.
  const EdgeId shared = g.add_edge(2, 3, 5, 0.0);
  // Buyer A cycle: 3->0->2 with bid 0.04 on 3->0.
  const EdgeId buyer_a = g.add_edge(3, 0, 10, 0.04);
  g.add_edge(0, 2, 10, 0.0);
  // Buyer B cycle: 3->1->2 with bid 0.01 on 3->1.
  const EdgeId buyer_b = g.add_edge(3, 1, 10, 0.01);
  g.add_edge(1, 2, 10, 0.0);
  const Circulation f = solve_max_welfare(g);
  EXPECT_EQ(f[static_cast<std::size_t>(shared)], 5);
  EXPECT_EQ(f[static_cast<std::size_t>(buyer_a)], 5);
  EXPECT_EQ(f[static_cast<std::size_t>(buyer_b)], 0);
}

TEST(SolverTest, StatsAreReported) {
  Graph g(3);
  g.add_edge(0, 1, 7, 0.03);
  g.add_edge(1, 2, 9, -0.01);
  g.add_edge(2, 0, 8, 0.0);
  SolveStats stats;
  solve_max_welfare(g, SolverKind::kBellmanFord, &stats);
  EXPECT_GE(stats.cycles_cancelled, 1);
  EXPECT_GE(stats.units_pushed, 7);
}

TEST(SolverTest, IsOptimalAcceptsSolverOutputAndRejectsWorse) {
  Graph g(3);
  g.add_edge(0, 1, 7, 0.03);
  g.add_edge(1, 2, 9, -0.01);
  g.add_edge(2, 0, 8, 0.0);
  const Circulation f = solve_max_welfare(g);
  EXPECT_TRUE(is_optimal(g, f));
  EXPECT_FALSE(is_optimal(g, zero_circulation(g)));
  EXPECT_FALSE(is_optimal(g, Circulation{8, 8, 8}));  // infeasible
}

// Property suite: on random graphs, both solvers agree exactly with each
// other and pass the min-mean optimality certificate.
class SolverRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverRandomTest, SolversAgreeAndCertifyOptimal) {
  util::Rng rng(GetParam());
  const auto n = static_cast<NodeId>(rng.uniform_int(3, 12));
  const int m = static_cast<int>(rng.uniform_int(n, 4 * n));
  const Graph g = random_graph(n, m, rng);

  const Circulation f_bf = solve_max_welfare(g, SolverKind::kBellmanFord);
  const Circulation f_mm = solve_max_welfare(g, SolverKind::kMinMean);
  const Circulation f_cs =
      solve_max_welfare(g, SolverKind::kCapacityScaling);

  ASSERT_TRUE(is_feasible(g, f_bf));
  ASSERT_TRUE(is_feasible(g, f_mm));
  ASSERT_TRUE(is_feasible(g, f_cs));
  // Equal objective values (flows themselves may differ across optima).
  EXPECT_EQ(scaled_welfare(g, f_bf), scaled_welfare(g, f_mm));
  EXPECT_EQ(scaled_welfare(g, f_bf), scaled_welfare(g, f_cs));
  EXPECT_TRUE(is_optimal(g, f_cs));

  // Exact optimality certificates.
  EXPECT_TRUE(is_optimal(g, f_bf));
  const auto arcs = build_residual(g, f_mm);
  const auto mmc = min_mean_cycle(g.num_nodes(), arcs);
  EXPECT_TRUE(!mmc.has_value() || !mmc->mean.is_negative());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SolverRandomTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace musketeer::flow
