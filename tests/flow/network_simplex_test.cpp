#include "flow/network_simplex.hpp"

#include <gtest/gtest.h>

#include "gen/game_gen.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

TEST(NetworkSimplexTest, EmptyGraph) {
  Graph g(4);
  EXPECT_EQ(total_volume(solve_network_simplex(g)), 0);
}

TEST(NetworkSimplexTest, SaturatesProfitableCycle) {
  Graph g(3);
  g.add_edge(0, 1, 7, 0.03);
  g.add_edge(1, 2, 9, -0.01);
  g.add_edge(2, 0, 8, 0.0);
  const Circulation f = solve_network_simplex(g);
  EXPECT_EQ(f, (Circulation{7, 7, 7}));
  EXPECT_TRUE(is_optimal(g, f));
}

TEST(NetworkSimplexTest, LeavesUnprofitableCyclesAlone) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.01);
  g.add_edge(1, 2, 5, -0.02);
  g.add_edge(2, 0, 5, 0.0);
  EXPECT_EQ(total_volume(solve_network_simplex(g)), 0);
}

TEST(NetworkSimplexTest, CompetingBuyersResolvedByBid) {
  Graph g(4);
  const EdgeId shared = g.add_edge(2, 3, 5, 0.0);
  const EdgeId buyer_a = g.add_edge(3, 0, 10, 0.04);
  g.add_edge(0, 2, 10, 0.0);
  const EdgeId buyer_b = g.add_edge(3, 1, 10, 0.01);
  g.add_edge(1, 2, 10, 0.0);
  const Circulation f = solve_network_simplex(g);
  EXPECT_EQ(f[static_cast<std::size_t>(shared)], 5);
  EXPECT_EQ(f[static_cast<std::size_t>(buyer_a)], 5);
  EXPECT_EQ(f[static_cast<std::size_t>(buyer_b)], 0);
}

TEST(NetworkSimplexTest, ReportsPivotStats) {
  Graph g(3);
  g.add_edge(0, 1, 7, 0.03);
  g.add_edge(1, 2, 9, -0.01);
  g.add_edge(2, 0, 8, 0.0);
  SolveStats stats;
  solve_network_simplex(g, &stats);
  EXPECT_GE(stats.cycles_cancelled, 1);
}

TEST(NetworkSimplexTest, ViaSolverKindDispatch) {
  Graph g(3);
  g.add_edge(0, 1, 7, 0.03);
  g.add_edge(1, 2, 9, -0.01);
  g.add_edge(2, 0, 8, 0.0);
  const Circulation f =
      solve_max_welfare(g, SolverKind::kNetworkSimplex);
  EXPECT_TRUE(is_optimal(g, f));
}

// The decisive suite: exact agreement with the proven cancelling solver
// on a broad family of random instances, with optimality certificates.
class NetworkSimplexRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkSimplexRandomTest, AgreesWithBellmanFordExactly) {
  util::Rng rng(GetParam());
  const auto n = static_cast<NodeId>(rng.uniform_int(3, 20));
  Graph g(n);
  const int m = static_cast<int>(rng.uniform_int(n, 5 * n));
  for (int e = 0; e < m; ++e) {
    const auto u = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<NodeId>((v + 1) % n);
    g.add_edge(u, v, rng.uniform_int(1, 30), rng.uniform_real(-0.05, 0.05));
  }
  const Circulation f_ns = solve_network_simplex(g);
  const Circulation f_bf = solve_max_welfare(g, SolverKind::kBellmanFord);
  ASSERT_TRUE(is_feasible(g, f_ns));
  EXPECT_TRUE(is_optimal(g, f_ns)) << "no exact optimality certificate";
  EXPECT_EQ(scaled_welfare(g, f_ns), scaled_welfare(g, f_bf));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, NetworkSimplexRandomTest,
                         ::testing::Range<std::uint64_t>(2000, 2080));

TEST(NetworkSimplexTest, LightningScaleGameSolves) {
  util::Rng rng(4096);
  gen::GameConfig config;
  config.depleted_share = 0.3;
  const core::Game game = gen::random_ba_game(256, 2, config, rng);
  const Graph g = game.build_graph(game.truthful_bids());
  const Circulation f = solve_network_simplex(g);
  EXPECT_TRUE(is_optimal(g, f));
}

TEST(NetworkSimplexTest, DegenerateManyZeroCapacityEdges) {
  Graph g(4);
  g.add_edge(0, 1, 0, 0.05);
  g.add_edge(1, 2, 0, 0.05);
  g.add_edge(2, 0, 0, 0.05);
  g.add_edge(0, 3, 5, 0.02);
  g.add_edge(3, 0, 5, 0.0);
  const Circulation f = solve_network_simplex(g);
  EXPECT_TRUE(is_optimal(g, f));
  EXPECT_EQ(f[3], 5);
  EXPECT_EQ(f[4], 5);
}

}  // namespace
}  // namespace musketeer::flow
