#include "flow/dinic.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

TEST(DinicTest, SingleEdge) {
  Dinic d(2);
  d.add_edge(0, 1, 5);
  EXPECT_EQ(d.solve(0, 1), 5);
}

TEST(DinicTest, SeriesBottleneck) {
  Dinic d(3);
  d.add_edge(0, 1, 5);
  d.add_edge(1, 2, 3);
  EXPECT_EQ(d.solve(0, 2), 3);
}

TEST(DinicTest, ParallelPathsAdd) {
  Dinic d(4);
  d.add_edge(0, 1, 3);
  d.add_edge(1, 3, 3);
  d.add_edge(0, 2, 4);
  d.add_edge(2, 3, 4);
  EXPECT_EQ(d.solve(0, 3), 7);
}

TEST(DinicTest, ClassicAugmentingPathInstance) {
  // The textbook diamond where a naive greedy needs the residual arc.
  Dinic d(4);
  d.add_edge(0, 1, 1);
  d.add_edge(0, 2, 1);
  d.add_edge(1, 2, 1);
  d.add_edge(1, 3, 1);
  d.add_edge(2, 3, 1);
  EXPECT_EQ(d.solve(0, 3), 2);
}

TEST(DinicTest, DisconnectedIsZero) {
  Dinic d(4);
  d.add_edge(0, 1, 5);
  d.add_edge(2, 3, 5);
  EXPECT_EQ(d.solve(0, 3), 0);
}

TEST(DinicTest, FlowOnReportsPerEdgeFlow) {
  Dinic d(3);
  const int a = d.add_edge(0, 1, 5);
  const int b = d.add_edge(1, 2, 3);
  EXPECT_EQ(d.solve(0, 2), 3);
  EXPECT_EQ(d.flow_on(a), 3);
  EXPECT_EQ(d.flow_on(b), 3);
}

TEST(DinicTest, MaxFlowEqualsMinCutOnRandomGraphs) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.uniform_int(4, 10));
    Dinic d(n);
    struct E { NodeId u, v; Amount c; };
    std::vector<E> edges;
    const int m = static_cast<int>(rng.uniform_int(n, 3 * n));
    for (int e = 0; e < m; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
      auto v = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
      if (u == v) v = static_cast<NodeId>((v + 1) % n);
      const Amount c = rng.uniform_int(1, 10);
      d.add_edge(u, v, c);
      edges.push_back({u, v, c});
    }
    const Amount flow_value = d.solve(0, n - 1);
    // Brute-force min cut over all 2^(n-2) source-side subsets.
    Amount min_cut = std::numeric_limits<Amount>::max();
    const int inner = n - 2;
    for (std::uint64_t mask = 0; mask < (1ULL << inner); ++mask) {
      std::vector<bool> source_side(static_cast<std::size_t>(n), false);
      source_side[0] = true;
      for (int i = 0; i < inner; ++i) {
        source_side[static_cast<std::size_t>(i + 1)] = (mask >> i) & 1;
      }
      Amount cut = 0;
      for (const E& e : edges) {
        if (source_side[static_cast<std::size_t>(e.u)] &&
            !source_side[static_cast<std::size_t>(e.v)]) {
          cut += e.c;
        }
      }
      min_cut = std::min(min_cut, cut);
    }
    EXPECT_EQ(flow_value, min_cut) << "trial " << trial;
  }
}

}  // namespace
}  // namespace musketeer::flow
