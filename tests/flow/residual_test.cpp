#include "flow/residual.hpp"

#include <gtest/gtest.h>

namespace musketeer::flow {
namespace {

Graph pair_graph() {
  Graph g(2);
  g.add_edge(0, 1, 10, 0.02);
  return g;
}

TEST(ResidualTest, ZeroFlowHasForwardArcsOnly) {
  const Graph g = pair_graph();
  const auto arcs = build_residual(g, zero_circulation(g));
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_TRUE(arcs[0].forward);
  EXPECT_EQ(arcs[0].residual, 10);
  EXPECT_EQ(arcs[0].cost, -scale_gain(0.02));
  EXPECT_EQ(arcs[0].from, 0);
  EXPECT_EQ(arcs[0].to, 1);
}

TEST(ResidualTest, SaturatedFlowHasBackwardArcsOnly) {
  const Graph g = pair_graph();
  const auto arcs = build_residual(g, Circulation{10});
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_FALSE(arcs[0].forward);
  EXPECT_EQ(arcs[0].residual, 10);
  EXPECT_EQ(arcs[0].cost, scale_gain(0.02));
  EXPECT_EQ(arcs[0].from, 1);
  EXPECT_EQ(arcs[0].to, 0);
}

TEST(ResidualTest, PartialFlowHasBothArcs) {
  const Graph g = pair_graph();
  const auto arcs = build_residual(g, Circulation{4});
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].residual + arcs[1].residual, 10);
}

TEST(ResidualTest, PushAlongForwardIncreasesFlow) {
  const Graph g = pair_graph();
  Circulation f{4};
  const auto arcs = build_residual(g, f);
  // Find the forward arc.
  int fwd = arcs[0].forward ? 0 : 1;
  push_along(arcs, {fwd}, 3, f);
  EXPECT_EQ(f[0], 7);
}

TEST(ResidualTest, PushAlongBackwardDecreasesFlow) {
  const Graph g = pair_graph();
  Circulation f{4};
  const auto arcs = build_residual(g, f);
  int bwd = arcs[0].forward ? 1 : 0;
  push_along(arcs, {bwd}, 4, f);
  EXPECT_EQ(f[0], 0);
}

TEST(ResidualTest, BottleneckIsMinimumResidual) {
  Graph g(3);
  g.add_edge(0, 1, 3, 0.0);
  g.add_edge(1, 2, 8, 0.0);
  const auto arcs = build_residual(g, zero_circulation(g));
  EXPECT_EQ(bottleneck(arcs, {0, 1}), 3);
}

TEST(ResidualDeathTest, PushBeyondResidualAborts) {
  const Graph g = pair_graph();
  Circulation f{4};
  const auto arcs = build_residual(g, f);
  int bwd = arcs[0].forward ? 1 : 0;
  EXPECT_DEATH(push_along(arcs, {bwd}, 5, f), "residual");
}

}  // namespace
}  // namespace musketeer::flow
