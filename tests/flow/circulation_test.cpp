#include "flow/circulation.hpp"

#include <gtest/gtest.h>

namespace musketeer::flow {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 10, 0.02);
  g.add_edge(1, 2, 10, -0.01);
  g.add_edge(2, 0, 10, 0.0);
  return g;
}

TEST(CirculationTest, ZeroCirculationIsFeasible) {
  const Graph g = triangle();
  const Circulation f = zero_circulation(g);
  EXPECT_TRUE(is_feasible(g, f));
  EXPECT_EQ(total_volume(f), 0);
  EXPECT_DOUBLE_EQ(welfare(g, f), 0.0);
}

TEST(CirculationTest, UniformCycleFlowConserves) {
  const Graph g = triangle();
  const Circulation f{5, 5, 5};
  EXPECT_TRUE(conserves_flow(g, f));
  EXPECT_TRUE(within_capacity(g, f));
  EXPECT_TRUE(is_feasible(g, f));
}

TEST(CirculationTest, NonUniformFlowViolatesConservation) {
  const Graph g = triangle();
  const Circulation f{5, 4, 5};
  EXPECT_FALSE(conserves_flow(g, f));
  EXPECT_FALSE(is_feasible(g, f));
}

TEST(CirculationTest, OverCapacityDetected) {
  const Graph g = triangle();
  const Circulation f{11, 11, 11};
  EXPECT_TRUE(conserves_flow(g, f));
  EXPECT_FALSE(within_capacity(g, f));
}

TEST(CirculationTest, NegativeFlowDetected) {
  const Graph g = triangle();
  const Circulation f{-1, -1, -1};
  EXPECT_FALSE(within_capacity(g, f));
}

TEST(CirculationTest, WelfareExactArithmetic) {
  const Graph g = triangle();
  const Circulation f{5, 5, 5};
  // 5 * (0.02 - 0.01 + 0.0) = 0.05, computed exactly in scaled units.
  EXPECT_EQ(scaled_welfare(g, f), static_cast<__int128>(50'000'000));
  EXPECT_DOUBLE_EQ(welfare(g, f), 0.05);
}

TEST(CirculationTest, AddCombinesPointwise) {
  const Circulation a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(add(a, b), (Circulation{5, 7, 9}));
}

TEST(CirculationTest, WrongSizeIsInfeasible) {
  const Graph g = triangle();
  EXPECT_FALSE(conserves_flow(g, Circulation{1, 1}));
  EXPECT_FALSE(within_capacity(g, Circulation{1, 1}));
}

}  // namespace
}  // namespace musketeer::flow
