// flow::Partitioner: weakly-connected components of the bid graph.
// Pins the determinism contract the sharded solve path builds on —
// component ids ordered by smallest member node, edge lists ascending
// in global order, capacity-0 edges included — against a brute-force
// BFS reference on randomized graphs plus the boundary shapes.
#include "flow/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "flow/graph.hpp"
#include "gen/game_gen.hpp"
#include "util/rng.hpp"

namespace musketeer::flow {
namespace {

/// Reference implementation: BFS over the undirected edge set, numbering
/// components by smallest member node, skipping isolated nodes.
std::vector<int> bfs_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<NodeId>> adjacent(static_cast<std::size_t>(n));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    adjacent[static_cast<std::size_t>(g.edge(e).from)].push_back(
        g.edge(e).to);
    adjacent[static_cast<std::size_t>(g.edge(e).to)].push_back(
        g.edge(e).from);
  }
  std::vector<int> component(static_cast<std::size_t>(n), kNoComponent);
  int next = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (component[static_cast<std::size_t>(start)] != kNoComponent ||
        adjacent[static_cast<std::size_t>(start)].empty()) {
      continue;
    }
    std::queue<NodeId> frontier;
    frontier.push(start);
    component[static_cast<std::size_t>(start)] = next;
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const NodeId w : adjacent[static_cast<std::size_t>(v)]) {
        if (component[static_cast<std::size_t>(w)] == kNoComponent) {
          component[static_cast<std::size_t>(w)] = next;
          frontier.push(w);
        }
      }
    }
    ++next;
  }
  return component;
}

void expect_matches_bfs(const Graph& g, const Partition& part) {
  const std::vector<int> want = bfs_components(g);
  const int num = *std::max_element(want.begin(), want.end()) + 1;
  ASSERT_EQ(part.num_components(), std::max(num, 0));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(part.component_of(v), want[static_cast<std::size_t>(v)])
        << "node " << v;
  }
}

/// Every edge appears in exactly its endpoints' component, lists are
/// ascending (preserving global relative order), and local index i maps
/// back to global edge edges(c)[i] with matching endpoints.
void expect_edge_lists_consistent(const Graph& g, const Partition& part) {
  std::vector<bool> seen(static_cast<std::size_t>(g.num_edges()), false);
  for (int c = 0; c < part.num_components(); ++c) {
    const std::span<const EdgeId> edges = part.edges(c);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const EdgeId e = edges[i];
      EXPECT_FALSE(seen[static_cast<std::size_t>(e)]) << "edge " << e;
      seen[static_cast<std::size_t>(e)] = true;
      if (i > 0) {
        EXPECT_LT(edges[i - 1], e);
      }
      EXPECT_EQ(part.component_of(g.edge(e).from), c);
      EXPECT_EQ(part.component_of(g.edge(e).to), c);
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(e)]) << "edge " << e;
  }
}

TEST(PartitionerTest, EmptyGraphHasNoComponents) {
  Partitioner partitioner;
  const Partition& part = partitioner.run(Graph(0));
  EXPECT_EQ(part.num_components(), 0);
  EXPECT_EQ(part.largest_component_edges(), 0);
}

TEST(PartitionerTest, IsolatedNodesBelongToNoComponent) {
  Partitioner partitioner;
  const Partition& part = partitioner.run(Graph(5));
  EXPECT_EQ(part.num_components(), 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(part.component_of(v), kNoComponent);
  }
}

TEST(PartitionerTest, SingleEdgeIsOneComponent) {
  Graph g(3);
  g.add_edge(0, 2, 5, 1.0);
  Partitioner partitioner;
  const Partition& part = partitioner.run(g);
  EXPECT_EQ(part.num_components(), 1);
  EXPECT_EQ(part.component_of(0), 0);
  EXPECT_EQ(part.component_of(1), kNoComponent);
  EXPECT_EQ(part.component_of(2), 0);
  ASSERT_EQ(part.edges(0).size(), 1u);
  EXPECT_EQ(part.edges(0)[0], 0);
  EXPECT_EQ(part.largest_component_edges(), 1);
}

TEST(PartitionerTest, FullyConnectedIsOneComponent) {
  Graph g(6);
  for (NodeId v = 0; v < 6; ++v) g.add_edge(v, (v + 1) % 6, 4, 1.0);
  Partitioner partitioner;
  const Partition& part = partitioner.run(g);
  EXPECT_EQ(part.num_components(), 1);
  EXPECT_EQ(part.edges(0).size(), 6u);
  EXPECT_EQ(part.largest_component_edges(), 6);
  expect_matches_bfs(g, part);
}

// Capacity-0 edges still union their endpoints: the partition must
// mirror the arc layout the solvers (network simplex in particular)
// see, not the currently routable sub-network.
TEST(PartitionerTest, ZeroCapacityEdgesStillConnect) {
  Graph g(4);
  g.add_edge(0, 1, 3, 1.0);
  g.add_edge(1, 2, 0, 1.0);  // masked/depleted, but structurally present
  g.add_edge(2, 3, 3, 1.0);
  Partitioner partitioner;
  const Partition& part = partitioner.run(g);
  EXPECT_EQ(part.num_components(), 1);
  EXPECT_EQ(part.edges(0).size(), 3u);
}

// Two disjoint triangles: component ids follow the smallest member node,
// independent of edge insertion order.
TEST(PartitionerTest, ComponentIdsOrderedBySmallestNode) {
  Graph g(6);
  // Insert the {3,4,5} triangle's edges FIRST; it must still be
  // component 1 because node 0 is smaller than node 3.
  g.add_edge(3, 4, 2, 1.0);
  g.add_edge(4, 5, 2, 1.0);
  g.add_edge(5, 3, 2, 1.0);
  g.add_edge(0, 1, 2, 1.0);
  g.add_edge(1, 2, 2, 1.0);
  g.add_edge(2, 0, 2, 1.0);
  Partitioner partitioner;
  const Partition& part = partitioner.run(g);
  ASSERT_EQ(part.num_components(), 2);
  EXPECT_EQ(part.component_of(0), 0);
  EXPECT_EQ(part.component_of(3), 1);
  // Edge lists stay ascending in global order even though the global
  // order interleaves insertion before the component split.
  EXPECT_EQ(std::vector<EdgeId>(part.edges(0).begin(), part.edges(0).end()),
            (std::vector<EdgeId>{3, 4, 5}));
  EXPECT_EQ(std::vector<EdgeId>(part.edges(1).begin(), part.edges(1).end()),
            (std::vector<EdgeId>{0, 1, 2}));
}

TEST(PartitionerTest, MatchesBfsOnRandomGraphsAndScratchReuses) {
  util::Rng rng(0xBADCAB);
  Partitioner partitioner;  // reused across rounds, like the solve path
  for (int round = 0; round < 50; ++round) {
    const NodeId n = 2 + static_cast<NodeId>(rng.uniform(41));
    Graph g(n);
    const int m = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(3 * n) + 1));
    for (int e = 0; e < m; ++e) {
      const NodeId from = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
      NodeId to = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
      if (to == from) to = (to + 1) % n;
      g.add_edge(from, to, static_cast<Amount>(rng.uniform(6)), 1.0);
    }
    const Partition& part = partitioner.run(g);
    expect_matches_bfs(g, part);
    expect_edge_lists_consistent(g, part);
  }
}

}  // namespace
}  // namespace musketeer::flow
