// Tests for the balanced-popularity and cyclic-trade workload modes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gen/workload.hpp"

namespace musketeer::gen {
namespace {

TEST(WorkloadModesTest, BalancedPopularityEqualizesSendReceiveRates) {
  util::Rng rng(40);
  WorkloadConfig config;
  config.zipf_exponent = 1.2;
  config.balanced_popularity = true;
  const auto payments = generate_payments(20, 8000, config, rng);
  std::map<flow::NodeId, int> sent, received;
  for (const Payment& p : payments) {
    ++sent[p.sender];
    ++received[p.receiver];
  }
  // Each node's send and receive counts should track each other closely
  // (same popularity rank on both sides).
  for (const auto& [node, s] : sent) {
    const int r = received[node];
    if (s + r < 200) continue;  // skip low-traffic tails
    const double ratio = static_cast<double>(s) / static_cast<double>(r);
    EXPECT_GT(ratio, 0.6) << "node " << node;
    EXPECT_LT(ratio, 1.7) << "node " << node;
  }
}

TEST(WorkloadModesTest, UnbalancedPopularityCreatesNetDrain) {
  util::Rng rng(41);
  WorkloadConfig config;
  config.zipf_exponent = 1.2;
  config.balanced_popularity = false;
  const auto payments = generate_payments(20, 8000, config, rng);
  std::map<flow::NodeId, long long> net;
  for (const Payment& p : payments) {
    net[p.sender] -= p.amount;
    net[p.receiver] += p.amount;
  }
  long long max_abs = 0;
  for (const auto& [node, flow_total] : net) {
    max_abs = std::max(max_abs, std::abs(flow_total));
  }
  // With independent sender/receiver popularity, someone accumulates.
  EXPECT_GT(max_abs, 1000);
}

TEST(WorkloadModesTest, CyclicGroupsRouteToNextGroupOnly) {
  util::Rng rng(42);
  WorkloadConfig config;
  config.cyclic_groups = 3;
  const flow::NodeId n = 18;
  const auto payments = generate_payments(n, 2000, config, rng);
  // Recover the group assignment by checking consistency: every sender
  // must always map to the same receiver group.
  std::map<flow::NodeId, std::set<flow::NodeId>> receivers_of;
  for (const Payment& p : payments) {
    receivers_of[p.sender].insert(p.receiver);
  }
  // Receivers of one sender never overlap with the sender itself and the
  // union over a sender's receivers is at most one group (n/3 nodes).
  for (const auto& [sender, receivers] : receivers_of) {
    EXPECT_LE(receivers.size(), static_cast<std::size_t>(n / 3));
    EXPECT_EQ(receivers.count(sender), 0u);
  }
}

TEST(WorkloadModesTest, CyclicGroupsConserveWealthInExpectation) {
  util::Rng rng(43);
  WorkloadConfig config;
  config.cyclic_groups = 4;
  config.zipf_exponent = 0.0;
  const auto payments = generate_payments(16, 12000, config, rng);
  std::map<flow::NodeId, long long> net;
  for (const Payment& p : payments) {
    net[p.sender] -= p.amount;
    net[p.receiver] += p.amount;
  }
  // Everyone sends and receives at uniform rates: per-node net flow is a
  // small fraction of total volume.
  long long volume = 0;
  for (const Payment& p : payments) volume += p.amount;
  for (const auto& [node, flow_total] : net) {
    EXPECT_LT(std::abs(flow_total), volume / 40) << "node " << node;
  }
}

TEST(WorkloadModesTest, GroupsOfOneNodeAreDegenerate) {
  util::Rng rng(44);
  WorkloadConfig config;
  config.cyclic_groups = 2;
  // 2 nodes, 2 groups: payments must alternate 0<->1.
  const auto payments = generate_payments(2, 100, config, rng);
  EXPECT_EQ(payments.size(), 100u);
  for (const Payment& p : payments) EXPECT_NE(p.sender, p.receiver);
}

}  // namespace
}  // namespace musketeer::gen
