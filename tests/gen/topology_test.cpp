#include "gen/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

namespace musketeer::gen {
namespace {

// Union-find connectivity check.
bool connected(NodeId n, const Topology& channels) {
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<NodeId(NodeId)> find = [&](NodeId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (const auto& [a, b] : channels) {
    parent[static_cast<std::size_t>(find(a))] = find(b);
  }
  for (NodeId i = 1; i < n; ++i) {
    if (find(i) != find(0)) return false;
  }
  return true;
}

std::vector<int> degrees(NodeId n, const Topology& channels) {
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  for (const auto& [a, b] : channels) {
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  return deg;
}

TEST(TopologyTest, ErdosRenyiDensityMatchesP) {
  util::Rng rng(1);
  const Topology t = erdos_renyi(60, 0.1, rng);
  const double expected = 0.1 * 60 * 59 / 2;
  EXPECT_NEAR(static_cast<double>(t.size()), expected, expected * 0.35);
  for (const auto& [a, b] : t) {
    EXPECT_NE(a, b);
    EXPECT_LT(a, 60);
  }
}

TEST(TopologyTest, ErdosRenyiExtremes) {
  util::Rng rng(2);
  EXPECT_TRUE(erdos_renyi(10, 0.0, rng).empty());
  EXPECT_EQ(erdos_renyi(10, 1.0, rng).size(), 45u);
}

TEST(TopologyTest, BarabasiAlbertIsConnectedWithRightEdgeCount) {
  util::Rng rng(3);
  const NodeId n = 100;
  const int attach = 2;
  const Topology t = barabasi_albert(n, attach, rng);
  EXPECT_TRUE(connected(n, t));
  // Seed clique C(3,2)=3 edges + 2 per newcomer.
  EXPECT_EQ(t.size(), 3u + 2u * (100 - 3));
}

TEST(TopologyTest, BarabasiAlbertIsHeavyTailed) {
  util::Rng rng(4);
  const NodeId n = 300;
  const Topology t = barabasi_albert(n, 2, rng);
  const auto deg = degrees(n, t);
  const int max_deg = *std::max_element(deg.begin(), deg.end());
  // Scale-free hubs: the max degree should far exceed the mean (~4).
  EXPECT_GT(max_deg, 12);
}

TEST(TopologyTest, WattsStrogatzKeepsDegreeScale) {
  util::Rng rng(5);
  const NodeId n = 50;
  const Topology t = watts_strogatz(n, 2, 0.1, rng);
  EXPECT_GE(t.size(), 90u);  // ~2n edges, minus dedupe collisions
  EXPECT_LE(t.size(), 100u);
}

TEST(TopologyTest, RingShape) {
  const Topology t = ring(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(connected(5, t));
  const auto deg = degrees(5, t);
  for (int d : deg) EXPECT_EQ(d, 2);
}

TEST(TopologyTest, GridShape) {
  const Topology t = grid(3, 4);
  // 3*3 horizontal + 2*4 vertical = 17.
  EXPECT_EQ(t.size(), 17u);
  EXPECT_TRUE(connected(12, t));
}

TEST(TopologyTest, HubAndSpokeConnectsEveryLeaf) {
  util::Rng rng(6);
  const Topology t = hub_and_spoke(40, 4, 0.3, rng);
  EXPECT_TRUE(connected(40, t));
  const auto deg = degrees(40, t);
  for (NodeId leaf = 4; leaf < 40; ++leaf) {
    EXPECT_GE(deg[static_cast<std::size_t>(leaf)], 1);
    EXPECT_LE(deg[static_cast<std::size_t>(leaf)], 2);
  }
}

TEST(TopologyTest, DedupeRemovesDuplicatesAndLoops) {
  Topology t{{1, 0}, {0, 1}, {2, 2}, {1, 2}};
  const Topology d = dedupe(t);
  EXPECT_EQ(d.size(), 2u);
  const std::set<ChannelEndpoints> expected{{0, 1}, {1, 2}};
  EXPECT_EQ(std::set<ChannelEndpoints>(d.begin(), d.end()), expected);
}

}  // namespace
}  // namespace musketeer::gen
