#include "gen/game_gen.hpp"

#include <gtest/gtest.h>

namespace musketeer::gen {
namespace {

TEST(GameGenTest, ProducesValidGames) {
  util::Rng rng(10);
  GameConfig config;
  const core::Game game = random_ba_game(30, 2, config, rng);
  EXPECT_EQ(game.num_players(), 30);
  EXPECT_GT(game.num_edges(), 0);
  EXPECT_TRUE(game.is_valid(game.truthful_bids()));
}

TEST(GameGenTest, CapacitiesWithinConfiguredRange) {
  util::Rng rng(11);
  GameConfig config;
  config.capacity_min = 5;
  config.capacity_max = 9;
  const core::Game game = random_ba_game(20, 2, config, rng);
  for (core::EdgeId e = 0; e < game.num_edges(); ++e) {
    EXPECT_GE(game.edge(e).capacity, 5);
    EXPECT_LE(game.edge(e).capacity, 9);
  }
}

TEST(GameGenTest, DepletedShareApproximatelyRespected) {
  util::Rng rng(12);
  GameConfig config;
  config.depleted_share = 0.4;
  const core::Game game = random_ba_game(120, 2, config, rng);
  int depleted = 0;
  for (core::EdgeId e = 0; e < game.num_edges(); ++e) {
    depleted += game.is_depleted(e);
  }
  const double share =
      static_cast<double>(depleted) / static_cast<double>(game.num_edges());
  EXPECT_NEAR(share, 0.4, 0.1);
}

TEST(GameGenTest, ExtremeSharesProduceAllOrNothing) {
  util::Rng rng(13);
  GameConfig config;
  config.depleted_share = 0.0;
  const core::Game sellers_only = random_ba_game(15, 2, config, rng);
  for (core::EdgeId e = 0; e < sellers_only.num_edges(); ++e) {
    EXPECT_FALSE(sellers_only.is_depleted(e));
  }
  config.depleted_share = 1.0;
  const core::Game buyers_only = random_ba_game(15, 2, config, rng);
  for (core::EdgeId e = 0; e < buyers_only.num_edges(); ++e) {
    EXPECT_TRUE(buyers_only.is_depleted(e));
  }
}

TEST(GameGenTest, ParticipationThinsTheGame) {
  util::Rng rng(14);
  GameConfig full;
  GameConfig half;
  half.participation = 0.5;
  util::Rng rng2 = rng;
  const Topology topo = barabasi_albert(40, 2, rng);
  const core::Game g_full = random_game(40, topo, full, rng);
  const core::Game g_half = random_game(40, topo, half, rng2);
  EXPECT_LT(g_half.num_edges(), g_full.num_edges());
}

TEST(GameGenTest, DeterministicGivenSeed) {
  GameConfig config;
  util::Rng a(77), b(77);
  const core::Game ga = random_ba_game(25, 2, config, a);
  const core::Game gb = random_ba_game(25, 2, config, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (core::EdgeId e = 0; e < ga.num_edges(); ++e) {
    EXPECT_EQ(ga.edge(e).from, gb.edge(e).from);
    EXPECT_EQ(ga.edge(e).capacity, gb.edge(e).capacity);
    EXPECT_DOUBLE_EQ(ga.edge(e).head_valuation, gb.edge(e).head_valuation);
  }
}

}  // namespace
}  // namespace musketeer::gen
