#include "gen/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace musketeer::gen {
namespace {

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  util::Rng rng(20);
  ZipfSampler sampler(10, 0.0);
  std::map<flow::NodeId, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[sampler.sample(rng)];
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count / 20000.0, 0.1, 0.02) << "node " << node;
  }
}

TEST(ZipfSamplerTest, SkewedWhenExponentPositive) {
  util::Rng rng(21);
  ZipfSampler sampler(100, 1.2);
  int rank0 = 0, total = 20000;
  for (int i = 0; i < total; ++i) rank0 += (sampler.sample(rng) == 0);
  // Rank 0 should dwarf the uniform share of 1%.
  EXPECT_GT(rank0, total / 20);
}

TEST(WorkloadTest, PaymentsRespectConfig) {
  util::Rng rng(22);
  WorkloadConfig config;
  config.amount_min = 2;
  config.amount_max = 40;
  const auto payments = generate_payments(30, 500, config, rng);
  ASSERT_EQ(payments.size(), 500u);
  for (const Payment& p : payments) {
    EXPECT_NE(p.sender, p.receiver);
    EXPECT_GE(p.sender, 0);
    EXPECT_LT(p.sender, 30);
    EXPECT_GE(p.amount, 2);
    EXPECT_LE(p.amount, 40);
  }
}

TEST(WorkloadTest, LogUniformAmountsCoverTheRange) {
  util::Rng rng(23);
  WorkloadConfig config;
  config.amount_min = 1;
  config.amount_max = 1000;
  const auto payments = generate_payments(10, 2000, config, rng);
  int small = 0, large = 0;
  for (const Payment& p : payments) {
    small += (p.amount <= 10);
    large += (p.amount >= 100);
  }
  EXPECT_GT(small, 200);  // log-uniform: both decades well represented
  EXPECT_GT(large, 200);
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  WorkloadConfig config;
  util::Rng a(9), b(9);
  const auto pa = generate_payments(20, 50, config, a);
  const auto pb = generate_payments(20, 50, config, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].sender, pb[i].sender);
    EXPECT_EQ(pa[i].amount, pb[i].amount);
  }
}

}  // namespace
}  // namespace musketeer::gen
