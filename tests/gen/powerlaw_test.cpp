#include <gtest/gtest.h>

#include <algorithm>

#include "gen/topology.hpp"

namespace musketeer::gen {
namespace {

std::vector<int> degrees(NodeId n, const Topology& channels) {
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  for (const auto& [a, b] : channels) {
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  return deg;
}

TEST(PowerlawTest, ProducesValidTopology) {
  util::Rng rng(70);
  const Topology t = powerlaw_configuration(200, 2.2, 1, 40, rng);
  EXPECT_GT(t.size(), 80u);
  for (const auto& [a, b] : t) {
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);  // deduped & ordered
    EXPECT_LT(b, 200);
  }
  // No duplicate channels.
  Topology sorted = t;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PowerlawTest, HeavyTailWithBoundedMaximum) {
  util::Rng rng(71);
  const Topology t = powerlaw_configuration(400, 2.1, 1, 50, rng);
  const auto deg = degrees(400, t);
  const int max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_LE(max_deg, 50);
  EXPECT_GT(max_deg, 10);  // hubs exist
  // Median degree stays near the minimum (power law mass at the bottom).
  std::vector<int> sorted = deg;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LE(sorted[200], 3);
}

TEST(PowerlawTest, SteeperExponentFlattensTheTail) {
  util::Rng rng_a(72), rng_b(72);
  const auto deg_flat =
      degrees(400, powerlaw_configuration(400, 2.0, 1, 60, rng_a));
  const auto deg_steep =
      degrees(400, powerlaw_configuration(400, 3.5, 1, 60, rng_b));
  const int max_flat = *std::max_element(deg_flat.begin(), deg_flat.end());
  const int max_steep =
      *std::max_element(deg_steep.begin(), deg_steep.end());
  EXPECT_GT(max_flat, max_steep);
}

TEST(PowerlawTest, DeterministicGivenSeed) {
  util::Rng a(73), b(73);
  EXPECT_EQ(powerlaw_configuration(100, 2.3, 1, 20, a),
            powerlaw_configuration(100, 2.3, 1, 20, b));
}

TEST(PowerlawTest, MinDegreeTwoAvoidsLeafFloods) {
  util::Rng rng(74);
  const Topology t = powerlaw_configuration(150, 2.5, 2, 30, rng);
  const auto deg = degrees(150, t);
  int isolated = 0;
  for (int d : deg) isolated += (d == 0);
  // Stub matching drops collisions so a few nodes may lose edges, but
  // the vast majority keep at least one.
  EXPECT_LT(isolated, 10);
}

}  // namespace
}  // namespace musketeer::gen
