#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"

namespace musketeer::sim {
namespace {

SimulationConfig recovery_config() {
  SimulationConfig config;
  config.num_nodes = 40;
  config.balance_min = 30;
  config.balance_max = 90;
  config.initial_skew = 0.4;
  config.skew_fraction = 0.5;
  config.payments_per_epoch = 150;
  config.policy.depleted_threshold = 0.25;
  config.policy.seller_floor_share = 0.35;
  config.seed = 9;
  return config;
}

TEST(RecoveryTest, SkewedNetworkStartsDepleted) {
  const SimulationConfig config = recovery_config();
  const RecoveryResult none = run_recovery(config, nullptr);
  EXPECT_GT(none.depleted_before, 0.1);
  EXPECT_EQ(none.depleted_after, none.depleted_before);
  EXPECT_EQ(none.rebalanced_volume, 0);
}

TEST(RecoveryTest, MechanismReducesDepletion) {
  const SimulationConfig config = recovery_config();
  const auto m3 = make_strategy(Strategy::kM3DoubleAuction);
  const RecoveryResult result = run_recovery(config, m3.get());
  EXPECT_LT(result.depleted_after, result.depleted_before);
  EXPECT_GT(result.rebalanced_volume, 0);
}

TEST(RecoveryTest, DeterministicAndComparableAcrossStrategies) {
  const SimulationConfig config = recovery_config();
  const RecoveryResult a = run_recovery(config, nullptr);
  const RecoveryResult b = run_recovery(config, nullptr);
  EXPECT_EQ(a.success_rate, b.success_rate);
  // Depletion metrics are measured on the same seeded network for every
  // strategy, so "before" is strategy-independent.
  const auto m3 = make_strategy(Strategy::kM3DoubleAuction);
  const RecoveryResult c = run_recovery(config, m3.get());
  EXPECT_EQ(a.depleted_before, c.depleted_before);
}

TEST(RecoveryTest, InitialSkewShapesBalances) {
  SimulationConfig config = recovery_config();
  config.initial_skew = 0.4;
  config.skew_fraction = 1.0;
  util::Rng rng(3);
  const pcn::Network net = build_network(config, rng);
  for (pcn::ChannelId c = 0; c < net.num_channels(); ++c) {
    const double share = net.channel(c).balance_share(net.channel(c).a);
    EXPECT_TRUE(std::abs(share - 0.1) < 0.02 || std::abs(share - 0.9) < 0.02)
        << "share " << share;
  }
}

TEST(RecoveryTest, SkewFractionZeroMeansBalanced) {
  SimulationConfig config = recovery_config();
  config.initial_skew = 0.4;
  config.skew_fraction = 0.0;
  util::Rng rng(3);
  const pcn::Network net = build_network(config, rng);
  for (pcn::ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_NEAR(net.channel(c).balance_share(net.channel(c).a), 0.5, 0.02);
  }
}

TEST(RecoveryTest, NoLocksSurviveRecovery) {
  // The §2.2 pre-lock lifecycle must fully unwind.
  const SimulationConfig config = recovery_config();
  const auto m4 = make_strategy(Strategy::kM4Delayed);
  util::Rng rng(config.seed);
  pcn::Network net = build_network(config, rng);
  pcn::ExtractedGame extracted = pcn::extract_and_lock(net, config.policy);
  const core::Outcome outcome = m4->run_truthful(extracted.game);
  pcn::apply_outcome(net, extracted, outcome);
  for (pcn::ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(net.channel(c).locked_a, 0);
    EXPECT_EQ(net.channel(c).locked_b, 0);
  }
}

}  // namespace
}  // namespace musketeer::sim
