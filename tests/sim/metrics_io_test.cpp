// Machine-readable metrics dumps: shape, determinism, file round-trip.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "sim/engine.hpp"
#include "sim/metrics_io.hpp"

namespace musketeer::sim {
namespace {

SimulationResult small_run(std::uint64_t seed) {
  SimulationConfig config;
  config.num_nodes = 24;
  config.epochs = 4;
  config.payments_per_epoch = 30;
  config.seed = seed;
  core::M3DoubleAuction mechanism;
  return run_simulation(config, &mechanism);
}

TEST(MetricsIo, CsvShape) {
  const SimulationResult result = small_run(5);
  std::ostringstream out;
  write_metrics_csv(result, out);
  const std::string csv = out.str();

  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("epoch,", 0), 0u) << header;
  EXPECT_NE(header.find(",gini_imbalance,"), std::string::npos) << header;
  const std::size_t columns =
      static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')) +
      1;
  int rows = 0;
  for (std::string line; std::getline(lines, line);) {
    ++rows;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','),
              static_cast<std::ptrdiff_t>(columns - 1))
        << line;
  }
  EXPECT_EQ(rows, static_cast<int>(result.epochs.size()));
}

TEST(MetricsIo, JsonShape) {
  const SimulationResult result = small_run(5);
  std::ostringstream out;
  write_metrics_json(result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"epochs\""), std::string::npos);
  EXPECT_NE(json.find("\"overall\""), std::string::npos);
  std::size_t epoch_objects = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"payments_attempted\"", pos)) != std::string::npos;
       ++pos) {
    ++epoch_objects;
  }
  EXPECT_EQ(epoch_objects, result.epochs.size());

  // Every epoch object carries the imbalance-concentration field, and
  // the simulated values are genuine Gini coefficients: in [0, 1].
  std::size_t gini_fields = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"gini_imbalance\": ", pos)) != std::string::npos;
       ++pos) {
    ++gini_fields;
    const double v = std::stod(json.substr(pos + 18));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_EQ(gini_fields, result.epochs.size());
}

TEST(MetricsIo, IdenticalRunsProduceIdenticalDumps) {
  const SimulationResult a = small_run(9);
  const SimulationResult b = small_run(9);
  std::ostringstream csv_a, csv_b, json_a, json_b;
  write_metrics_csv(a, csv_a);
  write_metrics_csv(b, csv_b);
  write_metrics_json(a, json_a);
  write_metrics_json(b, json_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());

  const SimulationResult c = small_run(10);
  std::ostringstream csv_c;
  write_metrics_csv(c, csv_c);
  EXPECT_NE(csv_a.str(), csv_c.str()) << "different seeds, same dump";
}

TEST(MetricsIo, SaveSelectsFormatByExtension) {
  const SimulationResult result = small_run(3);
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/metrics.json";
  const std::string csv_path = dir + "/metrics.csv";
  save_metrics(result, json_path);
  save_metrics(result, csv_path);

  const auto slurp = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string content;
    char buffer[4096];
    std::size_t n;
    while (f && (n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
      content.append(buffer, n);
    }
    if (f) std::fclose(f);
    return content;
  };
  EXPECT_EQ(slurp(json_path).rfind("{", 0), 0u);
  EXPECT_EQ(slurp(csv_path).rfind("epoch,", 0), 0u);

  EXPECT_THROW(save_metrics(result, dir + "/no/such/dir/metrics.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace musketeer::sim
