#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/strategies.hpp"

namespace musketeer::sim {
namespace {

SimulationConfig small_config() {
  SimulationConfig config;
  config.num_nodes = 30;
  config.epochs = 4;
  config.payments_per_epoch = 60;
  config.seed = 7;
  return config;
}

TEST(EngineTest, BuildNetworkShape) {
  const SimulationConfig config = small_config();
  util::Rng rng(config.seed);
  const pcn::Network net = build_network(config, rng);
  EXPECT_EQ(net.num_nodes(), 30);
  EXPECT_GT(net.num_channels(), 0);
  for (pcn::ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_GE(net.channel(c).capacity(), 2 * config.balance_min);
    EXPECT_LE(net.channel(c).capacity(), 2 * config.balance_max);
  }
}

TEST(EngineTest, RunsAllEpochsAndCountsPayments) {
  const SimulationConfig config = small_config();
  const SimulationResult result = run_simulation(config, nullptr);
  ASSERT_EQ(result.epochs.size(), 4u);
  for (const EpochMetrics& m : result.epochs) {
    EXPECT_EQ(m.payments_attempted, 60);
    EXPECT_LE(m.payments_succeeded, m.payments_attempted);
    EXPECT_EQ(m.rebalance_cycles, 0);  // nullptr mechanism
  }
}

TEST(EngineTest, DeterministicForFixedSeed) {
  const SimulationConfig config = small_config();
  const SimulationResult a = run_simulation(config, nullptr);
  const SimulationResult b = run_simulation(config, nullptr);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].payments_succeeded, b.epochs[i].payments_succeeded);
    EXPECT_EQ(a.epochs[i].volume_succeeded, b.epochs[i].volume_succeeded);
  }
}

TEST(EngineTest, SamePaymentStreamAcrossMechanisms) {
  // Epoch 0 runs before any rebalancing, so its metrics must be identical
  // for every mechanism under the same seed.
  const SimulationConfig config = small_config();
  const auto m3 = make_strategy(Strategy::kM3DoubleAuction);
  const SimulationResult none = run_simulation(config, nullptr);
  const SimulationResult with_m3 = run_simulation(config, m3.get());
  EXPECT_EQ(none.epochs[0].payments_succeeded,
            with_m3.epochs[0].payments_succeeded);
}

TEST(EngineTest, RebalancingActuallyHappens) {
  SimulationConfig config = small_config();
  config.epochs = 6;
  const auto m3 = make_strategy(Strategy::kM3DoubleAuction);
  const SimulationResult result = run_simulation(config, m3.get());
  EXPECT_GT(result.total_rebalanced_volume(), 0);
}

TEST(EngineTest, RebalanceEveryRespected) {
  SimulationConfig config = small_config();
  config.epochs = 4;
  config.rebalance_every = 2;
  const auto m3 = make_strategy(Strategy::kM3DoubleAuction);
  const SimulationResult result = run_simulation(config, m3.get());
  EXPECT_EQ(result.epochs[0].rebalance_cycles, 0);
  EXPECT_EQ(result.epochs[2].rebalance_cycles, 0);
}

TEST(EngineTest, RebalancingImprovesThroughputOverNone) {
  SimulationConfig config;
  config.num_nodes = 40;
  config.epochs = 8;
  config.payments_per_epoch = 150;
  config.seed = 11;
  const auto m3 = make_strategy(Strategy::kM3DoubleAuction);
  const SimulationResult none = run_simulation(config, nullptr);
  const SimulationResult with_m3 = run_simulation(config, m3.get());
  EXPECT_GE(with_m3.overall_success_rate(),
            none.overall_success_rate() - 0.02)
      << "rebalancing should not hurt throughput";
  EXPECT_GT(with_m3.total_volume_succeeded(),
            none.total_volume_succeeded() * 95 / 100);
}

TEST(EngineTest, MppImprovesLargePaymentSuccess) {
  SimulationConfig config = small_config();
  config.workload.amount_min = 40;   // large relative to balances
  config.workload.amount_max = 120;
  config.balance_min = 40;
  config.balance_max = 80;
  config.payments_per_epoch = 120;
  const SimulationResult single = run_simulation(config, nullptr);
  config.max_payment_parts = 4;
  const SimulationResult mpp = run_simulation(config, nullptr);
  EXPECT_GT(mpp.overall_success_rate(), single.overall_success_rate());
}

TEST(EngineTest, MppChurnAndRebalancingComposeSafely) {
  // All the moving parts at once: multi-part payments over a flaky
  // network with per-epoch rebalancing — must run to completion with
  // coherent accounting and no leaked locks.
  SimulationConfig config = small_config();
  config.epochs = 5;
  config.payments_per_epoch = 80;
  config.max_payment_parts = 3;
  config.channel_downtime = 0.15;
  const auto m4 = make_strategy(Strategy::kM4Delayed);
  const SimulationResult result = run_simulation(config, m4.get());
  ASSERT_EQ(result.epochs.size(), 5u);
  for (const EpochMetrics& m : result.epochs) {
    EXPECT_EQ(m.payments_attempted, 80);
    EXPECT_LE(m.payments_succeeded, m.payments_attempted);
    EXPECT_GE(m.routing_fees, 0.0);
  }
  // Same-seed determinism with every feature enabled.
  const SimulationResult again = run_simulation(config, m4.get());
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    EXPECT_EQ(result.epochs[e].payments_succeeded,
              again.epochs[e].payments_succeeded);
    EXPECT_EQ(result.epochs[e].rebalanced_volume,
              again.epochs[e].rebalanced_volume);
  }
}

TEST(StrategiesTest, FactoryProducesEveryStrategy) {
  for (Strategy s : all_strategies()) {
    const auto mechanism = make_strategy(s);
    if (s == Strategy::kNone) {
      EXPECT_EQ(mechanism, nullptr);
    } else {
      ASSERT_NE(mechanism, nullptr) << strategy_name(s);
      EXPECT_FALSE(std::string(mechanism->name()).empty());
    }
    EXPECT_FALSE(strategy_name(s).empty());
  }
}

}  // namespace
}  // namespace musketeer::sim
