// Fixture: src/svc/snapshot.cpp owns the checked tmp-write/fsync/
// rename/dir-fsync publication protocol — raw rename/unlink here must
// stay silent (the real file checks every return code).
void snapshot_publish(const char* tmp, const char* dest) {
  if (::rename(tmp, dest) != 0) {
    ::unlink(tmp);
  }
}
