// Fixture: src/svc/executor.cpp is the one path exempt from raw-thread —
// the real executor queries std::thread::hardware_concurrency() and owns
// the worker pool.
int executor_exempt() {
  return static_cast<int>(std::thread::hardware_concurrency());
}
