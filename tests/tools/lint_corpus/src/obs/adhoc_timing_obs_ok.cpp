// Fixture: src/obs is the sanctioned home of the raw clock — the rule's
// path predicate must keep it silent here.
void adhoc_timing_obs_ok() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}
