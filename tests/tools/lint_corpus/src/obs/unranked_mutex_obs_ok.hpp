// Fixture: src/obs may hold plain std::mutex leaf locks (histogram
// shard lists, trace rings) — they are taken during thread-local
// teardown, after the rank auditor's own thread_local state may already
// be gone, so the unranked-mutex rule exempts the directory.
#pragma once

struct ObsShardList {
  std::mutex shards_mutex;
};
