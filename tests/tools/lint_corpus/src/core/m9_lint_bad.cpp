// Fixture: a mechanism constructing its own Graph bypasses the
// SolveContext workspace reuse (graph-in-mechanism).
void m9_lint_bad() {
  flow::Graph g(4);
  g.add_edge(0, 1, 10);
}
