// Fixture: mechanisms bind the context-owned graph by reference.
void m9_lint_ok(core::Game& game) {
  flow::Graph& g = game.bound_graph();
  g.reset_flows();
}
