// Fixture: the sanctioned shape — a solver loop that observes time only
// by polling its CancelToken at iteration boundaries. Naming the token
// type or the macro never trips solver-timing.
void solver_timing_ok(musketeer::util::CancelToken* cancel, int iters) {
  for (int i = 0; i < iters; ++i) {
    MUSK_CANCEL_POINT(cancel);
  }
}
