// Fixture: a solver that owns its own timeout. Every line here is a way
// a solver can bypass the cancellation contract — naming a clock,
// reading one (directly or through the Clock alias dodge), arming a
// Deadline itself, or polling expiry by hand mid-iteration. Also fires
// adhoc-timing on the alias read: the rules overlap on purpose.
void solver_timing_bad() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto budget = musketeer::util::Deadline::after(
      std::chrono::milliseconds(50));
  while (!budget.expired()) {
    if (Clock::now() - start > std::chrono::milliseconds(50)) break;
  }
}
