// Fixture: mirrors the one sanctioned adhoc-timing exemption. This path
// (src/util/deadline.hpp) is the designated home for cancellation-
// deadline clock reads, so the alias read below must stay silent here —
// and nowhere else.
#pragma once

namespace musketeer::util {

class DeadlineFixture {
 public:
  using Clock = std::chrono::steady_clock;

  bool expired() const { return armed_ && Clock::now() >= at_; }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
};

}  // namespace musketeer::util
