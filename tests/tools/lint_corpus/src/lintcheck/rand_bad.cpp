// Fixture: libc rand() is unseedable per-experiment and not reproducible.
int rand_bad() {
  srand(42);
  return rand();
}
