// Fixture: cleanup-and-rethrow is the sanctioned catch (...) shape.
void bare_catch_ok(void (*risky)(), void (*cleanup)()) {
  try {
    risky();
  } catch (...) {
    cleanup();
    throw;
  }
}
