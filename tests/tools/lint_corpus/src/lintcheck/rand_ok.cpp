// Fixture: util::Rng carries an explicit seed.
int rand_ok() {
  musketeer::util::Rng rng(42);
  return static_cast<int>(rng.next_u64());
}
