// Fixture: a catch-everything handler that swallows hides injected
// faults.
void bare_catch_bad(void (*risky)()) {
  try {
    risky();
  } catch (...) {
  }
}
