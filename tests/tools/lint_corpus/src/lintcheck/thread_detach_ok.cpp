// Fixture: jthread joins on destruction; keep the handle.
void thread_detach_ok() {
  std::jthread t([](const std::stop_token&) {});
}
