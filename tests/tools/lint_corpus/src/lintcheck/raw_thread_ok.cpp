// Fixture: the sanctioned spellings — a joining std::jthread for one-off
// helpers, and std::this_thread (which the rule's exact-token regex does
// not match).
void raw_thread_ok() {
  std::jthread worker([](const std::stop_token&) {});
  const auto id = std::this_thread::get_id();
  (void)id;
}
