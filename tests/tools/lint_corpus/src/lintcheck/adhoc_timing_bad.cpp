// Fixture: raw clock reads scattered through product code bypass the
// observability layer (no span, no histogram, no trace).
void adhoc_timing_bad() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::high_resolution_clock::now();
  const auto wall = std::chrono::system_clock::now();
  (void)t0;
  (void)t1;
  (void)wall;
}
