// Fixture: do the work in-process (qualified member spellings like
// subsystem.system_time() are also fine and must not match).
int system_call_ok(const Clock& subsystem) {
  return subsystem.system_time();
}
