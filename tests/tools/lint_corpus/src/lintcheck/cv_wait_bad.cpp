// Fixture: a deadline-free wait blocks shutdown forever if the notify
// is lost.
void cv_wait_bad(std::condition_variable& cv,  // musk-lint: allow(unranked-mutex)
                 std::unique_lock<std::mutex>& lock,  // musk-lint: allow(unranked-mutex)
                 bool& done) {
  cv.wait(lock, [&] { return done; });
}
