// Fixture: raw standard-library synchronisation in the service tree is
// invisible to the lock-rank auditor and to clang's capability analysis.
#pragma once

class UnrankedMutexBad {
 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int value_ = 0;
};
