// Fixture: bounded condition-variable wait re-checks its predicate, so
// a stop request interrupts it.
void naked_sleep_ok(musketeer::util::OrderedCondVar& cv,
                    musketeer::util::OrderedUniqueLock& lock, bool& done) {
  cv.wait_for(lock, std::chrono::milliseconds(50), [&] { return done; });
}
