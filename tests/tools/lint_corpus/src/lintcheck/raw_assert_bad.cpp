// Fixture: raw C assert must be flagged (vanishes under NDEBUG).
void raw_assert_bad(int x) {
  assert(x > 0);
}
