// Fixture: the sanctioned spelling — a ranked OrderedMutex with its
// guarded state annotated, and an OrderedCondVar for waits.
#pragma once

class UnrankedMutexOk {
 private:
  musketeer::util::OrderedMutex mu_{musketeer::util::LockRank::kReports,
                                    "fixture"};
  int value_ MUSK_GUARDED_BY(mu_) = 0;
  musketeer::util::OrderedCondVar cv_;
};
