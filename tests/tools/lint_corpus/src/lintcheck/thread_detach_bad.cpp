// Fixture: a detached thread races destructors and cannot be joined at
// shutdown.
void thread_detach_bad() {
  std::thread t([] {});  // musk-lint: allow(raw-thread)
  t.detach();
}
