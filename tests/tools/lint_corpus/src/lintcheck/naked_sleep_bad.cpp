// Fixture: a sleeping thread ignores stop requests.
void naked_sleep_bad() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}
