// Fixture: every member in the mutex's run is annotated (including one
// spanning two lines) or exempt (condvar, atomic, jthread); state the
// mutex does not guard sits after the blank line that ends the run.
#pragma once

class UnguardedMemberOk {
 private:
  musketeer::util::OrderedMutex mutex_{musketeer::util::LockRank::kReports,
                                       "fixture"};
  int counter_ MUSK_GUARDED_BY(mutex_) = 0;
  std::vector<int> pending_
      MUSK_GUARDED_BY(mutex_);
  musketeer::util::OrderedCondVar cv_;
  std::atomic<bool> stop_{false};
  std::jthread worker_;

  int scratch_ = 0;
};
