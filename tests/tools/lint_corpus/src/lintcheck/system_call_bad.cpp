// Fixture: system() blocks, inherits fds into a shell, and ignores stop
// tokens.
int system_call_bad() {
  return std::system("true");
}
