// Fixture: exact comparison against a floating-point literal hides
// rounding bugs.
bool float_eq_bad(double x) {
  return x == 0.0;
}
