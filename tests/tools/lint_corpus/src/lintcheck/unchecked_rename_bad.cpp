// Fixture: raw rename/unlink outside src/svc/{journal,snapshot} — the
// caller is either skipping the durable-publication protocol or
// ignoring the return code.
void unchecked_rename_bad(const char* from, const char* to) {
  ::rename(from, to);
  ::unlink(from);
  std::rename(from, to);
  unlink(to);
}
