// Fixture: the allowed spellings — scratch-file cleanup via
// std::remove / std::filesystem::remove, member calls, foreign
// qualifiers, and an explicitly justified opt-out.
void unchecked_rename_ok(const char* path) {
  std::remove(path);
  std::filesystem::remove(path);
  fs::rename(path, path);
  store.rename(path);
  ::unlink(path);  // musk-lint: allow(unchecked-rename)
}
