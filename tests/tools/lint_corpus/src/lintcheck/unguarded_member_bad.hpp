// Fixture: a member declared in an OrderedMutex's contiguous run with no
// MUSK_GUARDED_BY annotation — either it is guarded (annotate it) or it
// is not (move it out of the run, past a blank line).
#pragma once

class UnguardedMemberBad {
 private:
  musketeer::util::OrderedMutex mutex_{musketeer::util::LockRank::kReports,
                                       "fixture"};
  int counter_ = 0;
};
