// Fixture: a raw std::thread neither joins on scope exit nor carries a
// stop_token; fan-out belongs behind svc::ParallelExecutor.
void raw_thread_bad() {
  std::thread worker([] {});
  worker.join();
}
