// Fixture: compare against a tolerance instead.
bool float_eq_ok(double x) {
  const double tol = 1e-9;
  return x < tol && x > -tol;
}
