// Fixture: sanctioned timing. Durations come from obs::Timer, spans
// from MUSK_OBS_SPAN, raw time_points from obs::Timer::clock(); naming
// a clock type (deadline parameters) reads nothing and is fine, and a
// justified raw read may opt out inline.
void adhoc_timing_ok(std::chrono::steady_clock::time_point deadline) {
  const musketeer::obs::Timer timer;
  const auto now = musketeer::obs::Timer::clock();
  const auto poll_deadline =
      std::chrono::steady_clock::now();  // musk-lint: allow(adhoc-timing)
  (void)deadline;
  (void)now;
  (void)poll_deadline;
  (void)timer;
}
