// Fixture: wait_for in a predicate loop re-checks the exit condition on
// a bounded cadence.
void cv_wait_ok(musketeer::util::OrderedCondVar& cv,
                musketeer::util::OrderedUniqueLock& lock, bool& done) {
  while (!done) {
    cv.wait_for(lock, std::chrono::milliseconds(100), [&] { return done; });
  }
}
