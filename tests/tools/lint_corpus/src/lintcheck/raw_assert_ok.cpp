// Fixture: the sanctioned spellings — MUSK_ASSERT survives NDEBUG,
// static_assert and gtest ASSERT_* are compile-time / test-framework.
void raw_assert_ok(int x) {
  MUSK_ASSERT(x > 0);
  MUSK_ASSERT_MSG(x > 0, "x must be positive");
  static_assert(sizeof(int) >= 4);
}
