// Fixture: the rule also covers tools/ — CLI utilities time through
// obs::Timer like everything else.
int main() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return 0;
}
