// The observability gate: instrumentation must never change what the
// system computes. Two angles, both valid in either build flavor:
//
//   * Macro gating — under -DMUSKETEER_OBS=OFF the MUSK_OBS_* macros
//     expand to nothing and their arguments are never evaluated; under
//     ON they hit the global registry. (The residual runtime cost of
//     the OFF expansion is gated at 1.05x in bench/svc_throughput.)
//   * Outcome invariance — a deterministic service run settles to the
//     same network digest with tracing enabled as with it disabled.
//     Combined with the digest-equality tests in tests/svc running in
//     an OBS=OFF build, this pins the acceptance claim that the switch
//     is bit-identical on outcomes.
#include <string>

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "svc_test_util.hpp"

namespace musketeer::obs {
namespace {

TEST(ObsGate, MacrosAreCompiledOutWhenDisabled) {
  bool evaluated = false;
  const auto touch = [&evaluated] {
    evaluated = true;
    return 1.0;
  };
  MUSK_OBS_COUNT("test.gate.touch_total", static_cast<std::uint64_t>(touch()));
  MUSK_OBS_GAUGE("test.gate.level", touch());
  MUSK_OBS_HISTOGRAM("test.gate.wait_seconds", touch());
  MUSK_OBS_SPAN(span, "test.gate.span");
  span.set_epoch(1);
  span.set_detail("gate");
  const double secs = span.end();

  const std::string json = registry().to_json();
#ifdef MUSKETEER_OBS
  EXPECT_TRUE(evaluated);
  EXPECT_GE(secs, 0.0);
  EXPECT_NE(json.find("test.gate.touch_total"), std::string::npos);
  EXPECT_NE(json.find("test.gate.level"), std::string::npos);
  EXPECT_NE(json.find("test.gate.wait_seconds"), std::string::npos);
#else
  // Arguments unevaluated, registry untouched, span inert.
  EXPECT_FALSE(evaluated);
  EXPECT_EQ(secs, 0.0);
  EXPECT_EQ(json.find("test.gate."), std::string::npos);
#endif
}

TEST(ObsGate, TracingDoesNotPerturbSettlement) {
  const sim::SimulationConfig config = svc::testutil::small_config(23);

  const auto run = [&config] {
    pcn::Network net = svc::testutil::make_network(config);
    core::M3DoubleAuction mechanism;
    svc::ServiceConfig service_config;
    service_config.policy = config.policy;
    svc::RebalanceService service(net, mechanism, service_config);
    std::uint64_t digest = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
      digest = service.run_epoch().network_digest;
    }
    return digest;
  };

  trace::stop();
  trace::clear();
  const std::uint64_t quiet = run();

  trace::start();
  const std::uint64_t traced = run();
  trace::stop();

#ifdef MUSKETEER_OBS
  // The traced run actually recorded the epoch spans it claims to.
  EXPECT_FALSE(trace::drain().empty());
#endif
  trace::clear();

  EXPECT_EQ(quiet, traced);
}

}  // namespace
}  // namespace musketeer::obs
