// Tracer semantics: spans measure even when disabled, enabled spans
// drain sorted with their epoch/detail tags, the Chrome trace_event
// JSON is structurally sound, and full rings overwrite the oldest
// events while counting drops.
#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace musketeer::obs {
namespace {

/// Each test owns the global tracer state; reset around it.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::stop();
    trace::clear();
  }
  void TearDown() override {
    trace::stop();
    trace::clear();
  }
};

TEST_F(TraceTest, DisabledSpanMeasuresButEmitsNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    Span span("test.disabled");
    span.set_epoch(3);
    EXPECT_GE(span.end(), 0.0);
  }
  EXPECT_TRUE(trace::drain().empty());
  EXPECT_EQ(trace::dropped(), 0u);
}

TEST_F(TraceTest, EnabledSpansDrainSortedWithTags) {
  trace::start();
  {
    Span outer("test.outer");
    outer.set_epoch(7);
    outer.set_detail("network_simplex");
    {
      Span inner("test.inner");
      inner.set_epoch(7);
    }
  }
  {
    Span later("test.later");
    (void)later;
  }
  trace::stop();

  const std::vector<trace::Event> events = trace::drain();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer started before inner, inner before later.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_STREQ(events[2].name, "test.later");
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.start_ns < b.start_ns; }));
  EXPECT_EQ(events[0].epoch, 7u);
  EXPECT_STREQ(events[0].detail, "network_simplex");
  EXPECT_EQ(events[2].epoch, 0u);
  EXPECT_STREQ(events[2].detail, "");
  // The outer span contains the inner one.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].duration_ns,
            events[1].start_ns + events[1].duration_ns);
}

TEST_F(TraceTest, SpanEndIsIdempotent) {
  trace::start();
  Span span("test.idempotent");
  const double first = span.end();
  const double second = span.end();
  EXPECT_EQ(first, second);
  trace::stop();
  EXPECT_EQ(trace::drain().size(), 1u);  // one event, not two
}

TEST_F(TraceTest, EnablementIsLatchedAtConstruction) {
  ASSERT_FALSE(trace::enabled());
  Span span("test.latched");
  trace::start();
  span.end();  // constructed while disabled: must not emit
  trace::stop();
  EXPECT_TRUE(trace::drain().empty());
}

TEST_F(TraceTest, ChromeJsonSchema) {
  trace::start();
  for (int i = 0; i < 5; ++i) {
    Span span("test.json \"quoted\\name\"");
    span.set_epoch(static_cast<std::uint64_t>(i));
    span.set_detail("d");
  }
  trace::stop();

  std::ostringstream out;
  const std::size_t written = trace::write_chrome_json(out);
  EXPECT_EQ(written, 5u);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Five complete ("X") events, each with the required keys.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 5u);
  for (const char* key : {"\"name\"", "\"ts\"", "\"dur\"", "\"pid\"",
                          "\"tid\"", "\"args\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Span names with quotes/backslashes must arrive escaped: the raw
  // characters never appear unescaped inside the emitted JSON strings.
  EXPECT_NE(json.find("\\\"quoted\\\\name\\\""), std::string::npos);
  // Balanced braces and brackets.
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string) {
      if (c == '{') ++braces;
      if (c == '}') --braces;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
      ASSERT_GE(braces, 0);
      ASSERT_GE(brackets, 0);
    }
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, EventsFromExitedThreadsSurvive) {
  trace::start();
  {
    std::jthread worker([] {
      Span span("test.worker");
      span.set_epoch(11);
    });
  }
  trace::stop();
  const std::vector<trace::Event> events = trace::drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.worker");
  EXPECT_EQ(events[0].epoch, 11u);
}

TEST_F(TraceTest, FullRingOverwritesOldestAndCountsDrops) {
  trace::start();
  // The per-thread ring holds 1<<16 events; write past capacity.
  constexpr std::size_t kCapacity = std::size_t{1} << 16;
  constexpr std::size_t kExtra = 1000;
  for (std::size_t i = 0; i < kCapacity + kExtra; ++i) {
    Span span(i < kExtra ? "test.oldest" : "test.newest");
    (void)span;
  }
  trace::stop();
  EXPECT_EQ(trace::dropped(), kExtra);
  const std::vector<trace::Event> events = trace::drain();
  EXPECT_EQ(events.size(), kCapacity);
  // The survivors are the newest events: every "test.oldest" was
  // overwritten.
  for (const auto& e : events) EXPECT_STREQ(e.name, "test.newest");
}

TEST_F(TraceTest, ClearResetsEventsAndDrops) {
  trace::start();
  {
    Span span("test.cleared");
    (void)span;
  }
  trace::stop();
  trace::clear();
  EXPECT_TRUE(trace::drain().empty());
  EXPECT_EQ(trace::dropped(), 0u);
}

}  // namespace
}  // namespace musketeer::obs
