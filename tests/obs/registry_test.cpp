// Registry semantics: stable references, exact concurrent counting,
// registration races under tsan, and export formats (JSON round-trip
// structure, Prometheus text exposition conventions).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace musketeer::obs {
namespace {

TEST(Registry, RepeatLookupReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("test.lookup.hits_total");
  Counter& b = reg.counter("test.lookup.hits_total");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("test.lookup.level");
  Gauge& g2 = reg.gauge("test.lookup.level");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("test.lookup.latency_seconds");
  Histogram& h2 = reg.histogram("test.lookup.latency_seconds");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, HelpStringsAreSticky) {
  Registry reg;
  reg.counter("test.help.ops_total", "number of ops");
  reg.counter("test.help.ops_total", "a different string, ignored");
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# HELP test_help_ops_total number of ops"),
            std::string::npos);
  EXPECT_EQ(prom.find("a different string"), std::string::npos);
}

// Hammer one counter from many threads; the total must be exact, not a
// sampled approximation. Run under tsan this also proves the relaxed
// atomics are race-free.
TEST(Registry, ConcurrentCounterAddsAreExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&reg] {
        Counter& c = reg.counter("test.concurrent.adds_total");
        for (int i = 0; i < kAddsPerThread; ++i) c.add();
      });
    }
  }
  EXPECT_EQ(reg.counter("test.concurrent.adds_total").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

// Concurrent registration of distinct names while another thread
// repeatedly exports — exercises the registry mutex under tsan.
TEST(Registry, ConcurrentRegistrationAndExport) {
  Registry reg;
  std::atomic<bool> stop{false};
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&reg, t] {
        for (int i = 0; i < 200; ++i) {
          reg.counter("test.race.c" + std::to_string(t) + "." +
                      std::to_string(i))
              .add();
          reg.histogram("test.race.h" + std::to_string(t))
              .record(1e-3 * (i + 1));
        }
      });
    }
    workers.emplace_back([&reg, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string json = reg.to_json();
        EXPECT_FALSE(json.empty());
      }
    });
    for (int t = 0; t < 4; ++t) workers[static_cast<std::size_t>(t)].join();
    stop.store(true, std::memory_order_relaxed);
  }
  // All 4 x 200 counters plus 4 histograms ended up registered.
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(reg.counter("test.race.c" + std::to_string(t) + ".0").value(),
              1u);
    EXPECT_EQ(reg.histogram("test.race.h" + std::to_string(t))
                  .snapshot()
                  .count,
              200u);
  }
}

TEST(Registry, JsonSnapshotStructure) {
  Registry reg;
  reg.counter("test.json.ops_total").add(3);
  reg.gauge("test.json.level").set(0.25);
  Histogram& h = reg.histogram("test.json.latency_seconds");
  h.record(0.5);
  h.record(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.ops_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.level\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.latency_seconds\": {\"count\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Registry, PrometheusExposition) {
  Registry reg;
  reg.counter("test.prom.ops_total", "ops served").add(7);
  reg.gauge("test.prom.queue-depth").set(4);
  Histogram& h = reg.histogram("test.prom.wait_seconds");
  h.record(0.001);
  h.record(0.002);
  h.record(10.0);
  const std::string prom = reg.to_prometheus();
  // Dots and dashes mangle to underscores.
  EXPECT_NE(prom.find("# TYPE test_prom_ops_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("test_prom_ops_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_prom_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_prom_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("test_prom_wait_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("test_prom_wait_seconds_count 3"), std::string::npos);
  EXPECT_NE(prom.find("test_prom_wait_seconds_sum "), std::string::npos);
  // Cumulative le-buckets are non-decreasing.
  std::uint64_t last = 0;
  std::size_t pos = 0;
  while ((pos = prom.find("_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t close = prom.find("\"} ", pos);
    ASSERT_NE(close, std::string::npos);
    const std::uint64_t v = std::stoull(prom.substr(close + 3));
    EXPECT_GE(v, last);
    last = v;
    pos = close;
  }
}

TEST(Registry, GlobalRegistryIsAProcessSingleton) {
  Registry& a = registry();
  Registry& b = registry();
  EXPECT_EQ(&a, &b);
  Counter& c = registry().counter("test.global.touch_total");
  c.add();
  EXPECT_GE(c.value(), 1u);
}

}  // namespace
}  // namespace musketeer::obs
