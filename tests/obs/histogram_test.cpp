// Histogram bucket layout, quantile accuracy against a sorted
// reference, shard merging, and the determinism guarantee musk_loadgen
// leans on: the same multiset of samples reports bit-identical
// percentiles no matter how it was split across threads or instances.
#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace musketeer::obs {
namespace {

/// Fixed-seed latency-shaped samples spanning several octaves.
std::vector<double> sample_set(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // log-uniform over [1e-6, 1e1): microseconds to seconds.
    xs.push_back(std::pow(10.0, rng.uniform_real(-6.0, 1.0)));
  }
  return xs;
}

TEST(HistogramBuckets, LowerBoundRoundTrips) {
  for (int i = 1; i < Histogram::kTotalBuckets - 1; ++i) {
    const double lo = Histogram::bucket_lower_bound(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "bucket " << i;
    const double hi = Histogram::bucket_upper_bound(i);
    ASSERT_GT(hi, lo);
    // A value strictly inside the bucket maps back to it.
    const double mid = lo + (hi - lo) / 2.0;
    EXPECT_EQ(Histogram::bucket_index(mid), i) << "bucket " << i;
  }
}

TEST(HistogramBuckets, UnderflowAndOverflow) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kTotalBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            Histogram::kTotalBuckets - 1);
  // Tiny-but-positive lands in the underflow bucket too.
  EXPECT_EQ(Histogram::bucket_index(1e-12), 0);
}

TEST(HistogramQuantile, MatchesSortedReferenceWithinBucketError) {
  const std::vector<double> xs = sample_set(20000, 42);
  Histogram hist;
  for (const double x : xs) hist.record(x);
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, xs.size());

  // Relative quantile error is bounded by one sub-bucket: 1/kSubBuckets.
  const double tol = 1.0 / Histogram::kSubBuckets + 1e-9;
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double exact = util::quantile(xs, q);
    const double approx = snap.quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 2.0 * tol) << "q=" << q;
  }
  // p100 is exact; p0 is clamped to min from below and bounded above by
  // the upper edge of min's bucket.
  const double lo = *std::min_element(xs.begin(), xs.end());
  EXPECT_GE(snap.quantile(0.0), lo);
  EXPECT_LE(snap.quantile(0.0),
            Histogram::bucket_upper_bound(Histogram::bucket_index(lo)));
  EXPECT_EQ(snap.quantile(1.0), *std::max_element(xs.begin(), xs.end()));
}

TEST(HistogramQuantile, MeanSumMinMaxAreExact) {
  const std::vector<double> xs = sample_set(500, 7);
  Histogram hist;
  double sum = 0.0;
  for (const double x : xs) {
    hist.record(x);
    sum += x;
  }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, xs.size());
  EXPECT_NEAR(snap.sum, sum, 1e-9 * sum);
  EXPECT_EQ(snap.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(snap.max, *std::max_element(xs.begin(), xs.end()));
  EXPECT_NEAR(snap.mean(), sum / static_cast<double>(xs.size()),
              1e-12 * snap.mean());
}

TEST(HistogramMerge, SnapshotMergeEqualsSingleInstance) {
  const std::vector<double> xs = sample_set(5000, 99);
  Histogram whole, left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.record(xs[i]);
    (i % 2 == 0 ? left : right).record(xs[i]);
  }
  HistogramSnapshot merged = left.snapshot();
  merged.merge(right.snapshot());
  const HistogramSnapshot single = whole.snapshot();
  EXPECT_EQ(merged.count, single.count);
  EXPECT_EQ(merged.min, single.min);
  EXPECT_EQ(merged.max, single.max);
  EXPECT_EQ(merged.buckets, single.buckets);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.quantile(q), single.quantile(q)) << "q=" << q;
  }
}

// The musk_loadgen property: percentiles are a function of the sample
// multiset only. Recording the same fixed-seed samples through 4
// concurrent threads (per-thread shards) must report p50/p99 that are
// IDENTICAL — bit for bit — to a single-threaded recording.
TEST(HistogramMerge, ThreadSplitPercentilesAreIdentical) {
  const std::vector<double> xs = sample_set(8000, 2024);

  Histogram single;
  for (const double x : xs) single.record(x);

  Histogram sharded;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < xs.size();
             i += 4) {
          sharded.record(xs[i]);
        }
      });
    }
  }  // join: shards of exited threads stay merged into snapshot()

  const HistogramSnapshot a = single.snapshot();
  const HistogramSnapshot b = sharded.snapshot();
  ASSERT_EQ(a.count, b.count);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
}

TEST(HistogramSnapshot, EmptyIsAllZero) {
  Histogram hist;
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

}  // namespace
}  // namespace musketeer::obs
