// Edge-case and classic-adversarial instances for the simplex solver.
#include <gtest/gtest.h>

#include "lp/simplex.hpp"

namespace musketeer::lp {
namespace {

TEST(SimplexEdgeTest, EmptyModelIsTriviallyOptimal) {
  Model m;
  const Solution sol = solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_EQ(sol.objective, 0.0);
}

TEST(SimplexEdgeTest, FixedVariables) {
  // lo == up pins variables; the LP reduces to feasibility.
  Model m;
  const int x = m.add_variable(3.0, 3.0, 5.0);
  const int y = m.add_variable(0.0, 10.0, 1.0);
  m.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 7.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 3.0, 1e-9);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(y)], 4.0, 1e-9);
  EXPECT_NEAR(sol.objective, 19.0, 1e-8);
}

TEST(SimplexEdgeTest, InfeasibleFromConflictingEqualities) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  m.add_constraint({{{x, 1.0}}, Sense::kEqual, 3.0});
  m.add_constraint({{{x, 1.0}}, Sense::kEqual, 4.0});
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexEdgeTest, InfeasibleFromBoundsVsConstraint) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  const int y = m.add_variable(0.0, 1.0, 1.0);
  m.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 3.0});
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexEdgeTest, KleeMintyThreeDimensional) {
  // The classic exponential-path cube (d=3):
  //   max 4x1 + 2x2 + x3
  //   s.t. x1 <= 5; 4x1 + x2 <= 25; 8x1 + 4x2 + x3 <= 125; x >= 0.
  // Optimum 125 at (0, 0, 125).
  Model m;
  const int x1 = m.add_variable(0.0, kInfinity, 4.0);
  const int x2 = m.add_variable(0.0, kInfinity, 2.0);
  const int x3 = m.add_variable(0.0, kInfinity, 1.0);
  m.add_constraint({{{x1, 1.0}}, Sense::kLessEqual, 5.0});
  m.add_constraint({{{x1, 4.0}, {x2, 1.0}}, Sense::kLessEqual, 25.0});
  m.add_constraint({{{x1, 8.0}, {x2, 4.0}, {x3, 1.0}}, Sense::kLessEqual,
                    125.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 125.0, 1e-7);
}

TEST(SimplexEdgeTest, BealeCycleCandidateTerminates) {
  // Beale's classic cycling example (degenerate); Bland's fallback must
  // terminate at the optimum 0.05.
  //   max 0.75x1 - 150x2 + 0.02x3 - 6x4
  //   s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
  //        0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
  //        x3 <= 1;  x >= 0.
  Model m;
  const int x1 = m.add_variable(0.0, kInfinity, 0.75);
  const int x2 = m.add_variable(0.0, kInfinity, -150.0);
  const int x3 = m.add_variable(0.0, kInfinity, 0.02);
  const int x4 = m.add_variable(0.0, kInfinity, -6.0);
  m.add_constraint({{{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}},
                    Sense::kLessEqual, 0.0});
  m.add_constraint({{{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}},
                    Sense::kLessEqual, 0.0});
  m.add_constraint({{{x3, 1.0}}, Sense::kLessEqual, 1.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.05, 1e-8);
}

TEST(SimplexEdgeTest, ObjectiveIndifferentDirections) {
  // Zero objective: any feasible point is optimal; must not wander.
  Model m;
  const int x = m.add_variable(0.0, 5.0, 0.0);
  m.add_constraint({{{x, 1.0}}, Sense::kLessEqual, 4.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(SimplexEdgeTest, LargeCoefficientSpread) {
  // Mixed magnitudes (1e-6 .. 1e6) — a conditioning smoke test.
  Model m;
  const int x = m.add_variable(0.0, 1e6, 1e-6);
  const int y = m.add_variable(0.0, 1.0, 1e6);
  m.add_constraint({{{x, 1e-6}, {y, 1e6}}, Sense::kLessEqual, 1e6});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Optimal: y = (1e6 - 1e-6 * x)/1e6; objective dominated by y term.
  EXPECT_GT(sol.objective, 9.9e5);
}

TEST(SimplexEdgeTest, NegativeRhsRowsNormalizeCorrectly) {
  // max -x  s.t. -x <= -2  (i.e. x >= 2).
  Model m;
  const int x = m.add_variable(0.0, 10.0, -1.0);
  m.add_constraint({{{x, -1.0}}, Sense::kLessEqual, -2.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 2.0, 1e-9);
}

}  // namespace
}  // namespace musketeer::lp
