#include "lp/flow_lp.hpp"

#include <gtest/gtest.h>

#include "flow/solver.hpp"
#include "util/rng.hpp"

namespace musketeer::lp {
namespace {

using flow::Circulation;
using flow::Graph;
using flow::NodeId;

TEST(FlowLpTest, TriangleMatchesCombinatorialSolver) {
  Graph g(3);
  g.add_edge(0, 1, 7, 0.03);
  g.add_edge(1, 2, 9, -0.01);
  g.add_edge(2, 0, 8, 0.0);
  const FlowLpResult lp = solve_circulation_lp(g);
  ASSERT_EQ(lp.status, SolveStatus::kOptimal);
  EXPECT_NEAR(lp.welfare, 7 * 0.02, 1e-8);
  EXPECT_TRUE(flow::is_feasible(g, lp.flows));
  EXPECT_LT(lp.max_rounding_error, 1e-6);
}

TEST(FlowLpTest, EmptyGraph) {
  Graph g(4);
  const FlowLpResult lp = solve_circulation_lp(g);
  ASSERT_EQ(lp.status, SolveStatus::kOptimal);
  EXPECT_NEAR(lp.welfare, 0.0, 1e-12);
}

TEST(FlowLpTest, UnprofitableCycleStaysAtZero) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0.01);
  g.add_edge(1, 2, 5, -0.05);
  g.add_edge(2, 0, 5, 0.0);
  const FlowLpResult lp = solve_circulation_lp(g);
  ASSERT_EQ(lp.status, SolveStatus::kOptimal);
  EXPECT_NEAR(lp.welfare, 0.0, 1e-9);
  EXPECT_EQ(flow::total_volume(lp.flows), 0);
}

// The referee test: LP and cycle-cancelling agree on random instances.
class FlowLpCrossValidation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FlowLpCrossValidation, LpAgreesWithCycleCancelling) {
  util::Rng rng(GetParam());
  const auto n = static_cast<NodeId>(rng.uniform_int(3, 10));
  Graph g(n);
  const int m = static_cast<int>(rng.uniform_int(n, 3 * n));
  for (int e = 0; e < m; ++e) {
    const auto u = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) v = static_cast<NodeId>((v + 1) % n);
    // Round gains to 1e-4 so LP floating point and exact scaled integers
    // compare cleanly.
    const double gain =
        static_cast<double>(rng.uniform_int(-500, 500)) * 1e-4;
    g.add_edge(u, v, rng.uniform_int(1, 15), gain);
  }
  const Circulation f = flow::solve_max_welfare(g);
  const FlowLpResult lp = solve_circulation_lp(g);
  ASSERT_EQ(lp.status, SolveStatus::kOptimal);
  EXPECT_NEAR(lp.welfare, flow::welfare(g, f), 1e-6)
      << "LP and combinatorial optima diverge";
  EXPECT_TRUE(flow::is_feasible(g, lp.flows));
  EXPECT_LT(lp.max_rounding_error, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FlowLpCrossValidation,
                         ::testing::Range<std::uint64_t>(300, 330));

}  // namespace
}  // namespace musketeer::lp
