#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace musketeer::lp {
namespace {

TEST(SimplexTest, UnconstrainedBoxMaximization) {
  Model m;
  m.add_variable(0.0, 4.0, 2.0);
  m.add_variable(0.0, 3.0, -1.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 0.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; x, y >= 0.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 3.0);
  const int y = m.add_variable(0.0, kInfinity, 5.0);
  m.add_constraint({{{x, 1.0}}, Sense::kLessEqual, 4.0});
  m.add_constraint({{{y, 2.0}}, Sense::kLessEqual, 12.0});
  m.add_constraint({{{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-8);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 2.0, 1e-8);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(y)], 6.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + y  s.t. x + y = 5, x <= 2.
  Model m;
  const int x = m.add_variable(0.0, 2.0, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min x (== max -x)  s.t. x >= 3.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  m.add_constraint({{{x, 1.0}}, Sense::kGreaterEqual, 3.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 3.0, 1e-9);
  EXPECT_NEAR(sol.objective, -3.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  m.add_constraint({{{x, 1.0}}, Sense::kGreaterEqual, 2.0});
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  Model m;
  m.add_variable(0.0, kInfinity, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, NegativeLowerBoundsWork) {
  // max -x with x in [-5, 5] -> x = -5.
  Model m;
  const int x = m.add_variable(-5.0, 5.0, -1.0);
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], -5.0, 1e-9);
}

TEST(SimplexTest, FreeVariableInEquality) {
  // max y s.t. y - x = 0, y <= 7, x free.
  Model m;
  const int x = m.add_variable(-kInfinity, kInfinity, 0.0);
  const int y = m.add_variable(0.0, 7.0, 1.0);
  m.add_constraint({{{y, 1.0}, {x, -1.0}}, Sense::kEqual, 0.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-9);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 7.0, 1e-9);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 1.0});
  m.add_constraint({{{x, 2.0}, {y, 2.0}}, Sense::kLessEqual, 2.0});
  m.add_constraint({{{x, 1.0}}, Sense::kLessEqual, 1.0});
  m.add_constraint({{{y, 1.0}}, Sense::kLessEqual, 1.0});
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

// Random LPs on box domains with <= rows: verify the simplex result
// dominates a Monte-Carlo feasible sample (soundness: it's feasible and
// at least as good as any sampled point).
class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomTest, DominatesRandomFeasiblePoints) {
  util::Rng rng(GetParam());
  const int nvars = static_cast<int>(rng.uniform_int(2, 5));
  const int nrows = static_cast<int>(rng.uniform_int(1, 4));
  Model m;
  for (int j = 0; j < nvars; ++j) {
    m.add_variable(0.0, rng.uniform_real(1.0, 10.0),
                   rng.uniform_real(-2.0, 2.0));
  }
  std::vector<Row> rows;
  for (int i = 0; i < nrows; ++i) {
    Row row;
    row.sense = Sense::kLessEqual;
    for (int j = 0; j < nvars; ++j) {
      row.terms.emplace_back(j, rng.uniform_real(0.0, 1.0));
    }
    row.rhs = rng.uniform_real(1.0, 10.0);
    rows.push_back(row);
    m.add_constraint(row);
  }
  const Solution sol = solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);  // 0 is always feasible

  // Verify feasibility of the reported solution.
  for (int j = 0; j < nvars; ++j) {
    EXPECT_GE(sol.values[static_cast<std::size_t>(j)], -1e-7);
    EXPECT_LE(sol.values[static_cast<std::size_t>(j)],
              m.upper_bounds()[static_cast<std::size_t>(j)] + 1e-7);
  }
  for (const Row& row : rows) {
    double lhs = 0.0;
    for (const auto& [j, a] : row.terms) {
      lhs += a * sol.values[static_cast<std::size_t>(j)];
    }
    EXPECT_LE(lhs, row.rhs + 1e-6);
  }

  // Monte-Carlo dominance.
  for (int s = 0; s < 200; ++s) {
    std::vector<double> x(static_cast<std::size_t>(nvars));
    for (int j = 0; j < nvars; ++j) {
      x[static_cast<std::size_t>(j)] = rng.uniform_real(
          0.0, m.upper_bounds()[static_cast<std::size_t>(j)]);
    }
    bool feasible = true;
    for (const Row& row : rows) {
      double lhs = 0.0;
      for (const auto& [j, a] : row.terms) {
        lhs += a * x[static_cast<std::size_t>(j)];
      }
      if (lhs > row.rhs) { feasible = false; break; }
    }
    if (!feasible) continue;
    double obj = 0.0;
    for (int j = 0; j < nvars; ++j) {
      obj += m.objective()[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    }
    EXPECT_LE(obj, sol.objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SimplexRandomTest,
                         ::testing::Range<std::uint64_t>(200, 230));

}  // namespace
}  // namespace musketeer::lp
