// The Mechanism::run() audit hook: clean mechanisms pass through it
// untouched; a deliberately broken mechanism dies with a structured
// report when MUSKETEER_AUDIT is compiled in.
#include "check/audit_hook.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/mechanism.hpp"

namespace musketeer {
namespace {

core::Game triangle_game() {
  core::Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, 0.0, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

/// A mechanism that violates conservation: it reports flow on the first
/// edge only, with no cycles backing it.
class BrokenMechanism : public core::Mechanism {
 public:
  std::string_view name() const override { return "broken"; }

 protected:
  core::Outcome run_impl(flow::SolveContext&, const core::Game& game,
                         const core::BidVector&) const override {
    core::Outcome outcome;
    outcome.circulation.assign(static_cast<std::size_t>(game.num_edges()), 0);
    outcome.circulation[0] = 1;
    return outcome;
  }
};

TEST(AuditHookTest, CleanOutcomePassesTheHookDirectly) {
  const core::Game game = triangle_game();
  const core::BidVector bids = game.truthful_bids();
  const core::M3DoubleAuction m3;
  const core::Outcome outcome = m3.run(game, bids);
  // Direct invocation works in every build flavor; it aborts on violation.
  check::audit_mechanism_outcome_or_die(m3, game, bids, outcome);
}

TEST(AuditHookDeathTest, BrokenMechanismDiesUnderAudit) {
  const core::Game game = triangle_game();
  const core::BidVector bids = game.truthful_bids();
  const BrokenMechanism broken;
#if defined(MUSKETEER_AUDIT)
  EXPECT_DEATH(broken.run(game, bids), "conservation");
#else
  // Without the compiled-in hook run() must not audit; the violation is
  // only caught when the hook is invoked explicitly.
  const core::Outcome outcome = broken.run(game, bids);
  EXPECT_DEATH(
      check::audit_mechanism_outcome_or_die(broken, game, bids, outcome),
      "conservation");
#endif
}

}  // namespace
}  // namespace musketeer
