// Corruption tests: hand-break each invariant of a known-good outcome and
// assert the auditor flags it with the right violation kind (and nothing
// else on the clean path).
#include "check/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.hpp"
#include "core/game.hpp"
#include "core/m1_fixed_fee.hpp"
#include "core/m2_minfee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/m5_variable_delay.hpp"
#include "core/outcome.hpp"

namespace musketeer {
namespace {

using check::AuditOptions;
using check::AuditReport;
using check::InvariantAuditor;
using check::ViolationKind;

// A triangle with one depleted edge plus a fourth, isolated player (so
// "stranger priced" has a stranger to price).
core::Game triangle_game() {
  core::Game game(4);
  game.add_edge(0, 1, 10, 0.0, 0.03);  // depleted: buyer is player 1
  game.add_edge(1, 2, 12, -0.001, 0.0);
  game.add_edge(2, 0, 15, -0.001, 0.0);
  return game;
}

struct Baseline {
  core::Game game = triangle_game();
  core::BidVector bids = game.truthful_bids();
  core::Outcome outcome = core::M3DoubleAuction().run(game, bids);
  InvariantAuditor auditor;

  AuditReport audit() const {
    return auditor.audit_outcome(game, bids, outcome, "test");
  }
};

TEST(InvariantAuditorTest, CleanM3OutcomePasses) {
  Baseline b;
  ASSERT_FALSE(b.outcome.cycles.empty());
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantAuditorTest, CleanOutcomeOfEveryMechanismPasses) {
  const core::Game game = triangle_game();
  const core::BidVector bids = game.truthful_bids();
  std::vector<std::unique_ptr<core::Mechanism>> mechanisms;
  mechanisms.push_back(std::make_unique<core::M1FixedFee>(0.01, 2.0));
  mechanisms.push_back(std::make_unique<core::M2Vcg>());
  mechanisms.push_back(std::make_unique<core::M2MinFee>(0.002));
  mechanisms.push_back(std::make_unique<core::M3DoubleAuction>());
  mechanisms.push_back(std::make_unique<core::M4DelayedAuction>(0.05));
  mechanisms.push_back(std::make_unique<core::M5VariableDelay>(
      std::vector<double>{0.05, 0.04, 0.03, 0.02}));
  mechanisms.push_back(std::make_unique<core::NoRebalancing>());
  mechanisms.push_back(std::make_unique<core::HideSeek>());
  mechanisms.push_back(std::make_unique<core::LocalRebalancing>());
  for (const auto& mechanism : mechanisms) {
    const core::Outcome outcome = mechanism->run(game, bids);
    AuditOptions options;
    options.check_individual_rationality =
        mechanism->claims_individual_rationality();
    const AuditReport report = InvariantAuditor(options).audit_outcome(
        game, mechanism->audited_bids(bids), outcome, mechanism->name());
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(InvariantAuditorTest, FlagsBrokenConservation) {
  Baseline b;
  b.outcome.circulation[0] += 1;  // net +1 at node 1, -1 at node 0
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kConservation)) << report.to_string();
}

TEST(InvariantAuditorTest, FlagsCapacityOverrun) {
  Baseline b;
  // Push every edge past its smallest capacity bound but keep the flow
  // conserved, isolating the capacity check.
  for (auto& f : b.outcome.circulation) f += 100;
  for (auto& pc : b.outcome.cycles) pc.cycle.amount += 100;
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kCapacity)) << report.to_string();
  EXPECT_FALSE(report.has(ViolationKind::kConservation)) << report.to_string();
}

TEST(InvariantAuditorTest, FlagsNegativeFlow) {
  Baseline b;
  for (auto& f : b.outcome.circulation) f -= 100;
  for (auto& pc : b.outcome.cycles) pc.cycle.amount -= 100;
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kCapacity)) << report.to_string();
}

TEST(InvariantAuditorTest, FlagsUnbalancedCyclePrices) {
  Baseline b;
  ASSERT_FALSE(b.outcome.cycles.empty());
  ASSERT_FALSE(b.outcome.cycles[0].prices.empty());
  b.outcome.cycles[0].prices[0].price += 0.5;
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kBudgetImbalance))
      << report.to_string();
}

TEST(InvariantAuditorTest, FlagsNegativeUtilityParticipant) {
  Baseline b;
  ASSERT_FALSE(b.outcome.cycles.empty());
  // Transfer 1 coin between two participants: budget balance survives,
  // individual rationality for the overcharged player does not.
  auto& pc = b.outcome.cycles[0];
  pc.prices.push_back(core::PlayerPrice{0, 1.0});
  pc.prices.push_back(core::PlayerPrice{1, -1.0});
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kNegativeUtility))
      << report.to_string();
  EXPECT_FALSE(report.has(ViolationKind::kBudgetImbalance))
      << report.to_string();
}

TEST(InvariantAuditorTest, NegativeUtilitySkippedWhenIrNotClaimed) {
  Baseline b;
  auto& pc = b.outcome.cycles[0];
  pc.prices.push_back(core::PlayerPrice{0, 1.0});
  pc.prices.push_back(core::PlayerPrice{1, -1.0});
  AuditOptions options;
  options.check_individual_rationality = false;
  const AuditReport report = InvariantAuditor(options).audit_outcome(
      b.game, b.bids, b.outcome, "no-ir");
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantAuditorTest, FlagsPriceOnNonParticipant) {
  Baseline b;
  ASSERT_FALSE(b.outcome.cycles.empty());
  auto& pc = b.outcome.cycles[0];
  pc.prices.push_back(core::PlayerPrice{3, 0.25});   // the isolated player
  pc.prices.push_back(core::PlayerPrice{0, -0.25});  // keep CBB intact
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kStrangerPriced))
      << report.to_string();
}

TEST(InvariantAuditorTest, FlagsOutOfRangePricedPlayer) {
  Baseline b;
  auto& pc = b.outcome.cycles[0];
  pc.prices.push_back(core::PlayerPrice{99, 0.0});
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kStrangerPriced))
      << report.to_string();
}

TEST(InvariantAuditorTest, FlagsMalformedCycleChaining) {
  Baseline b;
  ASSERT_GE(b.outcome.cycles[0].cycle.edges.size(), 3u);
  std::swap(b.outcome.cycles[0].cycle.edges[0],
            b.outcome.cycles[0].cycle.edges[1]);
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kMalformedCycle))
      << report.to_string();
}

TEST(InvariantAuditorTest, FlagsDecompositionMismatch) {
  Baseline b;
  ASSERT_FALSE(b.outcome.cycles.empty());
  b.outcome.cycles[0].cycle.amount -= 1;  // cycles no longer resum to f
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kDecompositionMismatch))
      << report.to_string();
}

TEST(InvariantAuditorTest, FlagsOutOfRangeBid) {
  Baseline b;
  b.bids.head[0] = 0.5;  // >= kMaxFeeRate
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kBidBound)) << report.to_string();
}

TEST(InvariantAuditorTest, FlagsBadReleaseSchedule) {
  Baseline b;
  b.outcome.cycles[0].release_time = 1.5;
  b.outcome.cycles[0].delay_bonus = -0.01;
  const AuditReport report = b.audit();
  EXPECT_EQ(report.count(ViolationKind::kBadSchedule), 2)
      << report.to_string();
}

TEST(InvariantAuditorTest, FlagsSizeMismatch) {
  Baseline b;
  b.outcome.circulation.push_back(0);
  const AuditReport report = b.audit();
  EXPECT_TRUE(report.has(ViolationKind::kSizeMismatch)) << report.to_string();
}

TEST(InvariantAuditorTest, AuditCirculationChecksConservationOnly) {
  const core::Game game = triangle_game();
  InvariantAuditor auditor;
  flow::Circulation f(static_cast<std::size_t>(game.num_edges()), 0);
  EXPECT_TRUE(auditor.audit_circulation(game, f).ok());
  f[1] = 3;  // 1 -> 2 without a return path
  const AuditReport report = auditor.audit_circulation(game, f);
  EXPECT_TRUE(report.has(ViolationKind::kConservation)) << report.to_string();
}

TEST(InvariantAuditorTest, ReportNamesKindsAndSubject) {
  Baseline b;
  b.outcome.circulation[0] += 1;
  const AuditReport report = b.audit();
  const std::string text = report.to_string();
  EXPECT_NE(text.find("audit[test]"), std::string::npos) << text;
  EXPECT_NE(text.find("conservation"), std::string::npos) << text;
}

}  // namespace
}  // namespace musketeer
