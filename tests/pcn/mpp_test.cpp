#include <gtest/gtest.h>

#include "pcn/payment.hpp"

namespace musketeer::pcn {
namespace {

// Two disjoint 60-capacity paths from 0 to 3: a 100-coin payment cannot
// go single-path but splits cleanly in two.
Network two_path_network() {
  Network net(4);
  net.add_channel(0, 1, 60, 0, 0.0, 0.0);
  net.add_channel(1, 3, 60, 0, 0.0, 0.0);
  net.add_channel(0, 2, 60, 0, 0.0, 0.0);
  net.add_channel(2, 3, 60, 0, 0.0, 0.0);
  return net;
}

TEST(MppTest, SinglePathPaymentsUseOnePart) {
  Network net = two_path_network();
  const MppResult res = send_payment_mpp(net, 0, 3, 40);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.parts, 1);
  EXPECT_EQ(net.node_wealth(3), 40);
}

TEST(MppTest, SplitsWhereSinglePathFails) {
  Network net = two_path_network();
  EXPECT_FALSE(send_payment(net, 0, 3, 100).success);
  const MppResult res = send_payment_mpp(net, 0, 3, 100);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.parts, 2);
  EXPECT_EQ(net.node_wealth(3), 100);
  EXPECT_EQ(net.node_wealth(0), 120 - 100);  // fee-free paths
}

TEST(MppTest, AtomicWhenTotalLiquidityInsufficient) {
  Network net = two_path_network();
  const Amount wealth_before = net.node_wealth(0);
  const MppResult res = send_payment_mpp(net, 0, 3, 130);  // > 120 total
  EXPECT_FALSE(res.success);
  EXPECT_EQ(net.node_wealth(0), wealth_before);
  EXPECT_EQ(net.node_wealth(3), 0);
  // No locks leaked either.
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(net.channel(c).locked_a, 0);
    EXPECT_EQ(net.channel(c).locked_b, 0);
  }
}

TEST(MppTest, RespectsPartBudget) {
  // Four 30-coin paths; a 100-coin payment needs 4 parts.
  Network net(6);
  for (NodeId mid = 1; mid <= 4; ++mid) {
    net.add_channel(0, mid, 30, 0, 0.0, 0.0);
    net.add_channel(mid, 5, 30, 0, 0.0, 0.0);
  }
  EXPECT_FALSE(send_payment_mpp(net, 0, 5, 100, /*max_parts=*/3).success);
  const MppResult res = send_payment_mpp(net, 0, 5, 100, /*max_parts=*/4);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.parts, 4);
}

TEST(MppTest, FeesAccumulateAcrossParts) {
  Network net(4);
  net.add_channel(0, 1, 100, 0, 0.0, 0.0);
  net.add_channel(1, 3, 50, 0, 0.02, 0.0);  // node 1 charges 2%
  net.add_channel(0, 2, 100, 0, 0.0, 0.0);
  net.add_channel(2, 3, 50, 0, 0.02, 0.0);  // node 2 charges 2%
  const MppResult res = send_payment_mpp(net, 0, 3, 98);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.parts, 2);
  EXPECT_GT(res.fees, 0);
  EXPECT_EQ(net.node_wealth(3), 98);
  // Sender paid amount + fees.
  EXPECT_EQ(net.node_wealth(0), 200 - 98 - res.fees);
}

TEST(MppTest, PartsShareNoLiquidity) {
  // Single bottleneck: splitting cannot conjure capacity out of thin
  // air, because part locks consume spendable balance.
  Network net(2);
  net.add_channel(0, 1, 50, 0, 0.0, 0.0);
  EXPECT_FALSE(send_payment_mpp(net, 0, 1, 60, /*max_parts=*/8).success);
  EXPECT_TRUE(send_payment_mpp(net, 0, 1, 50, 8).success);
}

}  // namespace
}  // namespace musketeer::pcn
