#include "pcn/htlc.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "pcn/rebalancer.hpp"

namespace musketeer::pcn {
namespace {

Network line_network() {
  Network net(3);
  net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.add_channel(1, 2, 100, 100, 0.0, 0.0);
  return net;
}

std::vector<Hop> two_hops(Amount amount) {
  return {Hop{0, 0, amount}, Hop{1, 1, amount}};
}

TEST(HtlcTest, LockReservesSpendableBalance) {
  Network net = line_network();
  auto chain = HtlcChain::lock(net, two_hops(60));
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(net.channel(0).spendable(0), 40);
  EXPECT_EQ(net.channel(0).balance_of(0), 100);  // still owned, just locked
  EXPECT_EQ(net.channel(1).spendable(1), 40);
  chain->abort();
}

TEST(HtlcTest, SettleMovesLockedCoins) {
  Network net = line_network();
  auto chain = HtlcChain::lock(net, two_hops(60));
  ASSERT_TRUE(chain.has_value());
  chain->settle();
  EXPECT_FALSE(chain->pending());
  EXPECT_EQ(net.channel(0).balance_of(0), 40);
  EXPECT_EQ(net.channel(0).balance_of(1), 160);
  EXPECT_EQ(net.channel(0).locked_of(0), 0);
  EXPECT_EQ(net.channel(1).balance_of(2), 160);
}

TEST(HtlcTest, AbortRestoresEverything) {
  Network net = line_network();
  auto chain = HtlcChain::lock(net, two_hops(60));
  ASSERT_TRUE(chain.has_value());
  chain->abort();
  EXPECT_EQ(net.channel(0).balance_of(0), 100);
  EXPECT_EQ(net.channel(0).spendable(0), 100);
  EXPECT_EQ(net.channel(1).locked_of(1), 0);
}

TEST(HtlcTest, FailedLockRollsBackPartialAcquisition) {
  Network net = line_network();
  // Second hop cannot be funded: node 1 has only 100 in channel 1.
  std::vector<Hop> hops{Hop{0, 0, 90}, Hop{1, 1, 150}};
  EXPECT_FALSE(HtlcChain::lock(net, hops).has_value());
  // The first hop's tentative lock was released.
  EXPECT_EQ(net.channel(0).locked_of(0), 0);
  EXPECT_EQ(net.channel(0).spendable(0), 100);
}

TEST(HtlcTest, DestructionWithoutSettleAborts) {
  Network net = line_network();
  {
    auto chain = HtlcChain::lock(net, two_hops(60));
    ASSERT_TRUE(chain.has_value());
    // Chain dropped without settle().
  }
  EXPECT_EQ(net.channel(0).locked_of(0), 0);
  EXPECT_EQ(net.channel(0).balance_of(0), 100);
}

TEST(HtlcTest, MoveTransfersOwnership) {
  Network net = line_network();
  auto chain = HtlcChain::lock(net, two_hops(30));
  ASSERT_TRUE(chain.has_value());
  HtlcChain moved = std::move(*chain);
  EXPECT_TRUE(moved.pending());
  EXPECT_FALSE(chain->pending());
  moved.settle();
  EXPECT_EQ(net.channel(0).balance_of(1), 130);
}

TEST(HtlcTest, ConcurrentChainsCompeteForSpendable) {
  Network net = line_network();
  auto first = HtlcChain::lock(net, two_hops(70));
  ASSERT_TRUE(first.has_value());
  // Only 30 spendable left on each hop.
  EXPECT_FALSE(HtlcChain::lock(net, two_hops(40)).has_value());
  auto second = HtlcChain::lock(net, two_hops(30));
  ASSERT_TRUE(second.has_value());
  first->settle();
  second->settle();
  EXPECT_EQ(net.channel(0).balance_of(0), 0);
}

TEST(HtlcTest, PrelockedExtractionHoldsCapacity) {
  Network net(3);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  net.add_channel(1, 2, 20, 80, 0.0, 0.0);
  net.add_channel(2, 0, 30, 70, 0.0, 0.0);
  RebalancePolicy policy;
  ExtractedGame extracted = extract_and_lock(net, policy);
  ASSERT_TRUE(extracted.prelocked);
  // Every offered capacity is locked somewhere.
  Amount locked_total = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    locked_total += net.channel(c).locked_a + net.channel(c).locked_b;
  }
  EXPECT_GT(locked_total, 0);
  // Abort path: releasing restores full spendability.
  release_locks(net, extracted);
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(net.channel(c).locked_a, 0);
    EXPECT_EQ(net.channel(c).locked_b, 0);
  }
}

TEST(HtlcTest, ApplyOutcomeSettlesAndReleasesEverything) {
  Network net(3);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  net.add_channel(1, 2, 20, 80, 0.0, 0.0);
  net.add_channel(2, 0, 30, 70, 0.0, 0.0);
  RebalancePolicy policy;
  ExtractedGame extracted = extract_and_lock(net, policy);
  const core::Outcome outcome =
      core::M3DoubleAuction().run_truthful(extracted.game);
  const RebalanceStats stats = apply_outcome(net, extracted, outcome);
  EXPECT_GT(stats.volume, 0);
  // No lock survives apply_outcome — used capacity settled, rest freed.
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(net.channel(c).locked_a, 0);
    EXPECT_EQ(net.channel(c).locked_b, 0);
  }
}

TEST(HtlcTest, PrelockBlocksCompetingPaymentsUntilReleased) {
  Network net(3);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  net.add_channel(1, 2, 20, 80, 0.0, 0.0);
  net.add_channel(2, 0, 30, 70, 0.0, 0.0);
  RebalancePolicy policy;
  ExtractedGame extracted = extract_and_lock(net, policy);
  // The depleted edge 1->0 has locked most of player 1's side.
  const Amount spendable_during = net.channel(0).spendable(1);
  EXPECT_LT(spendable_during, 90);
  release_locks(net, extracted);
  EXPECT_EQ(net.channel(0).spendable(1), 90);
}

TEST(ChannelLockTest, LockUnlockSettlePrimitives) {
  Channel c{0, 1, 50, 50, 0.0, 0.0, 0, 0};
  c.lock(0, 30);
  EXPECT_EQ(c.spendable(0), 20);
  EXPECT_EQ(c.locked_of(0), 30);
  c.unlock(0, 10);
  EXPECT_EQ(c.locked_of(0), 20);
  c.settle(0, 20);
  EXPECT_EQ(c.balance_of(0), 30);
  EXPECT_EQ(c.balance_of(1), 70);
  EXPECT_EQ(c.locked_of(0), 0);
}

TEST(ChannelLockDeathTest, OverlockAborts) {
  Channel c{0, 1, 50, 50, 0.0, 0.0, 0, 0};
  c.lock(0, 50);
  EXPECT_DEATH(c.lock(0, 1), "spendable");
  EXPECT_DEATH(c.transfer(0, 1), "insufficient");
}

}  // namespace
}  // namespace musketeer::pcn
