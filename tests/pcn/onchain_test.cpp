#include "pcn/onchain.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace musketeer::pcn {
namespace {

TEST(OnChainTest, CostsAreMonotoneInDeficit) {
  OnChainCostModel model;
  EXPECT_LT(onchain_cost(model, 10), onchain_cost(model, 1000));
  EXPECT_LT(rebalancing_cost(0.001, 10), rebalancing_cost(0.001, 1000));
}

TEST(OnChainTest, OnChainIsDominatedBySmallDeficits) {
  OnChainCostModel model;
  model.base_fee = 2000;
  model.delay_cost_rate = 0.0;
  // Rebalancing 100 units at 0.1% costs 0.1; on-chain costs 2000.
  EXPECT_LT(rebalancing_cost(0.001, 100), onchain_cost(model, 100));
}

TEST(OnChainTest, BreakEvenFormula) {
  OnChainCostModel model;
  model.base_fee = 2000;
  model.delay_cost_rate = 0.0;
  const flow::Amount breakeven = breakeven_deficit(model, 0.001);
  EXPECT_EQ(breakeven, 2'000'000);
  // Just below break-even rebalancing wins, just above it loses.
  EXPECT_LT(rebalancing_cost(0.001, breakeven - 1),
            onchain_cost(model, breakeven - 1));
  EXPECT_GE(rebalancing_cost(0.001, breakeven + 1),
            onchain_cost(model, breakeven + 1));
}

TEST(OnChainTest, DelayCostShiftsBreakEven) {
  OnChainCostModel slow;
  slow.base_fee = 2000;
  slow.delay_cost_rate = 0.0005;
  OnChainCostModel instant;
  instant.base_fee = 2000;
  instant.delay_cost_rate = 0.0;
  EXPECT_GT(breakeven_deficit(slow, 0.001), breakeven_deficit(instant, 0.001));
}

TEST(OnChainTest, RebalancingAlwaysWinsWhenCheaperThanDelayAlone) {
  OnChainCostModel model;
  model.delay_cost_rate = 0.002;
  EXPECT_EQ(breakeven_deficit(model, 0.001),
            std::numeric_limits<flow::Amount>::max());
}

}  // namespace
}  // namespace musketeer::pcn
