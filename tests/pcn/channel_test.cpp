#include "pcn/channel.hpp"

#include <gtest/gtest.h>

namespace musketeer::pcn {
namespace {

TEST(ChannelTest, BasicAccessors) {
  const Channel c{0, 1, 30, 70, 0.001, 0.002};
  EXPECT_EQ(c.capacity(), 100);
  EXPECT_TRUE(c.has_party(0));
  EXPECT_TRUE(c.has_party(1));
  EXPECT_FALSE(c.has_party(2));
  EXPECT_EQ(c.other(0), 1);
  EXPECT_EQ(c.other(1), 0);
  EXPECT_EQ(c.balance_of(0), 30);
  EXPECT_EQ(c.balance_of(1), 70);
  EXPECT_DOUBLE_EQ(c.fee_rate_of(0), 0.001);
  EXPECT_DOUBLE_EQ(c.fee_rate_of(1), 0.002);
}

TEST(ChannelTest, TransferConservesCapacity) {
  Channel c{0, 1, 30, 70, 0.0, 0.0};
  c.transfer(1, 20);
  EXPECT_EQ(c.balance_of(0), 50);
  EXPECT_EQ(c.balance_of(1), 50);
  EXPECT_EQ(c.capacity(), 100);
  c.transfer(0, 50);
  EXPECT_EQ(c.balance_of(0), 0);
  EXPECT_EQ(c.balance_of(1), 100);
}

TEST(ChannelTest, BalanceShare) {
  const Channel c{0, 1, 25, 75, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(c.balance_share(0), 0.25);
  EXPECT_DOUBLE_EQ(c.balance_share(1), 0.75);
  const Channel empty{0, 1, 0, 0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(empty.balance_share(0), 0.5);
}

TEST(ChannelDeathTest, OverdraftAborts) {
  Channel c{0, 1, 30, 70, 0.0, 0.0};
  EXPECT_DEATH(c.transfer(0, 31), "insufficient");
}

}  // namespace
}  // namespace musketeer::pcn
