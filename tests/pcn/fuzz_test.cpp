// Long randomized operation sequences against global invariants: no
// mixture of payments, HTLC locks/aborts, rebalancing rounds, and churn
// may ever mint coins, overdraw a side, or leak a lock.
#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "pcn/htlc.hpp"
#include "pcn/payment.hpp"
#include "pcn/rebalancer.hpp"
#include "sim/engine.hpp"

namespace musketeer::pcn {
namespace {

struct Invariants {
  static void check(const Network& net, Amount expected_total) {
    Amount total = 0;
    for (ChannelId c = 0; c < net.num_channels(); ++c) {
      const Channel& ch = net.channel(c);
      ASSERT_GE(ch.balance_a, 0);
      ASSERT_GE(ch.balance_b, 0);
      ASSERT_GE(ch.locked_a, 0);
      ASSERT_GE(ch.locked_b, 0);
      ASSERT_LE(ch.locked_a, ch.balance_a);
      ASSERT_LE(ch.locked_b, ch.balance_b);
      total += ch.capacity();
    }
    ASSERT_EQ(total, expected_total) << "coins minted or burned";
  }
};

class PcnFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcnFuzzTest, RandomOperationSequencePreservesInvariants) {
  util::Rng rng(GetParam());
  sim::SimulationConfig config;
  config.num_nodes = 24;
  config.balance_min = 20;
  config.balance_max = 60;
  Network net = sim::build_network(config, rng);
  const Amount total = net.total_capacity();

  RebalancePolicy policy;
  policy.depleted_threshold = 0.25;
  policy.seller_floor_share = 0.35;
  const core::M3DoubleAuction m3;
  const core::M4DelayedAuction m4(10.0);

  std::vector<HtlcChain> pending;
  for (int op = 0; op < 400; ++op) {
    const auto kind = rng.uniform(6);
    switch (kind) {
      case 0:
      case 1: {  // a payment
        const auto s = static_cast<NodeId>(rng.uniform(24));
        auto t = static_cast<NodeId>(rng.uniform(24));
        if (s == t) t = static_cast<NodeId>((t + 1) % 24);
        send_payment(net, s, t, rng.uniform_int(1, 30));
        break;
      }
      case 2: {  // open a dangling HTLC on a random channel
        const auto c =
            static_cast<ChannelId>(rng.uniform(
                static_cast<std::uint64_t>(net.num_channels())));
        const Channel& ch = net.channel(c);
        const NodeId from = rng.bernoulli(0.5) ? ch.a : ch.b;
        auto chain = HtlcChain::lock(
            net, {Hop{c, from, rng.uniform_int(1, 20)}});
        if (chain) pending.push_back(std::move(*chain));
        break;
      }
      case 3: {  // resolve a pending HTLC either way
        if (pending.empty()) break;
        const std::size_t idx = rng.uniform(pending.size());
        if (rng.bernoulli(0.5)) {
          pending[idx].settle();
        } else {
          pending[idx].abort();
        }
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(idx));
        break;
      }
      case 4: {  // a full rebalancing round
        ExtractedGame extracted = extract_and_lock(net, policy);
        const core::Mechanism& mech =
            rng.bernoulli(0.5) ? static_cast<const core::Mechanism&>(m3)
                               : static_cast<const core::Mechanism&>(m4);
        const core::Outcome outcome = mech.run_truthful(extracted.game);
        apply_outcome(net, extracted, outcome);
        break;
      }
      case 5: {  // churn flip
        const auto c =
            static_cast<ChannelId>(rng.uniform(
                static_cast<std::uint64_t>(net.num_channels())));
        net.channel(c).disabled = !net.channel(c).disabled;
        break;
      }
    }
    Invariants::check(net, total);
  }
  // Drain whatever HTLCs remain and re-check.
  for (HtlcChain& chain : pending) chain.abort();
  pending.clear();
  Invariants::check(net, total);
  // After draining, the only locks left are zero.
  Amount locked = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    locked += net.channel(c).locked_a + net.channel(c).locked_b;
  }
  EXPECT_EQ(locked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcnFuzzTest,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005));

}  // namespace
}  // namespace musketeer::pcn
