#include "pcn/rebalancer.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"

namespace musketeer::pcn {
namespace {

RebalancePolicy test_policy() {
  RebalancePolicy policy;
  policy.depleted_threshold = 0.25;
  policy.target_share = 0.5;
  policy.buyer_bid_base = 0.01;
  policy.buyer_bid_slope = 0.05;
  policy.seller_fee = 0.001;
  policy.seller_liquidity_fraction = 0.5;
  return policy;
}

TEST(RebalancerTest, BalancedNetworkExtractsOnlySellerEdges) {
  Network net(3);
  net.add_channel(0, 1, 50, 50, 0.0, 0.0);
  net.add_channel(1, 2, 50, 50, 0.0, 0.0);
  const ExtractedGame extracted = extract_game(net, test_policy());
  for (core::EdgeId e = 0; e < extracted.game.num_edges(); ++e) {
    EXPECT_FALSE(extracted.game.is_depleted(e));
  }
}

TEST(RebalancerTest, DepletedSideBecomesBuyerEdge) {
  Network net(2);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);  // node 0 at 10% -> depleted
  const ExtractedGame extracted = extract_game(net, test_policy());
  ASSERT_EQ(extracted.game.num_edges(), 1);
  const core::GameEdge& edge = extracted.game.edge(0);
  EXPECT_EQ(edge.from, 1);  // coins move from 1's side
  EXPECT_EQ(edge.to, 0);    // into 0's side
  EXPECT_GT(edge.head_valuation, 0.0);
  // Capacity restores node 0 to target: 50 - 10 = 40.
  EXPECT_EQ(edge.capacity, 40);
  EXPECT_EQ(extracted.bindings[0].channel, 0);
  EXPECT_EQ(extracted.bindings[0].from, 1);
}

TEST(RebalancerTest, BuyerBidGrowsWithSeverity) {
  const RebalancePolicy policy = test_policy();
  Network net(4);
  net.add_channel(0, 1, 20, 80, 0.0, 0.0);   // share 0.20
  net.add_channel(2, 3, 5, 95, 0.0, 0.0);    // share 0.05 — worse
  const ExtractedGame extracted = extract_game(net, policy);
  ASSERT_EQ(extracted.game.num_edges(), 2);
  EXPECT_LT(extracted.game.edge(0).head_valuation,
            extracted.game.edge(1).head_valuation);
}

TEST(RebalancerTest, SurplusSideOffersBoundedLiquidity) {
  Network net(2);
  net.add_channel(0, 1, 70, 30, 0.0, 0.0);
  const ExtractedGame extracted = extract_game(net, test_policy());
  // Node 1 at 30% is neither depleted (>= 0.25) nor above the seller
  // floor (30%), so it offers nothing; node 0 holds 40 above the floor
  // and offers half of it.
  ASSERT_EQ(extracted.game.num_edges(), 1);
  const core::GameEdge& edge = extracted.game.edge(0);
  EXPECT_EQ(edge.from, 0);
  EXPECT_EQ(edge.capacity, 20);
  EXPECT_DOUBLE_EQ(edge.tail_valuation, -0.001);
}

TEST(RebalancerTest, BalancedChannelStillOffersLiquidity) {
  // The whole point of including sellers: a balanced channel can afford
  // to route and prices that service, rather than sitting idle.
  Network net(2);
  net.add_channel(0, 1, 50, 50, 0.0, 0.0);
  const ExtractedGame extracted = extract_game(net, test_policy());
  ASSERT_EQ(extracted.game.num_edges(), 2);
  for (core::EdgeId e = 0; e < 2; ++e) {
    EXPECT_FALSE(extracted.game.is_depleted(e));
    EXPECT_EQ(extracted.game.edge(e).capacity, 10);  // (50-30)/2
  }
}

TEST(RebalancerTest, EndToEndRebalanceRestoresDepletedChannel) {
  // Triangle where a directed rebalancing cycle 1->0, 0->2, 2->1 exists:
  // node 0 is depleted in channel (0,1), node 1 in channel (1,2), and
  // node 0 holds sellable surplus in channel (2,0).
  Network net(3);
  const ChannelId ab = net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  net.add_channel(1, 2, 20, 80, 0.0, 0.0);
  net.add_channel(2, 0, 30, 70, 0.0, 0.0);
  const double imbalance_before = net.imbalances()[0];

  const ExtractedGame extracted = extract_game(net, test_policy());
  const core::M3DoubleAuction m3;
  const core::Outcome outcome = m3.run_truthful(extracted.game);
  const RebalanceStats stats = apply_outcome(net, extracted, outcome);

  EXPECT_GT(stats.cycles_executed, 0);
  EXPECT_GT(stats.volume, 0);
  EXPECT_GT(net.channel(ab).balance_of(0), 10);
  EXPECT_LT(net.imbalances()[0], imbalance_before);
  // Rebalancing never mints or burns coins: total wealth equals the sum
  // of channel capacities.
  EXPECT_EQ(net.node_wealth(0) + net.node_wealth(1) + net.node_wealth(2),
            net.total_capacity());
}

TEST(RebalancerTest, WealthInvariantUnderRebalancing) {
  Network net(3);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  net.add_channel(1, 2, 20, 80, 0.0, 0.0);
  net.add_channel(2, 0, 30, 70, 0.0, 0.0);
  std::vector<Amount> wealth_before;
  for (NodeId v = 0; v < 3; ++v) wealth_before.push_back(net.node_wealth(v));

  const ExtractedGame extracted = extract_game(net, test_policy());
  const core::Outcome outcome =
      core::M3DoubleAuction().run_truthful(extracted.game);
  apply_outcome(net, extracted, outcome);

  // Balance conservation (the paper's circulation property): each node's
  // total wealth is unchanged by pure rebalancing.
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(net.node_wealth(v), wealth_before[static_cast<std::size_t>(v)])
        << "node " << v;
  }
}

TEST(RebalancerTest, EmptyOutcomeIsNoOp) {
  Network net(2);
  net.add_channel(0, 1, 50, 50, 0.0, 0.0);
  const ExtractedGame extracted = extract_game(net, test_policy());
  core::Outcome outcome;
  outcome.circulation.assign(
      static_cast<std::size_t>(extracted.game.num_edges()), 0);
  const RebalanceStats stats = apply_outcome(net, extracted, outcome);
  EXPECT_EQ(stats.cycles_executed, 0);
  EXPECT_EQ(stats.volume, 0);
}

}  // namespace
}  // namespace musketeer::pcn
