// The §2.2 / §3.5 pre-lock rationale, demonstrated: without pre-locked
// capacity a participant can spend its coins between the mechanism's
// computation and the cycle execution (reneging), killing whole cycles;
// with pre-locks the outcome is always executable.
#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "pcn/htlc.hpp"
#include "pcn/payment.hpp"
#include "pcn/rebalancer.hpp"

namespace musketeer::pcn {
namespace {

Network triangle_network() {
  Network net(3);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  net.add_channel(1, 2, 20, 80, 0.0, 0.0);
  net.add_channel(2, 0, 30, 70, 0.0, 0.0);
  return net;
}

TEST(RenegeTest, WithoutPrelockASpenderBreaksTheCycle) {
  Network net = triangle_network();
  RebalancePolicy policy;
  const ExtractedGame extracted = extract_game(net, policy);  // no locks
  const core::Outcome outcome =
      core::M3DoubleAuction().run_truthful(extracted.game);
  ASSERT_FALSE(outcome.cycles.empty());

  // Between computation and execution, player 1 spends its channel-0
  // balance elsewhere (direct payment to 0).
  const Amount drained = net.channel(0).spendable(1);
  net.channel(0).transfer(1, drained);

  // The cycle needs 1's liquidity on channel 0: execution must now fail
  // its validation (apply_outcome asserts; emulate the execution check).
  const auto& cycle = outcome.cycles[0].cycle;
  bool executable = true;
  for (flow::EdgeId e : cycle.edges) {
    const EdgeBinding& binding =
        extracted.bindings[static_cast<std::size_t>(e)];
    if (net.channel(binding.channel).spendable(binding.from) <
        cycle.amount) {
      executable = false;
    }
  }
  EXPECT_FALSE(executable) << "reneging should break the unlocked cycle";
}

TEST(RenegeTest, PrelockMakesRenegingImpossible) {
  Network net = triangle_network();
  RebalancePolicy policy;
  ExtractedGame extracted = extract_and_lock(net, policy);
  const core::Outcome outcome =
      core::M3DoubleAuction().run_truthful(extracted.game);
  ASSERT_FALSE(outcome.cycles.empty());

  // Player 1 tries the same spend: only coins above the lock can move.
  const Amount spendable = net.channel(0).spendable(1);
  if (spendable > 0) net.channel(0).transfer(1, spendable);
  // Locked capacity is untouched, so the outcome still applies cleanly.
  const RebalanceStats stats = apply_outcome(net, extracted, outcome);
  EXPECT_GT(stats.volume, 0);
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(net.channel(c).locked_a, 0);
    EXPECT_EQ(net.channel(c).locked_b, 0);
  }
}

TEST(RenegeTest, PaymentsCannotTouchPrelockedLiquidity) {
  Network net = triangle_network();
  RebalancePolicy policy;
  ExtractedGame extracted = extract_and_lock(net, policy);
  // Try to route a payment consuming 1's locked side of channel 0.
  const Amount spendable = net.channel(0).spendable(1);
  const PaymentResult res =
      send_payment(net, 1, 0, spendable + 1, /*max_attempts=*/1,
                   /*max_hops=*/1);
  EXPECT_FALSE(res.success);
  release_locks(net, extracted);
  const PaymentResult after =
      send_payment(net, 1, 0, spendable + 1, 1, 1);
  EXPECT_TRUE(after.success);
}

}  // namespace
}  // namespace musketeer::pcn
