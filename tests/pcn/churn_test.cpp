// Channel churn: offline channels must be invisible to routing, HTLCs,
// and rebalancing, and the simulation's downtime knob must degrade
// throughput.
#include <gtest/gtest.h>

#include "pcn/htlc.hpp"
#include "pcn/payment.hpp"
#include "pcn/rebalancer.hpp"
#include "sim/engine.hpp"

namespace musketeer::pcn {
namespace {

TEST(ChurnTest, RoutingSkipsDisabledChannels) {
  Network net(3);
  const ChannelId direct = net.add_channel(0, 2, 100, 100, 0.0, 0.0);
  net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.add_channel(1, 2, 100, 100, 0.001, 0.0);
  net.channel(direct).disabled = true;
  const auto route = find_route(net, 0, 2, 10);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 2);  // forced through the detour
}

TEST(ChurnTest, NoRouteWhenEverythingIsDown) {
  Network net(2);
  const ChannelId only = net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.channel(only).disabled = true;
  EXPECT_FALSE(find_route(net, 0, 1, 10).has_value());
  EXPECT_FALSE(send_payment(net, 0, 1, 10).success);
}

TEST(ChurnTest, HtlcLockRefusesDisabledChannels) {
  Network net(2);
  const ChannelId c = net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.channel(c).disabled = true;
  EXPECT_FALSE(HtlcChain::lock(net, {Hop{c, 0, 10}}).has_value());
  EXPECT_EQ(net.channel(c).locked_of(0), 0);
}

TEST(ChurnTest, ExtractionIgnoresDisabledChannels) {
  Network net(2);
  const ChannelId c = net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  RebalancePolicy policy;
  EXPECT_GT(extract_game(net, policy).game.num_edges(), 0);
  net.channel(c).disabled = true;
  EXPECT_EQ(extract_game(net, policy).game.num_edges(), 0);
}

TEST(ChurnTest, DowntimeDegradesSimulatedThroughput) {
  sim::SimulationConfig config;
  config.num_nodes = 30;
  config.epochs = 4;
  config.payments_per_epoch = 80;
  config.seed = 5;
  const sim::SimulationResult healthy = run_simulation(config, nullptr);
  config.channel_downtime = 0.4;
  const sim::SimulationResult flaky = run_simulation(config, nullptr);
  EXPECT_LT(flaky.overall_success_rate(), healthy.overall_success_rate());
}

TEST(ChurnTest, ChurnIsDeterministicPerSeed) {
  sim::SimulationConfig config;
  config.num_nodes = 30;
  config.epochs = 3;
  config.payments_per_epoch = 50;
  config.channel_downtime = 0.2;
  config.seed = 6;
  const sim::SimulationResult a = run_simulation(config, nullptr);
  const sim::SimulationResult b = run_simulation(config, nullptr);
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].payments_succeeded, b.epochs[e].payments_succeeded);
  }
}

}  // namespace
}  // namespace musketeer::pcn
