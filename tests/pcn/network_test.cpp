#include "pcn/network.hpp"

#include <gtest/gtest.h>

namespace musketeer::pcn {
namespace {

Network line_network() {
  Network net(3);
  net.add_channel(0, 1, 50, 50, 0.001, 0.001);
  net.add_channel(1, 2, 80, 20, 0.001, 0.001);
  return net;
}

TEST(NetworkTest, ChannelBookkeeping) {
  const Network net = line_network();
  EXPECT_EQ(net.num_nodes(), 3);
  EXPECT_EQ(net.num_channels(), 2);
  EXPECT_EQ(net.channels_of(1).size(), 2u);
  EXPECT_EQ(net.channels_of(0).size(), 1u);
  EXPECT_EQ(net.total_capacity(), 200);
}

TEST(NetworkTest, NodeWealth) {
  const Network net = line_network();
  EXPECT_EQ(net.node_wealth(0), 50);
  EXPECT_EQ(net.node_wealth(1), 130);
  EXPECT_EQ(net.node_wealth(2), 20);
}

TEST(NetworkTest, WealthIsConservedByTransfers) {
  Network net = line_network();
  const Amount before = net.node_wealth(0) + net.node_wealth(1) +
                        net.node_wealth(2);
  net.channel(0).transfer(0, 30);
  const Amount after = net.node_wealth(0) + net.node_wealth(1) +
                       net.node_wealth(2);
  EXPECT_EQ(before, after);
  EXPECT_EQ(net.total_capacity(), 200);
}

TEST(NetworkTest, DepletedFraction) {
  Network net(2);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);  // side a depleted at 0.25
  net.add_channel(0, 1, 50, 50, 0.0, 0.0);  // balanced
  EXPECT_DOUBLE_EQ(net.depleted_direction_fraction(0.25), 0.25);
  EXPECT_DOUBLE_EQ(net.depleted_direction_fraction(0.05), 0.0);
}

TEST(NetworkTest, StateDigestTracksStateExactly) {
  Network a = line_network();
  Network b = line_network();
  EXPECT_EQ(a.state_digest(), b.state_digest());

  // Every state field moves the digest; undoing the move restores it.
  const std::uint64_t base = a.state_digest();
  a.channel(0).transfer(0, 10);
  EXPECT_NE(a.state_digest(), base);
  a.channel(0).transfer(1, 10);
  EXPECT_EQ(a.state_digest(), base);

  a.channel(1).lock(1, 5);
  EXPECT_NE(a.state_digest(), base);
  a.channel(1).unlock(1, 5);
  EXPECT_EQ(a.state_digest(), base);

  a.channel(1).disabled = true;
  EXPECT_NE(a.state_digest(), base);
  a.channel(1).disabled = false;
  EXPECT_EQ(a.state_digest(), base);

  // Same multiset of balances on different endpoints is a different state.
  Network c(3);
  c.add_channel(0, 1, 50, 50, 0.001, 0.001);
  c.add_channel(2, 1, 80, 20, 0.001, 0.001);
  EXPECT_NE(c.state_digest(), base);
}

TEST(NetworkTest, Imbalances) {
  Network net(2);
  net.add_channel(0, 1, 0, 100, 0.0, 0.0);
  net.add_channel(0, 1, 50, 50, 0.0, 0.0);
  const auto imb = net.imbalances();
  ASSERT_EQ(imb.size(), 2u);
  EXPECT_DOUBLE_EQ(imb[0], 1.0);
  EXPECT_DOUBLE_EQ(imb[1], 0.0);
}

}  // namespace
}  // namespace musketeer::pcn
