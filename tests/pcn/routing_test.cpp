#include "pcn/routing.hpp"

#include <gtest/gtest.h>

namespace musketeer::pcn {
namespace {

TEST(RoutingTest, DirectChannel) {
  Network net(2);
  net.add_channel(0, 1, 50, 50, 0.01, 0.01);
  const auto route = find_route(net, 0, 1, 30);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 1);
  EXPECT_EQ(route->hops[0].amount, 30);
  EXPECT_EQ(route->total_fees, 0);  // sender charges itself nothing
}

TEST(RoutingTest, TwoHopFeeAccounting) {
  Network net(3);
  net.add_channel(0, 1, 100, 100, 0.01, 0.01);
  net.add_channel(1, 2, 100, 100, 0.01, 0.01);
  const auto route = find_route(net, 0, 2, 50);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 2);
  // Forwarder 1 charges ceil(0.01 * 50) = 1 on the last hop.
  EXPECT_EQ(route->hops[1].amount, 50);
  EXPECT_EQ(route->hops[0].amount, 51);
  EXPECT_EQ(route->total_fees, 1);
}

TEST(RoutingTest, CapacityBlocksDirection) {
  Network net(2);
  net.add_channel(0, 1, 10, 90, 0.0, 0.0);
  EXPECT_TRUE(find_route(net, 0, 1, 10).has_value());
  EXPECT_FALSE(find_route(net, 0, 1, 11).has_value());
  EXPECT_TRUE(find_route(net, 1, 0, 90).has_value());
}

TEST(RoutingTest, PrefersCheaperPath) {
  Network net(4);
  // Expensive direct intermediary vs cheap one.
  net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.add_channel(1, 3, 100, 100, 0.05, 0.0);  // node 1 charges 5%
  net.add_channel(0, 2, 100, 100, 0.0, 0.0);
  net.add_channel(2, 3, 100, 100, 0.001, 0.0);  // node 2 charges 0.1%
  const auto route = find_route(net, 0, 3, 50);
  ASSERT_TRUE(route.has_value());
  ASSERT_EQ(route->length(), 2);
  EXPECT_EQ(route->hops[0].from, 0);
  EXPECT_EQ(net.channel(route->hops[1].channel).has_party(2), true);
}

TEST(RoutingTest, HopBoundEnforced) {
  Network net(4);
  net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.add_channel(1, 2, 100, 100, 0.0, 0.0);
  net.add_channel(2, 3, 100, 100, 0.0, 0.0);
  RoutingOptions opts;
  opts.max_hops = 2;
  EXPECT_FALSE(find_route(net, 0, 3, 10, opts).has_value());
  opts.max_hops = 3;
  EXPECT_TRUE(find_route(net, 0, 3, 10, opts).has_value());
}

TEST(RoutingTest, BlacklistForcesDetour) {
  Network net(3);
  const ChannelId direct = net.add_channel(0, 2, 100, 100, 0.0, 0.0);
  net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.add_channel(1, 2, 100, 100, 0.001, 0.0);
  RoutingOptions opts;
  opts.blacklist.push_back(direct);
  const auto route = find_route(net, 0, 2, 10, opts);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 2);
}

TEST(RoutingTest, NoRouteInDisconnectedNetwork) {
  Network net(4);
  net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.add_channel(2, 3, 100, 100, 0.0, 0.0);
  EXPECT_FALSE(find_route(net, 0, 3, 10).has_value());
}

TEST(RoutingTest, IntermediateCapacityMustCoverFees) {
  Network net(3);
  net.add_channel(0, 1, 100, 0, 0.0, 0.0);
  // Forwarder can pass exactly 50, but must forward 50 while the sender
  // funds 50 + fee upstream; forwarding side holds only 50.
  net.add_channel(1, 2, 50, 0, 0.02, 0.0);
  EXPECT_TRUE(find_route(net, 0, 2, 50).has_value());
  EXPECT_FALSE(find_route(net, 0, 2, 51).has_value());
}

}  // namespace
}  // namespace musketeer::pcn
