#include "pcn/payment.hpp"

#include <gtest/gtest.h>

namespace musketeer::pcn {
namespace {

TEST(PaymentTest, SuccessfulPaymentMovesBalances) {
  Network net(3);
  net.add_channel(0, 1, 100, 100, 0.01, 0.01);
  net.add_channel(1, 2, 100, 100, 0.01, 0.01);
  const PaymentResult res = send_payment(net, 0, 2, 50);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.hops, 2);
  EXPECT_EQ(res.fees, 1);
  // Receiver got exactly 50; forwarder pocketed the fee of 1; the sender
  // paid 51. Initial wealth: node 0 = 100, node 1 = 200, node 2 = 100.
  EXPECT_EQ(net.node_wealth(2), 150);
  EXPECT_EQ(net.node_wealth(1), 201);
  EXPECT_EQ(net.node_wealth(0), 49);
}

TEST(PaymentTest, FailedPaymentLeavesNetworkUntouched) {
  Network net(3);
  net.add_channel(0, 1, 10, 100, 0.0, 0.0);
  net.add_channel(1, 2, 10, 100, 0.0, 0.0);
  const Amount w0 = net.node_wealth(0);
  const PaymentResult res = send_payment(net, 0, 2, 50);
  EXPECT_FALSE(res.success);
  EXPECT_EQ(net.node_wealth(0), w0);
  EXPECT_EQ(net.channel(0).balance_of(0), 10);
}

TEST(PaymentTest, ExecuteRouteIsAtomic) {
  Network net(3);
  net.add_channel(0, 1, 100, 0, 0.0, 0.0);
  net.add_channel(1, 2, 100, 0, 0.0, 0.0);
  Route route;
  route.hops.push_back(Hop{0, 0, 60});
  route.hops.push_back(Hop{1, 1, 200});  // second hop cannot be funded
  EXPECT_FALSE(execute_route(net, route));
  EXPECT_EQ(net.channel(0).balance_of(0), 100);  // first hop rolled back
}

TEST(PaymentTest, RetryRoutesAroundDepletedChannel) {
  Network net(4);
  // Two disjoint 2-hop paths from 0 to 3; the cheap one is depleted.
  net.add_channel(0, 1, 100, 100, 0.0, 0.0);
  net.add_channel(1, 3, 5, 100, 0.0, 0.0);  // can't forward 50
  net.add_channel(0, 2, 100, 100, 0.0, 0.0);
  net.add_channel(2, 3, 100, 100, 0.001, 0.0);
  const PaymentResult res = send_payment(net, 0, 3, 50);
  ASSERT_TRUE(res.success);
  // Node 3 starts with 100 + 100 across its two channels.
  EXPECT_EQ(net.node_wealth(3), 200 + 50);
}

TEST(PaymentTest, WealthConservationAcrossManyPayments) {
  Network net(4);
  net.add_channel(0, 1, 100, 100, 0.002, 0.002);
  net.add_channel(1, 2, 100, 100, 0.002, 0.002);
  net.add_channel(2, 3, 100, 100, 0.002, 0.002);
  net.add_channel(3, 0, 100, 100, 0.002, 0.002);
  Amount total_before = 0;
  for (NodeId v = 0; v < 4; ++v) total_before += net.node_wealth(v);
  for (int i = 0; i < 20; ++i) {
    send_payment(net, static_cast<NodeId>(i % 4),
                 static_cast<NodeId>((i + 2) % 4), 10);
  }
  Amount total_after = 0;
  for (NodeId v = 0; v < 4; ++v) total_after += net.node_wealth(v);
  EXPECT_EQ(total_before, total_after);
}

TEST(PaymentTest, UnroutablePaymentReportsAttempts) {
  Network net(2);
  net.add_channel(0, 1, 5, 5, 0.0, 0.0);
  const PaymentResult res = send_payment(net, 0, 1, 50, /*max_attempts=*/3);
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.attempts, 1);  // no route at all -> stop immediately
}

}  // namespace
}  // namespace musketeer::pcn
