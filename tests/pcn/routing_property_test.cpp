// Routing correctness against a brute-force oracle: on small random
// networks, enumerate every simple path and check find_route returns a
// feasible route whenever one exists, with the minimum sender outlay.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "pcn/routing.hpp"
#include "util/rng.hpp"

namespace musketeer::pcn {
namespace {

constexpr Amount kNoRoute = -1;

Amount fee_of(double rate, Amount amount) {
  return static_cast<Amount>(
      std::ceil(rate * static_cast<double>(amount)));
}

// Brute force: DFS over simple channel paths; returns the minimum sender
// outlay delivering `amount`, or kNoRoute.
Amount brute_force_best(const Network& net, NodeId sender, NodeId receiver,
                        Amount amount, int max_hops) {
  Amount best = kNoRoute;
  std::vector<ChannelId> path;
  std::vector<bool> visited(static_cast<std::size_t>(net.num_nodes()), false);

  std::function<void(NodeId)> dfs = [&](NodeId node) {
    if (static_cast<int>(path.size()) > max_hops) return;
    if (node == receiver) {
      // Walk the path backward computing required amounts and checking
      // balances.
      Amount arriving = amount;
      bool feasible = true;
      NodeId cur = receiver;
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        const Channel& c = net.channel(*it);
        const NodeId from = c.other(cur);
        if (c.spendable(from) < arriving) {
          feasible = false;
          break;
        }
        if (from != sender) {
          arriving += fee_of(c.fee_rate_of(from), arriving);
        }
        cur = from;
      }
      if (feasible && (best == kNoRoute || arriving < best)) best = arriving;
      return;
    }
    visited[static_cast<std::size_t>(node)] = true;
    for (ChannelId c : net.channels_of(node)) {
      const NodeId next = net.channel(c).other(node);
      if (visited[static_cast<std::size_t>(next)]) continue;
      path.push_back(c);
      dfs(next);
      path.pop_back();
    }
    visited[static_cast<std::size_t>(node)] = false;
  };
  dfs(sender);
  return best;
}

class RoutingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingPropertyTest, MatchesBruteForceOracle) {
  util::Rng rng(GetParam());
  const NodeId n = static_cast<NodeId>(rng.uniform_int(4, 7));
  Network net(n);
  const int channels = static_cast<int>(rng.uniform_int(n, 2 * n));
  for (int c = 0; c < channels; ++c) {
    const auto a = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto b = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (a == b) b = static_cast<NodeId>((b + 1) % n);
    net.add_channel(a, b, rng.uniform_int(0, 60), rng.uniform_int(0, 60),
                    rng.uniform_real(0.0, 0.02), rng.uniform_real(0.0, 0.02));
  }
  const int max_hops = 4;
  for (int query = 0; query < 10; ++query) {
    const auto s = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto t = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (s == t) t = static_cast<NodeId>((t + 1) % n);
    const Amount amount = rng.uniform_int(1, 40);

    RoutingOptions options;
    options.max_hops = max_hops;
    const auto route = find_route(net, s, t, amount, options);
    const Amount oracle = brute_force_best(net, s, t, amount, max_hops);

    if (oracle == kNoRoute) {
      EXPECT_FALSE(route.has_value())
          << "found a route the oracle says cannot exist";
      continue;
    }
    ASSERT_TRUE(route.has_value())
        << "missed an existing route (outlay " << oracle << ")";
    // The DP is optimal; the extracted route's outlay must match the
    // oracle (sender outlay = first hop amount).
    EXPECT_EQ(route->hops.front().amount, oracle);
    EXPECT_EQ(route->total_fees, oracle - amount);
    // And the route itself must be executable.
    for (const Hop& hop : route->hops) {
      EXPECT_GE(net.channel(hop.channel).spendable(hop.from), hop.amount);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Range<std::uint64_t>(500, 525));

}  // namespace
}  // namespace musketeer::pcn
