#include "core/game.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"

namespace musketeer::core {
namespace {

Game simple_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);    // depleted: buyer is player 1
  game.add_edge(1, 2, 10, -0.005, 0.0);  // indifferent: seller is player 1
  game.add_edge(2, 0, 10, 0.0, 0.0);     // free
  return game;
}

TEST(GameTest, EdgeAccessorsAndDepletion) {
  const Game game = simple_game();
  EXPECT_EQ(game.num_players(), 3);
  EXPECT_EQ(game.num_edges(), 3);
  EXPECT_TRUE(game.is_depleted(0));
  EXPECT_FALSE(game.is_depleted(1));
  EXPECT_FALSE(game.is_depleted(2));
}

TEST(GameTest, TruthfulBidsMirrorValuations) {
  const Game game = simple_game();
  const BidVector bids = game.truthful_bids();
  EXPECT_DOUBLE_EQ(bids.head[0], 0.03);
  EXPECT_DOUBLE_EQ(bids.tail[1], -0.005);
  EXPECT_TRUE(game.is_valid(bids));
}

TEST(GameTest, InvalidBidsRejected) {
  const Game game = simple_game();
  BidVector bids = game.truthful_bids();
  bids.head[0] = 0.2;  // above the 10% bound
  EXPECT_FALSE(game.is_valid(bids));
  bids = game.truthful_bids();
  bids.tail[1] = 0.01;  // positive seller bid
  EXPECT_FALSE(game.is_valid(bids));
  bids = game.truthful_bids();
  bids.head.pop_back();  // size mismatch
  EXPECT_FALSE(game.is_valid(bids));
}

TEST(GameTest, BuildGraphAggregatesStakes) {
  const Game game = simple_game();
  const flow::Graph g = game.build_graph(game.truthful_bids());
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge(0).gain, 0.03);
  EXPECT_DOUBLE_EQ(g.edge(1).gain, -0.005);
  EXPECT_DOUBLE_EQ(g.edge(2).gain, 0.0);
}

TEST(GameTest, BuildGraphWithoutZeroesIncidentCapacities) {
  const Game game = simple_game();
  const flow::Graph g = game.build_graph_without(game.truthful_bids(), 1);
  EXPECT_EQ(g.edge(0).capacity, 0);  // 0->1 incident to player 1
  EXPECT_EQ(g.edge(1).capacity, 0);  // 1->2 incident to player 1
  EXPECT_EQ(g.edge(2).capacity, 10);
}

TEST(GameTest, PlayerValueSplitsTailAndHead) {
  const Game game = simple_game();
  const BidVector v = game.truthful_bids();
  const flow::Circulation f{4, 4, 4};
  // Player 1 is head of edge 0 (+0.03) and tail of edge 1 (-0.005).
  EXPECT_NEAR(game.player_value(1, v, f), 4 * (0.03 - 0.005), 1e-12);
  // Player 0 is tail of edge 0 (0) and head of edge 2 (0).
  EXPECT_NEAR(game.player_value(0, v, f), 0.0, 1e-12);
}

TEST(GameTest, SocialWelfareIsSumOfPlayerValues) {
  const Game game = simple_game();
  const BidVector v = game.truthful_bids();
  const flow::Circulation f{4, 4, 4};
  double sum = 0.0;
  for (PlayerId p = 0; p < game.num_players(); ++p) {
    sum += game.player_value(p, v, f);
  }
  EXPECT_NEAR(game.social_welfare(v, f), sum, 1e-12);
}

TEST(GameTest, CyclePlayersAreTailsInOrder) {
  const Game game = simple_game();
  flow::CycleFlow cycle;
  cycle.edges = {0, 1, 2};
  cycle.amount = 1;
  const auto players = game.cycle_players(cycle);
  EXPECT_EQ(players, (std::vector<PlayerId>{0, 1, 2}));
  EXPECT_TRUE(game.participates(0, cycle));
  EXPECT_TRUE(game.participates(1, cycle));
}

TEST(GameTest, CycleWelfareMatchesSocialWelfareOfItsCirculation) {
  const Game game = simple_game();
  const BidVector v = game.truthful_bids();
  flow::CycleFlow cycle;
  cycle.edges = {0, 1, 2};
  cycle.amount = 3;
  EXPECT_NEAR(game.cycle_welfare(v, cycle),
              game.social_welfare(v, flow::Circulation{3, 3, 3}), 1e-12);
}

TEST(GameDeathTest, MismatchedBidVectorDiesBeforeReachingSolver) {
  // Regression: size() used to trust tail.size() silently, so a bids
  // vector with fewer head entries sailed into the mechanism and read
  // out of bounds. It must fail loudly at the first size() query.
  const Game game = simple_game();
  BidVector bids = game.truthful_bids();
  bids.head.pop_back();
  EXPECT_DEATH(bids.size(), "mismatch");
  const M3DoubleAuction m3;
  EXPECT_DEATH(m3.run(game, bids), "mismatch|invalid bid vector");
}

TEST(GameDeathTest, RejectsOutOfRangeValuations) {
  Game game(2);
  EXPECT_DEATH(game.add_edge(0, 1, 1, 0.01, 0.0), "tail");
  EXPECT_DEATH(game.add_edge(0, 1, 1, 0.0, -0.01), "head");
  EXPECT_DEATH(game.add_edge(0, 1, 1, 0.0, 0.1), "head");
}

}  // namespace
}  // namespace musketeer::core
