// Cross-mechanism property suite: for each mechanism, the combination of
// desiderata its theorem claims is checked on randomized games (Theorems
// 2-5). These are the paper's results run as executable properties.
#include <gtest/gtest.h>

#include "core/m1_fixed_fee.hpp"
#include "core/m2_minfee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/m5_variable_delay.hpp"
#include "core/properties.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::core {
namespace {

class MechanismPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

// ---------------------------------------------------------------- M3/M4

TEST_P(MechanismPropertyTest, M3EfficientRationalBalanced) {
  gen::GameConfig config;  // full double auction: costly sellers
  const Game game = gen::random_ba_game(16, 2, config, rng_);
  const BidVector bids = game.truthful_bids();
  const Outcome outcome = M3DoubleAuction().run(game, bids);

  EXPECT_LE(check_cyclic_budget_balance(outcome).max_cycle_imbalance, 1e-7);
  EXPECT_TRUE(check_individual_rationality(game, outcome).holds(1e-7));
  const EfficiencyReport eff = check_efficiency(game, bids, outcome);
  EXPECT_TRUE(eff.certified_optimal);
  EXPECT_NEAR(eff.outcome_welfare, eff.optimal_welfare, 1e-7);
}

TEST_P(MechanismPropertyTest, M4EfficientRationalBalancedTruthful) {
  gen::GameConfig config;
  const Game game = gen::random_ba_game(12, 2, config, rng_);
  // d must dominate the largest possible cycle welfare so release times
  // never clamp at 0; in the clamped regime the delay bonus saturates and
  // the truthfulness telescoping breaks (bench/e6_delays measures this).
  const M4DelayedAuction m4(/*delay_factor=*/200.0);
  const Outcome outcome = m4.run_truthful(game);

  EXPECT_LE(check_cyclic_budget_balance(outcome).max_cycle_imbalance, 1e-7);
  EXPECT_TRUE(check_individual_rationality(game, outcome).holds(1e-7));
  const EfficiencyReport eff =
      check_efficiency(game, game.truthful_bids(), outcome);
  EXPECT_TRUE(eff.certified_optimal);

  // Delays in range and monotone in cycle welfare direction.
  for (const PricedCycle& pc : outcome.cycles) {
    EXPECT_GE(pc.release_time, 0.0);
    EXPECT_LE(pc.release_time, 1.0);
    EXPECT_GE(pc.delay_bonus, 0.0);
  }

  // The core lemma of Theorem 5: with the delay bonus, every
  // participant's per-cycle utility equals SW((v_v, b_{-v}), f_i) — i.e.
  // it does not depend on the participant's own bid given the cycle.
  // (Truthfulness of the cycle *selection* is exact only on single-cycle
  // instances — see M4TruthfulOnSingleCycleInstances below and the
  // honesty measurements in bench/e3_truthfulness.)
  const BidVector bids = game.truthful_bids();
  for (const PricedCycle& pc : outcome.cycles) {
    for (PlayerId v : game.cycle_players(pc.cycle)) {
      const double utility = game.player_cycle_value(v, bids, pc.cycle) -
                             pc.price_of(v) + pc.delay_bonus;
      // Under truthful bids (v_v, b_{-v}) = b, so the identity reads
      // u_v(f_i) = SW(b, f_i).
      EXPECT_NEAR(utility, game.cycle_welfare(bids, pc.cycle), 1e-9)
          << "seed " << GetParam() << " player " << v;
    }
  }
}

TEST_P(MechanismPropertyTest, M4TruthfulOnSingleCycleInstances) {
  // On a directed ring there is exactly one candidate cycle, so bid
  // deviations cannot steer the circulation between alternatives and the
  // paper's truthfulness argument is airtight.
  const auto n = static_cast<NodeId>(rng_.uniform_int(3, 8));
  Game game(n);
  for (NodeId u = 0; u < n; ++u) {
    const auto v = static_cast<NodeId>((u + 1) % n);
    if (rng_.bernoulli(0.5)) {
      game.add_edge(u, v, rng_.uniform_int(5, 50), 0.0,
                    rng_.uniform_real(0.005, 0.05));
    } else {
      game.add_edge(u, v, rng_.uniform_int(5, 50),
                    -rng_.uniform_real(0.0, 0.004), 0.0);
    }
  }
  const M4DelayedAuction m4(/*delay_factor=*/100.0);
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    const DeviationReport report = probe_truthfulness(
        m4, game, v, {0.0, 0.25, 0.5, 0.75, 0.9, 1.1, 1.5});
    EXPECT_LE(report.gain(), 1e-9)
        << "seed " << GetParam() << " player " << v << " gains via x"
        << report.best_scale;
  }
}

// ------------------------------------------------------------------ M2

TEST_P(MechanismPropertyTest, M2EfficientRationalBalancedForBuyers) {
  gen::GameConfig config;
  config.seller_min = 0.0;  // M2's model: sellers accept any reward
  config.seller_max = 0.0;
  const Game game = gen::random_ba_game(10, 2, config, rng_);
  const BidVector bids = game.truthful_bids();
  const Outcome outcome = M2Vcg().run(game, bids);

  EXPECT_LE(check_cyclic_budget_balance(outcome).max_cycle_imbalance, 1e-7);
  EXPECT_TRUE(check_individual_rationality(game, outcome).holds(1e-7));
  const EfficiencyReport eff = check_efficiency(game, bids, outcome);
  EXPECT_TRUE(eff.certified_optimal);
}

// ------------------------------------------------------------------ M1

TEST_P(MechanismPropertyTest, M1RationalBalancedWithBoundedBuyerRate) {
  const double p_hat = 0.002, k = 3.0;
  gen::GameConfig config;
  // Self-selection (Theorem 2): participants joined knowing the fee
  // schedule, so buyer values exceed k*p_hat and seller costs stay below
  // p_hat.
  config.buyer_min = k * p_hat + 0.001;
  config.buyer_max = 0.02;
  config.seller_min = 0.0;
  config.seller_max = p_hat - 1e-4;
  const Game game = gen::random_ba_game(14, 2, config, rng_);
  const Outcome outcome =
      M1FixedFee(p_hat, k).run(game, game.truthful_bids());

  EXPECT_LE(check_cyclic_budget_balance(outcome).max_cycle_imbalance, 1e-7);
  EXPECT_TRUE(check_individual_rationality(game, outcome).holds(1e-7));

  // Every depleted edge is charged at a rate <= k * p_hat; every cycle
  // has at least one depleted edge per k indifferent edges.
  for (const PricedCycle& pc : outcome.cycles) {
    int depleted = 0, indifferent = 0;
    for (EdgeId e : pc.cycle.edges) {
      (game.is_depleted(e) ? depleted : indifferent)++;
    }
    ASSERT_GT(depleted, 0);
    EXPECT_LT(static_cast<double>(indifferent),
              k * static_cast<double>(depleted) + 1e-9);
    const double charge_per_buyer_edge =
        static_cast<double>(indifferent) * p_hat *
        static_cast<double>(pc.cycle.amount) / static_cast<double>(depleted);
    EXPECT_LE(charge_per_buyer_edge,
              k * p_hat * static_cast<double>(pc.cycle.amount) + 1e-9);
  }
}

// -------------------------------------------------- §4 extensions

TEST_P(MechanismPropertyTest, M5RationalBalancedWithHeterogeneousDelays) {
  gen::GameConfig config;
  const Game game = gen::random_ba_game(12, 2, config, rng_);
  std::vector<double> factors;
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    factors.push_back(rng_.uniform_real(50.0, 400.0));
  }
  const M5VariableDelay m5(factors);
  const Outcome outcome = m5.run_truthful(game);

  EXPECT_LE(check_cyclic_budget_balance(outcome).max_cycle_imbalance, 1e-7);
  EXPECT_TRUE(check_individual_rationality(game, outcome).holds(1e-7));
  const EfficiencyReport eff =
      check_efficiency(game, game.truthful_bids(), outcome);
  EXPECT_TRUE(eff.certified_optimal);
  for (const PricedCycle& pc : outcome.cycles) {
    EXPECT_GE(pc.release_time, 0.0);
    EXPECT_LE(pc.release_time, 1.0);
    // Per-player bonuses follow each player's own factor.
    for (const PlayerPrice& bonus : pc.player_delay_bonuses) {
      EXPECT_NEAR(bonus.price,
                  factors[static_cast<std::size_t>(bonus.player)] *
                      (1.0 - pc.release_time),
                  1e-9);
    }
  }
}

TEST_P(MechanismPropertyTest, M2MinFeePaysTheFloorOrDropsTheCycle) {
  const double floor = 0.0015;
  gen::GameConfig config;
  config.seller_min = 0.0;  // M2's non-strategic-seller model
  config.seller_max = 0.0;
  const Game game = gen::random_ba_game(10, 2, config, rng_);
  const M2MinFee minfee(floor);
  const Outcome outcome = minfee.run_truthful(game);

  EXPECT_LE(check_cyclic_budget_balance(outcome).max_cycle_imbalance, 1e-7);
  EXPECT_TRUE(check_individual_rationality(game, outcome).holds(1e-7));
  // Every surviving cycle pays each *pure seller* (no buyer stake in the
  // cycle — buyers fund the floor and may net less) at least the floor
  // per owned tail edge.
  const BidVector bids = game.truthful_bids();
  for (const PricedCycle& pc : outcome.cycles) {
    for (PlayerId v : game.cycle_players(pc.cycle)) {
      bool has_buyer_stake = false;
      int tails = 0;
      for (EdgeId e : pc.cycle.edges) {
        tails += (game.edge(e).from == v);
        if (game.edge(e).to == v &&
            bids.head[static_cast<std::size_t>(e)] > 0.0) {
          has_buyer_stake = true;
        }
      }
      if (has_buyer_stake) continue;
      EXPECT_GE(-pc.price_of(v),
                floor * static_cast<double>(pc.cycle.amount) *
                        static_cast<double>(tails) -
                    1e-7)
          << "seed " << GetParam() << " player " << v;
    }
  }
}

// Sanity on every mechanism: outputs are feasible circulations that
// decompose exactly into the reported cycles.
TEST_P(MechanismPropertyTest, OutcomeCirculationMatchesCycles) {
  gen::GameConfig config;
  const Game game = gen::random_ba_game(12, 2, config, rng_);
  const std::vector<const Mechanism*> mechanisms = [] {
    static const M3DoubleAuction m3;
    static const M4DelayedAuction m4(1.0);
    static const M2Vcg m2;
    static const M1FixedFee m1(0.002, 3.0);
    return std::vector<const Mechanism*>{&m3, &m4, &m2, &m1};
  }();
  const flow::Graph g = game.build_graph(game.truthful_bids());
  for (const Mechanism* mech : mechanisms) {
    const Outcome outcome = mech->run_truthful(game);
    EXPECT_TRUE(flow::is_feasible(g, outcome.circulation))
        << mech->name();
    std::vector<flow::CycleFlow> cycles;
    cycles.reserve(outcome.cycles.size());
    for (const PricedCycle& pc : outcome.cycles) cycles.push_back(pc.cycle);
    EXPECT_EQ(flow::recompose(g, cycles), outcome.circulation)
        << mech->name();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MechanismPropertyTest,
                         ::testing::Range<std::uint64_t>(1000, 1025));

}  // namespace
}  // namespace musketeer::core
