#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"

namespace musketeer::core {
namespace {

// The §4 pattern instance (see examples/collusion_demo).
Game collusion_game() {
  Game game(4);
  game.add_edge(1, 0, 20, 0.0, 0.015);
  game.add_edge(3, 2, 20, 0.0, 0.04);
  game.add_edge(2, 1, 20, -0.001, 0.0);
  game.add_edge(0, 3, 20, -0.001, 0.0);
  return game;
}

TEST(StrategyTest, WithholdZeroesHeadBidOnly) {
  const Game game = collusion_game();
  const BidVector truthful = game.truthful_bids();
  const BidVector withheld = withhold_edge_bid(game, truthful, 0);
  EXPECT_EQ(withheld.head[0], 0.0);
  EXPECT_EQ(withheld.tail[0], truthful.tail[0]);
  for (std::size_t e = 1; e < truthful.size(); ++e) {
    EXPECT_EQ(withheld.head[e], truthful.head[e]);
  }
}

TEST(StrategyTest, CollusionProbeFindsThePaperPattern) {
  const Game game = collusion_game();
  const M3DoubleAuction m3;
  const CollusionReport report =
      probe_collusion(m3, game, 0, 1, {0.0, 0.5, 1.0});
  EXPECT_GT(report.gain(), 1e-6);
  EXPECT_GE(report.best_joint_utility, report.honest_joint_utility);
  EXPECT_EQ(report.first, 0);
  EXPECT_EQ(report.second, 1);
}

TEST(StrategyTest, HonestBaselineIsIncludedInSearch) {
  // The probe never reports a best worse than honest.
  const Game game = collusion_game();
  const M4DelayedAuction m4(100.0);
  const CollusionReport report =
      probe_collusion(m4, game, 2, 3, {0.0, 0.25, 0.75, 1.0});
  EXPECT_GE(report.gain(), -1e-12);
}

TEST(StrategyTest, NoGainWhenPlayersHaveNoStakes) {
  Game game(4);
  game.add_edge(0, 1, 10, 0.0, 0.02);
  game.add_edge(1, 0, 10, 0.0, 0.0);
  const M3DoubleAuction m3;
  // Players 2 and 3 have no edges at all.
  const CollusionReport report =
      probe_collusion(m3, game, 2, 3, {0.0, 0.5, 1.0});
  EXPECT_NEAR(report.gain(), 0.0, 1e-12);
  EXPECT_NEAR(report.honest_joint_utility, 0.0, 1e-12);
}

TEST(StrategyDeathTest, RejectsSelfCollusion) {
  const Game game = collusion_game();
  const M3DoubleAuction m3;
  EXPECT_DEATH(probe_collusion(m3, game, 1, 1, {1.0}), "first != second");
}

}  // namespace
}  // namespace musketeer::core
