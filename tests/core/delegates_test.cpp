#include "core/delegates.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::core {
namespace {

TEST(SharingTest, SplitReconstructRoundTrip) {
  util::Rng rng(1);
  for (std::uint64_t secret : {0ULL, 1ULL, 424242ULL, ~0ULL}) {
    for (int k : {2, 3, 7}) {
      const auto shares = sharing::split(secret, k, rng);
      ASSERT_EQ(shares.size(), static_cast<std::size_t>(k));
      EXPECT_EQ(sharing::reconstruct(shares), secret);
    }
  }
}

TEST(SharingTest, RateEncodingRoundTrips) {
  for (double rate : {0.0, 0.03, -0.005, 0.0999, -0.0999, 1e-9}) {
    EXPECT_NEAR(sharing::decode_rate(sharing::encode_rate(rate)), rate,
                1e-9);
  }
}

TEST(SharingTest, IndividualSharesLookUniform) {
  // Share #1 of a fixed secret is raw RNG output; share #0 is secret
  // minus random — both marginally uniform. Check the top bit frequency
  // over many splits of the SAME secret.
  util::Rng rng(2);
  int top_bits = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const auto shares = sharing::split(12345, 2, rng);
    top_bits += (shares[0] >> 63) & 1;
  }
  EXPECT_NEAR(static_cast<double>(top_bits) / trials, 0.5, 0.05);
}

TEST(SharingTest, SharesOfDifferentSecretsAreIndistinguishableMarginally) {
  // The mean of share #0 must not reveal the secret: compare the top-bit
  // frequency of shares of two very different secrets.
  util::Rng rng(3);
  auto top_bit_rate = [&](std::uint64_t secret) {
    int bits = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
      bits += (sharing::split(secret, 3, rng)[0] >> 63) & 1;
    }
    return static_cast<double>(bits) / trials;
  };
  EXPECT_NEAR(top_bit_rate(0), top_bit_rate(~0ULL), 0.06);
}

TEST(DelegateCommitteeTest, ReconstructsTheSubmittedGame) {
  util::Rng rng(4);
  DelegateCommittee committee(3, 3, rng);
  committee.submit_edge(0, 1, 10, 0.0, 0.03);
  committee.submit_edge(1, 2, 12, -0.005, 0.0);
  committee.submit_edge(2, 0, 15, 0.0, 0.0);
  const Game game = committee.reconstruct_game();
  ASSERT_EQ(game.num_edges(), 3);
  EXPECT_EQ(game.edge(0).capacity, 10);
  EXPECT_NEAR(game.edge(0).head_valuation, 0.03, 1e-9);
  EXPECT_NEAR(game.edge(1).tail_valuation, -0.005, 1e-9);
}

TEST(DelegateCommitteeTest, RunMatchesPlaintextMechanism) {
  util::Rng game_rng(5);
  gen::GameConfig config;
  const Game plaintext = gen::random_ba_game(12, 2, config, game_rng);

  util::Rng share_rng(6);
  DelegateCommittee committee(4, plaintext.num_players(), share_rng);
  for (EdgeId e = 0; e < plaintext.num_edges(); ++e) {
    const GameEdge& edge = plaintext.edge(e);
    committee.submit_edge(edge.from, edge.to, edge.capacity,
                          edge.tail_valuation, edge.head_valuation);
  }
  const M3DoubleAuction m3;
  const Outcome via_committee = committee.run(m3);
  const Outcome direct = m3.run_truthful(plaintext);
  // Fixed-point encoding is exact for generator outputs at 1e-9
  // granularity up to rounding; welfare must agree to that precision.
  EXPECT_EQ(via_committee.circulation, direct.circulation);
  EXPECT_NEAR(via_committee.realized_welfare(committee.reconstruct_game()),
              direct.realized_welfare(plaintext), 1e-6);
}

TEST(DelegateCommitteeTest, ViewExposesOnlyShares) {
  util::Rng rng(7);
  DelegateCommittee committee(3, 2, rng);
  committee.submit_edge(0, 1, 1000, 0.0, 0.05);
  // Sum of all delegates' capacity shares reconstructs; single views are
  // (overwhelmingly likely) not the capacity itself.
  std::uint64_t sum = 0;
  for (int d = 0; d < 3; ++d) {
    sum += committee.view(d, 0).capacity_share;
  }
  EXPECT_EQ(sum, 1000u);
}

TEST(DelegateCommitteeDeathTest, RejectsSingleDelegate) {
  util::Rng rng(8);
  EXPECT_DEATH(DelegateCommittee(1, 2, rng), "single delegate");
}

}  // namespace
}  // namespace musketeer::core
