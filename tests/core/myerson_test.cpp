#include "core/myerson.hpp"

#include <gtest/gtest.h>

#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/properties.hpp"
#include "flow/solver.hpp"

namespace musketeer::core {
namespace {

TEST(MyersonTest, InstanceShape) {
  const MyersonInstance inst = make_myerson_instance(0.02, 0.05);
  EXPECT_EQ(inst.game.num_players(), 3);
  EXPECT_EQ(inst.game.num_edges(), 3);
  EXPECT_DOUBLE_EQ(inst.game.edge(inst.seller_edge).tail_valuation, -0.02);
  EXPECT_DOUBLE_EQ(inst.game.edge(inst.buyer_edge).head_valuation, 0.05);
}

TEST(MyersonTest, OnlyNonZeroCirculationIsTheTriangle) {
  const MyersonInstance inst = make_myerson_instance(0.02, 0.05);
  const flow::Graph g = inst.game.build_graph(inst.game.truthful_bids());
  const flow::Circulation f = flow::solve_max_welfare(g);
  EXPECT_EQ(f, (flow::Circulation{1, 1, 1}));
}

TEST(MyersonTest, EfficientMechanismTradesIffBuyerValuesMore) {
  // Gains from trade -> the welfare-maximizing circulation trades.
  {
    const MyersonInstance inst = make_myerson_instance(0.02, 0.05);
    const Outcome outcome = M3DoubleAuction().run_truthful(inst.game);
    EXPECT_EQ(outcome.cycles.size(), 1u);
  }
  // No gains from trade -> no trade.
  {
    const MyersonInstance inst = make_myerson_instance(0.05, 0.02);
    const Outcome outcome = M3DoubleAuction().run_truthful(inst.game);
    EXPECT_TRUE(outcome.cycles.empty());
  }
}

TEST(MyersonTest, M3SatisfiesEverythingButTruthfulnessHere) {
  const MyersonInstance inst = make_myerson_instance(0.02, 0.05);
  const M3DoubleAuction m3;
  const Outcome outcome = m3.run_truthful(inst.game);
  EXPECT_TRUE(check_cyclic_budget_balance(outcome).holds());
  EXPECT_TRUE(check_individual_rationality(inst.game, outcome).holds());
  // Theorem 1 bites through truthfulness: the buyer gains by shading.
  const DeviationReport report = probe_truthfulness(
      m3, inst.game, inst.buyer, {0.5, 0.6, 0.7, 0.8, 0.9});
  EXPECT_GT(report.gain(), 0.0);
}

TEST(MyersonTest, M2SacrificesSellerRationalityHere) {
  // M2 ignores the seller's reservation value: it trades even when the
  // seller's cost exceeds the buyer's value, leaving the seller with
  // negative utility — the double-auction impossibility surfacing as a
  // seller-IR violation in the buyers-only relaxation.
  const MyersonInstance inst = make_myerson_instance(0.05, 0.02);
  const Outcome outcome = M2Vcg().run_truthful(inst.game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_LT(outcome.player_utility(inst.game, inst.seller), 0.0);
}

TEST(MyersonTest, M4BuysTruthfulnessWithDelay) {
  const MyersonInstance inst = make_myerson_instance(0.02, 0.05, 10);
  const M4DelayedAuction m4(1.0);
  for (PlayerId v = 0; v < inst.game.num_players(); ++v) {
    const DeviationReport report = probe_truthfulness(
        m4, inst.game, v, {0.0, 0.3, 0.5, 0.8, 0.9, 1.1});
    EXPECT_LE(report.gain(), 1e-9) << "player " << v;
  }
  const Outcome outcome = m4.run_truthful(inst.game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_GT(outcome.cycles[0].release_time, 0.0);  // the delay is the cost
}

TEST(MyersonTest, EfficientTradeHelper) {
  EXPECT_TRUE(efficient_trade(0.02, 0.05));
  EXPECT_FALSE(efficient_trade(0.05, 0.02));
  EXPECT_FALSE(efficient_trade(0.03, 0.03));
}

}  // namespace
}  // namespace musketeer::core
