#include "core/m5_variable_delay.hpp"

#include <gtest/gtest.h>

#include "core/m4_delayed.hpp"
#include "core/properties.hpp"

namespace musketeer::core {
namespace {

Game triangle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.005, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

TEST(M5Test, UniformFactorsReproduceM4) {
  const Game game = triangle_game();
  const M4DelayedAuction m4(2.0);
  const M5VariableDelay m5({2.0, 2.0, 2.0});
  const Outcome a = m4.run_truthful(game);
  const Outcome b = m5.run_truthful(game);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.cycles.size(); ++i) {
    EXPECT_NEAR(a.cycles[i].release_time, b.cycles[i].release_time, 1e-12);
    for (PlayerId v = 0; v < game.num_players(); ++v) {
      EXPECT_NEAR(a.cycles[i].price_of(v), b.cycles[i].price_of(v), 1e-12);
      EXPECT_NEAR(a.cycles[i].delay_bonus_of(v),
                  b.cycles[i].delay_bonus_of(v), 1e-12);
    }
  }
}

TEST(M5Test, ReleaseTimeNormalizedByMaxFactor) {
  const Game game = triangle_game();
  const M5VariableDelay m5({5.0, 1.0, 1.0});
  const Outcome outcome = m5.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  // SW = 0.25, n = 3, d_max = 5: t = 1 - (2/3)*0.25/5.
  EXPECT_NEAR(outcome.cycles[0].release_time, 1.0 - (2.0 / 3.0) * 0.05,
              1e-12);
}

TEST(M5Test, BonusesAreProportionalToOwnFactor) {
  const Game game = triangle_game();
  const M5VariableDelay m5({4.0, 2.0, 1.0});
  const Outcome outcome = m5.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  const double wait_saved = 1.0 - pc.release_time;
  EXPECT_NEAR(pc.delay_bonus_of(0), 4.0 * wait_saved, 1e-12);
  EXPECT_NEAR(pc.delay_bonus_of(1), 2.0 * wait_saved, 1e-12);
  EXPECT_NEAR(pc.delay_bonus_of(2), 1.0 * wait_saved, 1e-12);
}

TEST(M5Test, StillIndividuallyRational) {
  const Game game = triangle_game();
  const M5VariableDelay m5({3.0, 0.5, 1.5});
  const Outcome outcome = m5.run_truthful(game);
  const RationalityReport report =
      check_individual_rationality(game, outcome);
  EXPECT_TRUE(report.holds());
}

TEST(M5Test, StillCyclicBudgetBalanced) {
  // Delay bonuses are utility-side, not coin transfers: prices still sum
  // to zero per cycle.
  const Game game = triangle_game();
  const Outcome outcome = M5VariableDelay({3.0, 0.5, 1.5}).run_truthful(game);
  EXPECT_TRUE(check_cyclic_budget_balance(outcome).holds());
}

TEST(M5Test, MaxFactorPlayerIsExactlyTruthful) {
  // The paper's predicted asymmetry: only the max-d participant's
  // telescoping is exact. On a single-cycle instance, probe the max-d
  // player across deviations.
  const Game game = triangle_game();
  const M5VariableDelay m5({1.0, 8.0, 1.0});  // player 1 has d_max
  const DeviationReport report = probe_truthfulness(
      m5, game, /*player=*/1, {0.0, 0.3, 0.5, 0.8, 0.9, 1.1});
  EXPECT_LE(report.gain(), 1e-9);
}

TEST(M5Test, LowFactorPlayersCanGainByDeviating) {
  // A low-d seller under-compensated by the cycle's shared release time
  // retains a bid-dependent utility residual. Build an instance where the
  // seller's deviation changes the outcome in its favor.
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.02, 0.0);  // pricey seller
  game.add_edge(2, 0, 15, 0.0, 0.0);
  const M5VariableDelay m5({0.1, 10.0, 0.1});
  // The seller (player 1) shading its cost changes SW and the shared
  // delay, which its own small d under-rewards; check the probe finds a
  // non-negative best response (may be zero on this instance, but must
  // never crash and must report a consistent truthful baseline).
  const DeviationReport report = probe_truthfulness(
      m5, game, /*player=*/1, {0.0, 0.25, 0.5, 0.75, 1.1});
  EXPECT_GE(report.best_utility, report.truthful_utility - 1e-12);
}

TEST(M5DeathTest, ValidatesFactors) {
  EXPECT_DEATH(M5VariableDelay({}), "at least one");
  EXPECT_DEATH(M5VariableDelay({1.0, 0.0}), "positive");
  const Game game = triangle_game();
  M5VariableDelay wrong_size({1.0, 1.0});
  EXPECT_DEATH(wrong_size.run_truthful(game), "per player");
}

}  // namespace
}  // namespace musketeer::core
