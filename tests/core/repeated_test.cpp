#include "core/repeated.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"

namespace musketeer::core {
namespace {

// Single-cycle market where player 1 is the recurring buyer.
GameSampler triangle_sampler() {
  return [](util::Rng& rng) {
    Game game(3);
    game.add_edge(0, 1, 10, 0.0, rng.uniform_real(0.02, 0.04));
    game.add_edge(1, 2, 12, -rng.uniform_real(0.001, 0.004), 0.0);
    game.add_edge(2, 0, 15, 0.0, 0.0);
    return game;
  };
}

TEST(RepeatedTest, RunsAllRoundsAndReports) {
  util::Rng rng(1);
  RepeatedConfig config;
  config.rounds = 50;
  const M3DoubleAuction m3;
  const RepeatedResult result =
      run_repeated_game(m3, triangle_sampler(), {1}, config, rng);
  EXPECT_EQ(result.mean_shading_per_round.size(), 50u);
  EXPECT_EQ(result.total_utility.size(), 3u);
  ASSERT_EQ(result.learned_shading.size(), 1u);
  EXPECT_GT(result.welfare_ratio, 0.0);
  EXPECT_LE(result.welfare_ratio, 1.0 + 1e-9);
}

TEST(RepeatedTest, NoAdaptivePlayersMeansTruthfulForever) {
  util::Rng rng(2);
  RepeatedConfig config;
  config.rounds = 30;
  const M3DoubleAuction m3;
  const RepeatedResult result =
      run_repeated_game(m3, triangle_sampler(), {}, config, rng);
  EXPECT_NEAR(result.welfare_ratio, 1.0, 1e-9);
  for (double s : result.mean_shading_per_round) EXPECT_EQ(s, 1.0);
}

TEST(RepeatedTest, AdaptiveBuyerLearnsToShadeUnderM3) {
  // First-price dynamics: the buyer's learned shading factor should land
  // strictly below truthful bidding.
  util::Rng rng(3);
  RepeatedConfig config;
  config.rounds = 400;
  config.persistence = 0.9;
  const M3DoubleAuction m3;
  const RepeatedResult result =
      run_repeated_game(m3, triangle_sampler(), {1}, config, rng);
  ASSERT_EQ(result.learned_shading.size(), 1u);
  EXPECT_LT(result.learned_shading[0], 1.0);
}

TEST(RepeatedTest, TruthfulIsLearnedUnderM4WhenShadingKillsTrades) {
  // Under M4 a participant's per-cycle utility is bid-independent *given*
  // the trade, so shading can only ever lose trades. In a market where
  // deep shading (0.4/0.6) sometimes drops the bid below the seller's
  // cost, the bandit must learn a high factor.
  const GameSampler tight_market = [](util::Rng& rng) {
    Game game(3);
    game.add_edge(0, 1, 10, 0.0, rng.uniform_real(0.02, 0.03));
    game.add_edge(1, 2, 12, -rng.uniform_real(0.001, 0.015), 0.0);
    game.add_edge(2, 0, 15, 0.0, 0.0);
    return game;
  };
  util::Rng rng(4);
  RepeatedConfig config;
  config.rounds = 600;
  config.epsilon = 0.2;
  const M4DelayedAuction m4(/*delay_factor=*/10.0);
  const RepeatedResult result =
      run_repeated_game(m4, tight_market, {1}, config, rng);
  ASSERT_EQ(result.learned_shading.size(), 1u);
  EXPECT_GE(result.learned_shading[0], 0.8);
}

TEST(RepeatedTest, CarryoverBoostsPersistentDemand) {
  // With persistence 1 and a mechanism that never trades (shading to 0
  // by an adaptive rival is irrelevant here), losing buyers' urgency
  // compounds. Use a game whose cycle is never profitable so demand
  // always persists, and check it caps rather than overflowing the valid
  // bid range — the run must simply not crash and stay valid.
  util::Rng rng(5);
  RepeatedConfig config;
  config.rounds = 40;
  config.persistence = 1.0;
  const auto sampler = [](util::Rng&) {
    Game game(3);
    game.add_edge(0, 1, 10, 0.0, 0.01);
    game.add_edge(1, 2, 12, -0.09, 0.0);  // blocking seller cost
    game.add_edge(2, 0, 15, 0.0, 0.0);
    return game;
  };
  const M3DoubleAuction m3;
  const RepeatedResult result =
      run_repeated_game(m3, sampler, {}, config, rng);
  // Demand compounds up to the cap but the cycle stays unprofitable
  // (0.09 seller cost > capped < 0.1 buyer value - 0.09 seller... the
  // boosted bid tops out just below 0.1, eventually exceeding 0.09).
  EXPECT_EQ(result.total_utility.size(), 3u);
}

TEST(RepeatedTest, DeterministicGivenSeed) {
  RepeatedConfig config;
  config.rounds = 60;
  const M3DoubleAuction m3;
  util::Rng a(7), b(7);
  const RepeatedResult ra =
      run_repeated_game(m3, triangle_sampler(), {1}, config, a);
  const RepeatedResult rb =
      run_repeated_game(m3, triangle_sampler(), {1}, config, b);
  EXPECT_EQ(ra.mean_shading_per_round, rb.mean_shading_per_round);
  EXPECT_EQ(ra.learned_shading, rb.learned_shading);
}

}  // namespace
}  // namespace musketeer::core
