#include "core/m2_minfee.hpp"

#include <gtest/gtest.h>

#include "core/m2_vcg.hpp"
#include "core/properties.hpp"

namespace musketeer::core {
namespace {

// Single feasible cycle: vanilla M2 collects zero fees (no competition),
// so the floor must be funded by topping up the buyer.
Game single_cycle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, 0.0, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

TEST(M2MinFeeTest, VanillaM2PaysSellersNothingHere) {
  const Game game = single_cycle_game();
  const Outcome outcome = M2Vcg().run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_NEAR(outcome.cycles[0].price_of(2), 0.0, 1e-12);
}

TEST(M2MinFeeTest, FloorIsFundedByBuyerTopUp) {
  const Game game = single_cycle_game();
  const double floor = 0.002;
  const Outcome outcome = M2MinFee(floor).run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  const double amount = static_cast<double>(pc.cycle.amount);
  // All three participants are uncharged tails of one cycle edge each
  // (VCG collects nothing without competition), so each is owed the
  // floor; the buyer (player 1) funds all three top-ups and nets
  // 3*floor - floor = 2*floor per 10 units.
  EXPECT_NEAR(pc.price_of(0), -floor * amount, 1e-9);
  EXPECT_NEAR(pc.price_of(2), -floor * amount, 1e-9);
  EXPECT_NEAR(pc.price_of(1), 2 * floor * amount, 1e-9);
  EXPECT_NEAR(pc.budget_imbalance(), 0.0, 1e-9);
}

TEST(M2MinFeeTest, StaysWithinBuyerBids) {
  const Game game = single_cycle_game();
  const Outcome outcome = M2MinFee(0.002).run_truthful(game);
  const RationalityReport report =
      check_individual_rationality(game, outcome);
  EXPECT_TRUE(report.holds(1e-9));
}

TEST(M2MinFeeTest, DropsCyclesThatCannotFundTheFloor) {
  // Buyer bid 0.004/unit; three uncharged tails at floor 0.002 need
  // 0.006/unit — unaffordable, so the cycle must be dropped entirely.
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.004);
  game.add_edge(1, 2, 12, 0.0, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  const Outcome outcome = M2MinFee(0.002).run_truthful(game);
  EXPECT_TRUE(outcome.cycles.empty());
  EXPECT_EQ(flow::total_volume(outcome.circulation), 0);
}

TEST(M2MinFeeTest, ZeroFloorReducesToM2) {
  const Game game = single_cycle_game();
  const Outcome a = M2Vcg().run_truthful(game);
  const Outcome b = M2MinFee(0.0).run_truthful(game);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.cycles.size(); ++i) {
    for (PlayerId v = 0; v < game.num_players(); ++v) {
      EXPECT_NEAR(a.cycles[i].price_of(v), b.cycles[i].price_of(v), 1e-12);
    }
  }
}

TEST(M2MinFeeTest, CompetitiveFeesAlreadyAboveFloorAreUntouched) {
  // Two competing buyers: the winner's VCG charge funds seller fees above
  // a small floor, so no top-up happens.
  Game game(4);
  game.add_edge(2, 3, 5, 0.0, 0.0);
  game.add_edge(3, 0, 10, 0.0, 0.04);
  game.add_edge(0, 2, 10, 0.0, 0.0);
  game.add_edge(3, 1, 10, 0.0, 0.035);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  const Outcome vanilla = M2Vcg().run_truthful(game);
  const Outcome floored = M2MinFee(0.001).run_truthful(game);
  ASSERT_EQ(vanilla.cycles.size(), floored.cycles.size());
  ASSERT_EQ(vanilla.cycles.size(), 1u);
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    EXPECT_NEAR(vanilla.cycles[0].price_of(v),
                floored.cycles[0].price_of(v), 1e-9);
  }
}

TEST(M2MinFeeTest, CyclicBudgetBalancePreserved) {
  const Game game = single_cycle_game();
  for (double floor : {0.0005, 0.002, 0.005}) {
    const Outcome outcome = M2MinFee(floor).run_truthful(game);
    EXPECT_TRUE(check_cyclic_budget_balance(outcome).holds(1e-9))
        << "floor " << floor;
  }
}

}  // namespace
}  // namespace musketeer::core
