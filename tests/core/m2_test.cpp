#include "core/m2_vcg.hpp"

#include <gtest/gtest.h>

#include "core/properties.hpp"
#include "flow/solve_context.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::core {
namespace {

// Buyer 1 on 0->1; two competing return paths exist, so removing the
// buyer changes nothing for others but removing an intermediary reroutes.
Game diamond_game() {
  Game game(4);
  game.add_edge(0, 1, 10, 0.0, 0.03);  // depleted, buyer 1
  game.add_edge(1, 2, 10, 0.0, 0.0);   // via 2
  game.add_edge(2, 0, 10, 0.0, 0.0);
  game.add_edge(1, 3, 10, 0.0, 0.0);   // via 3
  game.add_edge(3, 0, 10, 0.0, 0.0);
  return game;
}

TEST(M2Test, SingleBuyerWithNoCompetitionPaysZero) {
  // Removing the only buyer leaves zero welfare either way, so the VCG
  // externality is zero: the buyer rides free (the §4 seller-fee
  // limitation).
  const Game game = diamond_game();
  const M2Vcg m2;
  const std::vector<double> prices =
      m2.vcg_prices(game, game.truthful_bids());
  EXPECT_NEAR(prices[1], 0.0, 1e-9);
}

TEST(M2Test, CompetingBuyersPayTheirExternality) {
  // Two buyers compete for one unit of shared seller capacity.
  Game game(4);
  const double high = 0.04, low = 0.01;
  game.add_edge(2, 3, 5, 0.0, 0.0);    // shared seller edge
  game.add_edge(3, 0, 10, 0.0, high);  // buyer 0
  game.add_edge(0, 2, 10, 0.0, 0.0);
  game.add_edge(3, 1, 10, 0.0, low);   // buyer 1
  game.add_edge(1, 2, 10, 0.0, 0.0);
  const M2Vcg m2;
  const std::vector<double> prices =
      m2.vcg_prices(game, game.truthful_bids());
  // Winner (buyer 0) pays what the loser would have got: 5 * low.
  EXPECT_NEAR(prices[0], 5 * low, 1e-9);
  EXPECT_NEAR(prices[1], 0.0, 1e-9);
}

TEST(M2Test, TruthfulForBuyers) {
  Game game(4);
  game.add_edge(2, 3, 5, 0.0, 0.0);
  game.add_edge(3, 0, 10, 0.0, 0.04);
  game.add_edge(0, 2, 10, 0.0, 0.0);
  game.add_edge(3, 1, 10, 0.0, 0.01);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  const M2Vcg m2;
  for (PlayerId buyer : {0, 1}) {
    const DeviationReport report = probe_truthfulness(
        m2, game, buyer, {0.0, 0.2, 0.5, 0.8, 1.2, 1.5, 2.0});
    EXPECT_LE(report.gain(), 1e-9) << "buyer " << buyer;
  }
}

TEST(M2Test, SellerTailBidsAreIgnored) {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 10, -0.09, 0.0);  // exorbitant seller demand
  game.add_edge(2, 0, 10, 0.0, 0.0);
  const Outcome outcome = M2Vcg().run_truthful(game);
  // M2 treats sellers as non-strategic: the cycle still runs.
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_EQ(outcome.cycles[0].cycle.amount, 10);
}

TEST(M2Test, CollectedFeesGoToSellers) {
  Game game(4);
  game.add_edge(2, 3, 5, 0.0, 0.0);
  game.add_edge(3, 0, 10, 0.0, 0.04);
  game.add_edge(0, 2, 10, 0.0, 0.0);
  game.add_edge(3, 1, 10, 0.0, 0.01);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  const Outcome outcome = M2Vcg().run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  EXPECT_NEAR(pc.budget_imbalance(), 0.0, 1e-9);
  EXPECT_GT(pc.price_of(0), 0.0);   // winning buyer pays
  EXPECT_LT(pc.price_of(2), 0.0);   // sellers receive
  EXPECT_LT(pc.price_of(3), 0.0);
}

TEST(M2Test, IndividualRationalityForBuyers) {
  Game game(4);
  game.add_edge(2, 3, 5, 0.0, 0.0);
  game.add_edge(3, 0, 10, 0.0, 0.04);
  game.add_edge(0, 2, 10, 0.0, 0.0);
  game.add_edge(3, 1, 10, 0.0, 0.01);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  const Outcome outcome = M2Vcg().run_truthful(game);
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    EXPECT_GE(outcome.player_utility(game, v), -1e-9) << "player " << v;
  }
}

TEST(M2Test, EfficiencyUnderReportedBids) {
  const Game game = diamond_game();
  const BidVector bids = game.truthful_bids();
  const Outcome outcome = M2Vcg().run(game, bids);
  const EfficiencyReport report = check_efficiency(game, bids, outcome);
  EXPECT_TRUE(report.certified_optimal);
  EXPECT_NEAR(report.outcome_welfare, report.optimal_welfare, 1e-9);
}

TEST(M2Test, PricesBitIdenticalThroughReusedContext) {
  // The workspace-reuse equivalence bar extends to prices: a context
  // that has been through many unrelated games must yield exactly the
  // doubles a fresh context does, masked exclusion solves included.
  util::Rng rng(0xBEEF);
  gen::GameConfig config;
  config.depleted_share = 0.35;
  const M2Vcg m2;
  flow::SolveContext warm;
  for (int round = 0; round < 10; ++round) {
    const core::Game game =
        gen::random_ba_game(12 + 3 * round, 2, config, rng);
    const core::BidVector bids = game.truthful_bids();
    const std::vector<double> reused = m2.vcg_prices(warm, game, bids);
    flow::SolveContext fresh;
    const std::vector<double> expected = m2.vcg_prices(fresh, game, bids);
    ASSERT_EQ(reused.size(), expected.size());
    for (std::size_t v = 0; v < expected.size(); ++v) {
      EXPECT_EQ(reused[v], expected[v]) << "round " << round << " player " << v;
    }
    // And the legacy (thread-local context) entry point agrees too.
    const std::vector<double> legacy = m2.vcg_prices(game, bids);
    EXPECT_EQ(legacy, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace musketeer::core
