#include <gtest/gtest.h>

#include "core/m1_fixed_fee.hpp"
#include "core/properties.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::core {
namespace {

TEST(M1SelfSelectionTest, FiltersByThresholds) {
  Game game(4);
  game.add_edge(0, 1, 10, 0.0, 0.01);    // buyer above k*p = 0.006: stays
  game.add_edge(1, 2, 10, 0.0, 0.004);   // buyer below: leaves
  game.add_edge(2, 3, 10, -0.001, 0.0);  // seller cost < p = 0.002: stays
  game.add_edge(3, 0, 10, -0.005, 0.0);  // seller cost > p: leaves
  const Game filtered = m1_self_selected(game, 0.002, 3.0);
  ASSERT_EQ(filtered.num_edges(), 2);
  EXPECT_DOUBLE_EQ(filtered.edge(0).head_valuation, 0.01);
  EXPECT_DOUBLE_EQ(filtered.edge(1).tail_valuation, -0.001);
}

TEST(M1SelfSelectionTest, FreeCapacityAlwaysJoins) {
  Game game(2);
  game.add_edge(0, 1, 10, 0.0, 0.0);  // indifferent, zero cost
  const Game filtered = m1_self_selected(game, 0.002, 3.0);
  EXPECT_EQ(filtered.num_edges(), 1);
}

TEST(M1SelfSelectionTest, BoundaryValuesJoin) {
  Game game(2);
  game.add_edge(0, 1, 10, 0.0, 0.006);   // exactly k*p
  game.add_edge(1, 0, 10, -0.002, 0.0);  // exactly p
  const Game filtered = m1_self_selected(game, 0.002, 3.0);
  EXPECT_EQ(filtered.num_edges(), 2);
}

TEST(M1SelfSelectionTest, GuaranteesIrOnArbitraryGames) {
  // Theorem 2's real statement: run M1 on the self-selected participants
  // and IR holds for everyone who joined — for ANY underlying game.
  util::Rng rng(606);
  const double p = 0.002, k = 3.0;
  for (int trial = 0; trial < 10; ++trial) {
    gen::GameConfig config;  // seller costs may exceed p; buyers may be low
    config.buyer_min = 0.001;
    config.seller_max = 0.008;
    const Game game = gen::random_ba_game(16, 2, config, rng);
    const Game participants = m1_self_selected(game, p, k);
    const Outcome outcome =
        M1FixedFee(p, k).run_truthful(participants);
    EXPECT_TRUE(check_individual_rationality(participants, outcome).holds(1e-9))
        << "trial " << trial;
    EXPECT_TRUE(check_cyclic_budget_balance(outcome).holds(1e-9));
  }
}

TEST(M1SelfSelectionTest, PlayersWithoutEdgesAreHarmless) {
  Game game(5);
  game.add_edge(0, 1, 10, 0.0, 0.01);
  const Game filtered = m1_self_selected(game, 0.002, 3.0);
  EXPECT_EQ(filtered.num_players(), 5);
  const Outcome outcome = M1FixedFee(0.002, 3.0).run_truthful(filtered);
  EXPECT_TRUE(outcome.cycles.empty());  // no return path
}

}  // namespace
}  // namespace musketeer::core
