#include "core/equilibrium.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"

namespace musketeer::core {
namespace {

Game triangle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.005, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

TEST(EquilibriumTest, TruthfulMechanismConvergesToTruthfulProfile) {
  const Game game = triangle_game();
  const M4DelayedAuction m4(10.0);
  const EquilibriumResult result = best_response_dynamics(m4, game);
  EXPECT_TRUE(result.converged);
  // On a single-cycle instance no deviation strictly improves, so the
  // initial truthful profile is already an equilibrium.
  for (double s : result.strategy) EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_NEAR(result.welfare_ratio(), 1.0, 1e-12);
  EXPECT_EQ(result.passes, 1);
}

TEST(EquilibriumTest, M3EquilibriumShadesBids) {
  const Game game = triangle_game();
  const M3DoubleAuction m3;
  const EquilibriumResult result = best_response_dynamics(m3, game);
  EXPECT_TRUE(result.converged);
  // The buyer (player 1) strictly prefers a lower scale.
  EXPECT_LT(result.strategy[1], 1.0);
}

TEST(EquilibriumTest, M3EquilibriumKeepsTradeAliveHere) {
  // Shading cannot go so deep that the cycle dies: the buyer would lose
  // its whole surplus. Welfare at equilibrium stays at the optimum for
  // this instance (prices shift, allocation doesn't).
  const Game game = triangle_game();
  const EquilibriumResult result =
      best_response_dynamics(M3DoubleAuction(), game);
  EXPECT_NEAR(result.welfare_ratio(), 1.0, 1e-9);
}

TEST(EquilibriumTest, ReportsProfileBids) {
  const Game game = triangle_game();
  const EquilibriumResult result =
      best_response_dynamics(M3DoubleAuction(), game);
  ASSERT_EQ(result.bids.size(), static_cast<std::size_t>(game.num_edges()));
  // Bids are the truthful stakes scaled by the final strategies.
  EXPECT_NEAR(result.bids.head[0], 0.03 * result.strategy[1], 1e-12);
}

TEST(EquilibriumTest, RespectsPassBudget) {
  const Game game = triangle_game();
  BestResponseConfig config;
  config.max_passes = 1;
  const EquilibriumResult result =
      best_response_dynamics(M3DoubleAuction(), game, config);
  EXPECT_EQ(result.passes, 1);
  // One pass can still change strategies; convergence requires a clean
  // pass, which a budget of 1 cannot certify unless nothing changed.
}

TEST(EquilibriumTest, EmptyGameTriviallyConverges) {
  Game game(3);
  const EquilibriumResult result =
      best_response_dynamics(M3DoubleAuction(), game);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.welfare_ratio(), 1.0, 1e-12);
}

}  // namespace
}  // namespace musketeer::core
