#include "core/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/m3_double_auction.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::core {
namespace {

Game sample_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.005, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

TEST(IoTest, RoundTripPreservesEverything) {
  const Game original = sample_game();
  const Game parsed = game_from_text(to_text(original));
  ASSERT_EQ(parsed.num_players(), original.num_players());
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(parsed.edge(e).from, original.edge(e).from);
    EXPECT_EQ(parsed.edge(e).to, original.edge(e).to);
    EXPECT_EQ(parsed.edge(e).capacity, original.edge(e).capacity);
    EXPECT_DOUBLE_EQ(parsed.edge(e).tail_valuation,
                     original.edge(e).tail_valuation);
    EXPECT_DOUBLE_EQ(parsed.edge(e).head_valuation,
                     original.edge(e).head_valuation);
  }
}

TEST(IoTest, RandomGamesRoundTrip) {
  util::Rng rng(8);
  gen::GameConfig config;
  const Game original = gen::random_ba_game(20, 2, config, rng);
  const Game parsed = game_from_text(to_text(original));
  EXPECT_EQ(parsed.num_edges(), original.num_edges());
  // The mechanisms must see an identical game.
  const M3DoubleAuction m3;
  EXPECT_NEAR(m3.run_truthful(parsed).realized_welfare(parsed),
              m3.run_truthful(original).realized_welfare(original), 1e-9);
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "musketeer-game v1\n"
      "# a comment\n"
      "\n"
      "players 2\n"
      "edge 0 1 5 0 0.02   # trailing comment\n";
  const Game game = game_from_text(text);
  EXPECT_EQ(game.num_players(), 2);
  EXPECT_EQ(game.num_edges(), 1);
  EXPECT_DOUBLE_EQ(game.edge(0).head_valuation, 0.02);
}

TEST(IoTest, RejectsMalformedInput) {
  EXPECT_THROW(game_from_text("not a header\n"), std::runtime_error);
  EXPECT_THROW(game_from_text("musketeer-game v1\nplayers -3\n"),
               std::runtime_error);
  EXPECT_THROW(game_from_text("musketeer-game v1\nplayers 2\n"
                              "edge 0 5 1 0 0\n"),
               std::runtime_error);  // endpoint out of range
  EXPECT_THROW(game_from_text("musketeer-game v1\nplayers 2\n"
                              "edge 0 1 1 0.01 0\n"),
               std::runtime_error);  // positive tail bid
  EXPECT_THROW(game_from_text("musketeer-game v1\nplayers 2\n"
                              "edge 0 1 1 0 0.5\n"),
               std::runtime_error);  // head above the 10% bound
  EXPECT_THROW(game_from_text("musketeer-game v1\nplayers 2\n"
                              "edge 0 1\n"),
               std::runtime_error);  // truncated row
}

TEST(IoTest, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "musketeer_io_test.game")
          .string();
  const Game original = sample_game();
  save_game(original, path);
  const Game loaded = load_game(path);
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  std::filesystem::remove(path);
  EXPECT_THROW(load_game(path), std::runtime_error);  // gone now
}

TEST(IoTest, DescribeOutcomeMentionsKeyFacts) {
  const Game game = sample_game();
  const Outcome outcome = M3DoubleAuction().run_truthful(game);
  const std::string report = describe_outcome(game, outcome);
  EXPECT_NE(report.find("cycles: 1"), std::string::npos);
  EXPECT_NE(report.find("budget balance"), std::string::npos);
  EXPECT_NE(report.find("pays"), std::string::npos);
  EXPECT_NE(report.find("receives"), std::string::npos);
}

}  // namespace
}  // namespace musketeer::core
