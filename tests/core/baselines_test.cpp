#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "gen/game_gen.hpp"

namespace musketeer::core {
namespace {

TEST(NoRebalancingTest, DoesNothing) {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  game.add_edge(2, 0, 10, 0.0, 0.0);
  const Outcome outcome = NoRebalancing().run_truthful(game);
  EXPECT_TRUE(outcome.cycles.empty());
  EXPECT_EQ(flow::total_volume(outcome.circulation), 0);
}

TEST(HideSeekTest, UsesOnlyDepletedEdges) {
  // The buyer's return path runs through indifferent edges, which Hide &
  // Seek excludes — so nothing can rebalance.
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);  // depleted
  game.add_edge(1, 2, 10, 0.0, 0.0);   // indifferent
  game.add_edge(2, 0, 10, 0.0, 0.0);   // indifferent
  const Outcome outcome = HideSeek().run_truthful(game);
  EXPECT_EQ(flow::total_volume(outcome.circulation), 0);
}

TEST(HideSeekTest, RebalancesAllDepletedCycle) {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 7, 0.0, 0.01);
  game.add_edge(2, 0, 12, 0.0, 0.02);
  const Outcome outcome = HideSeek().run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_EQ(outcome.cycles[0].cycle.amount, 7);  // bottleneck
  // Fee-free: no prices at all.
  EXPECT_TRUE(outcome.cycles[0].prices.empty());
}

TEST(HideSeekTest, MaximizesLiquidityNotWelfare) {
  // Two depleted-only cycles sharing capacity: Hide & Seek picks by
  // volume, blind to bid magnitudes.
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.001);
  game.add_edge(1, 2, 10, 0.0, 0.001);
  game.add_edge(2, 0, 10, 0.0, 0.001);
  const Outcome outcome = HideSeek().run_truthful(game);
  EXPECT_EQ(flow::total_volume(outcome.circulation), 30);
}

TEST(LocalRebalancingTest, FindsShortReturnPath) {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, 0.0, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  const LocalRebalancing local(/*max_path_length=*/3, /*fee_rate=*/0.001);
  const Outcome outcome = local.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_EQ(outcome.cycles[0].cycle.amount, 10);
  EXPECT_EQ(outcome.cycles[0].cycle.length(), 3);
  // Buyer (player 1) pays 2 hops * 0.001 * 10 but also earns 0.001 * 10
  // as the first intermediary (tail of 1->2), netting 0.01; player 2 is a
  // pure intermediary earning 0.01.
  EXPECT_NEAR(outcome.cycles[0].price_of(1), 0.001 * 10, 1e-12);
  EXPECT_NEAR(outcome.cycles[0].price_of(2), -0.001 * 10, 1e-12);
  EXPECT_NEAR(outcome.cycles[0].budget_imbalance(), 0.0, 1e-12);
}

TEST(LocalRebalancingTest, RespectsDepthBound) {
  // Return path needs 3 hops; bound of 2 blocks it.
  Game game(4);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  game.add_edge(2, 3, 10, 0.0, 0.0);
  game.add_edge(3, 0, 10, 0.0, 0.0);
  EXPECT_TRUE(LocalRebalancing(2, 0.001).run_truthful(game).cycles.empty());
  EXPECT_EQ(LocalRebalancing(3, 0.001).run_truthful(game).cycles.size(), 1u);
}

TEST(LocalRebalancingTest, SkipsUnaffordablePaths) {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.0015);  // buyer bid below 2 hops of fees
  game.add_edge(1, 2, 12, 0.0, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  const LocalRebalancing local(3, 0.001);
  EXPECT_TRUE(local.run_truthful(game).cycles.empty());
}

TEST(LocalRebalancingTest, GreedyOrderCanBeSuboptimal) {
  // Buyer A (low bid, first in edge order) grabs the shared capacity a
  // global mechanism would award to buyer B (high bid).
  Game game(4);
  game.add_edge(2, 3, 5, 0.0, 0.0);     // shared seller capacity
  game.add_edge(3, 0, 10, 0.0, 0.011);  // buyer A (edge order first)
  game.add_edge(0, 2, 10, 0.0, 0.0);
  game.add_edge(3, 1, 10, 0.0, 0.04);   // buyer B
  game.add_edge(1, 2, 10, 0.0, 0.0);
  const Outcome local = LocalRebalancing(3, 0.001).run_truthful(game);
  const Outcome global = M3DoubleAuction().run_truthful(game);
  EXPECT_LT(local.realized_welfare(game), global.realized_welfare(game));
}

TEST(BaselineOrderingTest, MusketeerWeaklyDominatesOnRandomGames) {
  util::Rng rng(4242);
  gen::GameConfig config;
  config.depleted_share = 0.35;
  int musketeer_wins = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Game game = gen::random_ba_game(24, 2, config, rng);
    const double none =
        NoRebalancing().run_truthful(game).realized_welfare(game);
    const double hs = HideSeek().run_truthful(game).realized_welfare(game);
    const double m3 =
        M3DoubleAuction().run_truthful(game).realized_welfare(game);
    EXPECT_GE(m3, hs - 1e-9) << "Musketeer must dominate Hide & Seek";
    EXPECT_GE(hs, none - 1e-9);
    if (m3 > hs + 1e-9) ++musketeer_wins;
  }
  EXPECT_GT(musketeer_wins, 0) << "all-user participation should help";
}

}  // namespace
}  // namespace musketeer::core
