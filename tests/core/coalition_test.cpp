#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "core/properties.hpp"
#include "core/strategy.hpp"

namespace musketeer::core {
namespace {

Game collusion_game() {
  Game game(4);
  game.add_edge(1, 0, 20, 0.0, 0.015);
  game.add_edge(3, 2, 20, 0.0, 0.04);
  game.add_edge(2, 1, 20, -0.001, 0.0);
  game.add_edge(0, 3, 20, -0.001, 0.0);
  return game;
}

TEST(CoalitionTest, SingletonCoalitionMatchesDeviationProbe) {
  const Game game = collusion_game();
  const M3DoubleAuction m3;
  const std::vector<double> scales{0.0, 0.5, 1.0};
  const CoalitionReport solo = probe_coalition(m3, game, {0}, scales);
  const DeviationReport probe = probe_truthfulness(m3, game, 0, scales);
  EXPECT_NEAR(solo.best_joint_utility, probe.best_utility, 1e-12);
  EXPECT_NEAR(solo.honest_joint_utility, probe.truthful_utility, 1e-12);
}

TEST(CoalitionTest, PairMatchesProbeCollusion) {
  const Game game = collusion_game();
  const M3DoubleAuction m3;
  const std::vector<double> scales{0.0, 0.5, 1.0};
  const CoalitionReport pair = probe_coalition(m3, game, {0, 1}, scales);
  const CollusionReport legacy = probe_collusion(m3, game, 0, 1, scales);
  EXPECT_NEAR(pair.best_joint_utility, legacy.best_joint_utility, 1e-12);
  EXPECT_NEAR(pair.gain(), legacy.gain(), 1e-12);
}

TEST(CoalitionTest, GainsAreNeverNegative) {
  // The truthful profile is always part of the searched grid (all-ones
  // mimicked by honest baseline), so reported gains are >= 0 for any
  // coalition size.
  const Game game = collusion_game();
  const M4DelayedAuction m4(100.0);
  const std::vector<double> scales{0.0, 0.5, 1.0};
  for (const auto& coalition :
       std::vector<std::vector<PlayerId>>{{0}, {0, 1}, {0, 1, 2},
                                          {0, 1, 2, 3}}) {
    const CoalitionReport report =
        probe_coalition(m4, game, coalition, scales);
    EXPECT_GE(report.gain(), -1e-12);
    EXPECT_EQ(report.coalition, coalition);
  }
}

TEST(CoalitionTest, BestScalesAreReported) {
  const Game game = collusion_game();
  const M3DoubleAuction m3;
  const CoalitionReport report =
      probe_coalition(m3, game, {0, 1}, {0.0, 0.5, 1.0});
  ASSERT_EQ(report.best_scales.size(), 2u);
  if (report.gain() > 1e-9) {
    // The winning manipulation is the paper's: player 0 withholds.
    EXPECT_LT(report.best_scales[0], 1.0);
  }
}

TEST(CoalitionDeathTest, RejectsEmptyCoalition) {
  const Game game = collusion_game();
  const M3DoubleAuction m3;
  EXPECT_DEATH(probe_coalition(m3, game, {}, {1.0}), "empty");
}

}  // namespace
}  // namespace musketeer::core
