#include "core/m4_delayed.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"
#include "core/properties.hpp"

namespace musketeer::core {
namespace {

Game triangle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.005, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

TEST(M4Test, PricesMatchM3) {
  const Game game = triangle_game();
  const Outcome m3 = M3DoubleAuction().run_truthful(game);
  const Outcome m4 = M4DelayedAuction(/*delay_factor=*/1.0).run_truthful(game);
  ASSERT_EQ(m3.cycles.size(), m4.cycles.size());
  for (std::size_t i = 0; i < m3.cycles.size(); ++i) {
    for (PlayerId v = 0; v < game.num_players(); ++v) {
      EXPECT_NEAR(m3.cycles[i].price_of(v), m4.cycles[i].price_of(v), 1e-12);
    }
  }
}

TEST(M4Test, DelayFormula) {
  const Game game = triangle_game();
  const double d = 1.0;
  const Outcome outcome = M4DelayedAuction(d).run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  // SW = 0.25, n = 3 -> t = 1 - (2/3) * 0.25 / 1.0 = 5/6.
  EXPECT_NEAR(pc.release_time, 1.0 - (2.0 / 3.0) * 0.25, 1e-12);
  EXPECT_NEAR(pc.delay_bonus, d * (1.0 - pc.release_time), 1e-12);
}

TEST(M4Test, HighWelfareCyclesReleaseEarlier) {
  Game game(6);
  game.add_edge(0, 1, 5, 0.0, 0.01);  // low welfare cycle
  game.add_edge(1, 2, 5, 0.0, 0.0);
  game.add_edge(2, 0, 5, 0.0, 0.0);
  game.add_edge(3, 4, 5, 0.0, 0.05);  // high welfare cycle
  game.add_edge(4, 5, 5, 0.0, 0.0);
  game.add_edge(5, 3, 5, 0.0, 0.0);
  const Outcome outcome = M4DelayedAuction(1.0).run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 2u);
  double low_t = -1.0, high_t = -1.0;
  for (const PricedCycle& pc : outcome.cycles) {
    if (game.participates(0, pc.cycle)) low_t = pc.release_time;
    if (game.participates(3, pc.cycle)) high_t = pc.release_time;
  }
  ASSERT_GE(low_t, 0.0);
  ASSERT_GE(high_t, 0.0);
  EXPECT_LT(high_t, low_t);
}

TEST(M4Test, DelayClampedToValidRange) {
  // Tiny d forces the raw time negative -> clamp at 0.
  const Game game = triangle_game();
  const Outcome outcome = M4DelayedAuction(1e-4).run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_EQ(outcome.cycles[0].release_time, 0.0);
  EXPECT_NEAR(outcome.cycles[0].delay_bonus, 1e-4, 1e-15);
}

TEST(M4Test, TruthfulnessHoldsOnTriangle) {
  const Game game = triangle_game();
  const M4DelayedAuction m4(1.0);
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    const DeviationReport report = probe_truthfulness(
        m4, game, v, {0.0, 0.25, 0.5, 0.75, 0.9, 1.1});
    EXPECT_LE(report.gain(), 1e-9)
        << "player " << v << " gains by scaling bids x" << report.best_scale;
  }
}

TEST(M4Test, UtilityEqualsCycleWelfareUnderTruthfulBids) {
  // Theorem 5: u_v(f_i) = SW(b, f_i) for every participant when truthful
  // (with the delay bonus counted).
  const Game game = triangle_game();
  const Outcome outcome = M4DelayedAuction(1.0).run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const double sw = game.cycle_welfare(game.truthful_bids(),
                                       outcome.cycles[0].cycle);
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    EXPECT_NEAR(outcome.player_utility(game, v), sw, 1e-9);
  }
}

TEST(M4DeathTest, RejectsNonPositiveDelayFactor) {
  EXPECT_DEATH(M4DelayedAuction(0.0), "delay factor");
}

}  // namespace
}  // namespace musketeer::core
