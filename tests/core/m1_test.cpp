#include "core/m1_fixed_fee.hpp"

#include <gtest/gtest.h>

#include "core/properties.hpp"

namespace musketeer::core {
namespace {

// Buyer on 0->1 plus two-hop indifferent return path 1->2->0.
Game triangle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);  // depleted (declared)
  game.add_edge(1, 2, 12, 0.0, 0.0);   // indifferent
  game.add_edge(2, 0, 15, 0.0, 0.0);   // indifferent
  return game;
}

TEST(M1Test, RunsCycleWhenAffordable) {
  const Game game = triangle_game();
  // k = 3 allows up to (just under) 3 indifferent edges per depleted edge.
  const M1FixedFee m1(/*fee_rate=*/0.002, /*k=*/3.0);
  const Outcome outcome = m1.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_EQ(outcome.cycles[0].cycle.amount, 10);
}

TEST(M1Test, SellersEarnExactlyTheFixedRate) {
  const Game game = triangle_game();
  const M1FixedFee m1(0.002, 3.0);
  const Outcome outcome = m1.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  // Sellers: tails of edges 1 (player 1) and 2 (player 2). Player 1 is
  // also the buyer (head of edge 0), paying both sellers' fees 2*p*10 =
  // 0.04, netting 0.04 - 0.02 = 0.02; player 2 is a pure seller.
  EXPECT_NEAR(pc.price_of(1), 0.002 * 10 * 2 - 0.002 * 10, 1e-12);
  EXPECT_NEAR(pc.price_of(2), -0.002 * 10, 1e-12);
}

TEST(M1Test, BuyerChargedTotalSellerCostWithinBound) {
  const Game game = triangle_game();
  const double p_hat = 0.002, k = 3.0;
  const M1FixedFee m1(p_hat, k);
  const Outcome outcome = m1.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  // Buyer (player 1, head of edge 0) pays both sellers: 2 * p_hat * 10,
  // a rate of 2 * p_hat <= k * p_hat.
  EXPECT_NEAR(pc.price_of(1) - (-0.002 * 10), 2 * p_hat * 10, 1e-12);
  EXPECT_NEAR(pc.budget_imbalance(), 0.0, 1e-12);
}

TEST(M1Test, RejectsCyclesWithTooManyIndifferentHops) {
  // 4-cycle with 3 indifferent edges; k = 2 forbids it (3 > k - would
  // need weight 2*p - 3*p < 0).
  Game game(4);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  game.add_edge(2, 3, 10, 0.0, 0.0);
  game.add_edge(3, 0, 10, 0.0, 0.0);
  const Outcome blocked = M1FixedFee(0.002, 2.0).run_truthful(game);
  EXPECT_TRUE(blocked.cycles.empty());
  const Outcome allowed = M1FixedFee(0.002, 4.0).run_truthful(game);
  EXPECT_EQ(allowed.cycles.size(), 1u);
}

TEST(M1Test, UsesOnlyDepletionSignalNotBidMagnitude) {
  const Game game = triangle_game();
  const M1FixedFee m1(0.002, 3.0);
  BidVector bids = game.truthful_bids();
  bids.head[0] = 0.001;  // tiny but still positive: still declared depleted
  const Outcome outcome = m1.run(game, bids);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_EQ(outcome.cycles[0].cycle.amount, 10);
}

TEST(M1Test, NoDepletedEdgesMeansNoRebalancing) {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.0);
  game.add_edge(1, 2, 10, 0.0, 0.0);
  game.add_edge(2, 0, 10, 0.0, 0.0);
  const Outcome outcome = M1FixedFee(0.002, 3.0).run_truthful(game);
  EXPECT_TRUE(outcome.cycles.empty());
}

TEST(M1Test, MultiDepletedCycleSplitsCostEqually) {
  // Two depleted edges share one indifferent hop: each buyer pays half.
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);  // depleted, buyer 1
  game.add_edge(1, 2, 10, 0.0, 0.02);  // depleted, buyer 2
  game.add_edge(2, 0, 10, 0.0, 0.0);   // indifferent, seller 2
  const double p_hat = 0.002;
  const Outcome outcome = M1FixedFee(p_hat, 3.0).run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  const double cost = p_hat * 10;  // one indifferent edge
  // Buyer 1 pays cost/2; player 2 pays cost/2 as buyer and earns cost as
  // the seller of edge 2->0, netting -cost/2.
  EXPECT_NEAR(pc.price_of(1), cost / 2, 1e-12);
  EXPECT_NEAR(pc.price_of(2), cost / 2 - cost, 1e-12);
  EXPECT_NEAR(pc.budget_imbalance(), 0.0, 1e-12);
}

TEST(M1DeathTest, ParameterValidation) {
  EXPECT_DEATH(M1FixedFee(-0.001, 2.0), "fee rate");
  EXPECT_DEATH(M1FixedFee(0.002, 0.5), "k");
  EXPECT_DEATH(M1FixedFee(0.05, 3.0), "10%");
}

}  // namespace
}  // namespace musketeer::core
