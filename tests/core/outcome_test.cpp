#include "core/outcome.hpp"

#include <gtest/gtest.h>

namespace musketeer::core {
namespace {

Game triangle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.005, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

PricedCycle make_cycle(Amount amount) {
  PricedCycle pc;
  pc.cycle.edges = {0, 1, 2};
  pc.cycle.amount = amount;
  return pc;
}

TEST(OutcomeTest, PriceOfSumsDuplicateEntries) {
  PricedCycle pc = make_cycle(1);
  pc.prices = {{1, 0.5}, {1, 0.25}, {2, -0.75}};
  EXPECT_DOUBLE_EQ(pc.price_of(1), 0.75);
  EXPECT_DOUBLE_EQ(pc.price_of(2), -0.75);
  EXPECT_DOUBLE_EQ(pc.price_of(0), 0.0);
  EXPECT_DOUBLE_EQ(pc.budget_imbalance(), 0.0);
}

TEST(OutcomeTest, DelayBonusFallsBackToUniform) {
  PricedCycle pc = make_cycle(1);
  pc.delay_bonus = 0.4;
  EXPECT_DOUBLE_EQ(pc.delay_bonus_of(0), 0.4);
  pc.player_delay_bonuses = {{0, 0.9}};
  EXPECT_DOUBLE_EQ(pc.delay_bonus_of(0), 0.9);  // override
  EXPECT_DOUBLE_EQ(pc.delay_bonus_of(1), 0.4);  // fallback
}

TEST(OutcomeTest, TotalPricesAggregateAcrossCycles) {
  Outcome outcome;
  PricedCycle a = make_cycle(1);
  a.prices = {{0, 0.2}, {1, -0.2}};
  PricedCycle b = make_cycle(2);
  b.prices = {{0, 0.3}, {2, -0.3}};
  outcome.cycles = {a, b};
  const auto totals = outcome.total_prices(3);
  EXPECT_DOUBLE_EQ(totals[0], 0.5);
  EXPECT_DOUBLE_EQ(totals[1], -0.2);
  EXPECT_DOUBLE_EQ(totals[2], -0.3);
}

TEST(OutcomeTest, PlayerUtilityCombinesValuePriceAndBonus) {
  const Game game = triangle_game();
  Outcome outcome;
  outcome.circulation = {4, 4, 4};
  PricedCycle pc = make_cycle(4);
  pc.prices = {{1, 0.05}};
  pc.delay_bonus = 0.01;
  outcome.cycles = {pc};
  // Player 1: value 4*(0.03-0.005)=0.1, price 0.05, bonus 0.01.
  EXPECT_NEAR(outcome.player_utility(game, 1), 0.1 - 0.05 + 0.01, 1e-12);
  // Player 0: no stakes, no price, but participates -> bonus only.
  EXPECT_NEAR(outcome.player_utility(game, 0), 0.01, 1e-12);
}

TEST(OutcomeTest, NonParticipantsGetNothing) {
  Game game(4);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, 0.0, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  // Player 3 exists but touches nothing.
  Outcome outcome;
  outcome.circulation = {4, 4, 4};
  PricedCycle pc = make_cycle(4);
  pc.delay_bonus = 0.5;
  outcome.cycles = {pc};
  EXPECT_DOUBLE_EQ(outcome.player_utility(game, 3), 0.0);
}

TEST(OutcomeTest, AllUtilitiesMatchesPerPlayer) {
  const Game game = triangle_game();
  Outcome outcome;
  outcome.circulation = {4, 4, 4};
  PricedCycle pc = make_cycle(4);
  pc.prices = {{1, 0.05}, {0, -0.025}, {2, -0.025}};
  outcome.cycles = {pc};
  const auto all = outcome.all_utilities(game);
  ASSERT_EQ(all.size(), 3u);
  for (PlayerId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(v)],
                     outcome.player_utility(game, v));
  }
}

TEST(OutcomeTest, RealizedWelfareUsesTrueValuations) {
  const Game game = triangle_game();
  Outcome outcome;
  outcome.circulation = {10, 10, 0};  // not a circulation; welfare is
                                      // still a well-defined dot product
  EXPECT_NEAR(outcome.realized_welfare(game), 10 * 0.03 + 10 * -0.005,
              1e-12);
}

}  // namespace
}  // namespace musketeer::core
