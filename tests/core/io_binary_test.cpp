// Round-trip and adversarial-input tests for the binary codec in
// core/io (the payload format of the svc wire protocol).
#include <limits>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "core/game.hpp"
#include "core/io.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "gen/game_gen.hpp"
#include "util/rng.hpp"

namespace musketeer::core {
namespace {

Game sample_game(std::uint64_t seed, flow::NodeId players = 16) {
  util::Rng rng(seed);
  gen::GameConfig config;
  return gen::random_ba_game(players, 2, config, rng);
}

void expect_games_equal(const Game& a, const Game& b) {
  ASSERT_EQ(a.num_players(), b.num_players());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const GameEdge& x = a.edge(e);
    const GameEdge& y = b.edge(e);
    EXPECT_EQ(x.from, y.from);
    EXPECT_EQ(x.to, y.to);
    EXPECT_EQ(x.capacity, y.capacity);
    // Bit-exact: the codec moves raw f64 bits.
    EXPECT_DOUBLE_EQ(x.tail_valuation, y.tail_valuation);
    EXPECT_DOUBLE_EQ(x.head_valuation, y.head_valuation);
  }
}

TEST(IoBinary, GameRoundTrip) {
  const Game game = sample_game(7);
  std::string bytes;
  codec::encode_game(game, bytes);
  expect_games_equal(game, codec::game_from_bytes(bytes));
}

TEST(IoBinary, EmptyGameRoundTrip) {
  const Game game(3);
  std::string bytes;
  codec::encode_game(game, bytes);
  const Game back = codec::game_from_bytes(bytes);
  EXPECT_EQ(back.num_players(), 3);
  EXPECT_EQ(back.num_edges(), 0);
}

TEST(IoBinary, BidsRoundTrip) {
  const Game game = sample_game(11);
  const BidVector bids = game.truthful_bids();
  std::string bytes;
  codec::encode_bids(bids, bytes);
  const BidVector back = codec::bids_from_bytes(bytes);
  ASSERT_EQ(back.size(), bids.size());
  for (std::size_t e = 0; e < bids.size(); ++e) {
    EXPECT_DOUBLE_EQ(back.tail[e], bids.tail[e]);
    EXPECT_DOUBLE_EQ(back.head[e], bids.head[e]);
  }
}

void expect_outcomes_equal(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.circulation, b.circulation);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t c = 0; c < a.cycles.size(); ++c) {
    const PricedCycle& x = a.cycles[c];
    const PricedCycle& y = b.cycles[c];
    EXPECT_EQ(x.cycle.edges, y.cycle.edges);
    EXPECT_EQ(x.cycle.amount, y.cycle.amount);
    ASSERT_EQ(x.prices.size(), y.prices.size());
    for (std::size_t i = 0; i < x.prices.size(); ++i) {
      EXPECT_EQ(x.prices[i].player, y.prices[i].player);
      EXPECT_DOUBLE_EQ(x.prices[i].price, y.prices[i].price);
    }
    EXPECT_DOUBLE_EQ(x.release_time, y.release_time);
    EXPECT_DOUBLE_EQ(x.delay_bonus, y.delay_bonus);
    ASSERT_EQ(x.player_delay_bonuses.size(), y.player_delay_bonuses.size());
    for (std::size_t i = 0; i < x.player_delay_bonuses.size(); ++i) {
      EXPECT_EQ(x.player_delay_bonuses[i].player,
                y.player_delay_bonuses[i].player);
      EXPECT_DOUBLE_EQ(x.player_delay_bonuses[i].price,
                       y.player_delay_bonuses[i].price);
    }
  }
}

TEST(IoBinary, MechanismOutcomeRoundTrip) {
  // Real outcomes from two mechanisms, including M4's delay-bonus fields.
  const Game game = sample_game(13, 20);
  for (const Outcome& outcome :
       {M3DoubleAuction().run_truthful(game),
        M4DelayedAuction(2.0).run_truthful(game)}) {
    std::string bytes;
    codec::encode_outcome(outcome, bytes);
    expect_outcomes_equal(outcome, codec::outcome_from_bytes(bytes));
  }
}

TEST(IoBinary, EveryTruncationOfGameThrows) {
  const Game game = sample_game(17);
  std::string bytes;
  codec::encode_game(game, bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(codec::game_from_bytes(std::string_view(bytes).substr(0, len)),
                 CodecError)
        << "prefix of length " << len << " was accepted";
  }
}

TEST(IoBinary, EveryTruncationOfOutcomeThrows) {
  const Game game = sample_game(19, 20);
  const Outcome outcome = M4DelayedAuction(1.5).run_truthful(game);
  ASSERT_FALSE(outcome.cycles.empty()) << "test game cleared no cycles";
  std::string bytes;
  codec::encode_outcome(outcome, bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        codec::outcome_from_bytes(std::string_view(bytes).substr(0, len)),
        CodecError);
  }
}

TEST(IoBinary, EveryTruncationOfBidsThrows) {
  std::string bytes;
  codec::encode_bids(sample_game(23).truthful_bids(), bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        codec::bids_from_bytes(std::string_view(bytes).substr(0, len)),
        CodecError);
  }
}

TEST(IoBinary, TrailingBytesRejected) {
  const Game game = sample_game(29);
  std::string game_bytes;
  codec::encode_game(game, game_bytes);
  std::string bids_bytes;
  codec::encode_bids(game.truthful_bids(), bids_bytes);
  std::string outcome_bytes;
  codec::encode_outcome(M3DoubleAuction().run_truthful(game), outcome_bytes);
  game_bytes.push_back('\0');
  bids_bytes.push_back('\0');
  outcome_bytes.push_back('\0');
  EXPECT_THROW(codec::game_from_bytes(game_bytes), CodecError);
  EXPECT_THROW(codec::bids_from_bytes(bids_bytes), CodecError);
  EXPECT_THROW(codec::outcome_from_bytes(outcome_bytes), CodecError);
}

TEST(IoBinary, OversizedEdgeCountRejectedWithoutAllocation) {
  // Adversarial header claiming 2^32-1 edges with no payload behind it:
  // check_count must reject it before any reserve/loop.
  std::string bytes;
  codec::put_u16(bytes, codec::kBinaryVersion);
  codec::put_u32(bytes, 8);            // players
  codec::put_u32(bytes, 0xffffffffu);  // edges
  EXPECT_THROW(codec::game_from_bytes(bytes), CodecError);
}

TEST(IoBinary, OversizedCycleAndPriceCountsRejected) {
  std::string bytes;
  codec::put_u16(bytes, codec::kBinaryVersion);
  codec::put_u32(bytes, 0);            // circulation entries
  codec::put_u32(bytes, 0xffffffffu);  // cycles
  EXPECT_THROW(codec::outcome_from_bytes(bytes), CodecError);

  bytes.clear();
  codec::put_u16(bytes, codec::kBinaryVersion);
  codec::put_u32(bytes, 0);   // circulation entries
  codec::put_u32(bytes, 1);   // one cycle...
  codec::put_u32(bytes, 0);   // ...with zero edges
  codec::put_i64(bytes, 5);   // amount
  codec::put_u32(bytes, 0xffffffffu);  // price-list count bomb
  EXPECT_THROW(codec::outcome_from_bytes(bytes), CodecError);
}

TEST(IoBinary, OversizedCirculationCountRejected) {
  // The circulation list is the first count in an outcome record; a bomb
  // there must die in check_count like the others.
  std::string bytes;
  codec::put_u16(bytes, codec::kBinaryVersion);
  codec::put_u32(bytes, 0xffffffffu);  // circulation entries
  EXPECT_THROW(codec::outcome_from_bytes(bytes), CodecError);
}

TEST(IoBinary, EmptyAndGarbageInputRejected) {
  EXPECT_THROW(codec::game_from_bytes(""), CodecError);
  EXPECT_THROW(codec::bids_from_bytes(""), CodecError);
  EXPECT_THROW(codec::outcome_from_bytes(""), CodecError);

  // All-ones garbage: version check fires first; with the version bytes
  // patched in, the saturated counts must still be rejected.
  std::string garbage(64, static_cast<char>(0xff));
  EXPECT_THROW(codec::game_from_bytes(garbage), CodecError);
  EXPECT_THROW(codec::bids_from_bytes(garbage), CodecError);
  EXPECT_THROW(codec::outcome_from_bytes(garbage), CodecError);

  std::string versioned;
  codec::put_u16(versioned, codec::kBinaryVersion);
  versioned += std::string(62, static_cast<char>(0xff));
  EXPECT_THROW(codec::game_from_bytes(versioned), CodecError);
  EXPECT_THROW(codec::bids_from_bytes(versioned), CodecError);
  EXPECT_THROW(codec::outcome_from_bytes(versioned), CodecError);
}

TEST(IoBinary, ImplausiblePlayerCountRejected) {
  std::string bytes;
  codec::put_u16(bytes, codec::kBinaryVersion);
  codec::put_u32(bytes, (1u << 26) + 1);  // players above sanity cap
  codec::put_u32(bytes, 0);               // edges
  EXPECT_THROW(codec::game_from_bytes(bytes), CodecError);
}

TEST(IoBinary, WrongVersionRejected) {
  const Game game = sample_game(31);
  std::string bytes;
  codec::encode_game(game, bytes);
  bytes[0] = static_cast<char>(codec::kBinaryVersion + 1);
  EXPECT_THROW(codec::game_from_bytes(bytes), CodecError);
}

TEST(IoBinary, SemanticValidationOnDecode) {
  const Game game = sample_game(37);
  std::string good;
  codec::encode_game(game, good);

  // Edge record layout: from u32, to u32, capacity i64, tail f64, head
  // f64, starting at offset 10. Corrupt the first edge's head valuation
  // to an out-of-box value.
  std::string bad = good;
  std::string head;
  codec::put_f64(head, 0.5);  // >= kMaxFeeRate
  bad.replace(10 + 4 + 4 + 8 + 8, 8, head);
  EXPECT_THROW(codec::game_from_bytes(bad), CodecError);

  // Endpoint out of range.
  bad = good;
  std::string from;
  codec::put_u32(from, 1u << 20);
  bad.replace(10, 4, from);
  EXPECT_THROW(codec::game_from_bytes(bad), CodecError);

  // Non-finite bid.
  std::string bid_bytes;
  codec::put_u16(bid_bytes, codec::kBinaryVersion);
  codec::put_u32(bid_bytes, 1);
  codec::put_f64(bid_bytes, 0.0);
  codec::put_f64(bid_bytes, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(codec::bids_from_bytes(bid_bytes), CodecError);
}

TEST(IoBinary, ReaderPrimitives) {
  std::string bytes;
  codec::put_u8(bytes, 0xab);
  codec::put_u16(bytes, 0x1234);
  codec::put_u32(bytes, 0xdeadbeef);
  codec::put_u64(bytes, 0x0102030405060708ull);
  codec::put_i64(bytes, -42);
  codec::put_f64(bytes, -0.0625);
  codec::Reader in{std::string_view(bytes)};
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u16(), 0x1234);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0102030405060708ull);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_DOUBLE_EQ(in.f64(), -0.0625);
  EXPECT_TRUE(in.done());
  EXPECT_NO_THROW(in.expect_end());
  EXPECT_THROW(in.u8(), CodecError);
}

}  // namespace
}  // namespace musketeer::core
