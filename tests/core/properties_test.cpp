#include "core/properties.hpp"

#include <gtest/gtest.h>

#include "core/m3_double_auction.hpp"

namespace musketeer::core {
namespace {

Game triangle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.005, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

TEST(PropertiesTest, BudgetBalanceDetectsImbalance) {
  Outcome outcome;
  PricedCycle pc;
  pc.prices = {{0, 1.0}, {1, -0.4}};
  outcome.cycles.push_back(pc);
  const BudgetBalanceReport report = check_cyclic_budget_balance(outcome);
  EXPECT_NEAR(report.max_cycle_imbalance, 0.6, 1e-12);
  EXPECT_FALSE(report.holds());
}

TEST(PropertiesTest, BudgetBalanceAcceptsBalancedCycles) {
  Outcome outcome;
  PricedCycle a;
  a.prices = {{0, 1.0}, {1, -1.0}};
  PricedCycle b;
  b.prices = {{2, 0.25}, {3, -0.125}, {4, -0.125}};
  outcome.cycles = {a, b};
  EXPECT_TRUE(check_cyclic_budget_balance(outcome).holds());
}

TEST(PropertiesTest, StrongButNotCyclicBalanceDetected) {
  // Figure 2's distinction: cycles individually unbalanced but globally
  // summing to zero pass strong budget balance yet fail CBB.
  Outcome outcome;
  PricedCycle a;
  a.prices = {{0, 0.1}};
  PricedCycle b;
  b.prices = {{0, -0.1}};
  outcome.cycles = {a, b};
  const BudgetBalanceReport report = check_cyclic_budget_balance(outcome);
  EXPECT_NEAR(report.total_imbalance, 0.0, 1e-12);  // strong BB holds
  EXPECT_FALSE(report.holds());                     // CBB does not
}

TEST(PropertiesTest, RationalityReportsPerCycleMinimum) {
  const Game game = triangle_game();
  const Outcome outcome = M3DoubleAuction().run_truthful(game);
  const RationalityReport report =
      check_individual_rationality(game, outcome);
  EXPECT_TRUE(report.holds());
  EXPECT_EQ(report.violations, 0);
  // Theorem 4: per-cycle utility is SW/n for everyone.
  EXPECT_NEAR(report.min_cycle_utility, 0.25 / 3.0, 1e-9);
}

TEST(PropertiesTest, RationalityFlagsOvercharging) {
  const Game game = triangle_game();
  Outcome outcome = M3DoubleAuction().run_truthful(game);
  ASSERT_FALSE(outcome.cycles.empty());
  outcome.cycles[0].prices.push_back({0, 99.0});  // overcharge player 0
  const RationalityReport report =
      check_individual_rationality(game, outcome);
  EXPECT_FALSE(report.holds());
  EXPECT_GT(report.violations, 0);
}

TEST(PropertiesTest, EfficiencyCertifiesOptimalOutcome) {
  const Game game = triangle_game();
  const BidVector bids = game.truthful_bids();
  const Outcome outcome = M3DoubleAuction().run(game, bids);
  const EfficiencyReport report = check_efficiency(game, bids, outcome);
  EXPECT_TRUE(report.certified_optimal);
  EXPECT_NEAR(report.ratio(), 1.0, 1e-12);
}

TEST(PropertiesTest, EfficiencyRejectsEmptyOutcomeWhenWelfareAvailable) {
  const Game game = triangle_game();
  const BidVector bids = game.truthful_bids();
  Outcome idle;
  idle.circulation.assign(static_cast<std::size_t>(game.num_edges()), 0);
  const EfficiencyReport report = check_efficiency(game, bids, idle);
  EXPECT_FALSE(report.certified_optimal);
  EXPECT_LT(report.ratio(), 1.0);
}

TEST(PropertiesTest, ScalePlayerBidsClampsAndTargetsOnlyThatPlayer) {
  const Game game = triangle_game();
  const BidVector truthful = game.truthful_bids();
  const BidVector scaled = scale_player_bids(game, truthful, 1, 10.0);
  // Player 1's buyer stake (head of edge 0) clamps below 0.1.
  EXPECT_LT(scaled.head[0], kMaxFeeRate);
  EXPECT_GT(scaled.head[0], truthful.head[0]);
  // Player 1's seller stake (tail of edge 1) clamps above -0.1.
  EXPECT_GT(scaled.tail[1], -kMaxFeeRate);
  EXPECT_LT(scaled.tail[1], truthful.tail[1]);
  // Other players' stakes untouched.
  EXPECT_EQ(scaled.head[2], truthful.head[2]);
  EXPECT_EQ(scaled.tail[2], truthful.tail[2]);
}

TEST(PropertiesTest, DeviationProbeFindsNoGainForConstantMechanism) {
  // Sanity: a mechanism ignoring bids (M1-like fixed outcome) can't be
  // gamed by bid scaling within a fixed depletion declaration.
  const Game game = triangle_game();
  const M3DoubleAuction m3;
  const DeviationReport report =
      probe_truthfulness(m3, game, /*player=*/2, {0.5, 1.5});
  // Player 2 has no stakes at all; scaling does nothing.
  EXPECT_NEAR(report.gain(), 0.0, 1e-12);
}

}  // namespace
}  // namespace musketeer::core
