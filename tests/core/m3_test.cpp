#include "core/m3_double_auction.hpp"

#include <gtest/gtest.h>

#include "core/properties.hpp"

namespace musketeer::core {
namespace {

// Triangle: buyer 1 bids 0.03 on 0->1; seller 1 charges 0.005 on 1->2;
// 2->0 free. Cycle welfare per unit = 0.025.
Game triangle_game() {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.03);
  game.add_edge(1, 2, 12, -0.005, 0.0);
  game.add_edge(2, 0, 15, 0.0, 0.0);
  return game;
}

TEST(M3Test, SaturatesTheProfitableCycle) {
  const Game game = triangle_game();
  const M3DoubleAuction m3;
  const Outcome outcome = m3.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  EXPECT_EQ(outcome.cycles[0].cycle.amount, 10);
  EXPECT_EQ(outcome.cycles[0].cycle.length(), 3);
}

TEST(M3Test, PricesFollowWelfareShareFormula) {
  const Game game = triangle_game();
  const M3DoubleAuction m3;
  const Outcome outcome = m3.run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 1u);
  const PricedCycle& pc = outcome.cycles[0];
  // SW per cycle = 10 * 0.025 = 0.25; share = 0.25/3 per player.
  const double share = 0.25 / 3.0;
  // Player 1: b_1(f) = 10*(0.03 - 0.005) = 0.25; price = 0.25 - share.
  EXPECT_NEAR(pc.price_of(1), 0.25 - share, 1e-9);
  // Players 0 and 2 bid nothing: price = -share (they receive).
  EXPECT_NEAR(pc.price_of(0), -share, 1e-9);
  EXPECT_NEAR(pc.price_of(2), -share, 1e-9);
  EXPECT_NEAR(pc.budget_imbalance(), 0.0, 1e-12);
}

TEST(M3Test, NoDelaysInM3) {
  const Game game = triangle_game();
  const Outcome outcome = M3DoubleAuction().run_truthful(game);
  for (const PricedCycle& pc : outcome.cycles) {
    EXPECT_EQ(pc.release_time, 0.0);
    EXPECT_EQ(pc.delay_bonus, 0.0);
  }
}

TEST(M3Test, EmptyGameYieldsEmptyOutcome) {
  Game game(4);
  const Outcome outcome = M3DoubleAuction().run_truthful(game);
  EXPECT_TRUE(outcome.cycles.empty());
  EXPECT_EQ(flow::total_volume(outcome.circulation), 0);
}

TEST(M3Test, UtilityPerPlayerEqualsWelfareShare) {
  // Theorem 4: per-cycle utility of a truthful player is SW(b, f_i)/n_i.
  const Game game = triangle_game();
  const Outcome outcome = M3DoubleAuction().run_truthful(game);
  const double share = 0.25 / 3.0;
  for (PlayerId v = 0; v < 3; ++v) {
    EXPECT_NEAR(outcome.player_utility(game, v), share, 1e-9) << "player " << v;
  }
}

TEST(M3Test, NotTruthful_UnderbiddingGains) {
  // The first-price shading incentive: the buyer can lower its bid while
  // the cycle still runs, keeping more surplus.
  const Game game = triangle_game();
  const M3DoubleAuction m3;
  const DeviationReport report = probe_truthfulness(
      m3, game, /*player=*/1, {0.2, 0.4, 0.6, 0.8, 0.9, 1.1});
  EXPECT_GT(report.gain(), 1e-6) << "M3 should be manipulable";
  EXPECT_LT(report.best_scale, 1.0) << "gain should come from underbidding";
}

TEST(M3Test, SkipsNegativeWelfareCycles) {
  Game game(3);
  game.add_edge(0, 1, 10, 0.0, 0.01);
  game.add_edge(1, 2, 12, -0.05, 0.0);  // seller too expensive
  game.add_edge(2, 0, 15, 0.0, 0.0);
  const Outcome outcome = M3DoubleAuction().run_truthful(game);
  EXPECT_TRUE(outcome.cycles.empty());
}

TEST(M3Test, TwoDisjointCyclesPricedIndependently) {
  Game game(6);
  game.add_edge(0, 1, 5, 0.0, 0.02);
  game.add_edge(1, 2, 5, 0.0, 0.0);
  game.add_edge(2, 0, 5, 0.0, 0.0);
  game.add_edge(3, 4, 7, 0.0, 0.04);
  game.add_edge(4, 5, 7, -0.01, 0.0);
  game.add_edge(5, 3, 7, 0.0, 0.0);
  const Outcome outcome = M3DoubleAuction().run_truthful(game);
  ASSERT_EQ(outcome.cycles.size(), 2u);
  for (const PricedCycle& pc : outcome.cycles) {
    EXPECT_NEAR(pc.budget_imbalance(), 0.0, 1e-12);
  }
  const auto prices = outcome.total_prices(game.num_players());
  // Players of cycle A are untouched by cycle B's pricing.
  EXPECT_NEAR(prices[0], -5 * 0.02 / 3.0, 1e-9);
}

}  // namespace
}  // namespace musketeer::core
