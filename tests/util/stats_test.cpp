#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>

namespace musketeer::util {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(StatsTest, MeanBasic) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(StatsTest, StdevBasic) {
  const std::array<double, 4> xs{2.0, 4.0, 4.0, 6.0};
  EXPECT_NEAR(stdev(xs), 1.632993, 1e-5);
}

TEST(StatsTest, StdevOfSingletonIsZero) {
  const std::array<double, 1> xs{5.0};
  EXPECT_EQ(stdev(xs), 0.0);
}

TEST(StatsTest, QuantileEndpoints) {
  const std::array<double, 5> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::array<double, 2> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(StatsTest, MinMaxSum) {
  const std::array<double, 3> xs{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(sum(xs), 4.0);
}

TEST(StatsTest, GiniOfEqualDistributionIsZero) {
  const std::array<double, 4> xs{2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(StatsTest, GiniOfConcentratedDistribution) {
  const std::array<double, 4> xs{0.0, 0.0, 0.0, 8.0};
  EXPECT_NEAR(gini(xs), 0.75, 1e-12);
}

TEST(StatsTest, GiniOfEmptyOrZeroIsZero) {
  EXPECT_EQ(gini({}), 0.0);
  const std::array<double, 2> xs{0.0, 0.0};
  EXPECT_EQ(gini(xs), 0.0);
}

TEST(StatsTest, AccumulatorAggregates) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
}

}  // namespace
}  // namespace musketeer::util
