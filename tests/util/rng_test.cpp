#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace musketeer::util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitMix64KnownProgression) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace musketeer::util
