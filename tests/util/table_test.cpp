#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/csv.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace musketeer::util {
namespace {

TEST(TableTest, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,x\n2,y\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_int(-7), "-7");
}

TEST(TableTest, PrintAligns) {
  Table t({"name", "v"});
  t.add_row({"long-name", "1"});
  // Smoke: printing to a temp stream must not crash and must contain rows.
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  t.print(tmp);
  std::rewind(tmp);
  char buf[256];
  std::string all;
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) all += buf;
  std::fclose(tmp);
  EXPECT_NE(all.find("long-name"), std::string::npos);
  EXPECT_NE(all.find("name"), std::string::npos);
}

TEST(CsvWriterTest, WritesRowsToDisk) {
  const auto path =
      (std::filesystem::temp_directory_path() / "musketeer_csv_test.csv")
          .string();
  {
    CsvWriter csv(path, {"x", "y"});
    csv.row({"1", "2"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace musketeer::util
