// Abort-on-violation entry point for the MUSKETEER_AUDIT hooks.
//
// core/mechanism.hpp calls audit_mechanism_outcome_or_die() at the end of
// every Mechanism::run() when the build defines MUSKETEER_AUDIT. Only
// forward declarations here: mechanism.hpp includes this header, so it
// must not include mechanism.hpp back.
#pragma once

namespace musketeer::core {
class Game;
class Mechanism;
struct BidVector;
struct Outcome;
}  // namespace musketeer::core

namespace musketeer::check {

/// Audits `outcome` with an InvariantAuditor configured from the
/// mechanism's own claims (IR flag, audited bid profile) and aborts via
/// MUSK_ASSERT_MSG with the full structured report on any violation.
void audit_mechanism_outcome_or_die(const core::Mechanism& mechanism,
                                    const core::Game& game,
                                    const core::BidVector& bids,
                                    const core::Outcome& outcome);

}  // namespace musketeer::check
