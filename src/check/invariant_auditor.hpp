// Invariant auditor: exact re-verification of mechanism outcomes.
//
// The property checkers in core/properties.hpp *measure* margins using the
// same Game methods the mechanisms themselves use; a bug shared between a
// mechanism and the measurement would cancel out. The auditor is the
// independent witness: it recomputes every invariant directly from the raw
// Game/Outcome data, in exact integer arithmetic (__int128 accumulators
// over Amount) wherever the quantity is integral, and flags:
//
//   * flow conservation at every node            (exact)
//   * capacity feasibility 0 <= f(e) <= c(e)     (exact)
//   * sign-consistency: cycles resum to f        (exact)
//   * simple-cycle structure of every cycle      (exact)
//   * cyclic budget balance per cycle            (tolerance, coins)
//   * per-cycle individual rationality           (tolerance, coins)
//   * kMaxFeeRate bounds on bids and valuations  (exact)
//   * release schedule sanity (M4/M5)            (exact)
//
// Deliberately avoids calling any Game/Outcome member defined in
// core/*.cpp — only header-visible data and inline accessors — so the
// auditor cannot inherit a bug from the code it audits. This also keeps
// the link graph acyclic: musketeer_check depends on core *headers* only.
#pragma once

#include <string_view>

#include "check/violation.hpp"
#include "core/game.hpp"
#include "core/outcome.hpp"

namespace musketeer::check {

struct AuditOptions {
  /// Absolute tolerance (coins) on |sum of a cycle's prices|; matches the
  /// default of core/properties.hpp's BudgetBalanceReport::holds().
  double cbb_tolerance = 1e-6;
  /// Absolute tolerance (coins) on per-cycle participant utility.
  double ir_tolerance = 1e-7;
  /// Audit per-cycle individual rationality under the submitted bids.
  /// Off for mechanisms whose IR guarantee is conditional (M1 requires
  /// self-selection; Hide & Seek ignores seller costs by design).
  bool check_individual_rationality = true;
  /// Audit the (-kMaxFeeRate, kMaxFeeRate) bounds on bids and valuations.
  bool check_bid_bounds = true;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditOptions options = {}) : options_(options) {}

  /// Audits a full mechanism outcome against the game it was computed for
  /// and the bids it was computed from. `subject` labels the report.
  AuditReport audit_outcome(const core::Game& game,
                            const core::BidVector& bids,
                            const core::Outcome& outcome,
                            std::string_view subject = "outcome") const;

  /// Audits only the circulation-level invariants (conservation,
  /// capacity) of a flow assignment over the game's edges.
  AuditReport audit_circulation(const core::Game& game,
                                const flow::Circulation& f,
                                std::string_view subject = "circulation") const;

  const AuditOptions& options() const { return options_; }

 private:
  AuditOptions options_;
};

}  // namespace musketeer::check
