#include "check/audit_hook.hpp"

#include <string>

#include "check/invariant_auditor.hpp"
#include "core/mechanism.hpp"
#include "util/assert.hpp"

namespace musketeer::check {

void audit_mechanism_outcome_or_die(const core::Mechanism& mechanism,
                                    const core::Game& game,
                                    const core::BidVector& bids,
                                    const core::Outcome& outcome) {
  AuditOptions options;
  options.check_individual_rationality =
      mechanism.claims_individual_rationality();
  const InvariantAuditor auditor(options);
  const AuditReport report = auditor.audit_outcome(
      game, mechanism.audited_bids(bids), outcome, mechanism.name());
  if (!report.ok()) {
    util::assert_fail("invariant audit", __FILE__, __LINE__,
                      report.to_string());
  }
}

}  // namespace musketeer::check
