#include "check/invariant_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace musketeer::check {

namespace {

using core::BidVector;
using core::Game;
using core::GameEdge;
using core::Outcome;
using core::PlayerId;
using core::PricedCycle;
using flow::Amount;
using flow::EdgeId;
using flow::NodeId;

std::string fmt(const char* format, double a, double b = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return std::string(buf);
}

void add_violation(AuditReport& report, ViolationKind kind, std::string detail,
                   NodeId node = -1, EdgeId edge = -1, int cycle = -1,
                   double magnitude = 0.0) {
  report.violations.push_back(
      Violation{kind, std::move(detail), node, edge, cycle, magnitude});
}

/// An in-range bid: tail in (-kMaxFeeRate, 0], head in [0, kMaxFeeRate).
/// Written so that NaN fails every clause.
bool tail_in_range(double tail) {
  return tail <= 0.0 && tail > -core::kMaxFeeRate;
}
bool head_in_range(double head) {
  return head >= 0.0 && head < core::kMaxFeeRate;
}

void audit_bid_bounds(const Game& game, const BidVector& bids,
                      AuditReport& report) {
  const auto m = static_cast<std::size_t>(game.num_edges());
  for (std::size_t i = 0; i < m; ++i) {
    const GameEdge& e = game.edges()[i];
    if (!tail_in_range(e.tail_valuation) || !head_in_range(e.head_valuation)) {
      add_violation(report, ViolationKind::kBidBound,
                    fmt("valuation pair (%g, %g) outside the kMaxFeeRate box",
                        e.tail_valuation, e.head_valuation),
                    -1, static_cast<EdgeId>(i));
    }
    if (i < bids.tail.size() && i < bids.head.size() &&
        (!tail_in_range(bids.tail[i]) || !head_in_range(bids.head[i]))) {
      add_violation(report, ViolationKind::kBidBound,
                    fmt("bid pair (%g, %g) outside the kMaxFeeRate box",
                        bids.tail[i], bids.head[i]),
                    -1, static_cast<EdgeId>(i));
    }
  }
}

void audit_flow(const Game& game, const flow::Circulation& f,
                AuditReport& report) {
  const auto m = static_cast<std::size_t>(game.num_edges());
  if (f.size() != m) {
    add_violation(report, ViolationKind::kSizeMismatch,
                  "circulation has " + std::to_string(f.size()) +
                      " entries for " + std::to_string(m) + " edges");
    return;
  }
  // Capacity feasibility and conservation, in exact integer arithmetic.
  std::vector<__int128> net(static_cast<std::size_t>(game.num_players()), 0);
  for (std::size_t i = 0; i < m; ++i) {
    const GameEdge& e = game.edges()[i];
    const Amount fe = f[i];
    if (fe < 0 || fe > e.capacity) {
      add_violation(
          report, ViolationKind::kCapacity,
          fmt("flow %g outside [0, %g]", static_cast<double>(fe),
              static_cast<double>(e.capacity)),
          -1, static_cast<EdgeId>(i), -1, static_cast<double>(fe));
    }
    net[static_cast<std::size_t>(e.from)] -= fe;
    net[static_cast<std::size_t>(e.to)] += fe;
  }
  for (NodeId v = 0; v < game.num_players(); ++v) {
    const __int128 n = net[static_cast<std::size_t>(v)];
    if (n != 0) {
      add_violation(report, ViolationKind::kConservation,
                    fmt("net flow %g at a vertex (must be 0)",
                        static_cast<double>(n)),
                    v, -1, -1, static_cast<double>(n));
    }
  }
}

/// True iff the cycle is structurally sound: non-empty, positive amount,
/// in-range edge ids, consecutive edges chain head-to-tail, closes, and
/// visits no vertex twice.
bool audit_cycle_shape(const Game& game, const flow::CycleFlow& cycle,
                       int index, AuditReport& report) {
  if (cycle.edges.empty() || cycle.amount <= 0) {
    add_violation(report, ViolationKind::kMalformedCycle,
                  "empty cycle or non-positive amount", -1, -1, index,
                  static_cast<double>(cycle.amount));
    return false;
  }
  for (EdgeId e : cycle.edges) {
    if (e < 0 || e >= game.num_edges()) {
      add_violation(report, ViolationKind::kMalformedCycle,
                    "edge id out of range", -1, e, index);
      return false;
    }
  }
  std::vector<NodeId> tails;
  tails.reserve(cycle.edges.size());
  for (std::size_t i = 0; i < cycle.edges.size(); ++i) {
    const GameEdge& cur =
        game.edges()[static_cast<std::size_t>(cycle.edges[i])];
    const GameEdge& next = game.edges()[static_cast<std::size_t>(
        cycle.edges[(i + 1) % cycle.edges.size()])];
    if (cur.to != next.from) {
      add_violation(report, ViolationKind::kMalformedCycle,
                    "consecutive edges do not chain", cur.to, cycle.edges[i],
                    index);
      return false;
    }
    tails.push_back(cur.from);
  }
  std::sort(tails.begin(), tails.end());
  if (std::adjacent_find(tails.begin(), tails.end()) != tails.end()) {
    add_violation(report, ViolationKind::kMalformedCycle,
                  "cycle revisits a vertex", -1, -1, index);
    return false;
  }
  return true;
}

/// Exact resum check: the cycles must reconstitute the circulation edge by
/// edge (this *is* sign-consistency: every cycle pushes in the edge's own
/// direction, and nothing is left over or overshot).
void audit_decomposition(const Game& game, const Outcome& outcome,
                         AuditReport& report) {
  const auto m = static_cast<std::size_t>(game.num_edges());
  if (outcome.circulation.size() != m) return;  // already reported
  std::vector<__int128> resum(m, 0);
  for (std::size_t c = 0; c < outcome.cycles.size(); ++c) {
    const flow::CycleFlow& cycle = outcome.cycles[c].cycle;
    if (!audit_cycle_shape(game, cycle, static_cast<int>(c), report)) {
      return;  // resum would double-report on malformed input
    }
    for (EdgeId e : cycle.edges) {
      resum[static_cast<std::size_t>(e)] += cycle.amount;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (resum[i] != static_cast<__int128>(outcome.circulation[i])) {
      add_violation(
          report, ViolationKind::kDecompositionMismatch,
          fmt("cycles resum to %g but the circulation carries %g",
              static_cast<double>(resum[i]),
              static_cast<double>(outcome.circulation[i])),
          -1, static_cast<EdgeId>(i), -1,
          static_cast<double>(resum[i]) -
              static_cast<double>(outcome.circulation[i]));
    }
  }
}

/// Distinct participants of a cycle (tails; every participant of a simple
/// cycle is the tail of exactly one cycle edge and the head of another).
std::vector<PlayerId> participants_of(const Game& game,
                                      const flow::CycleFlow& cycle) {
  std::vector<PlayerId> players;
  players.reserve(cycle.edges.size());
  for (EdgeId e : cycle.edges) {
    players.push_back(game.edges()[static_cast<std::size_t>(e)].from);
  }
  std::sort(players.begin(), players.end());
  players.erase(std::unique(players.begin(), players.end()), players.end());
  return players;
}

/// Player v's bid value for one cycle, recomputed from raw edge data.
double cycle_value_of(const Game& game, const BidVector& bids,
                      const flow::CycleFlow& cycle, PlayerId v) {
  double value = 0.0;
  const double amount = static_cast<double>(cycle.amount);
  for (EdgeId e : cycle.edges) {
    const GameEdge& edge = game.edges()[static_cast<std::size_t>(e)];
    const auto i = static_cast<std::size_t>(e);
    if (edge.from == v) value += bids.tail[i] * amount;
    if (edge.to == v) value += bids.head[i] * amount;
  }
  return value;
}

double price_of(const PricedCycle& pc, PlayerId v) {
  double sum = 0.0;
  for (const core::PlayerPrice& p : pc.prices) {
    if (p.player == v) sum += p.price;
  }
  return sum;
}

double delay_bonus_of(const PricedCycle& pc, PlayerId v) {
  for (const core::PlayerPrice& b : pc.player_delay_bonuses) {
    if (b.player == v) return b.price;
  }
  return pc.delay_bonus;
}

void audit_pricing(const Game& game, const BidVector& bids,
                   const Outcome& outcome, const AuditOptions& options,
                   bool check_ir, AuditReport& report) {
  for (std::size_t c = 0; c < outcome.cycles.size(); ++c) {
    const PricedCycle& pc = outcome.cycles[c];
    const std::vector<PlayerId> players = participants_of(game, pc.cycle);

    // Schedule sanity.
    if (pc.release_time < 0.0 || pc.release_time > 1.0 ||
        !(pc.release_time == pc.release_time)) {
      add_violation(report, ViolationKind::kBadSchedule,
                    fmt("release_time %g outside [0, 1]", pc.release_time),
                    -1, -1, static_cast<int>(c), pc.release_time);
    }
    if (pc.delay_bonus < 0.0) {
      add_violation(report, ViolationKind::kBadSchedule,
                    fmt("negative cycle delay bonus %g", pc.delay_bonus), -1,
                    -1, static_cast<int>(c), pc.delay_bonus);
    }
    for (const core::PlayerPrice& b : pc.player_delay_bonuses) {
      if (b.price < 0.0) {
        add_violation(report, ViolationKind::kBadSchedule,
                      fmt("negative per-player delay bonus %g", b.price),
                      b.player, -1, static_cast<int>(c), b.price);
      }
    }

    // Every priced player must own an endpoint of some cycle edge.
    double price_sum = 0.0;
    double price_mass = 0.0;
    for (const core::PlayerPrice& p : pc.prices) {
      price_sum += p.price;
      price_mass += std::abs(p.price);
      const bool in_range = p.player >= 0 && p.player < game.num_players();
      const bool participates =
          in_range && std::binary_search(players.begin(), players.end(),
                                         p.player);
      if (!participates) {
        add_violation(report, ViolationKind::kStrangerPriced,
                      "price attached to a non-participant", p.player, -1,
                      static_cast<int>(c), p.price);
      }
    }

    // Cyclic budget balance: the cycle's prices are a pure transfer.
    const double cbb_slack = options.cbb_tolerance + 1e-12 * price_mass;
    if (std::abs(price_sum) > cbb_slack ||
        !(price_sum == price_sum)) {
      add_violation(report, ViolationKind::kBudgetImbalance,
                    fmt("cycle prices sum to %g (|.| must be <= %g)",
                        price_sum, cbb_slack),
                    -1, -1, static_cast<int>(c), price_sum);
    }

    // Individual rationality: no participant loses from a cycle it is
    // part of, measured under the audited bid profile.
    if (check_ir) {
      for (PlayerId v : players) {
        const double value = cycle_value_of(game, bids, pc.cycle, v);
        const double price = price_of(pc, v);
        const double bonus = delay_bonus_of(pc, v);
        const double utility = value - price + bonus;
        const double slack = options.ir_tolerance +
                             1e-9 * (std::abs(value) + std::abs(price));
        if (!(utility >= -slack)) {
          add_violation(
              report, ViolationKind::kNegativeUtility,
              fmt("participant utility %g (value - price + bonus) below "
                  "-%g",
                  utility, slack),
              v, -1, static_cast<int>(c), utility);
        }
      }
    }
  }
}

}  // namespace

AuditReport InvariantAuditor::audit_circulation(
    const core::Game& game, const flow::Circulation& f,
    std::string_view subject) const {
  AuditReport report;
  report.subject = std::string(subject);
  audit_flow(game, f, report);
  return report;
}

AuditReport InvariantAuditor::audit_outcome(const core::Game& game,
                                            const core::BidVector& bids,
                                            const core::Outcome& outcome,
                                            std::string_view subject) const {
  AuditReport report;
  report.subject = std::string(subject);

  const auto m = static_cast<std::size_t>(game.num_edges());
  if (bids.tail.size() != m || bids.head.size() != m) {
    add_violation(report, ViolationKind::kSizeMismatch,
                  "bid vector has (" + std::to_string(bids.tail.size()) +
                      ", " + std::to_string(bids.head.size()) +
                      ") entries for " + std::to_string(m) + " edges");
    return report;
  }
  if (options_.check_bid_bounds) audit_bid_bounds(game, bids, report);
  audit_flow(game, outcome.circulation, report);
  audit_decomposition(game, outcome, report);
  audit_pricing(game, bids, outcome, options_,
                options_.check_individual_rationality, report);
  return report;
}

}  // namespace musketeer::check
