#include "check/violation.hpp"

#include <cstdio>

namespace musketeer::check {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kSizeMismatch: return "size-mismatch";
    case ViolationKind::kBidBound: return "bid-bound";
    case ViolationKind::kCapacity: return "capacity";
    case ViolationKind::kConservation: return "conservation";
    case ViolationKind::kMalformedCycle: return "malformed-cycle";
    case ViolationKind::kDecompositionMismatch: return "decomposition-mismatch";
    case ViolationKind::kStrangerPriced: return "stranger-priced";
    case ViolationKind::kBudgetImbalance: return "budget-imbalance";
    case ViolationKind::kNegativeUtility: return "negative-utility";
    case ViolationKind::kBadSchedule: return "bad-schedule";
  }
  return "unknown";
}

int AuditReport::count(ViolationKind kind) const {
  int n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

std::string AuditReport::to_string() const {
  if (ok()) return "audit[" + subject + "]: ok";
  std::string out = "audit[" + subject + "]: " +
                    std::to_string(violations.size()) + " violation(s)";
  for (const Violation& v : violations) {
    out += "\n  [";
    out += check::to_string(v.kind);
    out += "] ";
    out += v.detail;
    char where[96];
    std::snprintf(where, sizeof(where), " (node=%d edge=%d cycle=%d mag=%g)",
                  v.node, v.edge, v.cycle, v.magnitude);
    out += where;
  }
  return out;
}

}  // namespace musketeer::check
