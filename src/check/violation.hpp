// Structured invariant-violation reports.
//
// The auditor never aborts by itself: it returns an AuditReport listing
// every violated invariant with enough context (edge, node, cycle index,
// magnitude) to reproduce the failure. Callers that want hard failure
// (the MUSKETEER_AUDIT hooks) feed `AuditReport::to_string()` into
// MUSK_ASSERT_MSG.
#pragma once

#include <string>
#include <vector>

#include "flow/graph.hpp"

namespace musketeer::check {

enum class ViolationKind {
  /// Vector sizes disagree with the game (circulation or bid vectors).
  kSizeMismatch,
  /// A bid or valuation lies outside (-kMaxFeeRate, 0] / [0, kMaxFeeRate).
  kBidBound,
  /// f(e) < 0 or f(e) > capacity(e).
  kCapacity,
  /// Nonzero net flow at a vertex.
  kConservation,
  /// A cycle is not a simple cycle of the game graph (broken chaining,
  /// repeated vertex, empty edge list, or non-positive amount).
  kMalformedCycle,
  /// The cycles do not resum to the outcome's circulation (the
  /// decomposition is not sign-consistent).
  kDecompositionMismatch,
  /// A price is attached to a player that owns no edge of the cycle.
  kStrangerPriced,
  /// A cycle's prices do not sum to zero (cyclic budget balance).
  kBudgetImbalance,
  /// A truthful participant would realize negative utility from a cycle
  /// (individual rationality).
  kNegativeUtility,
  /// release_time outside [0, 1] or a negative delay bonus.
  kBadSchedule,
};

/// Human-readable name of a violation kind (stable, used in reports).
const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kSizeMismatch;
  /// Free-form detail, e.g. "net(+3) at node 4".
  std::string detail;
  /// Offending indices; -1 when not applicable.
  flow::NodeId node = -1;
  flow::EdgeId edge = -1;
  int cycle = -1;
  /// Size of the violation in the check's own unit (flow units for
  /// conservation/capacity, coins for prices/utilities).
  double magnitude = 0.0;
};

struct AuditReport {
  std::vector<Violation> violations;
  /// Label of the audited artifact ("m3-double-auction", "decompose", ...).
  std::string subject;

  bool ok() const { return violations.empty(); }

  /// Count of violations of one kind.
  int count(ViolationKind kind) const;
  /// True iff at least one violation of `kind` was recorded.
  bool has(ViolationKind kind) const { return count(kind) > 0; }

  /// Multi-line report: one line per violation, prefixed by the subject.
  std::string to_string() const;
};

}  // namespace musketeer::check
