// Mechanism M1 (§3.2): rebalancing with publicly fixed fees.
//
// No bids are submitted; users only declare which of their channel
// directions are depleted (the set D). A public fee rate p_hat and a
// buyer-rate bound k are known upfront:
//   * every indifferent edge earns its tail (seller) p_hat per unit flow;
//   * every depleted edge's head (buyer) is charged at most k * p_hat
//     per unit flow.
// The circulation maximizes  sum_D k*p_hat*f(e) - sum_I p_hat*f(e),
// which admits only cycles with fewer than k indifferent edges per
// depleted edge; the per-cycle seller cost C_i is split equally among the
// cycle's depleted edges, so each cycle is exactly budget balanced and
// buyers never exceed the k*p_hat rate (Theorem 2).
//
// Within the common Mechanism interface, M1 reads only the *sign* of the
// head bids to recover D (head bid > 0 <=> declared depleted); magnitudes
// are ignored, mirroring the paper's bid-free input.
#pragma once

#include "core/mechanism.hpp"

namespace musketeer::core {

class M1FixedFee : public Mechanism {
 public:
  /// `fee_rate` is p_hat (> 0) and `k` >= 1 bounds the buyer rate at
  /// k * p_hat; k * fee_rate must stay below the 10% valuation bound.
  M1FixedFee(double fee_rate, double k,
             flow::SolverKind solver = flow::SolverKind::kBellmanFord);

  std::string_view name() const override { return "M1-fixed-fee"; }

  /// M1 is IR only after the self-selection step (m1_self_selected); run
  /// on an unrestricted game a conscripted seller may be paid below cost.
  bool claims_individual_rationality() const override { return false; }

  double fee_rate() const { return fee_rate_; }
  double k() const { return k_; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  double fee_rate_;
  double k_;
  flow::SolverKind solver_;
};

/// The self-selection step of Theorem 2: since p_hat and k are public,
/// users join M1 only if it can't hurt them. Returns the game restricted
/// to edges whose owners opt in — sellers with cost <= fee_rate and
/// buyers with value >= k * fee_rate (plus free capacity). M1 run on this
/// restriction is individually rational for every participant.
Game m1_self_selected(const Game& game, double fee_rate, double k);

}  // namespace musketeer::core
