#include "core/repeated.hpp"

#include <algorithm>

#include "core/properties.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

namespace {

// Re-issues the round's game with unmet-demand carryover: a buyer whose
// rebalancing failed in previous rounds values this round's opportunity
// more (compounding urgency, capped by the valid bid range).
Game with_carryover(const Game& base, const std::vector<int>& carry) {
  Game boosted(base.num_players());
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const GameEdge& edge = base.edge(e);
    double head = edge.head_valuation;
    if (head > 0.0) {
      const int c = carry[static_cast<std::size_t>(edge.to)];
      head = std::min(head * (1.0 + 0.25 * static_cast<double>(c)),
                      kMaxFeeRate - 1e-9);
    }
    boosted.add_edge(edge.from, edge.to, edge.capacity, edge.tail_valuation,
                     head);
  }
  return boosted;
}

struct Bandit {
  std::vector<double> value;
  std::vector<int> count;

  explicit Bandit(std::size_t arms) : value(arms, 0.0), count(arms, 0) {}

  std::size_t pick(const RepeatedConfig& config, util::Rng& rng) const {
    if (rng.uniform01() < config.epsilon) {
      return rng.uniform(value.size());
    }
    return greedy();
  }

  // Optimistic greedy: unexplored arms first, then highest mean reward.
  std::size_t greedy() const {
    std::size_t best = 0;
    for (std::size_t a = 1; a < value.size(); ++a) {
      const bool a_new = count[a] == 0;
      const bool best_new = count[best] == 0;
      if (a_new && !best_new) {
        best = a;
      } else if (!a_new && !best_new && value[a] > value[best]) {
        best = a;
      }
    }
    return best;
  }

  // Final verdict: best explored arm (what the player actually learned).
  std::size_t learned() const {
    std::size_t best = 0;
    bool found = false;
    for (std::size_t a = 0; a < value.size(); ++a) {
      if (count[a] == 0) continue;
      if (!found || value[a] > value[best]) {
        best = a;
        found = true;
      }
    }
    return found ? best : value.size() - 1;
  }

  void update(std::size_t arm, double reward) {
    ++count[arm];
    value[arm] += (reward - value[arm]) / static_cast<double>(count[arm]);
  }
};

}  // namespace

RepeatedResult run_repeated_game(const Mechanism& mechanism,
                                 const GameSampler& sample_game,
                                 const std::vector<PlayerId>& adaptive_players,
                                 const RepeatedConfig& config,
                                 util::Rng& rng) {
  MUSK_ASSERT(config.rounds > 0);
  MUSK_ASSERT(!config.arms.empty());

  RepeatedResult result;
  std::vector<Bandit> bandits(adaptive_players.size(),
                              Bandit(config.arms.size()));
  std::vector<int> carry;
  double realized_welfare = 0.0, truthful_welfare = 0.0;

  for (int round = 0; round < config.rounds; ++round) {
    const Game sampled = sample_game(rng);
    if (carry.empty()) {
      carry.assign(static_cast<std::size_t>(sampled.num_players()), 0);
      result.total_utility.assign(
          static_cast<std::size_t>(sampled.num_players()), 0.0);
    }
    MUSK_ASSERT(carry.size() ==
                static_cast<std::size_t>(sampled.num_players()));
    const Game game = with_carryover(sampled, carry);

    // Adaptive players choose shading arms; everyone else is truthful.
    BidVector bids = game.truthful_bids();
    std::vector<std::size_t> chosen(adaptive_players.size());
    double shading_sum = 0.0;
    for (std::size_t i = 0; i < adaptive_players.size(); ++i) {
      chosen[i] = bandits[i].pick(config, rng);
      const double scale = config.arms[chosen[i]];
      shading_sum += scale;
      bids = scale_player_bids(game, bids, adaptive_players[i], scale);
    }
    result.mean_shading_per_round.push_back(
        adaptive_players.empty()
            ? 1.0
            : shading_sum / static_cast<double>(adaptive_players.size()));

    const Outcome outcome = mechanism.run(game, bids);
    realized_welfare += outcome.realized_welfare(game);
    truthful_welfare +=
        mechanism.run_truthful(game).realized_welfare(game);

    for (PlayerId v = 0; v < game.num_players(); ++v) {
      result.total_utility[static_cast<std::size_t>(v)] +=
          outcome.player_utility(game, v);
    }
    for (std::size_t i = 0; i < adaptive_players.size(); ++i) {
      bandits[i].update(chosen[i],
                        outcome.player_utility(game, adaptive_players[i]));
    }

    // Demand persistence: buyers whose depleted edges saw no flow carry
    // their urgency forward with probability `persistence`.
    for (PlayerId v = 0; v < game.num_players(); ++v) {
      bool had_demand = false, satisfied = false;
      for (EdgeId e = 0; e < game.num_edges(); ++e) {
        if (game.edge(e).to != v || game.edge(e).head_valuation <= 0.0) {
          continue;
        }
        had_demand = true;
        if (outcome.circulation[static_cast<std::size_t>(e)] > 0) {
          satisfied = true;
        }
      }
      auto& c = carry[static_cast<std::size_t>(v)];
      if (!had_demand || satisfied) {
        c = 0;
      } else if (rng.uniform01() < config.persistence) {
        c = std::min(c + 1, 8);
      } else {
        c = 0;
      }
    }
  }

  result.welfare_ratio =
      truthful_welfare > 0 ? realized_welfare / truthful_welfare : 1.0;
  for (const Bandit& bandit : bandits) {
    result.learned_shading.push_back(config.arms[bandit.learned()]);
  }
  return result;
}

}  // namespace musketeer::core
