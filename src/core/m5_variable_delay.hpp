// Mechanism M5 (§4 "Variable Delay Costs"): M4 with per-player delay
// factors.
//
// Different users value earlier release differently — the paper reads
// d_v as the opportunity cost of capital locked in depleted channels.
// M5 keeps M4's circulation and prices, but each cycle's release time is
// normalized by the *largest* delay factor among its participants:
//     t_i = 1 - (1 - 1/n_i) * SW(b, f_i) / max_{v in f_i} d_v,
// so the most delay-sensitive participant receives exactly the bonus
// M4's truthfulness telescoping needs, while everyone else receives
// d_v * (1 - t_i) <= that amount.
//
// Consequences (the paper's predicted difficulty, measurable in
// bench/e10_variable_delay):
//   * IR still holds: bonuses are non-negative on top of M3's IR prices.
//   * Truthfulness holds exactly for the max-d participant of each cycle
//     and degrades for lower-d participants in proportion to the spread
//     d_max/d_v — their utility retains a bid-dependent residual.
#pragma once

#include <vector>

#include "core/mechanism.hpp"

namespace musketeer::core {

class M5VariableDelay : public Mechanism {
 public:
  /// One positive delay factor per player.
  explicit M5VariableDelay(
      std::vector<double> delay_factors,
      flow::SolverKind solver = flow::SolverKind::kBellmanFord);

  std::string_view name() const override { return "M5-variable-delay"; }

  const std::vector<double>& delay_factors() const { return delay_factors_; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  std::vector<double> delay_factors_;
  flow::SolverKind solver_;
};

}  // namespace musketeer::core
