// The Musketeer rebalancing game (Definition 1).
//
// Players are vertices of a directed capacitated graph; each directed edge
// (u, v) is one direction of a payment channel submitted to the
// rebalancing mechanism. Following §2.3:
//   * the tail u authorizes outgoing flow, earns any routing fees, and is
//     the potential *seller* of the edge — its valuation is non-positive;
//   * the head v is the party that benefits from inbound rebalancing flow
//     and is the potential *buyer* — its valuation is non-negative.
// Every edge therefore carries two stakes (tail, head), at most one of
// which is typically non-zero. With this convention a simple cycle of n
// edges has exactly n participating vertices (each vertex of the cycle is
// head of one cycle edge and tail of the next), which is precisely the
// accounting under which the paper's per-cycle price formulas are exactly
// cyclic-budget-balanced.
//
// Valuations are the players' private types; bids are what they submit.
// The Game stores valuations; BidVector carries (possibly untruthful)
// bids so strategy probes can perturb them independently.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "flow/circulation.hpp"
#include "flow/decompose.hpp"
#include "flow/graph.hpp"

namespace musketeer::flow {
class SolveContext;
}

namespace musketeer::core {

/// Per-edge bid pair: what the tail (seller) and head (buyer) report.
struct BidVector {
  std::vector<double> tail;  // <= 0, one per edge
  std::vector<double> head;  // >= 0, one per edge

  std::size_t size() const {
    // A head/tail length mismatch means a malformed profile: every
    // consumer indexes both arrays by the same edge id, so trusting
    // tail.size() alone would read out of bounds later. Fail loudly here.
    MUSK_ASSERT_MSG(tail.size() == head.size(),
                    "BidVector tail/head length mismatch");
    return tail.size();
  }
};

/// One direction of a channel offered to the mechanism.
struct GameEdge {
  NodeId from = 0;
  NodeId to = 0;
  Amount capacity = 0;
  /// Tail (seller) valuation per unit flow; in (-kMaxFeeRate, 0].
  double tail_valuation = 0.0;
  /// Head (buyer) valuation per unit flow; in [0, kMaxFeeRate).
  double head_valuation = 0.0;
};

class Game {
 public:
  explicit Game(NodeId num_players);

  /// Adds a directed edge. `head_valuation > 0` marks a depleted edge
  /// (the head wants rebalancing); `tail_valuation < 0` a seller cost.
  EdgeId add_edge(NodeId from, NodeId to, Amount capacity,
                  double tail_valuation, double head_valuation);

  NodeId num_players() const { return num_players_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }
  const GameEdge& edge(EdgeId e) const;
  const std::vector<GameEdge>& edges() const { return edges_; }

  /// An edge is depleted iff its head values inbound flow positively
  /// (the paper's D set).
  bool is_depleted(EdgeId e) const { return edge(e).head_valuation > 0.0; }

  /// The truthful bid vector b = v.
  BidVector truthful_bids() const;

  /// True iff bids are "valid" per §2.3: tail in (-0.1, 0], head in
  /// [0, 0.1), sizes matching.
  bool is_valid(const BidVector& bids) const;

  /// Flow graph whose per-edge gain is the aggregate bid
  /// tail + head (the edge's contribution to social welfare per unit).
  flow::Graph build_graph(const BidVector& bids) const;

  /// Binds this game's graph (same edges and gains as build_graph) into
  /// `ctx`, rebinding in place when the topology matches what the context
  /// already holds. Returns the bound graph. The preferred entry point
  /// for mechanisms: a warm context makes this allocation-free.
  const flow::Graph& bind_graph(flow::SolveContext& ctx,
                                const BidVector& bids) const;

  /// Same, but with every edge incident to `excluded` given capacity 0
  /// (the paper's G_{-v}).
  flow::Graph build_graph_without(const BidVector& bids,
                                  PlayerId excluded) const;

  /// Player v's value for a circulation under the given per-edge stakes
  /// (bids or valuations): sum over edges where v is tail/head.
  double player_value(PlayerId v, const BidVector& stakes,
                      const flow::Circulation& f) const;

  /// Player v's value for a single cycle flow.
  double player_cycle_value(PlayerId v, const BidVector& stakes,
                            const flow::CycleFlow& cycle) const;

  /// True iff v is an endpoint of some edge of the cycle.
  bool participates(PlayerId v, const flow::CycleFlow& cycle) const;

  /// The distinct vertices of a cycle, in traversal order.
  std::vector<PlayerId> cycle_players(const flow::CycleFlow& cycle) const;

  /// Social welfare of f under stakes: sum over players of player_value.
  double social_welfare(const BidVector& stakes,
                        const flow::Circulation& f) const;

  /// Social welfare of one cycle under stakes.
  double cycle_welfare(const BidVector& stakes,
                       const flow::CycleFlow& cycle) const;

 private:
  NodeId num_players_;
  std::vector<GameEdge> edges_;
};

}  // namespace musketeer::core
