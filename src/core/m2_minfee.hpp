// M2-MinFee (§4 "Minimum Fees for Sellers"): a VCG-style single auction
// that guarantees every seller a floor fee per unit routed.
//
// M2's known limitation: the buyers' VCG charges depend on competition in
// the graph — with a single feasible cycle the pivot payment is zero and
// sellers route for free. The paper asks whether a modified mechanism can
// guarantee a minimum per-unit fee to sellers. This variant answers
// constructively at a known cost:
//
//   1. Run M2 (circulation, VCG charges, proportional per-cycle split).
//   2. Per cycle, if the collected buyer fees fall short of
//      min_fee * (units routed through sellers), top buyers up to the
//      floor, but never beyond each buyer's per-cycle bid value (so
//      per-cycle IR under truthful bids is preserved).
//   3. If even bid-capped top-ups cannot fund the floor, drop the cycle:
//      sellers are never paid below the floor for work they do.
//
// Cost: the top-up depends on the buyer's own bid, so exact (buyer-)
// truthfulness is sacrificed — the residual manipulability and the
// liquidity lost to dropped cycles are measured in bench/e10.
#pragma once

#include "core/mechanism.hpp"

namespace musketeer::core {

class M2MinFee : public Mechanism {
 public:
  explicit M2MinFee(double min_seller_fee,
                    flow::SolverKind solver = flow::SolverKind::kBellmanFord);

  std::string_view name() const override { return "M2-minfee"; }

  /// Same non-strategic-seller model as M2-vcg.
  BidVector audited_bids(const BidVector& bids) const override {
    BidVector out = bids;
    for (double& t : out.tail) t = 0.0;
    return out;
  }

  double min_seller_fee() const { return min_seller_fee_; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  double min_seller_fee_;
  flow::SolverKind solver_;
};

}  // namespace musketeer::core
