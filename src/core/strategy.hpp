// Strategic analysis helpers beyond single-player truthfulness probes:
// the §4 collusion (group-strategyproofness) experiment.
//
// The paper's counterexample: for a channel depleted from u to v, an
// honest u reports a positive buyer bid, which precludes v from earning
// routing fees on that channel. If u misreports the channel as
// indifferent (zero bid), v may earn fees while u pays none — the *pair*
// can gain even though neither can gain alone under M2/M4.
#pragma once

#include "core/mechanism.hpp"

namespace musketeer::core {

struct CollusionReport {
  PlayerId first = 0;
  PlayerId second = 0;
  double honest_joint_utility = 0.0;
  double best_joint_utility = 0.0;
  double gain() const { return best_joint_utility - honest_joint_utility; }
};

/// Searches a grid of joint deviations (scaling each player's stakes by a
/// factor from `scales`, including 0 = fully withholding) for the pair
/// maximizing joint utility. Quadratic in |scales|; intended for small
/// grids.
CollusionReport probe_collusion(const Mechanism& mechanism, const Game& game,
                                PlayerId first, PlayerId second,
                                const std::vector<double>& scales);

/// The paper's specific §4 manipulation for a channel (edge): the buyer
/// zeroes its head bid on `edge` while the counterparty adds a seller
/// stake of `seller_bid` (<= 0) on the *reverse* direction. Returns a new
/// game where the channel's status flipped from depleted to indifferent.
/// (Used by bench/e8_collusion with an explicit reverse edge.)
BidVector withhold_edge_bid(const Game& game, const BidVector& bids,
                            EdgeId edge);

/// Generalized coalition probe: exhaustive grid search over joint
/// scalings for an arbitrary coalition. Cost is |scales|^|coalition|
/// mechanism runs — keep coalitions small (pairs, triples).
struct CoalitionReport {
  std::vector<PlayerId> coalition;
  double honest_joint_utility = 0.0;
  double best_joint_utility = 0.0;
  /// Scales realizing the best joint utility, aligned with `coalition`.
  std::vector<double> best_scales;
  double gain() const { return best_joint_utility - honest_joint_utility; }
};

CoalitionReport probe_coalition(const Mechanism& mechanism, const Game& game,
                                const std::vector<PlayerId>& coalition,
                                const std::vector<double>& scales);

}  // namespace musketeer::core
