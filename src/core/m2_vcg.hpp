// Mechanism M2 (§3.3): a VCG-type truthful single auction.
//
// Sellers are assumed non-strategic (all tail bids are treated as 0);
// buyers submit non-negative head bids. Prices follow the VCG pivot rule
//     p(v) = SW(b_{-v}, f_{-v}) - SW(b_{-v}, f),
// where f_{-v} maximizes welfare on G_{-v} (v and its incident edges
// removed). Buyer truthfulness and individual rationality follow the
// classic argument (Theorem 3). The aggregate VCG charge of each player is
// split across cycles in proportion to the player's bid value for the
// cycle, and each cycle's collected fees are redistributed equally among
// that cycle's sellers to restore cyclic budget balance.
//
// Two boundary cases the paper leaves implicit (see DESIGN.md §5):
//   * A buyer with p(v) != 0 but zero bid value in f has no proportional
//     split; the charge is dropped (the buyer won nothing to pay for).
//   * A cycle whose collected fees q_i are negative, or that has no
//     seller to absorb q_i > 0, cannot be balanced without taxing
//     zero-valuation players; its prices are zeroed. This is exactly the
//     "minimum fees for sellers" limitation discussed in §4.
#pragma once

#include "core/mechanism.hpp"

namespace musketeer::core {

class M2Vcg : public Mechanism {
 public:
  explicit M2Vcg(flow::SolverKind solver = flow::SolverKind::kBellmanFord)
      : solver_(solver) {}

  std::string_view name() const override { return "M2-vcg"; }

  /// M2's sellers are non-strategic: its guarantees (and hence the audit)
  /// are stated against the bid profile with tail bids forced to zero.
  BidVector audited_bids(const BidVector& bids) const override {
    BidVector out = bids;
    for (double& t : out.tail) t = 0.0;
    return out;
  }

  /// Aggregate VCG pivot price of each player under the given bids (tail
  /// bids zeroed). Exposed for tests and the truthfulness bench. The
  /// exclusion re-solves run as O(deg) capacity masks on `ctx`'s graph —
  /// no per-buyer graph rebuilds. When `ctx` carries a current shard
  /// pool (an attached Executor with concurrency > 1), each exclusion
  /// re-solves only the masked buyer's weakly-connected component, and
  /// components are repriced as parallel executor tasks with task-local
  /// solver state — `ctx` itself is never shared across threads. Prices
  /// are bit-identical either way.
  std::vector<double> vcg_prices(flow::SolveContext& ctx, const Game& game,
                                 const BidVector& bids) const;

  /// Context-free convenience (thread-local context).
  std::vector<double> vcg_prices(const Game& game, const BidVector& bids) const;

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  flow::SolverKind solver_;
};

}  // namespace musketeer::core
