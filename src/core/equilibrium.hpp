// Best-response dynamics and equilibrium welfare analysis
// (§4 "Finer Analysis of Incentives").
//
// The paper asks for a quantitative theory of misreporting: how much do
// players gain by shading, and what does strategic play cost the market?
// This module computes an (approximate, pure-strategy) Nash equilibrium
// of the induced bidding game by round-robin best-response over a
// discrete strategy space — each player's strategy is a scaling factor
// applied to its truthful stakes — and reports the equilibrium's welfare
// relative to the truthful optimum (an empirical price of anarchy).
//
// For a truthful mechanism the dynamics converge immediately to all-ones;
// for M3 they converge to a shaded profile whose welfare deficit is the
// measured cost of first-price-style pricing (bench/e12_equilibrium).
#pragma once

#include <vector>

#include "core/mechanism.hpp"

namespace musketeer::core {

struct BestResponseConfig {
  /// Strategy grid: candidate scaling factors for each player's stakes.
  std::vector<double> scales{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  /// Maximum full round-robin passes before giving up.
  int max_passes = 40;
  /// A deviation must improve utility by more than this to be taken
  /// (breaks limit cycles caused by exact ties).
  double improvement_tolerance = 1e-9;
};

struct EquilibriumResult {
  /// Final scaling factor per player.
  std::vector<double> strategy;
  /// Bid profile realizing the strategies.
  BidVector bids;
  bool converged = false;
  int passes = 0;
  /// Realized welfare (true valuations) at the final profile.
  double equilibrium_welfare = 0.0;
  /// Realized welfare under truthful bidding (the efficient benchmark).
  double truthful_welfare = 0.0;
  /// equilibrium_welfare / truthful_welfare (1 = no strategic loss).
  double welfare_ratio() const {
    return truthful_welfare > 0 ? equilibrium_welfare / truthful_welfare
                                : 1.0;
  }
};

/// Runs round-robin best response from the truthful profile.
EquilibriumResult best_response_dynamics(const Mechanism& mechanism,
                                         const Game& game,
                                         const BestResponseConfig& config = {});

}  // namespace musketeer::core
