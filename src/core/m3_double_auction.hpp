// Mechanism M3 (§3.4): a first-price-style double auction.
//
// 1. f := argmax SW(b, f) over feasible circulations.
// 2. Sign-consistent cycle decomposition f_1..f_k.
// 3. For each cycle f_i of length n_i and each of its n_i participating
//    vertices v:  p_i(v) := b_v(f_i) - SW(b, f_i) / n_i.
//
// Properties (Theorem 4): economic efficiency, individual rationality and
// cyclic budget balance — but NOT truthfulness (players are incentivized
// to shade bids like in a first-price auction; bench/e3_truthfulness
// quantifies the deviation gains).
#pragma once

#include "core/mechanism.hpp"

namespace musketeer::core {

class M3DoubleAuction : public Mechanism {
 public:
  explicit M3DoubleAuction(
      flow::SolverKind solver = flow::SolverKind::kBellmanFord)
      : solver_(solver) {}

  std::string_view name() const override { return "M3-double-auction"; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  flow::SolverKind solver_;
};

/// Shared by M3 and M4: prices one cycle with the uniform welfare-share
/// rule p_i(v) = b_v(f_i) - SW(b, f_i)/n_i over the cycle's n_i vertices.
std::vector<PlayerPrice> price_cycle_welfare_share(const Game& game,
                                                   const BidVector& bids,
                                                   const flow::CycleFlow& cycle);

}  // namespace musketeer::core
