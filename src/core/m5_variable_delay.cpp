#include "core/m5_variable_delay.hpp"

#include <algorithm>

#include "core/m3_double_auction.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

M5VariableDelay::M5VariableDelay(std::vector<double> delay_factors,
                                 flow::SolverKind solver)
    : delay_factors_(std::move(delay_factors)), solver_(solver) {
  MUSK_ASSERT_MSG(!delay_factors_.empty(), "need at least one delay factor");
  for (double d : delay_factors_) {
    MUSK_ASSERT_MSG(d > 0.0, "delay factors must be positive");
  }
}

Outcome M5VariableDelay::run_impl(flow::SolveContext& ctx, const Game& game,
                                  const BidVector& bids) const {
  MUSK_ASSERT_MSG(game.is_valid(bids), "invalid bid vector");
  MUSK_ASSERT_MSG(delay_factors_.size() ==
                      static_cast<std::size_t>(game.num_players()),
                  "one delay factor per player required");
  game.bind_graph(ctx, bids);
  Outcome outcome;
  outcome.circulation = ctx.solve(solver_);
  for (flow::CycleFlow& cycle : ctx.decompose(outcome.circulation)) {
    PricedCycle pc;
    pc.prices = price_cycle_welfare_share(game, bids, cycle);
    const std::vector<PlayerId> players = game.cycle_players(cycle);
    double d_max = 0.0;
    for (PlayerId v : players) {
      d_max = std::max(d_max, delay_factors_[static_cast<std::size_t>(v)]);
    }
    const double n = static_cast<double>(cycle.length());
    const double sw = game.cycle_welfare(bids, cycle);
    pc.release_time =
        std::clamp(1.0 - (1.0 - 1.0 / n) * sw / d_max, 0.0, 1.0);
    pc.delay_bonus = 0.0;  // superseded by the per-player bonuses
    pc.player_delay_bonuses.reserve(players.size());
    for (PlayerId v : players) {
      pc.player_delay_bonuses.push_back(PlayerPrice{
          v, delay_factors_[static_cast<std::size_t>(v)] *
                 (1.0 - pc.release_time)});
    }
    pc.cycle = std::move(cycle);
    outcome.cycles.push_back(std::move(pc));
  }
  return outcome;
}

}  // namespace musketeer::core
