// Property checkers for the four Musketeer desiderata (Definition 1).
//
// Each checker returns a quantitative report rather than a bool so the
// benches can print *margins* (how balanced, how rational, how far from
// the optimum) and the tests can assert tolerances.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "core/mechanism.hpp"
#include "core/outcome.hpp"

namespace musketeer::core {

/// Property 2 — cyclic budget balance: prices of each cycle sum to zero.
struct BudgetBalanceReport {
  /// max over cycles of |sum of prices| (coins).
  double max_cycle_imbalance = 0.0;
  /// Sum over all cycles (strong budget balance margin).
  double total_imbalance = 0.0;
  bool holds(double tol = 1e-6) const { return max_cycle_imbalance <= tol; }
};
BudgetBalanceReport check_cyclic_budget_balance(const Outcome& outcome);

/// Property 3 — individual rationality: every cycle yields non-negative
/// utility to every truthful participant.
struct RationalityReport {
  /// min over (cycle, participant) of per-cycle utility
  /// value - price (+ delay bonus when the mechanism grants one).
  double min_cycle_utility = 0.0;
  /// min over players of total utility.
  double min_total_utility = 0.0;
  int violations = 0;
  bool holds(double tol = 1e-9) const { return min_cycle_utility >= -tol; }
};
RationalityReport check_individual_rationality(const Game& game,
                                               const Outcome& outcome);

/// Property 1 — economic efficiency: the outcome's circulation maximizes
/// SW under the submitted bids. Certified exactly via the residual
/// negative-cycle test, and quantified against a fresh solve.
struct EfficiencyReport {
  double outcome_welfare = 0.0;   // SW(b, f) of the mechanism's output
  double optimal_welfare = 0.0;   // SW(b, f*) of an independent solve
  bool certified_optimal = false; // no negative residual cycle
  double ratio() const {
    return optimal_welfare > 0 ? outcome_welfare / optimal_welfare : 1.0;
  }
};
EfficiencyReport check_efficiency(const Game& game, const BidVector& bids,
                                  const Outcome& outcome);

/// Property 4 — truthfulness (probe): best-response search over a grid of
/// unilateral bid deviations for one player. Returns the maximum utility
/// gain over truthful bidding (<= tol for a truthful mechanism).
struct DeviationReport {
  double truthful_utility = 0.0;
  double best_utility = 0.0;
  /// Scale factor (applied to all the player's stakes) achieving best.
  double best_scale = 1.0;
  double gain() const { return best_utility - truthful_utility; }
};
DeviationReport probe_truthfulness(const Mechanism& mechanism,
                                   const Game& game, PlayerId player,
                                   const std::vector<double>& scales);

/// Scales all of one player's stakes in `bids` by `scale` (clamped into
/// the valid range). Used by deviation probes and the collusion bench.
BidVector scale_player_bids(const Game& game, const BidVector& bids,
                            PlayerId player, double scale);

}  // namespace musketeer::core
