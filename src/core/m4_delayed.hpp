// Mechanism M4 (§3.5): a truthful double auction with time delays.
//
// Identical to M3 in circulation and prices, plus a release time per
// cycle:
//     t_i = 1 - (1 - 1/n_i) * SW(b, f_i) / d,   clamped to [0, 1],
// where d is the global delay factor. Participants implicitly assume
// cycles release at t = 1; releasing at t_i < 1 grants every participant
// a utility bonus of d * (1 - t_i).
//
// With the bonus, a participant's per-cycle utility telescopes to
// SW((v_v, b_{-v}), f_i) — independent of the player's own bid — which is
// the paper's truthfulness argument (Theorem 5). The price paid for
// dodging the Myerson–Satterthwaite impossibility is efficiency: welfare
// is maximal in liquidity terms, but players bear delay costs.
//
// Coins are pre-locked for the maximum delay before the outcome is
// revealed (§2.2/§3.5 remark); the PCN bridge enforces this.
#pragma once

#include "core/mechanism.hpp"

namespace musketeer::core {

class M4DelayedAuction : public Mechanism {
 public:
  /// `delay_factor` is the paper's d > 0: the marginal utility of one
  /// unit of earlier release, and the normalizer mapping cycle welfare to
  /// release times.
  explicit M4DelayedAuction(
      double delay_factor,
      flow::SolverKind solver = flow::SolverKind::kBellmanFord);

  std::string_view name() const override { return "M4-delayed-auction"; }

  double delay_factor() const { return delay_factor_; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  double delay_factor_;
  flow::SolverKind solver_;
};

}  // namespace musketeer::core
