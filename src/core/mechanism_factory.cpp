#include "core/mechanism_factory.hpp"

#include "core/baselines.hpp"
#include "core/m1_fixed_fee.hpp"
#include "core/m2_minfee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"

namespace musketeer::core {

std::unique_ptr<Mechanism> make_mechanism(const std::string& name,
                                          const MechanismOptions& options) {
  if (name == "m1") {
    return std::make_unique<M1FixedFee>(options.fee, options.k);
  }
  if (name == "m2") return std::make_unique<M2Vcg>();
  if (name == "m2-minfee") {
    return std::make_unique<M2MinFee>(options.floor);
  }
  if (name == "m3") return std::make_unique<M3DoubleAuction>();
  if (name == "m4") {
    return std::make_unique<M4DelayedAuction>(options.delay);
  }
  if (name == "hideseek") return std::make_unique<HideSeek>();
  if (name == "local") {
    return std::make_unique<LocalRebalancing>(4, options.fee);
  }
  if (name == "none") return std::make_unique<NoRebalancing>();
  return nullptr;
}

const std::vector<std::string>& mechanism_names() {
  static const std::vector<std::string> names = {
      "m1", "m2", "m2-minfee", "m3", "m4", "hideseek", "local", "none"};
  return names;
}

}  // namespace musketeer::core
