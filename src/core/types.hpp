// Shared identifiers and constants for the Musketeer game model.
#pragma once

#include <cstdint>

#include "flow/graph.hpp"

namespace musketeer::core {

using PlayerId = flow::NodeId;  // players are the vertices of the PCN graph
using flow::Amount;
using flow::EdgeId;
using flow::NodeId;

/// The paper's bound on valuations: ||v_u||_inf < 0.1 — no user pays or
/// charges a fee rate of 10% or more per unit flow.
inline constexpr double kMaxFeeRate = 0.1;

}  // namespace musketeer::core
