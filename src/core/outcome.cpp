#include "core/outcome.hpp"

#include "util/assert.hpp"

namespace musketeer::core {

double PricedCycle::budget_imbalance() const {
  double sum = 0.0;
  for (const PlayerPrice& p : prices) sum += p.price;
  return sum;
}

double PricedCycle::delay_bonus_of(PlayerId v) const {
  for (const PlayerPrice& b : player_delay_bonuses) {
    if (b.player == v) return b.price;
  }
  return delay_bonus;
}

double PricedCycle::price_of(PlayerId v) const {
  double sum = 0.0;
  for (const PlayerPrice& p : prices) {
    if (p.player == v) sum += p.price;
  }
  return sum;
}

std::vector<double> Outcome::total_prices(NodeId num_players) const {
  std::vector<double> totals(static_cast<std::size_t>(num_players), 0.0);
  for (const PricedCycle& pc : cycles) {
    for (const PlayerPrice& p : pc.prices) {
      MUSK_ASSERT(p.player >= 0 && p.player < num_players);
      totals[static_cast<std::size_t>(p.player)] += p.price;
    }
  }
  return totals;
}

double Outcome::player_utility(const Game& game, PlayerId v) const {
  const BidVector valuations = game.truthful_bids();
  double utility = 0.0;
  for (const PricedCycle& pc : cycles) {
    if (!game.participates(v, pc.cycle)) continue;
    utility += game.player_cycle_value(v, valuations, pc.cycle) -
               pc.price_of(v) + pc.delay_bonus_of(v);
  }
  return utility;
}

std::vector<double> Outcome::all_utilities(const Game& game) const {
  std::vector<double> utilities(static_cast<std::size_t>(game.num_players()));
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    utilities[static_cast<std::size_t>(v)] = player_utility(game, v);
  }
  return utilities;
}

double Outcome::realized_welfare(const Game& game) const {
  return game.social_welfare(game.truthful_bids(), circulation);
}

}  // namespace musketeer::core
