#include "core/baselines.hpp"

#include <deque>

#include "util/assert.hpp"

namespace musketeer::core {

namespace {

// Hide & Seek's rebalancing subgraph: depleted edges keep their capacity
// with unit weight, everything else is zeroed out.
struct HideSeekSource {
  const Game& game;
  const BidVector& bids;

  NodeId num_nodes() const { return game.num_players(); }
  EdgeId num_edges() const { return game.num_edges(); }
  NodeId edge_from(EdgeId e) const { return game.edge(e).from; }
  NodeId edge_to(EdgeId e) const { return game.edge(e).to; }
  Amount capacity(EdgeId e) const {
    const bool depleted = bids.head[static_cast<std::size_t>(e)] > 0.0;
    return depleted ? game.edge(e).capacity : 0;
  }
  double gain(EdgeId) const { return 1.0; }
};

}  // namespace

Outcome NoRebalancing::run_impl(flow::SolveContext&, const Game& game,
                                const BidVector& bids) const {
  MUSK_ASSERT(bids.size() == static_cast<std::size_t>(game.num_edges()));
  Outcome outcome;
  outcome.circulation.assign(static_cast<std::size_t>(game.num_edges()), 0);
  return outcome;
}

Outcome HideSeek::run_impl(flow::SolveContext& ctx, const Game& game,
                           const BidVector& bids) const {
  MUSK_ASSERT(bids.size() == static_cast<std::size_t>(game.num_edges()));
  // Rebalancing subgraph: depleted edges only (positive head bid). All
  // depleted edges weigh equally — Hide & Seek maximizes rebalanced
  // liquidity, not bid-weighted welfare.
  ctx.bind_from(HideSeekSource{game, bids});
  Outcome outcome;
  outcome.circulation = ctx.solve(solver_);
  for (flow::CycleFlow& cycle : ctx.decompose(outcome.circulation)) {
    PricedCycle pc;  // fee-free execution
    pc.cycle = std::move(cycle);
    outcome.cycles.push_back(std::move(pc));
  }
  return outcome;
}

LocalRebalancing::LocalRebalancing(int max_path_length, double fee_rate)
    : max_path_length_(max_path_length), fee_rate_(fee_rate) {
  MUSK_ASSERT(max_path_length >= 1);
  MUSK_ASSERT(fee_rate >= 0.0);
}

Outcome LocalRebalancing::run_impl(flow::SolveContext&, const Game& game,
                                   const BidVector& bids) const {
  MUSK_ASSERT(bids.size() == static_cast<std::size_t>(game.num_edges()));
  std::vector<Amount> remaining(static_cast<std::size_t>(game.num_edges()));
  for (EdgeId e = 0; e < game.num_edges(); ++e) {
    remaining[static_cast<std::size_t>(e)] = game.edge(e).capacity;
  }
  // Adjacency over game edges for the BFS return-path search.
  std::vector<std::vector<EdgeId>> out(
      static_cast<std::size_t>(game.num_players()));
  for (EdgeId e = 0; e < game.num_edges(); ++e) {
    out[static_cast<std::size_t>(game.edge(e).from)].push_back(e);
  }

  Outcome outcome;
  outcome.circulation.assign(static_cast<std::size_t>(game.num_edges()), 0);

  // Greedy sequential passes: each buyer repeatedly rebalances its
  // depleted edge along the cheapest (fewest-hop) return path it can
  // afford, until no buyer can make progress.
  bool progress = true;
  while (progress) {
    progress = false;
    for (EdgeId e = 0; e < game.num_edges(); ++e) {
      const auto ei = static_cast<std::size_t>(e);
      const double buyer_bid = bids.head[ei];
      if (buyer_bid <= 0.0 || remaining[ei] == 0) continue;
      const GameEdge& depleted = game.edge(e);

      // BFS from the depleted edge's head back to its tail, bounded depth.
      std::vector<EdgeId> parent_edge(
          static_cast<std::size_t>(game.num_players()), -1);
      std::vector<int> depth(static_cast<std::size_t>(game.num_players()), -1);
      std::deque<NodeId> queue;
      depth[static_cast<std::size_t>(depleted.to)] = 0;
      queue.push_back(depleted.to);
      while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop_front();
        if (v == depleted.from) break;
        if (depth[static_cast<std::size_t>(v)] >= max_path_length_) continue;
        for (EdgeId cand : out[static_cast<std::size_t>(v)]) {
          if (cand == e || remaining[static_cast<std::size_t>(cand)] == 0) {
            continue;
          }
          const NodeId next = game.edge(cand).to;
          if (depth[static_cast<std::size_t>(next)] >= 0) continue;
          depth[static_cast<std::size_t>(next)] =
              depth[static_cast<std::size_t>(v)] + 1;
          parent_edge[static_cast<std::size_t>(next)] = cand;
          queue.push_back(next);
        }
      }
      if (depth[static_cast<std::size_t>(depleted.from)] < 0) continue;

      // Reconstruct the return path and check the buyer can afford it.
      std::vector<EdgeId> path;
      for (NodeId v = depleted.from; v != depleted.to;) {
        const EdgeId pe = parent_edge[static_cast<std::size_t>(v)];
        MUSK_ASSERT(pe >= 0);
        path.push_back(pe);
        v = game.edge(pe).from;
      }
      const double total_fee_rate =
          fee_rate_ * static_cast<double>(path.size());
      if (total_fee_rate > buyer_bid) continue;

      Amount amount = remaining[ei];
      for (EdgeId pe : path) {
        amount = std::min(amount, remaining[static_cast<std::size_t>(pe)]);
      }
      MUSK_ASSERT(amount > 0);

      PricedCycle pc;
      pc.cycle.amount = amount;
      pc.cycle.edges.push_back(e);
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        pc.cycle.edges.push_back(*it);
      }
      const double fee_per_hop = fee_rate_ * static_cast<double>(amount);
      double paid = 0.0;
      for (EdgeId pe : path) {
        pc.prices.push_back(PlayerPrice{game.edge(pe).from, -fee_per_hop});
        paid += fee_per_hop;
      }
      pc.prices.push_back(PlayerPrice{depleted.to, paid});
      for (EdgeId ce : pc.cycle.edges) {
        remaining[static_cast<std::size_t>(ce)] -= amount;
        outcome.circulation[static_cast<std::size_t>(ce)] += amount;
      }
      outcome.cycles.push_back(std::move(pc));
      progress = true;
    }
  }
  return outcome;
}

}  // namespace musketeer::core
