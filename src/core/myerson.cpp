#include "core/myerson.hpp"

#include "util/assert.hpp"

namespace musketeer::core {

MyersonInstance make_myerson_instance(double seller_value, double buyer_value,
                                      Amount capacity) {
  MUSK_ASSERT(seller_value >= 0.0 && seller_value < kMaxFeeRate);
  MUSK_ASSERT(buyer_value >= 0.0 && buyer_value < kMaxFeeRate);
  MUSK_ASSERT(capacity >= 1);
  MyersonInstance inst{Game(3), /*seller=*/0, /*buyer=*/1, /*broker=*/2, 0, 0,
                       0};
  // a = 0, b = 1, c = 2; edges a->c, c->b, b->a.
  inst.seller_edge =
      inst.game.add_edge(0, 2, capacity, -seller_value, 0.0);
  inst.buyer_edge = inst.game.add_edge(2, 1, capacity, 0.0, buyer_value);
  inst.return_edge = inst.game.add_edge(1, 0, capacity, 0.0, 0.0);
  return inst;
}

bool efficient_trade(double seller_value, double buyer_value) {
  return buyer_value > seller_value;
}

}  // namespace musketeer::core
