#include "core/game.hpp"

#include <algorithm>

#include "flow/solve_context.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

namespace {

/// Edge-list adapter exposing a Game + BidVector to
/// flow::SolveContext::bind_from (gain = tail + head, as build_graph).
struct GameSource {
  const Game& game;
  const BidVector& bids;

  NodeId num_nodes() const { return game.num_players(); }
  EdgeId num_edges() const { return game.num_edges(); }
  NodeId edge_from(EdgeId e) const { return game.edge(e).from; }
  NodeId edge_to(EdgeId e) const { return game.edge(e).to; }
  Amount capacity(EdgeId e) const { return game.edge(e).capacity; }
  double gain(EdgeId e) const {
    const auto i = static_cast<std::size_t>(e);
    return bids.tail[i] + bids.head[i];
  }
};

}  // namespace

Game::Game(NodeId num_players) : num_players_(num_players) {
  MUSK_ASSERT(num_players >= 0);
}

EdgeId Game::add_edge(NodeId from, NodeId to, Amount capacity,
                      double tail_valuation, double head_valuation) {
  MUSK_ASSERT(from >= 0 && from < num_players_);
  MUSK_ASSERT(to >= 0 && to < num_players_);
  MUSK_ASSERT(from != to);
  MUSK_ASSERT(capacity >= 0);
  MUSK_ASSERT_MSG(tail_valuation <= 0.0 && tail_valuation > -kMaxFeeRate,
                  "tail (seller) valuation must lie in (-0.1, 0]");
  MUSK_ASSERT_MSG(head_valuation >= 0.0 && head_valuation < kMaxFeeRate,
                  "head (buyer) valuation must lie in [0, 0.1)");
  edges_.push_back(
      GameEdge{from, to, capacity, tail_valuation, head_valuation});
  return num_edges() - 1;
}

const GameEdge& Game::edge(EdgeId e) const {
  MUSK_ASSERT(e >= 0 && e < num_edges());
  return edges_[static_cast<std::size_t>(e)];
}

BidVector Game::truthful_bids() const {
  BidVector bids;
  bids.tail.reserve(edges_.size());
  bids.head.reserve(edges_.size());
  for (const GameEdge& e : edges_) {
    bids.tail.push_back(e.tail_valuation);
    bids.head.push_back(e.head_valuation);
  }
  return bids;
}

bool Game::is_valid(const BidVector& bids) const {
  if (bids.tail.size() != edges_.size() || bids.head.size() != edges_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (bids.tail[i] > 0.0 || bids.tail[i] <= -kMaxFeeRate) return false;
    if (bids.head[i] < 0.0 || bids.head[i] >= kMaxFeeRate) return false;
  }
  return true;
}

flow::Graph Game::build_graph(const BidVector& bids) const {
  MUSK_ASSERT(bids.size() == edges_.size());
  flow::Graph g(num_players_);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const GameEdge& e = edges_[i];
    g.add_edge(e.from, e.to, e.capacity, bids.tail[i] + bids.head[i]);
  }
  return g;
}

const flow::Graph& Game::bind_graph(flow::SolveContext& ctx,
                                    const BidVector& bids) const {
  MUSK_ASSERT(bids.size() == edges_.size());
  return ctx.bind_from(GameSource{*this, bids});
}

flow::Graph Game::build_graph_without(const BidVector& bids,
                                      PlayerId excluded) const {
  MUSK_ASSERT(bids.size() == edges_.size());
  flow::Graph g(num_players_);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const GameEdge& e = edges_[i];
    const bool incident = (e.from == excluded || e.to == excluded);
    g.add_edge(e.from, e.to, incident ? 0 : e.capacity,
               bids.tail[i] + bids.head[i]);
  }
  return g;
}

double Game::player_value(PlayerId v, const BidVector& stakes,
                          const flow::Circulation& f) const {
  MUSK_ASSERT(stakes.size() == edges_.size());
  MUSK_ASSERT(f.size() == edges_.size());
  double value = 0.0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (f[i] == 0) continue;
    const GameEdge& e = edges_[i];
    const double amount = static_cast<double>(f[i]);
    if (e.from == v) value += stakes.tail[i] * amount;
    if (e.to == v) value += stakes.head[i] * amount;
  }
  return value;
}

double Game::player_cycle_value(PlayerId v, const BidVector& stakes,
                                const flow::CycleFlow& cycle) const {
  double value = 0.0;
  const double amount = static_cast<double>(cycle.amount);
  for (EdgeId eid : cycle.edges) {
    const GameEdge& e = edge(eid);
    const auto i = static_cast<std::size_t>(eid);
    if (e.from == v) value += stakes.tail[i] * amount;
    if (e.to == v) value += stakes.head[i] * amount;
  }
  return value;
}

bool Game::participates(PlayerId v, const flow::CycleFlow& cycle) const {
  return std::any_of(cycle.edges.begin(), cycle.edges.end(), [&](EdgeId eid) {
    const GameEdge& e = edge(eid);
    return e.from == v || e.to == v;
  });
}

std::vector<PlayerId> Game::cycle_players(const flow::CycleFlow& cycle) const {
  std::vector<PlayerId> players;
  players.reserve(cycle.edges.size());
  for (EdgeId eid : cycle.edges) players.push_back(edge(eid).from);
  return players;
}

double Game::social_welfare(const BidVector& stakes,
                            const flow::Circulation& f) const {
  MUSK_ASSERT(stakes.size() == edges_.size());
  MUSK_ASSERT(f.size() == edges_.size());
  double sw = 0.0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    sw += (stakes.tail[i] + stakes.head[i]) * static_cast<double>(f[i]);
  }
  return sw;
}

double Game::cycle_welfare(const BidVector& stakes,
                           const flow::CycleFlow& cycle) const {
  double sw = 0.0;
  for (EdgeId eid : cycle.edges) {
    const auto i = static_cast<std::size_t>(eid);
    sw += (stakes.tail[i] + stakes.head[i]) * static_cast<double>(cycle.amount);
  }
  return sw;
}

}  // namespace musketeer::core
