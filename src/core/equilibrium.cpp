#include "core/equilibrium.hpp"

#include "core/properties.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

namespace {

// Builds the bid profile from per-player scales applied to truthful
// stakes. Rebuilt from scratch so repeated scaling never compounds.
BidVector profile_bids(const Game& game, const std::vector<double>& strategy) {
  BidVector bids = game.truthful_bids();
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    bids = scale_player_bids(game, bids, v,
                             strategy[static_cast<std::size_t>(v)]);
  }
  return bids;
}

}  // namespace

EquilibriumResult best_response_dynamics(const Mechanism& mechanism,
                                         const Game& game,
                                         const BestResponseConfig& config) {
  MUSK_ASSERT(!config.scales.empty());
  MUSK_ASSERT(config.max_passes >= 1);

  EquilibriumResult result;
  result.strategy.assign(static_cast<std::size_t>(game.num_players()), 1.0);

  // One context across the whole dynamics: every run rebinds the same
  // topology in place, so the O(players * passes * scales) mechanism runs
  // never rebuild the flow graph.
  flow::SolveContext ctx;

  {
    const Outcome truthful = mechanism.run_truthful(ctx, game);
    result.truthful_welfare = truthful.realized_welfare(game);
  }

  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++result.passes;
    bool changed = false;
    for (PlayerId v = 0; v < game.num_players(); ++v) {
      // Current utility under the standing profile.
      std::vector<double> candidate = result.strategy;
      double best_scale = result.strategy[static_cast<std::size_t>(v)];
      candidate[static_cast<std::size_t>(v)] = best_scale;
      double best_utility =
          mechanism.run(ctx, game, profile_bids(game, candidate))
              .player_utility(game, v);
      for (double scale : config.scales) {
        if (scale == best_scale) continue;
        candidate[static_cast<std::size_t>(v)] = scale;
        const double utility =
            mechanism.run(ctx, game, profile_bids(game, candidate))
                .player_utility(game, v);
        if (utility > best_utility + config.improvement_tolerance) {
          best_utility = utility;
          best_scale = scale;
        }
      }
      if (best_scale != result.strategy[static_cast<std::size_t>(v)]) {
        result.strategy[static_cast<std::size_t>(v)] = best_scale;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  result.bids = profile_bids(game, result.strategy);
  result.equilibrium_welfare =
      mechanism.run(ctx, game, result.bids).realized_welfare(game);
  return result;
}

}  // namespace musketeer::core
