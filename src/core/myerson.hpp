// The Myerson–Satterthwaite embedding of Theorem 1.
//
// A bilateral trade (seller valuation V_a, buyer valuation V_b, both in
// [0, 0.1) after scaling into the valid fee range) is simulated by the
// 3-cycle instance  a -> c -> b -> a  with unit capacities:
//   * edge (a, c): tail a is the seller with valuation -V_a;
//   * edge (c, b): head b is the buyer with valuation +V_b;
//   * edge (b, a) and all remaining stakes: zero (c is the honest
//     "auctioneer").
// The only non-zero feasible circulation routes one unit around the
// triangle; running it corresponds to the trade. Theorem 1: no mechanism
// can be simultaneously efficient, individually rational, truthful and
// cyclic budget balanced on this family — bench/thm1_impossibility
// demonstrates the failure mode of each of M1..M4 on it.
#pragma once

#include "core/game.hpp"

namespace musketeer::core {

struct MyersonInstance {
  Game game;
  PlayerId seller = 0;  // a
  PlayerId buyer = 0;   // b
  PlayerId broker = 0;  // c
  EdgeId seller_edge = 0;
  EdgeId buyer_edge = 0;
  EdgeId return_edge = 0;
};

/// Builds the triangle instance for the given valuations. Requires
/// 0 <= seller_value, buyer_value < kMaxFeeRate.
MyersonInstance make_myerson_instance(double seller_value, double buyer_value,
                                      Amount capacity = 1);

/// True iff the efficient allocation trades (buyer values the unit more
/// than the seller).
bool efficient_trade(double seller_value, double buyer_value);

}  // namespace musketeer::core
