// The Hide & Seek delegate layer (§2.1/§2.2), simulated.
//
// In Hide & Seek — and by extension Musketeer — users do not broadcast
// their liquidity and bids: they *secret-share* them to a small committee
// of delegates, who jointly compute the optimal rebalancing (the paper
// uses MPC; privacy is orthogonal to the mechanism's incentive
// properties, cf. DESIGN.md). This module implements the transport
// faithfully at the information level:
//
//   * every submitted scalar is split into additive shares over Z_{2^64}
//     (capacities, and bids in fixed-point), one share per delegate;
//   * any proper subset of delegates sees only uniformly random values;
//   * the full committee reconstructs the exact game and runs the
//     mechanism on it.
//
// The MPC evaluation itself is modeled as reconstruct-then-compute,
// which yields byte-identical outcomes to computing on plaintext — the
// guarantee the tests pin down.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.hpp"
#include "core/mechanism.hpp"
#include "util/rng.hpp"

namespace musketeer::core {

/// Additive secret sharing over Z_{2^64}.
namespace sharing {

/// Splits `secret` into `num_shares` values summing to it (mod 2^64).
std::vector<std::uint64_t> split(std::uint64_t secret, int num_shares,
                                 util::Rng& rng);

/// Sums shares back to the secret (mod 2^64).
std::uint64_t reconstruct(const std::vector<std::uint64_t>& shares);

/// Fixed-point encoding of a fee rate in (-0.1, 0.1) as a two's-
/// complement 64-bit integer scaled by 1e9.
std::uint64_t encode_rate(double rate);
double decode_rate(std::uint64_t encoded);

}  // namespace sharing

/// A delegate committee collecting secret-shared channel submissions.
class DelegateCommittee {
 public:
  /// `num_delegates` >= 2 (one delegate would see everything).
  DelegateCommittee(int num_delegates, NodeId num_players, util::Rng& rng);

  /// A user submits one channel direction: endpoints are public routing
  /// metadata (as in Hide & Seek), capacity and both stakes are shared.
  void submit_edge(NodeId from, NodeId to, Amount capacity,
                   double tail_valuation, double head_valuation);

  int num_delegates() const { return num_delegates_; }
  int num_submissions() const { return static_cast<int>(edges_.size()); }

  /// The view of a single delegate for a given submission: its shares of
  /// (capacity, tail, head). Uniformly random in isolation.
  struct DelegateView {
    std::uint64_t capacity_share = 0;
    std::uint64_t tail_share = 0;
    std::uint64_t head_share = 0;
  };
  DelegateView view(int delegate, int submission) const;

  /// Full-committee reconstruction of the submitted game.
  Game reconstruct_game() const;

  /// Reconstruct-and-run: what the committee's joint computation outputs.
  Outcome run(const Mechanism& mechanism) const;

 private:
  struct SharedEdge {
    NodeId from, to;
    std::vector<std::uint64_t> capacity_shares;
    std::vector<std::uint64_t> tail_shares;
    std::vector<std::uint64_t> head_shares;
  };

  int num_delegates_;
  NodeId num_players_;
  util::Rng* rng_;
  std::vector<SharedEdge> edges_;
};

}  // namespace musketeer::core
