// Name-based mechanism construction shared by the CLI, the musketeerd
// daemon, and tests — one place that knows how to spell every mechanism
// and its tuning knobs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.hpp"

namespace musketeer::core {

struct MechanismOptions {
  /// M4 delay factor.
  double delay = 1.0;
  /// M1 fixed fee rate / local-baseline per-hop fee.
  double fee = 0.001;
  /// M1 buyer-rate multiplier.
  double k = 3.0;
  /// M2-minfee seller floor.
  double floor = 0.001;
};

/// Builds the mechanism named by `name` (one of mechanism_names()), or
/// nullptr for an unknown name. "none" returns the NoRebalancing
/// baseline, so a non-null result is always runnable.
std::unique_ptr<Mechanism> make_mechanism(const std::string& name,
                                          const MechanismOptions& options);

/// Every name make_mechanism accepts, for usage strings.
const std::vector<std::string>& mechanism_names();

}  // namespace musketeer::core
