#include "core/m3_double_auction.hpp"

#include "util/assert.hpp"

namespace musketeer::core {

std::vector<PlayerPrice> price_cycle_welfare_share(
    const Game& game, const BidVector& bids, const flow::CycleFlow& cycle) {
  const std::vector<PlayerId> players = game.cycle_players(cycle);
  const double share = game.cycle_welfare(bids, cycle) /
                       static_cast<double>(players.size());
  std::vector<PlayerPrice> prices;
  prices.reserve(players.size());
  for (PlayerId v : players) {
    prices.push_back(
        PlayerPrice{v, game.player_cycle_value(v, bids, cycle) - share});
  }
  return prices;
}

Outcome M3DoubleAuction::run_impl(flow::SolveContext& ctx, const Game& game,
                                  const BidVector& bids) const {
  MUSK_ASSERT_MSG(game.is_valid(bids), "invalid bid vector");
  {
    MUSK_OBS_SPAN(bind_span, "core.bind_graph");
    game.bind_graph(ctx, bids);
  }
  Outcome outcome;
  outcome.circulation = ctx.solve(solver_);
  std::vector<flow::CycleFlow> cycles = ctx.decompose(outcome.circulation);
  MUSK_OBS_SPAN(pricing_span, "core.pricing");
  for (flow::CycleFlow& cycle : cycles) {
    PricedCycle pc;
    pc.prices = price_cycle_welfare_share(game, bids, cycle);
    pc.cycle = std::move(cycle);
    outcome.cycles.push_back(std::move(pc));
  }
  MUSK_OBS_HISTOGRAM("core.pricing.seconds", pricing_span.end());
  return outcome;
}

}  // namespace musketeer::core
