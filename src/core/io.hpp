// Serialization of rebalancing games, bids, and outcomes.
//
// Two formats:
//
// 1. A small, diff-friendly line format so games can be stored in files,
//    shared in bug reports, and fed to the CLI:
//
//        musketeer-game v1
//        players <n>
//        edge <from> <to> <capacity> <tail_valuation> <head_valuation>
//        ...
//
//    '#' starts a comment; blank lines are ignored. Parsing throws
//    std::runtime_error with a line number on malformed input.
//
// 2. A bounds-checked little-endian binary codec (namespace `codec`) for
//    the wire protocol in src/svc/: games, bid vectors, and outcomes are
//    encoded as length-free records (the transport frames them). Every
//    decoder reads through `codec::Reader`, which throws `CodecError`
//    on truncation, and every element count is validated against the
//    bytes actually remaining, so an adversarial "4 billion edges"
//    header is rejected instead of allocated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/game.hpp"
#include "core/outcome.hpp"

namespace musketeer::core {

/// Serializes the game to the v1 text format.
std::string to_text(const Game& game);

/// Parses the v1 text format.
Game game_from_text(const std::string& text);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
Game load_game(const std::string& path);
void save_game(const Game& game, const std::string& path);

/// Renders an outcome as a human-readable report (cycles, prices,
/// per-player utilities, property checks) — shared by the CLI and
/// examples.
std::string describe_outcome(const Game& game, const Outcome& outcome);

/// Thrown by the binary decoders on truncated, oversized, or
/// range-violating input. Derives from std::runtime_error so generic
/// "reject the message" paths need no special case.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace codec {

/// Append-only little-endian primitives over a byte buffer.
void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i64(std::string& out, std::int64_t v);
void put_f64(std::string& out, double v);

/// Bounds-checked sequential reader over an immutable byte range. The
/// underlying bytes must outlive the reader. Every accessor throws
/// CodecError instead of reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  /// Throws CodecError unless every byte has been consumed — decoders
  /// call this last so trailing garbage is rejected, not ignored.
  void expect_end() const;

  /// Validates an element count read from the wire: the remaining bytes
  /// must be able to hold `count` records of at least `min_record_bytes`
  /// each. Returns the count narrowed to size_t.
  std::size_t check_count(std::uint64_t count, std::size_t min_record_bytes);

 private:
  [[noreturn]] void fail(const char* what) const;
  const unsigned char* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Binary record format version (bumped on any layout change; decoders
/// reject versions they do not understand).
inline constexpr std::uint16_t kBinaryVersion = 1;

/// Game <-> bytes. decode_game applies the same semantic validation as
/// the text parser (endpoint range, capacity sign, valuation bounds).
void encode_game(const Game& game, std::string& out);
Game decode_game(Reader& in);

/// BidVector <-> bytes. decode_bids enforces the §2.3 validity box
/// (tail in (-0.1, 0], head in [0, 0.1)) and rejects non-finite values.
void encode_bids(const BidVector& bids, std::string& out);
BidVector decode_bids(Reader& in);

/// Outcome <-> bytes. Decoding is structural (counts, finiteness); the
/// economic invariants of a received outcome are the auditor's job.
void encode_outcome(const Outcome& outcome, std::string& out);
Outcome decode_outcome(Reader& in);

/// Whole-buffer conveniences: decode exactly one record and require the
/// buffer to be fully consumed.
Game game_from_bytes(std::string_view bytes);
BidVector bids_from_bytes(std::string_view bytes);
Outcome outcome_from_bytes(std::string_view bytes);

}  // namespace codec

}  // namespace musketeer::core
