// Plain-text serialization of rebalancing games.
//
// A small, diff-friendly line format so games can be stored in files,
// shared in bug reports, and fed to the CLI:
//
//     musketeer-game v1
//     players <n>
//     edge <from> <to> <capacity> <tail_valuation> <head_valuation>
//     ...
//
// '#' starts a comment; blank lines are ignored. Parsing throws
// std::runtime_error with a line number on malformed input.
#pragma once

#include <iosfwd>
#include <string>

#include "core/game.hpp"
#include "core/outcome.hpp"

namespace musketeer::core {

/// Serializes the game to the v1 text format.
std::string to_text(const Game& game);

/// Parses the v1 text format.
Game game_from_text(const std::string& text);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
Game load_game(const std::string& path);
void save_game(const Game& game, const std::string& path);

/// Renders an outcome as a human-readable report (cycles, prices,
/// per-player utilities, property checks) — shared by the CLI and
/// examples.
std::string describe_outcome(const Game& game, const Outcome& outcome);

}  // namespace musketeer::core
