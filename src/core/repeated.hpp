// The repeated rebalancing game (§4 "Repeated Games").
//
// The paper hypothesizes: when the rebalancing auction runs frequently,
// underbidding becomes attractive — losing a round only postpones
// rebalancing, so shading bids to save fees is cheap; when rounds are
// rare, missing one is costly and bidding close to one's value is safer.
//
// This module makes the hypothesis testable. A population of players
// faces a fresh rebalancing game each round (their private valuations
// resample). Adaptive players choose a *shading factor* from a discrete
// arm set with an epsilon-greedy bandit over their own realized
// utilities; truthful players always bid their valuation. Unmet demand
// persists: with probability `persistence` a buyer who failed to
// rebalance carries the (compounding) demand into the next round —
// high persistence models frequent re-runs of the auction where demand
// survives to try again.
#pragma once

#include <functional>
#include <vector>

#include "core/mechanism.hpp"
#include "util/rng.hpp"

namespace musketeer::core {

struct RepeatedConfig {
  int rounds = 200;
  /// Probability that a losing buyer's demand persists into the next
  /// round (the paper's rebalancing-frequency knob).
  double persistence = 0.5;
  /// Shading arms adaptive players choose from (multiplied into their
  /// truthful stakes).
  std::vector<double> arms{0.4, 0.6, 0.8, 1.0};
  /// Exploration rate of the epsilon-greedy bandit.
  double epsilon = 0.1;
};

struct RepeatedResult {
  /// Mean shading factor chosen by adaptive players, per round.
  std::vector<double> mean_shading_per_round;
  /// Total utility per player over all rounds.
  std::vector<double> total_utility;
  /// Realized welfare summed over rounds / welfare if all bid truthfully.
  double welfare_ratio = 1.0;
  /// Final greedy arm per adaptive player.
  std::vector<double> learned_shading;
};

/// Generates the round's game; called once per round (valuation
/// resampling). Must always return games with the same number of players.
using GameSampler = std::function<Game(util::Rng&)>;

/// Runs `config.rounds` rounds of `mechanism` with the given adaptive
/// players learning their shading; everyone else bids truthfully.
RepeatedResult run_repeated_game(const Mechanism& mechanism,
                                 const GameSampler& sample_game,
                                 const std::vector<PlayerId>& adaptive_players,
                                 const RepeatedConfig& config, util::Rng& rng);

}  // namespace musketeer::core
