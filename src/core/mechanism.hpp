// Abstract rebalancing mechanism interface (Definition 1).
//
//     M : (G, c, b) -> (f_i, p_i)_{1<=i<=k}
//
// Mechanisms are pure: `run` has no state, so property checkers and
// strategy probes can re-invoke them with perturbed bids cheaply.
#pragma once

#include <string_view>

#include "core/game.hpp"
#include "core/outcome.hpp"
#include "flow/solver.hpp"

namespace musketeer::core {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Computes the priced cycle decomposition for the given bids.
  virtual Outcome run(const Game& game, const BidVector& bids) const = 0;

  virtual std::string_view name() const = 0;

  /// Convenience: run under truthful bids.
  Outcome run_truthful(const Game& game) const {
    return run(game, game.truthful_bids());
  }
};

}  // namespace musketeer::core
