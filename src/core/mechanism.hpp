// Abstract rebalancing mechanism interface (Definition 1).
//
//     M : (G, c, b) -> (f_i, p_i)_{1<=i<=k}
//
// Mechanisms are pure: running one has no state, so property checkers and
// strategy probes can re-invoke them with perturbed bids cheaply.
//
// `run` is a template method: it delegates to the virtual `run_impl` and,
// when the build defines MUSKETEER_AUDIT, feeds the result through the
// invariant auditor (src/check/) — conservation, capacity, decomposition
// sign-consistency, cyclic budget balance, IR and bid bounds are
// re-verified after every single invocation, aborting with a structured
// violation report on the first breach.
//
// Every run threads through a flow::SolveContext, which pools the flow
// graph and all solver scratch across invocations (see
// flow/solve_context.hpp). The context-free overloads delegate to the
// calling thread's flow::local_context(), so legacy call sites keep
// working and still benefit from buffer reuse — results are bit-identical
// either way.
#pragma once

#include <string_view>

#include "core/game.hpp"
#include "core/outcome.hpp"
#include "flow/solve_context.hpp"
#include "flow/solver.hpp"

#if defined(MUSKETEER_AUDIT)
#include "check/audit_hook.hpp"
#endif

namespace musketeer::core {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Computes the priced cycle decomposition for the given bids (and
  /// audits it when MUSKETEER_AUDIT is compiled in), solving through
  /// `ctx`. The context must be owned by the calling thread.
  Outcome run(flow::SolveContext& ctx, const Game& game,
              const BidVector& bids) const {
    MUSK_OBS_SPAN(span, "core.mechanism");
    span.set_detail(name().data());  // name() returns a literal-backed view
    MUSK_OBS_COUNT("core.mechanism.run_total", 1);
    Outcome outcome = run_impl(ctx, game, bids);
    MUSK_OBS_HISTOGRAM("core.mechanism.seconds", span.seconds());
#if defined(MUSKETEER_AUDIT)
    check::audit_mechanism_outcome_or_die(*this, game, bids, outcome);
#endif
    return outcome;
  }

  /// Context-free convenience: runs on the calling thread's shared
  /// context.
  Outcome run(const Game& game, const BidVector& bids) const {
    return run(flow::local_context(), game, bids);
  }

  virtual std::string_view name() const = 0;

  /// True when the mechanism guarantees per-cycle individual rationality
  /// under the (audited) submitted bid profile. Mechanisms whose IR is
  /// conditional — M1 needs self-selection, Hide & Seek and the local
  /// baseline ignore private seller costs — override this to false so
  /// the auditor skips the IR check (all other invariants still apply).
  virtual bool claims_individual_rationality() const { return true; }

  /// The bid profile the mechanism's guarantees are stated against. M2
  /// overrides this to zero out tail bids (its sellers are non-strategic).
  virtual BidVector audited_bids(const BidVector& bids) const { return bids; }

  /// Convenience: run under truthful bids.
  Outcome run_truthful(flow::SolveContext& ctx, const Game& game) const {
    return run(ctx, game, game.truthful_bids());
  }

  Outcome run_truthful(const Game& game) const {
    return run(game, game.truthful_bids());
  }

 protected:
  /// The mechanism proper. Implementations never call this directly —
  /// always go through run() so the audit hook fires. All flow graphs
  /// and solver scratch should come from `ctx` so repeated runs on one
  /// topology stay allocation-free.
  virtual Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                           const BidVector& bids) const = 0;
};

}  // namespace musketeer::core
