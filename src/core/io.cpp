#include "core/io.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/properties.hpp"
#include "util/table.hpp"

namespace musketeer::core {

namespace {

[[noreturn]] void parse_error(int line, const std::string& message) {
  throw std::runtime_error("musketeer-game parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

std::string to_text(const Game& game) {
  std::ostringstream out;
  out << "musketeer-game v1\n";
  out << "players " << game.num_players() << "\n";
  out.precision(12);
  for (EdgeId e = 0; e < game.num_edges(); ++e) {
    const GameEdge& edge = game.edge(e);
    out << "edge " << edge.from << " " << edge.to << " " << edge.capacity
        << " " << edge.tail_valuation << " " << edge.head_valuation << "\n";
  }
  return out.str();
}

Game game_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  auto next_meaningful = [&](std::string& out_line) {
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const auto start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos) continue;
      out_line = line.substr(start);
      return true;
    }
    return false;
  };

  std::string current;
  if (!next_meaningful(current) || current.rfind("musketeer-game v1", 0) != 0) {
    parse_error(line_no, "expected header 'musketeer-game v1'");
  }
  if (!next_meaningful(current)) parse_error(line_no, "missing 'players'");
  std::istringstream header(current);
  std::string keyword;
  long long num_players = -1;
  header >> keyword >> num_players;
  if (keyword != "players" || num_players < 0 || header.fail()) {
    parse_error(line_no, "expected 'players <n>'");
  }

  Game game(static_cast<NodeId>(num_players));
  while (next_meaningful(current)) {
    std::istringstream row(current);
    long long from = 0, to = 0, capacity = 0;
    double tail = 0.0, head = 0.0;
    row >> keyword >> from >> to >> capacity >> tail >> head;
    if (keyword != "edge" || row.fail()) {
      parse_error(line_no, "expected 'edge <from> <to> <cap> <tail> <head>'");
    }
    if (from < 0 || from >= num_players || to < 0 || to >= num_players ||
        from == to) {
      parse_error(line_no, "edge endpoints out of range");
    }
    if (capacity < 0) parse_error(line_no, "negative capacity");
    if (tail > 0.0 || tail <= -kMaxFeeRate) {
      parse_error(line_no, "tail valuation outside (-0.1, 0]");
    }
    if (head < 0.0 || head >= kMaxFeeRate) {
      parse_error(line_no, "head valuation outside [0, 0.1)");
    }
    game.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to),
                  capacity, tail, head);
  }
  return game;
}

Game load_game(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open game file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return game_from_text(buffer.str());
}

void save_game(const Game& game, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write game file: " + path);
  out << to_text(game);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string describe_outcome(const Game& game, const Outcome& outcome) {
  std::ostringstream out;
  out << "cycles: " << outcome.cycles.size()
      << ", rebalanced volume: " << flow::total_volume(outcome.circulation)
      << ", realized welfare: "
      << util::fmt_double(outcome.realized_welfare(game), 6) << "\n";
  for (std::size_t i = 0; i < outcome.cycles.size(); ++i) {
    const PricedCycle& pc = outcome.cycles[i];
    out << "  cycle " << i << ": amount " << pc.cycle.amount << ", edges [";
    for (std::size_t j = 0; j < pc.cycle.edges.size(); ++j) {
      const GameEdge& e = game.edge(pc.cycle.edges[j]);
      out << e.from << "->" << e.to
          << (j + 1 < pc.cycle.edges.size() ? " " : "");
    }
    out << "]";
    if (pc.release_time > 0.0) {
      out << ", release t=" << util::fmt_double(pc.release_time, 3);
    }
    out << "\n";
    for (const PlayerPrice& p : pc.prices) {
      out << "    player " << p.player
          << (p.price >= 0 ? " pays " : " receives ")
          << util::fmt_double(p.price >= 0 ? p.price : -p.price, 6) << "\n";
    }
  }
  const auto balance = check_cyclic_budget_balance(outcome);
  const auto rationality = check_individual_rationality(game, outcome);
  out << "cyclic budget balance: max |cycle sum| = "
      << util::format("%.2e", balance.max_cycle_imbalance) << "\n";
  out << "individual rationality: min cycle utility = "
      << util::fmt_double(rationality.min_cycle_utility, 6) << "\n";
  return out.str();
}

namespace codec {

namespace {

void append_le(std::string& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

double checked_finite(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw CodecError(std::string("non-finite ") + what);
  }
  return v;
}

}  // namespace

void put_u8(std::string& out, std::uint8_t v) { append_le(out, v, 1); }
void put_u16(std::string& out, std::uint16_t v) { append_le(out, v, 2); }
void put_u32(std::string& out, std::uint32_t v) { append_le(out, v, 4); }
void put_u64(std::string& out, std::uint64_t v) { append_le(out, v, 8); }
void put_i64(std::string& out, std::int64_t v) {
  append_le(out, static_cast<std::uint64_t>(v), 8);
}
void put_f64(std::string& out, double v) {
  append_le(out, std::bit_cast<std::uint64_t>(v), 8);
}

void Reader::fail(const char* what) const {
  throw CodecError(std::string("binary decode error: ") + what);
}

const unsigned char* Reader::take(std::size_t n) {
  if (remaining() < n) fail("truncated input");
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::u8() { return *take(1); }

std::uint16_t Reader::u16() {
  const unsigned char* p = take(2);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t Reader::u32() {
  const unsigned char* p = take(4);
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t Reader::u64() {
  const unsigned char* p = take(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

void Reader::expect_end() const {
  if (!done()) fail("trailing bytes after record");
}

std::size_t Reader::check_count(std::uint64_t count,
                                std::size_t min_record_bytes) {
  if (min_record_bytes == 0) min_record_bytes = 1;
  if (count > remaining() / min_record_bytes) {
    fail("element count exceeds payload size");
  }
  return static_cast<std::size_t>(count);
}

namespace {

void check_version(Reader& in, const char* record) {
  const std::uint16_t version = in.u16();
  if (version != kBinaryVersion) {
    throw CodecError(std::string("unsupported ") + record +
                     " record version " + std::to_string(version));
  }
}

}  // namespace

void encode_game(const Game& game, std::string& out) {
  put_u16(out, kBinaryVersion);
  put_u32(out, static_cast<std::uint32_t>(game.num_players()));
  put_u32(out, static_cast<std::uint32_t>(game.num_edges()));
  for (const GameEdge& edge : game.edges()) {
    put_u32(out, static_cast<std::uint32_t>(edge.from));
    put_u32(out, static_cast<std::uint32_t>(edge.to));
    put_i64(out, edge.capacity);
    put_f64(out, edge.tail_valuation);
    put_f64(out, edge.head_valuation);
  }
}

Game decode_game(Reader& in) {
  check_version(in, "game");
  const std::uint32_t players = in.u32();
  if (players > (1u << 26)) throw CodecError("implausible player count");
  // Edge record: from u32 + to u32 + capacity i64 + two f64 = 32 bytes.
  const std::size_t num_edges = in.check_count(in.u32(), 32);
  Game game(static_cast<NodeId>(players));
  for (std::size_t i = 0; i < num_edges; ++i) {
    const std::uint32_t from = in.u32();
    const std::uint32_t to = in.u32();
    const std::int64_t capacity = in.i64();
    const double tail = checked_finite(in.f64(), "tail valuation");
    const double head = checked_finite(in.f64(), "head valuation");
    if (from >= players || to >= players || from == to) {
      throw CodecError("edge endpoints out of range");
    }
    if (capacity < 0) throw CodecError("negative capacity");
    if (tail > 0.0 || tail <= -kMaxFeeRate) {
      throw CodecError("tail valuation outside (-0.1, 0]");
    }
    if (head < 0.0 || head >= kMaxFeeRate) {
      throw CodecError("head valuation outside [0, 0.1)");
    }
    game.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to),
                  capacity, tail, head);
  }
  return game;
}

void encode_bids(const BidVector& bids, std::string& out) {
  put_u16(out, kBinaryVersion);
  put_u32(out, static_cast<std::uint32_t>(bids.size()));
  for (std::size_t e = 0; e < bids.size(); ++e) {
    put_f64(out, bids.tail[e]);
    put_f64(out, bids.head[e]);
  }
}

BidVector decode_bids(Reader& in) {
  check_version(in, "bids");
  const std::size_t n = in.check_count(in.u32(), 16);
  BidVector bids;
  bids.tail.reserve(n);
  bids.head.reserve(n);
  for (std::size_t e = 0; e < n; ++e) {
    const double tail = checked_finite(in.f64(), "tail bid");
    const double head = checked_finite(in.f64(), "head bid");
    if (tail > 0.0 || tail <= -kMaxFeeRate) {
      throw CodecError("tail bid outside (-0.1, 0]");
    }
    if (head < 0.0 || head >= kMaxFeeRate) {
      throw CodecError("head bid outside [0, 0.1)");
    }
    bids.tail.push_back(tail);
    bids.head.push_back(head);
  }
  return bids;
}

namespace {

void encode_player_prices(const std::vector<PlayerPrice>& prices,
                          std::string& out) {
  put_u32(out, static_cast<std::uint32_t>(prices.size()));
  for (const PlayerPrice& p : prices) {
    put_u32(out, static_cast<std::uint32_t>(p.player));
    put_f64(out, p.price);
  }
}

std::vector<PlayerPrice> decode_player_prices(Reader& in) {
  const std::size_t n = in.check_count(in.u32(), 12);
  std::vector<PlayerPrice> prices;
  prices.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PlayerPrice p;
    p.player = static_cast<PlayerId>(in.u32());
    p.price = checked_finite(in.f64(), "price");
    prices.push_back(p);
  }
  return prices;
}

}  // namespace

void encode_outcome(const Outcome& outcome, std::string& out) {
  put_u16(out, kBinaryVersion);
  put_u32(out, static_cast<std::uint32_t>(outcome.circulation.size()));
  for (const flow::Amount f : outcome.circulation) put_i64(out, f);
  put_u32(out, static_cast<std::uint32_t>(outcome.cycles.size()));
  for (const PricedCycle& pc : outcome.cycles) {
    put_u32(out, static_cast<std::uint32_t>(pc.cycle.edges.size()));
    for (const flow::EdgeId e : pc.cycle.edges) {
      put_u32(out, static_cast<std::uint32_t>(e));
    }
    put_i64(out, pc.cycle.amount);
    encode_player_prices(pc.prices, out);
    put_f64(out, pc.release_time);
    put_f64(out, pc.delay_bonus);
    encode_player_prices(pc.player_delay_bonuses, out);
  }
}

Outcome decode_outcome(Reader& in) {
  check_version(in, "outcome");
  Outcome outcome;
  const std::size_t num_edges = in.check_count(in.u32(), 8);
  outcome.circulation.reserve(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    const std::int64_t f = in.i64();
    if (f < 0) throw CodecError("negative circulation flow");
    outcome.circulation.push_back(f);
  }
  // A cycle needs at least edge-count u32 + amount i64 + two empty price
  // lists (u32 each) + release/bonus f64s = 36 bytes.
  const std::size_t num_cycles = in.check_count(in.u32(), 36);
  outcome.cycles.reserve(num_cycles);
  for (std::size_t c = 0; c < num_cycles; ++c) {
    PricedCycle pc;
    const std::size_t cycle_edges = in.check_count(in.u32(), 4);
    pc.cycle.edges.reserve(cycle_edges);
    for (std::size_t i = 0; i < cycle_edges; ++i) {
      pc.cycle.edges.push_back(static_cast<flow::EdgeId>(in.u32()));
    }
    pc.cycle.amount = in.i64();
    if (pc.cycle.amount < 0) throw CodecError("negative cycle amount");
    pc.prices = decode_player_prices(in);
    pc.release_time = checked_finite(in.f64(), "release time");
    pc.delay_bonus = checked_finite(in.f64(), "delay bonus");
    pc.player_delay_bonuses = decode_player_prices(in);
    outcome.cycles.push_back(std::move(pc));
  }
  return outcome;
}

Game game_from_bytes(std::string_view bytes) {
  Reader in(bytes);
  Game game = decode_game(in);
  in.expect_end();
  return game;
}

BidVector bids_from_bytes(std::string_view bytes) {
  Reader in(bytes);
  BidVector bids = decode_bids(in);
  in.expect_end();
  return bids;
}

Outcome outcome_from_bytes(std::string_view bytes) {
  Reader in(bytes);
  Outcome outcome = decode_outcome(in);
  in.expect_end();
  return outcome;
}

}  // namespace codec

}  // namespace musketeer::core
