#include "core/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/properties.hpp"
#include "util/table.hpp"

namespace musketeer::core {

namespace {

[[noreturn]] void parse_error(int line, const std::string& message) {
  throw std::runtime_error("musketeer-game parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

std::string to_text(const Game& game) {
  std::ostringstream out;
  out << "musketeer-game v1\n";
  out << "players " << game.num_players() << "\n";
  out.precision(12);
  for (EdgeId e = 0; e < game.num_edges(); ++e) {
    const GameEdge& edge = game.edge(e);
    out << "edge " << edge.from << " " << edge.to << " " << edge.capacity
        << " " << edge.tail_valuation << " " << edge.head_valuation << "\n";
  }
  return out.str();
}

Game game_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  auto next_meaningful = [&](std::string& out_line) {
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const auto start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos) continue;
      out_line = line.substr(start);
      return true;
    }
    return false;
  };

  std::string current;
  if (!next_meaningful(current) || current.rfind("musketeer-game v1", 0) != 0) {
    parse_error(line_no, "expected header 'musketeer-game v1'");
  }
  if (!next_meaningful(current)) parse_error(line_no, "missing 'players'");
  std::istringstream header(current);
  std::string keyword;
  long long num_players = -1;
  header >> keyword >> num_players;
  if (keyword != "players" || num_players < 0 || header.fail()) {
    parse_error(line_no, "expected 'players <n>'");
  }

  Game game(static_cast<NodeId>(num_players));
  while (next_meaningful(current)) {
    std::istringstream row(current);
    long long from = 0, to = 0, capacity = 0;
    double tail = 0.0, head = 0.0;
    row >> keyword >> from >> to >> capacity >> tail >> head;
    if (keyword != "edge" || row.fail()) {
      parse_error(line_no, "expected 'edge <from> <to> <cap> <tail> <head>'");
    }
    if (from < 0 || from >= num_players || to < 0 || to >= num_players ||
        from == to) {
      parse_error(line_no, "edge endpoints out of range");
    }
    if (capacity < 0) parse_error(line_no, "negative capacity");
    if (tail > 0.0 || tail <= -kMaxFeeRate) {
      parse_error(line_no, "tail valuation outside (-0.1, 0]");
    }
    if (head < 0.0 || head >= kMaxFeeRate) {
      parse_error(line_no, "head valuation outside [0, 0.1)");
    }
    game.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to),
                  capacity, tail, head);
  }
  return game;
}

Game load_game(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open game file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return game_from_text(buffer.str());
}

void save_game(const Game& game, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write game file: " + path);
  out << to_text(game);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string describe_outcome(const Game& game, const Outcome& outcome) {
  std::ostringstream out;
  out << "cycles: " << outcome.cycles.size()
      << ", rebalanced volume: " << flow::total_volume(outcome.circulation)
      << ", realized welfare: "
      << util::fmt_double(outcome.realized_welfare(game), 6) << "\n";
  for (std::size_t i = 0; i < outcome.cycles.size(); ++i) {
    const PricedCycle& pc = outcome.cycles[i];
    out << "  cycle " << i << ": amount " << pc.cycle.amount << ", edges [";
    for (std::size_t j = 0; j < pc.cycle.edges.size(); ++j) {
      const GameEdge& e = game.edge(pc.cycle.edges[j]);
      out << e.from << "->" << e.to
          << (j + 1 < pc.cycle.edges.size() ? " " : "");
    }
    out << "]";
    if (pc.release_time > 0.0) {
      out << ", release t=" << util::fmt_double(pc.release_time, 3);
    }
    out << "\n";
    for (const PlayerPrice& p : pc.prices) {
      out << "    player " << p.player
          << (p.price >= 0 ? " pays " : " receives ")
          << util::fmt_double(p.price >= 0 ? p.price : -p.price, 6) << "\n";
    }
  }
  const auto balance = check_cyclic_budget_balance(outcome);
  const auto rationality = check_individual_rationality(game, outcome);
  out << "cyclic budget balance: max |cycle sum| = "
      << util::format("%.2e", balance.max_cycle_imbalance) << "\n";
  out << "individual rationality: min cycle utility = "
      << util::fmt_double(rationality.min_cycle_utility, 6) << "\n";
  return out.str();
}

}  // namespace musketeer::core
