// Baseline rebalancing schemes the paper positions Musketeer against.
//
//  * HideSeek — the globally optimal buyers-only rebalancing of Hide &
//    Seek [10] / Revive [25]: only depleted edges (channels whose owners
//    personally want rebalancing) form the rebalancing subgraph; flow is
//    maximized over them; nobody pays or earns fees. Sellers' idle
//    liquidity is left unused — the under-utilization Musketeer fixes.
//  * LocalRebalancing — the Lightning `rebalance`-plugin model [1]: each
//    buyer independently searches for a return path through the network
//    (bounded depth), paying the public fee rate per hop, greedily and
//    sequentially. Finds only what a local search can see.
//  * NoRebalancing — the do-nothing control.
//
// All three implement the common Mechanism interface so E1/E4 can sweep
// {none, local, hide&seek, M1..M4} uniformly.
#pragma once

#include "core/mechanism.hpp"

namespace musketeer::core {

class NoRebalancing : public Mechanism {
 public:
  std::string_view name() const override { return "no-rebalancing"; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;
};

class HideSeek : public Mechanism {
 public:
  explicit HideSeek(flow::SolverKind solver = flow::SolverKind::kBellmanFord)
      : solver_(solver) {}

  std::string_view name() const override { return "hide-and-seek"; }

  /// Hide & Seek maximizes rebalanced liquidity over the depleted
  /// subgraph and ignores private seller costs entirely — a seller edge
  /// conscripted into a cycle can lose. Not an IR mechanism.
  bool claims_individual_rationality() const override { return false; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  flow::SolverKind solver_;
};

class LocalRebalancing : public Mechanism {
 public:
  /// `max_path_length` bounds the return-path search depth (total cycle
  /// length is max_path_length + 1); `fee_rate` is the public per-hop fee
  /// the buyer pays to intermediaries.
  explicit LocalRebalancing(int max_path_length = 4, double fee_rate = 0.001);

  std::string_view name() const override { return "local-rebalancing"; }

  /// Intermediaries are compensated at the public fee rate regardless of
  /// their private routing cost, so IR can fail for them by construction.
  bool claims_individual_rationality() const override { return false; }

 protected:
  Outcome run_impl(flow::SolveContext& ctx, const Game& game,
                   const BidVector& bids) const override;

 private:
  int max_path_length_;
  double fee_rate_;
};

}  // namespace musketeer::core
