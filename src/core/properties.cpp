#include "core/properties.hpp"

#include <algorithm>
#include <cmath>

#include "flow/solve_context.hpp"
#include "flow/solver.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

BudgetBalanceReport check_cyclic_budget_balance(const Outcome& outcome) {
  BudgetBalanceReport report;
  for (const PricedCycle& pc : outcome.cycles) {
    const double imbalance = pc.budget_imbalance();
    report.max_cycle_imbalance =
        std::max(report.max_cycle_imbalance, std::abs(imbalance));
    report.total_imbalance += imbalance;
  }
  return report;
}

RationalityReport check_individual_rationality(const Game& game,
                                               const Outcome& outcome) {
  RationalityReport report;
  report.min_cycle_utility = 0.0;
  const BidVector valuations = game.truthful_bids();
  bool any = false;
  std::vector<double> totals(static_cast<std::size_t>(game.num_players()), 0.0);
  for (const PricedCycle& pc : outcome.cycles) {
    for (PlayerId v : game.cycle_players(pc.cycle)) {
      const double utility =
          game.player_cycle_value(v, valuations, pc.cycle) - pc.price_of(v) +
          pc.delay_bonus_of(v);
      totals[static_cast<std::size_t>(v)] += utility;
      if (!any || utility < report.min_cycle_utility) {
        report.min_cycle_utility = utility;
      }
      any = true;
      if (utility < -1e-9) ++report.violations;
    }
  }
  report.min_total_utility =
      totals.empty() ? 0.0 : *std::min_element(totals.begin(), totals.end());
  return report;
}

EfficiencyReport check_efficiency(const Game& game, const BidVector& bids,
                                  const Outcome& outcome) {
  EfficiencyReport report;
  flow::SolveContext& ctx = flow::local_context();
  const flow::Graph& g = game.bind_graph(ctx, bids);
  report.outcome_welfare = game.social_welfare(bids, outcome.circulation);
  report.certified_optimal = flow::is_optimal(g, outcome.circulation);
  const flow::Circulation reference = ctx.solve();
  report.optimal_welfare = game.social_welfare(bids, reference);
  return report;
}

BidVector scale_player_bids(const Game& game, const BidVector& bids,
                            PlayerId player, double scale) {
  BidVector out = bids;
  for (EdgeId e = 0; e < game.num_edges(); ++e) {
    const GameEdge& edge = game.edge(e);
    const auto i = static_cast<std::size_t>(e);
    if (edge.from == player) {
      out.tail[i] = std::clamp(bids.tail[i] * scale, -kMaxFeeRate + 1e-9, 0.0);
    }
    if (edge.to == player) {
      out.head[i] = std::clamp(bids.head[i] * scale, 0.0, kMaxFeeRate - 1e-9);
    }
  }
  return out;
}

DeviationReport probe_truthfulness(const Mechanism& mechanism,
                                   const Game& game, PlayerId player,
                                   const std::vector<double>& scales) {
  MUSK_ASSERT(!scales.empty());
  const BidVector truthful = game.truthful_bids();
  // One context for the whole probe: the game's topology never changes
  // across deviations, so every run after the first rebinds in place.
  flow::SolveContext ctx;
  DeviationReport report;
  report.truthful_utility =
      mechanism.run(ctx, game, truthful).player_utility(game, player);
  report.best_utility = report.truthful_utility;
  report.best_scale = 1.0;
  for (double scale : scales) {
    const BidVector deviated =
        scale_player_bids(game, truthful, player, scale);
    const Outcome outcome = mechanism.run(ctx, game, deviated);
    const double utility = outcome.player_utility(game, player);
    if (utility > report.best_utility) {
      report.best_utility = utility;
      report.best_scale = scale;
    }
  }
  return report;
}

}  // namespace musketeer::core
