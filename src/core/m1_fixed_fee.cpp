#include "core/m1_fixed_fee.hpp"

#include "util/assert.hpp"

namespace musketeer::core {

namespace {

// M1's objective graph: depleted edges weigh k * p_hat, indifferent
// edges -p_hat (the bid magnitudes are ignored — see the header).
struct M1Source {
  const Game& game;
  const BidVector& bids;
  double fee_rate;
  double k;

  NodeId num_nodes() const { return game.num_players(); }
  EdgeId num_edges() const { return game.num_edges(); }
  NodeId edge_from(EdgeId e) const { return game.edge(e).from; }
  NodeId edge_to(EdgeId e) const { return game.edge(e).to; }
  Amount capacity(EdgeId e) const { return game.edge(e).capacity; }
  double gain(EdgeId e) const {
    return bids.head[static_cast<std::size_t>(e)] > 0.0 ? k * fee_rate
                                                        : -fee_rate;
  }
};

}  // namespace

M1FixedFee::M1FixedFee(double fee_rate, double k, flow::SolverKind solver)
    : fee_rate_(fee_rate), k_(k), solver_(solver) {
  MUSK_ASSERT_MSG(fee_rate > 0.0, "fee rate must be positive");
  MUSK_ASSERT_MSG(k >= 1.0, "buyer-rate multiplier k must be >= 1");
  MUSK_ASSERT_MSG(k * fee_rate < kMaxFeeRate,
                  "k * p_hat must respect the 10% valuation bound");
}

Game m1_self_selected(const Game& game, double fee_rate, double k) {
  Game filtered(game.num_players());
  for (EdgeId e = 0; e < game.num_edges(); ++e) {
    const GameEdge& edge = game.edge(e);
    if (edge.head_valuation > 0.0) {
      // A buyer joins only if the worst-case rate k * p_hat is worth it.
      if (edge.head_valuation >= k * fee_rate) {
        filtered.add_edge(edge.from, edge.to, edge.capacity,
                          edge.tail_valuation, edge.head_valuation);
      }
    } else if (-edge.tail_valuation <= fee_rate) {
      // A seller joins only if the fixed fee covers its cost.
      filtered.add_edge(edge.from, edge.to, edge.capacity,
                        edge.tail_valuation, edge.head_valuation);
    }
  }
  return filtered;
}

Outcome M1FixedFee::run_impl(flow::SolveContext& ctx, const Game& game,
                             const BidVector& bids) const {
  MUSK_ASSERT(bids.size() == static_cast<std::size_t>(game.num_edges()));

  // D = declared depleted edges (positive head bid); the rest are I.
  std::vector<bool> depleted(static_cast<std::size_t>(game.num_edges()));
  for (EdgeId e = 0; e < game.num_edges(); ++e) {
    depleted[static_cast<std::size_t>(e)] =
        bids.head[static_cast<std::size_t>(e)] > 0.0;
  }
  ctx.bind_from(M1Source{game, bids, fee_rate_, k_});

  Outcome outcome;
  outcome.circulation = ctx.solve(solver_);
  for (flow::CycleFlow& cycle : ctx.decompose(outcome.circulation)) {
    // Seller fees: each indifferent edge's tail earns p_hat per unit.
    PricedCycle pc;
    int num_depleted = 0;
    double seller_cost = 0.0;
    for (EdgeId e : cycle.edges) {
      if (depleted[static_cast<std::size_t>(e)]) {
        ++num_depleted;
      } else {
        const double fee = fee_rate_ * static_cast<double>(cycle.amount);
        pc.prices.push_back(PlayerPrice{game.edge(e).from, -fee});
        seller_cost += fee;
      }
    }
    // A cycle with positive objective weight necessarily contains a
    // depleted edge (indifferent edges only contribute negatively).
    MUSK_ASSERT_MSG(num_depleted > 0,
                    "optimal M1 cycles contain a depleted edge");
    const double buyer_charge = seller_cost / static_cast<double>(num_depleted);
    for (EdgeId e : cycle.edges) {
      if (depleted[static_cast<std::size_t>(e)]) {
        pc.prices.push_back(PlayerPrice{game.edge(e).to, buyer_charge});
      }
    }
    pc.cycle = std::move(cycle);
    outcome.cycles.push_back(std::move(pc));
  }
  return outcome;
}

}  // namespace musketeer::core
