#include "core/m2_vcg.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "flow/executor.hpp"
#include "flow/partitioner.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

namespace {

constexpr double kTiny = 1e-12;

// M2's model: sellers are non-strategic, so tail bids are forced to zero.
BidVector buyers_only(const BidVector& bids) {
  BidVector out = bids;
  for (double& t : out.tail) t = 0.0;
  return out;
}

// SW(b_{-v}, f): welfare of f with player v's stakes removed.
double welfare_without(const Game& game, const BidVector& bids, PlayerId v,
                       const flow::Circulation& f) {
  return game.social_welfare(bids, f) - game.player_value(v, bids, f);
}

/// Zeroes the capacity of every edge incident to `v` in `g`, recording
/// the previous values in `saved` (the component-local analogue of
/// SolveContext::mask_player).
void mask_in(flow::Graph& g, PlayerId v,
             std::vector<std::pair<flow::EdgeId, flow::Amount>>& saved) {
  saved.clear();
  for (const flow::EdgeId e : g.out_edges(v)) {
    saved.emplace_back(e, g.edge(e).capacity);
    g.set_capacity(e, 0);
  }
  for (const flow::EdgeId e : g.in_edges(v)) {
    saved.emplace_back(e, g.edge(e).capacity);
    g.set_capacity(e, 0);
  }
}

}  // namespace

std::vector<double> M2Vcg::vcg_prices(const Game& game,
                                      const BidVector& raw_bids) const {
  return vcg_prices(flow::local_context(), game, raw_bids);
}

std::vector<double> M2Vcg::vcg_prices(flow::SolveContext& ctx,
                                      const Game& game,
                                      const BidVector& raw_bids) const {
  const BidVector bids = buyers_only(raw_bids);
  game.bind_graph(ctx, bids);
  const flow::Circulation f = ctx.solve(solver_);

  // Only buyers (players with a positive head bid) are strategic and
  // priced; sellers are compensated by redistribution instead.
  std::vector<PlayerId> buyers;
  {
    std::vector<bool> is_buyer(static_cast<std::size_t>(game.num_players()),
                               false);
    for (EdgeId e = 0; e < game.num_edges(); ++e) {
      if (bids.head[static_cast<std::size_t>(e)] > 0.0) {
        is_buyer[static_cast<std::size_t>(game.edge(e).to)] = true;
      }
    }
    for (PlayerId v = 0; v < game.num_players(); ++v) {
      if (is_buyer[static_cast<std::size_t>(v)]) buyers.push_back(v);
    }
  }

  std::vector<double> prices(static_cast<std::size_t>(game.num_players()), 0.0);

  if (!ctx.shards_ready()) {
    // Monolithic path: each exclusion is an O(deg) capacity mask on the
    // already-bound context, re-solved on the whole graph.
    for (const PlayerId v : buyers) {
      ctx.mask_player(v);
      const flow::Circulation f_minus = ctx.solve(solver_);
      ctx.unmask();
      prices[static_cast<std::size_t>(v)] =
          welfare_without(game, bids, v, f_minus) -
          welfare_without(game, bids, v, f);
    }
    return prices;
  }

  // Sharded path: f_{-v} differs from f only on v's weakly-connected
  // component, so each exclusion re-solves that component alone, and
  // components reprice as independent executor tasks. Every task owns a
  // private copy of its component subgraph plus a fresh workspace —
  // SolveContext stays single-threaded state. Prices land in disjoint
  // slots (a buyer belongs to exactly one component), and each price is
  // computed from the same full-graph f_{-v} welfare expression as the
  // monolithic path, so the result is bit-identical to it.
  std::vector<std::vector<PlayerId>> by_component(
      static_cast<std::size_t>(ctx.num_components()));
  std::vector<int> priced_components;
  for (const PlayerId v : buyers) {
    const int c = ctx.component_of(v);
    MUSK_ASSERT_MSG(c != flow::kNoComponent, "buyer with no incident edge");
    if (by_component[static_cast<std::size_t>(c)].empty()) {
      priced_components.push_back(c);
    }
    by_component[static_cast<std::size_t>(c)].push_back(v);
  }
  ctx.executor()->run(priced_components.size(), [&](std::size_t i) {
    const int c = priced_components[i];
    // Deliberate copy: each task masks caps in place, so it needs its
    // own graph, not the context's shared shard.
    flow::Graph g = ctx.component_graph(c);  // musk-lint: allow(graph-in-mechanism)
    flow::Workspace ws;
    const std::span<const flow::EdgeId> edges = ctx.component_edges(c);
    flow::Circulation f_minus = f;
    std::vector<std::pair<flow::EdgeId, flow::Amount>> saved;
    for (const PlayerId v : by_component[static_cast<std::size_t>(c)]) {
      mask_in(g, v, saved);
      const flow::Circulation local =
          flow::solve_max_welfare(g, ws, solver_, nullptr, ctx.cancel());
      for (const auto& [e, cap] : saved) g.set_capacity(e, cap);
      // Scatter overwrites every component entry, so f_minus needs no
      // reset between buyers; outside the component it stays equal to f
      // — exactly the whole-graph f_{-v} (unmasked components re-solve
      // to their cached optimum deterministically).
      for (std::size_t local_e = 0; local_e < edges.size(); ++local_e) {
        f_minus[static_cast<std::size_t>(edges[local_e])] = local[local_e];
      }
      prices[static_cast<std::size_t>(v)] =
          welfare_without(game, bids, v, f_minus) -
          welfare_without(game, bids, v, f);
    }
  });
  return prices;
}

Outcome M2Vcg::run_impl(flow::SolveContext& ctx, const Game& game,
                        const BidVector& raw_bids) const {
  const BidVector bids = buyers_only(raw_bids);
  MUSK_ASSERT_MSG(game.is_valid(bids), "invalid bid vector");

  game.bind_graph(ctx, bids);
  Outcome outcome;
  outcome.circulation = ctx.solve(solver_);
  const std::vector<double> aggregate = vcg_prices(ctx, game, bids);

  // vcg_prices rebinds the same structure with the same bids and leaves
  // no mask active, so the context still holds this game's graph.
  std::vector<flow::CycleFlow> cycles = ctx.decompose(outcome.circulation);

  // Per-player total bid value over the whole circulation (denominator of
  // the proportional split).
  std::vector<double> total_value(static_cast<std::size_t>(game.num_players()),
                                  0.0);
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    total_value[static_cast<std::size_t>(v)] =
        game.player_value(v, bids, outcome.circulation);
  }

  for (flow::CycleFlow& cycle : cycles) {
    PricedCycle pc;
    const std::vector<PlayerId> players = game.cycle_players(cycle);

    // Step 4: split p(v) proportional to v's bid value for this cycle.
    double collected = 0.0;
    std::vector<bool> charged(players.size(), false);
    std::vector<double> charges(players.size(), 0.0);
    for (std::size_t i = 0; i < players.size(); ++i) {
      const PlayerId v = players[i];
      const double pv = aggregate[static_cast<std::size_t>(v)];
      const double denom = total_value[static_cast<std::size_t>(v)];
      if (std::abs(pv) < kTiny || std::abs(denom) < kTiny) continue;
      const double share =
          pv * game.player_cycle_value(v, bids, cycle) / denom;
      if (std::abs(share) < kTiny) continue;
      charges[i] = share;
      charged[i] = true;
      collected += share;
    }

    // Steps 5-6: redistribute the collected fees to this cycle's sellers
    // (participants without a charge). Fall back to a free cycle when the
    // redistribution cannot be balanced (see header).
    const auto num_sellers =
        std::count(charged.begin(), charged.end(), false);
    if (collected < -kTiny || (collected > kTiny && num_sellers == 0)) {
      pc.cycle = std::move(cycle);
      outcome.cycles.push_back(std::move(pc));
      continue;
    }
    for (std::size_t i = 0; i < players.size(); ++i) {
      if (charged[i]) {
        pc.prices.push_back(PlayerPrice{players[i], charges[i]});
      } else if (collected > kTiny) {
        pc.prices.push_back(PlayerPrice{
            players[i], -collected / static_cast<double>(num_sellers)});
      }
    }
    pc.cycle = std::move(cycle);
    outcome.cycles.push_back(std::move(pc));
  }
  return outcome;
}

}  // namespace musketeer::core
