#include "core/m2_vcg.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "util/assert.hpp"

namespace musketeer::core {

namespace {

constexpr double kTiny = 1e-12;

// M2's model: sellers are non-strategic, so tail bids are forced to zero.
BidVector buyers_only(const BidVector& bids) {
  BidVector out = bids;
  for (double& t : out.tail) t = 0.0;
  return out;
}

// SW(b_{-v}, f): welfare of f with player v's stakes removed.
double welfare_without(const Game& game, const BidVector& bids, PlayerId v,
                       const flow::Circulation& f) {
  return game.social_welfare(bids, f) - game.player_value(v, bids, f);
}

}  // namespace

std::vector<double> M2Vcg::vcg_prices(const Game& game,
                                      const BidVector& raw_bids) const {
  return vcg_prices(flow::local_context(), game, raw_bids);
}

std::vector<double> M2Vcg::vcg_prices(flow::SolveContext& ctx,
                                      const Game& game,
                                      const BidVector& raw_bids) const {
  const BidVector bids = buyers_only(raw_bids);
  game.bind_graph(ctx, bids);
  const flow::Circulation f = ctx.solve(solver_);

  // Only buyers (players with a positive head bid) are strategic and
  // priced; sellers are compensated by redistribution instead.
  std::vector<PlayerId> buyers;
  {
    std::vector<bool> is_buyer(static_cast<std::size_t>(game.num_players()),
                               false);
    for (EdgeId e = 0; e < game.num_edges(); ++e) {
      if (bids.head[static_cast<std::size_t>(e)] > 0.0) {
        is_buyer[static_cast<std::size_t>(game.edge(e).to)] = true;
      }
    }
    for (PlayerId v = 0; v < game.num_players(); ++v) {
      if (is_buyer[static_cast<std::size_t>(v)]) buyers.push_back(v);
    }
  }

  // The per-buyer exclusion solves are independent — fan them out across
  // hardware threads. Results land in pre-sized slots, so the outcome is
  // byte-identical to the sequential order. Each exclusion is an O(deg)
  // capacity mask on an already-bound context: the masked graph equals
  // the paper's G_{-v} exactly, so no per-buyer rebuild is needed.
  std::vector<double> prices(static_cast<std::size_t>(game.num_players()), 0.0);
  std::atomic<std::size_t> next{0};
  auto worker = [&](flow::SolveContext& wctx) {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= buyers.size()) return;
      const PlayerId v = buyers[i];
      wctx.mask_player(v);
      const flow::Circulation f_minus = wctx.solve(solver_);
      wctx.unmask();
      prices[static_cast<std::size_t>(v)] =
          welfare_without(game, bids, v, f_minus) -
          welfare_without(game, bids, v, f);
    }
  };
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t num_threads =
      std::min<std::size_t>(buyers.size(), hw == 0 ? 2 : hw);
  if (num_threads <= 1) {
    worker(ctx);
  } else {
    // Contexts are single-threaded state: each worker binds its own
    // (one structure build per worker, then mask-only solves).
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&]() {
        flow::SolveContext wctx;
        game.bind_graph(wctx, bids);
        worker(wctx);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  return prices;
}

Outcome M2Vcg::run_impl(flow::SolveContext& ctx, const Game& game,
                        const BidVector& raw_bids) const {
  const BidVector bids = buyers_only(raw_bids);
  MUSK_ASSERT_MSG(game.is_valid(bids), "invalid bid vector");

  game.bind_graph(ctx, bids);
  Outcome outcome;
  outcome.circulation = ctx.solve(solver_);
  const std::vector<double> aggregate = vcg_prices(ctx, game, bids);

  // vcg_prices rebinds the same structure with the same bids and leaves
  // no mask active, so the context still holds this game's graph.
  std::vector<flow::CycleFlow> cycles = ctx.decompose(outcome.circulation);

  // Per-player total bid value over the whole circulation (denominator of
  // the proportional split).
  std::vector<double> total_value(static_cast<std::size_t>(game.num_players()),
                                  0.0);
  for (PlayerId v = 0; v < game.num_players(); ++v) {
    total_value[static_cast<std::size_t>(v)] =
        game.player_value(v, bids, outcome.circulation);
  }

  for (flow::CycleFlow& cycle : cycles) {
    PricedCycle pc;
    const std::vector<PlayerId> players = game.cycle_players(cycle);

    // Step 4: split p(v) proportional to v's bid value for this cycle.
    double collected = 0.0;
    std::vector<bool> charged(players.size(), false);
    std::vector<double> charges(players.size(), 0.0);
    for (std::size_t i = 0; i < players.size(); ++i) {
      const PlayerId v = players[i];
      const double pv = aggregate[static_cast<std::size_t>(v)];
      const double denom = total_value[static_cast<std::size_t>(v)];
      if (std::abs(pv) < kTiny || std::abs(denom) < kTiny) continue;
      const double share =
          pv * game.player_cycle_value(v, bids, cycle) / denom;
      if (std::abs(share) < kTiny) continue;
      charges[i] = share;
      charged[i] = true;
      collected += share;
    }

    // Steps 5-6: redistribute the collected fees to this cycle's sellers
    // (participants without a charge). Fall back to a free cycle when the
    // redistribution cannot be balanced (see header).
    const auto num_sellers =
        std::count(charged.begin(), charged.end(), false);
    if (collected < -kTiny || (collected > kTiny && num_sellers == 0)) {
      pc.cycle = std::move(cycle);
      outcome.cycles.push_back(std::move(pc));
      continue;
    }
    for (std::size_t i = 0; i < players.size(); ++i) {
      if (charged[i]) {
        pc.prices.push_back(PlayerPrice{players[i], charges[i]});
      } else if (collected > kTiny) {
        pc.prices.push_back(PlayerPrice{
            players[i], -collected / static_cast<double>(num_sellers)});
      }
    }
    pc.cycle = std::move(cycle);
    outcome.cycles.push_back(std::move(pc));
  }
  return outcome;
}

}  // namespace musketeer::core
