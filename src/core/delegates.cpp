#include "core/delegates.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace musketeer::core {

namespace sharing {

std::vector<std::uint64_t> split(std::uint64_t secret, int num_shares,
                                 util::Rng& rng) {
  MUSK_ASSERT(num_shares >= 2);
  std::vector<std::uint64_t> shares(static_cast<std::size_t>(num_shares));
  std::uint64_t sum = 0;
  for (int i = 1; i < num_shares; ++i) {
    shares[static_cast<std::size_t>(i)] = rng();
    sum += shares[static_cast<std::size_t>(i)];
  }
  shares[0] = secret - sum;  // wraps mod 2^64
  return shares;
}

std::uint64_t reconstruct(const std::vector<std::uint64_t>& shares) {
  std::uint64_t sum = 0;
  for (std::uint64_t s : shares) sum += s;
  return sum;
}

std::uint64_t encode_rate(double rate) {
  MUSK_ASSERT(std::abs(rate) < 0.1);
  const auto fixed = static_cast<std::int64_t>(std::llround(rate * 1e9));
  return static_cast<std::uint64_t>(fixed);
}

double decode_rate(std::uint64_t encoded) {
  return static_cast<double>(static_cast<std::int64_t>(encoded)) / 1e9;
}

}  // namespace sharing

DelegateCommittee::DelegateCommittee(int num_delegates, NodeId num_players,
                                     util::Rng& rng)
    : num_delegates_(num_delegates), num_players_(num_players), rng_(&rng) {
  MUSK_ASSERT_MSG(num_delegates >= 2,
                  "a single delegate would learn every secret");
  MUSK_ASSERT(num_players >= 0);
}

void DelegateCommittee::submit_edge(NodeId from, NodeId to, Amount capacity,
                                    double tail_valuation,
                                    double head_valuation) {
  MUSK_ASSERT(from >= 0 && from < num_players_);
  MUSK_ASSERT(to >= 0 && to < num_players_);
  MUSK_ASSERT(capacity >= 0);
  SharedEdge edge{
      from, to,
      sharing::split(static_cast<std::uint64_t>(capacity), num_delegates_,
                     *rng_),
      sharing::split(sharing::encode_rate(tail_valuation), num_delegates_,
                     *rng_),
      sharing::split(sharing::encode_rate(head_valuation), num_delegates_,
                     *rng_)};
  edges_.push_back(std::move(edge));
}

DelegateCommittee::DelegateView DelegateCommittee::view(
    int delegate, int submission) const {
  MUSK_ASSERT(delegate >= 0 && delegate < num_delegates_);
  MUSK_ASSERT(submission >= 0 && submission < num_submissions());
  const SharedEdge& edge = edges_[static_cast<std::size_t>(submission)];
  const auto d = static_cast<std::size_t>(delegate);
  return DelegateView{edge.capacity_shares[d], edge.tail_shares[d],
                      edge.head_shares[d]};
}

Game DelegateCommittee::reconstruct_game() const {
  Game game(num_players_);
  for (const SharedEdge& edge : edges_) {
    const auto capacity = static_cast<Amount>(
        sharing::reconstruct(edge.capacity_shares));
    const double tail =
        sharing::decode_rate(sharing::reconstruct(edge.tail_shares));
    const double head =
        sharing::decode_rate(sharing::reconstruct(edge.head_shares));
    game.add_edge(edge.from, edge.to, capacity, tail, head);
  }
  return game;
}

Outcome DelegateCommittee::run(const Mechanism& mechanism) const {
  const Game game = reconstruct_game();
  return mechanism.run_truthful(game);
}

}  // namespace musketeer::core
