#include "core/m4_delayed.hpp"

#include <algorithm>

#include "core/m3_double_auction.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

M4DelayedAuction::M4DelayedAuction(double delay_factor,
                                   flow::SolverKind solver)
    : delay_factor_(delay_factor), solver_(solver) {
  MUSK_ASSERT_MSG(delay_factor > 0.0, "delay factor d must be positive");
}

Outcome M4DelayedAuction::run_impl(flow::SolveContext& ctx, const Game& game,
                                   const BidVector& bids) const {
  MUSK_ASSERT_MSG(game.is_valid(bids), "invalid bid vector");
  game.bind_graph(ctx, bids);
  Outcome outcome;
  outcome.circulation = ctx.solve(solver_);
  for (flow::CycleFlow& cycle : ctx.decompose(outcome.circulation)) {
    PricedCycle pc;
    pc.prices = price_cycle_welfare_share(game, bids, cycle);
    const double n = static_cast<double>(cycle.length());
    const double sw = game.cycle_welfare(bids, cycle);
    const double raw_time = 1.0 - (1.0 - 1.0 / n) * sw / delay_factor_;
    pc.release_time = std::clamp(raw_time, 0.0, 1.0);
    pc.delay_bonus = delay_factor_ * (1.0 - pc.release_time);
    pc.cycle = std::move(cycle);
    outcome.cycles.push_back(std::move(pc));
  }
  return outcome;
}

}  // namespace musketeer::core
