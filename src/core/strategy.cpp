#include "core/strategy.hpp"

#include "core/properties.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

CollusionReport probe_collusion(const Mechanism& mechanism, const Game& game,
                                PlayerId first, PlayerId second,
                                const std::vector<double>& scales) {
  MUSK_ASSERT(first != second);
  MUSK_ASSERT(!scales.empty());
  const BidVector truthful = game.truthful_bids();

  CollusionReport report;
  report.first = first;
  report.second = second;
  {
    const Outcome outcome = mechanism.run(game, truthful);
    report.honest_joint_utility = outcome.player_utility(game, first) +
                                  outcome.player_utility(game, second);
  }
  report.best_joint_utility = report.honest_joint_utility;
  for (double s1 : scales) {
    const BidVector partial = scale_player_bids(game, truthful, first, s1);
    for (double s2 : scales) {
      const BidVector joint = scale_player_bids(game, partial, second, s2);
      const Outcome outcome = mechanism.run(game, joint);
      const double joint_utility = outcome.player_utility(game, first) +
                                   outcome.player_utility(game, second);
      report.best_joint_utility =
          std::max(report.best_joint_utility, joint_utility);
    }
  }
  return report;
}

BidVector withhold_edge_bid(const Game& game, const BidVector& bids,
                            EdgeId edge) {
  MUSK_ASSERT(edge >= 0 && edge < game.num_edges());
  BidVector out = bids;
  out.head[static_cast<std::size_t>(edge)] = 0.0;
  return out;
}

CoalitionReport probe_coalition(const Mechanism& mechanism, const Game& game,
                                const std::vector<PlayerId>& coalition,
                                const std::vector<double>& scales) {
  MUSK_ASSERT(!coalition.empty());
  MUSK_ASSERT(!scales.empty());
  const BidVector truthful = game.truthful_bids();

  auto joint_utility = [&](const Outcome& outcome) {
    double total = 0.0;
    for (PlayerId v : coalition) total += outcome.player_utility(game, v);
    return total;
  };

  CoalitionReport report;
  report.coalition = coalition;
  report.honest_joint_utility = joint_utility(mechanism.run(game, truthful));
  report.best_joint_utility = report.honest_joint_utility;
  report.best_scales.assign(coalition.size(), 1.0);

  // Odometer over scales^|coalition|.
  std::vector<std::size_t> index(coalition.size(), 0);
  for (;;) {
    BidVector bids = truthful;
    std::vector<double> current(coalition.size());
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      current[i] = scales[index[i]];
      bids = scale_player_bids(game, bids, coalition[i], current[i]);
    }
    const double utility = joint_utility(mechanism.run(game, bids));
    if (utility > report.best_joint_utility) {
      report.best_joint_utility = utility;
      report.best_scales = current;
    }
    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < index.size() && ++index[pos] == scales.size()) {
      index[pos] = 0;
      ++pos;
    }
    if (pos == index.size()) break;
  }
  return report;
}

}  // namespace musketeer::core
