// Mechanism output: a priced, sign-consistent cycle decomposition.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "core/types.hpp"
#include "flow/decompose.hpp"

namespace musketeer::core {

/// A price charged to (positive) or paid to (negative) one player for one
/// cycle.
struct PlayerPrice {
  PlayerId player = 0;
  double price = 0.0;
};

/// One executable rebalancing cycle with its price vector and (for M4)
/// release schedule.
struct PricedCycle {
  flow::CycleFlow cycle;
  std::vector<PlayerPrice> prices;
  /// Release time in [0, 1]; 0 = immediate, 1 = the implicit deadline all
  /// participants signed up for. Mechanisms without delays release at 0.
  double release_time = 0.0;
  /// Utility bonus d * (1 - release_time) accruing to every participant
  /// of this cycle (0 for mechanisms without delays).
  double delay_bonus = 0.0;
  /// Per-player delay bonuses for mechanisms with heterogeneous delay
  /// factors (M5). When non-empty, overrides `delay_bonus` for the listed
  /// players; participants not listed get `delay_bonus`.
  std::vector<PlayerPrice> player_delay_bonuses;

  /// The delay bonus `v` earns from this cycle (participants only).
  double delay_bonus_of(PlayerId v) const;

  /// Sum of the price vector — exactly 0 for a cyclic-budget-balanced
  /// mechanism (up to floating-point accumulation).
  double budget_imbalance() const;

  /// Price charged to one player in this cycle (0 if absent).
  double price_of(PlayerId v) const;
};

struct Outcome {
  /// The full rebalancing circulation (sum of all cycles).
  flow::Circulation circulation;
  std::vector<PricedCycle> cycles;

  /// Aggregate price per player across all cycles.
  std::vector<double> total_prices(NodeId num_players) const;

  /// Player utility under true valuations: value - price (+ delay bonus
  /// for each cycle the player participates in).
  double player_utility(const Game& game, PlayerId v) const;

  /// Utility of every player.
  std::vector<double> all_utilities(const Game& game) const;

  /// Total social welfare of the outcome under true valuations.
  double realized_welfare(const Game& game) const;
};

}  // namespace musketeer::core
