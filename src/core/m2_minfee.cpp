#include "core/m2_minfee.hpp"

#include <algorithm>
#include <cmath>

#include "core/m2_vcg.hpp"
#include "util/assert.hpp"

namespace musketeer::core {

namespace {

constexpr double kTiny = 1e-12;

}  // namespace

M2MinFee::M2MinFee(double min_seller_fee, flow::SolverKind solver)
    : min_seller_fee_(min_seller_fee), solver_(solver) {
  MUSK_ASSERT_MSG(min_seller_fee >= 0.0 && min_seller_fee < kMaxFeeRate,
                  "seller fee floor must be a valid fee rate");
}

Outcome M2MinFee::run_impl(flow::SolveContext& ctx, const Game& game,
                           const BidVector& bids) const {
  Outcome outcome = M2Vcg(solver_).run(ctx, game, bids);

  // Tail bids are zero in M2's model; buyer stakes drive the top-ups.
  BidVector buyer_bids = bids;
  for (double& t : buyer_bids.tail) t = 0.0;

  std::vector<PricedCycle> kept;
  kept.reserve(outcome.cycles.size());
  for (PricedCycle& pc : outcome.cycles) {
    const std::vector<PlayerId> players = game.cycle_players(pc.cycle);
    const double amount = static_cast<double>(pc.cycle.amount);

    // Pure sellers: cycle participants without a positive charge. Each
    // routes `amount` units per owned cycle edge (they are the tails).
    double shortfall = 0.0;
    std::vector<double> floor_gap(players.size(), 0.0);
    for (std::size_t i = 0; i < players.size(); ++i) {
      const double price = pc.price_of(players[i]);
      if (price > kTiny) continue;  // a charged buyer, not a floor case
      int tails_owned = 0;
      for (EdgeId e : pc.cycle.edges) {
        tails_owned += (game.edge(e).from == players[i]);
      }
      const double floor =
          min_seller_fee_ * amount * static_cast<double>(tails_owned);
      const double gap = std::max(0.0, floor - (-price));
      floor_gap[i] = gap;
      shortfall += gap;
    }
    if (shortfall <= kTiny) {
      kept.push_back(std::move(pc));
      continue;
    }

    // Buyer headroom: how much more each *buyer* can pay within
    // per-cycle IR under its reported bid. Pure sellers never fund the
    // floor — that would cannibalize the very guarantee.
    double headroom_total = 0.0;
    std::vector<double> headroom(players.size(), 0.0);
    for (std::size_t i = 0; i < players.size(); ++i) {
      const double value =
          game.player_cycle_value(players[i], buyer_bids, pc.cycle);
      if (value <= kTiny) continue;
      const double room = value - pc.price_of(players[i]);
      if (room > kTiny) {
        headroom[i] = room;
        headroom_total += room;
      }
    }
    if (headroom_total + kTiny < shortfall) {
      // The cycle cannot fund the floor: drop it rather than underpay.
      for (EdgeId e : pc.cycle.edges) {
        outcome.circulation[static_cast<std::size_t>(e)] -= pc.cycle.amount;
        MUSK_ASSERT(outcome.circulation[static_cast<std::size_t>(e)] >= 0);
      }
      continue;
    }

    // Charge buyers pro-rata to headroom; pay sellers up to the floor.
    for (std::size_t i = 0; i < players.size(); ++i) {
      double delta = 0.0;
      if (headroom[i] > 0.0) {
        delta += shortfall * headroom[i] / headroom_total;
      }
      delta -= floor_gap[i];
      if (std::abs(delta) > kTiny) {
        pc.prices.push_back(PlayerPrice{players[i], delta});
      }
    }
    kept.push_back(std::move(pc));
  }
  outcome.cycles = std::move(kept);
  return outcome;
}

}  // namespace musketeer::core
