// Tracing half of the observability subsystem: RAII Span objects
// recording begin/end pairs into bounded per-thread ring buffers,
// drained on demand to Chrome trace_event JSON (load the file at
// chrome://tracing or https://ui.perfetto.dev).
//
// Model:
//
//   * trace::enabled() is a single relaxed atomic flag, off by default.
//     musketeerd --trace-out flips it on; everything else pays one
//     predictable-branch load per span when tracing is off.
//   * A Span always *measures* (its constructor reads the monotonic
//     clock) — seconds() works whether or not tracing is enabled — but
//     only *emits* a trace event when tracing was enabled at
//     construction. Under -DMUSKETEER_OBS=OFF the MUSK_OBS_SPAN macros
//     expand to nothing and code that needs the duration anyway (the
//     service's clear_seconds) uses obs::Timer directly.
//   * Rings are per-thread (no cross-thread contention on the hot
//     path), globally owned (events of exited threads survive until
//     drained), and bounded: when full, new events overwrite the oldest
//     and trace::dropped() counts them.
//   * src/obs is the one sanctioned home of steady_clock outside
//     bench/tests — musk_lint's adhoc-timing rule points here.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>
#include <vector>

namespace musketeer::obs {

/// Monotonic stopwatch; the sanctioned timing primitive for code that
/// needs a duration (as opposed to a trace span). Always live,
/// independent of MUSKETEER_OBS.
class Timer {
 public:
  Timer() : start_(clock()) {}

  /// Seconds elapsed since construction (or the last reset()).
  double seconds() const {
    return std::chrono::duration<double>(clock() - start_).count();
  }

  void reset() { start_ = clock(); }

  static std::chrono::steady_clock::time_point clock() {
    return std::chrono::steady_clock::now();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

namespace trace {

/// One completed span, as drained. Timestamps are nanoseconds since
/// trace::start().
struct Event {
  const char* name;        ///< static string (span site)
  std::uint64_t start_ns;
  std::uint64_t duration_ns;
  std::uint32_t tid;       ///< small sequential trace thread id
  std::uint64_t epoch;     ///< 0 when the span carried no epoch
  char detail[24];         ///< optional short annotation ("" when unset)
};

/// Enables collection and (re)starts the trace clock. Events recorded
/// before start() are discarded by the accompanying clear().
void start();

/// Stops collection; already-recorded events stay drainable.
void stop();

/// Discards all buffered events and the dropped counter.
void clear();

bool enabled();

/// All buffered events, merged across threads, sorted by start time.
std::vector<Event> drain();

/// Events overwritten because a ring was full (since clear()).
std::uint64_t dropped();

/// Writes the buffered events as Chrome trace_event JSON ("X" complete
/// events, µs timestamps) and returns how many events were written.
std::size_t write_chrome_json(std::ostream& out);

// Internals used by Span.
std::uint64_t now_ns();
void emit(const Event& event);

}  // namespace trace

/// RAII trace span. Measures from construction; emits one trace::Event
/// at end() / destruction when tracing was enabled at construction.
/// `name` must be a string literal (stored by pointer).
class Span {
 public:
  explicit Span(const char* name)
      : name_(name), emit_(trace::enabled()),
        start_ns_(emit_ ? trace::now_ns() : 0) {
    detail_[0] = '\0';
    timer_ = Timer();
  }

  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Tags the span with the epoch it belongs to.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }

  /// Short free-form annotation (solver kind, record type, ...).
  /// Truncated to the Event's inline buffer.
  void set_detail(const char* detail) {
    std::strncpy(detail_, detail, sizeof(detail_) - 1);
    detail_[sizeof(detail_) - 1] = '\0';
  }

  /// Ends the span now (idempotent) and returns its duration in
  /// seconds. The destructor calls it; call explicitly when the
  /// duration feeds a report field.
  double end() {
    if (ended_) return seconds_;
    ended_ = true;
    seconds_ = timer_.seconds();
    if (emit_) {
      trace::Event event;
      event.name = name_;
      event.start_ns = start_ns_;
      event.duration_ns =
          static_cast<std::uint64_t>(seconds_ * 1e9);
      event.tid = 0;  // filled in by emit()
      event.epoch = epoch_;
      std::memcpy(event.detail, detail_, sizeof(detail_));
      trace::emit(event);
    }
    return seconds_;
  }

  /// Duration so far (or the final duration once ended).
  double seconds() const { return ended_ ? seconds_ : timer_.seconds(); }

 private:
  const char* name_;
  bool emit_;
  bool ended_ = false;
  std::uint64_t start_ns_;
  std::uint64_t epoch_ = 0;
  double seconds_ = 0.0;
  char detail_[24];
  Timer timer_;
};

}  // namespace musketeer::obs
