#include "obs/trace.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "util/table.hpp"

namespace musketeer::obs::trace {

namespace {

constexpr std::size_t kRingCapacity = 1 << 16;  ///< events per thread

/// One thread's bounded event ring. Owned by the global ring list (so
/// events survive thread exit); the per-ring mutex serializes the
/// owning thread's push against a concurrent drain — uncontended in
/// steady state, and a plain leaf std::mutex because pushes can happen
/// under any ranked lock and during thread teardown.
struct Ring {
  std::mutex mutex;  // musk-lint: allow(unranked-mutex)
  std::uint32_t tid = 0;
  std::vector<Event> events;   ///< ring storage, grown up to capacity
  std::size_t next = 0;        ///< overwrite cursor once full
  std::uint64_t dropped = 0;

  void push(const Event& event) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (events.size() < kRingCapacity) {
      events.push_back(event);
    } else {
      events[next] = event;
      next = (next + 1) % kRingCapacity;
      ++dropped;
    }
  }
};

struct Global {
  std::mutex mutex;  // musk-lint: allow(unranked-mutex)
  std::vector<std::unique_ptr<Ring>> rings;
  std::uint32_t next_tid = 0;
};

/// Leaked: rings must stay drainable after any thread exits, and pushes
/// may race static destruction.
Global& global() {
  static Global* const instance = new Global();
  return *instance;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_epoch_ns{0};  ///< steady_clock ns at start()

Ring* local_ring() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>();
    Ring* r = owned.get();
    Global& g = global();
    const std::lock_guard<std::mutex> lock(g.mutex);
    r->tid = g.next_tid++;
    g.rings.push_back(std::move(owned));
    return r;
  }();
  return ring;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void escape_into(std::string& out, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

}  // namespace

void start() {
  clear();
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void stop() { g_enabled.store(false, std::memory_order_release); }

bool enabled() { return g_enabled.load(std::memory_order_acquire); }

void clear() {
  Global& g = global();
  const std::lock_guard<std::mutex> lock(g.mutex);
  for (const auto& ring : g.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
}

std::uint64_t now_ns() {
  return steady_ns() - g_epoch_ns.load(std::memory_order_relaxed);
}

void emit(const Event& event) {
  Ring* ring = local_ring();
  Event stamped = event;
  stamped.tid = ring->tid;
  ring->push(stamped);
}

std::vector<Event> drain() {
  std::vector<Event> all;
  Global& g = global();
  const std::lock_guard<std::mutex> lock(g.mutex);
  for (const auto& ring : g.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    all.insert(all.end(), ring->events.begin(), ring->events.end());
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.start_ns < b.start_ns;
  });
  return all;
}

std::uint64_t dropped() {
  std::uint64_t total = 0;
  Global& g = global();
  const std::lock_guard<std::mutex> lock(g.mutex);
  for (const auto& ring : g.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

std::size_t write_chrome_json(std::ostream& out) {
  const std::vector<Event> events = drain();
  std::string body;
  body.reserve(events.size() * 96 + 64);
  body += "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events) {
    if (!first) body += ",";
    first = false;
    body += "\n{\"name\": \"";
    escape_into(body, e.name);
    body += util::format(
        "\", \"cat\": \"musketeer\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
        static_cast<double>(e.start_ns) / 1e3,
        static_cast<double>(e.duration_ns) / 1e3, e.tid);
    if (e.epoch != 0 || e.detail[0] != '\0') {
      body += ", \"args\": {";
      bool first_arg = true;
      if (e.epoch != 0) {
        body += util::format("\"epoch\": %llu",
                             static_cast<unsigned long long>(e.epoch));
        first_arg = false;
      }
      if (e.detail[0] != '\0') {
        if (!first_arg) body += ", ";
        body += "\"detail\": \"";
        escape_into(body, e.detail);
        body += "\"";
      }
      body += "}";
    }
    body += "}";
  }
  body += "\n]}\n";
  out << body;
  return events.size();
}

}  // namespace musketeer::obs::trace
