// Instrumentation macro layer: the one header hot paths include.
//
// With MUSKETEER_OBS (the default; CMake option MUSKETEER_OBS=ON) each
// macro resolves its instrument once per site via a function-local
// static reference — after the first hit, a count is one relaxed
// atomic add and a span is a clock read plus a branch. With
// -DMUSKETEER_OBS=OFF every macro expands to nothing and its arguments
// are never evaluated, so instrumented and uninstrumented builds run
// byte-identical settlement logic (tests/obs verifies digests match and
// bench/svc_throughput gates the residual cost).
//
// Naming scheme (DESIGN.md §12): dot-separated lowercase
// `<layer>.<object>.<unit>` — e.g. `svc.epoch.clear_seconds`,
// `flow.solve.rebind_total`, `pcn.imbalance.gini`. Histograms of
// durations always end in `_seconds`; counters in `_total`.
#pragma once

#if defined(MUSKETEER_OBS)

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// Adds `n` to the process-global counter `name` (a string literal).
#define MUSK_OBS_COUNT(name, n)                                         \
  do {                                                                  \
    static ::musketeer::obs::Counter& musk_obs_counter_ =               \
        ::musketeer::obs::registry().counter(name);                     \
    musk_obs_counter_.add(n);                                           \
  } while (0)

/// Sets the process-global gauge `name` to `v`.
#define MUSK_OBS_GAUGE(name, v)                                         \
  do {                                                                  \
    static ::musketeer::obs::Gauge& musk_obs_gauge_ =                   \
        ::musketeer::obs::registry().gauge(name);                       \
    musk_obs_gauge_.set(v);                                             \
  } while (0)

/// Records `v` into the process-global histogram `name`.
#define MUSK_OBS_HISTOGRAM(name, v)                                     \
  do {                                                                  \
    static ::musketeer::obs::Histogram& musk_obs_histogram_ =           \
        ::musketeer::obs::registry().histogram(name);                   \
    musk_obs_histogram_.record(v);                                      \
  } while (0)

/// Declares a scoped trace span named `var`. Use `var.set_epoch()` /
/// `var.set_detail()` / `var.end()` on it; all are no-ops when OFF.
#define MUSK_OBS_SPAN(var, name) ::musketeer::obs::Span var(name)

#else  // !MUSKETEER_OBS

#define MUSK_OBS_COUNT(name, n) \
  do {                          \
  } while (0)
#define MUSK_OBS_GAUGE(name, v) \
  do {                          \
  } while (0)
#define MUSK_OBS_HISTOGRAM(name, v) \
  do {                              \
  } while (0)

namespace musketeer::obs {

/// Inert stand-in so `MUSK_OBS_SPAN(s, "x"); ... s.end();` compiles
/// unchanged when observability is compiled out. seconds() returns 0 —
/// code that must measure regardless uses obs::Timer.
struct NoopSpan {
  void set_epoch(unsigned long long) {}
  void set_detail(const char*) {}
  double end() { return 0.0; }
  double seconds() const { return 0.0; }
};

}  // namespace musketeer::obs

#define MUSK_OBS_SPAN(var, name) \
  [[maybe_unused]] ::musketeer::obs::NoopSpan var {}

#endif  // MUSKETEER_OBS
