// Metrics half of the observability subsystem (src/obs): lock-free
// Counter / Gauge instruments, a fixed-bucket log-scale Histogram with
// mergeable per-thread shards, and a process-global Registry exporting
// everything as JSON or Prometheus text exposition.
//
// Design rules:
//
//   * Recording is wait-free after first touch. Counter/Gauge are single
//     relaxed atomics; Histogram::record() is one relaxed fetch_add on a
//     per-thread shard bucket (plus relaxed CAS loops for min/max). The
//     only locks are on the cold paths: instrument registration (the
//     Registry's ranked mutex, rank kObsRegistry — below everything in
//     the hierarchy, so a metric may be recorded or registered while
//     holding any other lock) and shard creation (once per
//     thread x histogram).
//   * Instruments are never destroyed while their Registry lives, so a
//     cached `Counter&` stays valid forever; hot paths look a metric up
//     once (see the MUSK_OBS_* macros in obs/obs.hpp) and then pay only
//     the atomic op.
//   * Shards are owned by the Histogram, not the recording thread: a
//     worker that exits leaves its counts behind, so a drain after the
//     workers joined still sees every sample.
//   * Everything here works whether or not -DMUSKETEER_OBS is defined;
//     the compile definition only gates the *instrumentation macros*
//     (obs/obs.hpp) that the hot paths use. Code that uses a Histogram
//     as a data structure (musk_loadgen's percentiles) calls it
//     directly and is unaffected by the switch.
//
// Histogram buckets are base-2 log-scale with kSubBuckets linear
// sub-buckets per octave: relative quantile error is bounded by
// 1/kSubBuckets (~3%), like HdrHistogram at low precision. Two
// histograms fed the same multiset of samples — in any order, from any
// thread split — report bit-identical quantiles, which is what makes
// percentile reports reproducible across runs and mergeable across
// worker threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace musketeer::obs {

/// Monotonic event counter. Relaxed atomics: totals are exact, but a
/// snapshot taken mid-traffic is a point-in-time approximation.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged, immutable view of a histogram (or several — see merge()).
/// quantile() interpolates linearly inside the containing bucket and
/// clamps to the exact observed [min, max], so p0/p100 are exact and
/// interior quantiles carry at most one sub-bucket of relative error.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact smallest sample (0 when count == 0)
  double max = 0.0;  ///< exact largest sample (0 when count == 0)
  std::vector<std::uint64_t> buckets;  ///< kTotalBuckets entries

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  double quantile(double q) const;

  /// Accumulates another snapshot (same bucket layout by construction).
  void merge(const HistogramSnapshot& other);
};

/// Fixed-layout log-scale histogram. record() is thread-safe and
/// wait-free after the calling thread's shard exists.
class Histogram {
 public:
  /// Sub-buckets per power of two; bounds the relative quantile error.
  static constexpr int kSubBuckets = 32;
  /// Smallest finite bucket boundary is 2^kMinExp (~9.3e-10): below it
  /// (and for v <= 0 / NaN) samples land in the underflow bucket 0.
  static constexpr int kMinExp = -30;
  /// Octaves covered; 2^(kMinExp + kOctaves) = 2^34 ~ 1.7e10 tops out
  /// the finite range, above which samples land in the overflow bucket.
  static constexpr int kOctaves = 64;
  static constexpr int kTotalBuckets = kOctaves * kSubBuckets + 2;

  Histogram();
  ~Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample into the calling thread's shard.
  void record(double v);

  /// Merged view across every shard ever created (including shards of
  /// threads that have exited).
  HistogramSnapshot snapshot() const;

  /// Bucket index a value lands in (exposed for tests).
  static int bucket_index(double v);
  /// Inclusive lower bound of bucket `i` (0 for the underflow bucket).
  static double bucket_lower_bound(int i);
  /// Exclusive upper bound of bucket `i` (+inf for the overflow bucket).
  static double bucket_upper_bound(int i);

 private:
  struct Shard;
  Shard* local_shard();

  // Shard list; locked only on shard creation and snapshot. A plain
  // std::mutex (not an OrderedMutex) on purpose: shard lookup can run
  // during thread-local teardown, after the lock-rank auditor's own
  // thread_local stack may already be destroyed, so it must not touch
  // the rank machinery. It is a leaf lock: nothing is acquired under it.
  mutable std::mutex shards_mutex_;  // musk-lint: allow(unranked-mutex)
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Name -> instrument registry. Metric names are dot-separated
/// lowercase identifiers ("svc.epoch.solve_seconds"); the Prometheus
/// exporter maps dots to underscores. Labels, when needed, are encoded
/// into the name Prometheus-style: `name{key="value"}`.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the named instrument, creating it on first use. The
  /// returned reference lives as long as the Registry. Registering one
  /// name as two different instrument kinds aborts.
  Counter& counter(const std::string& name, const std::string& help = "")
      MUSK_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const std::string& help = "")
      MUSK_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, const std::string& help = "")
      MUSK_EXCLUDES(mutex_);

  /// Deterministic (name-sorted) JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// min,max,mean,p50,p90,p99}}}.
  std::string to_json() const MUSK_EXCLUDES(mutex_);

  /// Prometheus text exposition (HELP/TYPE + samples; histograms as
  /// cumulative le-buckets plus _sum/_count).
  std::string to_prometheus() const MUSK_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_locked(const std::string& name, const std::string& help)
      MUSK_REQUIRES(mutex_);

  /// Rank kObsRegistry sits below every other lock in the hierarchy,
  /// so instruments can be registered from any context, including under
  /// the service's epoch or network locks.
  mutable util::OrderedMutex mutex_{util::LockRank::kObsRegistry,
                                    "obs.registry"};
  std::map<std::string, Entry> entries_ MUSK_GUARDED_BY(mutex_);
};

/// The process-global default registry (what the MUSK_OBS_* macros and
/// the kStatsRequest endpoint use). Never destroyed.
Registry& registry();

}  // namespace musketeer::obs
