#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace musketeer::obs {

// --- Histogram ---------------------------------------------------------

/// One thread's bucket array. Counts are relaxed atomics so a snapshot
/// taken while the owning thread records stays a consistent
/// point-in-time approximation (and tsan-clean); the owning thread is
/// the only writer, so the fetch_adds never contend.
struct Histogram::Shard {
  std::array<std::atomic<std::uint64_t>, kTotalBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};

  void add(int bucket, double v) {
    buckets[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    // Single-writer accumulations: plain load + store is enough, the
    // atomics only make concurrent snapshot reads well-defined.
    sum.store(sum.load(std::memory_order_relaxed) + v,
              std::memory_order_relaxed);
    if (v < min.load(std::memory_order_relaxed)) {
      min.store(v, std::memory_order_relaxed);
    }
    if (v > max.load(std::memory_order_relaxed)) {
      max.store(v, std::memory_order_relaxed);
    }
  }
};

namespace {

/// Per-thread cache of histogram -> shard resolutions (type-erased:
/// Shard is private to Histogram). A plain vector (a handful of
/// histograms per process) scanned linearly; destroyed at thread exit
/// without touching any lock — the shards it points to are owned by
/// their Histograms and survive.
thread_local std::vector<std::pair<const void*, void*>> tl_shard_cache;

}  // namespace

Histogram::Histogram() = default;

Histogram::~Histogram() {
  // Drop this histogram's cache entries in the destroying thread only;
  // other threads' stale cache entries are tolerated because registry
  // histograms are never destroyed (see metrics.hpp). Local histograms
  // (tests, loadgen workers) must be recorded to and destroyed on
  // threads that outlive them, which all current users satisfy.
  std::erase_if(tl_shard_cache,
                [this](const auto& e) { return e.first == this; });
}

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // <= 0, NaN: underflow bucket
  // frexp leaves exp unspecified for infinities — route them to the
  // overflow bucket before it can produce a wild index.
  if (!std::isfinite(v)) return kTotalBuckets - 1;
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp
  const int octave = exp - 1 - kMinExp;         // 2^kMinExp -> octave 0
  if (octave < 0) return 0;
  if (octave >= kOctaves) return kTotalBuckets - 1;  // overflow bucket
  // mantissa in [0.5, 1): linear sub-bucket within the octave.
  int sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // fp guard
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::bucket_lower_bound(int i) {
  MUSK_ASSERT(i >= 0 && i < kTotalBuckets);
  if (i == 0) return 0.0;
  if (i == kTotalBuckets - 1) {
    return std::ldexp(1.0, kMinExp + kOctaves);
  }
  const int octave = (i - 1) / kSubBuckets;
  const int sub = (i - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    kMinExp + octave - 1) *
         2.0;
}

double Histogram::bucket_upper_bound(int i) {
  MUSK_ASSERT(i >= 0 && i < kTotalBuckets);
  if (i == kTotalBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucket_lower_bound(i + 1);
}

Histogram::Shard* Histogram::local_shard() {
  for (const auto& [hist, shard] : tl_shard_cache) {
    if (hist == this) return static_cast<Shard*>(shard);
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    shards_.push_back(std::move(owned));
  }
  tl_shard_cache.emplace_back(this, shard);
  return shard;
}

void Histogram::record(double v) { local_shard()->add(bucket_index(v), v); }

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kTotalBuckets, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) {
    for (int i = 0; i < kTotalBuckets; ++i) {
      snap.buckets[static_cast<std::size_t>(i)] +=
          shard->buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    min = std::min(min, shard->min.load(std::memory_order_relaxed));
    max = std::max(max, shard->max.load(std::memory_order_relaxed));
  }
  if (snap.count > 0) {
    snap.min = min;
    snap.max = max;
  }
  return snap;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.empty()) buckets.assign(Histogram::kTotalBuckets, 0);
  MUSK_ASSERT(other.buckets.empty() || other.buckets.size() == buckets.size());
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::quantile(double q) const {
  MUSK_ASSERT(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0.0;
  // Rank of the q-th sample (1-based, nearest-rank).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      const double lo = Histogram::bucket_lower_bound(static_cast<int>(i));
      double hi = Histogram::bucket_upper_bound(static_cast<int>(i));
      if (!std::isfinite(hi)) hi = max;  // overflow bucket: clamp to max
      // Linear interpolation by rank within the bucket.
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[i]);
      const double v = lo + (hi - lo) * frac;
      // The exact extremes are tracked; never report outside them.
      return std::min(std::max(v, min), max);
    }
    seen += buckets[i];
  }
  return max;
}

// --- Registry ----------------------------------------------------------

Registry::Entry& Registry::entry_locked(const std::string& name,
                                        const std::string& help) {
  mutex_.assert_held();
  Entry& entry = entries_[name];
  if (entry.help.empty()) entry.help = help;
  return entry;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  const util::OrderedLock lock(mutex_);
  Entry& entry = entry_locked(name, help);
  MUSK_ASSERT_MSG(!entry.gauge && !entry.histogram,
                  "metric registered as two different kinds");
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  const util::OrderedLock lock(mutex_);
  Entry& entry = entry_locked(name, help);
  MUSK_ASSERT_MSG(!entry.counter && !entry.histogram,
                  "metric registered as two different kinds");
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help) {
  const util::OrderedLock lock(mutex_);
  Entry& entry = entry_locked(name, help);
  MUSK_ASSERT_MSG(!entry.counter && !entry.gauge,
                  "metric registered as two different kinds");
  if (!entry.histogram) entry.histogram = std::make_unique<Histogram>();
  return *entry.histogram;
}

namespace {

/// %.17g round-trips every double (same convention as sim/metrics_io).
std::string num(double v) { return util::format("%.17g", v); }

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

/// Prometheus metric names: dots and dashes become underscores.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string Registry::to_json() const {
  const util::OrderedLock lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) {
      if (!counters.empty()) counters += ", ";
      append_json_string(counters, name);
      counters += ": " + std::to_string(entry.counter->value());
    } else if (entry.gauge) {
      if (!gauges.empty()) gauges += ", ";
      append_json_string(gauges, name);
      gauges += ": " + num(entry.gauge->value());
    } else if (entry.histogram) {
      const HistogramSnapshot snap = entry.histogram->snapshot();
      if (!histograms.empty()) histograms += ", ";
      append_json_string(histograms, name);
      histograms += util::format(
          ": {\"count\": %llu, \"sum\": %s, \"min\": %s, \"max\": %s, "
          "\"mean\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s}",
          static_cast<unsigned long long>(snap.count), num(snap.sum).c_str(),
          num(snap.min).c_str(), num(snap.max).c_str(),
          num(snap.mean()).c_str(), num(snap.quantile(0.5)).c_str(),
          num(snap.quantile(0.9)).c_str(), num(snap.quantile(0.99)).c_str());
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

std::string Registry::to_prometheus() const {
  const util::OrderedLock lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    const std::string pname = prom_name(name);
    if (!entry.help.empty()) {
      out += "# HELP " + pname + " " + entry.help + "\n";
    }
    if (entry.counter) {
      out += "# TYPE " + pname + " counter\n";
      out += pname + " " + std::to_string(entry.counter->value()) + "\n";
    } else if (entry.gauge) {
      out += "# TYPE " + pname + " gauge\n";
      out += pname + " " + num(entry.gauge->value()) + "\n";
    } else if (entry.histogram) {
      const HistogramSnapshot snap = entry.histogram->snapshot();
      out += "# TYPE " + pname + " histogram\n";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
        if (snap.buckets[i] == 0) continue;
        cumulative += snap.buckets[i];
        const double hi =
            Histogram::bucket_upper_bound(static_cast<int>(i));
        out += pname + "_bucket{le=\"" +
               (std::isfinite(hi) ? num(hi) : std::string("+Inf")) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
             "\n";
      out += pname + "_sum " + num(snap.sum) + "\n";
      out += pname + "_count " + std::to_string(snap.count) + "\n";
    }
  }
  return out;
}

Registry& registry() {
  // Leaked on purpose: instruments (and their cached references in hot
  // paths) must outlive every thread, including static destructors.
  static Registry* const instance = new Registry();
  return *instance;
}

}  // namespace musketeer::obs
