// Linear program model builder.
//
// A small, dependency-free LP layer used to cross-validate the network
// flow solvers (the welfare-maximizing circulation is an LP with an
// integral optimal vertex) and to express mechanism variants that are not
// pure circulations. Maximization canonical form:
//
//     max  c.x   s.t.  row_i: sum_j a_ij x_j  (<=|=|>=)  b_i,
//                      lo_j <= x_j <= up_j.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace musketeer::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLessEqual, kEqual, kGreaterEqual };

/// Sparse constraint row: pairs of (variable index, coefficient).
struct Row {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::kEqual;
  double rhs = 0.0;
};

/// Mutable LP model; build then hand to Simplex::solve.
class Model {
 public:
  /// Adds a variable with bounds [lo, up] and objective coefficient c;
  /// returns its index.
  int add_variable(double lo, double up, double objective,
                   std::string name = {});

  /// Adds a constraint row; returns its index.
  int add_constraint(Row row);

  int num_variables() const { return static_cast<int>(lo_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  const std::vector<double>& lower_bounds() const { return lo_; }
  const std::vector<double>& upper_bounds() const { return up_; }
  const std::vector<double>& objective() const { return c_; }
  const std::vector<Row>& rows() const { return rows_; }
  const std::string& name(int var) const { return names_[static_cast<std::size_t>(var)]; }

 private:
  std::vector<double> lo_, up_, c_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace musketeer::lp
