// LP encoding of the welfare-maximizing circulation problem.
//
// Referee for the combinatorial solvers in src/flow: the circulation
// polytope { 0 <= f <= c, conservation } has integral vertices for integer
// capacities, so the simplex optimum matches the cycle-cancelling optimum
// exactly (up to floating-point output conversion).
#pragma once

#include "flow/circulation.hpp"
#include "flow/graph.hpp"
#include "flow/solve_context.hpp"
#include "lp/simplex.hpp"

namespace musketeer::lp {

struct FlowLpResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Optimal welfare in coins.
  double welfare = 0.0;
  /// Flows rounded to the nearest integer (vertex solutions are integral).
  flow::Circulation flows;
  /// Maximum distance of any raw LP value from its rounding — a health
  /// check that the solution really was a vertex.
  double max_rounding_error = 0.0;
  /// Simplex iterations spent.
  int iterations = 0;
};

/// Builds the circulation LP for `g` (variables f_e in [0, c_e], zero net
/// flow per vertex, maximize sum gain_e * f_e) and solves it.
FlowLpResult solve_circulation_lp(const flow::Graph& g,
                                  const SimplexOptions& options = {});

/// Convenience: referees whatever graph `ctx` currently has bound (e.g.
/// cross-checking a context-threaded mechanism solve without rebuilding
/// the graph).
FlowLpResult solve_circulation_lp(const flow::SolveContext& ctx,
                                  const SimplexOptions& options = {});

}  // namespace musketeer::lp
