#include "lp/model.hpp"

#include "util/assert.hpp"

namespace musketeer::lp {

int Model::add_variable(double lo, double up, double objective,
                        std::string name) {
  MUSK_ASSERT_MSG(lo <= up, "variable bounds must be ordered");
  lo_.push_back(lo);
  up_.push_back(up);
  c_.push_back(objective);
  names_.push_back(std::move(name));
  return num_variables() - 1;
}

int Model::add_constraint(Row row) {
  for (const auto& [var, coeff] : row.terms) {
    MUSK_ASSERT(var >= 0 && var < num_variables());
    (void)coeff;
  }
  rows_.push_back(std::move(row));
  return num_constraints() - 1;
}

}  // namespace musketeer::lp
