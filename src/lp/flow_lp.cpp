#include "lp/flow_lp.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace musketeer::lp {

FlowLpResult solve_circulation_lp(const flow::Graph& g,
                                  const SimplexOptions& options) {
  Model model;
  for (flow::EdgeId e = 0; e < g.num_edges(); ++e) {
    const flow::Edge& edge = g.edge(e);
    model.add_variable(0.0, static_cast<double>(edge.capacity), edge.gain);
  }
  for (flow::NodeId v = 0; v < g.num_nodes(); ++v) {
    Row row;
    row.sense = Sense::kEqual;
    row.rhs = 0.0;
    for (flow::EdgeId e : g.out_edges(v)) row.terms.emplace_back(e, 1.0);
    for (flow::EdgeId e : g.in_edges(v)) row.terms.emplace_back(e, -1.0);
    if (!row.terms.empty()) model.add_constraint(std::move(row));
  }

  const Solution sol = solve(model, options);
  FlowLpResult result;
  result.status = sol.status;
  result.iterations = sol.iterations;
  if (sol.status != SolveStatus::kOptimal) return result;

  result.welfare = sol.objective;
  result.flows.resize(static_cast<std::size_t>(g.num_edges()));
  for (flow::EdgeId e = 0; e < g.num_edges(); ++e) {
    const double raw = sol.values[static_cast<std::size_t>(e)];
    const auto rounded = static_cast<flow::Amount>(std::llround(raw));
    result.max_rounding_error =
        std::max(result.max_rounding_error,
                 std::abs(raw - static_cast<double>(rounded)));
    result.flows[static_cast<std::size_t>(e)] = rounded;
  }
  return result;
}

FlowLpResult solve_circulation_lp(const flow::SolveContext& ctx,
                                  const SimplexOptions& options) {
  return solve_circulation_lp(ctx.graph(), options);
}

}  // namespace musketeer::lp
