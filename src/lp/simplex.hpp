// Dense two-phase bounded-variable primal simplex.
//
// Tableau-based with Bland's anti-cycling rule. Designed for the
// validation-scale LPs in this repository (hundreds of variables), not for
// production-scale optimization — the flow solvers in src/flow are the
// fast path; this solver is their independent referee.
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace musketeer::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  /// Value per model variable (slacks/artificials stripped).
  std::vector<double> values;
  int iterations = 0;
};

struct SimplexOptions {
  int max_iterations = 200000;
  /// Reduced-cost / feasibility tolerance.
  double eps = 1e-9;
};

/// Solves the model (maximization). All variables may have infinite
/// bounds; inequality rows get internal slacks; feasibility is established
/// with phase-1 artificials.
Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace musketeer::lp
