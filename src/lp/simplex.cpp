#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace musketeer::lp {

namespace {

enum class VarStatus : unsigned char { kBasic, kAtLower, kAtUpper, kFreeNonbasic };

// Exact-zero test for tableau sparsity skips. Entries are assigned the
// literal 0.0 during pivoting, so bitwise equality is the intended test
// here -- a tolerance would wrongly skip genuinely tiny pivot updates.
inline bool exactly_zero(double x) {
  return x == 0.0;  // musk-lint: allow(float-eq)
}

struct Tableau {
  int m = 0;  // constraints
  int n = 0;  // total variables (structural + slacks + artificials)
  std::vector<std::vector<double>> t;  // m x n, represents B^-1 A
  std::vector<double> lo, up, obj, x;
  std::vector<int> basis;              // var basic in each row
  std::vector<VarStatus> status;
  double eps = 1e-9;

  bool is_nonbasic_eligible(int j, double d, int& dir) const {
    switch (status[static_cast<std::size_t>(j)]) {
      case VarStatus::kBasic:
        return false;
      case VarStatus::kAtLower:
        if (d > eps) { dir = +1; return true; }
        return false;
      case VarStatus::kAtUpper:
        if (d < -eps) { dir = -1; return true; }
        return false;
      case VarStatus::kFreeNonbasic:
        if (d > eps) { dir = +1; return true; }
        if (d < -eps) { dir = -1; return true; }
        return false;
    }
    return false;
  }

  double reduced_cost(int j, const std::vector<double>& cbasis) const {
    double d = obj[static_cast<std::size_t>(j)];
    for (int i = 0; i < m; ++i) {
      const double tij = t[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (!exactly_zero(tij)) d -= cbasis[static_cast<std::size_t>(i)] * tij;
    }
    return d;
  }
};

constexpr double kInf = kInfinity;

// One simplex phase on the tableau with the objective currently stored in
// tableau.obj. Returns kOptimal/kUnbounded/kIterationLimit.
SolveStatus run_phase(Tableau& tb, const SimplexOptions& opt, int& iterations) {
  const int bland_threshold = 8 * (tb.m + tb.n) + 64;
  int phase_iters = 0;
  for (;;) {
    if (iterations >= opt.max_iterations) return SolveStatus::kIterationLimit;
    ++iterations;
    ++phase_iters;
    const bool bland = phase_iters > bland_threshold;

    std::vector<double> cbasis(static_cast<std::size_t>(tb.m));
    for (int i = 0; i < tb.m; ++i) {
      cbasis[static_cast<std::size_t>(i)] =
          tb.obj[static_cast<std::size_t>(tb.basis[static_cast<std::size_t>(i)])];
    }

    // Entering variable: Dantzig (largest |reduced cost|) normally, Bland
    // (first eligible) once the iteration count suggests cycling.
    int enter = -1, dir = 0;
    double best = 0.0;
    for (int j = 0; j < tb.n; ++j) {
      int cand_dir = 0;
      const double d = tb.reduced_cost(j, cbasis);
      if (!tb.is_nonbasic_eligible(j, d, cand_dir)) continue;
      if (bland) {
        enter = j;
        dir = cand_dir;
        break;
      }
      if (std::abs(d) > best) {
        best = std::abs(d);
        enter = j;
        dir = cand_dir;
      }
    }
    if (enter < 0) return SolveStatus::kOptimal;

    // Ratio test: how far can x_enter move in direction `dir`?
    const auto je = static_cast<std::size_t>(enter);
    double t_limit = kInf;
    // Distance to the entering variable's own opposite bound.
    if (tb.lo[je] > -kInf && tb.up[je] < kInf) t_limit = tb.up[je] - tb.lo[je];
    int leave_row = -1;
    double leave_bound = 0.0;
    for (int i = 0; i < tb.m; ++i) {
      const double w = tb.t[static_cast<std::size_t>(i)][je];
      const double delta = -static_cast<double>(dir) * w;  // d x_basic / d t
      if (std::abs(delta) <= tb.eps) continue;
      const int bv = tb.basis[static_cast<std::size_t>(i)];
      const auto bvi = static_cast<std::size_t>(bv);
      const double xb = tb.x[bvi];
      double ratio;
      double hit_bound;
      if (delta > 0) {
        if (tb.up[bvi] >= kInf) continue;
        ratio = (tb.up[bvi] - xb) / delta;
        hit_bound = tb.up[bvi];
      } else {
        if (tb.lo[bvi] <= -kInf) continue;
        ratio = (tb.lo[bvi] - xb) / delta;
        hit_bound = tb.lo[bvi];
      }
      ratio = std::max(ratio, 0.0);
      const bool better =
          ratio < t_limit - tb.eps ||
          (ratio < t_limit + tb.eps && leave_row >= 0 &&
           (bland ? bv < tb.basis[static_cast<std::size_t>(leave_row)]
                  : std::abs(w) >
                        std::abs(tb.t[static_cast<std::size_t>(leave_row)][je])));
      if (leave_row < 0 ? ratio < t_limit - tb.eps : better) {
        t_limit = ratio;
        leave_row = i;
        leave_bound = hit_bound;
      }
    }

    if (t_limit >= kInf) return SolveStatus::kUnbounded;

    // Apply the move to the primal point.
    if (t_limit > 0.0) {
      for (int i = 0; i < tb.m; ++i) {
        const double w = tb.t[static_cast<std::size_t>(i)][je];
        if (exactly_zero(w)) continue;
        const int bv = tb.basis[static_cast<std::size_t>(i)];
        tb.x[static_cast<std::size_t>(bv)] -=
            static_cast<double>(dir) * t_limit * w;
      }
      tb.x[je] += static_cast<double>(dir) * t_limit;
    }

    if (leave_row < 0) {
      // Bound flip: entering variable traversed to its opposite bound.
      tb.x[je] = (dir > 0) ? tb.up[je] : tb.lo[je];
      tb.status[je] = (dir > 0) ? VarStatus::kAtUpper : VarStatus::kAtLower;
      continue;
    }

    // Pivot: `enter` becomes basic in `leave_row`.
    const int leave_var = tb.basis[static_cast<std::size_t>(leave_row)];
    tb.x[static_cast<std::size_t>(leave_var)] = leave_bound;  // land exactly
    tb.status[static_cast<std::size_t>(leave_var)] =
        (leave_bound == tb.up[static_cast<std::size_t>(leave_var)])
            ? VarStatus::kAtUpper
            : VarStatus::kAtLower;
    tb.status[je] = VarStatus::kBasic;
    tb.basis[static_cast<std::size_t>(leave_row)] = enter;

    auto& prow = tb.t[static_cast<std::size_t>(leave_row)];
    const double pivot = prow[je];
    MUSK_ASSERT_MSG(std::abs(pivot) > 1e-12, "degenerate pivot element");
    const double inv = 1.0 / pivot;
    for (double& v : prow) v *= inv;
    prow[je] = 1.0;  // exact
    for (int i = 0; i < tb.m; ++i) {
      if (i == leave_row) continue;
      auto& row = tb.t[static_cast<std::size_t>(i)];
      const double factor = row[je];
      if (exactly_zero(factor)) continue;
      for (int j = 0; j < tb.n; ++j) {
        row[static_cast<std::size_t>(j)] -= factor * prow[static_cast<std::size_t>(j)];
      }
      row[je] = 0.0;  // exact
    }
  }
}

}  // namespace

Solution solve(const Model& model, const SimplexOptions& options) {
  const int n_struct = model.num_variables();
  const int m = model.num_constraints();

  Tableau tb;
  tb.m = m;
  tb.eps = options.eps;
  tb.lo = model.lower_bounds();
  tb.up = model.upper_bounds();
  tb.obj = model.objective();

  // Slack variables for inequality rows: row + s = rhs with s >= 0 for
  // <= rows and s <= 0 for >= rows.
  std::vector<int> slack_var(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const Row& row = model.rows()[static_cast<std::size_t>(i)];
    if (row.sense == Sense::kEqual) continue;
    tb.lo.push_back(row.sense == Sense::kLessEqual ? 0.0 : -kInf);
    tb.up.push_back(row.sense == Sense::kLessEqual ? kInf : 0.0);
    tb.obj.push_back(0.0);
    slack_var[static_cast<std::size_t>(i)] =
        static_cast<int>(tb.lo.size()) - 1;
  }
  const int n_with_slack = static_cast<int>(tb.lo.size());
  const int n_total = n_with_slack + m;  // one artificial per row
  tb.n = n_total;
  tb.lo.resize(static_cast<std::size_t>(n_total), 0.0);
  tb.up.resize(static_cast<std::size_t>(n_total), kInf);
  tb.obj.resize(static_cast<std::size_t>(n_total), 0.0);

  // Initial nonbasic point: every structural/slack variable at a finite
  // bound (preferring the lower), free variables at 0.
  tb.x.assign(static_cast<std::size_t>(n_total), 0.0);
  tb.status.assign(static_cast<std::size_t>(n_total), VarStatus::kAtLower);
  for (int j = 0; j < n_with_slack; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (tb.lo[js] > -kInf) {
      tb.x[js] = tb.lo[js];
      tb.status[js] = VarStatus::kAtLower;
    } else if (tb.up[js] < kInf) {
      tb.x[js] = tb.up[js];
      tb.status[js] = VarStatus::kAtUpper;
    } else {
      tb.x[js] = 0.0;
      tb.status[js] = VarStatus::kFreeNonbasic;
    }
  }

  // Dense constraint matrix with artificial columns absorbing the initial
  // residuals, giving an immediately feasible identity basis.
  tb.t.assign(static_cast<std::size_t>(m),
              std::vector<double>(static_cast<std::size_t>(n_total), 0.0));
  tb.basis.resize(static_cast<std::size_t>(m));
  std::vector<double> phase1_obj(static_cast<std::size_t>(n_total), 0.0);
  for (int i = 0; i < m; ++i) {
    const Row& row = model.rows()[static_cast<std::size_t>(i)];
    auto& trow = tb.t[static_cast<std::size_t>(i)];
    double residual = row.rhs;
    for (const auto& [var, coeff] : row.terms) {
      trow[static_cast<std::size_t>(var)] += coeff;
    }
    if (slack_var[static_cast<std::size_t>(i)] >= 0) {
      trow[static_cast<std::size_t>(slack_var[static_cast<std::size_t>(i)])] = 1.0;
    }
    for (int j = 0; j < n_with_slack; ++j) {
      residual -= trow[static_cast<std::size_t>(j)] * tb.x[static_cast<std::size_t>(j)];
    }
    const int art = n_with_slack + i;
    const double sign = residual >= 0.0 ? 1.0 : -1.0;
    trow[static_cast<std::size_t>(art)] = sign;
    // Normalize so the artificial column is a unit vector (basis = I).
    if (sign < 0.0) {
      for (double& v : trow) v = -v;
    }
    tb.x[static_cast<std::size_t>(art)] = std::abs(residual);
    tb.status[static_cast<std::size_t>(art)] = VarStatus::kBasic;
    tb.basis[static_cast<std::size_t>(i)] = art;
    phase1_obj[static_cast<std::size_t>(art)] = -1.0;  // maximize -sum(artificials)
  }

  Solution sol;
  sol.iterations = 0;

  // Phase 1: drive artificials to zero.
  const std::vector<double> real_obj = tb.obj;
  tb.obj = phase1_obj;
  SolveStatus st = run_phase(tb, options, sol.iterations);
  if (st == SolveStatus::kIterationLimit) {
    sol.status = st;
    return sol;
  }
  double infeasibility = 0.0;
  for (int i = 0; i < m; ++i) {
    infeasibility += tb.x[static_cast<std::size_t>(n_with_slack + i)];
  }
  if (infeasibility > 1e-7) {
    sol.status = SolveStatus::kInfeasible;
    return sol;
  }
  // Pin artificials at zero and restore the real objective.
  for (int i = 0; i < m; ++i) {
    const auto art = static_cast<std::size_t>(n_with_slack + i);
    tb.lo[art] = 0.0;
    tb.up[art] = 0.0;
    tb.x[art] = 0.0;
  }
  tb.obj = real_obj;

  st = run_phase(tb, options, sol.iterations);
  sol.status = st;
  if (st != SolveStatus::kOptimal) return sol;

  sol.values.assign(static_cast<std::size_t>(n_struct), 0.0);
  for (int j = 0; j < n_struct; ++j) {
    sol.values[static_cast<std::size_t>(j)] = tb.x[static_cast<std::size_t>(j)];
  }
  sol.objective = 0.0;
  for (int j = 0; j < n_struct; ++j) {
    sol.objective += model.objective()[static_cast<std::size_t>(j)] *
                     sol.values[static_cast<std::size_t>(j)];
  }
  return sol;
}

}  // namespace musketeer::lp
