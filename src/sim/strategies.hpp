// Named construction of every rebalancing strategy the experiments sweep.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.hpp"

namespace musketeer::sim {

/// All strategies compared in E1/E4 (the paper's positioning:
/// none < local < buyers-only global < all-user Musketeer).
enum class Strategy {
  kNone,
  kLocal,
  kHideSeek,
  kM1FixedFee,
  kM2Vcg,
  kM3DoubleAuction,
  kM4Delayed,
};

/// Stable display name (used in bench table rows).
std::string strategy_name(Strategy strategy);

/// Instantiates the mechanism with library-default parameters
/// (M1: p=0.001, k=3; M4: d=1). Returns nullptr for kNone.
std::unique_ptr<core::Mechanism> make_strategy(Strategy strategy);

/// Every strategy, in presentation order.
std::vector<Strategy> all_strategies();

}  // namespace musketeer::sim
