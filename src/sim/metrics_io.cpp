#include "sim/metrics_io.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/table.hpp"

namespace musketeer::sim {

namespace {

// %.17g round-trips every double, so two identical runs dump identical
// files — the property the service/in-process diff relies on.
std::string num(double v) { return util::format("%.17g", v); }

}  // namespace

void write_metrics_csv(const SimulationResult& result, std::ostream& out) {
  out << "epoch,payments_attempted,payments_succeeded,success_rate,"
         "volume_attempted,volume_succeeded,routing_fees,"
         "depleted_fraction,mean_imbalance,gini_imbalance,rebalance_cycles,"
         "rebalanced_volume,rebalance_fees\n";
  for (const EpochMetrics& m : result.epochs) {
    out << m.epoch << ',' << m.payments_attempted << ','
        << m.payments_succeeded << ',' << num(m.success_rate()) << ','
        << m.volume_attempted << ',' << m.volume_succeeded << ','
        << num(m.routing_fees) << ',' << num(m.depleted_fraction) << ','
        << num(m.mean_imbalance) << ',' << num(m.gini_imbalance) << ','
        << m.rebalance_cycles << ','
        << m.rebalanced_volume << ',' << num(m.rebalance_fees) << '\n';
  }
}

void write_metrics_json(const SimulationResult& result, std::ostream& out) {
  out << "{\n  \"epochs\": [\n";
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const EpochMetrics& m = result.epochs[i];
    out << "    {\"epoch\": " << m.epoch
        << ", \"payments_attempted\": " << m.payments_attempted
        << ", \"payments_succeeded\": " << m.payments_succeeded
        << ", \"success_rate\": " << num(m.success_rate())
        << ", \"volume_attempted\": " << m.volume_attempted
        << ", \"volume_succeeded\": " << m.volume_succeeded
        << ", \"routing_fees\": " << num(m.routing_fees)
        << ", \"depleted_fraction\": " << num(m.depleted_fraction)
        << ", \"mean_imbalance\": " << num(m.mean_imbalance)
        << ", \"gini_imbalance\": " << num(m.gini_imbalance)
        << ", \"rebalance_cycles\": " << m.rebalance_cycles
        << ", \"rebalanced_volume\": " << m.rebalanced_volume
        << ", \"rebalance_fees\": " << num(m.rebalance_fees) << "}"
        << (i + 1 < result.epochs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"overall\": {\"success_rate\": "
      << num(result.overall_success_rate())
      << ", \"volume_succeeded\": " << result.total_volume_succeeded()
      << ", \"rebalanced_volume\": " << result.total_rebalanced_volume()
      << "}\n}\n";
}

void save_metrics(const SimulationResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write metrics file: " + path);
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    write_metrics_json(result, out);
  } else {
    write_metrics_csv(result, out);
  }
  out.flush();
  if (!out) throw std::runtime_error("metrics write failed: " + path);
}

}  // namespace musketeer::sim
