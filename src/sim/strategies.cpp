#include "sim/strategies.hpp"

#include "core/baselines.hpp"
#include "core/m1_fixed_fee.hpp"
#include "core/m2_vcg.hpp"
#include "core/m3_double_auction.hpp"
#include "core/m4_delayed.hpp"
#include "util/assert.hpp"

namespace musketeer::sim {

std::string strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNone: return "none";
    case Strategy::kLocal: return "local";
    case Strategy::kHideSeek: return "hide&seek";
    case Strategy::kM1FixedFee: return "M1-fixed-fee";
    case Strategy::kM2Vcg: return "M2-vcg";
    case Strategy::kM3DoubleAuction: return "M3-double-auction";
    case Strategy::kM4Delayed: return "M4-delayed";
  }
  MUSK_ASSERT(false);
  return {};
}

std::unique_ptr<core::Mechanism> make_strategy(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNone:
      return nullptr;
    case Strategy::kLocal:
      return std::make_unique<core::LocalRebalancing>();
    case Strategy::kHideSeek:
      return std::make_unique<core::HideSeek>();
    case Strategy::kM1FixedFee:
      return std::make_unique<core::M1FixedFee>(0.001, 3.0);
    case Strategy::kM2Vcg:
      return std::make_unique<core::M2Vcg>();
    case Strategy::kM3DoubleAuction:
      return std::make_unique<core::M3DoubleAuction>();
    case Strategy::kM4Delayed:
      return std::make_unique<core::M4DelayedAuction>(1.0);
  }
  MUSK_ASSERT(false);
  return nullptr;
}

std::vector<Strategy> all_strategies() {
  return {Strategy::kNone,       Strategy::kLocal,
          Strategy::kHideSeek,   Strategy::kM1FixedFee,
          Strategy::kM2Vcg,      Strategy::kM3DoubleAuction,
          Strategy::kM4Delayed};
}

}  // namespace musketeer::sim
