#include "sim/engine.hpp"

#include "pcn/payment.hpp"
#include "util/stats.hpp"

namespace musketeer::sim {

double SimulationResult::overall_success_rate() const {
  long long attempted = 0, succeeded = 0;
  for (const EpochMetrics& m : epochs) {
    attempted += m.payments_attempted;
    succeeded += m.payments_succeeded;
  }
  return attempted == 0 ? 1.0
                        : static_cast<double>(succeeded) /
                              static_cast<double>(attempted);
}

flow::Amount SimulationResult::total_volume_succeeded() const {
  flow::Amount total = 0;
  for (const EpochMetrics& m : epochs) total += m.volume_succeeded;
  return total;
}

flow::Amount SimulationResult::total_rebalanced_volume() const {
  flow::Amount total = 0;
  for (const EpochMetrics& m : epochs) total += m.rebalanced_volume;
  return total;
}

pcn::Network build_network(const SimulationConfig& config, util::Rng& rng) {
  const gen::Topology topology =
      gen::barabasi_albert(config.num_nodes, config.ba_attachment, rng);
  pcn::Network network(config.num_nodes);
  for (const auto& [a, b] : topology) {
    const flow::Amount total =
        2 * rng.uniform_int(config.balance_min, config.balance_max);
    flow::Amount side_a;
    if (config.initial_skew > 0.0) {
      const double poor_share = rng.bernoulli(config.skew_fraction)
                                    ? 0.5 - config.initial_skew
                                    : 0.5;
      side_a = static_cast<flow::Amount>(
          static_cast<double>(total) *
          (rng.bernoulli(0.5) ? poor_share : 1.0 - poor_share));
    } else {
      // A random split: most channels start somewhat skewed.
      side_a = rng.uniform_int(0, total);
    }
    network.add_channel(a, b, side_a, total - side_a, config.forwarding_fee,
                        config.forwarding_fee);
  }
  return network;
}

RecoveryResult run_recovery(const SimulationConfig& config,
                            const core::Mechanism* mechanism) {
  util::Rng rng(config.seed);
  pcn::Network network = build_network(config, rng);
  util::Rng workload_rng = rng.fork();

  RecoveryResult result;
  result.depleted_before =
      network.depleted_direction_fraction(config.policy.depleted_threshold);

  if (mechanism != nullptr) {
    const pcn::ExtractedGame extracted =
        pcn::extract_and_lock(network, config.policy);
    if (extracted.game.num_edges() > 0) {
      const core::Outcome outcome = mechanism->run_truthful(extracted.game);
      const pcn::RebalanceStats stats =
          pcn::apply_outcome(network, extracted, outcome);
      result.rebalanced_volume = stats.volume;
      result.rebalance_fees = stats.fees_paid;
    }
  }
  result.depleted_after =
      network.depleted_direction_fraction(config.policy.depleted_threshold);
  result.mean_imbalance_after = util::mean(network.imbalances());

  const auto payments = gen::generate_payments(
      config.num_nodes, config.payments_per_epoch, config.workload,
      workload_rng);
  int succeeded = 0;
  for (const gen::Payment& p : payments) {
    succeeded +=
        pcn::send_payment(network, p.sender, p.receiver, p.amount,
                          /*max_attempts=*/3, config.max_hops)
            .success;
  }
  result.success_rate = payments.empty()
                            ? 1.0
                            : static_cast<double>(succeeded) /
                                  static_cast<double>(payments.size());
  return result;
}

pcn::RebalanceStats MechanismBackend::rebalance(
    pcn::Network& network, const pcn::RebalancePolicy& policy) {
  MUSK_OBS_SPAN(span, "sim.rebalance");
  pcn::ExtractedGame extracted = pcn::extract_and_lock(network, policy);
  if (extracted.game.num_edges() == 0) return {};
  const core::Outcome outcome = mechanism_->run_truthful(ctx_, extracted.game);
  return pcn::apply_outcome(network, extracted, outcome);
}

SimulationResult run_simulation(const SimulationConfig& config,
                                const core::Mechanism* mechanism) {
  if (mechanism == nullptr) {
    return run_simulation(config, static_cast<RebalanceBackend*>(nullptr),
                          nullptr);
  }
  MechanismBackend backend(*mechanism);
  return run_simulation(config, &backend, nullptr);
}

SimulationResult run_simulation(const SimulationConfig& config,
                                RebalanceBackend* backend,
                                pcn::Network* final_network) {
  util::Rng rng(config.seed);
  pcn::Network network = build_network(config, rng);
  // Workload RNG is forked before use so the payment stream is identical
  // regardless of how the mechanism consumes randomness (it doesn't, but
  // this keeps the comparison airtight if one ever does).
  util::Rng workload_rng = rng.fork();

  SimulationResult result;
  util::Rng churn_rng = rng.fork();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    EpochMetrics metrics;
    metrics.epoch = epoch;

    if (config.channel_downtime > 0.0) {
      for (pcn::ChannelId c = 0; c < network.num_channels(); ++c) {
        network.channel(c).disabled =
            churn_rng.bernoulli(config.channel_downtime);
      }
    }

    const auto payments = gen::generate_payments(
        config.num_nodes, config.payments_per_epoch, config.workload,
        workload_rng);
    for (const gen::Payment& p : payments) {
      ++metrics.payments_attempted;
      metrics.volume_attempted += p.amount;
      bool success;
      flow::Amount fees;
      if (config.max_payment_parts > 1) {
        const pcn::MppResult res = pcn::send_payment_mpp(
            network, p.sender, p.receiver, p.amount,
            config.max_payment_parts, config.max_hops);
        success = res.success;
        fees = res.fees;
      } else {
        const pcn::PaymentResult res =
            pcn::send_payment(network, p.sender, p.receiver, p.amount,
                              /*max_attempts=*/3, config.max_hops);
        success = res.success;
        fees = res.fees;
      }
      if (success) {
        ++metrics.payments_succeeded;
        metrics.volume_succeeded += p.amount;
        metrics.routing_fees += static_cast<double>(fees);
      }
    }

    metrics.depleted_fraction =
        network.depleted_direction_fraction(config.policy.depleted_threshold);
    const auto imbalances = network.imbalances();
    metrics.mean_imbalance = util::mean(imbalances);
    metrics.gini_imbalance = util::gini(imbalances);

    if (backend != nullptr && (epoch + 1) % config.rebalance_every == 0) {
      const pcn::RebalanceStats stats =
          backend->rebalance(network, config.policy);
      metrics.rebalance_cycles = stats.cycles_executed;
      metrics.rebalanced_volume = stats.volume;
      metrics.rebalance_fees = stats.fees_paid;
    }
    result.epochs.push_back(metrics);
  }
  if (final_network != nullptr) *final_network = std::move(network);
  return result;
}

}  // namespace musketeer::sim
