// Machine-readable dumps of per-epoch simulation metrics.
//
// The sim driver historically printed a human table only; these writers
// emit the full EpochMetrics series as CSV or JSON so a service-backed
// run and an in-process run of the same scenario can be diffed
// byte-for-byte (`musketeer sim ... --metrics-out a.json`).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/engine.hpp"

namespace musketeer::sim {

/// One row per epoch; a fixed header row first. Doubles are printed with
/// enough digits to round-trip, so equal runs produce equal files.
void write_metrics_csv(const SimulationResult& result, std::ostream& out);

/// {"epochs": [...], "overall": {...}} with one object per epoch.
void write_metrics_json(const SimulationResult& result, std::ostream& out);

/// Writes by extension: ".json" selects JSON, anything else CSV.
/// Throws std::runtime_error on I/O failure.
void save_metrics(const SimulationResult& result, const std::string& path);

}  // namespace musketeer::sim
