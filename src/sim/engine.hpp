// Epoch-driven PCN simulation: payments deplete channels, a rebalancing
// mechanism periodically restores them, metrics track the difference.
//
// This is the synthetic stand-in for the deployment evaluation the paper
// does not include (see DESIGN.md): every strategy in
// {none, local, hide&seek, M1..M4} plugs into the same loop, so E4's
// throughput comparison isolates exactly the rebalancing policy.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mechanism.hpp"
#include "gen/topology.hpp"
#include "gen/workload.hpp"
#include "pcn/network.hpp"
#include "pcn/rebalancer.hpp"
#include "util/rng.hpp"

namespace musketeer::sim {

struct EpochMetrics {
  int epoch = 0;
  int payments_attempted = 0;
  int payments_succeeded = 0;
  flow::Amount volume_attempted = 0;
  flow::Amount volume_succeeded = 0;
  double routing_fees = 0.0;  // coins paid to forwarders by senders
  /// Depleted channel-direction fraction *before* rebalancing.
  double depleted_fraction = 0.0;
  /// Mean channel imbalance in [0, 1] before rebalancing.
  double mean_imbalance = 0.0;
  /// Gini coefficient of the per-channel imbalances before rebalancing
  /// (Pickhardt-style inequality measure: 0 = every channel equally
  /// (im)balanced, ->1 = imbalance concentrated on a few channels).
  double gini_imbalance = 0.0;
  /// Rebalancing activity in this epoch.
  int rebalance_cycles = 0;
  flow::Amount rebalanced_volume = 0;
  double rebalance_fees = 0.0;

  double success_rate() const {
    return payments_attempted == 0
               ? 1.0
               : static_cast<double>(payments_succeeded) /
                     static_cast<double>(payments_attempted);
  }
};

struct SimulationConfig {
  flow::NodeId num_nodes = 50;
  int ba_attachment = 2;
  /// Initial per-side channel balance range (uniform).
  flow::Amount balance_min = 50;
  flow::Amount balance_max = 200;
  /// Initial imbalance: 0 = uniformly random split; s in (0, 0.5] makes
  /// a channel start at a (0.5-s)/(0.5+s) split with a random rich side
  /// (0.4 => 10/90 splits: a network in need of rebalancing).
  double initial_skew = 0.0;
  /// Fraction of channels the skew applies to; the rest start balanced.
  /// Heterogeneity is what the all-user mechanisms exploit: balanced
  /// channels are the recruitable sellers.
  double skew_fraction = 1.0;
  /// Forwarding fee rate every node charges.
  double forwarding_fee = 0.001;
  /// Routing hop bound for payments (shorter = fewer detours around
  /// depleted channels, so throughput is more sensitive to imbalance).
  int max_hops = 8;
  int epochs = 10;
  int payments_per_epoch = 200;
  gen::WorkloadConfig workload;
  pcn::RebalancePolicy policy;
  /// Rebalance every k-th epoch (1 = every epoch).
  int rebalance_every = 1;
  /// Per-epoch probability that a channel is offline (node churn or
  /// jamming); offline channels neither route nor rebalance that epoch.
  double channel_downtime = 0.0;
  /// When > 1, payments may split into up to this many parts (MPP).
  int max_payment_parts = 1;
  std::uint64_t seed = 1;
};

struct SimulationResult {
  std::vector<EpochMetrics> epochs;

  double overall_success_rate() const;
  flow::Amount total_volume_succeeded() const;
  flow::Amount total_rebalanced_volume() const;
};

/// How the engine performs a rebalancing round. The default
/// (MechanismBackend) extracts the game and runs the mechanism
/// in-process; src/svc/ provides a ServiceBackend that routes the same
/// round through the epoch-batched rebalancing service, so E4-style
/// throughput runs can exercise the serving code path with an
/// otherwise identical payment stream.
class RebalanceBackend {
 public:
  virtual ~RebalanceBackend() = default;

  /// Performs one rebalancing round on the live network state and
  /// reports what was executed.
  virtual pcn::RebalanceStats rebalance(pcn::Network& network,
                                        const pcn::RebalancePolicy& policy) = 0;
};

/// The historic in-process round: extract_and_lock + Mechanism::run +
/// apply_outcome, all on the caller's thread. The backend owns a
/// SolveContext that persists across epochs: when the extracted game's
/// topology is stable (steady state), every round after the first
/// rebinds gains/capacities in place instead of rebuilding the flow
/// graph. Use from one thread at a time, like the rest of the engine.
class MechanismBackend final : public RebalanceBackend {
 public:
  /// `executor` (borrowed, optional) turns on the component-sharded
  /// solve path — attach a svc::ParallelExecutor to fan the per-epoch
  /// solve out across components. Results are bit-identical with or
  /// without it (DESIGN.md §13).
  explicit MechanismBackend(const core::Mechanism& mechanism,
                            flow::Executor* executor = nullptr)
      : mechanism_(&mechanism) {
    ctx_.set_executor(executor);
  }

  pcn::RebalanceStats rebalance(pcn::Network& network,
                                const pcn::RebalancePolicy& policy) override;

 private:
  const core::Mechanism* mechanism_;
  flow::SolveContext ctx_;
};

/// Runs the simulation with the given rebalancing mechanism (nullptr =
/// never rebalance). The same seed produces the same payment stream for
/// every mechanism, so results are directly comparable.
SimulationResult run_simulation(const SimulationConfig& config,
                                const core::Mechanism* mechanism);

/// Backend-parameterized variant (nullptr backend = never rebalance).
/// When `final_network` is non-null it receives the post-simulation
/// network state — the handle the service-equivalence tests compare
/// channel by channel.
SimulationResult run_simulation(const SimulationConfig& config,
                                RebalanceBackend* backend,
                                pcn::Network* final_network);

/// Builds the initial network (BA topology, random balance split) from
/// the config — exposed for tests and examples.
pcn::Network build_network(const SimulationConfig& config, util::Rng& rng);

/// The recovery experiment (the Revive-style evaluation): a freshly
/// skewed network is rebalanced ONCE by the mechanism, then an identical
/// payment batch is replayed; the controlled comparison isolates how much
/// depletion the mechanism undid.
struct RecoveryResult {
  double success_rate = 0.0;
  double depleted_before = 0.0;
  double depleted_after = 0.0;
  double mean_imbalance_after = 0.0;
  flow::Amount rebalanced_volume = 0;
  double rebalance_fees = 0.0;
};
RecoveryResult run_recovery(const SimulationConfig& config,
                            const core::Mechanism* mechanism);

}  // namespace musketeer::sim
