#include "gen/topology.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace musketeer::gen {

namespace {

ChannelEndpoints ordered(NodeId a, NodeId b) {
  return a < b ? ChannelEndpoints{a, b} : ChannelEndpoints{b, a};
}

}  // namespace

Topology erdos_renyi(NodeId n, double p, util::Rng& rng) {
  MUSK_ASSERT(n >= 0);
  MUSK_ASSERT(p >= 0.0 && p <= 1.0);
  Topology channels;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) channels.emplace_back(u, v);
    }
  }
  return channels;
}

Topology barabasi_albert(NodeId n, int attach, util::Rng& rng) {
  MUSK_ASSERT(attach >= 1);
  MUSK_ASSERT(n > attach);
  Topology channels;
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // channel contributes both endpoints to the urn.
  std::vector<NodeId> urn;
  // Seed clique over the first attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      channels.emplace_back(u, v);
      urn.push_back(u);
      urn.push_back(v);
    }
  }
  for (NodeId newcomer = attach + 1; newcomer < n; ++newcomer) {
    std::vector<NodeId> targets;
    while (static_cast<int>(targets.size()) < attach) {
      const NodeId pick = urn[rng.uniform(urn.size())];
      if (pick == newcomer ||
          std::find(targets.begin(), targets.end(), pick) != targets.end()) {
        continue;
      }
      targets.push_back(pick);
    }
    for (NodeId t : targets) {
      channels.push_back(ordered(newcomer, t));
      urn.push_back(newcomer);
      urn.push_back(t);
    }
  }
  return channels;
}

Topology watts_strogatz(NodeId n, int k, double beta, util::Rng& rng) {
  MUSK_ASSERT(k >= 1 && 2 * k < n);
  MUSK_ASSERT(beta >= 0.0 && beta <= 1.0);
  Topology channels;
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform non-neighbour (best effort: retry a few
        // times, keep the lattice edge if unlucky).
        for (int attempt = 0; attempt < 8; ++attempt) {
          const NodeId cand =
              static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
          if (cand != u && cand != v) {
            v = cand;
            break;
          }
        }
      }
      channels.push_back(ordered(u, v));
    }
  }
  return dedupe(std::move(channels));
}

Topology ring(NodeId n) {
  MUSK_ASSERT(n >= 3);
  Topology channels;
  for (NodeId u = 0; u < n; ++u) {
    channels.push_back(ordered(u, static_cast<NodeId>((u + 1) % n)));
  }
  return channels;
}

Topology grid(NodeId rows, NodeId cols) {
  MUSK_ASSERT(rows >= 1 && cols >= 1);
  Topology channels;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) channels.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) channels.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return channels;
}

Topology hub_and_spoke(NodeId n, NodeId hubs, double dual_home,
                       util::Rng& rng) {
  MUSK_ASSERT(hubs >= 1 && hubs < n);
  Topology channels;
  for (NodeId u = 0; u < hubs; ++u) {
    for (NodeId v = u + 1; v < hubs; ++v) channels.emplace_back(u, v);
  }
  for (NodeId leaf = hubs; leaf < n; ++leaf) {
    const NodeId home =
        static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(hubs)));
    channels.push_back(ordered(home, leaf));
    if (hubs > 1 && rng.bernoulli(dual_home)) {
      NodeId second = home;
      while (second == home) {
        second =
            static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(hubs)));
      }
      channels.push_back(ordered(second, leaf));
    }
  }
  return channels;
}

Topology powerlaw_configuration(NodeId n, double exponent, int min_degree,
                                int max_degree, util::Rng& rng) {
  MUSK_ASSERT(n >= 2);
  MUSK_ASSERT(exponent > 1.0);
  MUSK_ASSERT(min_degree >= 1 && min_degree <= max_degree);
  MUSK_ASSERT(max_degree < n);

  // Sample degrees by inverse-CDF of a truncated Pareto: for u ~ U(0,1),
  // d = min_degree * (1 - u)^(-1/(exponent-1)), clipped.
  std::vector<int> degree(static_cast<std::size_t>(n));
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    const double u = rng.uniform01();
    const double raw =
        static_cast<double>(min_degree) *
        std::pow(1.0 - u, -1.0 / (exponent - 1.0));
    const int d = static_cast<int>(
        std::min<double>(raw, static_cast<double>(max_degree)));
    degree[static_cast<std::size_t>(v)] = d;
    for (int i = 0; i < d; ++i) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.push_back(0);  // even the stub count

  // Uniform stub matching (Fisher–Yates, pair consecutive).
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.uniform(i)]);
  }
  Topology channels;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) continue;  // drop self-loops
    channels.push_back(ordered(stubs[i], stubs[i + 1]));
  }
  return dedupe(std::move(channels));
}

Topology dedupe(Topology topology) {
  for (auto& [a, b] : topology) {
    if (a > b) std::swap(a, b);
  }
  std::sort(topology.begin(), topology.end());
  topology.erase(std::unique(topology.begin(), topology.end()),
                 topology.end());
  topology.erase(std::remove_if(topology.begin(), topology.end(),
                                [](const ChannelEndpoints& c) {
                                  return c.first == c.second;
                                }),
                 topology.end());
  return topology;
}

}  // namespace musketeer::gen
