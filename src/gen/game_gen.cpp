#include "gen/game_gen.hpp"

#include "util/assert.hpp"

namespace musketeer::gen {

core::Game random_game(NodeId num_players, const Topology& topology,
                       const GameConfig& config, util::Rng& rng) {
  MUSK_ASSERT(config.depleted_share >= 0.0 && config.depleted_share <= 1.0);
  MUSK_ASSERT(config.buyer_min <= config.buyer_max &&
              config.buyer_max < core::kMaxFeeRate);
  MUSK_ASSERT(config.seller_min <= config.seller_max &&
              config.seller_max < core::kMaxFeeRate);
  MUSK_ASSERT(config.capacity_min >= 1 &&
              config.capacity_min <= config.capacity_max);

  core::Game game(num_players);
  for (const auto& [a, b] : topology) {
    MUSK_ASSERT(a >= 0 && a < num_players && b >= 0 && b < num_players);
    for (int dir = 0; dir < 2; ++dir) {
      if (!rng.bernoulli(config.participation)) continue;
      const NodeId from = dir == 0 ? a : b;
      const NodeId to = dir == 0 ? b : a;
      const flow::Amount capacity =
          rng.uniform_int(config.capacity_min, config.capacity_max);
      if (rng.bernoulli(config.depleted_share)) {
        const double value =
            rng.uniform_real(config.buyer_min, config.buyer_max);
        game.add_edge(from, to, capacity, 0.0, value);
      } else {
        const double cost =
            rng.bernoulli(config.free_rider_share)
                ? 0.0
                : rng.uniform_real(config.seller_min, config.seller_max);
        game.add_edge(from, to, capacity, -cost, 0.0);
      }
    }
  }
  return game;
}

core::Game random_ba_game(NodeId num_players, int attach,
                          const GameConfig& config, util::Rng& rng) {
  const Topology topology = barabasi_albert(num_players, attach, rng);
  return random_game(num_players, topology, config, rng);
}

}  // namespace musketeer::gen
