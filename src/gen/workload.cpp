#include "gen/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace musketeer::gen {

ZipfSampler::ZipfSampler(flow::NodeId n, double exponent) {
  MUSK_ASSERT(n >= 1);
  MUSK_ASSERT(exponent >= 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (flow::NodeId r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_[static_cast<std::size_t>(r)] = total;
  }
  for (double& c : cdf_) c /= total;
}

flow::NodeId ZipfSampler::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<flow::NodeId>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

std::vector<Payment> generate_payments(flow::NodeId num_nodes, int count,
                                       const WorkloadConfig& config,
                                       util::Rng& rng) {
  MUSK_ASSERT(num_nodes >= 2);
  MUSK_ASSERT(count >= 0);
  MUSK_ASSERT(config.amount_min >= 1 &&
              config.amount_min <= config.amount_max);

  // Random rank->node permutations decouple popularity from node id.
  std::vector<flow::NodeId> sender_perm(static_cast<std::size_t>(num_nodes));
  std::iota(sender_perm.begin(), sender_perm.end(), 0);
  std::vector<flow::NodeId> receiver_perm = sender_perm;
  for (std::size_t i = sender_perm.size(); i > 1; --i) {
    std::swap(sender_perm[i - 1], sender_perm[rng.uniform(i)]);
    std::swap(receiver_perm[i - 1], receiver_perm[rng.uniform(i)]);
  }
  if (config.balanced_popularity) receiver_perm = sender_perm;

  const ZipfSampler sampler(num_nodes, config.zipf_exponent);
  const double log_min = std::log(static_cast<double>(config.amount_min));
  const double log_max = std::log(static_cast<double>(config.amount_max) + 1.0);

  // Cyclic trade groups: group of node v = sender_perm-rank mod k.
  const int groups = config.cyclic_groups;
  std::vector<int> group_of(static_cast<std::size_t>(num_nodes), 0);
  std::vector<std::vector<flow::NodeId>> members(
      static_cast<std::size_t>(std::max(groups, 1)));
  if (groups > 1) {
    for (flow::NodeId rank = 0; rank < num_nodes; ++rank) {
      const flow::NodeId node = sender_perm[static_cast<std::size_t>(rank)];
      group_of[static_cast<std::size_t>(node)] = rank % groups;
      members[static_cast<std::size_t>(rank % groups)].push_back(node);
    }
  }

  std::vector<Payment> payments;
  payments.reserve(static_cast<std::size_t>(count));
  while (static_cast<int>(payments.size()) < count) {
    const flow::NodeId sender =
        sender_perm[static_cast<std::size_t>(sampler.sample(rng))];
    flow::NodeId receiver;
    if (groups > 1) {
      const auto& pool = members[static_cast<std::size_t>(
          (group_of[static_cast<std::size_t>(sender)] + 1) % groups)];
      if (pool.empty()) continue;
      receiver = pool[rng.uniform(pool.size())];
    } else {
      receiver = receiver_perm[static_cast<std::size_t>(sampler.sample(rng))];
    }
    if (sender == receiver) continue;
    const double log_amount = rng.uniform_real(log_min, log_max);
    const auto amount = static_cast<flow::Amount>(std::exp(log_amount));
    payments.push_back(Payment{
        sender, receiver,
        std::clamp(amount, config.amount_min, config.amount_max)});
  }
  return payments;
}

}  // namespace musketeer::gen
