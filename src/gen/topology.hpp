// Synthetic PCN topology generators.
//
// Lightning-like networks are scale-free with a small dense core
// (Barabási–Albert); the other families stress different regimes:
// Erdős–Rényi (homogeneous sparse), Watts–Strogatz (high clustering, the
// regime where short rebalancing cycles abound), rings/grids (worst-case
// sparse cycles), and hub-and-spoke (routing through a few big routers).
// All generators return undirected channel endpoint pairs; the game
// generator decides directions, capacities and stakes.
#pragma once

#include <utility>
#include <vector>

#include "flow/graph.hpp"
#include "util/rng.hpp"

namespace musketeer::gen {

using flow::NodeId;

/// An undirected channel between two distinct users.
using ChannelEndpoints = std::pair<NodeId, NodeId>;
using Topology = std::vector<ChannelEndpoints>;

/// G(n, p): each unordered pair is a channel with probability p.
Topology erdos_renyi(NodeId n, double p, util::Rng& rng);

/// Preferential attachment: nodes arrive one by one, each attaching
/// `attach` channels to existing nodes with probability proportional to
/// degree. Produces the heavy-tailed degree profile of Lightning.
Topology barabasi_albert(NodeId n, int attach, util::Rng& rng);

/// Ring lattice with `k` nearest neighbours per side, each edge rewired
/// with probability `beta`.
Topology watts_strogatz(NodeId n, int k, double beta, util::Rng& rng);

/// Simple cycle over n nodes.
Topology ring(NodeId n);

/// rows x cols grid, channels between lattice neighbours.
Topology grid(NodeId rows, NodeId cols);

/// `hubs` fully-interconnected routers; every other node connects to one
/// hub chosen uniformly (plus a second with probability `dual_home`).
Topology hub_and_spoke(NodeId n, NodeId hubs, double dual_home,
                       util::Rng& rng);

/// Configuration model with a truncated power-law degree sequence:
/// degree of each node ~ Pareto(exponent) clipped to [min_degree,
/// max_degree], stubs matched uniformly, self-loops and multi-edges
/// dropped. More faithful to measured Lightning degree distributions
/// than preferential attachment (which fixes the exponent at 3).
Topology powerlaw_configuration(NodeId n, double exponent, int min_degree,
                                int max_degree, util::Rng& rng);

/// Deduplicates parallel channels and drops self-loops (generator
/// postprocessing; idempotent).
Topology dedupe(Topology topology);

}  // namespace musketeer::gen
