// Payment workload generation for the PCN simulator.
//
// Lightning traffic measurements show skewed popularity (a few merchants
// receive a large share of payments) and heavy-tailed amounts. The
// generator supports Zipf-distributed endpoint popularity with an
// exponent knob (0 = uniform) and log-uniform amounts.
#pragma once

#include <vector>

#include "flow/graph.hpp"
#include "util/rng.hpp"

namespace musketeer::gen {

struct Payment {
  flow::NodeId sender = 0;
  flow::NodeId receiver = 0;
  flow::Amount amount = 0;
};

struct WorkloadConfig {
  /// Zipf exponent for endpoint popularity; 0 means uniform.
  double zipf_exponent = 0.8;
  /// Amounts are drawn log-uniformly from [amount_min, amount_max].
  flow::Amount amount_min = 1;
  flow::Amount amount_max = 50;
  /// When true, the same popularity ranking is used for senders and
  /// receivers, so every node sends and receives at the same expected
  /// rate: channel imbalance is transient (a random walk) rather than a
  /// persistent wealth drain toward merchants. Rebalancing can fix the
  /// former but — by balance conservation — never the latter.
  bool balanced_popularity = false;
  /// When > 1, nodes are partitioned into this many trade groups and
  /// every payment goes from group g to group (g+1) mod k: a persistent
  /// *cyclic* trade imbalance. Net wealth per node is conserved long-run
  /// (everyone pays out what they take in), but channels deplete
  /// persistently along the trade direction — exactly the regime
  /// circulation-based rebalancing is designed to fix. Overrides
  /// balanced_popularity's receiver choice.
  int cyclic_groups = 0;
};

/// Samples from a Zipf distribution over {0..n-1} (rank r has weight
/// (r+1)^-s). Precomputes the CDF once.
class ZipfSampler {
 public:
  ZipfSampler(flow::NodeId n, double exponent);

  flow::NodeId sample(util::Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Generates `count` payments between distinct endpoints. Receiver
/// popularity is Zipf over a fixed random permutation of nodes so hubs
/// and merchants need not coincide with topology-generator node ids.
std::vector<Payment> generate_payments(flow::NodeId num_nodes, int count,
                                       const WorkloadConfig& config,
                                       util::Rng& rng);

}  // namespace musketeer::gen
