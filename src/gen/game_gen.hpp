// Random rebalancing-game generation on top of a topology.
//
// Each undirected channel becomes up to two directed game edges. A
// direction is *depleted* with probability `depleted_share` (its head
// gets a positive buyer valuation) and otherwise *indifferent* (its tail
// gets a non-positive seller valuation; with probability
// `free_rider_share` the seller charges nothing, modelling users happy to
// route for free). Capacities are uniform integers.
#pragma once

#include "core/game.hpp"
#include "gen/topology.hpp"
#include "util/rng.hpp"

namespace musketeer::gen {

struct GameConfig {
  /// Probability that a channel direction is depleted (a buyer wants it
  /// rebalanced).
  double depleted_share = 0.3;
  /// Probability that a given direction of a channel is offered to the
  /// mechanism at all.
  double participation = 1.0;
  /// Among indifferent directions, fraction of sellers who charge zero.
  double free_rider_share = 0.25;
  /// Buyer valuations ~ U[buyer_min, buyer_max).
  double buyer_min = 0.01;
  double buyer_max = 0.05;
  /// Seller costs ~ U[seller_min, seller_max) (stored negated).
  double seller_min = 0.0005;
  double seller_max = 0.005;
  /// Capacities ~ U{capacity_min..capacity_max}.
  flow::Amount capacity_min = 10;
  flow::Amount capacity_max = 100;
};

/// Instantiates a game over `num_players` vertices from the topology.
core::Game random_game(NodeId num_players, const Topology& topology,
                       const GameConfig& config, util::Rng& rng);

/// Convenience: Barabási–Albert topology + random_game in one call (the
/// Lightning-like default used across tests and benches).
core::Game random_ba_game(NodeId num_players, int attach,
                          const GameConfig& config, util::Rng& rng);

}  // namespace musketeer::gen
