// Overload-aware admission control for the rebalancing service.
//
// The controller keeps an EWMA of epoch clear time and compares it
// against the configured epoch deadline; the ratio (utilization) drives
// a monotone shed level that the service consults at intake and the
// server uses to scale its kRetryAfter hints:
//
//   level 0  u < 0.50   healthy — admit everything
//   level 1  u < 0.80   warming — admit everything, double retry hints
//   level 2  u < 1.00   hot     — shed NEW players (resubmissions from
//                                 already-pending players still land, so
//                                 a player can always refresh a bid the
//                                 epoch will take anyway)
//   level 3  u >= 1.00  saturated — shed every bid; the service is
//                                 degrading epochs and must drain
//
// An epoch that aborted (ladder exhausted) records the full deadline
// budget per rung it burned, so sustained overload saturates the EWMA
// even though no clear completed. All reads are lock-free atomics —
// submit() and the stats endpoint never contend with the clearing
// thread.
//
// With no deadline configured the controller is inert: record() is a
// no-op and the shed level is pinned at 0, preserving the legacy
// admit-everything behavior bit for bit.
#pragma once

#include <atomic>
#include <cstdint>

namespace musketeer::svc {

class AdmissionController {
 public:
  /// `deadline_seconds` <= 0 disables the controller. `alpha` is the
  /// EWMA smoothing factor (weight of the newest epoch).
  AdmissionController(double alpha, double deadline_seconds)
      : alpha_(alpha), deadline_(deadline_seconds) {}

  bool enabled() const { return deadline_ > 0.0 && alpha_ > 0.0; }

  /// Folds one finished epoch's clear time into the EWMA and updates
  /// the shed level. Called from the clearing thread only (the EWMA
  /// itself is single-writer; the atomics publish to readers).
  void record(double clear_seconds) {
    if (!enabled()) return;
    // The first sample seeds the EWMA directly so warmup is not biased
    // toward the zero initial value.
    const double prev = ewma_seconds_.load(std::memory_order_relaxed);
    const double next =
        seeded_.load(std::memory_order_relaxed)
            ? alpha_ * clear_seconds + (1.0 - alpha_) * prev
            : clear_seconds;
    seeded_.store(true, std::memory_order_relaxed);
    ewma_seconds_.store(next, std::memory_order_relaxed);
    shed_level_.store(level_for(next), std::memory_order_relaxed);
  }

  /// Restores the EWMA from a recovered checkpoint so a restarted
  /// daemon resumes shedding at its pre-crash level instead of
  /// re-warming from zero. Called before the service starts clearing
  /// (single-writer, like record()).
  void seed(double ewma_seconds) {
    if (!enabled() || ewma_seconds <= 0.0) return;
    seeded_.store(true, std::memory_order_relaxed);
    ewma_seconds_.store(ewma_seconds, std::memory_order_relaxed);
    shed_level_.store(level_for(ewma_seconds), std::memory_order_relaxed);
  }

  /// Current shed level in [0, 3]; 0 when disabled.
  int shed_level() const { return shed_level_.load(std::memory_order_relaxed); }

  double ewma_seconds() const {
    return ewma_seconds_.load(std::memory_order_relaxed);
  }

  /// Scales a base retry-after hint by the shed level (doubling per
  /// level, so a saturated server tells clients to back off 8x).
  std::uint32_t scale_retry_after(std::uint32_t base_ms) const {
    const int level = shed_level();
    const std::uint64_t scaled = static_cast<std::uint64_t>(base_ms)
                                 << static_cast<unsigned>(level);
    return scaled > 0xFFFFFFFFull ? 0xFFFFFFFFu
                                  : static_cast<std::uint32_t>(scaled);
  }

 private:
  int level_for(double ewma_seconds) const {
    const double u = ewma_seconds / deadline_;
    if (u >= 1.0) return 3;
    if (u >= 0.8) return 2;
    if (u >= 0.5) return 1;
    return 0;
  }

  const double alpha_;
  const double deadline_;
  std::atomic<bool> seeded_{false};
  std::atomic<double> ewma_seconds_{0.0};
  std::atomic<int> shed_level_{0};
};

}  // namespace musketeer::svc
