#include "svc/daemon.hpp"

#include <utility>

namespace musketeer::svc {

Daemon::Daemon(pcn::Network network,
               std::unique_ptr<core::Mechanism> mechanism,
               DaemonConfig config)
    : network_(std::move(network)), mechanism_(std::move(mechanism)) {
  service_ = std::make_unique<RebalanceService>(network_, *mechanism_,
                                                config.service);
  server_ = std::make_unique<SocketServer>(*service_, config.server);
}

Daemon::~Daemon() { stop(); }

void Daemon::start(bool periodic_epochs) {
  server_->start();  // registers the epoch broadcast callback
  if (periodic_epochs) service_->start();
}

void Daemon::stop() {
  service_->stop();
  server_->stop();
}

}  // namespace musketeer::svc
