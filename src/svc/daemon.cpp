#include "svc/daemon.hpp"

#include <utility>

namespace musketeer::svc {

Daemon::Daemon(pcn::Network network,
               std::unique_ptr<core::Mechanism> mechanism,
               DaemonConfig config)
    : network_(std::move(network)), mechanism_(std::move(mechanism)) {
  if (!config.journal_path.empty()) {
    // Replay before the service exists: recovery mutates the network
    // single-threaded, and the service resumes at the recovered epoch.
    journal_ = std::make_unique<Journal>(config.journal_path);
    recovery_ = replay_journal(*journal_, network_, config.service.policy);
    config.service.journal = journal_.get();
    config.service.first_epoch = recovery_.next_epoch;
  }
  service_ = std::make_unique<RebalanceService>(network_, *mechanism_,
                                                config.service);
  server_ = std::make_unique<SocketServer>(*service_, config.server);
}

Daemon::~Daemon() { stop(); }

void Daemon::start(bool periodic_epochs) {
  server_->start();  // registers the epoch broadcast callback
  if (periodic_epochs) service_->start();
}

void Daemon::stop() {
  service_->stop();
  server_->stop();
}

}  // namespace musketeer::svc
