#include "svc/daemon.hpp"

#include <utility>

namespace musketeer::svc {

Daemon::Daemon(pcn::Network network,
               std::unique_ptr<core::Mechanism> mechanism,
               DaemonConfig config)
    : network_(std::move(network)), mechanism_(std::move(mechanism)) {
  if (!config.journal_path.empty()) {
    // Recover before the service exists: recovery mutates the network
    // single-threaded, and the service resumes at the recovered epoch.
    // The snapshot store is opened even when checkpointing is disabled
    // so a daemon restarted with --snapshot-every 0 still recovers from
    // snapshots a previous run left behind (the journal may already be
    // compacted below genesis).
    JournalConfig jconfig;
    jconfig.max_segment_bytes = config.max_segment_bytes;
    journal_ = std::make_unique<Journal>(config.journal_path, jconfig);
    snapshots_ = std::make_unique<SnapshotStore>(
        config.journal_path, config.keep_snapshots < 1 ? 1
                                                       : config.keep_snapshots);
    recovery_ = recover(*journal_, *snapshots_, network_,
                        config.service.policy);
    config.service.journal = journal_.get();
    config.service.snapshots = snapshots_.get();
    config.service.first_epoch = recovery_.next_epoch;
    config.service.snapshot_every = config.snapshot_every;
    config.service.initial_watermarks = recovery_.watermarks;
    config.service.initial_ewma_seconds = recovery_.ewma_seconds;
  }
  service_ = std::make_unique<RebalanceService>(network_, *mechanism_,
                                                config.service);
  server_ = std::make_unique<SocketServer>(*service_, config.server);
}

Daemon::~Daemon() { stop(); }

void Daemon::start(bool periodic_epochs) {
  server_->start();  // registers the epoch broadcast callback
  if (periodic_epochs) service_->start();
}

void Daemon::stop() {
  service_->stop();
  server_->stop();
}

}  // namespace musketeer::svc
