// sim::RebalanceBackend implementation that routes every rebalancing
// round through the epoch-batched service, so E4-style throughput
// simulations exercise exactly the serving code path (queue drain,
// lock-extract snapshot, off-lock clear, atomic settle) instead of the
// historic inline call. With an empty intake queue the cleared bids are
// the truthful valuations, so a service-backed simulation is
// bit-identical to an in-process one with the same seed — the
// equivalence the tests pin down.
#pragma once

#include <memory>

#include "sim/engine.hpp"
#include "svc/service.hpp"

namespace musketeer::svc {

class ServiceBackend final : public sim::RebalanceBackend {
 public:
  /// `threads` is ServiceConfig::threads (0 = hardware concurrency,
  /// 1 = legacy whole-graph solve).
  explicit ServiceBackend(const core::Mechanism& mechanism,
                          std::size_t queue_capacity = 1024, int threads = 1);
  ~ServiceBackend() override;

  pcn::RebalanceStats rebalance(pcn::Network& network,
                                const pcn::RebalancePolicy& policy) override;

  /// The underlying service (created on first rebalance; nullptr
  /// before). Exposed so tests can inject bids between sim epochs.
  RebalanceService* service() { return service_.get(); }

 private:
  const core::Mechanism& mechanism_;
  const std::size_t queue_capacity_;
  const int threads_;
  pcn::Network* bound_network_ = nullptr;
  std::unique_ptr<RebalanceService> service_;
};

}  // namespace musketeer::svc
