// Minimal POSIX socket helpers shared by the service's server and
// client: endpoint parsing ("tcp:PORT" on loopback, "unix:PATH"),
// listening, and connecting. All functions throw std::runtime_error
// with errno context on failure.
#pragma once

#include <cstdint>
#include <string>

namespace musketeer::svc {

struct Endpoint {
  bool is_unix = false;
  std::string path;         // unix
  std::uint16_t port = 0;   // tcp (0 = ephemeral when listening)
};

/// Parses "tcp:<port>" or "unix:<path>".
Endpoint parse_endpoint(const std::string& spec);

/// Renders back to the "tcp:<port>" / "unix:<path>" form.
std::string to_string(const Endpoint& endpoint);

/// Binds and listens; returns the fd. For tcp with port 0, `endpoint`
/// is updated with the kernel-assigned port. An existing unix socket
/// path is connect-probed first: a provably stale one (dead owner) is
/// unlinked and reclaimed, a live one — or a non-socket file — makes
/// listen_on throw instead of stealing the path from its owner.
int listen_on(Endpoint& endpoint, int backlog);

/// Blocking connect; returns the fd.
int connect_to(const Endpoint& endpoint);

/// send() the whole buffer (MSG_NOSIGNAL, EINTR-safe). Returns false on
/// a connection error instead of throwing (peers vanish routinely).
bool send_all(int fd, const char* data, std::size_t n);

}  // namespace musketeer::svc
