#include "svc/service.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "core/mechanism_factory.hpp"
#include "obs/obs.hpp"
#include "svc/journal.hpp"
#include "svc/snapshot.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

namespace musketeer::svc {

namespace {

/// Overwrites the truthful bids with the drained submissions: a player's
/// tail override applies to every edge it is tail of, head override to
/// every edge it is head of. Values were validated at intake.
void apply_overrides(const core::Game& game,
                     const std::vector<BidSubmission>& subs,
                     core::BidVector& bids) {
  if (subs.empty()) return;
  std::unordered_map<core::PlayerId, const BidSubmission*> by_player;
  by_player.reserve(subs.size());
  for (const BidSubmission& s : subs) by_player.emplace(s.player, &s);
  for (core::EdgeId e = 0; e < game.num_edges(); ++e) {
    const core::GameEdge& edge = game.edge(e);
    if (const auto it = by_player.find(edge.from);
        it != by_player.end() && it->second->has_tail) {
      bids.tail[static_cast<std::size_t>(e)] = it->second->tail_bid;
    }
    if (const auto it = by_player.find(edge.to);
        it != by_player.end() && it->second->has_head) {
      bids.head[static_cast<std::size_t>(e)] = it->second->head_bid;
    }
  }
}

std::vector<PlayerNotice> build_notices(const core::Game& game,
                                        const core::Outcome& outcome) {
  std::map<core::PlayerId, PlayerNotice> by_player;  // sorted output
  for (const core::PricedCycle& pc : outcome.cycles) {
    for (const core::PlayerId v : game.cycle_players(pc.cycle)) {
      PlayerNotice& notice = by_player[v];
      notice.player = v;
      notice.price += pc.price_of(v);
      notice.cycles += 1;
      notice.volume += pc.cycle.amount;
      notice.delay_bonus += pc.delay_bonus_of(v);
    }
  }
  std::vector<PlayerNotice> notices;
  notices.reserve(by_player.size());
  for (auto& [player, notice] : by_player) notices.push_back(notice);
  return notices;
}

}  // namespace

RebalanceService::RebalanceService(pcn::Network& network,
                                   const core::Mechanism& mechanism,
                                   ServiceConfig config)
    : mechanism_(mechanism),
      config_(config),
      queue_(config.queue_capacity, network.num_nodes()),
      admission_(config.admission_alpha,
                 config.epoch_deadline.count() > 0
                     ? std::chrono::duration<double>(config.epoch_deadline)
                           .count()
                     : 0.0),
      executor_(config.threads),
      network_(network),
      epochs_cleared_(config.first_epoch) {
  // With concurrency 1 the context ignores the executor entirely and
  // takes the literal legacy whole-graph path.
  solve_context_.set_executor(&executor_);
  // The ladder only matters once a deadline or watchdog can cancel an
  // attempt, but it is built unconditionally so a bad name fails at
  // construction, not during the first overload.
  for (const std::string& name : config_.degradation_ladder) {
    std::unique_ptr<core::Mechanism> rung =
        core::make_mechanism(name, core::MechanismOptions{});
    MUSK_ASSERT_MSG(rung != nullptr, "unknown degradation-ladder mechanism");
    ladder_.push_back(std::move(rung));
  }
  // Recovered state: duplicate detection and the committed-watermark
  // set resume where the pre-crash daemon left them, and the admission
  // controller re-enters at its pre-crash shed level.
  queue_.restore_watermarks(config_.initial_watermarks);
  admission_.seed(config_.initial_ewma_seconds);
  for (const auto& [player, seq] : config_.initial_watermarks) {
    if (seq != 0) applied_watermarks_[player] = seq;
  }
  if (config_.watchdog_timeout.count() > 0) {
    watchdog_ = std::jthread(
        [this](const std::stop_token& stop) { watchdog_loop(stop); });
  }
}

RebalanceService::~RebalanceService() { stop(); }

IntakeStatus RebalanceService::submit(const BidSubmission& bid) {
  // Overload shedding, cheapest first: level >= 3 sheds everything,
  // level 2 sheds only players with no bid already pending (a pending
  // player's replacement costs the epoch nothing extra — the drain
  // takes one bid per player either way).
  const int shed = admission_.shed_level();
  if (shed >= 3 || (shed == 2 && !queue_.pending(bid.player))) {
    queue_.count_overload_rejection();
    MUSK_OBS_COUNT("svc.intake.shed_total", 1);
    return IntakeStatus::kRejectedOverload;
  }
  return queue_.submit(bid);
}

pcn::ExtractedGame RebalanceService::extract_snapshot(
    std::uint64_t& pre_digest) {
  const util::OrderedLock net_lock(network_mutex_);
  pre_digest = network_.state_digest();
  return pcn::extract_and_lock(network_, config_.policy);
}

EpochReport RebalanceService::run_epoch() {
  const util::OrderedLock epoch_lock(clear_mutex_);
  // The authoritative clear_seconds clock: an obs::Timer, so the
  // measurement survives -DMUSKETEER_OBS=OFF (spans report 0 there).
  const obs::Timer t0;

  EpochReport report;
  {
    const util::OrderedLock lock(reports_mutex_);
    report.epoch = epochs_cleared_;
  }
  // (pid << 32) | (epoch + 1): correlates the report with its trace
  // spans; +1 keeps a first epoch numbered 0 distinguishable from "no
  // trace" in span args.
  const std::uint64_t trace_id =
      (static_cast<std::uint64_t>(::getpid()) << 32) |
      static_cast<std::uint32_t>(report.epoch + 1);
  report.trace_id = trace_id;
  MUSK_OBS_SPAN(epoch_span, "svc.epoch");
  epoch_span.set_epoch(trace_id);

  MUSK_OBS_SPAN(drain_span, "svc.drain");
  drain_span.set_epoch(trace_id);
  const std::vector<BidSubmission> subs = queue_.drain();
  report.drain_seconds = drain_span.end();

  // Sequenced bids drained into this epoch. They ride the BEGIN record
  // and become committed watermarks only if the epoch settles — bids
  // of a rolled-back or aborted epoch must stay resubmittable after a
  // restart. subs is sorted by player, so the payload is canonical.
  SeqWatermarks epoch_marks;
  for (const BidSubmission& s : subs) {
    if (s.seq != 0) epoch_marks.emplace_back(s.player, s.seq);
  }

  // Snapshot: the extracted game is a value copy whose capacities are
  // HTLC-locked on the live network, so clearing can proceed off-lock.
  // The pre-lock digest is what recovery verifies extraction against.
  MUSK_OBS_SPAN(snapshot_span, "svc.snapshot");
  snapshot_span.set_epoch(trace_id);
  std::uint64_t pre_digest = 0;
  pcn::ExtractedGame extracted = extract_snapshot(pre_digest);
  report.snapshot_seconds = snapshot_span.end();

  report.bids_applied = subs.size();
  report.game_edges = extracted.game.num_edges();
  MUSK_OBS_COUNT("svc.epoch.bids_applied_total", subs.size());

  Journal* const journal = config_.journal;
  try {
    if (journal != nullptr) {
      journal->append_begin(report.epoch, pre_digest, epoch_marks);
    }
    MUSK_FAULT_HIT("svc.crash_after_begin");
  } catch (const util::fault::CrashPoint&) {
    // Simulated kill -9: no cleanup runs. The locks die with the
    // process; recovery rolls the dangling BEGIN back.
    throw;
  } catch (...) {
    const util::OrderedLock net_lock(network_mutex_);
    pcn::release_locks(network_, extracted);
    throw;
  }

  if (extracted.game.num_edges() > 0) {
    core::BidVector bids = extracted.game.truthful_bids();
    apply_overrides(extracted.game, subs, bids);
    core::Outcome outcome;
    const long long builds_before = solve_context_.stats().structure_builds;
    try {
      bool cleared = run_attempt(mechanism_, extracted.game, bids, trace_id,
                                 report, outcome);
      while (!cleared &&
             report.degradation_level < static_cast<int>(ladder_.size())) {
        const int rung = report.degradation_level + 1;
        // The rung is journaled BEFORE it runs: replay must know which
        // mechanism produced the eventual OUTCOME even if the daemon
        // dies mid-rung.
        if (journal != nullptr) {
          journal->append_degraded(
              report.epoch, pre_digest, rung,
              config_.degradation_ladder[static_cast<std::size_t>(rung - 1)]);
        }
        report.degradation_level = rung;
        degraded_total_.fetch_add(1, std::memory_order_relaxed);
        MUSK_OBS_COUNT("svc.epoch.degraded_total", 1);
        MUSK_OBS_GAUGE("svc.epoch.degradation_level",
                       static_cast<double>(rung));
        // Chaos hook: an injected rung failure descends immediately,
        // exactly as if the rung itself had timed out.
        if (MUSK_FAULT_FAIL("degrade.fail")) continue;
        cleared = run_attempt(*ladder_[static_cast<std::size_t>(rung - 1)],
                              extracted.game, bids, trace_id, report, outcome);
      }
      if (!cleared) {
        // Ladder exhausted: all-or-nothing abort. Locks released, the
        // abort journaled, the epoch number reused — and run_epoch
        // returns normally, because a deadline abort is an operating
        // mode, not a failure: the scheduler must keep clearing.
        {
          const util::OrderedLock net_lock(network_mutex_);
          pcn::release_locks(network_, extracted);
        }
        if (journal != nullptr) {
          try {
            journal->append_aborted(report.epoch, pre_digest);
          } catch (const util::fault::CrashPoint&) {
            throw;
          } catch (const std::exception& err) {
            std::fprintf(
                stderr,
                "musketeer: failed to journal abort of epoch %d: %s\n",
                report.epoch, err.what());
          }
        }
        report.aborted = true;
        report.clear_seconds = t0.seconds();
        aborted_epochs_.fetch_add(1, std::memory_order_relaxed);
        MUSK_OBS_COUNT("svc.epoch.aborted_total", 1);
        admission_.record(report.clear_seconds);
        MUSK_OBS_GAUGE("svc.admission.shed_level",
                       static_cast<double>(admission_.shed_level()));
        return report;
      }
      MUSK_FAULT_HIT("svc.crash_before_commit");
      // The fsync'd OUTCOME record is the commit point: once it returns,
      // this epoch settles — now, or at recovery after a crash.
      if (journal != nullptr) {
        journal->append_outcome(report.epoch, pre_digest, outcome);
      }
    } catch (const util::fault::CrashPoint&) {
      throw;
    } catch (...) {
      // Failed clear (or a commit that could not be made durable):
      // release every pre-lock so no liquidity leaks, then record the
      // abort so recovery can tell a clean rollback from a crash.
      {
        const util::OrderedLock net_lock(network_mutex_);
        pcn::release_locks(network_, extracted);
      }
      if (journal != nullptr) {
        try {
          journal->append_aborted(report.epoch, pre_digest);
        } catch (const util::fault::CrashPoint&) {
          throw;
        } catch (const std::exception& err) {
          // Recovery treats a dangling BEGIN exactly like an ABORTED
          // epoch (rolled back, number reused); losing the record costs
          // observability, not safety.
          std::fprintf(stderr,
                       "musketeer: failed to journal abort of epoch %d: %s\n",
                       report.epoch, err.what());
        }
      }
      throw;
    }
    MUSK_FAULT_HIT("svc.crash_after_commit");
    pcn::RebalanceStats stats;
    {
      MUSK_OBS_SPAN(settle_span, "svc.settle");
      settle_span.set_epoch(trace_id);
      const util::OrderedLock net_lock(network_mutex_);
      stats = pcn::apply_outcome(network_, extracted, outcome);
      report.settle_seconds = settle_span.end();
    }
    MUSK_FAULT_HIT("svc.crash_mid_settle");
    report.cycles_executed = stats.cycles_executed;
    report.rebalanced_volume = stats.volume;
    report.fees_paid = stats.fees_paid;
    report.max_release_time = stats.max_release_time;
    report.graph_rebuilds = static_cast<int>(
        solve_context_.stats().structure_builds - builds_before);
    report.solve_components = solve_context_.last_component_count();
    report.largest_component =
        static_cast<int>(solve_context_.last_largest_component());
    last_components_.store(report.solve_components,
                           std::memory_order_relaxed);
    last_largest_component_.store(report.largest_component,
                                  std::memory_order_relaxed);
    report.notices = build_notices(extracted.game, outcome);
  }

  {
    const util::OrderedLock net_lock(network_mutex_);
    report.network_digest = network_.state_digest();
    // Pickhardt-style imbalance telemetry over the settled balances,
    // cached in atomics so the stats endpoint never takes this lock.
    const std::vector<double> imbalances = network_.imbalances();
    const double gini = util::gini(imbalances);
    const double mean = util::mean(imbalances);
    imbalance_gini_.store(gini, std::memory_order_relaxed);
    imbalance_mean_.store(mean, std::memory_order_relaxed);
    MUSK_OBS_GAUGE("pcn.imbalance.gini", gini);
    MUSK_OBS_GAUGE("pcn.imbalance.mean", mean);
  }
  // A SETTLED append failure propagates with the settlement already
  // applied: the journal's committed OUTCOME makes recovery re-apply it
  // exactly once, so restarting the daemon is the correct response.
  if (journal != nullptr) {
    journal->append_settled(report.epoch, report.network_digest);
  }
  // The epoch is fully durable: its drained seqs join the committed
  // watermark set the next snapshot captures.
  for (const auto& [player, seq] : epoch_marks) {
    std::uint32_t& have = applied_watermarks_[player];
    have = std::max(have, seq);
  }
  epochs_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
  if (journal != nullptr && config_.snapshots != nullptr &&
      config_.snapshot_every > 0 &&
      (report.epoch + 1) % config_.snapshot_every == 0) {
    checkpoint(report);
  }

  report.clear_seconds = t0.seconds();
  epoch_span.end();
  admission_.record(report.clear_seconds);
  MUSK_OBS_GAUGE("svc.admission.shed_level",
                 static_cast<double>(admission_.shed_level()));
  MUSK_OBS_COUNT("svc.epoch.total", 1);
  MUSK_OBS_HISTOGRAM("svc.epoch.clear_seconds", report.clear_seconds);
  MUSK_OBS_GAUGE("svc.queue.high_watermark",
                 static_cast<double>(queue_.high_watermark()));

  {
    const util::OrderedLock lock(reports_mutex_);
    ++epochs_cleared_;
    reports_.push_back(report);
  }
  reports_cv_.notify_all();
  for (const auto& callback : callbacks_) callback(report);
  return report;
}

void RebalanceService::checkpoint(EpochReport& report) {
  MUSK_OBS_SPAN(span, "svc.checkpoint");
  span.set_epoch(static_cast<std::uint64_t>(report.epoch));
  Journal& journal = *config_.journal;
  SnapshotStore& store = *config_.snapshots;
  try {
    // Roll first: the snapshot's recovery tail then starts at a fresh,
    // empty segment, so the first replayed record (if any) is a BEGIN
    // whose pre-digest equals the snapshot digest.
    journal.roll_segment();
    SnapshotData data;
    data.next_epoch = report.epoch + 1;
    data.first_segment = journal.current_segment();
    data.shed_level = admission_.shed_level();
    data.ewma_seconds = admission_.ewma_seconds();
    data.watermarks.assign(applied_watermarks_.begin(),
                           applied_watermarks_.end());
    std::sort(data.watermarks.begin(), data.watermarks.end());
    {
      const util::OrderedLock net_lock(network_mutex_);
      data.digest = network_.state_digest();
      data.network_bytes = encode_network(network_);
    }
    store.write(data);
    // Segments every retained snapshot has made redundant go away; an
    // invalid snapshot in the set conservatively pins everything.
    journal.compact_below(store.oldest_retained_first_segment());
    report.checkpointed = true;
    snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
    epochs_since_snapshot_.store(0, std::memory_order_relaxed);
    last_snapshot_uptime_.store(uptime_timer_.seconds(),
                                std::memory_order_relaxed);
    MUSK_OBS_COUNT("svc.checkpoint.total", 1);
    MUSK_OBS_HISTOGRAM("svc.checkpoint.seconds", span.end());
  } catch (const util::fault::CrashPoint&) {
    throw;
  } catch (const std::exception& e) {
    // Every epoch this checkpoint covers is already durable in the
    // journal: a failed checkpoint (ENOSPC, read-only FS, torn roll)
    // only means recovery replays a longer tail. Report and keep
    // clearing; the previous snapshots and live segments are untouched.
    MUSK_OBS_COUNT("svc.checkpoint.failed_total", 1);
    std::fprintf(stderr, "musketeer: checkpoint at epoch %d failed: %s\n",
                 report.epoch, e.what());
  }
}

bool RebalanceService::run_attempt(const core::Mechanism& mechanism,
                                   const core::Game& game,
                                   const core::BidVector& bids,
                                   std::uint64_t trace_id,
                                   EpochReport& report,
                                   core::Outcome& outcome) {
  const bool deadline_enabled = config_.epoch_deadline.count() > 0;
  const bool watchdog_enabled = watchdog_.joinable();
  const bool cancellable = deadline_enabled || watchdog_enabled;
  if (cancellable) {
    watchdog_fired_attempt_.store(false, std::memory_order_relaxed);
    cancel_token_.arm(deadline_enabled
                          ? util::Deadline::after(config_.epoch_deadline)
                          : util::Deadline::never());
    solve_context_.set_cancel(&cancel_token_);
    if (watchdog_enabled) {
      watchdog_deadline_at_.store(
          uptime_timer_.seconds() +
              std::chrono::duration<double>(config_.watchdog_timeout).count(),
          std::memory_order_relaxed);
    }
    // Chaos hook: a delay here burns the attempt's entire deadline
    // budget, so `deadline.expire@N=delay:...` deterministically expires
    // attempt N without load (the token is armed already).
    MUSK_FAULT_HIT("deadline.expire");
  }
  try {
    MUSK_OBS_SPAN(solve_span, "svc.clear");
    solve_span.set_epoch(trace_id);
    outcome = mechanism.run(solve_context_, game, bids);
    report.solve_seconds += solve_span.end();
  } catch (const util::SolveCancelled&) {
    // Disarm, then repair context state the unwind skipped: a VCG
    // exclusion cancelled mid-repricing throws through its unmask().
    watchdog_deadline_at_.store(0.0, std::memory_order_relaxed);
    solve_context_.set_cancel(nullptr);
    if (solve_context_.masked_player() >= 0) solve_context_.unmask();
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    MUSK_OBS_COUNT("svc.epoch.deadline_exceeded_total", 1);
    if (watchdog_fired_attempt_.load(std::memory_order_relaxed)) {
      // The watchdog, not the attempt's own deadline, broke this
      // attempt; the fault point lets chaos runs crash or delay at the
      // exact moment the intervention takes effect.
      MUSK_FAULT_HIT("watchdog.fire");
      report.watchdog_fired = true;
    }
    return false;
  } catch (...) {
    watchdog_deadline_at_.store(0.0, std::memory_order_relaxed);
    solve_context_.set_cancel(nullptr);
    throw;
  }
  if (cancellable) {
    watchdog_deadline_at_.store(0.0, std::memory_order_relaxed);
    solve_context_.set_cancel(nullptr);
  }
  return true;
}

void RebalanceService::watchdog_loop(const std::stop_token& stop) {
  // Poll cadence: fine enough to fire promptly at short test timeouts,
  // bounded (repo rule: every wait re-checks on a cadence) so teardown
  // never stalls on this thread.
  const auto period = std::chrono::milliseconds(
      std::clamp<long long>(config_.watchdog_timeout.count() / 4, 1, 100));
  util::OrderedUniqueLock lock(watchdog_mutex_);
  while (!stop.stop_requested()) {
    watchdog_cv_.wait_for(lock, stop, period, [] { return false; });
    if (stop.stop_requested()) break;
    double at = watchdog_deadline_at_.load(std::memory_order_relaxed);
    if (at <= 0.0 || uptime_timer_.seconds() < at) continue;
    // CAS-claim the firing: a clearing thread disarming concurrently
    // wins and the watchdog stands down (its stale cancel would only
    // be cleared by the next arm() anyway, but the counter must not
    // report interventions that never happened).
    if (!watchdog_deadline_at_.compare_exchange_strong(
            at, 0.0, std::memory_order_relaxed)) {
      continue;
    }
    watchdog_fired_attempt_.store(true, std::memory_order_relaxed);
    watchdog_fired_total_.fetch_add(1, std::memory_order_relaxed);
    MUSK_OBS_COUNT("svc.epoch.watchdog_fired_total", 1);
    cancel_token_.cancel();
  }
}

void RebalanceService::start() {
  MUSK_ASSERT_MSG(!started_.exchange(true), "RebalanceService started twice");
  scheduler_ = std::jthread(
      [this](const std::stop_token& stop) { scheduler_loop(stop); });
}

void RebalanceService::stop() {
  queue_.close();
  if (scheduler_.joinable()) {
    scheduler_.request_stop();
    scheduler_cv_.notify_all();
    scheduler_.join();
  }
  if (watchdog_.joinable()) {
    watchdog_.request_stop();
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

void RebalanceService::on_epoch(
    std::function<void(const EpochReport&)> callback) {
  MUSK_ASSERT_MSG(!started_.load(), "on_epoch must be called before start()");
  // Guarded registration: a manual run_epoch() on another thread reads
  // callbacks_ under the same lock, so a late registration serializes
  // against the in-flight epoch instead of racing its iteration.
  const util::OrderedLock epoch_lock(clear_mutex_);
  callbacks_.push_back(std::move(callback));
}

bool RebalanceService::wait_epochs(int n,
                                   std::chrono::milliseconds timeout) const {
  util::OrderedUniqueLock lock(reports_mutex_);
  return reports_cv_.wait_for(
      lock, timeout, [&] { return epochs_cleared_for_wait() >= n; });
}

int RebalanceService::epochs_cleared() const {
  const util::OrderedLock lock(reports_mutex_);
  return epochs_cleared_;
}

ServiceStats RebalanceService::stats_snapshot() const {
  ServiceStats stats;
  stats.epochs_cleared = epochs_cleared();
  stats.uptime_seconds = uptime_timer_.seconds();
  stats.queue_depth = queue_.size();
  stats.queue_capacity = queue_.capacity();
  stats.queue_high_watermark = queue_.high_watermark();
  if (config_.journal != nullptr) {
    stats.journal_bytes = config_.journal->committed_bytes();
    stats.journal_segments = config_.journal->segment_count();
  }
  stats.imbalance_gini = imbalance_gini_.load(std::memory_order_relaxed);
  stats.imbalance_mean = imbalance_mean_.load(std::memory_order_relaxed);
  stats.solve_threads = executor_.concurrency();
  stats.last_components = last_components_.load(std::memory_order_relaxed);
  stats.largest_component =
      last_largest_component_.load(std::memory_order_relaxed);
  stats.shed_level = admission_.shed_level();
  stats.ewma_clear_seconds = admission_.ewma_seconds();
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.degraded_epochs = degraded_total_.load(std::memory_order_relaxed);
  stats.watchdog_fired = watchdog_fired_total_.load(std::memory_order_relaxed);
  stats.aborted_epochs = aborted_epochs_.load(std::memory_order_relaxed);
  stats.snapshots_taken = snapshots_taken_.load(std::memory_order_relaxed);
  stats.epochs_since_snapshot =
      epochs_since_snapshot_.load(std::memory_order_relaxed);
  const double snap_at = last_snapshot_uptime_.load(std::memory_order_relaxed);
  stats.snapshot_age_seconds =
      snap_at < 0.0 ? -1.0 : stats.uptime_seconds - snap_at;
  stats.intake = queue_.counters();
  return stats;
}

std::vector<EpochReport> RebalanceService::reports() const {
  const util::OrderedLock lock(reports_mutex_);
  return reports_;
}

pcn::Network RebalanceService::network_snapshot() const {
  const util::OrderedLock lock(network_mutex_);
  return network_;
}

void RebalanceService::scheduler_loop(const std::stop_token& stop) {
  util::OrderedUniqueLock lock(scheduler_mutex_);
  while (!stop.stop_requested()) {
    // Stop-token-aware timed wait: wakes early on stop() instead of
    // sleeping out the period.
    scheduler_cv_.wait_for(lock, stop, config_.epoch_period,
                           [] { return false; });
    if (stop.stop_requested()) break;
    lock.unlock();
    run_epoch();
    const bool reached_limit =
        config_.max_epochs > 0 && epochs_cleared() >= config_.max_epochs;
    lock.lock();
    if (reached_limit) break;
  }
}

}  // namespace musketeer::svc
